(* Validates the telemetry artifacts of a real CLI run — the
   [@telemetry-smoke] gate. Usage:

     validate_telemetry.exe TRACE.json LOG.jsonl

   Checks that the trace is well-formed Chrome trace-event JSON
   (traceEvents list; every event has name/ph/ts/pid/tid; complete
   events have dur), that it round-trips through the printer/parser
   pair, that spans from the sat, cnf, bmc and opt layers are all
   present, and that every line of the JSONL log parses with the
   ts_us/level/tid/event shape. Exits non-zero with a message on the
   first violation. *)

module Json = Obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

let str_field name ev =
  match Json.member name ev with
  | Some (Json.Str s) -> s
  | _ -> fail "event lacks string field %S: %s" name (Json.to_string ev)

let require_num name ev =
  match Json.member name ev with
  | Some (Json.Float _ | Json.Int _) -> ()
  | _ -> fail "event lacks numeric field %S: %s" name (Json.to_string ev)

let check_trace path =
  let contents = read_file path in
  let trace =
    match Json.parse contents with
    | Ok t -> t
    | Error e -> fail "%s does not parse: %s" path e
  in
  (* Round-trip: print what we parsed and parse it again. *)
  (match Json.parse (Json.to_string trace) with
  | Ok trace' when trace' = trace -> ()
  | Ok _ -> fail "%s does not round-trip through the JSON printer" path
  | Error e -> fail "%s re-parse failed: %s" path e);
  let events =
    match Json.member "traceEvents" trace with
    | Some (Json.List evs) -> evs
    | _ -> fail "%s lacks a traceEvents list" path
  in
  if events = [] then fail "%s has no trace events" path;
  let spans = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let name = str_field "name" ev in
      let ph = str_field "ph" ev in
      require_num "ts" ev;
      require_num "pid" ev;
      require_num "tid" ev;
      if ph = "X" then begin
        require_num "dur" ev;
        let layer =
          match String.index_opt name '.' with
          | Some i -> String.sub name 0 i
          | None -> name
        in
        Hashtbl.replace spans layer ()
      end)
    events;
  List.iter
    (fun layer ->
      if not (Hashtbl.mem spans layer) then
        fail "%s has no spans from the %s layer" path layer)
    [ "sat"; "cnf"; "bmc"; "opt" ];
  Printf.printf "trace OK: %s (%d events, span layers: %s)\n" path
    (List.length events)
    (String.concat ", " (List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) spans [])))

let check_log path =
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then fail "%s has no log lines" path;
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok ev ->
          require_num "ts_us" ev;
          require_num "tid" ev;
          ignore (str_field "level" ev);
          ignore (str_field "event" ev)
      | Error e -> fail "%s: line does not parse: %s (%s)" path line e)
    lines;
  Printf.printf "log OK: %s (%d lines)\n" path (List.length lines)

let () =
  match Sys.argv with
  | [| _; trace; log |] ->
      check_trace trace;
      check_log log
  | _ ->
      prerr_endline "usage: validate_telemetry TRACE.json LOG.jsonl";
      exit 2

(* Validates BENCH_robustness.json from a real `bench robustness` run —
   half of the [@robustness-smoke] gate. Usage:

     validate_robustness.exe BENCH_robustness.json

   The bench starves a MAPLE sweep with an already-expired deadline
   (plus a retry policy) and then re-runs it unbudgeted. This checks the
   recorded outcome: the starved run ended Unknown with at least one
   timeout and at least one retry attempt accounted, the reference run
   stayed conclusive, the bench's own soundness expectations all held
   (failures = 0), and the merged-stats counters agree with the
   top-level ones. Exits non-zero on the first violation. *)

module Json = Obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

let parse path =
  match Json.parse (read_file path) with
  | Ok j ->
      (match Json.parse (Json.to_string j) with
      | Ok j' when j' = j -> ()
      | Ok _ -> fail "%s does not round-trip through the JSON printer" path
      | Error e -> fail "%s re-parse failed: %s" path e);
      j
  | Error e -> fail "%s does not parse: %s" path e

let str_field what name j =
  match Json.member name j with
  | Some (Json.Str s) -> s
  | _ -> fail "%s lacks string field %S: %s" what name (Json.to_string j)

let int_field what name j =
  match Json.member name j with
  | Some (Json.Int i) -> i
  | _ -> fail "%s lacks int field %S: %s" what name (Json.to_string j)

let obj_field what name j =
  match Json.member name j with
  | Some (Json.Obj _ as o) -> o
  | _ -> fail "%s lacks object field %S" what name

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let check_outcome path name ~want_unknown j =
  let o = obj_field path name j in
  let verdict = str_field path "verdict" o in
  ignore (int_field path "depth" o);
  (match Json.member "wall_s" o with
  | Some (Json.Float _ | Json.Int _) -> ()
  | _ -> fail "%s: %s lacks wall_s" path name);
  ignore (obj_field path "stats" o);
  if want_unknown then begin
    if not (starts_with "unknown:" verdict) then
      fail "%s: the starved run must be Unknown, got %S" path verdict
  end
  else if not (List.mem verdict [ "cex"; "bounded_proof" ]) then
    fail "%s: the unbudgeted run must be conclusive, got %S" path verdict;
  verdict

let () =
  match Sys.argv with
  | [| _; path |] ->
      let j = parse path in
      if str_field path "bench" j <> "robustness" then
        fail "%s is not a robustness bench record" path;
      if int_field path "failures" j <> 0 then
        fail "%s: the bench recorded soundness failures" path;
      let unknown = int_field path "unknown" j in
      let timeouts = int_field path "timeouts" j in
      let retries = int_field path "retries" j in
      if unknown < 1 then fail "%s: the starved sweep recorded no Unknown jobs" path;
      if timeouts < 1 then
        fail "%s: a wall-clock budget fired but no timeout was counted" path;
      if retries < 1 then fail "%s: no retry attempts were accounted" path;
      let merged = obj_field path "merged" j in
      if int_field path "unknown" merged <> unknown then
        fail "%s: merged/unknown disagrees with the top-level counter" path;
      if int_field path "timeout" merged <> timeouts then
        fail "%s: merged/timeout disagrees with the top-level counter" path;
      if int_field path "retries" merged <> retries then
        fail "%s: merged/retries disagrees with the top-level counter" path;
      let budgeted = check_outcome path "budgeted" ~want_unknown:true j in
      let unbudgeted = check_outcome path "unbudgeted" ~want_unknown:false j in
      ignore (obj_field path "telemetry" j);
      Printf.printf
        "robustness bench OK: %s (starved: %s; reference: %s; %d unknown, %d timeouts, %d retries)\n"
        path budgeted unbudgeted unknown timeouts retries
  | _ ->
      prerr_endline "usage: validate_robustness BENCH_robustness.json";
      exit 2

(* Validates BENCH_incremental.json from a real `bench incremental`
   run — the [@incremental-smoke] gate. Usage:

     validate_incremental.exe BENCH_incremental.json

   The bench runs each row's whole depth sequence twice at -O2: once on
   the persistent-solver incremental engine and once on the per-depth
   scratch oracle. This checks the artifact structurally (every row has
   both outcomes with verdict/depth/wall_s/stats), re-derives the
   agreement and speedup counters instead of trusting the recorded
   ones, requires zero mismatches, and gates the headline claim: the
   two deep-proof rows (V and C0+) — where depth unrolling dominates
   and clause reuse has the most to amortize — must each show at least
   a 1.5x cumulative-depth speedup. Exits non-zero on the first
   violation. *)

module Json = Obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

let parse path =
  match Json.parse (read_file path) with
  | Ok j ->
      (match Json.parse (Json.to_string j) with
      | Ok j' when j' = j -> ()
      | Ok _ -> fail "%s does not round-trip through the JSON printer" path
      | Error e -> fail "%s re-parse failed: %s" path e);
      j
  | Error e -> fail "%s does not parse: %s" path e

let str_field what name j =
  match Json.member name j with
  | Some (Json.Str s) -> s
  | _ -> fail "%s lacks string field %S: %s" what name (Json.to_string j)

let int_field what name j =
  match Json.member name j with
  | Some (Json.Int i) -> i
  | _ -> fail "%s lacks int field %S: %s" what name (Json.to_string j)

let num_field what name j =
  match Json.member name j with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> fail "%s lacks numeric field %S: %s" what name (Json.to_string j)

let bool_field what name j =
  match Json.member name j with
  | Some (Json.Bool b) -> b
  | _ -> fail "%s lacks bool field %S" what name

let obj_field what name j =
  match Json.member name j with
  | Some (Json.Obj _ as o) -> o
  | _ -> fail "%s lacks object field %S" what name

(* One engine's outcome record; returns (verdict, depth). *)
let check_outcome what name j =
  let o = obj_field what name j in
  let verdict = str_field what "verdict" o in
  let depth = int_field what "depth" o in
  (match Json.member "wall_s" o with
  | Some (Json.Float _ | Json.Int _) -> ()
  | _ -> fail "%s: %s lacks wall_s" what name);
  ignore (obj_field what "stats" o);
  (verdict, depth)

let check_row path j =
  let id = str_field path "id" j in
  let what = Printf.sprintf "%s row %s" path id in
  ignore (str_field what "description" j);
  ignore (int_field what "max_depth" j);
  let sv, sd = check_outcome what "scratch" j in
  let iv, id_ = check_outcome what "incremental" j in
  if not (bool_field what "agree" j) then
    fail "%s: recorded as a mismatch" what;
  (* Re-derive the agreement from the outcomes instead of trusting the
     bench's own flag. *)
  if sv <> iv then
    fail "%s: engines disagree on the verdict (scratch %S, incremental %S)"
      what sv iv;
  if sd <> id_ then
    fail "%s: engines agree on %S but at different depths (%d vs %d)" what sv
      sd id_;
  if sv = "unknown" then fail "%s: inconclusive on both engines" what;
  let speedup = num_field what "speedup" j in
  (id, speedup)

let () =
  match Sys.argv with
  | [| _; path |] ->
      let j = parse path in
      if str_field path "bench" j <> "incremental" then
        fail "%s is not an incremental bench record" path;
      let rows =
        match Json.member "rows" j with
        | Some (Json.List l) -> l
        | _ -> fail "%s lacks a rows list" path
      in
      if rows = [] then fail "%s has no rows" path;
      let checked = List.map (check_row path) rows in
      if int_field path "mismatches" j <> 0 then
        fail "%s: the bench recorded engine mismatches" path;
      let fast = List.length (List.filter (fun (_, s) -> s >= 1.5) checked) in
      if int_field path "rows_speedup_ge_1_5" j <> fast then
        fail "%s: rows_speedup_ge_1_5 disagrees with the recorded speedups"
          path;
      (* The headline gate: on the deep-proof rows, where the scratch
         engine re-pays blasting and re-learns the same clauses at every
         depth, persistence must buy at least 1.5x end to end. *)
      List.iter
        (fun gated ->
          match List.assoc_opt gated checked with
          | None -> fail "%s: gated row %S is missing" path gated
          | Some s when s < 1.5 ->
              fail "%s: row %S speedup %.2fx is below the 1.5x gate" path
                gated s
          | Some _ -> ())
        [ "V"; "C0+" ];
      ignore (obj_field path "telemetry" j);
      Printf.printf
        "incremental bench OK: %s (%d rows, %d at >= 1.5x, gated rows V=%.2fx C0+=%.2fx)\n"
        path (List.length checked) fast
        (List.assoc "V" checked)
        (List.assoc "C0+" checked)
  | _ ->
      prerr_endline "usage: validate_incremental BENCH_incremental.json";
      exit 2

(* Schema validator for the live-observability artifacts, run by the
   @obs-smoke rules against a real campaign's output directory:

     validate_obs.exe events FILE [LABEL,...]
       every line of FILE must parse as a stamped bus event
       (Obs.Bus.stamped_of_json); sequence numbers must be strictly
       increasing and timestamps non-decreasing within a process run
       (seq restarting at 1 marks a new process, e.g. --resume); the
       stream must open and close every given campaign label with a
       job_start/job_done pair and contain at least one depth_solved.

     validate_obs.exe prom FILE
       FILE must be Prometheus text format: '# HELP name text' and
       '# TYPE name counter|gauge' headers (at most one of each per
       metric) and 'name value' samples only, every name autocc_*-
       prefixed and [a-zA-Z0-9_:]*, every value a float; at least one
       solver metric must be present (the campaign runs the solver).

     validate_obs.exe top FILE LABEL,...
       FILE is a captured `autocc top --once` frame; it must carry the
       cockpit header and one row per campaign label — proving the
       cockpit reconstructed the campaign from events.jsonl alone.

     validate_obs.exe topjson FILE LABEL,...
       FILE is a captured `autocc top --once --json` snapshot: a single
       autocc.top/1 JSON document with a positive event count and one
       row (carrying a label and a verdict) per campaign label.

     validate_obs.exe stalled FILE
       FILE is the events.jsonl of a campaign run under an absurd
       AUTOCC_WATCHDOG threshold and an injected bmc.incr fault: it
       must contain at least one solver_stalled (the watchdog fired)
       and at least one fault_injected (the fault fired). *)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let type_of (s : Obs.Bus.stamped) =
  match s.Obs.Bus.ev with
  | Obs.Bus.Depth_solved _ -> "depth_solved"
  | Obs.Bus.Cex_found _ -> "cex_found"
  | Obs.Bus.Cache_hit -> "cache_hit"
  | Obs.Bus.Cache_miss -> "cache_miss"
  | Obs.Bus.Retry _ -> "retry"
  | Obs.Bus.Unknown _ -> "unknown"
  | Obs.Bus.Fault_injected _ -> "fault_injected"
  | Obs.Bus.Job_start _ -> "job_start"
  | Obs.Bus.Job_done _ -> "job_done"
  | Obs.Bus.Solver_progress _ -> "solver_progress"
  | Obs.Bus.Solver_stalled _ -> "solver_stalled"
  | Obs.Bus.Heartbeat -> "heartbeat"

let parse_events path =
  let lines = List.filter (fun l -> String.trim l <> "") (read_lines path) in
  if lines = [] then fail "%s: no events" path;
  List.mapi
    (fun i line ->
      match Obs.Json.parse line with
      | Error e -> fail "%s:%d: unparseable JSON: %s" path (i + 1) e
      | Ok j -> (
          match Obs.Bus.stamped_of_json j with
          | Error e -> fail "%s:%d: not a stamped event: %s" path (i + 1) e
          | Ok s -> s))
    lines

let validate_events path labels =
  let events = parse_events path in
  (* Monotonicity per process run: a seq restart (<=) opens a new run
     (resumed campaign); within a run seq is strictly increasing and ts
     non-decreasing. At least one run must exist (trivially true). *)
  let runs = ref 1 in
  ignore
    (List.fold_left
       (fun prev (s : Obs.Bus.stamped) ->
         (match prev with
         | Some (p : Obs.Bus.stamped) when s.seq > p.seq ->
             if s.ts < p.ts -. 1e-6 then
               fail "%s: ts went backwards at seq %d" path s.seq
         | Some _ -> incr runs
         | None ->
             if s.seq <> 1 then fail "%s: first event has seq %d, not 1" path s.seq);
         Some s)
       None events);
  let count ty = List.length (List.filter (fun s -> type_of s = ty) events) in
  List.iter
    (fun label ->
      let starts =
        List.exists
          (fun (s : Obs.Bus.stamped) ->
            s.label = label && type_of s = "job_start")
          events
      and dones =
        List.exists
          (fun (s : Obs.Bus.stamped) ->
            s.label = label && type_of s = "job_done")
          events
      in
      if not starts then fail "%s: no job_start for label %s" path label;
      if not dones then fail "%s: no job_done for label %s" path label)
    labels;
  if count "depth_solved" = 0 then fail "%s: no depth_solved events" path;
  Printf.printf
    "events OK: %s (%d events, %d run(s), %d depth_solved, %d job_done, %d \
     cache hits/misses)\n"
    path (List.length events) !runs (count "depth_solved") (count "job_done")
    (count "cache_hit" + count "cache_miss")

let metric_name_ok name =
  String.length name > 0
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let validate_prom path =
  let lines = List.filter (fun l -> String.trim l <> "") (read_lines path) in
  if lines = [] then fail "%s: empty metrics snapshot" path;
  let samples = ref 0 in
  (* Each metric may announce itself with at most one HELP and one TYPE
     header — duplicates break Prometheus scrapers. *)
  let seen_help = Hashtbl.create 16 and seen_type = Hashtbl.create 16 in
  let once tbl what name ln =
    if Hashtbl.mem tbl name then
      fail "%s:%d: duplicate # %s for %s" path ln what name;
    Hashtbl.replace tbl name ()
  in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      if String.length line > 1 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "HELP" :: name :: _ ->
            if not (metric_name_ok name) then
              fail "%s:%d: bad metric name %s" path ln name;
            once seen_help "HELP" name ln
        | [ "#"; "TYPE"; name; kind ] ->
            if not (metric_name_ok name) then
              fail "%s:%d: bad metric name %s" path ln name;
            once seen_type "TYPE" name ln;
            if kind <> "counter" && kind <> "gauge" && kind <> "histogram" then
              fail "%s:%d: bad metric kind %s" path ln kind
        | _ -> fail "%s:%d: bad comment line %S" path ln line
      end
      else
        match String.index_opt line ' ' with
        | None -> fail "%s:%d: sample without value: %S" path ln line
        | Some sp ->
            let name = String.sub line 0 sp in
            let value =
              String.sub line (sp + 1) (String.length line - sp - 1)
            in
            (* Histogram samples carry a {le="..."} selector. *)
            let base =
              match String.index_opt name '{' with
              | Some b -> String.sub name 0 b
              | None -> name
            in
            if not (metric_name_ok base) then
              fail "%s:%d: bad metric name %s" path ln base;
            if String.length base < 7 || String.sub base 0 7 <> "autocc_" then
              fail "%s:%d: metric %s not autocc_-prefixed" path ln base;
            if float_of_string_opt value = None then
              fail "%s:%d: non-numeric value %S for %s" path ln value base;
            incr samples)
    lines;
  let body = read_file path in
  let mentions sub =
    let n = String.length sub and h = String.length body in
    let rec go i = i + n <= h && (String.sub body i n = sub || go (i + 1)) in
    go 0
  in
  if not (mentions "autocc_sat_conflicts") then
    fail "%s: no autocc_sat_conflicts metric (solver never sampled?)" path;
  Printf.printf "prom OK: %s (%d samples)\n" path !samples

let validate_top path labels =
  let body = read_file path in
  let mentions sub =
    let n = String.length sub and h = String.length body in
    let rec go i = i + n <= h && (String.sub body i n = sub || go (i + 1)) in
    go 0
  in
  if not (mentions "autocc top") then fail "%s: missing cockpit header" path;
  List.iter
    (fun label ->
      if not (mentions label) then
        fail "%s: no cockpit row for campaign entry %s" path label)
    labels;
  Printf.printf "top OK: %s (%d campaign entries present)\n" path
    (List.length labels)

let validate_topjson path labels =
  let body = String.trim (read_file path) in
  let j =
    match Obs.Json.parse body with
    | Error e -> fail "%s: unparseable JSON: %s" path e
    | Ok j -> j
  in
  (match Obs.Json.member "schema" j with
  | Some (Obs.Json.Str "autocc.top/1") -> ()
  | _ -> fail "%s: missing or wrong schema member" path);
  (match Obs.Json.member "events" j with
  | Some (Obs.Json.Int n) when n > 0 -> ()
  | _ -> fail "%s: missing or zero events count" path);
  let rows =
    match Obs.Json.member "rows" j with
    | Some (Obs.Json.List l) -> l
    | _ -> fail "%s: rows is not a list" path
  in
  let row_label r =
    match Obs.Json.member "label" r with
    | Some (Obs.Json.Str s) -> Some s
    | _ -> None
  in
  List.iter
    (fun label ->
      match List.find_opt (fun r -> row_label r = Some label) rows with
      | None -> fail "%s: no row for campaign entry %s" path label
      | Some r -> (
          match Obs.Json.member "verdict" r with
          | Some (Obs.Json.Str _) -> ()
          | _ -> fail "%s: row %s has no verdict" path label))
    labels;
  Printf.printf "topjson OK: %s (%d rows)\n" path (List.length rows)

let validate_stalled path =
  let events = parse_events path in
  let count ty = List.length (List.filter (fun s -> type_of s = ty) events) in
  if count "solver_stalled" = 0 then
    fail "%s: watchdog never emitted solver_stalled" path;
  if count "fault_injected" = 0 then
    fail "%s: injected bmc.incr fault never fired" path;
  Printf.printf "stalled OK: %s (%d solver_stalled, %d fault_injected)\n" path
    (count "solver_stalled") (count "fault_injected")

let split_labels s = if s = "" then [] else String.split_on_char ',' s

let () =
  match Array.to_list Sys.argv with
  | [ _; "events"; path ] -> validate_events path []
  | [ _; "events"; path; labels ] -> validate_events path (split_labels labels)
  | [ _; "prom"; path ] -> validate_prom path
  | [ _; "top"; path; labels ] -> validate_top path (split_labels labels)
  | [ _; "topjson"; path; labels ] -> validate_topjson path (split_labels labels)
  | [ _; "stalled"; path ] -> validate_stalled path
  | _ ->
      prerr_endline
        "usage: validate_obs.exe events|prom|stalled FILE | top|topjson FILE \
         LABELS";
      exit 2

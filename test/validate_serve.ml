(* End-to-end smoke for the crash-isolated verification service
   (@serve-smoke): drives the real `autocc serve` daemon, real forked
   workers and the real wire protocol through four phases, asserting
   the ISSUE-level robustness contract:

   B. a crash-free service run completes four DUTs with verdicts
      identical to an in-process one-shot reference (and populates a
      verdict cache);
   C. a crash storm — every attempt-0 worker self-SIGKILLs mid-job via
      the "serve.worker" fault site, with "serve.lease" renewal drops
      armed alongside — must redeliver every job and converge to the
      SAME verdicts, with zero quarantines;
   D. a graceful SIGTERM drain of a queue-only daemon persists the
      queue byte-stably across a restart (cmp-identical), sheds
      submissions past the watermark, and a final restart against the
      phase-B cache completes the queue with warm cache hits recorded
      in the service ledger;
   E. a SIGTERMed `autocc campaign` checkpoints, exits cleanly, and
      `--resume` finishes it byte-stably.

   Usage: validate_serve <path-to-autocc-cli-exe> *)

module J = Obs.Json

let exe = ref ""
let failures = ref 0

let failf fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAILED: %s\n%!" s)
    fmt

let infof fmt = Printf.ksprintf (fun s -> Printf.printf "       %s\n%!" s) fmt
let phase fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n%!" s) fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* {1 Process helpers} *)

let spawn ?(env = []) args =
  let argv = Array.of_list (!exe :: args) in
  let full_env =
    Array.append (Unix.environment ()) (Array.of_list env)
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let out =
    Unix.openfile
      (Printf.sprintf "serve_smoke_%s.log" (List.hd args))
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  let pid = Unix.create_process_env !exe argv full_env devnull out out in
  Unix.close devnull;
  Unix.close out;
  pid

let wait_exit ?(timeout_s = 120.) pid =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () -. t0 > timeout_s then (
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          None)
        else (
          Unix.sleepf 0.05;
          go ())
    | _, Unix.WEXITED c -> Some c
    | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> Some (128 + s)
  in
  go ()

let wait_for ?(timeout_s = 30.) what pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () -. t0 > timeout_s then (
      failf "timed out waiting for %s" what;
      false)
    else (
      Unix.sleepf 0.05;
      go ())
  in
  go ()

let start_daemon ?(env = []) ~dir args =
  let pid = spawn ~env ([ "serve"; "--dir"; dir ] @ args) in
  ignore
    (wait_for ("daemon socket in " ^ dir) (fun () -> Serve.Client.ping ~dir));
  pid

let drain_daemon pid =
  Unix.kill pid Sys.sigterm;
  match wait_exit pid with
  | Some 0 -> ()
  | Some c -> failf "daemon exited %d after SIGTERM (want 0)" c
  | None -> failf "daemon did not exit after SIGTERM"

(* {1 Reference verdicts: the crash-free one-shot engine, in-process} *)

let duts = [ "leaky"; "divider"; "maple"; "aes" ]
let depth = 6
let threshold = 2

let reference =
  lazy
    (List.map
       (fun name ->
         let dut = Duts.Bundled.build name in
         let ft = Duts.Bundled.ft_for ~threshold name dut in
         let verdict, d =
           match Autocc.Ft.check ~max_depth:depth ft with
           | Bmc.Cex (cex, _) -> ("cex", cex.Bmc.cex_depth)
           | Bmc.Bounded_proof st -> ("proof", st.Bmc.depth_reached)
           | Bmc.Unknown (r, st) ->
               ("unknown:" ^ Bmc.unknown_reason_to_string r, st.Bmc.depth_reached)
         in
         (name, (verdict, d)))
       duts)

(* Submit the four DUTs to a running daemon and wait each one out;
   returns dut -> (verdict, depth, crashes). *)
let run_jobs dir =
  List.filter_map
    (fun dut ->
      let spec =
        { Serve.Machine.sp_dut = dut; sp_engine = "check"; sp_depth = depth;
          sp_threshold = threshold }
      in
      match Serve.Client.submit ~dir spec with
      | Error e ->
          failf "submit %s: %s" dut e;
          None
      | Ok id -> Some (dut, id))
    duts
  |> List.filter_map (fun (dut, id) ->
         match Serve.Client.wait ~dir ~timeout_s:120. id with
         | Error e ->
             failf "wait %s (%s): %s" id dut e;
             None
         | Ok resp -> (
             match J.member "job" resp with
             | Some job ->
                 let str n =
                   match J.member n job with Some (J.Str s) -> s | _ -> ""
                 in
                 let int n =
                   match J.member n job with Some (J.Int i) -> i | _ -> -1
                 in
                 Some (dut, (str "verdict", int "depth", int "crashes"))
             | None ->
                 failf "wait %s: no job row" id;
                 None))

let check_verdicts what rows =
  List.iter
    (fun (dut, (rv, rd)) ->
      match List.assoc_opt dut rows with
      | None -> failf "%s: no result for %s" what dut
      | Some (v, d, _) ->
          if v <> rv || d <> rd then
            failf "%s: %s got %s@%d, reference is %s@%d" what dut v d rv rd)
    (Lazy.force reference)

(* {1 Phase C seed search}

   The worker process arms AUTOCC_FAULT at startup and calls
   Fault.reseed ~offset:attempt on redelivery, and every fault decision
   is a pure function of (seed, site, n) — so we can roll the exact
   dice a worker will roll, here, before spawning anything, and pick a
   seed where attempt 0 dies at one of its first two "serve.worker"
   probes while attempts 1 and 2 survive a full solve. Searching at
   runtime keeps the smoke independent of the hash function. *)

let storm_rate = 0.05

let find_storm_seed () =
  let fires_within seed ~offset n =
    Fault.arm ~sites:[ "serve.worker" ] ~rate:storm_rate ~seed ();
    if offset > 0 then Fault.reseed ~offset;
    let fired = ref false in
    for _ = 1 to n do
      if Fault.fire "serve.worker" then fired := true
    done;
    !fired
  in
  let ok seed =
    fires_within seed ~offset:0 2
    && (not (fires_within seed ~offset:1 12))
    && not (fires_within seed ~offset:2 12)
  in
  let rec search s =
    if s > 100_000 then None else if ok s then Some s else search (s + 1)
  in
  let r = search 1 in
  Fault.disarm ();
  r

(* {1 Phases} *)

let phase_b () =
  phase "B: crash-free service run, 4 DUTs, 2 workers, cold cache";
  let dir = "sserve_b" in
  let pid = start_daemon ~dir [ "--workers"; "2"; "--cache-dir"; "sserve_cache" ] in
  let rows = run_jobs dir in
  check_verdicts "crash-free" rows;
  List.iter
    (fun (dut, (_, _, crashes)) ->
      if crashes <> 0 then failf "crash-free run recorded %d crashes for %s" crashes dut)
    rows;
  drain_daemon pid;
  (* The service directory is self-describing: a ledger row per
     delivery, an event stream where every line parses (the workers
     append concurrently through the O_APPEND single-write appender). *)
  let ledger = Filename.concat dir "runs.jsonl" in
  if not (Sys.file_exists ledger) then failf "no service ledger at %s" ledger
  else begin
    let rows =
      String.split_on_char '\n' (read_file ledger)
      |> List.filter (fun l -> String.trim l <> "")
    in
    if List.length rows <> 4 then
      failf "expected 4 worker ledger rows, found %d" (List.length rows)
  end;
  let events = Filename.concat dir "events.jsonl" in
  if not (Sys.file_exists events) then failf "no event stream at %s" events
  else
    String.split_on_char '\n' (read_file events)
    |> List.iter (fun l ->
           if String.trim l <> "" then
             match J.parse l with
             | Ok _ -> ()
             | Error e -> failf "torn/invalid event line %S: %s" l e);
  infof "verdicts match the one-shot reference; ledger and event stream intact"

let phase_c () =
  phase "C: crash storm — attempt-0 workers self-SIGKILL mid-job";
  match find_storm_seed () with
  | None -> failf "no storm seed found (fault hash changed?)"
  | Some seed ->
      infof "storm seed %d (rate %g, sites serve.worker;serve.lease)" seed
        storm_rate;
      let dir = "sserve_c" in
      let env =
        [ Printf.sprintf "AUTOCC_FAULT=seed=%d,rate=%g,sites=serve.worker;serve.lease"
            seed storm_rate ]
      in
      (* No cache: the storm must re-solve for real on redelivery. *)
      let pid = start_daemon ~env ~dir [ "--workers"; "2"; "--no-cache" ] in
      let rows = run_jobs dir in
      check_verdicts "crash storm" rows;
      let redelivered =
        List.fold_left (fun n (_, (_, _, c)) -> n + c) 0 rows
      in
      if redelivered = 0 then
        failf "storm run recorded no crashes — the fault site never fired";
      List.iter
        (fun (dut, (v, _, _)) ->
          if v = Serve.Machine.crashed_verdict then
            failf "%s was quarantined — redelivery failed to converge" dut)
        rows;
      drain_daemon pid;
      infof
        "%d crash(es) redelivered; all verdicts converged to the reference; \
         no quarantine"
        redelivered

let phase_d () =
  phase "D: drain persistence, byte-stable restart, shedding, warm cache";
  let dir = "sserve_d" in
  (* Queue-only daemon: accepts and persists, never dispatches. *)
  let pid = start_daemon ~dir [ "--workers"; "0"; "--shed"; "4" ] in
  List.iter
    (fun dut ->
      let spec =
        { Serve.Machine.sp_dut = dut; sp_engine = "check"; sp_depth = depth;
          sp_threshold = threshold }
      in
      match Serve.Client.submit ~dir spec with
      | Ok _ -> ()
      | Error e -> failf "queue submit %s: %s" dut e)
    duts;
  (* The watermark: a fifth live job must be shed, not queued. *)
  (match
     Serve.Client.submit ~dir
       { Serve.Machine.sp_dut = "leaky"; sp_engine = "check"; sp_depth = depth;
         sp_threshold = threshold }
   with
  | Error "overloaded" -> ()
  | Error e -> failf "expected \"overloaded\", got %S" e
  | Ok id -> failf "submission past the watermark was accepted as %s" id);
  drain_daemon pid;
  let q1 = read_file (Serve.Store.path dir) in
  (* Restart + immediate drain: the persisted queue must survive the
     cycle byte-identically. *)
  let pid = start_daemon ~dir [ "--workers"; "0"; "--shed"; "4" ] in
  drain_daemon pid;
  let q2 = read_file (Serve.Store.path dir) in
  if q1 <> q2 then failf "queue.json changed across a drain/restart cycle";
  (* Final incarnation: real workers against the phase-B cache. The
     queued jobs complete without re-solving — warm hits recorded in
     the ledger. *)
  let pid =
    start_daemon ~dir [ "--workers"; "2"; "--cache-dir"; "sserve_cache" ]
  in
  let ids = [ "j1"; "j2"; "j3"; "j4" ] in
  let rows =
    List.filter_map
      (fun id ->
        match Serve.Client.wait ~dir ~timeout_s:120. id with
        | Error e ->
            failf "resumed wait %s: %s" id e;
            None
        | Ok resp -> (
            match J.member "job" resp with
            | Some job ->
                let str n =
                  match J.member n job with Some (J.Str s) -> s | _ -> ""
                in
                let int n =
                  match J.member n job with Some (J.Int i) -> i | _ -> -1
                in
                Some (str "dut", (str "verdict", int "depth", int "crashes"))
            | None ->
                failf "resumed wait %s: no job row" id;
                None))
      ids
  in
  check_verdicts "resumed queue" rows;
  drain_daemon pid;
  let ledger = Filename.concat dir "runs.jsonl" in
  let warm_hits =
    if not (Sys.file_exists ledger) then 0
    else
      String.split_on_char '\n' (read_file ledger)
      |> List.fold_left
           (fun acc l ->
             if String.trim l = "" then acc
             else
               match J.parse l with
               | Ok j -> (
                   match Option.bind (J.member "cache" j) (J.member "hits") with
                   | Some (J.Int h) -> acc + h
                   | _ -> acc)
               | Error _ -> acc)
           0
  in
  if warm_hits = 0 then
    failf "restart re-solved everything: no warm cache hits in the ledger"
  else infof "queue byte-stable across restart; %d warm cache hit(s)" warm_hits

let phase_e () =
  phase "E: SIGTERMed campaign checkpoints and resumes byte-stably";
  let out = "sserve_camp" in
  let args =
    [ "campaign"; "--duts"; "leaky,divider,maple,aes"; "--max-depth"; "6";
      "--out"; out ]
  in
  let pid = spawn args in
  (* The index is checkpointed after every entry; signal as soon as the
     first checkpoint lands so later entries are still outstanding. *)
  ignore
    (wait_for ~timeout_s:60. "first campaign checkpoint" (fun () ->
         Sys.file_exists (Filename.concat out "campaign.json")));
  Unix.kill pid Sys.sigterm;
  (match wait_exit pid with
  | Some 130 -> infof "campaign exited 130 (interrupted, checkpointed)"
  | Some 0 ->
      (* The campaign can legitimately win the race and finish; the
         byte-stability assertions below still hold. *)
      infof "campaign finished before the signal landed"
  | Some c -> failf "signalled campaign exited %d (want 130 or 0)" c
  | None -> failf "signalled campaign did not exit");
  (* Finish it, snapshot, resume again: the second resume must rewrite
     the index byte-identically. *)
  (match wait_exit ~timeout_s:300. (spawn (args @ [ "--resume" ])) with
  | Some 0 -> ()
  | Some c -> failf "campaign --resume exited %d" c
  | None -> failf "campaign --resume hung");
  let snap = read_file (Filename.concat out "campaign.json") in
  (match wait_exit ~timeout_s:300. (spawn (args @ [ "--resume" ])) with
  | Some 0 -> ()
  | Some c -> failf "second campaign --resume exited %d" c
  | None -> failf "second campaign --resume hung");
  if read_file (Filename.concat out "campaign.json") <> snap then
    failf "campaign.json not byte-stable across --resume"
  else infof "campaign.json byte-stable across --resume"

let () =
  if Array.length Sys.argv < 2 then (
    prerr_endline "usage: validate_serve <autocc-cli-exe>";
    exit 2);
  (exe :=
     let p = Sys.argv.(1) in
     if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p);
  phase "A: in-process one-shot reference over %s" (String.concat ", " duts);
  List.iter
    (fun (dut, (v, d)) -> infof "%-8s %s (depth %d)" dut v d)
    (Lazy.force reference);
  phase_b ();
  phase_c ();
  phase_d ();
  phase_e ();
  if !failures > 0 then (
    Printf.printf "serve smoke: %d FAILURE(S)\n" !failures;
    exit 1)
  else print_endline "serve smoke: service survived the crash storm, \
                      drained byte-stably and reused the warm cache"

(* Validates the campaign artifacts of a real CLI run — the
   [@explain-smoke] gate. Usage:

     validate_explain.exe CAMPAIGN.json CHANNEL.json REPORT.html

   Checks that the campaign index follows the autocc.campaign/2 schema
   (entries with label/dut/status/counters and channel records that
   reference their per-channel artifacts), that the channel artifact follows
   autocc.channel/1 (channel naming, replay-minimized witness with one
   input record per cycle, a non-empty provenance chain ending at an
   observable output, slice metadata, telemetry snapshot), that the two
   agree on the channel name, and that the HTML report is well-formed
   enough to open (doctype, matched tags, channel name present). Exits
   non-zero with a message on the first violation. *)

module Json = Obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

let parse path =
  match Json.parse (read_file path) with
  | Ok j ->
      (* Round-trip through the printer/parser pair. *)
      (match Json.parse (Json.to_string j) with
      | Ok j' when j' = j -> ()
      | Ok _ -> fail "%s does not round-trip through the JSON printer" path
      | Error e -> fail "%s re-parse failed: %s" path e);
      j
  | Error e -> fail "%s does not parse: %s" path e

let str_field what name j =
  match Json.member name j with
  | Some (Json.Str s) -> s
  | _ -> fail "%s lacks string field %S: %s" what name (Json.to_string j)

let int_field what name j =
  match Json.member name j with
  | Some (Json.Int i) -> i
  | _ -> fail "%s lacks int field %S: %s" what name (Json.to_string j)

let list_field what name j =
  match Json.member name j with
  | Some (Json.List l) -> l
  | _ -> fail "%s lacks list field %S" what name

let obj_field what name j =
  match Json.member name j with
  | Some (Json.Obj _ as o) -> o
  | _ -> fail "%s lacks object field %S" what name

let require_schema what tag j =
  let s = str_field what "schema" j in
  if s <> tag then fail "%s has schema %S, expected %S" what s tag

(* The campaign index; returns (channel name, artifact basename) of the
   first channel so the caller can cross-check the channel artifact. *)
let check_campaign path =
  let j = parse path in
  require_schema path "autocc.campaign/2" j;
  let entries = list_field path "entries" j in
  if entries = [] then fail "%s has no entries" path;
  let first = ref None in
  List.iter
    (fun e ->
      let label = str_field path "label" e in
      ignore (str_field path "dut" e);
      let status = str_field path "status" e in
      (match (status, Json.member "error" e) with
      | "done", Some Json.Null -> ()
      | "failed", Some (Json.Str _) -> ()
      | "done", _ -> fail "%s: entry %s is done but carries an error" path label
      | "failed", _ -> fail "%s: entry %s failed without an error message" path label
      | s, _ -> fail "%s: entry %s has unknown status %S" path label s);
      let asserts = int_field path "asserts" e in
      let raw = int_field path "raw_cexs" e in
      if int_field path "unknowns" e < 0 then
        fail "%s: entry %s has a negative unknown count" path label;
      ignore (int_field path "max_depth" e);
      if int_field path "wall_ms" e < 0 then
        fail "%s: entry %s has a negative wall time" path label;
      let channels = list_field path "channels" e in
      if raw > asserts then
        fail "%s: entry %s reports more raw CEXs than assertions" path label;
      if List.length channels > raw then
        fail "%s: entry %s reports more channels than raw CEXs" path label;
      List.iter
        (fun ch ->
          let name = str_field path "name" ch in
          ignore (Json.member "culprit" ch);
          ignore (int_field path "minimized_depth" ch);
          let artifact = str_field path "artifact" ch in
          if Filename.dirname artifact <> "." then
            fail "%s: artifact %S must be a bare file name" path artifact;
          if !first = None then first := Some (name, artifact))
        channels)
    entries;
  match !first with
  | Some r ->
      Printf.printf "campaign OK: %s (%d entries)\n" path (List.length entries);
      r
  | None -> fail "%s: campaign found no channels — the leaky DUT must leak" path

let check_channel path ~index_name ~index_artifact =
  if Filename.basename path <> index_artifact then
    fail "%s is not the artifact the index references (%s)" path index_artifact;
  let j = parse path in
  require_schema path "autocc.channel/1" j;
  ignore (str_field path "label" j);
  ignore (str_field path "dut" j);
  ignore (obj_field path "telemetry" j);
  let ch = obj_field path "channel" j in
  let name = str_field path "name" ch in
  if name <> index_name then
    fail "%s: channel name %S disagrees with the index (%S)" path name index_name;
  ignore (str_field path "fingerprint" ch);
  if list_field path "asserts" ch = [] then fail "%s: channel has no assertions" path;
  ignore (int_field path "raw_cexs" ch);
  let wit = obj_field path "witness" j in
  let depth = int_field path "depth" wit in
  ignore (int_field path "depth_delta" wit);
  ignore (int_field path "zeroed_bits" wit);
  if int_field path "iterations" wit <= 0 then
    fail "%s: witness reports no replay trials" path;
  let inputs = list_field path "inputs" wit in
  if List.length inputs <> depth + 1 then
    fail "%s: witness has %d input records for depth %d" path (List.length inputs) depth;
  let prov = list_field path "provenance" j in
  if prov = [] then fail "%s: empty provenance chain" path;
  List.iter
    (fun l ->
      ignore (int_field path "cycle" l);
      ignore (str_field path "signal" l);
      ignore (str_field path "alpha" l);
      ignore (str_field path "beta" l);
      let kind = str_field path "kind" l in
      if not (List.mem kind [ "reg"; "input"; "output"; "node" ]) then
        fail "%s: unknown provenance kind %S" path kind)
    prov;
  let last = List.nth prov (List.length prov - 1) in
  if str_field path "kind" last <> "output" then
    fail "%s: provenance chain must end at an observable output" path;
  let sl = obj_field path "slice" j in
  ignore (str_field path "assert" sl);
  if list_field path "widths" sl = [] then fail "%s: empty slice width profile" path;
  Printf.printf "channel OK: %s (%s, %d hops, depth %d)\n" path name
    (List.length prov) depth

let count_occurrences hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (i + nn) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let contains hay needle = count_occurrences hay needle > 0

let check_html path ~channel_name =
  let html = read_file path in
  if not (String.length html > 15 && String.sub html 0 15 = "<!doctype html>") then
    fail "%s does not start with <!doctype html>" path;
  List.iter
    (fun (o, c) ->
      let no = count_occurrences html o and nc = count_occurrences html c in
      if no <> nc then fail "%s: %d %s but %d %s" path no o nc c)
    [
      ("<html", "</html>");
      ("<table", "</table>");
      ("<tr", "</tr>");
      ("<ol", "</ol>");
      ("<details", "</details>");
    ];
  (* The channel name is HTML-escaped in the report. *)
  let escaped =
    let b = Buffer.create (String.length channel_name) in
    String.iter
      (function
        | '<' -> Buffer.add_string b "&lt;"
        | '>' -> Buffer.add_string b "&gt;"
        | '&' -> Buffer.add_string b "&amp;"
        | '"' -> Buffer.add_string b "&quot;"
        | c -> Buffer.add_char b c)
      channel_name;
    Buffer.contents b
  in
  if not (contains html escaped) then
    fail "%s does not mention channel %S" path channel_name;
  Printf.printf "html OK: %s (%d bytes)\n" path (String.length html)

let () =
  match Sys.argv with
  | [| _; campaign; channel; html |] ->
      let index_name, index_artifact = check_campaign campaign in
      check_channel channel ~index_name ~index_artifact;
      check_html html ~channel_name:index_name
  | _ ->
      prerr_endline "usage: validate_explain CAMPAIGN.json CHANNEL.json REPORT.html";
      exit 2

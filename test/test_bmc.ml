(* Tests of the bounded model checker on small designs with known
   shallowest counterexample depths. *)

module Signal = Rtl.Signal
open Signal

let counter_circuit () =
  let enable = input "enable" 1 in
  let count = reg "count" 8 in
  reg_set_next count (mux2 enable (count +: one 8) count);
  Rtl.Circuit.create ~name:"counter" ~outputs:[ ("count", count) ] ()

let prop_ne value c =
  {
    Bmc.assumes = [];
    asserts = [ (Printf.sprintf "count_ne_%d" value, Rtl.Circuit.find_output c "count" <>: of_int ~width:8 value) ];
  }

let test_counter_cex_depth () =
  let c = counter_circuit () in
  match Bmc.check ~max_depth:10 c (prop_ne 5 c) with
  | Bmc.Cex (cex, _) ->
      (* count reaches 5 for the first time on cycle 5. *)
      Alcotest.(check int) "shallowest depth" 5 cex.Bmc.cex_depth;
      Alcotest.(check (list string)) "failed assertion" [ "count_ne_5" ] cex.Bmc.cex_failed
  | Bmc.Bounded_proof _ -> Alcotest.fail "expected a counterexample"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

let test_counter_bounded_proof () =
  let c = counter_circuit () in
  match Bmc.check ~max_depth:10 c (prop_ne 50 c) with
  | Bmc.Cex _ -> Alcotest.fail "count cannot reach 50 in 10 cycles"
  | Bmc.Bounded_proof stats ->
      Alcotest.(check int) "checked all depths" 10 stats.Bmc.depth_reached
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

let test_assumption_blocks_cex () =
  let c = counter_circuit () in
  let property =
    {
      Bmc.assumes = [ ~:(Rtl.Circuit.find_input c "enable") ];
      asserts = [ ("never_counts", Rtl.Circuit.find_output c "count" ==: zero 8) ];
    }
  in
  match Bmc.check ~max_depth:8 c property with
  | Bmc.Cex _ -> Alcotest.fail "assumption should prevent counting"
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

let test_multi_assert_reports_failure () =
  let c = counter_circuit () in
  let count = Rtl.Circuit.find_output c "count" in
  let property =
    {
      Bmc.assumes = [];
      asserts =
        [
          ("ne_2", count <>: of_int ~width:8 2);
          ("ne_3", count <>: of_int ~width:8 3);
        ];
    }
  in
  match Bmc.check ~max_depth:8 c property with
  | Bmc.Cex (cex, _) ->
      Alcotest.(check int) "first failure depth" 2 cex.Bmc.cex_depth;
      Alcotest.(check (list string)) "ne_2 fails first" [ "ne_2" ] cex.Bmc.cex_failed
  | Bmc.Bounded_proof _ -> Alcotest.fail "expected a counterexample"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

let test_replay_values () =
  let c = counter_circuit () in
  match Bmc.check ~max_depth:10 c (prop_ne 3 c) with
  | Bmc.Cex (cex, _) -> (
      let count = Rtl.Circuit.find_output c "count" in
      match Bmc.replay_values cex [ count ] with
      | [ (_, values) ] ->
          Alcotest.(check int) "trace length" (cex.Bmc.cex_depth + 1) (Array.length values);
          Alcotest.(check int) "final value" 3
            (Bitvec.to_int values.(cex.Bmc.cex_depth))
      | _ -> Alcotest.fail "one watched signal expected")
  | Bmc.Bounded_proof _ -> Alcotest.fail "expected a counterexample"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

(* A state machine with a hidden unlock sequence: the checker must find
   the exact 3-step combination. This is the classic "lock" example that
   stress-tests the search rather than pure unrolling. *)
let lock_circuit () =
  let code = input "code" 4 in
  let state = reg "state" 2 in
  let next =
    mux state
      [
        mux2 (code ==: of_int ~width:4 0xA) (of_int ~width:2 1) (zero 2);
        mux2 (code ==: of_int ~width:4 0x3) (of_int ~width:2 2) (zero 2);
        mux2 (code ==: of_int ~width:4 0x7) (of_int ~width:2 3) (zero 2);
        of_int ~width:2 3;
      ]
  in
  reg_set_next state next;
  Rtl.Circuit.create ~name:"lock"
    ~outputs:[ ("unlocked", state ==: of_int ~width:2 3) ]
    ()

let test_lock_combination () =
  let c = lock_circuit () in
  let property =
    {
      Bmc.assumes = [];
      asserts = [ ("stays_locked", ~:(Rtl.Circuit.find_output c "unlocked")) ];
    }
  in
  match Bmc.check ~max_depth:10 c property with
  | Bmc.Cex (cex, _) ->
      Alcotest.(check int) "unlocks after 3 inputs" 3 cex.Bmc.cex_depth;
      let codes =
        Array.to_list cex.Bmc.cex_inputs
        |> List.map (fun assignments -> Bitvec.to_int (List.assoc "code" assignments))
      in
      (match codes with
      | [ 0xA; 0x3; 0x7; _ ] -> ()
      | _ -> Alcotest.failf "unexpected combination")
  | Bmc.Bounded_proof _ -> Alcotest.fail "expected the lock to open"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

(* {1 k-induction} *)

let test_induction_proves_saturating () =
  (* A saturating counter never reaches 7: true at every depth but not
     provable by plain BMC; 1-inductive. *)
  let count = reg "sat" 3 in
  reg_set_next count
    (mux2 (count >=: of_int ~width:3 5) (of_int ~width:3 5) (count +: one 3));
  let c = Rtl.Circuit.create ~name:"sat_counter" ~outputs:[ ("count", count) ] () in
  let p = { Bmc.assumes = []; asserts = [ ("ne7", count <>: of_int ~width:3 7) ] } in
  match Bmc.prove ~max_depth:10 c p with
  | Bmc.Proved (k, _) -> Alcotest.(check bool) "small k" true (k <= 2)
  | Bmc.Refuted _ -> Alcotest.fail "property holds"
  | Bmc.Unknown _ -> Alcotest.fail "property is 1-inductive"

let test_induction_refutes () =
  (* A wrapping counter does reach 7: the base case must catch it. *)
  let count = reg "wrap" 3 in
  reg_set_next count (count +: one 3);
  let c = Rtl.Circuit.create ~name:"wrap" ~outputs:[ ("count", count) ] () in
  let p = { Bmc.assumes = []; asserts = [ ("ne7", count <>: of_int ~width:3 7) ] } in
  match Bmc.prove ~max_depth:10 c p with
  | Bmc.Refuted (cex, _) -> Alcotest.(check int) "exact depth" 7 cex.Bmc.cex_depth
  | _ -> Alcotest.fail "expected refutation"

let test_induction_unknown () =
  (* A free-running counter vs a deep bound: not refutable within the
     budget and not inductive either. *)
  let count = reg "deep" 8 in
  reg_set_next count (count +: one 8);
  let c = Rtl.Circuit.create ~name:"deep" ~outputs:[ ("count", count) ] () in
  let p =
    { Bmc.assumes = []; asserts = [ ("ne200", count <>: of_int ~width:8 200) ] }
  in
  match Bmc.prove ~max_depth:8 c p with
  | Bmc.Unknown (reason, stats) ->
      Alcotest.(check int) "bound respected" 8 stats.Bmc.depth_reached;
      (match reason with
      | Bmc.Bound_exhausted -> ()
      | r ->
          Alcotest.failf "expected bound exhaustion, got %s"
            (Bmc.unknown_reason_to_string r))
  | Bmc.Proved _ -> Alcotest.fail "count does reach 200 eventually"
  | Bmc.Refuted _ -> Alcotest.fail "not within 8 cycles"

let test_induction_with_assumes () =
  (* Under the assumption that enable stays low, any counter bound is
     inductive. *)
  let enable = input "en" 1 in
  let count = reg "gated" 4 in
  reg_set_next count (mux2 enable (count +: one 4) count);
  let c = Rtl.Circuit.create ~name:"gated" ~outputs:[ ("count", count) ] () in
  let p =
    {
      Bmc.assumes = [ ~:enable ];
      asserts = [ ("stable", count ==: zero 4) ];
    }
  in
  (* From an arbitrary state this is NOT inductive (count could start at
     5), but the assertion itself restricts the good states, so the step
     at k=1 works: good state => count=0 => next count=0. *)
  match Bmc.prove ~max_depth:10 c p with
  | Bmc.Proved _ -> ()
  | _ -> Alcotest.fail "inductive under the assumption"

let () =
  Alcotest.run "bmc"
    [
      ( "bmc",
        [
          Alcotest.test_case "cex at exact depth" `Quick test_counter_cex_depth;
          Alcotest.test_case "bounded proof" `Quick test_counter_bounded_proof;
          Alcotest.test_case "assumptions" `Quick test_assumption_blocks_cex;
          Alcotest.test_case "multiple assertions" `Quick test_multi_assert_reports_failure;
          Alcotest.test_case "replay values" `Quick test_replay_values;
          Alcotest.test_case "lock combination" `Quick test_lock_combination;
        ] );
      ( "induction",
        [
          Alcotest.test_case "proves saturating counter" `Quick test_induction_proves_saturating;
          Alcotest.test_case "refutes at exact depth" `Quick test_induction_refutes;
          Alcotest.test_case "unknown when not inductive" `Quick test_induction_unknown;
          Alcotest.test_case "assumptions in the step" `Quick test_induction_with_assumes;
        ] );
    ]

(* The incremental (persistent-solver) BMC engine, cross-checked against
   the per-depth scratch oracle and the simulator.

   The incremental engine keeps one solver alive across the whole depth
   sequence — new transition frames are stamped from a blasted template,
   the current depth's property is selected with an activation literal,
   and learnt clauses survive between depths. None of that may be
   observable in the verdicts: this suite runs random circuits with
   random multi-assert properties (plus the four real DUTs) through
   [~incremental:true] and [~incremental:false] and demands the same
   outcome kind, the same counterexample depth, and a counterexample
   trace that replays on the [Sim] interpreter ([Bmc.validate] raises
   [Replay_mismatch] on divergence). The parallel engine is covered at
   the worker counts the dune rules pin (AUTOCC_JOBS 1 and 4), and
   budget-starved runs must downgrade identically — never flip — in
   both modes. *)

module S = Sat.Solver
module Signal = Rtl.Signal
module Circuit = Rtl.Circuit
module V = Duts.Vscale
module M = Duts.Maple
module A = Duts.Aes
module C = Duts.Cva6lite

let jobs =
  match Sys.getenv_opt "AUTOCC_JOBS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let unknown_to_string = Bmc.unknown_reason_to_string

(* {1 Fixtures} *)

let counter_property values =
  let open Signal in
  let cnt = reg "cnt" 4 in
  reg_set_next cnt (cnt +: one 4);
  let circuit = Circuit.create ~name:"counter" ~outputs:[ ("cnt", cnt) ] () in
  let asserts =
    List.map
      (fun v -> (Printf.sprintf "ne%d" v, ~:(cnt ==: of_int ~width:4 v)))
      values
  in
  (circuit, { Bmc.assumes = []; asserts })

let inductive_property n =
  let open Signal in
  let regs =
    List.init n (fun i ->
        let r = reg (Printf.sprintf "z%d" i) 1 in
        reg_set_next r r;
        r)
  in
  let circuit =
    Circuit.create ~name:"zeros"
      ~outputs:(List.mapi (fun i r -> (Printf.sprintf "o%d" i, r)) regs)
      ()
  in
  ( circuit,
    { Bmc.assumes = []; asserts = List.mapi (fun i r -> (Printf.sprintf "z%d" i, ~:r)) regs } )

(* The four DUTs at their Table-1 counterexample settings — real miters,
   real optimizer, real CEX depths, on both engines. *)
let dut_rows () =
  [
    ( "V5",
      (fun () -> V.ft_for_stage V.Arch_pipeline (V.create ())),
      8 );
    ( "C2",
      (fun () ->
        Autocc.Ft.generate ~threshold:2 ~flush_done:(C.flush_done ())
          (C.create ~config:(C.with_fixes ~fix_c2:false C.Microreset) ())),
      11 );
    ( "M3",
      (fun () ->
        Autocc.Ft.generate ~threshold:2 ~flush_done:(M.flush_done ())
          (M.create ~config:{ M.fix_m2 = true; fix_m3 = false } ())),
      10 );
    ( "A1",
      (fun () -> Autocc.Ft.generate ~threshold:2 (A.create ())),
      12 );
  ]

(* {1 Agreement predicates} *)

(* Outcome agreement: kind and depth; a CEX must additionally replay on
   the [Sim] interpreter with exactly the failing set the engine
   reported. Each side's trace is validated against the property of the
   run that produced it (for FT runs, each [generate] call builds fresh
   signals, so properties are not interchangeable across runs). *)
let outcomes_agree p1 p2 o1 o2 =
  let replays property c =
    List.sort compare c.Bmc.cex_failed
    = List.sort compare
        (Bmc.validate c.Bmc.cex_circuit property c.Bmc.cex_inputs
           c.Bmc.cex_depth)
  in
  match (o1, o2) with
  | Bmc.Bounded_proof s1, Bmc.Bounded_proof s2 ->
      s1.Bmc.depth_reached = s2.Bmc.depth_reached
  | Bmc.Cex (c1, _), Bmc.Cex (c2, _) ->
      c1.Bmc.cex_depth = c2.Bmc.cex_depth && replays p1 c1 && replays p2 c2
  | Bmc.Unknown (r1, _), Bmc.Unknown (r2, _) ->
      unknown_to_string r1 = unknown_to_string r2
  | _ -> false

let describe = function
  | Bmc.Cex (c, _) -> Printf.sprintf "cex@%d" c.Bmc.cex_depth
  | Bmc.Bounded_proof s -> Printf.sprintf "proof@%d" s.Bmc.depth_reached
  | Bmc.Unknown (r, _) -> "unknown:" ^ unknown_to_string r

(* {1 Directed: the four DUTs} *)

let test_duts_agree () =
  List.iter
    (fun (id, mk_ft, max_depth) ->
      let ft_i = mk_ft () and ft_s = mk_ft () in
      let inc = Autocc.Ft.check ~max_depth ~incremental:true ft_i in
      let scr = Autocc.Ft.check ~max_depth ~incremental:false ft_s in
      (match inc with
      | Bmc.Cex _ -> ()
      | o -> Alcotest.failf "%s: expected a CEX, got %s" id (describe o));
      if
        not
          (outcomes_agree ft_i.Autocc.Ft.property ft_s.Autocc.Ft.property inc
             scr)
      then
        Alcotest.failf "%s: engines disagree (incremental %s, scratch %s)" id
          (describe inc) (describe scr))
    (dut_rows ())

(* {1 Directed: check_each shares one session} *)

let test_check_each_agrees () =
  (* Mixed refutable/unprovable assertions; the incremental engine
     serves all of them from one persistent session with per-assertion
     activation literals and shared cycle facts. *)
  let circuit, property = counter_property [ 9; 3; 6; 12 ] in
  let run incremental =
    Bmc.check_each ~max_depth:10 ~incremental circuit property
  in
  let scr = run false and inc = run true in
  Alcotest.(check int) "result count" (List.length scr) (List.length inc);
  List.iter2
    (fun (n1, o1) (n2, o2) ->
      Alcotest.(check string) "assertion order" n1 n2;
      let sub = { property with Bmc.asserts = List.filter (fun (n, _) -> n = n1) property.Bmc.asserts } in
      if not (outcomes_agree sub sub o1 o2) then
        Alcotest.failf "%s: check_each disagrees (scratch %s, incremental %s)"
          n1 (describe o1) (describe o2))
    scr inc

let test_check_each_empty () =
  let circuit, _ = counter_property [ 3 ] in
  Alcotest.(check int) "no asserts, no results" 0
    (List.length
       (Bmc.check_each ~incremental:true circuit { Bmc.assumes = []; asserts = [] }))

(* {1 Directed: induction} *)

let test_prove_agrees () =
  (let circuit, property = counter_property [ 10; 4 ] in
   match
     ( Bmc.prove ~max_depth:15 ~incremental:false circuit property,
       Bmc.prove ~max_depth:15 ~incremental:true circuit property )
   with
   | Bmc.Refuted (c1, _), Bmc.Refuted (c2, _) ->
       Alcotest.(check int) "refutation depth" c1.Bmc.cex_depth c2.Bmc.cex_depth
   | _ -> Alcotest.fail "expected Refuted from both engines");
  let circuit, property = inductive_property 3 in
  match
    ( Bmc.prove ~max_depth:10 ~incremental:false circuit property,
      Bmc.prove ~max_depth:10 ~incremental:true circuit property )
  with
  | Bmc.Proved (k1, _), Bmc.Proved (k2, _) ->
      Alcotest.(check int) "induction depth" k1 k2
  | _ -> Alcotest.fail "expected Proved from both engines"

(* {1 Directed: symmetric template vs double blast} *)

let test_symmetric_duts_agree () =
  (* [~symmetric:false] re-blasts both universes separately — the
     double-blast oracle. The single-universe template stamped twice
     through the α/β pairs must give the same verdict, CEX depth and a
     replay-valid trace on every real DUT row. *)
  List.iter
    (fun (id, mk_ft, max_depth) ->
      let ft_s = mk_ft () and ft_d = mk_ft () in
      let sym = Autocc.Ft.check ~max_depth ~symmetric:true ft_s in
      let dbl = Autocc.Ft.check ~max_depth ~symmetric:false ft_d in
      if
        not
          (outcomes_agree ft_s.Autocc.Ft.property ft_d.Autocc.Ft.property sym
             dbl)
      then
        Alcotest.failf "%s: symmetric %s disagrees with double-blast %s" id
          (describe sym) (describe dbl))
    (dut_rows ())

let test_symmetric_substitution_fires () =
  (* Guard against the encoder silently degrading to the direct path:
     the miter must expose α/β pairs, and a symmetric run must actually
     substitute template clauses through them. *)
  let ft = (fun () -> V.ft_for_stage V.Arch_pipeline (V.create ())) () in
  Alcotest.(check bool) "the miter exposes symmetric pairs" true
    (ft.Autocc.Ft.sym <> []);
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.disable ();
      Obs.Metrics.reset ())
    (fun () ->
      ignore (Autocc.Ft.check ~max_depth:8 ~symmetric:true ft);
      match Obs.Metrics.find "cnf.sym_substituted" with
      | Some (Obs.Metrics.Counter n) ->
          Alcotest.(check bool) "template clauses were substituted" true (n > 0)
      | _ -> Alcotest.fail "cnf.sym_substituted was never recorded")

let test_symmetric_random_miters () =
  (* Random DUTs through the full [Ft.generate] miter construction:
     whatever α/β pair set falls out, symmetric and double-blast runs
     must agree. *)
  for seed = 61 to 66 do
    let st = Random.State.make [| seed |] in
    let dut = Gen_circuit.random_circuit st ~num_nodes:20 ~num_regs:3 in
    let mk () = Autocc.Ft.generate ~threshold:1 dut in
    let ft_s = mk () and ft_d = mk () in
    let sym = Autocc.Ft.check ~max_depth:5 ~symmetric:true ft_s in
    let dbl = Autocc.Ft.check ~max_depth:5 ~symmetric:false ft_d in
    if
      not
        (outcomes_agree ft_s.Autocc.Ft.property ft_d.Autocc.Ft.property sym dbl)
    then
      Alcotest.failf "seed %d: symmetric %s disagrees with double-blast %s" seed
        (describe sym) (describe dbl)
  done

(* {1 Budgets: starved runs downgrade identically} *)

let test_expired_wall_identical () =
  (* An already-expired deadline fires at the first poll in both
     engines, before any search diverges — the Unknown must render
     byte-identically, and both must report clean up to the depth before
     the one being explored. *)
  let circuit, property = counter_property [ 9; 3 ] in
  let budget = Bmc.budget ~wall_s:1e-9 () in
  let run incremental = Bmc.check ~max_depth:8 ~incremental ~budget circuit property in
  match (run false, run true) with
  | Bmc.Unknown (r1, s1), Bmc.Unknown (r2, s2) ->
      Alcotest.(check string) "byte-identical unknown reason"
        (unknown_to_string r1) (unknown_to_string r2);
      Alcotest.(check int) "byte-identical clean depth" s1.Bmc.depth_reached
        s2.Bmc.depth_reached;
      (match r1 with
      | Bmc.Budget_exhausted { ub_budget = S.Wall_clock; ub_depth; _ } ->
          Alcotest.(check int) "clean up to the depth before exhaustion"
            (ub_depth - 1) s1.Bmc.depth_reached
      | r -> Alcotest.failf "wrong reason: %s" (unknown_to_string r))
  | o1, o2 ->
      Alcotest.failf "expired deadline must starve both engines (%s, %s)"
        (describe o1) (describe o2)

let test_conflict_cap_mid_sequence () =
  (* A conflict cap that dies mid-sequence on MAPLE. The engines' search
     trajectories legitimately differ (that is the point of clause
     reuse), so the exhaustion depth may differ — but each must report
     Unknown on the conflict budget with the clean-up-to-[k-1]
     accounting, and neither may conjure a conclusive verdict. *)
  let mk () =
    Autocc.Ft.generate ~threshold:2 ~flush_done:(M.flush_done ())
      (M.create ~config:{ M.fix_m2 = true; fix_m3 = false } ())
  in
  let budget = Bmc.budget ~conflicts:30 () in
  List.iter
    (fun incremental ->
      match Autocc.Ft.check ~max_depth:10 ~incremental ~budget (mk ()) with
      | Bmc.Unknown
          ((Bmc.Budget_exhausted { ub_budget = S.Conflicts; ub_depth; _ } as r), stats)
        ->
          if stats.Bmc.depth_reached <> ub_depth - 1 then
            Alcotest.failf "incremental=%b: dirty accounting in %s" incremental
              (unknown_to_string r)
      | Bmc.Unknown (r, _) ->
          Alcotest.failf "incremental=%b: wrong unknown reason %s" incremental
            (unknown_to_string r)
      | o ->
          Alcotest.failf "incremental=%b: 30 conflicts cannot decide MAPLE (%s)"
            incremental (describe o))
    [ false; true ]

let test_check_each_budget_identical () =
  (* Per-assertion budgets on the shared incremental session: every
     assertion gets its own starved grant, and the per-assertion Unknown
     reports must match the scratch engine's byte for byte. *)
  let circuit, property = counter_property [ 9; 3; 6 ] in
  let budget = Bmc.budget ~wall_s:1e-9 () in
  let run incremental =
    Bmc.check_each ~max_depth:8 ~incremental ~budget circuit property
  in
  List.iter2
    (fun (n1, (o1 : Bmc.outcome)) (n2, (o2 : Bmc.outcome)) ->
      Alcotest.(check string) "order" n1 n2;
      match (o1, o2) with
      | Bmc.Unknown (r1, _), Bmc.Unknown (r2, _) ->
          Alcotest.(check string)
            (n1 ^ " byte-identical unknown")
            (unknown_to_string r1) (unknown_to_string r2)
      | _ ->
          Alcotest.failf "%s: starved check_each must be Unknown (%s, %s)" n1
            (describe o1) (describe o2))
    (run false) (run true)

(* {1 Differential fuzzing} *)

let gen_case seed =
  let st = Random.State.make [| seed |] in
  let circuit = Gen_circuit.random_circuit st ~num_nodes:25 ~num_regs:3 in
  let property =
    Gen_circuit.random_property st circuit ~num_asserts:(2 + Random.State.int st 4)
  in
  (circuit, property)

let check_differential seed =
  let circuit, property = gen_case seed in
  let max_depth = 6 in
  let inc = Bmc.check ~max_depth ~incremental:true circuit property in
  let scr = Bmc.check ~max_depth ~incremental:false circuit property in
  outcomes_agree property property inc scr

(* The parallel engine at the pinned worker count, incremental workers
   against the sequential scratch oracle. *)
let check_differential_parallel seed =
  let circuit, property = gen_case (seed + 7_000_000) in
  let max_depth = 6 in
  let par = Parallel.check ~jobs ~incremental:true ~max_depth circuit property in
  let scr = Bmc.check ~max_depth ~incremental:false circuit property in
  outcomes_agree property property par scr

(* Budget-starved runs on random instances: the engines may disagree on
   *where* a conflict cap lands, but never on conclusive-vs-conclusive
   content — a starved engine answers Unknown, and whenever both are
   conclusive they must agree exactly. *)
let check_differential_budgeted seed =
  let circuit, property = gen_case (seed + 13_000_000) in
  let max_depth = 6 in
  let budget = Bmc.budget ~conflicts:(1 + (seed mod 40)) () in
  let inc = Bmc.check ~max_depth ~incremental:true ~budget circuit property in
  let scr = Bmc.check ~max_depth ~incremental:false ~budget circuit property in
  match (inc, scr) with
  | Bmc.Unknown (Bmc.Budget_exhausted _, _), _
  | _, Bmc.Unknown (Bmc.Budget_exhausted _, _) ->
      (* A downgrade is fine on either side; a flip is not. *)
      (match (inc, scr) with
      | Bmc.Cex _, Bmc.Bounded_proof _ | Bmc.Bounded_proof _, Bmc.Cex _ -> false
      | _ -> true)
  | _ -> outcomes_agree property property inc scr

let fuzz ~count name f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name QCheck.(make Gen.(int_bound 1_000_000)) f)

let () =
  Alcotest.run "incremental"
    [
      ( "directed",
        [
          Alcotest.test_case "four DUTs agree across engines" `Quick test_duts_agree;
          Alcotest.test_case "check_each agrees across engines" `Quick
            test_check_each_agrees;
          Alcotest.test_case "check_each with no asserts" `Quick test_check_each_empty;
          Alcotest.test_case "induction agrees across engines" `Quick
            test_prove_agrees;
        ] );
      ( "symmetric",
        [
          Alcotest.test_case "four DUTs agree with the double-blast oracle"
            `Quick test_symmetric_duts_agree;
          Alcotest.test_case "template substitution fires" `Quick
            test_symmetric_substitution_fires;
          Alcotest.test_case "random miters agree" `Quick
            test_symmetric_random_miters;
        ] );
      ( "budget",
        [
          Alcotest.test_case "expired deadline is byte-identical" `Quick
            test_expired_wall_identical;
          Alcotest.test_case "conflict cap mid-sequence" `Quick
            test_conflict_cap_mid_sequence;
          Alcotest.test_case "starved check_each is byte-identical" `Quick
            test_check_each_budget_identical;
        ] );
      ( "fuzz",
        [
          fuzz ~count:300 "incremental == scratch" check_differential;
          fuzz ~count:60 "parallel incremental == scratch" check_differential_parallel;
          fuzz ~count:60 "budgeted runs never flip" check_differential_budgeted;
        ] );
    ]

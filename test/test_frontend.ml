(* Tests for the SystemVerilog frontend: lexer, parser, elaboration
   semantics, round-tripping our own emitter's output (differential
   simulation and formal equivalence), the //AutoCC Common annotation,
   and AutoSVA-style transaction inference — culminating in the paper's
   headline flow: a covert channel found from nothing but an .sv file. *)

module Signal = Rtl.Signal
module Circuit = Rtl.Circuit

let elab = Frontend.Elaborate.circuit_of_string

(* {1 Lexer} *)

let test_lexer_literals () =
  let toks = Lexer_tokens.of_string "8'hff 4'b1010 42 '0 '1 16'd100" in
  Alcotest.(check (list string)) "literals"
    [ "BASED(8'ff)"; "BASED(4'a)"; "NUMBER(42)"; "UNBASED(false)"; "UNBASED(true)"; "BASED(16'0064)"; "EOF" ]
    toks

and test_lexer_comments () =
  let toks = Lexer_tokens.of_string "a /* block\ncomment */ b // line\nc\n//AutoCC Common\nd" in
  Alcotest.(check (list string)) "comments skipped, annotation kept"
    [ "IDENT(a)"; "IDENT(b)"; "IDENT(c)"; "//AutoCC Common"; "IDENT(d)"; "EOF" ]
    toks

and test_lexer_operators () =
  let toks = Lexer_tokens.of_string "== != <= >= << >> && || ~ ^" in
  Alcotest.(check (list string)) "operators"
    [ "OP(==)"; "OP(!=)"; "<="; "OP(>=)"; "OP(<<)"; "OP(>>)"; "OP(&&)"; "OP(||)"; "OP(~)"; "OP(^)"; "EOF" ]
    toks

(* {1 Parser + elaboration semantics} *)

(* Evaluate a module with one 8-bit output [o] as a function of inputs. *)
let eval_sv source inputs =
  let c = elab source in
  let sim = Sim.create c in
  let known n = List.exists (fun p -> p.Circuit.port_name = n) (Circuit.inputs c) in
  List.iter (fun (n, v) -> if known n then Sim.set_input_int sim n v) inputs;
  Sim.out_int sim "o"

let test_expression_semantics () =
  let header = "module m (input wire [7:0] a, input wire [7:0] b, output wire [7:0] o);" in
  let cases =
    [
      ("assign o = a + b;", 200, 100, (200 + 100) land 0xFF);
      ("assign o = a - b;", 5, 9, (5 - 9) land 0xFF);
      ("assign o = a & b | 8'h0f;", 0xF0, 0xAA, 0xF0 land 0xAA lor 0x0F);
      ("assign o = a ^ b;", 0x5A, 0xFF, 0x5A lxor 0xFF);
      ("assign o = {8{a == b}};", 7, 7, 0xFF);
      ("assign o = a < b ? 8'd1 : 8'd2;", 3, 4, 1);
      ("assign o = {a[3:0], b[7:4]};", 0xAB, 0xCD, 0xBC);
      ("assign o = a << 2;", 0x81, 0, 0x04);
      ("assign o = a >> 3;", 0x81, 0, 0x10);
      ("assign o = ~a;", 0x0F, 0, 0xF0);
      ("assign o = {7'd0, a && b};", 2, 0, 0);
      ("assign o = {7'd0, a || b};", 2, 0, 1);
      ("assign o = {7'd0, !a};", 0, 0, 1);
      ("assign o = -a;", 1, 0, 0xFF);
      ("assign o = a * b;", 7, 9, 63);
      ("assign o = {7'd0, $signed(a) < $signed(b)};", 0xFF (* -1 *), 1, 1);
    ]
  in
  List.iter
    (fun (body, a, b, expect) ->
      let src = header ^ body ^ " endmodule" in
      Alcotest.(check int) body expect (eval_sv src [ ("a", a); ("b", b) ]))
    cases

let test_register_semantics () =
  let src =
    "module m (input wire clk, input wire rst, input wire en,\n\
     input wire [7:0] d, output wire [7:0] o);\n\
     reg [7:0] q;\n\
     always_ff @(posedge clk) begin\n\
     if (rst) begin q <= 8'h2a; end else begin q <= en ? d : q; end\n\
     end\n\
     assign o = q;\n\
     endmodule"
  in
  let c = elab src in
  let sim = Sim.create c in
  Alcotest.(check int) "reset value" 0x2A (Sim.out_int sim "o");
  Sim.set_input_int sim "en" 1;
  Sim.set_input_int sim "d" 0x77;
  Sim.step sim;
  Alcotest.(check int) "loaded" 0x77 (Sim.out_int sim "o");
  Sim.set_input_int sim "en" 0;
  Sim.set_input_int sim "d" 0x11;
  Sim.step sim;
  Alcotest.(check int) "held" 0x77 (Sim.out_int sim "o")

let test_localparam_and_repl () =
  let src =
    "module m (input wire [7:0] a, output wire [7:0] o);\n\
     localparam MAGIC = 8'h0f;\n\
     wire [7:0] t = a & MAGIC;\n\
     assign o = {2{t[3:0]}};\n\
     endmodule"
  in
  Alcotest.(check int) "localparam + replication" 0x55 (eval_sv src [ ("a", 0xF5) ])

let test_errors () =
  let expect_fail name src =
    Alcotest.(check bool) name true
      (try
         ignore (elab src);
         false
       with
      | Frontend.Elaborate.Elab_error _ | Frontend.Parser.Parse_error _
      | Lexer_tokens.Error _ | Failure _ ->
          true)
  in
  expect_fail "unknown identifier"
    "module m (output wire o); assign o = nonexistent; endmodule";
  expect_fail "combinational cycle"
    "module m (output wire o); wire a = b; wire b = a; assign o = a; endmodule";
  expect_fail "double wire assign"
    "module m (input wire i, output wire o); wire a = i; assign a = i; assign o = a; endmodule";
  expect_fail "syntax error" "module m (input wire i, output wire o); assign o = ; endmodule"

(* {1 Round-trip: emit -> parse -> elaborate} *)

let duts () =
  [
    ("vscale", Duts.Vscale.create ());
    ("maple", Duts.Maple.create ());
    ("aes", Duts.Aes.create ());
    ("cva6", Duts.Cva6lite.create ());
    ("divider", Duts.Divider.create ());
  ]

let test_round_trip_sim () =
  List.iter
    (fun (name, dut) ->
      let dut' = elab (Rtl.Verilog.to_string dut) in
      let st = Random.State.make [| 11 |] in
      let sim1 = Sim.create dut and sim2 = Sim.create dut' in
      for _ = 1 to 60 do
        List.iter
          (fun p ->
            let v = Bitvec.random st (Signal.width p.Circuit.signal) in
            Sim.set_input sim1 p.Circuit.port_name v;
            Sim.set_input sim2 p.Circuit.port_name v)
          (Circuit.inputs dut);
        List.iter
          (fun p ->
            let n = p.Circuit.port_name in
            if not (Bitvec.equal (Sim.out sim1 n) (Sim.out sim2 n)) then
              Alcotest.failf "%s: output %s differs after round trip" name n)
          (Circuit.outputs dut);
        Sim.step sim1;
        Sim.step sim2
      done)
    (duts ())

let test_round_trip_formal () =
  (* Formal equivalence of the round trip, on the smaller designs. *)
  List.iter
    (fun (name, dut) ->
      let dut' = elab (Rtl.Verilog.to_string dut) in
      match Bmc.equiv ~max_depth:6 dut dut' with
      | Bmc.Bounded_proof _ -> ()
      | Bmc.Cex (cex, _) ->
          Alcotest.failf "%s: formally inequivalent after round trip (depth %d)" name
            cex.Bmc.cex_depth
      | Bmc.Unknown (r, _) ->
          Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r))
    [ ("maple", Duts.Maple.create ()); ("divider", Duts.Divider.create ()) ]

let prop_random_circuit_round_trip seed =
  (* Random circuits through the emitter and back: behaviourally equal. *)
  let st = Random.State.make [| seed |] in
  let dut = Gen_circuit.random_circuit st ~num_nodes:25 ~num_regs:2 in
  let dut' = elab (Rtl.Verilog.to_string dut) in
  let sim1 = Sim.create dut and sim2 = Sim.create dut' in
  let trace = List.init 8 (fun _ -> Gen_circuit.random_inputs st) in
  Gen_circuit.run_outputs sim1 trace = Gen_circuit.run_outputs sim2 trace

let round_trip_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"random circuits round-trip"
       QCheck.(make Gen.(int_bound 1_000_000))
       prop_random_circuit_round_trip)

(* {1 Hierarchy: multi-module sources, instances, boundaries} *)

let hier_sv =
  "module stash_unit (\n\
  \  input wire clk, input wire rst,\n\
  \  input wire cap, input wire [7:0] din, input wire [7:0] query,\n\
  \  output wire hit\n\
   );\n\
  \  reg [7:0] stash;\n\
  \  always_ff @(posedge clk) begin\n\
  \    if (rst) begin stash <= 8'h00; end\n\
  \    else begin stash <= cap ? din : stash; end\n\
  \  end\n\
  \  assign hit = query == stash;\n\
   endmodule\n\
   module top (\n\
  \  input wire clk, input wire rst,\n\
  \  input wire capture, input wire [7:0] data, input wire [7:0] probe,\n\
  \  output wire found\n\
   );\n\
  \  wire unit_hit;\n\
  \  stash_unit u0 (.clk(clk), .rst(rst), .cap(capture), .din(data),\n\
  \                 .query(probe), .hit(unit_hit));\n\
  \  assign found = unit_hit;\n\
   endmodule\n"

let test_hierarchy_elaboration () =
  let dut = Frontend.Elaborate.circuit_of_string ~top:"top" hier_sv in
  (* The flattened register carries the instance path. *)
  Alcotest.(check bool) "prefixed register" true
    (match Circuit.find_reg dut "u0.stash" with _ -> true | exception Not_found -> false);
  (* The instance was recorded as a boundary. *)
  Alcotest.(check (list string)) "boundary names" [ "u0" ]
    (List.map (fun b -> b.Circuit.bnd_name) (Circuit.boundaries dut));
  (* Behaviour. *)
  let sim = Sim.create dut in
  Sim.set_input_int sim "capture" 1;
  Sim.set_input_int sim "data" 0x42;
  Sim.step sim;
  Sim.set_input_int sim "capture" 0;
  Sim.set_input_int sim "probe" 0x42;
  Alcotest.(check int) "hit through hierarchy" 1 (Sim.out_int sim "found");
  Sim.set_input_int sim "probe" 0x41;
  Alcotest.(check int) "miss" 0 (Sim.out_int sim "found")

let test_hierarchy_blackbox () =
  let dut = Frontend.Elaborate.circuit_of_string ~top:"top" hier_sv in
  (* The full design leaks through the stash; blackboxing the instance
     (declared purely in source) removes that state. *)
  (match Autocc.Ft.check ~max_depth:10 (Autocc.Ft.generate ~threshold:2 dut) with
  | Bmc.Cex _ -> ()
  | Bmc.Bounded_proof _ -> Alcotest.fail "the stash instance must leak"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r));
  match
    Autocc.Ft.check ~max_depth:10
      (Autocc.Ft.generate ~threshold:2 ~blackbox:[ "u0" ] dut)
  with
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Cex _ -> Alcotest.fail "blackboxing the instance removes the state"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

let test_nested_hierarchy () =
  (* Two levels of instantiation; state and boundaries nest with dotted
     paths. *)
  let src =
    "module leaf (input wire clk, input wire rst, input wire [3:0] d,\n\
    \             output wire [3:0] q);\n\
    \  reg [3:0] r;\n\
    \  always_ff @(posedge clk) begin\n\
    \    if (rst) begin r <= 4'h0; end else begin r <= d; end end\n\
    \  assign q = r;\n\
     endmodule\n\
     module mid (input wire clk, input wire rst, input wire [3:0] x,\n\
    \            output wire [3:0] y);\n\
    \  wire [3:0] t;\n\
    \  leaf l (.clk(clk), .rst(rst), .d(x), .q(t));\n\
    \  assign y = t + 4'd1;\n\
     endmodule\n\
     module root (input wire clk, input wire rst, input wire [3:0] a,\n\
    \             output wire [3:0] z);\n\
    \  wire [3:0] m;\n\
    \  mid inner (.clk(clk), .rst(rst), .x(a), .y(m));\n\
    \  assign z = m;\n\
     endmodule\n"
  in
  let dut = Frontend.Elaborate.circuit_of_string ~top:"root" src in
  Alcotest.(check bool) "nested register path" true
    (match Circuit.find_reg dut "inner.l.r" with _ -> true | exception Not_found -> false);
  Alcotest.(check (list string)) "nested boundaries" [ "inner"; "inner.l" ]
    (List.sort compare (List.map (fun b -> b.Circuit.bnd_name) (Circuit.boundaries dut)));
  let sim = Sim.create dut in
  Sim.set_input_int sim "a" 7;
  Sim.step sim;
  Alcotest.(check int) "pipeline through two levels" 8 (Sim.out_int sim "z")

let test_hierarchy_errors () =
  let expect_fail name src =
    Alcotest.(check bool) name true
      (try
         ignore (Frontend.Elaborate.circuit_of_string ~top:"top" src);
         false
       with _ -> true)
  in
  expect_fail "unknown module"
    "module top (input wire i, output wire o);\n\
     ghost g (.x(i), .y(o));\nassign o = i;\nendmodule";
  expect_fail "unknown port"
    "module sub (input wire p, output wire q); assign q = p; endmodule\n\
     module top (input wire i, output wire o);\n\
     wire w; sub s (.nope(i), .q(w)); assign o = w; endmodule";
  expect_fail "output connection must be an identifier"
    "module sub (input wire p, output wire q); assign q = p; endmodule\n\
     module top (input wire i, output wire o);\n\
     sub s (.p(i), .q(i & i)); assign o = i; endmodule"

(* {1 The paper's headline flow: .sv file in, covert channel out} *)

let leaky_sv =
  "// A lookup engine with a hidden stash register.\n\
   module lookup (\n\
  \  input wire clk,\n\
  \  input wire rst,\n\
  \  //AutoCC Common\n\
  \  input wire [3:0] debug_level,\n\
  \  input wire req_valid,\n\
  \  input wire [7:0] req_data,\n\
  \  input wire req_capture,\n\
  \  output wire hit,\n\
  \  output wire [3:0] dbg\n\
   );\n\
  \  reg [7:0] stash;\n\
  \  always_ff @(posedge clk) begin\n\
  \    if (rst) begin stash <= 8'h00; end\n\
  \    else begin stash <= (req_valid && req_capture) ? req_data : stash; end\n\
  \  end\n\
  \  assign hit = req_valid && (req_data == stash);\n\
  \  assign dbg = debug_level;\n\
   endmodule\n"

let test_sv_to_covert_channel () =
  let dut = elab leaky_sv in
  (* The annotation and the naming convention were picked up. *)
  Alcotest.(check (list string)) "common input" [ "debug_level" ] (Circuit.common dut);
  Alcotest.(check bool) "req transaction inferred" true
    (List.exists
       (fun tx -> tx.Circuit.valid = "req_valid" && List.mem "req_data" tx.Circuit.payloads)
       (Circuit.in_tx dut));
  (* The full paper flow: FT from the parsed module, CEX via the stash. *)
  let ft = Autocc.Ft.generate ~threshold:2 dut in
  match Autocc.Ft.check ~max_depth:12 ft with
  | Bmc.Bounded_proof _ -> Alcotest.fail "the stash must leak"
  | Bmc.Cex (cex, _) -> (
      match Autocc.Ft.spy_start_cycle ft cex with
      | None -> Alcotest.fail "spy mode must be reached"
      | Some cycle ->
          Alcotest.(check bool) "stash root-caused" true
            (List.exists
               (fun (n, _, _) -> n = "stash")
               (Autocc.Ft.state_diff ft cex ~cycle)))
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

let test_sv_fix_and_prove () =
  (* Instrument the parsed module with a flush and prove the channel
     closed — end-to-end from source text. *)
  let dut = Autocc.Flush.instrument ~regs:[ "stash" ] (elab leaky_sv) in
  let ft =
    Autocc.Ft.generate ~threshold:2
      ~flush_done:(Autocc.Flush.flush_done_of_input ())
      dut
  in
  match Autocc.Ft.check ~max_depth:12 ft with
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Cex _ -> Alcotest.fail "flushing the stash closes the channel"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

let () =
  Alcotest.run "frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "literals" `Quick test_lexer_literals;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
        ] );
      ( "elaboration",
        [
          Alcotest.test_case "expression semantics" `Quick test_expression_semantics;
          Alcotest.test_case "register semantics" `Quick test_register_semantics;
          Alcotest.test_case "localparam + replication" `Quick test_localparam_and_repl;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case "all DUTs (simulation)" `Quick test_round_trip_sim;
          Alcotest.test_case "formal equivalence" `Quick test_round_trip_formal;
          round_trip_prop;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "elaboration" `Quick test_hierarchy_elaboration;
          Alcotest.test_case "instance blackboxing" `Quick test_hierarchy_blackbox;
          Alcotest.test_case "nested instances" `Quick test_nested_hierarchy;
          Alcotest.test_case "errors" `Quick test_hierarchy_errors;
        ] );
      ( "autocc-from-sv",
        [
          Alcotest.test_case "covert channel from .sv" `Quick test_sv_to_covert_channel;
          Alcotest.test_case "fix and prove from .sv" `Quick test_sv_fix_and_prove;
        ] );
    ]

(* System-level tests: the MAPLE software API co-simulation and the
   Listing 2 covert-channel exploit, plus the random-testing baseline. *)

let test_api_roundtrip () =
  let api = Soc.Api.create () in
  Soc.Api.dec_init api;
  Soc.Api.dec_set_array_base api Soc.Api.vaddr_array;
  Soc.Api.dec_load_word_async api 5;
  Alcotest.(check int) "array[5] = 5" 5 (Soc.Api.dec_consume_word api);
  Soc.Api.dec_load_word_async api 9;
  Alcotest.(check int) "array[9] = 9" 9 (Soc.Api.dec_consume_word api)

let test_exploit_recovers_secret () =
  let r = Soc.Exploit.run ~secret:0xdeadbeef ~iterations:8 () in
  Alcotest.(check int) "recovered 0xdeadbeef" 0xdeadbeef r.Soc.Exploit.recovered;
  Alcotest.(check bool) "fewer than 6000 cycles" true (r.Soc.Exploit.cycles < 6000)

let test_exploit_closed_by_fix () =
  let r = Soc.Exploit.run ~config:Duts.Maple.fixed ~secret:0xdeadbeef ~iterations:8 () in
  Alcotest.(check int) "recovered zero" 0 r.Soc.Exploit.recovered

let test_exploit_other_secrets () =
  List.iter
    (fun secret ->
      let r = Soc.Exploit.run ~secret ~iterations:8 () in
      Alcotest.(check int) (Printf.sprintf "secret %x" secret) secret r.Soc.Exploit.recovered)
    [ 0x0; 0x12345678; 0xffffffff; 0xcafe0042 ]

(* The M2 binary channel at system level: the spy distinguishes whether
   the victim disabled the TLB by probing an unmapped address and
   watching for the page fault. *)
let m2_probe ~config ~victim_bit =
  let api = Soc.Api.create ~config () in
  (* Victim: *)
  Soc.Api.dec_init api;
  Soc.Api.dec_set_tlb_enable api (not victim_bit);
  Soc.Api.dec_close api;
  (* Spy: *)
  Soc.Api.dec_init api;
  Soc.Api.dec_set_array_base api 0xF0 (* unmapped region *);
  Soc.Api.dec_load_word_async api 0;
  Soc.Api.last_fault api

let test_m2_binary_channel () =
  let f0 = m2_probe ~config:Duts.Maple.vulnerable ~victim_bit:false in
  let f1 = m2_probe ~config:Duts.Maple.vulnerable ~victim_bit:true in
  Alcotest.(check bool) "spy distinguishes the victim bit" true (f0 <> f1);
  let g0 = m2_probe ~config:Duts.Maple.fixed ~victim_bit:false in
  let g1 = m2_probe ~config:Duts.Maple.fixed ~victim_bit:true in
  Alcotest.(check bool) "fix closes the binary channel" true (g0 = g1)

(* {1 Random-testing baseline} *)

module Signal = Rtl.Signal

let wide_leaky_dut w =
  let open Signal in
  let din = input "din" w in
  let capture = input "capture" 1 in
  let query = input "query" w in
  let stash = reg "stash" w in
  reg_set_next stash (mux2 capture din stash);
  Rtl.Circuit.create ~name:"wide_leaky" ~outputs:[ ("hit", query ==: stash) ] ()

let test_baseline_finds_narrow () =
  (* A 4-bit channel: random probing hits it fast. *)
  let r = Baseline.search ~max_trials:2000 (wide_leaky_dut 4) in
  Alcotest.(check bool) "found" true r.Baseline.found

let test_baseline_misses_wide () =
  (* A 24-bit channel: the same budget is hopeless, while BMC still finds
     it at the same depth — the paper's core efficiency claim. *)
  let r = Baseline.search ~max_trials:200 (wide_leaky_dut 24) in
  Alcotest.(check bool) "not found in budget" false r.Baseline.found;
  match
    Autocc.Ft.check ~max_depth:8 (Autocc.Ft.generate ~threshold:2 (wide_leaky_dut 24))
  with
  | Bmc.Cex _ -> ()
  | Bmc.Bounded_proof _ -> Alcotest.fail "BMC must find the wide channel"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

let test_baseline_flush_script () =
  (* With a scripted cleanup, the fixed MAPLE shows no divergence. *)
  let flush_script =
    [ ("cfg_wen", 1); ("cfg_addr", Duts.Maple.cfg_cleanup) ] :: [ []; []; [] ]
  in
  let r =
    Baseline.search ~max_trials:300 ~flush_script
      (Duts.Maple.create ~config:Duts.Maple.fixed ())
  in
  ignore r.Baseline.found;
  (* The vulnerable design diverges under the same script. *)
  let r' =
    Baseline.search ~max_trials:300 ~flush_script (Duts.Maple.create ())
  in
  Alcotest.(check bool) "vulnerable found by random" true r'.Baseline.found

let () =
  Alcotest.run "soc"
    [
      ( "api",
        [
          Alcotest.test_case "roundtrip" `Quick test_api_roundtrip;
          Alcotest.test_case "m2 binary channel" `Quick test_m2_binary_channel;
        ] );
      ( "exploit",
        [
          Alcotest.test_case "recovers 0xdeadbeef" `Quick test_exploit_recovers_secret;
          Alcotest.test_case "fix closes it" `Quick test_exploit_closed_by_fix;
          Alcotest.test_case "other secrets" `Quick test_exploit_other_secrets;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "finds narrow channel" `Quick test_baseline_finds_narrow;
          Alcotest.test_case "misses wide channel" `Quick test_baseline_misses_wide;
          Alcotest.test_case "flush script" `Quick test_baseline_flush_script;
        ] );
    ]

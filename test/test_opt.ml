(* The word-level optimization pipeline, cross-checked against the
   simulator and the unoptimized BMC engine.

   Deterministic cases pin each pass individually (strash/CSE, algebraic
   rewrites, cone-of-influence, the inductive SAT sweep and register
   correspondence); the fuzz section then drives [Opt.optimize] over
   random circuits and requires

   - cycle-accuracy: the optimized circuit and the original produce
     identical output streams on the [Sim] interpreter under the same
     random stimulus;
   - verdict stability: [Bmc.check] at -O0 and -O2, and
     [Parallel.check ~opt:O2], agree on the outcome kind and the
     counterexample depth, and every -O2 counterexample replays on the
     full unoptimized circuit via [Bmc.validate].

   Like test_parallel, the binary honours AUTOCC_JOBS so the dune rules
   exercise both the in-calling-domain fallback (1) and a real worker
   pool (4). *)

module Signal = Rtl.Signal
module Circuit = Rtl.Circuit

let jobs =
  match Sys.getenv_opt "AUTOCC_JOBS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

(* {1 Deterministic pass tests} *)

let test_level_of_int () =
  Alcotest.(check bool) "0" true (Opt.level_of_int 0 = Opt.O0);
  Alcotest.(check bool) "1" true (Opt.level_of_int 1 = Opt.O1);
  Alcotest.(check bool) "2" true (Opt.level_of_int 2 = Opt.O2);
  Alcotest.(check bool) "9" true (Opt.level_of_int 9 = Opt.O2);
  Alcotest.check_raises "negative"
    (Invalid_argument "Opt.level_of_int: negative level") (fun () ->
      ignore (Opt.level_of_int (-1)))

let test_identity_at_o0 () =
  let open Signal in
  let a = input "a" 4 in
  let c = Circuit.create ~name:"id" ~outputs:[ ("o", a +: one 4) ] () in
  let r = Opt.optimize ~level:Opt.O0 c in
  Alcotest.(check bool) "same circuit" true (r.Opt.opt_circuit == c);
  Alcotest.(check int) "no nodes dropped" r.Opt.opt_stats.Opt.o_nodes_before
    r.Opt.opt_stats.Opt.o_nodes_after

let test_cse () =
  (* Two structurally identical adders built as distinct nodes must
     collapse to one; commutative normalization also catches b+a. *)
  let open Signal in
  let a = input "a" 4 and b = input "b" 4 in
  let c =
    Circuit.create ~name:"cse"
      ~outputs:[ ("o0", a +: b); ("o1", a +: b); ("o2", b +: a) ]
      ()
  in
  let r = Opt.optimize ~level:Opt.O1 c in
  Alcotest.(check bool) "cse hits" true (r.Opt.opt_stats.Opt.o_cse_merged >= 2);
  let outs = Circuit.outputs r.Opt.opt_circuit in
  let sig_of n =
    (List.find (fun p -> p.Circuit.port_name = n) outs).Circuit.signal
  in
  Alcotest.(check bool) "o0 == o1" true (sig_of "o0" == sig_of "o1");
  Alcotest.(check bool) "o0 == o2" true (sig_of "o0" == sig_of "o2")

let test_rewrites () =
  (* Annihilators, identities and mux-equal-arms must fold away without
     SAT: the whole cone reduces to the inputs themselves. *)
  let open Signal in
  let a = input "a" 4 and c = input "c" 1 in
  let z = zero 4 in
  let circuit =
    Circuit.create ~name:"rw"
      ~outputs:
        [
          ("and0", a &: z); (* -> 0 *)
          ("or0", a |: z); (* -> a *)
          ("muxeq", mux2 c a a); (* -> a *)
          ("notnot", ~:(~:a)); (* -> a *)
        ]
      ()
  in
  let r = Opt.optimize ~level:Opt.O1 circuit in
  Alcotest.(check bool) "rewrites fired" true (r.Opt.opt_stats.Opt.o_rewrites >= 4);
  let outs = Circuit.outputs r.Opt.opt_circuit in
  let sig_of n =
    (List.find (fun p -> p.Circuit.port_name = n) outs).Circuit.signal
  in
  let is_const s = Signal.const_value s <> None in
  let is_input s = match Signal.op s with Signal.Input _ -> true | _ -> false in
  Alcotest.(check bool) "a&0 is const" true (is_const (sig_of "and0"));
  Alcotest.(check bool) "a|0 is a" true (is_input (sig_of "or0"));
  Alcotest.(check bool) "mux2 c a a is a" true (is_input (sig_of "muxeq"));
  Alcotest.(check bool) "~~a is a" true (is_input (sig_of "notnot"))

let test_eq_over_concat () =
  (* Eq of two concats splits into part-wise equalities, which lets the
     shared low part cancel structurally: {x,a} == {y,a} -> x == y. *)
  let open Signal in
  let a = input "a" 4 and x = input "c" 1 and y = input "d" 7 in
  let y0 = select y 0 0 in
  let circuit =
    Circuit.create ~name:"eqcat"
      ~outputs:[ ("o", concat [ x; a ] ==: concat [ y0; a ]) ]
      ()
  in
  let r = Opt.optimize ~level:Opt.O1 circuit in
  Alcotest.(check bool) "rewrites fired" true (r.Opt.opt_stats.Opt.o_rewrites >= 1);
  (* a == a folded to 1; the survivor depends only on the 1-bit parts. *)
  Alcotest.(check bool) "smaller" true
    (r.Opt.opt_stats.Opt.o_nodes_after < r.Opt.opt_stats.Opt.o_nodes_before)

let test_coi () =
  let open Signal in
  let a = input "a" 4 and b = input "b" 4 in
  let dead = reg "dead" 4 in
  reg_set_next dead (dead *: b);
  let circuit =
    Circuit.create ~name:"coi"
      ~outputs:[ ("live", a +: one 4); ("dead", dead) ]
      ()
  in
  let r = Opt.optimize ~level:Opt.O1 ~keep_outputs:[ "live" ] circuit in
  Alcotest.(check bool) "dropped the dead cone" true
    (r.Opt.opt_stats.Opt.o_coi_dropped > 0);
  Alcotest.(check int) "one output left" 1
    (List.length (Circuit.outputs r.Opt.opt_circuit));
  Alcotest.(check int) "no registers left" 0
    (List.length (Circuit.regs r.Opt.opt_circuit))

let test_sweep_comb_merge () =
  (* XOR written two ways: structurally different, so strash cannot see
     it, but the inductive sweep proves the equivalence and merges. *)
  let open Signal in
  let a = input "a" 4 and b = input "b" 4 in
  let x1 = a ^: b in
  let x2 = (a |: b) &: ~:(a &: b) in
  let circuit =
    Circuit.create ~name:"sweep" ~outputs:[ ("o0", x1); ("o1", x2) ] ()
  in
  (* ~sweep_min:0 bypasses the size gate — these circuits are far below
     the production threshold, and the point here is the sweep itself. *)
  let r = Opt.optimize ~level:Opt.O2 ~sweep_min:0 circuit in
  Alcotest.(check bool) "sweep merged" true
    (r.Opt.opt_stats.Opt.o_sweep_merged >= 1);
  let outs = Circuit.outputs r.Opt.opt_circuit in
  let sig_of n =
    (List.find (fun p -> p.Circuit.port_name = n) outs).Circuit.signal
  in
  Alcotest.(check bool) "outputs share one node" true
    (sig_of "o0" == sig_of "o1")

let test_reg_correspondence () =
  (* Twin registers with the same reset value and pointwise-equal (but
     structurally distinct) next-state functions: only the inductive
     register-correspondence pass can merge them. *)
  let open Signal in
  let a = input "a" 4 in
  let r1 = reg "r1" 4 and r2 = reg "r2" 4 in
  reg_set_next r1 (r1 +: a);
  reg_set_next r2 (r2 +: a);
  let circuit =
    Circuit.create ~name:"twins" ~outputs:[ ("eq", r1 ==: r2) ] ()
  in
  let r = Opt.optimize ~level:Opt.O2 ~sweep_min:0 circuit in
  Alcotest.(check bool) "registers merged" true
    (r.Opt.opt_stats.Opt.o_regs_merged >= 1);
  (* With r1 and r2 merged, eq folds to constant 1 — after which the
     cone-of-influence pass drops the register cone entirely. *)
  let o = (List.hd (Circuit.outputs r.Opt.opt_circuit)).Circuit.signal in
  Alcotest.(check bool) "eq is const" true (Signal.const_value o <> None);
  Alcotest.(check bool) "at most one register left" true
    (List.length (Circuit.regs r.Opt.opt_circuit) <= 1)

let test_sweep_respects_difference () =
  (* Same shapes as the twins above but different reset values: the base
     case refutes the merge, and BMC still finds the depth-0 failure. *)
  let open Signal in
  let a = input "a" 4 in
  let r1 = reg "r1" 4 in
  let r2 = reg ~init:(Bitvec.of_int ~width:4 1) "r2" 4 in
  reg_set_next r1 (r1 +: a);
  reg_set_next r2 (r2 +: a);
  let circuit =
    Circuit.create ~name:"twins_ne" ~outputs:[ ("eq", r1 ==: r2) ] ()
  in
  let r = Opt.optimize ~level:Opt.O2 ~sweep_min:0 circuit in
  Alcotest.(check int) "no register merged" 0 r.Opt.opt_stats.Opt.o_regs_merged;
  let property =
    { Bmc.assumes = []; asserts = [ ("ne", ~:(r1 ==: r2)) ] }
  in
  match
    ( Bmc.check ~max_depth:3 ~opt:Opt.O0 circuit property,
      Bmc.check ~max_depth:3 ~opt:Opt.O2 circuit property )
  with
  | Bmc.Bounded_proof _, Bmc.Bounded_proof _ -> ()
  | _ -> Alcotest.fail "r1 <> r2 should hold (r2 starts at 1)"

(* {1 Differential fuzzing}

   Each seed draws one random circuit and checks, in order: simulator
   cycle-accuracy of the optimized netlist, then verdict/depth agreement
   of -O0 vs -O2 vs the parallel engine at -O2 on a random property. *)

let outputs_agree c1 c2 cycles =
  let o1 = Gen_circuit.run_outputs (Sim.create c1) cycles in
  let o2 = Gen_circuit.run_outputs (Sim.create c2) cycles in
  List.for_all2
    (fun r1 r2 ->
      List.for_all2
        (fun (n1, v1) (n2, v2) -> n1 = n2 && Bitvec.equal v1 v2)
        r1 r2)
    o1 o2

let check_opt seed =
  let st = Random.State.make [| seed |] in
  let circuit = Gen_circuit.random_circuit st ~num_nodes:25 ~num_regs:3 in
  (* Simulator cross-check on the full circuit (all outputs kept). *)
  let r = Opt.optimize ~level:Opt.O2 ~sweep_min:0 circuit in
  let cycles = List.init 8 (fun _ -> Gen_circuit.random_inputs st) in
  if not (outputs_agree circuit r.Opt.opt_circuit cycles) then false
  else
    (* Verdict cross-check on a random multi-assert property. *)
    let property =
      Gen_circuit.random_property st circuit
        ~num_asserts:(2 + Random.State.int st 3)
    in
    let max_depth = 6 in
    let o0 = Bmc.check ~max_depth ~opt:Opt.O0 circuit property in
    let o2 = Bmc.check ~max_depth ~opt:Opt.O2 circuit property in
    let par = Parallel.check ~jobs ~max_depth ~opt:Opt.O2 circuit property in
    let agree a b =
      match (a, b) with
      | Bmc.Bounded_proof _, Bmc.Bounded_proof _ -> true
      | Bmc.Cex (c1, _), Bmc.Cex (c2, _) ->
          c1.Bmc.cex_depth = c2.Bmc.cex_depth
          (* The -O2 trace must replay on the FULL unoptimized circuit
             with exactly the failing set the engine reported. *)
          && List.sort compare c2.Bmc.cex_failed
             = List.sort compare
                 (Bmc.validate c2.Bmc.cex_circuit property c2.Bmc.cex_inputs
                    c2.Bmc.cex_depth)
      | _ -> false
    in
    agree o0 o2 && agree o0 par

let fuzz ~count name =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name
       QCheck.(make Gen.(int_bound 1_000_000))
       check_opt)

let () =
  Alcotest.run "opt"
    [
      ( "passes",
        [
          Alcotest.test_case "level_of_int" `Quick test_level_of_int;
          Alcotest.test_case "O0 is the identity" `Quick test_identity_at_o0;
          Alcotest.test_case "strash/CSE" `Quick test_cse;
          Alcotest.test_case "algebraic rewrites" `Quick test_rewrites;
          Alcotest.test_case "eq-over-concat split" `Quick test_eq_over_concat;
          Alcotest.test_case "cone of influence" `Quick test_coi;
          Alcotest.test_case "sweep merges equivalent logic" `Quick
            test_sweep_comb_merge;
          Alcotest.test_case "register correspondence merges twins" `Quick
            test_reg_correspondence;
          Alcotest.test_case "sweep keeps distinct registers apart" `Quick
            test_sweep_respects_difference;
        ] );
      ( "fuzz",
        [ fuzz ~count:200 "optimized == original (sim, bmc, parallel)" ] );
    ]

(* Tests of the CEX provenance engine: backward trace slicing,
   replay-checked witness minimization, fingerprint clustering and the
   campaign driver's JSON/HTML artifacts. *)

module Signal = Rtl.Signal
module Circuit = Rtl.Circuit
module Json = Obs.Json
open Signal

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* The classic hidden-state channel: [stash] captures input data on
   demand and is never flushed; the output reveals whether a later query
   matches the stashed value. *)
let leaky_dut () =
  let din = input "din" 4 in
  let capture = input "capture" 1 in
  let query = input "query" 4 in
  let stash = reg "stash" 4 in
  reg_set_next stash (mux2 capture din stash);
  Circuit.create ~name:"leaky"
    ~outputs:[ ("hit", query ==: stash) ]
    ()

(* Two independent channels plus a benign free-running counter. *)
let two_leak_dut () =
  let din = input "din" 4 in
  let cap1 = input "cap1" 1 in
  let cap2 = input "cap2" 1 in
  let query = input "query" 4 in
  let stash1 = reg "stash1" 4 in
  let stash2 = reg "stash2" 4 in
  let benign = reg "benign" 4 in
  reg_set_next stash1 (mux2 cap1 din stash1);
  reg_set_next stash2 (mux2 cap2 din stash2);
  reg_set_next benign (benign +: one 4);
  Circuit.create ~name:"twoleak"
    ~outputs:[ ("hit1", query ==: stash1); ("hit2", query ==: stash2) ]
    ()

let find_cex ?(max_depth = 12) dut =
  let ft = Autocc.Ft.generate ~threshold:2 dut in
  match Autocc.Ft.check ~max_depth ft with
  | Bmc.Cex (cex, _) -> (ft, cex)
  | Bmc.Bounded_proof _ -> Alcotest.fail "expected a covert-channel CEX"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

let test_slice () =
  let ft, cex = find_cex (leaky_dut ()) in
  let sl = Explain.slice ft cex in
  Alcotest.(check string) "assert" "as__hit_eq" sl.Explain.sl_assert;
  Alcotest.(check (option string)) "output" (Some "hit") sl.Explain.sl_output;
  Alcotest.(check (option string)) "culprit" (Some "stash") sl.Explain.sl_culprit;
  Alcotest.(check bool) "spy start found" true (sl.Explain.sl_spy_start <> None);
  Alcotest.(check int) "depth" cex.Bmc.cex_depth sl.Explain.sl_depth;
  Alcotest.(check int) "one width per cycle" (cex.Bmc.cex_depth + 1)
    (Array.length sl.Explain.sl_widths);
  (* The chain runs origin-first: cycles never decrease, the last hop is
     the observable output, and the stash register is on the path. *)
  let chain = sl.Explain.sl_chain in
  Alcotest.(check bool) "chain nonempty" true (chain <> []);
  let last = List.nth chain (List.length chain - 1) in
  Alcotest.(check bool) "last hop is the output" true
    (last.Explain.link_kind = Explain.Output && last.Explain.link_label = "hit");
  Alcotest.(check int) "output diverges at cex depth" cex.Bmc.cex_depth
    last.Explain.link_cycle;
  Alcotest.(check bool) "stash register on the path" true
    (List.exists
       (fun l -> l.Explain.link_kind = Explain.Reg && l.Explain.link_label = "stash")
       chain);
  ignore
    (List.fold_left
       (fun prev l ->
         if l.Explain.link_cycle < prev then
           Alcotest.fail "chain cycles must be non-decreasing";
         l.Explain.link_cycle)
       0 chain);
  (* Every hop genuinely diverges. *)
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "hop %s diverges" l.Explain.link_label)
        false
        (Bitvec.equal l.Explain.link_a l.Explain.link_b))
    chain;
  (* The waveform strip covers every chain hop across all cycles. *)
  List.iter
    (fun (_, _, va, vb) ->
      Alcotest.(check int) "strip alpha row length" (cex.Bmc.cex_depth + 1)
        (Array.length va);
      Alcotest.(check int) "strip beta row length" (cex.Bmc.cex_depth + 1)
        (Array.length vb))
    sl.Explain.sl_trace;
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "strip has a row for %s" l.Explain.link_label)
        true
        (List.exists (fun (n, _, _, _) -> n = l.Explain.link_label) sl.Explain.sl_trace))
    chain

let test_minimize () =
  let ft, cex = find_cex (leaky_dut ()) in
  let mn = Explain.minimize ft cex in
  let m = mn.Explain.mn_cex in
  Alcotest.(check bool) "depth never grows" true (m.Bmc.cex_depth <= cex.Bmc.cex_depth);
  Alcotest.(check int) "depth delta consistent"
    (cex.Bmc.cex_depth - m.Bmc.cex_depth)
    mn.Explain.mn_depth_delta;
  Alcotest.(check bool) "performed replay trials" true (mn.Explain.mn_iterations > 0);
  Alcotest.(check bool) "still fails the original assertion" true
    (List.mem "as__hit_eq" m.Bmc.cex_failed);
  (* Replay-verify the minimized witness against the original property,
     restricted to the failing assertion (the witness circuit only
     instruments that one). *)
  let prop = ft.Autocc.Ft.property in
  let prop =
    {
      prop with
      Bmc.asserts =
        List.filter (fun (n, _) -> List.mem n m.Bmc.cex_failed) prop.Bmc.asserts;
    }
  in
  let circuit = Bmc.instrument ft.Autocc.Ft.wrapper prop in
  let failed = Bmc.validate circuit prop m.Bmc.cex_inputs m.Bmc.cex_depth in
  Alcotest.(check bool) "minimized witness replays to the same failure" true
    (List.mem "as__hit_eq" failed);
  (* Bit accounting: zeroed_bits is exactly the set-bit count the
     minimizer removed from the kept cycles. *)
  let popcount inputs =
    Array.fold_left
      (fun acc assignments ->
        List.fold_left
          (fun acc (_, v) ->
            let n = ref 0 in
            for i = 0 to Bitvec.width v - 1 do
              if Bitvec.bit v i then incr n
            done;
            acc + !n)
          acc assignments)
      0 inputs
  in
  let kept = Array.sub cex.Bmc.cex_inputs 0 (m.Bmc.cex_depth + 1) in
  Alcotest.(check int) "zeroed bit accounting"
    (popcount kept - popcount m.Bmc.cex_inputs)
    mn.Explain.mn_zeroed_bits

let test_cluster () =
  let dut = two_leak_dut () in
  let ft = Autocc.Ft.generate ~threshold:2 dut in
  let cexs =
    Bmc.check_each ~max_depth:12 ft.Autocc.Ft.wrapper ft.Autocc.Ft.property
    |> List.filter_map (function
         | _, Bmc.Cex (cex, _) -> Some cex
         | _, Bmc.Bounded_proof _ -> None
         | _, Bmc.Unknown _ -> None)
  in
  Alcotest.(check int) "one raw CEX per leaking output" 2 (List.length cexs);
  let channels = Explain.cluster ft cexs in
  Alcotest.(check int) "two distinct channels" 2 (List.length channels);
  let culprits =
    List.filter_map (fun ch -> ch.Explain.ch_culprit) channels |> List.sort compare
  in
  Alcotest.(check (list string)) "culprits" [ "stash1"; "stash2" ] culprits;
  List.iter
    (fun ch ->
      Alcotest.(check int) "one raw CEX per channel" 1 ch.Explain.ch_raw_cexs;
      Alcotest.(check bool) "fingerprint names the culprit" true
        (match ch.Explain.ch_culprit with
        | Some c -> contains ch.Explain.ch_fingerprint c
        | None -> false))
    channels;
  let fps = List.map (fun ch -> ch.Explain.ch_fingerprint) channels in
  Alcotest.(check bool) "fingerprints distinct" true
    (List.length (List.sort_uniq compare fps) = 2)

let test_cluster_dedupes () =
  (* Two CEXs for the SAME channel — e.g. the shallowest one and itself —
     must collapse into one cluster with raw_cexs = 2. *)
  let ft, cex = find_cex (leaky_dut ()) in
  let channels = Explain.cluster ft [ cex; cex ] in
  Alcotest.(check int) "one channel" 1 (List.length channels);
  let ch = List.hd channels in
  Alcotest.(check int) "two raw CEXs merged" 2 ch.Explain.ch_raw_cexs;
  Alcotest.(check (option string)) "culprit" (Some "stash") ch.Explain.ch_culprit

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_campaign () =
  let out_dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "autocc_test_campaign_%d" (Unix.getpid ()))
  in
  rm_rf out_dir;
  let entries =
    [
      {
        Explain.Campaign.e_label = "leaky";
        e_dut = "leaky";
        e_ft = (fun () -> Autocc.Ft.generate ~threshold:2 (leaky_dut ()));
        e_max_depth = 8;
      };
    ]
  in
  let result = Explain.Campaign.run ~opt:Opt.O2 ~out_dir entries in
  let r = List.hd result.Explain.Campaign.c_results in
  Alcotest.(check int) "one channel" 1 (List.length r.Explain.Campaign.r_channels);
  Alcotest.(check bool) "raw pool at least as big" true
    (r.Explain.Campaign.r_raw_cexs >= 1);
  (* Artifacts: campaign.json first, then the per-channel JSON, then the
     HTML report; all parse / look well-formed. *)
  (match result.Explain.Campaign.c_artifacts with
  | index :: _ ->
      Alcotest.(check string) "index first" "campaign.json" (Filename.basename index)
  | [] -> Alcotest.fail "no artifacts written");
  let read path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let parse path =
    match Json.parse (read path) with
    | Ok j -> j
    | Error e -> Alcotest.fail (Printf.sprintf "%s does not parse: %s" path e)
  in
  let schema j =
    match Json.member "schema" j with Some (Json.Str s) -> s | _ -> "?"
  in
  let index = parse (Filename.concat out_dir "campaign.json") in
  Alcotest.(check string) "index schema" "autocc.campaign/2" (schema index);
  let channel_file =
    match Json.member "entries" index with
    | Some (Json.List [ entry ]) -> (
        match Json.member "channels" entry with
        | Some (Json.List [ ch ]) -> (
            match Json.member "artifact" ch with
            | Some (Json.Str a) -> a
            | _ -> Alcotest.fail "channel lacks an artifact reference")
        | _ -> Alcotest.fail "index entry lacks its channel")
    | _ -> Alcotest.fail "index lacks its entry"
  in
  let ch = parse (Filename.concat out_dir channel_file) in
  Alcotest.(check string) "channel schema" "autocc.channel/1" (schema ch);
  (match Json.member "provenance" ch with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "channel artifact lacks a provenance chain");
  let html = read (Filename.concat out_dir "report.html") in
  Alcotest.(check bool) "html doctype" true
    (String.length html > 15 && String.sub html 0 15 = "<!doctype html>");
  Alcotest.(check bool) "html closed" true (contains html "</html>");
  Alcotest.(check bool) "html names the channel" true (contains html "stash");
  rm_rf out_dir

let () =
  Alcotest.run "explain"
    [
      ( "slice",
        [ Alcotest.test_case "leaky provenance chain" `Quick test_slice ] );
      ( "minimize",
        [ Alcotest.test_case "replay-checked reduction" `Quick test_minimize ] );
      ( "cluster",
        [
          Alcotest.test_case "two channels separated" `Quick test_cluster;
          Alcotest.test_case "same channel deduplicated" `Quick test_cluster_dedupes;
        ] );
      ( "campaign",
        [ Alcotest.test_case "artifacts" `Quick test_campaign ] );
    ]

(* Tests for the four paper DUTs: instruction-level simulation checks that
   each design actually works as hardware, and AutoCC-level checks that
   each known counterexample family appears (and disappears with the
   corresponding fix / refinement). *)

module V = Duts.Vscale
module M = Duts.Maple
module A = Duts.Aes
module C = Duts.Cva6lite

(* Budget-free runs must stay conclusive; an [Unknown] is a test failure. *)
let unexpected_unknown r =
  Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

(* {1 Vscale} *)

(* Drive the core against an instruction memory image; unset addresses
   fetch NOPs. *)
let vscale_run ?(dmem_rdata = 0) program cycles =
  let sim = Sim.create (V.create ()) in
  Sim.set_input_int sim "dmem_rdata" dmem_rdata;
  for _ = 1 to cycles do
    let pc = Sim.out_int sim "imem_addr" in
    let instr = match List.assoc_opt pc program with Some i -> V.instruction i | None -> V.instruction `Nop in
    Sim.set_input_int sim "imem_instr" instr;
    Sim.step sim
  done;
  sim

let test_vscale_alu_store () =
  (* Load 7 into r1 (via LOAD from dmem), add r1+r1 into r2, store r2. *)
  let program =
    [
      (0, `Load (1, 0)) (* r1 <- dmem (7) *);
      (1, `Alu (2, 1, 1)) (* r2 <- r1 + r1 = 14 *);
      (2, `Store (3, 2)) (* dmem[r3] <- r2 *);
    ]
  in
  let sim = vscale_run ~dmem_rdata:7 program 5 in
  ignore sim;
  (* Re-run and watch the write cycle. *)
  let sim = Sim.create (V.create ()) in
  Sim.set_input_int sim "dmem_rdata" 7;
  let wrote = ref None in
  for _ = 1 to 6 do
    let pc = Sim.out_int sim "imem_addr" in
    let instr = match List.assoc_opt pc program with Some i -> V.instruction i | None -> V.instruction `Nop in
    Sim.set_input_int sim "imem_instr" instr;
    if Sim.out_int sim "dmem_hwrite" = 1 then wrote := Some (Sim.out_int sim "dmem_wdata");
    Sim.step sim
  done;
  Alcotest.(check (option int)) "stored r1+r1" (Some 14) !wrote

let test_vscale_jump () =
  let program = [ (0, `Load (1, 0)); (1, `Jmp 1) ] in
  let sim = Sim.create (V.create ()) in
  Sim.set_input_int sim "dmem_rdata" 0x30;
  let pcs = ref [] in
  for _ = 1 to 6 do
    let pc = Sim.out_int sim "imem_addr" in
    pcs := pc :: !pcs;
    let instr = match List.assoc_opt pc program with Some i -> V.instruction i | None -> V.instruction `Nop in
    Sim.set_input_int sim "imem_instr" instr;
    Sim.step sim
  done;
  Alcotest.(check bool) "jumped to r1 = 0x30" true (List.mem 0x30 !pcs)

let test_vscale_irq_trap () =
  let sim = Sim.create (V.create ()) in
  (* Raise an interrupt while disabled, then enable: the trap must fire
     and redirect the PC to the vector. *)
  Sim.set_input_int sim "irq" 1;
  Sim.set_input_int sim "imem_instr" (V.instruction `Nop);
  Sim.step sim;
  Sim.set_input_int sim "irq" 0;
  Sim.step sim;
  Alcotest.(check int) "pending latched" 1 (Bitvec.to_int (Sim.reg_value sim "irq_pending"));
  Sim.set_input_int sim "imem_instr" (V.instruction (`Irqen true));
  Sim.step sim;
  (* IRQEN reaches EX one cycle later; the trap the cycle after. *)
  Sim.set_input_int sim "imem_instr" (V.instruction `Nop);
  Sim.step sim;
  Sim.step sim;
  Alcotest.(check int) "trapped to vector" 0xF0 (Sim.out_int sim "imem_addr")

let test_vscale_refinement_walk () =
  let dut = V.create () in
  (* Every stage but the last yields a CEX; the last proves. *)
  List.iter
    (fun stage ->
      let ft = V.ft_for_stage stage dut in
      match (stage, Autocc.Ft.check ~max_depth:6 ft) with
      | V.Arch_irq, Bmc.Bounded_proof _ -> ()
      | V.Arch_irq, Bmc.Cex (cex, _) ->
          Alcotest.failf "final stage should prove, CEX at %d (%s)" cex.Bmc.cex_depth
            (Autocc.Report.summary ft cex)
      | _, Bmc.Cex _ -> ()
      | s, Bmc.Bounded_proof _ ->
          Alcotest.failf "stage %s should yield a CEX" (V.stage_name s)
      | _, Bmc.Unknown (r, _) -> unexpected_unknown r)
    V.stages

(* {1 MAPLE} *)

let maple_check ?(require_outbuf_empty = true) config =
  let dut = M.create ~config () in
  let ft =
    Autocc.Ft.generate ~threshold:2
      ~flush_done:(M.flush_done ~require_outbuf_empty ())
      dut
  in
  (ft, Autocc.Ft.check ~max_depth:10 ft)

let test_maple_m2_m3 () =
  (match maple_check M.vulnerable with
  | _, Bmc.Cex _ -> ()
  | _ -> Alcotest.fail "vulnerable MAPLE must leak (M2/M3)");
  (match maple_check { M.fix_m2 = true; fix_m3 = false } with
  | _, Bmc.Cex _ -> ()
  | _ -> Alcotest.fail "fix_m2 alone leaves the M3 channel");
  match maple_check M.fixed with
  | _, Bmc.Bounded_proof _ -> ()
  | ft, Bmc.Cex (cex, _) ->
      Alcotest.failf "fixed MAPLE should prove: %s" (Autocc.Report.summary ft cex)
  | _, Bmc.Unknown (r, _) -> unexpected_unknown r

let test_maple_m1 () =
  (* With the register fixes in place, the remaining channel without the
     buffer-empty condition is the NoC output buffer (M1). *)
  match maple_check ~require_outbuf_empty:false M.fixed with
  | ft, Bmc.Cex (cex, _) ->
      let cycle =
        match Autocc.Ft.spy_start_cycle ft cex with Some c -> c | None -> cex.Bmc.cex_depth
      in
      let diffs = Autocc.Ft.state_diff ft cex ~cycle in
      Alcotest.(check bool) "outbuf state differs" true
        (List.exists (fun (n, _, _) -> String.length n >= 6 && String.sub n 0 6 = "outbuf") diffs)
  | _, Bmc.Bounded_proof _ -> Alcotest.fail "M1 channel expected"
  | _, Bmc.Unknown (r, _) -> unexpected_unknown r

let test_maple_latency_channel () =
  let dut pad = M.create ~config:M.fixed ~pad_flush:pad () in
  (* End-sync is blind to the data-dependent invalidation latency. *)
  (match
     Autocc.Ft.check ~max_depth:12
       (Autocc.Ft.generate ~threshold:2
          ~flush_done:(M.flush_done ~require_outbuf_empty:true ())
          (dut false))
   with
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Cex _ -> Alcotest.fail "end-sync should still prove"
  | Bmc.Unknown (r, _) -> unexpected_unknown r);
  (* Start-sync exposes it. *)
  (match
     Autocc.Ft.check ~max_depth:12
       (Autocc.Ft.generate ~threshold:2 ~sync:Autocc.Ft.Flush_start
          ~flush_done:(M.flush_start ~require_outbuf_empty:true ())
          (dut false))
   with
  | Bmc.Cex (cex, _) ->
      Alcotest.(check bool) "invalidation timing leaks" true
        (List.mem "as__inval_idle_eq" cex.Bmc.cex_failed
        || List.mem "as__resp_valid_eq" cex.Bmc.cex_failed)
  | Bmc.Bounded_proof _ -> Alcotest.fail "latency channel expected"
  | Bmc.Unknown (r, _) -> unexpected_unknown r);
  (* Worst-case padding restores the proof. *)
  match
    Autocc.Ft.check ~max_depth:12
      (Autocc.Ft.generate ~threshold:2 ~sync:Autocc.Ft.Flush_start
         ~flush_done:(M.flush_start ~require_outbuf_empty:true ())
         (dut true))
  with
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Cex _ -> Alcotest.fail "padding should close the latency channel"
  | Bmc.Unknown (r, _) -> unexpected_unknown r

let test_maple_inval_latency_sim () =
  (* The invalidation takes 1 + occupancy cycles; padded: always 3. *)
  let run ?pad_flush entries =
    let sim = Sim.create (M.create ?pad_flush ()) in
    (* Fill [entries] queue slots. *)
    for _ = 1 to entries do
      Sim.set_input_int sim "noc_resp_valid" 1;
      Sim.set_input_int sim "noc_resp_data" 0x5;
      Sim.step sim
    done;
    Sim.set_input_int sim "noc_resp_valid" 0;
    (* Trigger the cleanup and count cycles until idle. *)
    Sim.set_input_int sim "cfg_wen" 1;
    Sim.set_input_int sim "cfg_addr" M.cfg_cleanup;
    Sim.step sim;
    Sim.set_input_int sim "cfg_wen" 0;
    let n = ref 0 in
    while Sim.out_int sim "inval_idle" = 0 && !n < 10 do
      Sim.step sim;
      incr n
    done;
    !n
  in
  Alcotest.(check int) "empty queue: 1 cycle" 1 (run 0);
  Alcotest.(check int) "one entry: 2 cycles" 2 (run 1);
  Alcotest.(check int) "two entries: 3 cycles" 3 (run 2);
  Alcotest.(check int) "padded empty: 3 cycles" 3 (run ~pad_flush:true 0)

(* {1 AES} *)

let test_aes_encrypt_matches_reference () =
  let sim = Sim.create (A.create ()) in
  let pt = 0x3C and key = 0xA7 in
  Sim.set_input_int sim "req_valid" 1;
  Sim.set_input_int sim "req_pt" pt;
  Sim.set_input_int sim "req_key" key;
  Sim.step sim;
  Sim.set_input_int sim "req_valid" 0;
  let latency = ref 0 and result = ref None in
  for cycle = 1 to A.default_stages + 2 do
    if Sim.out_int sim "resp_valid" = 1 && !result = None then begin
      latency := cycle;
      result := Some (Sim.out_int sim "resp_ct")
    end;
    Sim.step sim
  done;
  Alcotest.(check (option int)) "ciphertext" (Some (A.encrypt ~pt ~key)) !result;
  Alcotest.(check int) "pipeline latency" A.default_stages !latency

let test_aes_pipelined_throughput () =
  (* Back-to-back requests produce back-to-back responses. *)
  let sim = Sim.create (A.create ()) in
  let inputs = [ (0x11, 0x22); (0x33, 0x44); (0x55, 0x66) ] in
  let outs = ref [] in
  for cycle = 0 to A.default_stages + 4 do
    (match List.nth_opt inputs cycle with
    | Some (pt, key) ->
        Sim.set_input_int sim "req_valid" 1;
        Sim.set_input_int sim "req_pt" pt;
        Sim.set_input_int sim "req_key" key
    | None -> Sim.set_input_int sim "req_valid" 0);
    if Sim.out_int sim "resp_valid" = 1 then outs := Sim.out_int sim "resp_ct" :: !outs;
    Sim.step sim
  done;
  let expected = List.map (fun (pt, key) -> A.encrypt ~pt ~key) inputs in
  Alcotest.(check (list int)) "pipelined results" expected (List.rev !outs)

let test_aes_a1_and_proof () =
  let dut = A.create () in
  (match Autocc.Ft.check ~max_depth:12 (Autocc.Ft.generate ~threshold:2 dut) with
  | Bmc.Cex (cex, _) ->
      Alcotest.(check bool) "response interface diverges" true
        (List.exists
           (fun n -> n = "as__resp_valid_eq" || n = "as__resp_ct_eq")
           cex.Bmc.cex_failed)
  | Bmc.Bounded_proof _ -> Alcotest.fail "A1 expected"
  | Bmc.Unknown (r, _) -> unexpected_unknown r);
  match
    Autocc.Ft.check ~max_depth:12
      (Autocc.Ft.generate ~threshold:2 ~flush_done:(A.flush_done_idle ()) dut)
  with
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Cex _ -> Alcotest.fail "idle-flush refinement should reach a proof"
  | Bmc.Unknown (r, _) -> unexpected_unknown r

(* {1 CVA6-lite} *)

let cva6_check ?(max_depth = 11) config =
  let dut = C.create ~config () in
  let ft = Autocc.Ft.generate ~threshold:2 ~flush_done:(C.flush_done ()) dut in
  Autocc.Ft.check ~max_depth ft

let test_cva6_sim_btb () =
  let sim = Sim.create (C.create ~config:C.microreset_fixed ()) in
  (* Train the BTB while the cold I$ miss is being refilled: branch at
     pc 0 jumps to 0x20. *)
  Sim.set_input_int sim "br_resolve" 1;
  Sim.set_input_int sim "br_taken" 1;
  Sim.set_input_int sim "br_pc" 0;
  Sim.set_input_int sim "br_target" 0x20;
  Sim.step sim;
  Sim.set_input_int sim "br_resolve" 0;
  Sim.set_input_int sim "axi_rvalid" 1;
  Sim.set_input_int sim "axi_rdata" 0x01;
  Sim.step sim;
  Sim.set_input_int sim "axi_rvalid" 0;
  (* The line is now valid and the BTB trained: the instruction delivered
     at pc 0 redirects the fetch to the predicted target. *)
  Sim.step sim;
  Alcotest.(check int) "predicted to 0x20" 0x20 (Sim.out_int sim "fetch_addr");
  (* Quieten the frontend (suppress new refills, answer the outstanding
     one) and run the fence; the prediction must be forgotten. *)
  Sim.set_input_int sim "fetch_ex" 1;
  Sim.set_input_int sim "axi_rvalid" 1;
  Sim.set_input_int sim "axi_rdata" 0;
  Sim.step sim;
  Sim.set_input_int sim "axi_rvalid" 0;
  Sim.set_input_int sim "fence_req" 1;
  Sim.step sim;
  Sim.set_input_int sim "fence_req" 0;
  let guard = ref 0 in
  while Sim.out_int sim "fence_busy" = 1 && !guard < 20 do
    Sim.step sim;
    incr guard
  done;
  Alcotest.(check int) "btb cleared" 0 (Bitvec.to_int (Sim.reg_value sim "btb_valid0"))

let test_cva6_sim_fetch_refill () =
  let sim = Sim.create (C.create ~config:C.microreset_fixed ()) in
  (* Cold fetch: miss, refill over AXI, then the PC advances when the
     realigner sees a compressed instruction (bit 0 set). *)
  Alcotest.(check int) "axi request on miss" 1 (Sim.out_int sim "axi_req_valid");
  Sim.step sim;
  Sim.set_input_int sim "axi_rvalid" 1;
  Sim.set_input_int sim "axi_rdata" 0x01;
  Sim.step sim;
  Sim.set_input_int sim "axi_rvalid" 0;
  Alcotest.(check int) "pc still 0" 0 (Sim.out_int sim "fetch_addr");
  Sim.step sim;
  Alcotest.(check int) "pc advanced after hit" 1 (Sim.out_int sim "fetch_addr")

let test_cva6_sim_lsu_walk () =
  let sim = Sim.create (C.create ~config:C.microreset_fixed ()) in
  (* Issue a load; expect a PTE request, then a data request, then the
     response. *)
  Sim.set_input_int sim "lsu_req" 1;
  Sim.set_input_int sim "lsu_vaddr" 0x5;
  Sim.step sim;
  Sim.set_input_int sim "lsu_req" 0;
  (* PWALK_REQ: the PTE request appears. *)
  Alcotest.(check int) "pte request" 1 (Sim.out_int sim "dmem_req_valid");
  let pte_addr = Sim.out_int sim "dmem_req_addr" in
  Alcotest.(check int) "pte address embeds vaddr" 0x25 pte_addr;
  Sim.step sim;
  (* PWALK_WAIT: deliver the PTE (ppn = 0x12). *)
  Sim.set_input_int sim "dmem_rvalid" 1;
  Sim.set_input_int sim "dmem_rdata" 0x12;
  Sim.step sim;
  Sim.set_input_int sim "dmem_rvalid" 0;
  (* DC stage: the PTE fill cached line 0x25's data; the data access
     misses and requests paddr 0x12. *)
  Alcotest.(check int) "data request" 1 (Sim.out_int sim "dmem_req_valid");
  Alcotest.(check int) "data address is ppn" 0x12 (Sim.out_int sim "dmem_req_addr");
  Sim.step sim;
  Sim.set_input_int sim "dmem_rvalid" 1;
  Sim.set_input_int sim "dmem_rdata" 0x99;
  Sim.step sim;
  Sim.set_input_int sim "dmem_rvalid" 0;
  Alcotest.(check int) "response" 1 (Sim.out_int sim "lsu_rvalid");
  Alcotest.(check int) "response data" 0x99 (Sim.out_int sim "lsu_rdata")

let test_cva6_sim_fence_clears () =
  let sim = Sim.create (C.create ~config:C.microreset_fixed ()) in
  (* Keep the frontend quiet (a permanent fetch exception suppresses AXI
     refills) so the drain phase only depends on the load unit. *)
  Sim.set_input_int sim "fetch_ex" 1;
  (* Fill the TLB via a walk (as above, compressed). *)
  Sim.set_input_int sim "lsu_req" 1;
  Sim.set_input_int sim "lsu_vaddr" 0x5;
  Sim.step sim;
  Sim.set_input_int sim "lsu_req" 0;
  Sim.step sim;
  Sim.set_input_int sim "dmem_rvalid" 1;
  Sim.set_input_int sim "dmem_rdata" 0x12;
  Sim.step sim;
  (* The D$ stage issues the data request this cycle; the response can
     arrive the next cycle at the earliest. *)
  Sim.set_input_int sim "dmem_rvalid" 0;
  Sim.step sim;
  Sim.set_input_int sim "dmem_rvalid" 1;
  Sim.set_input_int sim "dmem_rdata" 0x99;
  Sim.step sim;
  Sim.set_input_int sim "dmem_rvalid" 0;
  Sim.step sim;
  Alcotest.(check int) "tlb valid" 1 (Bitvec.to_int (Sim.reg_value sim "tlb_valid"));
  (* Run the fence to completion. *)
  Sim.set_input_int sim "fence_req" 1;
  Sim.step sim;
  Sim.set_input_int sim "fence_req" 0;
  let guard = ref 0 in
  while Sim.out_int sim "fence_busy" = 1 && !guard < 20 do
    Sim.step sim;
    incr guard
  done;
  Alcotest.(check int) "tlb cleared" 0 (Bitvec.to_int (Sim.reg_value sim "tlb_valid"));
  Alcotest.(check int) "dcache cleared" 0 (Bitvec.to_int (Sim.reg_value sim "dcache_valid0"))

let test_cva6_channels () =
  (match cva6_check C.plain_fence with
  | Bmc.Cex _ -> ()
  | Bmc.Bounded_proof _ -> Alcotest.fail "a plain fence flushes nothing"
  | Bmc.Unknown (r, _) -> unexpected_unknown r);
  (match cva6_check C.full_flush with
  | Bmc.Cex _ -> ()
  | Bmc.Bounded_proof _ -> Alcotest.fail "full flush leaves in-flight state (known channels)"
  | Bmc.Unknown (r, _) -> unexpected_unknown r);
  (match cva6_check ~max_depth:15 (C.with_fixes ~fix_c1:false C.Microreset) with
  | Bmc.Cex _ -> ()
  | Bmc.Bounded_proof _ -> Alcotest.fail "C1 expected"
  | Bmc.Unknown (r, _) -> unexpected_unknown r);
  (match cva6_check (C.with_fixes ~fix_c2:false C.Microreset) with
  | Bmc.Cex _ -> ()
  | Bmc.Bounded_proof _ -> Alcotest.fail "C2 expected"
  | Bmc.Unknown (r, _) -> unexpected_unknown r);
  (match cva6_check (C.with_fixes ~fix_c3:false C.Microreset) with
  | Bmc.Cex _ -> ()
  | Bmc.Bounded_proof _ -> Alcotest.fail "C3 expected"
  | Bmc.Unknown (r, _) -> unexpected_unknown r);
  match cva6_check C.microreset_fixed with
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Cex _ -> Alcotest.fail "fixed microreset should prove"
  | Bmc.Unknown (r, _) -> unexpected_unknown r

(* {1 Divider (Sec. 5 discussion)} *)

let divider_divide sim dividend divisor =
  Sim.set_input_int sim "start" 1;
  Sim.set_input_int sim "dividend" dividend;
  Sim.set_input_int sim "divisor" divisor;
  Sim.step sim;
  Sim.set_input_int sim "start" 0;
  let latency = ref 1 in
  while Sim.out_int sim "done_valid" = 0 && !latency < 40 do
    Sim.step sim;
    incr latency
  done;
  let result = (Sim.out_int sim "quotient", Sim.out_int sim "remainder") in
  Sim.step sim;
  (result, !latency)

let test_divider_exhaustive () =
  (* All 256 operand pairs against the reference model. *)
  let sim = Sim.create (Duts.Divider.create ()) in
  for dividend = 0 to 15 do
    for divisor = 0 to 15 do
      let result, _ = divider_divide sim dividend divisor in
      Alcotest.(check (pair int int))
        (Printf.sprintf "%d/%d" dividend divisor)
        (Duts.Divider.reference ~dividend ~divisor)
        result
    done
  done

let test_divider_latency () =
  (* Variable latency equals quotient + 2 observation cycles; the
     constant-latency variant always takes the worst case. *)
  let sim = Sim.create (Duts.Divider.create ()) in
  let _, l1 = divider_divide sim 15 1 in
  let _, l2 = divider_divide sim 3 3 in
  Alcotest.(check bool) "latency depends on data" true (l1 > l2);
  let sim = Sim.create (Duts.Divider.create ~constant_latency:true ()) in
  let _, c1 = divider_divide sim 15 1 in
  let _, c2 = divider_divide sim 3 3 in
  Alcotest.(check int) "padded latency equal" c1 c2;
  Alcotest.(check bool) "padded to the worst case" true (c1 >= l1)

let test_divider_channels () =
  (* The shared unit leaks by default; waiting for idle or restricting to
     constant-time software both close it. *)
  (match Autocc.Ft.check ~max_depth:12 (Autocc.Ft.generate ~threshold:2 (Duts.Divider.create ())) with
  | Bmc.Cex _ -> ()
  | Bmc.Bounded_proof _ -> Alcotest.fail "in-flight division must leak"
  | Bmc.Unknown (r, _) -> unexpected_unknown r);
  (match
     Autocc.Ft.check ~max_depth:12
       (Autocc.Ft.generate ~threshold:2
          ~flush_done:(Duts.Divider.flush_done_idle ())
          (Duts.Divider.create ()))
   with
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Cex _ -> Alcotest.fail "idle allocation should prove"
  | Bmc.Unknown (r, _) -> unexpected_unknown r);
  match
    Autocc.Ft.check ~max_depth:12
      (Autocc.Ft.generate ~threshold:2 ~assumes:Duts.Divider.constant_time_software
         (Duts.Divider.create ()))
  with
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Cex _ -> Alcotest.fail "constant-time software should prove"
  | Bmc.Unknown (r, _) -> unexpected_unknown r

let test_cva6_lsu_blackbox () =
  (* Sec. 3.4: blackboxing the load unit removes its state and still
     proves (the idle wire at the cut carries the drain condition). *)
  let dut = C.create ~config:C.microreset_fixed () in
  let ft =
    Autocc.Ft.generate ~threshold:2 ~blackbox:[ "lsu" ] ~flush_done:(C.flush_done ())
      dut
  in
  Alcotest.(check bool) "state reduced" true
    (Rtl.Circuit.state_bits ft.Autocc.Ft.dut < Rtl.Circuit.state_bits dut);
  match Autocc.Ft.check ~max_depth:10 ft with
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Cex (cex, _) ->
      Alcotest.failf "blackboxed LSU should prove: %s" (Autocc.Report.summary ft cex)
  | Bmc.Unknown (r, _) -> unexpected_unknown r

let test_aes_unbounded_proof () =
  let ft =
    Autocc.Ft.generate ~threshold:2 ~flush_done:(A.flush_done_idle ()) (A.create ())
  in
  match Autocc.Ft.prove ~max_depth:20 ft with
  | Bmc.Proved (k, _) ->
      Alcotest.(check bool) "k near the pipeline depth" true (k <= A.default_stages + 4)
  | Bmc.Refuted _ -> Alcotest.fail "the idle-flush AES cannot leak"
  | Bmc.Unknown _ -> Alcotest.fail "AES should be k-inductive"

let () =
  Alcotest.run "duts"
    [
      ( "vscale",
        [
          Alcotest.test_case "alu + store" `Quick test_vscale_alu_store;
          Alcotest.test_case "jump to register" `Quick test_vscale_jump;
          Alcotest.test_case "irq trap" `Quick test_vscale_irq_trap;
          Alcotest.test_case "refinement walk" `Slow test_vscale_refinement_walk;
        ] );
      ( "maple",
        [
          Alcotest.test_case "m2/m3 channels and fixes" `Slow test_maple_m2_m3;
          Alcotest.test_case "m1 output buffer" `Slow test_maple_m1;
          Alcotest.test_case "latency channel (3.2)" `Slow test_maple_latency_channel;
          Alcotest.test_case "invalidation latency sim" `Quick test_maple_inval_latency_sim;
        ] );
      ( "aes",
        [
          Alcotest.test_case "encrypt matches reference" `Quick test_aes_encrypt_matches_reference;
          Alcotest.test_case "pipelined throughput" `Quick test_aes_pipelined_throughput;
          Alcotest.test_case "a1 and proof" `Slow test_aes_a1_and_proof;
          Alcotest.test_case "unbounded proof (k-induction)" `Quick test_aes_unbounded_proof;
        ] );
      ( "divider",
        [
          Alcotest.test_case "exhaustive vs reference" `Quick test_divider_exhaustive;
          Alcotest.test_case "latency behaviour" `Quick test_divider_latency;
          Alcotest.test_case "channel and two closures" `Slow test_divider_channels;
        ] );
      ( "cva6lite",
        [
          Alcotest.test_case "fetch refill" `Quick test_cva6_sim_fetch_refill;
          Alcotest.test_case "branch predictor" `Quick test_cva6_sim_btb;
          Alcotest.test_case "lsu walk" `Quick test_cva6_sim_lsu_walk;
          Alcotest.test_case "fence clears" `Quick test_cva6_sim_fence_clears;
          Alcotest.test_case "c1-c3 channels and fixes" `Slow test_cva6_channels;
          Alcotest.test_case "lsu blackbox (3.4)" `Slow test_cva6_lsu_blackbox;
        ] );
    ]

(* Tests of the crash-isolated verification service: the supervisor
   state machine as a pure fold (submit -> lease -> heartbeat -> crash ->
   redeliver -> quarantine -> drain), randomized crash storms against the
   no-lost-job / no-double-completion / verdict-immutability invariants,
   the byte-stable queue codec, the wire-protocol codec, and the
   O_APPEND single-write line appender under two racing writer
   processes. The live daemon (sockets, fork/exec, SIGKILL) is covered
   end-to-end by the @serve-smoke validator. *)

module M = Serve.Machine

let spec ?(dut = "leaky") ?(engine = "check") ?(depth = 6) ?(threshold = 2) () =
  { M.sp_dut = dut; sp_engine = engine; sp_depth = depth; sp_threshold = threshold }

let result ?(verdict = "cex") ?(depth = 3) () =
  { M.w_verdict = verdict; w_depth = depth; w_wall_ms = 10; w_cache_hits = 0 }

let cfg ?(workers = 2) ?(lease_s = 10.) ?(max_crashes = 3) ?(shed = 64) () =
  { M.c_workers = workers; c_lease_s = lease_s; c_max_crashes = max_crashes;
    c_shed = shed; c_retry = Retry.default }

(* Fold a list of events, collecting every action. *)
let fold m evs =
  List.fold_left
    (fun (m, acts) ev ->
      let m, a = M.step m ev in
      (m, acts @ a))
    (m, []) evs

let starts acts =
  List.filter_map
    (function M.Start { id; attempt; _ } -> Some (id, attempt) | _ -> None)
    acts

let completes acts =
  List.filter_map
    (function M.Complete { id; verdict } -> Some (id, verdict) | _ -> None)
    acts

let state_of m id =
  match M.find m id with
  | Some j -> M.state_name j
  | None -> Alcotest.failf "job %s lost" id

(* {1 The pure lifecycle} *)

let test_happy_path () =
  let m = M.create (cfg ()) in
  let m, acts = fold m [ M.Submit (spec ()); M.Submit (spec ~dut:"divider" ()) ] in
  Alcotest.(check (list string))
    "both accepted" [ "j1"; "j2" ]
    (List.filter_map (function M.Accept { id } -> Some id | _ -> None) acts);
  let m, acts = M.step m (M.Tick { now = 1. }) in
  let st = starts acts in
  Alcotest.(check int) "both dispatched" 2 (List.length st);
  Alcotest.(check int) "attempt 0" 0 (snd (List.nth st 0));
  Alcotest.(check int) "leased" 2 (M.leased m);
  let m, _ = fold m
      [ M.Spawned { id = "j1"; pid = 101; now = 1. };
        M.Spawned { id = "j2"; pid = 102; now = 1. } ] in
  let m, acts =
    M.step m (M.Exited { id = "j1"; pid = 101; result = Some (result ()); now = 2. })
  in
  Alcotest.(check (list (pair string string))) "j1 completed"
    [ ("j1", "cex") ] (completes acts);
  Alcotest.(check string) "j1 done" "done" (state_of m "j1");
  Alcotest.(check (option string)) "verdict_of" (Some "cex")
    (Option.bind (M.find m "j1") M.verdict_of);
  Alcotest.(check string) "j2 still leased" "leased" (state_of m "j2")

let test_third_job_waits_for_slot () =
  let m = M.create (cfg ~workers:2 ()) in
  let m, _ = fold m (List.init 3 (fun _ -> M.Submit (spec ()))) in
  let m, acts = M.step m (M.Tick { now = 1. }) in
  Alcotest.(check int) "pool-bounded dispatch" 2 (List.length (starts acts));
  Alcotest.(check string) "j3 queued" "pending" (state_of m "j3");
  let m, _ = M.step m (M.Spawned { id = "j1"; pid = 7; now = 1. }) in
  let m, _ =
    M.step m (M.Exited { id = "j1"; pid = 7; result = Some (result ()); now = 2. })
  in
  let _, acts = M.step m (M.Tick { now = 2. }) in
  match starts acts with
  | [ (id, _) ] -> Alcotest.(check string) "freed slot goes to j3" "j3" id
  | l -> Alcotest.failf "expected 1 start, got %d" (List.length l)

let test_shed_and_drain_reject () =
  let m = M.create (cfg ~shed:2 ()) in
  let m, _ = fold m [ M.Submit (spec ()); M.Submit (spec ()) ] in
  let m, acts = M.step m (M.Submit (spec ())) in
  Alcotest.(check (list string)) "overloaded"
    [ "overloaded" ]
    (List.filter_map (function M.Reject { reason } -> Some reason | _ -> None) acts);
  Alcotest.(check int) "watermark holds" 2 (List.length m.M.m_jobs);
  let m, _ = M.step m M.Drain in
  let _, acts = M.step m (M.Submit (spec ())) in
  Alcotest.(check (list string)) "draining"
    [ "draining" ]
    (List.filter_map (function M.Reject { reason } -> Some reason | _ -> None) acts)

let test_crash_redelivers_with_backoff () =
  let c = cfg () in
  let m = M.create c in
  let m, _ = M.step m (M.Submit (spec ())) in
  let m, _ = M.step m (M.Tick { now = 1. }) in
  let m, _ = M.step m (M.Spawned { id = "j1"; pid = 7; now = 1. }) in
  let m, acts = M.step m (M.Exited { id = "j1"; pid = 7; result = None; now = 10. }) in
  let expected = Retry.backoff_s c.M.c_retry ~attempt:1 in
  (match acts with
  | [ M.Redeliver { id = "j1"; attempt = 1; backoff_s }; M.Persist ] ->
      Alcotest.(check (float 1e-9)) "backoff follows the Retry schedule"
        expected backoff_s
  | _ -> Alcotest.fail "expected Redeliver + Persist");
  Alcotest.(check string) "pending again" "pending" (state_of m "j1");
  (* Inside the backoff window nothing is dispatched... *)
  let m, acts = M.step m (M.Tick { now = 10. +. (expected /. 2.) }) in
  Alcotest.(check int) "backoff gate holds" 0 (List.length (starts acts));
  (* ...after it, the job goes out with the bumped attempt number. *)
  let _, acts = M.step m (M.Tick { now = 10. +. expected +. 0.001 }) in
  match starts acts with
  | [ (_, attempt) ] -> Alcotest.(check int) "attempt forwarded" 1 attempt
  | l -> Alcotest.failf "expected 1 start, got %d" (List.length l)

let test_quarantine_after_max_crashes () =
  let c = cfg ~max_crashes:3 () in
  let m = ref (M.create c) in
  let quarantines = ref [] in
  let crash now =
    let m', _ = M.step !m (M.Tick { now }) in
    let m', _ = M.step m' (M.Spawned { id = "j1"; pid = 7; now }) in
    let m', acts =
      M.step m' (M.Exited { id = "j1"; pid = 7; result = None; now = now +. 1. })
    in
    m := m';
    quarantines :=
      !quarantines
      @ List.filter_map
          (function M.Quarantine { crashes; _ } -> Some crashes | _ -> None)
          acts
  in
  let m', _ = M.step !m (M.Submit (spec ())) in
  m := m';
  crash 10.;
  crash 20.;
  Alcotest.(check (list int)) "not yet" [] !quarantines;
  crash 30.;
  Alcotest.(check (list int)) "quarantined at the cap" [ 3 ] !quarantines;
  Alcotest.(check string) "parked" "quarantined" (state_of !m "j1");
  Alcotest.(check (option string)) "poison verdict"
    (Some M.crashed_verdict)
    (Option.bind (M.find !m "j1") M.verdict_of);
  (* Quarantine is terminal: a late result must not resurrect the job. *)
  let m', acts =
    M.step !m (M.Exited { id = "j1"; pid = 9; result = Some (result ()); now = 40. })
  in
  Alcotest.(check int) "no late completion" 0 (List.length (completes acts));
  Alcotest.(check (option string)) "verdict unchanged"
    (Some M.crashed_verdict)
    (Option.bind (M.find m' "j1") M.verdict_of)

let test_lease_expiry_kills_and_redelivers () =
  let m = M.create (cfg ~lease_s:5. ()) in
  let m, _ = M.step m (M.Submit (spec ())) in
  let m, _ = M.step m (M.Tick { now = 0. }) in
  let m, _ = M.step m (M.Spawned { id = "j1"; pid = 77; now = 0. }) in
  (* Renewals keep the lease alive past the horizon... *)
  let m, _ = M.step m (M.Beat { id = "j1"; now = 4. }) in
  let m, acts = M.step m (M.Tick { now = 8. }) in
  Alcotest.(check bool) "beat kept the lease" false
    (List.exists (function M.Kill _ -> true | _ -> false) acts);
  (* ...a stale one is expired with a SIGKILL and redelivered. *)
  let m, acts = M.step m (M.Tick { now = 9.1 }) in
  Alcotest.(check bool) "expired lease killed" true
    (List.exists (function M.Kill { pid = 77; _ } -> true | _ -> false) acts);
  Alcotest.(check bool) "and redelivered" true
    (List.exists (function M.Redeliver _ -> true | _ -> false) acts);
  Alcotest.(check string) "pending" "pending" (state_of m "j1")

let test_late_result_completes_once () =
  (* Attempt 0 (pid 77) expires, attempt 1 (pid 88) is dispatched, then
     pid 77's deposited result arrives: the job completes exactly once,
     with the deterministic verdict, and the replacement is killed. *)
  let m = M.create (cfg ~lease_s:5. ()) in
  let m, _ = M.step m (M.Submit (spec ())) in
  let m, _ = M.step m (M.Tick { now = 0. }) in
  let m, _ = M.step m (M.Spawned { id = "j1"; pid = 77; now = 0. }) in
  let m, _ = M.step m (M.Tick { now = 6. }) in
  let backoff = Retry.backoff_s (cfg ()).M.c_retry ~attempt:1 in
  let m, acts = M.step m (M.Tick { now = 6.1 +. backoff }) in
  Alcotest.(check int) "redelivered" 1 (List.length (starts acts));
  let m, _ = M.step m (M.Spawned { id = "j1"; pid = 88; now = 7. }) in
  let m, acts =
    M.step m (M.Exited { id = "j1"; pid = 77; result = Some (result ()); now = 8. })
  in
  Alcotest.(check (list (pair string string))) "completed from the stale pid"
    [ ("j1", "cex") ] (completes acts);
  Alcotest.(check bool) "replacement killed" true
    (List.exists (function M.Kill { pid = 88; _ } -> true | _ -> false) acts);
  (* The replacement's own exit must now be a no-op, not a second
     completion or a crash count. *)
  let m, acts = M.step m (M.Exited { id = "j1"; pid = 88; result = None; now = 9. }) in
  Alcotest.(check int) "no double bookkeeping" 0 (List.length acts);
  Alcotest.(check string) "done" "done" (state_of m "j1")

let test_drain_finishes_leased_then_exits () =
  let m = M.create (cfg ()) in
  let m, _ = fold m [ M.Submit (spec ()); M.Submit (spec ()); M.Submit (spec ()) ] in
  let m, _ = M.step m (M.Tick { now = 0. }) in
  let m, _ = M.step m (M.Spawned { id = "j1"; pid = 1; now = 0. }) in
  let m, _ = M.step m (M.Spawned { id = "j2"; pid = 2; now = 0. }) in
  let m, _ = M.step m M.Drain in
  (* No new dispatch while draining — j3 stays pending for the next
     incarnation — and no Exit while leases are live. *)
  let m, acts = M.step m (M.Tick { now = 1. }) in
  Alcotest.(check int) "no dispatch while draining" 0 (List.length (starts acts));
  Alcotest.(check bool) "no exit while leased" false
    (List.exists (function M.Exit -> true | _ -> false) acts);
  let m, _ =
    M.step m (M.Exited { id = "j1"; pid = 1; result = Some (result ()); now = 2. })
  in
  let m, _ =
    M.step m (M.Exited { id = "j2"; pid = 2; result = Some (result ()); now = 2. })
  in
  let m, acts = M.step m (M.Tick { now = 3. }) in
  Alcotest.(check bool) "exit once idle" true
    (List.exists (function M.Exit -> true | _ -> false) acts);
  Alcotest.(check string) "j3 survives as pending" "pending" (state_of m "j3")

(* {1 Crash-storm fuzz}

   Random event streams — including nonsense the daemon would never
   emit (beats for unknown jobs, exits with wrong pids, double exits) —
   against the supervisor's safety contract. *)

type fuzz_op = FSubmit | FSpawn | FBeat | FExitOk | FExitCrash | FTick | FDrain

let fuzz_gen =
  QCheck.Gen.(
    list_size (int_range 1 120)
      (frequency
         [ (3, return FSubmit); (4, return FSpawn); (3, return FBeat);
           (4, return FExitOk); (4, return FExitCrash); (6, return FTick);
           (1, return FDrain) ]))

let fuzz_arb =
  QCheck.make ~print:(fun l -> Printf.sprintf "<%d ops>" (List.length l)) fuzz_gen

let test_fuzz_invariants =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500
       ~name:"crash storm: no lost job, no double completion, immutable verdicts"
       fuzz_arb
       (fun ops ->
         let c = cfg ~workers:2 ~lease_s:3. ~max_crashes:3 ~shed:8 () in
         let m = ref (M.create c) in
         let now = ref 0. in
         let rng = Random.State.make [| List.length ops; 42 |] in
         let pick_id () =
           match !m.M.m_jobs with
           | [] -> "j0"
           | jobs ->
               (List.nth jobs (Random.State.int rng (List.length jobs))).M.j_id
         in
         let completions = Hashtbl.create 16 in
         let verdicts = Hashtbl.create 16 in
         List.iter
           (fun op ->
             now := !now +. Random.State.float rng 1.5;
             let ev =
               match op with
               | FSubmit -> M.Submit (spec ())
               | FSpawn ->
                   M.Spawned
                     { id = pick_id (); pid = 1 + Random.State.int rng 4; now = !now }
               | FBeat -> M.Beat { id = pick_id (); now = !now }
               | FExitOk ->
                   M.Exited
                     { id = pick_id (); pid = 1 + Random.State.int rng 4;
                       result = Some (result ~verdict:"proof" ~depth:6 ());
                       now = !now }
               | FExitCrash ->
                   M.Exited
                     { id = pick_id (); pid = 1 + Random.State.int rng 4;
                       result = None; now = !now }
               | FTick -> M.Tick { now = !now }
               | FDrain -> M.Drain
             in
             let n_before = List.length !m.M.m_jobs in
             let m', acts = M.step !m ev in
             m := m';
             (* Jobs are never lost (and ids stay unique). *)
             let n_after = List.length m'.M.m_jobs in
             if n_after < n_before then QCheck.Test.fail_report "job list shrank";
             let ids = List.map (fun j -> j.M.j_id) m'.M.m_jobs in
             if List.length (List.sort_uniq compare ids) <> n_after then
               QCheck.Test.fail_report "duplicate job ids";
             (* A terminal verdict never changes: compare against the
                first-seen terminal verdict of every job. *)
             List.iter
               (fun j ->
                 match (M.verdict_of j, Hashtbl.find_opt verdicts j.M.j_id) with
                 | Some v, Some v0 when v <> v0 ->
                     QCheck.Test.fail_reportf "verdict of %s flipped to %s"
                       j.M.j_id v
                 | Some v, None -> Hashtbl.replace verdicts j.M.j_id v
                 | _ -> ())
               m'.M.m_jobs;
             (* At most one Complete per job, ever. *)
             List.iter
               (fun (id, _) ->
                 let n = 1 + Option.value ~default:0 (Hashtbl.find_opt completions id) in
                 if n > 1 then
                   QCheck.Test.fail_reportf "%s completed %d times" id n;
                 Hashtbl.replace completions id n)
               (completes acts);
             (* Quarantine only at the crash cap; quarantined jobs carry
                the poison verdict. *)
             List.iter
               (fun j ->
                 match j.M.j_state with
                 | M.Quarantined { q_crashes } ->
                     if q_crashes < c.M.c_max_crashes then
                       QCheck.Test.fail_report "quarantined below the cap";
                     if M.verdict_of j <> Some M.crashed_verdict then
                       QCheck.Test.fail_report "quarantine without poison verdict"
                 | _ -> ())
               m'.M.m_jobs;
             (* The pool is never oversubscribed and the queue respects
                the shed watermark. *)
             if M.leased m' > c.M.c_workers then
               QCheck.Test.fail_report "more leases than workers";
             if M.live m' > c.M.c_shed then
               QCheck.Test.fail_report "shed watermark breached")
           ops;
         true))

(* {1 The byte-stable queue codec} *)

let test_store_roundtrip_bytes () =
  let dir = Filename.temp_file "serve_store" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let c = cfg () in
  (* A machine with every durable job state: pending, leased (persists
     as pending), done, quarantined. *)
  let m = M.create c in
  let m, _ = fold m
      [ M.Submit (spec ()); M.Submit (spec ~dut:"divider" ~engine:"prove" ());
        M.Submit (spec ~dut:"maple" ()); M.Submit (spec ~dut:"aes" ()) ] in
  let m, _ = M.step m (M.Tick { now = 1. }) in
  let m, _ = M.step m (M.Spawned { id = "j1"; pid = 5; now = 1. }) in
  let m, _ =
    M.step m (M.Exited { id = "j1"; pid = 5; result = Some (result ()); now = 2. })
  in
  let quarantine_j2 m =
    List.fold_left
      (fun m now ->
        let m, _ = M.step m (M.Tick { now }) in
        let m, _ = M.step m (M.Spawned { id = "j2"; pid = 9; now }) in
        let m, _ = M.step m (M.Exited { id = "j2"; pid = 9; result = None; now }) in
        m)
      m [ 10.; 20.; 30. ]
  in
  let m = quarantine_j2 m in
  Serve.Store.save ~dir m;
  (match Serve.Store.load ~dir c with
  | Error e -> Alcotest.fail e
  | Ok None -> Alcotest.fail "queue file vanished"
  | Ok (Some m') ->
      (* save∘load is the identity on bytes — the drain/restart
         stability the smoke test cmp(1)s end-to-end. *)
      Alcotest.(check string) "byte-stable rendering"
        (Serve.Store.render m) (Serve.Store.render m');
      Alcotest.(check string) "done survives" "done" (state_of m' "j1");
      Alcotest.(check string) "quarantine survives" "quarantined" (state_of m' "j2");
      Alcotest.(check string) "a lease reloads as pending" "pending" (state_of m' "j3");
      Alcotest.(check int) "crash count survives" 3
        (match M.find m' "j2" with Some j -> j.M.j_crashes | None -> -1);
      Alcotest.(check int) "id counter survives" m.M.m_next m'.M.m_next);
  (* Missing file and corrupt file. *)
  Sys.remove (Serve.Store.path dir);
  (match Serve.Store.load ~dir c with
  | Ok None -> ()
  | _ -> Alcotest.fail "expected Ok None on a missing queue");
  let oc = open_out (Serve.Store.path dir) in
  output_string oc "{\"schema\":\"bogus\"}\n";
  close_out oc;
  (match Serve.Store.load ~dir c with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a malformed queue must refuse to load");
  Sys.remove (Serve.Store.path dir);
  Unix.rmdir dir

(* {1 The wire protocol codec} *)

let test_proto_roundtrip () =
  let reqs =
    [ Serve.Proto.Submit (spec ~dut:"cva6" ~engine:"prove" ~depth:9 ~threshold:3 ());
      Serve.Proto.Status; Serve.Proto.Wait "j7"; Serve.Proto.Drain;
      Serve.Proto.Ping ]
  in
  List.iter
    (fun r ->
      match Serve.Proto.request_of_json (Serve.Proto.json_of_request r) with
      | Ok r' -> Alcotest.(check bool) "request round-trips" true (r = r')
      | Error e -> Alcotest.fail e)
    reqs;
  (match
     Serve.Proto.request_of_json
       (Obs.Json.Obj [ ("schema", Obs.Json.Str "autocc.serve/0"); ("op", Obs.Json.Str "ping") ])
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema must be refused");
  match
    Serve.Proto.request_of_json
      (Obs.Json.Obj [ ("schema", Obs.Json.Str Serve.Proto.schema); ("op", Obs.Json.Str "nope") ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op must be refused"

(* {1 Torn-line race: two writer processes, one O_APPEND fd each}

   The Appender contract is that each line is a single write(2) on an
   O_APPEND descriptor, so concurrent writers interleave only at line
   granularity. Two forked children blast distinct tagged lines at the
   same file with no synchronization; every line in the result must be
   intact and the full set must arrive. A torn line (partial
   interleaving) fails the parse or the set check. *)

let test_appender_two_process_race () =
  let path = Filename.temp_file "serve_append" ".jsonl" in
  Sys.remove path;
  let n = 400 in
  let child tag =
    match Unix.fork () with
    | 0 ->
        (* In the child: write, then _exit without running any
           at_exit/alcotest machinery inherited from the parent. *)
        let exit_code =
          try
            let ap = Obs.Appender.open_path path in
            for i = 0 to n - 1 do
              Obs.Appender.json_line ap
                (Obs.Json.Obj
                   [ ("w", Obs.Json.Str tag); ("i", Obs.Json.Int i);
                     ("pad", Obs.Json.Str (String.make 64 tag.[0])) ])
            done;
            Obs.Appender.close ap;
            0
          with _ -> 1
        in
        Unix._exit exit_code
    | pid -> pid
  in
  let pa = child "a" in
  let pb = child "b" in
  let check_child pid =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> ()
    | _ -> Alcotest.fail "writer child failed"
  in
  check_child pa;
  check_child pb;
  let ic = open_in path in
  let seen = Hashtbl.create (2 * n) in
  (try
     while true do
       let line = input_line ic in
       match Obs.Json.parse line with
       | Error e -> Alcotest.failf "torn line %S: %s" line e
       | Ok j ->
           let w =
             match Obs.Json.member "w" j with
             | Some (Obs.Json.Str s) -> s
             | _ -> Alcotest.failf "bad line %S" line
           in
           let i =
             match Obs.Json.member "i" j with
             | Some (Obs.Json.Int i) -> i
             | _ -> Alcotest.failf "bad line %S" line
           in
           if Hashtbl.mem seen (w, i) then
             Alcotest.failf "duplicate line %s/%d" w i;
           Hashtbl.replace seen (w, i) ()
     done
   with End_of_file -> ());
  close_in ic;
  Alcotest.(check int) "every line from both writers arrived" (2 * n)
    (Hashtbl.length seen);
  Sys.remove path

let () =
  Alcotest.run "serve"
    [
      ( "machine",
        [
          Alcotest.test_case "happy path" `Quick test_happy_path;
          Alcotest.test_case "pool-bounded dispatch" `Quick
            test_third_job_waits_for_slot;
          Alcotest.test_case "shed + draining rejects" `Quick
            test_shed_and_drain_reject;
          Alcotest.test_case "crash -> redeliver with Retry backoff" `Quick
            test_crash_redelivers_with_backoff;
          Alcotest.test_case "quarantine after max crashes" `Quick
            test_quarantine_after_max_crashes;
          Alcotest.test_case "lease expiry kills and redelivers" `Quick
            test_lease_expiry_kills_and_redelivers;
          Alcotest.test_case "late result completes exactly once" `Quick
            test_late_result_completes_once;
          Alcotest.test_case "drain finishes leased jobs then exits" `Quick
            test_drain_finishes_leased_then_exits;
        ] );
      ("fuzz", [ test_fuzz_invariants ]);
      ( "store",
        [ Alcotest.test_case "byte-stable round trip" `Quick
            test_store_roundtrip_bytes ] );
      ( "proto",
        [ Alcotest.test_case "request codec round trip" `Quick
            test_proto_roundtrip ] );
      ( "appender",
        [ Alcotest.test_case "two-process torn-line race" `Quick
            test_appender_two_process_race ] );
    ]

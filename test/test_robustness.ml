(* Tests of the resource-governed runtime: the pure retry schedule, the
   budget -> Unknown downgrade path, deterministic fault injection (a
   fault may only downgrade a verdict, never flip it), campaign crash
   isolation and crash-safe resume. *)

module S = Sat.Solver

let unknown_to_string = Bmc.unknown_reason_to_string

(* {1 Retry: the pure schedule} *)

let test_retry_scale () =
  let p = Retry.policy ~growth:4. ~cap:64. () in
  Alcotest.(check (float 0.)) "attempt 0 is the identity" 1. (Retry.scale p ~attempt:0);
  Alcotest.(check (float 0.)) "attempt 1" 4. (Retry.scale p ~attempt:1);
  Alcotest.(check (float 0.)) "attempt 2" 16. (Retry.scale p ~attempt:2);
  Alcotest.(check (float 0.)) "attempt 3" 64. (Retry.scale p ~attempt:3);
  Alcotest.(check (float 0.)) "capped" 64. (Retry.scale p ~attempt:9)

let test_retry_budget_for () =
  let p = Retry.policy ~growth:4. ~cap:64. () in
  let b = Bmc.budget ~wall_s:2. ~conflicts:100 () in
  let b1 = Retry.budget_for p b ~attempt:1 in
  Alcotest.(check (option (float 1e-9))) "wall escalated" (Some 8.) b1.Bmc.bud_wall_s;
  Alcotest.(check (option int)) "conflicts escalated" (Some 400) b1.Bmc.bud_conflicts;
  Alcotest.(check (option int)) "unset limit stays unset" None b1.Bmc.bud_learnts;
  let b0 = Retry.budget_for p Bmc.no_budget ~attempt:3 in
  Alcotest.(check bool) "no_budget is a fixed point" true (b0 = Bmc.no_budget)

let test_retry_config_for () =
  let alts = [ List.nth (S.portfolio 4) 1; List.nth (S.portfolio 4) 2 ] in
  let p = Retry.policy ~alternate_configs:alts () in
  Alcotest.(check bool) "attempt 0 keeps the caller's config" true
    (Retry.config_for p ~attempt:0 = None);
  Alcotest.(check bool) "attempt 1 takes the first alternate" true
    (Retry.config_for p ~attempt:1 = Some (List.nth alts 0));
  Alcotest.(check bool) "attempt 2 the second" true
    (Retry.config_for p ~attempt:2 = Some (List.nth alts 1));
  Alcotest.(check bool) "alternates cycle" true
    (Retry.config_for p ~attempt:3 = Some (List.nth alts 0));
  let no_alts = Retry.policy ~alternate_configs:[] () in
  Alcotest.(check bool) "no alternates: every attempt keeps the config" true
    (Retry.config_for no_alts ~attempt:2 = None)

let test_retry_backoff () =
  let p = Retry.policy ~backoff_base_s:0.05 ~backoff_cap_s:0.12 () in
  Alcotest.(check (float 1e-9)) "first retry" 0.05 (Retry.backoff_s p ~attempt:1);
  Alcotest.(check (float 1e-9)) "doubles" 0.1 (Retry.backoff_s p ~attempt:2);
  Alcotest.(check (float 1e-9)) "capped" 0.12 (Retry.backoff_s p ~attempt:3)

let test_retry_should_retry () =
  let p = Retry.policy ~max_attempts:3 () in
  let budget_fired =
    Bmc.Budget_exhausted { ub_budget = S.Wall_clock; ub_depth = 2; ub_case = Bmc.Base }
  in
  Alcotest.(check bool) "budget exhaustion is transient" true
    (Retry.should_retry p ~attempt:0 budget_fired);
  Alcotest.(check bool) "faults are transient" true
    (Retry.should_retry p ~attempt:1 (Bmc.Faulted "sat.stop"));
  Alcotest.(check bool) "bound exhaustion is permanent" false
    (Retry.should_retry p ~attempt:0 Bmc.Bound_exhausted);
  Alcotest.(check bool) "attempts are finite" false
    (Retry.should_retry p ~attempt:2 budget_fired);
  let once = Retry.policy ~max_attempts:1 () in
  Alcotest.(check bool) "max_attempts 1 never retries" false
    (Retry.should_retry once ~attempt:0 budget_fired)

(* {1 Budgets: exhaustion downgrades to Unknown} *)

module Signal = Rtl.Signal

let leaky_dut () =
  let open Signal in
  let din = input "din" 4 in
  let capture = input "capture" 1 in
  let query = input "query" 4 in
  let stash = reg "stash" 4 in
  reg_set_next stash (mux2 capture din stash);
  Rtl.Circuit.create ~name:"leaky" ~outputs:[ ("hit", query ==: stash) ] ()

let test_wall_budget_unknown () =
  (* An already-expired deadline: the engine must answer Unknown at the
     first poll on any machine, reporting clean up to the depth before
     the one it was exploring. *)
  let ft = Autocc.Ft.generate ~threshold:2 (leaky_dut ()) in
  match
    Autocc.Ft.check ~max_depth:8 ~budget:(Bmc.budget ~wall_s:1e-9 ()) ft
  with
  | Bmc.Unknown ((Bmc.Budget_exhausted { ub_budget = S.Wall_clock; ub_depth; _ } as r), stats)
    ->
      Alcotest.(check int) "clean up to the depth before exhaustion"
        (ub_depth - 1) stats.Bmc.depth_reached;
      Alcotest.(check bool) "reason renders as a budget" true
        (String.length (unknown_to_string r) >= 6
        && String.sub (unknown_to_string r) 0 6 = "budget")
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "wrong unknown reason: %s" (unknown_to_string r)
  | Bmc.Cex _ | Bmc.Bounded_proof _ ->
      Alcotest.fail "an expired deadline cannot produce a conclusive verdict"

let test_conflict_budget_unknown () =
  (* MAPLE needs real search; one conflict cannot be enough. *)
  let ft = Autocc.Ft.generate ~threshold:2 (Duts.Maple.create ()) in
  match
    Autocc.Ft.check ~max_depth:8 ~budget:(Bmc.budget ~conflicts:1 ()) ft
  with
  | Bmc.Unknown (Bmc.Budget_exhausted { ub_budget = S.Conflicts; _ }, _) -> ()
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "wrong unknown reason: %s" (unknown_to_string r)
  | Bmc.Cex _ | Bmc.Bounded_proof _ ->
      Alcotest.fail "one conflict cannot decide MAPLE"

let test_budget_escalation_recovers () =
  (* A starved first attempt plus an escalating retry policy must end
     conclusive: the parallel engine re-runs the job with grown budgets. *)
  let ft = Autocc.Ft.generate ~threshold:2 (leaky_dut ()) in
  let retry =
    Retry.policy ~max_attempts:6 ~growth:100. ~cap:1e9 ~backoff_base_s:0.001
      ~backoff_cap_s:0.002 ()
  in
  match
    Autocc.Ft.check ~max_depth:8 ~jobs:2
      ~budget:(Bmc.budget ~wall_s:1e-6 ())
      ~retry ft
  with
  | Bmc.Cex _ -> ()
  | Bmc.Bounded_proof _ -> Alcotest.fail "the leaky DUT must yield a CEX"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "escalation to ~100s never fired: %s" (unknown_to_string r)

(* {1 Fault injection: verdicts only ever degrade} *)

let test_fault_determinism () =
  (* The per-hit die is a pure function of (seed, site, n): two armed
     runs replay the same decisions. *)
  let burst () =
    Fault.arm ~rate:0.3 ~seed:1234 ();
    let fired = List.init 200 (fun _ -> Fault.fire "site.a") in
    let hits = Fault.hits () and count = Fault.fired () in
    Fault.disarm ();
    (fired, hits, count)
  in
  let f1, h1, c1 = burst () in
  let f2, h2, c2 = burst () in
  Alcotest.(check (list bool)) "same decisions" f1 f2;
  Alcotest.(check int) "same hit count" h1 h2;
  Alcotest.(check int) "same fired count" c1 c2;
  Alcotest.(check bool) "the die does fire at rate 0.3" true (c1 > 0);
  Alcotest.(check bool) "but not every time" true (c1 < h1);
  Fault.arm ~rate:0.3 ~seed:4321 ();
  let f3 = List.init 200 (fun _ -> Fault.fire "site.a") in
  Fault.disarm ();
  Alcotest.(check bool) "a different seed gives a different trace" true (f1 <> f3)

let verdict_flip ref_outcome outcome =
  match (ref_outcome, outcome) with
  | Bmc.Cex (c1, _), Bmc.Cex (c2, _) -> c1.Bmc.cex_depth <> c2.Bmc.cex_depth
  | Bmc.Bounded_proof _, Bmc.Bounded_proof _ -> false
  | _, Bmc.Unknown _ -> false (* a downgrade, not a flip *)
  | Bmc.Cex _, Bmc.Bounded_proof _ | Bmc.Bounded_proof _, Bmc.Cex _ -> true
  | Bmc.Unknown _, _ -> true (* the fault-free reference must be conclusive *)

let test_fault_fuzz () =
  (* Random circuits under seeded fault injection, single-domain and
     multi-domain: the governed engine may answer Unknown but must never
     contradict the fault-free reference verdict. *)
  let total_fired = ref 0 in
  for seed = 1 to 8 do
    let st = Random.State.make [| seed |] in
    let circuit = Gen_circuit.random_circuit st ~num_nodes:25 ~num_regs:3 in
    let property = Gen_circuit.random_property st circuit ~num_asserts:3 in
    let reference = Bmc.check ~max_depth:5 circuit property in
    (match reference with
    | Bmc.Unknown (r, _) ->
        Alcotest.failf "seed %d: fault-free reference is unknown (%s)" seed
          (unknown_to_string r)
    | _ -> ());
    List.iter
      (fun jobs ->
        Fault.arm ~rate:0.05 ~seed ();
        let outcome =
          Fun.protect
            ~finally:(fun () ->
              total_fired := !total_fired + Fault.fired ();
              Fault.disarm ())
            (fun () -> Parallel.check ~jobs ~max_depth:5 circuit property)
        in
        if verdict_flip reference outcome then
          Alcotest.failf "seed %d jobs %d: fault flipped the verdict" seed jobs)
      [ 1; 4 ]
  done;
  Alcotest.(check bool) "the corpus did exercise fault points" true (!total_fired > 0)

let test_fault_fuzz_with_retry () =
  (* Same contract when a retry policy is allowed to rescue faulted
     jobs; retries raise the odds of a conclusive (hence equal) verdict
     but must never manufacture a contradicting one. *)
  let retry =
    Retry.policy ~max_attempts:3 ~backoff_base_s:0.001 ~backoff_cap_s:0.002 ()
  in
  for seed = 11 to 16 do
    let st = Random.State.make [| seed |] in
    let circuit = Gen_circuit.random_circuit st ~num_nodes:25 ~num_regs:3 in
    let property = Gen_circuit.random_property st circuit ~num_asserts:3 in
    let reference = Bmc.check ~max_depth:5 circuit property in
    (match reference with
    | Bmc.Unknown (r, _) ->
        Alcotest.failf "seed %d: fault-free reference is unknown (%s)" seed
          (unknown_to_string r)
    | _ -> ());
    Fault.arm ~rate:0.05 ~seed ();
    let outcome =
      Fun.protect
        ~finally:(fun () -> Fault.disarm ())
        (fun () -> Parallel.check ~jobs:4 ~retry ~max_depth:5 circuit property)
    in
    if verdict_flip reference outcome then
      Alcotest.failf "seed %d: fault flipped the verdict under retry" seed
  done

let test_fault_incr_site () =
  (* The incremental engine's between-depths fault point. Armed at rate
     1.0 on just "bmc.incr", every incremental run faults the moment it
     tries to extend the persistent solver past depth 0, and must
     downgrade to Unknown (Faulted "bmc.incr") with clean accounting up
     to depth 0; the scratch engine never passes the site and must be
     untouched by the same arming. *)
  let circuit, property =
    let open Signal in
    let cnt = reg "cnt" 4 in
    reg_set_next cnt (cnt +: one 4);
    ( Rtl.Circuit.create ~name:"counter" ~outputs:[ ("cnt", cnt) ] (),
      { Bmc.assumes = []; asserts = [ ("ne5", ~:(cnt ==: of_int ~width:4 5)) ] }
    )
  in
  Fault.arm ~sites:[ "bmc.incr" ] ~rate:1. ~seed:7 ();
  Fun.protect
    ~finally:(fun () -> Fault.disarm ())
    (fun () ->
      (match Bmc.check ~max_depth:8 ~incremental:true circuit property with
      | Bmc.Unknown (Bmc.Faulted site, stats) ->
          Alcotest.(check string) "site named" "bmc.incr" site;
          Alcotest.(check int) "clean up to depth 0" 0 stats.Bmc.depth_reached
      | Bmc.Unknown (r, _) ->
          Alcotest.failf "wrong unknown reason: %s" (unknown_to_string r)
      | Bmc.Cex _ | Bmc.Bounded_proof _ ->
          Alcotest.fail "a certain fault cannot leave the verdict conclusive");
      match Bmc.check ~max_depth:8 ~incremental:false circuit property with
      | Bmc.Cex (c, _) -> Alcotest.(check int) "scratch unaffected" 5 c.Bmc.cex_depth
      | o ->
          Alcotest.failf "the scratch engine has no bmc.incr site (got %s)"
            (match o with
            | Bmc.Bounded_proof _ -> "bounded proof"
            | Bmc.Unknown (r, _) -> unknown_to_string r
            | Bmc.Cex _ -> assert false))

let test_fault_incr_fuzz () =
  (* Seeded fuzz restricted to the "bmc.incr" site: random circuits on
     the incremental engine (sequential and parallel) may downgrade to
     Unknown but must never contradict the fault-free scratch
     reference. *)
  let total_fired = ref 0 in
  for seed = 21 to 28 do
    let st = Random.State.make [| seed |] in
    let circuit = Gen_circuit.random_circuit st ~num_nodes:25 ~num_regs:3 in
    let property = Gen_circuit.random_property st circuit ~num_asserts:3 in
    let reference = Bmc.check ~max_depth:5 ~incremental:false circuit property in
    (match reference with
    | Bmc.Unknown (r, _) ->
        Alcotest.failf "seed %d: fault-free reference is unknown (%s)" seed
          (unknown_to_string r)
    | _ -> ());
    List.iter
      (fun jobs ->
        Fault.arm ~sites:[ "bmc.incr" ] ~rate:0.3 ~seed ();
        let outcome =
          Fun.protect
            ~finally:(fun () ->
              total_fired := !total_fired + Fault.fired ();
              Fault.disarm ())
            (fun () ->
              Parallel.check ~jobs ~incremental:true ~max_depth:5 circuit
                property)
        in
        if verdict_flip reference outcome then
          Alcotest.failf "seed %d jobs %d: bmc.incr fault flipped the verdict"
            seed jobs;
        match outcome with
        | Bmc.Unknown (Bmc.Faulted site, _) ->
            Alcotest.(check string) "only the armed site fires" "bmc.incr" site
        | _ -> ())
      [ 1; 4 ]
  done;
  Alcotest.(check bool) "the corpus did pass the bmc.incr site" true
    (!total_fired > 0)

let test_fault_cache_store_fuzz () =
  (* The "cache.store" site models torn/corrupted persistence: a fired
     fault writes half a JSONL line and degrades the store to
     memory-only. The contract is the same as every other site — a
     faulted cache may lose entries but must never flip a verdict:
     neither in the faulted cold run itself, nor in a warm run that
     reloads the half-written store from disk. *)
  let total_fired = ref 0 and total_rejects = ref 0 in
  for seed = 31 to 38 do
    let st = Random.State.make [| seed |] in
    let circuit = Gen_circuit.random_circuit st ~num_nodes:25 ~num_regs:3 in
    let property = Gen_circuit.random_property st circuit ~num_asserts:3 in
    let reference = Bmc.check ~max_depth:5 circuit property in
    (match reference with
    | Bmc.Unknown (r, _) ->
        Alcotest.failf "seed %d: fault-free reference is unknown (%s)" seed
          (unknown_to_string r)
    | _ -> ());
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "autocc_test_cachefault_%d_%d" (Unix.getpid ()) seed)
    in
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    (* Cold, with every store torn mid-write. *)
    Fault.arm ~sites:[ "cache.store" ] ~rate:1.0 ~seed ();
    let cold =
      Fun.protect
        ~finally:(fun () ->
          total_fired := !total_fired + Fault.fired ();
          Fault.disarm ())
        (fun () ->
          let cache = Cache.create ~dir () in
          Bmc.check ~max_depth:5 ~cache circuit property)
    in
    if verdict_flip reference cold then
      Alcotest.failf "seed %d: cache.store fault flipped the cold verdict" seed;
    (* Warm, fault-free, reloading whatever half-written garbage the
       faulted run left on disk: corrupt lines must be rejected at load,
       and the verdict recomputed, never flipped. *)
    let warm_cache = Cache.create ~dir () in
    let warm = Bmc.check ~max_depth:5 ~cache:warm_cache circuit property in
    total_rejects := !total_rejects + (Cache.stats warm_cache).Cache.rejects;
    if verdict_flip reference warm then
      Alcotest.failf
        "seed %d: a corrupted store flipped the warm verdict" seed;
    match warm with
    | Bmc.Unknown _ ->
        Alcotest.failf "seed %d: a fault-free warm run must be conclusive" seed
    | _ -> ()
  done;
  Alcotest.(check bool) "the corpus did pass the cache.store site" true
    (!total_fired > 0);
  Alcotest.(check bool) "torn writes were rejected at reload" true
    (!total_rejects > 0)

(* {1 Campaigns: crash isolation and resume} *)

let two_leak_dut () =
  let open Signal in
  let din = input "din" 4 in
  let cap1 = input "cap1" 1 in
  let cap2 = input "cap2" 1 in
  let query = input "query" 4 in
  let stash1 = reg "stash1" 4 in
  let stash2 = reg "stash2" 4 in
  reg_set_next stash1 (mux2 cap1 din stash1);
  reg_set_next stash2 (mux2 cap2 din stash2);
  Rtl.Circuit.create ~name:"twoleak"
    ~outputs:[ ("hit1", query ==: stash1); ("hit2", query ==: stash2) ]
    ()

let entry label dut ?(max_depth = 8) () =
  {
    Explain.Campaign.e_label = label;
    e_dut = label;
    e_ft = (fun () -> Autocc.Ft.generate ~threshold:2 (dut ()));
    e_max_depth = max_depth;
  }

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let tmp_dir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "autocc_test_%s_%d" name (Unix.getpid ()))
  in
  rm_rf dir;
  dir

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let channel_names result =
  List.sort compare
    (List.concat_map
       (fun r ->
         List.map
           (fun cr -> cr.Explain.Campaign.cr_name)
           r.Explain.Campaign.r_index)
       result.Explain.Campaign.c_results)

let test_campaign_crash_isolation () =
  (* A crashing entry is downgraded to a Failed record; the rest of the
     campaign still runs and persists. *)
  let dir = tmp_dir "crash" in
  let crashing =
    {
      Explain.Campaign.e_label = "crashing";
      e_dut = "crashing";
      e_ft = (fun () -> raise (Fault.Injected "test.site"));
      e_max_depth = 8;
    }
  in
  let result =
    Explain.Campaign.run ~opt:Opt.O2 ~out_dir:dir
      [ crashing; entry "leaky" leaky_dut () ]
  in
  (match result.Explain.Campaign.c_results with
  | [ bad; good ] ->
      (match bad.Explain.Campaign.r_status with
      | `Failed msg -> Alcotest.(check string) "fault site named" "fault:test.site" msg
      | `Done -> Alcotest.fail "the crashing entry cannot be Done");
      (match good.Explain.Campaign.r_status with
      | `Done -> ()
      | `Failed m -> Alcotest.failf "healthy entry dragged down: %s" m);
      Alcotest.(check bool) "healthy entry found its channel" true
        (good.Explain.Campaign.r_index <> [])
  | rs -> Alcotest.failf "expected 2 results, got %d" (List.length rs));
  (* The persisted index records both. *)
  let index =
    match Obs.Json.parse (read_file (Filename.concat dir "campaign.json")) with
    | Ok j -> j
    | Error e -> Alcotest.failf "campaign.json does not parse: %s" e
  in
  (match Obs.Json.member "entries" index with
  | Some (Obs.Json.List [ e1; e2 ]) ->
      let status e =
        match Obs.Json.member "status" e with
        | Some (Obs.Json.Str s) -> s
        | _ -> "?"
      in
      Alcotest.(check string) "failed persisted" "failed" (status e1);
      Alcotest.(check string) "done persisted" "done" (status e2)
  | _ -> Alcotest.fail "index must carry both entries");
  rm_rf dir

let test_campaign_resume_bytes () =
  (* Resuming an already-complete campaign re-solves nothing and
     rewrites campaign.json byte-identically. *)
  let dir = tmp_dir "resume_bytes" in
  let entries = [ entry "leaky" leaky_dut (); entry "twoleak" two_leak_dut () ] in
  let first = Explain.Campaign.run ~opt:Opt.O2 ~out_dir:dir entries in
  let bytes_before = read_file (Filename.concat dir "campaign.json") in
  let second =
    Explain.Campaign.run ~opt:Opt.O2 ~out_dir:dir ~resume:true entries
  in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Explain.Campaign.r_label ^ " resumed")
        true r.Explain.Campaign.r_resumed)
    second.Explain.Campaign.c_results;
  let bytes_after = read_file (Filename.concat dir "campaign.json") in
  Alcotest.(check string) "campaign.json byte-identical" bytes_before bytes_after;
  Alcotest.(check (list string)) "same channel set"
    (channel_names first) (channel_names second);
  Alcotest.(check (list string)) "same artifact list"
    (List.sort compare first.Explain.Campaign.c_artifacts)
    (List.sort compare second.Explain.Campaign.c_artifacts);
  rm_rf dir

let test_campaign_interrupted_resume () =
  (* Simulate a campaign killed between entries: only the first entry's
     work is on disk. Resume completes the rest and the final channel
     set matches an uninterrupted run. *)
  let e1 = entry "leaky" leaky_dut () in
  let e2 = entry "twoleak" two_leak_dut () in
  let full_dir = tmp_dir "uninterrupted" in
  let full = Explain.Campaign.run ~opt:Opt.O2 ~out_dir:full_dir [ e1; e2 ] in
  let dir = tmp_dir "interrupted" in
  let _partial = Explain.Campaign.run ~opt:Opt.O2 ~out_dir:dir [ e1 ] in
  let resumed =
    Explain.Campaign.run ~opt:Opt.O2 ~out_dir:dir ~resume:true [ e1; e2 ]
  in
  (match resumed.Explain.Campaign.c_results with
  | [ r1; r2 ] ->
      Alcotest.(check bool) "completed entry reused" true
        r1.Explain.Campaign.r_resumed;
      Alcotest.(check bool) "missing entry recomputed" false
        r2.Explain.Campaign.r_resumed
  | rs -> Alcotest.failf "expected 2 results, got %d" (List.length rs));
  Alcotest.(check (list string)) "channel set matches the uninterrupted run"
    (channel_names full) (channel_names resumed);
  rm_rf full_dir;
  rm_rf dir

let test_campaign_resume_validates () =
  (* A persisted entry is only reused when it still matches: a changed
     max_depth forces recomputation. *)
  let dir = tmp_dir "revalidate" in
  let _ = Explain.Campaign.run ~opt:Opt.O2 ~out_dir:dir [ entry "leaky" leaky_dut () ] in
  let deeper =
    Explain.Campaign.run ~opt:Opt.O2 ~out_dir:dir ~resume:true
      [ entry "leaky" leaky_dut ~max_depth:9 () ]
  in
  (match deeper.Explain.Campaign.c_results with
  | [ r ] ->
      Alcotest.(check bool) "depth change invalidates the record" false
        r.Explain.Campaign.r_resumed
  | _ -> Alcotest.fail "one result expected");
  (* And a corrupted channel artifact also invalidates it. *)
  let _ = Explain.Campaign.run ~opt:Opt.O2 ~out_dir:dir [ entry "leaky" leaky_dut () ] in
  let oc = open_out (Filename.concat dir "channel_leaky_0.json") in
  output_string oc "not json";
  close_out oc;
  let resumed =
    Explain.Campaign.run ~opt:Opt.O2 ~out_dir:dir ~resume:true
      [ entry "leaky" leaky_dut () ]
  in
  (match resumed.Explain.Campaign.c_results with
  | [ r ] ->
      Alcotest.(check bool) "corrupt artifact invalidates the record" false
        r.Explain.Campaign.r_resumed
  | _ -> Alcotest.fail "one result expected");
  rm_rf dir

let test_campaign_unwritable_out_dir () =
  (* A file where the output directory should be: diagnosed before any
     solving (works even as root, where permission bits don't bite). *)
  let path = Filename.temp_file "autocc_not_a_dir" "" in
  (match
     Explain.Campaign.run ~out_dir:path [ entry "leaky" leaky_dut () ]
   with
  | exception Failure msg ->
      Alcotest.(check bool) "diagnostic names the problem" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "an unusable out_dir must fail fast");
  Sys.remove path

let () =
  Alcotest.run "robustness"
    [
      ( "retry",
        [
          Alcotest.test_case "scale schedule" `Quick test_retry_scale;
          Alcotest.test_case "budget escalation" `Quick test_retry_budget_for;
          Alcotest.test_case "config rotation" `Quick test_retry_config_for;
          Alcotest.test_case "capped backoff" `Quick test_retry_backoff;
          Alcotest.test_case "transience" `Quick test_retry_should_retry;
        ] );
      ( "budget",
        [
          Alcotest.test_case "wall-clock exhaustion" `Quick test_wall_budget_unknown;
          Alcotest.test_case "conflict exhaustion" `Quick test_conflict_budget_unknown;
          Alcotest.test_case "escalation recovers" `Quick test_budget_escalation_recovers;
        ] );
      ( "fault",
        [
          Alcotest.test_case "seeded determinism" `Quick test_fault_determinism;
          Alcotest.test_case "fuzz: no verdict flips" `Quick test_fault_fuzz;
          Alcotest.test_case "fuzz under retry" `Quick test_fault_fuzz_with_retry;
          Alcotest.test_case "bmc.incr site downgrades cleanly" `Quick
            test_fault_incr_site;
          Alcotest.test_case "fuzz: cache.store never flips" `Quick
            test_fault_cache_store_fuzz;
          Alcotest.test_case "fuzz: bmc.incr never flips" `Quick
            test_fault_incr_fuzz;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "crash isolation" `Quick test_campaign_crash_isolation;
          Alcotest.test_case "resume is byte-stable" `Quick test_campaign_resume_bytes;
          Alcotest.test_case "interrupted resume" `Quick test_campaign_interrupted_resume;
          Alcotest.test_case "resume validates records" `Quick test_campaign_resume_validates;
          Alcotest.test_case "unwritable out dir" `Quick test_campaign_unwritable_out_dir;
        ] );
    ]

(* Random circuit generation shared by the RTL, simulator and CNF test
   suites. Circuits draw from every operator of the IR, contain registers
   (with feedback), and expose a handful of fixed-width inputs/outputs so
   that differential testing (simulator vs clone, simulator vs SAT model)
   is straightforward. *)

module Signal = Rtl.Signal

let input_specs = [ ("a", 4); ("b", 4); ("c", 1); ("d", 7) ]

(* Build a random combinational/sequential DAG over the inputs. *)
let random_circuit st ~num_nodes ~num_regs =
  let inputs = List.map (fun (n, w) -> Signal.input n w) input_specs in
  let regs =
    List.init num_regs (fun i ->
        let w = 1 + Random.State.int st 8 in
        let init = Bitvec.random st w in
        Signal.reg ~init (Printf.sprintf "r%d" i) w)
  in
  let pool = ref (inputs @ regs) in
  let pick () =
    let l = !pool in
    List.nth l (Random.State.int st (List.length l))
  in
  let pick_width w =
    let candidates = List.filter (fun s -> Signal.width s = w) !pool in
    match candidates with
    | [] -> Signal.uresize (pick ()) w
    | l -> List.nth l (Random.State.int st (List.length l))
  in
  let add s = pool := s :: !pool in
  for _ = 1 to num_nodes do
    let a = pick () in
    let w = Signal.width a in
    let b = pick_width w in
    let node =
      match Random.State.int st 14 with
      | 0 -> Signal.( ~: ) a
      | 1 -> Signal.( &: ) a b
      | 2 -> Signal.( |: ) a b
      | 3 -> Signal.( ^: ) a b
      | 4 -> Signal.( +: ) a b
      | 5 -> Signal.( -: ) a b
      | 6 -> Signal.( *: ) a b
      | 7 -> Signal.( ==: ) a b
      | 8 -> Signal.( <: ) a b
      | 9 -> Signal.slt a b
      | 10 ->
          let sel = pick_width 1 in
          Signal.mux2 sel a b
      | 11 -> Signal.concat [ a; b ]
      | 12 ->
          let hi = Random.State.int st w in
          let lo = Random.State.int st (hi + 1) in
          Signal.select a hi lo
      | _ -> Signal.const (Bitvec.random st w)
    in
    if Signal.width node <= 16 then add node
  done;
  (* Close register feedback with arbitrary pool values. *)
  List.iter
    (fun r -> Signal.reg_set_next r (pick_width (Signal.width r)))
    regs;
  let outputs =
    List.init 3 (fun i -> (Printf.sprintf "out%d" i, pick ()))
  in
  Rtl.Circuit.create ~name:"random" ~outputs ()

let random_inputs st =
  List.map (fun (n, w) -> (n, Bitvec.random st w)) input_specs

(* A random multi-assert property over an existing circuit, for
   differential testing of the parallel engine. Assertion shapes are
   mixed so that counterexample depths vary within one property:

   - "reachable": simulate one random execution and assert a node never
     takes a value it was just observed to take — refutable within the
     sampled depth (unless an assumption happens to block the trace);
   - "random constant": the node never equals a random value — sometimes
     shallow, sometimes unreachable within the bound;
   - a raw low bit, failing immediately on many traces;
   - [s ==: s], never failing, so shards also exercise bounded proofs.

   Occasionally one 1-bit assumption over an input bit is added, which
   every engine must apply on every cycle. *)
let random_property st circuit ~num_asserts =
  let module Circuit = Rtl.Circuit in
  let pool =
    List.map (fun p -> p.Circuit.signal) (Circuit.outputs circuit)
    @ Circuit.regs circuit
  in
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  let samples =
    let sim = Sim.create circuit in
    let depth = 1 + Random.State.int st 5 in
    List.concat
      (List.init depth (fun _ ->
           List.iter
             (fun p ->
               Sim.set_input sim p.Circuit.port_name
                 (Bitvec.random st (Signal.width p.Circuit.signal)))
             (Circuit.inputs circuit);
           let here = List.map (fun s -> (s, Sim.peek sim s)) pool in
           Sim.step sim;
           here))
  in
  let asserts =
    List.init num_asserts (fun i ->
        let body =
          match Random.State.int st 6 with
          | 0 | 1 ->
              let s, v = pick samples in
              Signal.( ~: ) (Signal.( ==: ) s (Signal.const v))
          | 2 | 3 ->
              let s = pick pool in
              Signal.( ~: )
                (Signal.( ==: ) s (Signal.const (Bitvec.random st (Signal.width s))))
          | 4 -> Signal.select (pick pool) 0 0
          | _ ->
              let s = pick pool in
              Signal.( ==: ) s s
        in
        (Printf.sprintf "p%d" i, body))
  in
  let assumes =
    (* The cone of a random circuit's outputs may touch no input at all,
       in which case there is nothing to assume over. *)
    if Circuit.inputs circuit <> [] && Random.State.int st 3 = 0 then
      let p = pick (Circuit.inputs circuit) in
      let b = Signal.select p.Circuit.signal 0 0 in
      [ (if Random.State.bool st then b else Signal.( ~: ) b) ]
    else []
  in
  { Bmc.assumes; asserts }

(* Drive a simulator with per-cycle input assignments and collect output
   values after combinational settling in each cycle. *)
let run_outputs sim cycles_inputs =
  let known n =
    List.exists
      (fun p -> p.Rtl.Circuit.port_name = n)
      (Rtl.Circuit.inputs (Sim.circuit sim))
  in
  List.map
    (fun assignments ->
      List.iter (fun (n, v) -> if known n then Sim.set_input sim n v) assignments;
      let outs =
        List.map
          (fun p -> (p.Rtl.Circuit.port_name, Sim.out sim p.Rtl.Circuit.port_name))
          (Rtl.Circuit.outputs (Sim.circuit sim))
      in
      Sim.step sim;
      outs)
    cycles_inputs

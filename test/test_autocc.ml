(* End-to-end tests of the AutoCC methodology on purpose-built DUTs with
   known covert channels: FT generation, CEX discovery, root-cause state
   diffing, transactions, common inputs, blackboxing, flush
   instrumentation, and the two flush-synthesis algorithms. *)

module Signal = Rtl.Signal
module Circuit = Rtl.Circuit
open Signal

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A DUT with a classic hidden-state covert channel: [stash] captures
   input data on demand and is never flushed; the output reveals whether a
   later query matches the stashed value. *)
let leaky_dut () =
  let din = input "din" 4 in
  let capture = input "capture" 1 in
  let query = input "query" 4 in
  let stash = reg "stash" 4 in
  reg_set_next stash (mux2 capture din stash);
  Circuit.create ~name:"leaky"
    ~outputs:[ ("hit", query ==: stash) ]
    ()

(* The same DUT with a flush input that clears the stash. *)
let fixed_dut () = Autocc.Flush.instrument ~regs:[ "stash" ] (leaky_dut ())

let find_cex ?(threshold = 2) ?(max_depth = 12) ?arch_regs ?common ?blackbox ?flush_done dut =
  let ft = Autocc.Ft.generate ~threshold ?arch_regs ?common ?blackbox ?flush_done dut in
  (ft, Autocc.Ft.check ~max_depth ft)

let test_leak_found () =
  let ft, outcome = find_cex (leaky_dut ()) in
  match outcome with
  | Bmc.Bounded_proof _ -> Alcotest.fail "expected a covert-channel CEX"
  | Bmc.Cex (cex, _) ->
      Alcotest.(check (list string)) "output assertion fails"
        [ "as__hit_eq" ] cex.Bmc.cex_failed;
      (* Root cause: the stash registers differ when spy mode begins. *)
      (match Autocc.Ft.spy_start_cycle ft cex with
      | None -> Alcotest.fail "spy mode must be reached"
      | Some cycle ->
          let diffs = Autocc.Ft.state_diff ft cex ~cycle in
          Alcotest.(check bool) "stash differs" true
            (List.exists (fun (n, _, _) -> n = "stash") diffs));
      (* The summary mentions the culprit. *)
      let s = Autocc.Report.summary ft cex in
      Alcotest.(check bool) "summary names stash" true (contains s "stash")
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

let test_flush_fixes_leak () =
  let dut = fixed_dut () in
  let _, outcome =
    find_cex ~flush_done:(Autocc.Flush.flush_done_of_input ()) dut
  in
  match outcome with
  | Bmc.Bounded_proof stats ->
      Alcotest.(check bool) "reasonable depth" true (stats.Bmc.depth_reached >= 10)
  | Bmc.Cex (cex, _) ->
      Alcotest.failf "leak should be closed, got CEX at depth %d" cex.Bmc.cex_depth
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

let test_flush_instrument_sim () =
  (* The instrumented flush behaves in simulation. *)
  let dut = fixed_dut () in
  let s = Sim.create dut in
  Sim.set_input_int s "capture" 1;
  Sim.set_input_int s "din" 9;
  Sim.step s;
  Sim.set_input_int s "capture" 0;
  Sim.set_input_int s "query" 9;
  Alcotest.(check int) "stashed" 1 (Sim.out_int s "hit");
  Sim.set_input_int s "flush" 1;
  Sim.step s;
  Sim.set_input_int s "flush" 0;
  Alcotest.(check int) "flushed" 0 (Sim.out_int s "hit")

(* Architectural state: a register the OS swaps (e.g. the register file)
   must be excluded by adding it to architectural_state_eq, otherwise it
   shows up as a spurious CEX — this mirrors Vscale CEX V1. *)
let arch_dut () =
  let din = input "din" 4 in
  let wen = input "wen" 1 in
  let jump = input "jump" 1 in
  let rf = reg "regfile" 4 in
  reg_set_next rf (mux2 wen din rf);
  (* The register is observable only on a jump — like V1's jump to an
     address read from the register file. *)
  Circuit.create ~name:"archy" ~outputs:[ ("pc", mux2 jump rf (zero 4)) ] ()

let test_arch_refinement () =
  (* Without refinement: CEX blaming the register file. *)
  (let ft, outcome = find_cex (arch_dut ()) in
   match outcome with
   | Bmc.Bounded_proof _ -> Alcotest.fail "default FT must report the regfile"
   | Bmc.Cex (cex, _) ->
       let cycle = Option.get (Autocc.Ft.spy_start_cycle ft cex) in
       Alcotest.(check bool) "regfile blamed" true
         (List.exists
            (fun (n, _, _) -> n = "regfile")
            (Autocc.Ft.state_diff ft cex ~cycle))
   | Bmc.Unknown (r, _) ->
       Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r));
  (* With the regfile declared architectural: proof. *)
  let _, outcome = find_cex ~arch_regs:[ "regfile" ] (arch_dut ()) in
  match outcome with
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Cex _ -> Alcotest.fail "arch_regs refinement should close the CEX"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

(* Common inputs: a debug input forwarded to an output is a false channel
   unless shared between universes. *)
let debug_dut () =
  let dbg = input "debug" 4 in
  let q = reg "q" 4 in
  reg_set_next q q;
  Circuit.create ~name:"dbg" ~outputs:[ ("out", dbg +: q) ] ()

let test_common_inputs () =
  (let _, outcome = find_cex (debug_dut ()) in
   match outcome with
   | Bmc.Cex _ -> Alcotest.fail "duplicated debug inputs are assumed equal in spy mode"
   | Bmc.Bounded_proof _ -> ()
   | Bmc.Unknown (r, _) ->
       Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r));
  let _, outcome = find_cex ~common:[ "debug" ] (debug_dut ()) in
  match outcome with
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Cex _ -> Alcotest.fail "common debug input cannot leak"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

(* Transactions: an accumulator exposed only under a valid response. With
   the transaction annotation the channel is found; without it the FT is
   overconstrained (strict payload equality blocks the transfer period)
   and the channel is masked — the overconstraint pitfall of Sec. 3.3. *)
let tx_dut ~annotate () =
  let req = input "req" 1 in
  let din = input "din" 4 in
  let acc = reg "acc" 4 in
  let resp_valid = reg "resp_valid" 1 in
  let resp_data = reg "resp_data" 4 in
  reg_set_next acc (mux2 req (acc +: din) acc);
  reg_set_next resp_valid req;
  reg_set_next resp_data (mux2 req (acc +: din) resp_data);
  let out_tx =
    if annotate then
      [ { Circuit.tx_name = "resp"; valid = "resp_valid"; payloads = [ "resp_data" ] } ]
    else []
  in
  Circuit.create ~name:"txdut" ~out_tx
    ~outputs:[ ("resp_valid", resp_valid); ("resp_data", resp_data) ]
    ()

let test_transactions () =
  (let _, outcome = find_cex (tx_dut ~annotate:true ()) in
   match outcome with
   | Bmc.Cex (cex, _) ->
       Alcotest.(check bool) "payload assertion fails" true
         (List.mem "as__resp_data_eq" cex.Bmc.cex_failed
         || List.mem "as__resp_valid_eq" cex.Bmc.cex_failed)
   | Bmc.Bounded_proof _ -> Alcotest.fail "annotated FT must find the accumulator channel"
   | Bmc.Unknown (r, _) ->
       Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r));
  let _, outcome = find_cex ~max_depth:8 (tx_dut ~annotate:false ()) in
  match outcome with
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Cex _ ->
      Alcotest.fail "without the annotation the strict FT is overconstrained"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

(* Blackboxing: a CSR-like submodule holds state; cutting its boundary
   removes that state from the DUT and replaces it with interface
   assumptions/assertions. *)
let csr_dut () =
  let wen = input "csr_wen" 1 in
  let wdata = input "csr_wdata" 4 in
  let sel = input "sel" 1 in
  let csr = reg "csr_data" 4 in
  reg_set_next csr (mux2 wen wdata csr);
  let rdata = csr +: one 4 in
  let dout = mux2 sel rdata (zero 4) in
  Circuit.create ~name:"csrdut"
    ~boundaries:
      [
        {
          Circuit.bnd_name = "csr";
          bnd_outputs = [ ("rdata", rdata) ];
          bnd_inputs = [ ("wen", wen); ("wdata", wdata) ];
        };
      ]
    ~outputs:[ ("dout", dout) ]
    ()

let test_blackbox () =
  (let ft, outcome = find_cex (csr_dut ()) in
   ignore ft;
   match outcome with
   | Bmc.Cex _ -> ()
   | Bmc.Bounded_proof _ -> Alcotest.fail "CSR state must leak without blackboxing"
   | Bmc.Unknown (r, _) ->
       Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r));
  let ft, outcome = find_cex ~blackbox:[ "csr" ] (csr_dut ()) in
  (match outcome with
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Cex _ -> Alcotest.fail "blackboxed CSR leaves no state to leak"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r));
  (* The blackboxed DUT exposes the boundary wires as interface ports. *)
  let names = List.map (fun p -> p.Circuit.port_name) (Circuit.inputs ft.Autocc.Ft.dut) in
  Alcotest.(check bool) "bb input present" true (List.mem "bb_csr_rdata" names);
  let onames = List.map (fun p -> p.Circuit.port_name) (Circuit.outputs ft.Autocc.Ft.dut) in
  Alcotest.(check bool) "bb outputs present" true
    (List.mem "bb_csr_wen" onames && List.mem "bb_csr_wdata" onames)

(* Flush synthesis on a DUT with two independent leaky registers and one
   benign register. *)
let two_leak_dut () =
  let din = input "din" 4 in
  let cap1 = input "cap1" 1 in
  let cap2 = input "cap2" 1 in
  let query = input "query" 4 in
  let stash1 = reg "stash1" 4 in
  let stash2 = reg "stash2" 4 in
  let benign = reg "benign" 4 in
  reg_set_next stash1 (mux2 cap1 din stash1);
  reg_set_next stash2 (mux2 cap2 din stash2);
  (* A free-running counter: identical in both universes, never leaks. *)
  reg_set_next benign (benign +: one 4);
  Circuit.create ~name:"twoleak"
    ~outputs:[ ("hit1", query ==: stash1); ("hit2", query ==: stash2) ]
    ()

let test_incremental_synthesis () =
  let result =
    Autocc.Synthesis.incremental ~max_depth:10 ~threshold:2
      ~candidates:[ "stash1"; "stash2"; "benign" ]
      (two_leak_dut ())
  in
  Alcotest.(check bool) "proved" true result.Autocc.Synthesis.proved;
  Alcotest.(check (list string)) "flush set"
    [ "stash1"; "stash2" ]
    (List.sort compare result.Autocc.Synthesis.flush_set);
  Alcotest.(check bool) "took one CEX per leak" true
    (List.length result.Autocc.Synthesis.steps >= 3)

let test_decremental_synthesis () =
  let result =
    Autocc.Synthesis.decremental ~max_depth:10 ~threshold:2
      ~candidates:[ "benign"; "stash1"; "stash2" ]
      (two_leak_dut ())
  in
  Alcotest.(check bool) "proved" true result.Autocc.Synthesis.proved;
  Alcotest.(check (list string)) "minimal flush set"
    [ "stash1"; "stash2" ]
    (List.sort compare result.Autocc.Synthesis.flush_set)

(* Legal-input assumptions (Sec. 3.4): a protocol monitor flags a
   response that arrives with no outstanding request; without an
   environment assumption this spurious behaviour produces a CEX, with it
   the FT proves. *)
let protocol_dut () =
  let req = input "req" 1 in
  let resp = input "resp" 1 in
  let status_query = input "status_query" 1 in
  let pending = reg "pending" 1 in
  let err = reg "err" 1 in
  reg_set_next pending (mux2 req vdd (mux2 resp gnd pending));
  reg_set_next err (err |: (resp &: ~:pending));
  Circuit.create ~name:"protocol"
    ~outputs:[ ("status", mux2 status_query err gnd) ]
    ()

let test_legal_input_assumptions () =
  (let _, outcome = find_cex (protocol_dut ()) in
   match outcome with
   | Bmc.Cex (cex, _) ->
       Alcotest.(check (list string)) "spurious CEX from illegal input"
         [ "as__status_eq" ] cex.Bmc.cex_failed
   | Bmc.Bounded_proof _ -> Alcotest.fail "unconstrained environment must look leaky"
   | Bmc.Unknown (r, _) ->
       Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r));
  let legal dut map_a map_b =
    (* No response without an outstanding request, in either universe. *)
    let resp = Circuit.find_input dut "resp" in
    let pending = Circuit.find_reg dut "pending" in
    let ok m = ~:(m resp) |: m pending in
    [ ok map_a; ok map_b ]
  in
  let ft = Autocc.Ft.generate ~threshold:2 ~assumes:legal (protocol_dut ()) in
  match Autocc.Ft.check ~max_depth:10 ft with
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Cex _ -> Alcotest.fail "legal-input assumption should remove the spurious CEX"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

(* Flush-start synchronization (Sec. 3.2): a flush whose latency depends
   on prior execution is invisible with end-sync and a CEX with
   start-sync. *)
let latency_dut ~pad () =
  let start = input "start" 1 in
  let load = input "load" 1 in
  let level = reg "level" 2 in
  let busy_cnt = reg "busy_cnt" 2 in
  let busy = busy_cnt >: zero 2 in
  (* Victim work accumulates [level]; the flush takes 1 + level cycles
     (or always the worst case when padded) and resets it. *)
  reg_set_next level
    (mux2 busy (zero 2)
       (mux2 (load &: (level <: of_int ~width:2 2)) (level +: one 2) level));
  reg_set_next busy_cnt
    (mux2 (start &: ~:busy)
       (if pad then of_int ~width:2 3 else one 2 +: level)
       (mux2 busy (busy_cnt -: one 2) busy_cnt));
  Circuit.create ~name:"latency" ~outputs:[ ("busy", busy) ] ()

let flush_edge ~rising dut map_a map_b =
  let busy = Circuit.find_output dut "busy" in
  let edge m =
    let prev = reg (Printf.sprintf "prev_busy_%d" (Signal.uid (m busy))) 1 in
    reg_set_next prev (m busy);
    if rising then m busy &: ~:prev else prev &: ~:(m busy)
  in
  edge map_a &: edge map_b

let test_flush_start_sync () =
  (* End-sync: the latency difference is absorbed before the spy runs. *)
  (let ft =
     Autocc.Ft.generate ~threshold:2 ~flush_done:(flush_edge ~rising:false)
       (latency_dut ~pad:false ())
   in
   match Autocc.Ft.check ~max_depth:12 ft with
   | Bmc.Bounded_proof _ -> ()
   | Bmc.Cex _ -> Alcotest.fail "end-sync is blind to flush latency"
   | Bmc.Unknown (r, _) ->
       Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r));
  (* Start-sync: the modulated latency is a covert channel. *)
  (let ft =
     Autocc.Ft.generate ~threshold:2 ~sync:Autocc.Ft.Flush_start
       ~flush_done:(flush_edge ~rising:true)
       (latency_dut ~pad:false ())
   in
   match Autocc.Ft.check ~max_depth:12 ft with
   | Bmc.Cex (cex, _) ->
       Alcotest.(check (list string)) "busy timing leaks" [ "as__busy_eq" ]
         cex.Bmc.cex_failed
   | Bmc.Bounded_proof _ -> Alcotest.fail "start-sync must expose the latency channel"
   | Bmc.Unknown (r, _) ->
       Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r));
  (* Worst-case padding closes it. *)
  let ft =
    Autocc.Ft.generate ~threshold:2 ~sync:Autocc.Ft.Flush_start
      ~flush_done:(flush_edge ~rising:true)
      (latency_dut ~pad:true ())
  in
  match Autocc.Ft.check ~max_depth:12 ft with
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Cex _ -> Alcotest.fail "padding should close the latency channel"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

(* Structural VCD check: a well-formed header ($date, $timescale, scope,
   $enddefinitions), parseable $var declarations with unique id codes,
   and a value-change section in which every line is a timestep, a 1-bit
   change [01]<id> or a multi-bit change b<bits> <id> against a declared
   id of the declared width. *)
let check_vcd_structure lines =
  (match lines with
  | first :: _ ->
      Alcotest.(check bool) "vcd $date header" true
        (String.length first > 5 && String.sub first 0 5 = "$date")
  | [] -> Alcotest.fail "empty vcd");
  Alcotest.(check bool) "vcd $timescale" true
    (List.exists (fun l -> l = "$timescale 1 ns $end") lines);
  Alcotest.(check bool) "vcd scope" true
    (List.exists
       (fun l -> String.length l > 6 && String.sub l 0 6 = "$scope")
       lines);
  Alcotest.(check bool) "vcd $enddefinitions" true
    (List.mem "$enddefinitions $end" lines);
  (* Declarations. *)
  let widths = Hashtbl.create 64 in
  List.iter
    (fun line ->
      if String.length line > 4 && String.sub line 0 4 = "$var" then
        match String.split_on_char ' ' line with
        | [ "$var"; "wire"; w; id; name; "$end" ] ->
            let w = int_of_string w in
            Alcotest.(check bool) ("positive width for " ^ name) true (w > 0);
            if Hashtbl.mem widths id then Alcotest.failf "duplicate id %s" id;
            Hashtbl.replace widths id w
        | _ -> Alcotest.failf "unparseable $var line: %s" line)
    lines;
  Alcotest.(check bool) "has variables" true (Hashtbl.length widths > 0);
  (* Value changes: everything after $enddefinitions. *)
  let rec after = function
    | "$enddefinitions $end" :: rest -> rest
    | _ :: rest -> after rest
    | [] -> []
  in
  let timesteps = ref 0 and scalar = ref 0 and vector = ref 0 in
  List.iter
    (fun line ->
      if line = "" then ()
      else if line.[0] = '#' then begin
        ignore (int_of_string (String.sub line 1 (String.length line - 1)));
        incr timesteps
      end
      else if line.[0] = '0' || line.[0] = '1' then begin
        let id = String.sub line 1 (String.length line - 1) in
        (match Hashtbl.find_opt widths id with
        | Some 1 -> ()
        | Some w -> Alcotest.failf "scalar change on %d-bit id %s" w id
        | None -> Alcotest.failf "scalar change on undeclared id %s" id);
        incr scalar
      end
      else if line.[0] = 'b' then begin
        match String.split_on_char ' ' line with
        | [ bits; id ] ->
            let bits = String.sub bits 1 (String.length bits - 1) in
            String.iter
              (fun c -> if c <> '0' && c <> '1' then Alcotest.failf "bad bit %c" c)
              bits;
            (match Hashtbl.find_opt widths id with
            | Some w ->
                Alcotest.(check int) ("vector width for id " ^ id) w
                  (String.length bits)
            | None -> Alcotest.failf "vector change on undeclared id %s" id);
            incr vector
        | _ -> Alcotest.failf "unparseable vector change: %s" line
      end
      else Alcotest.failf "unexpected value-change line: %s" line)
    (after lines);
  (!timesteps, !scalar, !vector, Hashtbl.length widths)

let test_vcd_dump () =
  let ft, outcome = find_cex (leaky_dut ()) in
  match outcome with
  | Bmc.Cex (cex, _) ->
      let path = Filename.temp_file "autocc" ".vcd" in
      Autocc.Report.dump_vcd ~path ft cex;
      let lines = read_lines path in
      Sys.remove path;
      let timesteps, scalar, vector, vars = check_vcd_structure lines in
      (* One timestep per trace cycle; the FT has both 1-bit monitor
         signals and multi-bit data, so both change encodings appear. *)
      Alcotest.(check int) "one timestep per cycle" (cex.Bmc.cex_depth + 1) timesteps;
      Alcotest.(check bool) "scalar changes present" true (scalar > 0);
      Alcotest.(check bool) "vector changes present" true (vector > 0);
      Alcotest.(check bool) "several variables" true (vars > 4)
  | Bmc.Bounded_proof _ -> Alcotest.fail "expected CEX"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

let test_blackbox_two_boundaries () =
  (* Two independent stash submodules; cutting one leaves the other's
     channel findable, cutting both proves. *)
  let two_unit_dut () =
    let mk tag =
      let din = input (tag ^ "_din") 4 in
      let cap = input (tag ^ "_cap") 1 in
      let query = input (tag ^ "_query") 4 in
      let stash = reg (tag ^ "_stash") 4 in
      reg_set_next stash (mux2 cap din stash);
      let hit = query ==: stash in
      ( hit,
        {
          Circuit.bnd_name = tag;
          bnd_outputs = [ ("hit", hit) ];
          bnd_inputs = [ ("din", din); ("cap", cap); ("query", query) ];
        } )
    in
    let hit_a, bnd_a = mk "ua" in
    let hit_b, bnd_b = mk "ub" in
    Circuit.create ~name:"two_units"
      ~boundaries:[ bnd_a; bnd_b ]
      ~outputs:[ ("hit_a", hit_a); ("hit_b", hit_b) ]
      ()
  in
  (match find_cex ~blackbox:[ "ua" ] (two_unit_dut ()) with
  | ft, Bmc.Cex (cex, _) ->
      let cycle = Option.get (Autocc.Ft.spy_start_cycle ft cex) in
      Alcotest.(check bool) "remaining channel is ub's" true
        (List.exists (fun (n, _, _) -> n = "ub_stash") (Autocc.Ft.state_diff ft cex ~cycle))
  | _, Bmc.Bounded_proof _ -> Alcotest.fail "ub's channel must remain"
  | _, Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r));
  match find_cex ~blackbox:[ "ua"; "ub" ] (two_unit_dut ()) with
  | _, Bmc.Bounded_proof _ -> ()
  | _, Bmc.Cex _ -> Alcotest.fail "both cut: no state left"
  | _, Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

let test_report_renders () =
  let ft, outcome = find_cex (leaky_dut ()) in
  match outcome with
  | Bmc.Cex (cex, _) ->
      let text = Format.asprintf "%a" (fun fmt -> Autocc.Report.explain fmt ft) cex in
      Alcotest.(check bool) "mentions spy" true (contains text "Spy process begins")
  | Bmc.Bounded_proof _ -> Alcotest.fail "expected CEX"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

let () =
  Alcotest.run "autocc"
    [
      ( "methodology",
        [
          Alcotest.test_case "finds hidden-state channel" `Quick test_leak_found;
          Alcotest.test_case "flush closes channel" `Quick test_flush_fixes_leak;
          Alcotest.test_case "flush works in sim" `Quick test_flush_instrument_sim;
          Alcotest.test_case "arch-state refinement" `Quick test_arch_refinement;
          Alcotest.test_case "common inputs" `Quick test_common_inputs;
          Alcotest.test_case "transactions" `Quick test_transactions;
          Alcotest.test_case "blackboxing" `Quick test_blackbox;
          Alcotest.test_case "two boundaries" `Quick test_blackbox_two_boundaries;
          Alcotest.test_case "report rendering" `Quick test_report_renders;
          Alcotest.test_case "legal-input assumptions" `Quick test_legal_input_assumptions;
          Alcotest.test_case "flush-start sync (latency)" `Quick test_flush_start_sync;
          Alcotest.test_case "vcd dump" `Quick test_vcd_dump;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "algorithm 1 (incremental)" `Quick test_incremental_synthesis;
          Alcotest.test_case "algorithm 2 (decremental)" `Quick test_decremental_synthesis;
        ] );
    ]

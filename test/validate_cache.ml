(* Validates BENCH_cache.json from a real `bench cache` run — the
   [@cache-smoke] gate. Usage:

     validate_cache.exe BENCH_cache.json

   The bench runs each row cold (empty store, every verdict solved and
   persisted) and then warm through a fresh [Cache.create] over the same
   directory, so the warm phase exercises the JSONL codec and the CEX
   replay re-validation end to end. This checks the artifact
   structurally (every row has both outcomes with
   verdict/depth/wall_s/stats), re-derives agreement and speedups from
   the recorded outcomes instead of trusting the bench's own flags,
   requires zero mismatches and zero rejects, demands that the warm
   phase actually hit the store, and gates the headline claim: the
   aggregate warm re-run must be at least 5x faster than the cold
   solve. Exits non-zero on the first violation. *)

module Json = Obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

let parse path =
  match Json.parse (read_file path) with
  | Ok j ->
      (match Json.parse (Json.to_string j) with
      | Ok j' when j' = j -> ()
      | Ok _ -> fail "%s does not round-trip through the JSON printer" path
      | Error e -> fail "%s re-parse failed: %s" path e);
      j
  | Error e -> fail "%s does not parse: %s" path e

let str_field what name j =
  match Json.member name j with
  | Some (Json.Str s) -> s
  | _ -> fail "%s lacks string field %S: %s" what name (Json.to_string j)

let int_field what name j =
  match Json.member name j with
  | Some (Json.Int i) -> i
  | _ -> fail "%s lacks int field %S: %s" what name (Json.to_string j)

let num_field what name j =
  match Json.member name j with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> fail "%s lacks numeric field %S: %s" what name (Json.to_string j)

let bool_field what name j =
  match Json.member name j with
  | Some (Json.Bool b) -> b
  | _ -> fail "%s lacks bool field %S" what name

let obj_field what name j =
  match Json.member name j with
  | Some (Json.Obj _ as o) -> o
  | _ -> fail "%s lacks object field %S" what name

(* One phase's outcome record; returns (verdict, depth, wall). *)
let check_outcome what name j =
  let o = obj_field what name j in
  let verdict = str_field what "verdict" o in
  let depth = int_field what "depth" o in
  let wall = num_field what "wall_s" o in
  ignore (obj_field what "stats" o);
  (verdict, depth, wall)

let check_row path j =
  let id = str_field path "id" j in
  let what = Printf.sprintf "%s row %s" path id in
  ignore (str_field what "description" j);
  ignore (int_field what "max_depth" j);
  let cv, cd, cw = check_outcome what "cold" j in
  let wv, wd, ww = check_outcome what "warm" j in
  if not (bool_field what "agree" j) then fail "%s: recorded as a mismatch" what;
  (* Re-derive the agreement from the outcomes instead of trusting the
     bench's own flag — the whole point of the cache contract is that a
     hit is byte-identical to a solve. *)
  if cv <> wv then
    fail "%s: warm verdict %S differs from cold %S" what wv cv;
  if cd <> wd then
    fail "%s: verdicts agree on %S but at different depths (%d vs %d)" what cv
      cd wd;
  if cv = "unknown" then fail "%s: inconclusive in both phases" what;
  (cw, ww)

let check_stats what j =
  ( int_field what "hits" j,
    int_field what "misses" j,
    int_field what "stores" j,
    int_field what "rejects" j )

let () =
  match Sys.argv with
  | [| _; path |] ->
      let j = parse path in
      if str_field path "bench" j <> "cache" then
        fail "%s is not a cache bench record" path;
      let rows =
        match Json.member "rows" j with
        | Some (Json.List l) -> l
        | _ -> fail "%s lacks a rows list" path
      in
      if rows = [] then fail "%s has no rows" path;
      let walls = List.map (check_row path) rows in
      if int_field path "mismatches" j <> 0 then
        fail "%s: the bench recorded cold/warm mismatches" path;
      let cold_s = List.fold_left (fun a (c, _) -> a +. c) 0. walls in
      let warm_s = List.fold_left (fun a (_, w) -> a +. w) 0. walls in
      if abs_float (num_field path "cold_s" j -. cold_s) > 1e-6 then
        fail "%s: cold_s disagrees with the per-row walls" path;
      if abs_float (num_field path "warm_s" j -. warm_s) > 1e-6 then
        fail "%s: warm_s disagrees with the per-row walls" path;
      let speedup = cold_s /. Float.max 1e-9 warm_s in
      let c_hits, _, c_stores, c_rejects =
        check_stats (path ^ " cold_cache") (obj_field path "cold_cache" j)
      in
      let w_hits, _, w_stores, w_rejects =
        check_stats (path ^ " warm_cache") (obj_field path "warm_cache" j)
      in
      if c_hits <> 0 then fail "%s: the cold phase hit a supposedly empty store" path;
      if c_stores = 0 then fail "%s: the cold phase persisted nothing" path;
      if w_hits = 0 then fail "%s: the warm phase never hit the store" path;
      if w_stores <> 0 then
        fail "%s: the warm phase re-solved and re-stored (%d stores)" path
          w_stores;
      if c_rejects <> 0 || w_rejects <> 0 then
        fail "%s: the store rejected entries (%d cold, %d warm)" path c_rejects
          w_rejects;
      (* The headline gate: replaying a persisted verdict must be far
         cheaper than re-solving it. *)
      if speedup < 5.0 then
        fail "%s: warm speedup %.2fx is below the 5x gate" path speedup;
      ignore (obj_field path "telemetry" j);
      Printf.printf
        "cache bench OK: %s (%d rows, cold %.2fs -> warm %.2fs, %.1fx, %d warm hits)\n"
        path (List.length walls) cold_s warm_s speedup w_hits
  | _ ->
      prerr_endline "usage: validate_cache BENCH_cache.json";
      exit 2

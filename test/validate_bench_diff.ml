(* Forced-regression self-test for the `bench diff` gate: copy a
   BENCH_*.json, multiplying every time-like leaf (keys ending in _s)
   by 10 — far beyond any noise threshold — so the @obs-smoke rule can
   prove the gate actually exits 1 on a regressed file while the
   untouched copy passes.

     validate_bench_diff.exe slow SRC.json DST.json *)

let time_like k =
  let n = String.length k in
  n > 2 && String.sub k (n - 2) 2 = "_s"

let rec slow j =
  match j with
  | Obs.Json.Obj kvs ->
      Obs.Json.Obj
        (List.map
           (fun (k, v) ->
             match v with
             | Obs.Json.Float f when time_like k -> (k, Obs.Json.Float (f *. 10.))
             | Obs.Json.Int i when time_like k ->
                 (k, Obs.Json.Float (float_of_int i *. 10.))
             | v -> (k, slow v))
           kvs)
  | Obs.Json.List l -> Obs.Json.List (List.map slow l)
  | (Obs.Json.Null | Obs.Json.Bool _ | Obs.Json.Int _ | Obs.Json.Float _
    | Obs.Json.Str _) as v ->
      v

let () =
  match Sys.argv with
  | [| _; "slow"; src; dst |] -> (
      let ic = open_in_bin src in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Obs.Json.parse s with
      | Error e ->
          Printf.eprintf "FAIL: %s: %s\n" src e;
          exit 1
      | Ok j ->
          Obs.Json.write_file ~path:dst (slow j);
          Printf.printf "slowed copy of %s written to %s\n" src dst)
  | _ ->
      prerr_endline "usage: validate_bench_diff.exe slow SRC.json DST.json";
      exit 2

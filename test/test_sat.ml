(* The SAT solver is validated against brute-force enumeration on random
   instances, plus directed tests: unit propagation chains, pigeonhole
   principle (unsat), assumptions, and incremental use. *)

module S = Sat.Solver

let make_solver nvars =
  let s = S.create () in
  for _ = 1 to nvars do
    ignore (S.new_var s)
  done;
  s

(* A CNF is a list of clauses; a clause a list of (var, sign). *)
let brute_force nvars cnf =
  let rec go assignment v =
    if v = nvars then
      List.for_all
        (fun clause ->
          List.exists (fun (x, sign) -> assignment.(x) = sign) clause)
        cnf
    else begin
      assignment.(v) <- true;
      go assignment (v + 1)
      ||
      (assignment.(v) <- false;
       go assignment (v + 1))
    end
  in
  go (Array.make nvars false) 0

let solve_cnf nvars cnf =
  let s = make_solver nvars in
  List.iter (fun clause -> S.add_clause s (List.map (fun (v, sign) -> S.lit v sign) clause)) cnf;
  (s, S.solve s)

let check_model s cnf =
  List.for_all
    (fun clause -> List.exists (fun (v, sign) -> S.value s v = sign) clause)
    cnf

let random_cnf st nvars nclauses =
  List.init nclauses (fun _ ->
      let len = 1 + Random.State.int st 4 in
      List.init len (fun _ ->
          (Random.State.int st nvars, Random.State.bool st)))

let prop_random_cnf seed =
  let st = Random.State.make [| seed |] in
  let nvars = 1 + Random.State.int st 12 in
  let nclauses = 1 + Random.State.int st 50 in
  let cnf = random_cnf st nvars nclauses in
  let expected = brute_force nvars cnf in
  let s, result = solve_cnf nvars cnf in
  match result with
  | S.Sat -> expected && check_model s cnf
  | S.Unsat -> not expected

let prop_assumptions seed =
  (* Solving under assumptions must agree with adding them as unit
     clauses, and must not poison later solves. *)
  let st = Random.State.make [| seed |] in
  let nvars = 1 + Random.State.int st 10 in
  let cnf = random_cnf st nvars (1 + Random.State.int st 30) in
  let n_assum = 1 + Random.State.int st 3 in
  let assum = List.init n_assum (fun _ -> (Random.State.int st nvars, Random.State.bool st)) in
  let s, _ = solve_cnf nvars cnf in
  let assumptions = List.map (fun (v, sign) -> S.lit v sign) assum in
  let with_assumptions = S.solve ~assumptions s in
  let expected =
    brute_force nvars (cnf @ List.map (fun a -> [ a ]) assum)
  in
  let plain_after = S.solve s in
  let plain_expected = brute_force nvars cnf in
  (match with_assumptions with S.Sat -> expected | S.Unsat -> not expected)
  && (match plain_after with S.Sat -> plain_expected | S.Unsat -> not plain_expected)

let prop_incremental seed =
  (* Adding clauses one batch at a time must give the same verdicts as
     solving each prefix from scratch. *)
  let st = Random.State.make [| seed |] in
  let nvars = 1 + Random.State.int st 10 in
  let batches = List.init 3 (fun _ -> random_cnf st nvars (1 + Random.State.int st 15)) in
  let s = make_solver nvars in
  let acc = ref [] in
  List.for_all
    (fun batch ->
      acc := !acc @ batch;
      List.iter
        (fun clause ->
          S.add_clause s (List.map (fun (v, sign) -> S.lit v sign) clause))
        batch;
      let expected = brute_force nvars !acc in
      match S.solve s with S.Sat -> expected | S.Unsat -> not expected)
    batches

let test_trivial () =
  let s = make_solver 2 in
  Alcotest.(check bool) "empty instance sat" true (S.solve s = S.Sat);
  S.add_clause s [ S.lit 0 true ];
  S.add_clause s [ S.lit 0 false; S.lit 1 true ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "v0" true (S.value s 0);
  Alcotest.(check bool) "v1 implied" true (S.value s 1);
  S.add_clause s [ S.lit 1 false ];
  Alcotest.(check bool) "now unsat" true (S.solve s = S.Unsat)

let test_empty_clause () =
  let s = make_solver 1 in
  S.add_clause s [];
  Alcotest.(check bool) "empty clause unsat" true (S.solve s = S.Unsat)

let test_pigeonhole () =
  (* PHP(n+1, n): n+1 pigeons in n holes, classic unsat family that
     requires real conflict analysis. Variable p*n + h = pigeon p in hole
     h. *)
  let pigeons = 5 and holes = 4 in
  let s = make_solver (pigeons * holes) in
  let v p h = (p * holes) + h in
  for p = 0 to pigeons - 1 do
    S.add_clause s (List.init holes (fun h -> S.lit (v p h) true))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        S.add_clause s [ S.lit (v p1 h) false; S.lit (v p2 h) false ]
      done
    done
  done;
  Alcotest.(check bool) "pigeonhole unsat" true (S.solve s = S.Unsat)

let test_graph_coloring () =
  (* 3-coloring of a 5-cycle is satisfiable; 2-coloring is not. *)
  let cycle = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let solve_coloring colors =
    let s = make_solver (5 * colors) in
    let v node c = (node * colors) + c in
    for node = 0 to 4 do
      S.add_clause s (List.init colors (fun c -> S.lit (v node c) true))
    done;
    List.iter
      (fun (a, b) ->
        for c = 0 to colors - 1 do
          S.add_clause s [ S.lit (v a c) false; S.lit (v b c) false ]
        done)
      cycle;
    S.solve s
  in
  Alcotest.(check bool) "3-colorable" true (solve_coloring 3 = S.Sat);
  Alcotest.(check bool) "not 2-colorable" true (solve_coloring 2 = S.Unsat)

let test_assumption_basics () =
  let s = make_solver 2 in
  S.add_clause s [ S.lit 0 false; S.lit 1 true ];
  Alcotest.(check bool) "assume x0 -> sat with x1" true
    (S.solve ~assumptions:[ S.lit 0 true ] s = S.Sat && S.value s 1);
  Alcotest.(check bool) "conflicting assumptions unsat" true
    (S.solve ~assumptions:[ S.lit 1 false; S.lit 0 true ] s = S.Unsat);
  Alcotest.(check bool) "recovers" true (S.solve s = S.Sat)

let test_larger_random_unsat () =
  (* A dense random instance far above the sat threshold: should be unsat
     and exercise restarts/learning. 20 vars, clause ratio ~ 10. *)
  let st = Random.State.make [| 42 |] in
  let nvars = 20 in
  let cnf =
    List.init 200 (fun _ ->
        List.init 3 (fun _ -> (Random.State.int st nvars, Random.State.bool st)))
  in
  let _, result = solve_cnf nvars cnf in
  let expected = brute_force nvars cnf in
  Alcotest.(check bool) "matches brute force" true
    (match result with S.Sat -> expected | S.Unsat -> not expected)

let test_implication_chain () =
  (* x0 and a 300-long implication chain force every variable true; the
     model must reflect the full propagation. *)
  let n = 300 in
  let s = make_solver n in
  S.add_clause s [ S.lit 0 true ];
  for i = 0 to n - 2 do
    S.add_clause s [ S.lit i false; S.lit (i + 1) true ]
  done;
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  for i = 0 to n - 1 do
    if not (S.value s i) then Alcotest.failf "x%d not propagated" i
  done;
  Alcotest.(check bool) "propagations counted" true (S.num_propagations s >= n - 1);
  (* Now close the chain into a contradiction. *)
  S.add_clause s [ S.lit (n - 1) false ];
  Alcotest.(check bool) "contradiction" true (S.solve s = S.Unsat)

let test_xor_chain_unsat () =
  (* Tseitin-encoded xor chain with contradictory endpoints: classic
     resolution-hard family at small size. y_i = y_{i-1} xor x_i. *)
  let n = 12 in
  let s = make_solver (2 * n + 1) in
  let y i = i and x i = n + i in
  let xor_clauses a b c =
    (* c = a xor b *)
    S.add_clause s [ S.lit c false; S.lit a true; S.lit b true ];
    S.add_clause s [ S.lit c false; S.lit a false; S.lit b false ];
    S.add_clause s [ S.lit c true; S.lit a false; S.lit b true ];
    S.add_clause s [ S.lit c true; S.lit a true; S.lit b false ]
  in
  for i = 1 to n - 1 do
    xor_clauses (y (i - 1)) (x i) (y i)
  done;
  (* Pin every x_i to false, y0 true, y_{n-1} false: unsat since the
     chain preserves y. *)
  for i = 1 to n - 1 do
    S.add_clause s [ S.lit (x i) false ]
  done;
  S.add_clause s [ S.lit (y 0) true ];
  S.add_clause s [ S.lit (y (n - 1)) false ];
  Alcotest.(check bool) "xor chain unsat" true (S.solve s = S.Unsat)

(* {1 Activation literals and per-query statistics — the incremental
   BMC protocol} *)

let test_activation_lifecycle () =
  (* One clause group per activation literal: dormant until assumed,
     selectable per query, permanently disabled by [retire], and
     physically deleted by [simplify]. *)
  let s = make_solver 1 in
  let a1 = S.new_act s in
  let a2 = S.new_act s in
  S.add_clause_act s ~act:a1 [ S.lit 0 true ];
  S.add_clause_act s ~act:a2 [ S.lit 0 false ];
  (* Dormant groups constrain nothing. *)
  Alcotest.(check bool) "dormant" true (S.solve s = S.Sat);
  (* Each group is selectable on its own... *)
  Alcotest.(check bool) "group 1" true
    (S.solve ~assumptions:[ a1 ] s = S.Sat && S.value s 0);
  Alcotest.(check bool) "group 2" true
    (S.solve ~assumptions:[ a2 ] s = S.Sat && not (S.value s 0));
  (* ...and the two together are contradictory. *)
  Alcotest.(check bool) "both groups" true
    (S.solve ~assumptions:[ a1; a2 ] s = S.Unsat);
  (* Retiring group 1 disables it even when its literal is assumed. *)
  S.retire s a1;
  Alcotest.(check bool) "retired group cannot be re-selected" true
    (S.solve ~assumptions:[ a1 ] s = S.Unsat);
  Alcotest.(check bool) "survivor unaffected" true
    (S.solve ~assumptions:[ a2 ] s = S.Sat && not (S.value s 0));
  (* [simplify] deletes the retired group; live clauses stay. *)
  let before = S.num_clauses s in
  S.simplify s;
  Alcotest.(check bool) "simplify shrinks the clause db" true
    (S.num_clauses s < before);
  (* A fresh group can take over the retired one's role. *)
  let a3 = S.new_act s in
  S.add_clause_act s ~act:a3 [ S.lit 0 true ];
  Alcotest.(check bool) "re-added group selectable" true
    (S.solve ~assumptions:[ a3 ] s = S.Sat && S.value s 0);
  Alcotest.(check bool) "re-added vs survivor unsat" true
    (S.solve ~assumptions:[ a3; a2 ] s = S.Unsat)

(* Pigeonhole clauses over a fresh or shared solver, guarded by [act]
   when given: the crafted hard instance for the reuse tests. *)
let add_php ?act s ~pigeons ~holes ~base =
  let v p h = base + (p * holes) + h in
  let add =
    match act with
    | Some act -> fun c -> S.add_clause_act s ~act c
    | None -> fun c -> S.add_clause s c
  in
  for p = 0 to pigeons - 1 do
    add (List.init holes (fun h -> S.lit (v p h) true))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        add [ S.lit (v p1 h) false; S.lit (v p2 h) false ]
      done
    done
  done

let test_learnt_survival () =
  (* The point of keeping one solver alive: clauses learnt by query N
     make query N+1 cheaper than solving it from scratch. Query the same
     guarded pigeonhole group twice on one instance; a fresh solver
     facing the identical question is the scratch baseline. *)
  let pigeons = 6 and holes = 5 in
  let persistent = make_solver (pigeons * holes) in
  let act = S.new_act persistent in
  add_php ~act persistent ~pigeons ~holes ~base:0;
  Alcotest.(check bool) "query 1 unsat" true
    (S.solve ~assumptions:[ act ] persistent = S.Unsat);
  let first = (S.last_solve persistent).S.s_conflicts in
  Alcotest.(check bool) "query 1 needed real search" true (first > 0);
  Alcotest.(check bool) "query 2 unsat" true
    (S.solve ~assumptions:[ act ] persistent = S.Unsat);
  let second = (S.last_solve persistent).S.s_conflicts in
  let scratch = make_solver (pigeons * holes) in
  add_php scratch ~pigeons ~holes ~base:0;
  Alcotest.(check bool) "scratch baseline unsat" true (S.solve scratch = S.Unsat);
  let baseline = (S.last_solve scratch).S.s_conflicts in
  if second >= baseline then
    Alcotest.failf
      "learnt clauses did not survive: query 2 took %d conflicts, scratch %d"
      second baseline

let test_last_solve_resets () =
  (* [last_solve] is a per-query delta — each solve re-bases it — while
     [stats] stays cumulative across the instance's lifetime. *)
  let s = make_solver 20 in
  add_php s ~pigeons:5 ~holes:4 ~base:0;
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat);
  let q1 = (S.last_solve s).S.s_conflicts in
  let total1 = (S.stats s).S.s_conflicts in
  Alcotest.(check int) "first query: delta equals cumulative" total1 q1;
  Alcotest.(check bool) "the instance was not free" true (q1 > 0);
  (* A root-level-unsat instance answers immediately: the delta must
     re-base to 0, not carry query 1's conflicts. *)
  Alcotest.(check bool) "still unsat" true (S.solve s = S.Unsat);
  let q2 = (S.last_solve s).S.s_conflicts in
  Alcotest.(check int) "second query: delta re-based" 0 q2;
  Alcotest.(check int) "cumulative untouched by re-basing" total1
    (S.stats s).S.s_conflicts;
  (* Size fields stay absolute in both views. *)
  Alcotest.(check int) "last_solve vars absolute" (S.num_vars s)
    (S.last_solve s).S.s_vars

let qprop name f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name QCheck.(make Gen.(int_bound 1_000_000)) f)

let () =
  Alcotest.run "sat"
    [
      ( "directed",
        [
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
          Alcotest.test_case "graph coloring" `Quick test_graph_coloring;
          Alcotest.test_case "assumptions" `Quick test_assumption_basics;
          Alcotest.test_case "dense random" `Quick test_larger_random_unsat;
          Alcotest.test_case "implication chain" `Quick test_implication_chain;
          Alcotest.test_case "xor chain" `Quick test_xor_chain_unsat;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "activation lifecycle" `Quick test_activation_lifecycle;
          Alcotest.test_case "learnt clauses survive queries" `Quick
            test_learnt_survival;
          Alcotest.test_case "last_solve re-bases per query" `Quick
            test_last_solve_resets;
        ] );
      ( "properties",
        [
          qprop "random cnf vs brute force" prop_random_cnf;
          qprop "assumptions vs unit clauses" prop_assumptions;
          qprop "incremental prefixes" prop_incremental;
        ] );
    ]

(* The telemetry layer itself: JSON round-trips, Chrome trace-event
   structure, span nesting across worker domains, histogram bucket
   boundaries and log-level filtering — plus a determinism fuzz:
   telemetry-on and telemetry-off runs of the full
   optimize -> blast -> solve pipeline must produce identical verdicts
   and counterexample depths. *)

module Json = Obs.Json
module Signal = Rtl.Signal
module Circuit = Rtl.Circuit

(* Every test drives the same global sinks, so leave them clean. *)
let with_clean_obs f =
  Fun.protect
    ~finally:(fun () ->
      Obs.shutdown ();
      Obs.set_level Obs.Info;
      Obs.Metrics.reset ())
    f

(* Collect trace events in memory: point the writer at a temp path (the
   only way to start collecting), snapshot via [trace_json], and never
   let the file survive. *)
let with_trace f =
  let path = Filename.temp_file "test_obs" ".trace.json" in
  Fun.protect
    ~finally:(fun () ->
      Obs.close_trace ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.trace_to_file path;
      let r = f () in
      let events =
        match Json.member "traceEvents" (Obs.trace_json ()) with
        | Some (Json.List evs) -> evs
        | _ -> Alcotest.fail "trace_json lacks a traceEvents list"
      in
      (r, events))

let str_field name ev =
  match Json.member name ev with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "event lacks string field %S: %s" name (Json.to_string ev)

let num_field name ev =
  match Json.member name ev with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> Alcotest.failf "event lacks numeric field %S: %s" name (Json.to_string ev)

(* {1 JSON round-trip} *)

let test_json_roundtrip () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      (* Floats survive as long as 9 significant digits do (the
         printer's %.9g); integral floats print as "x.0" so they come
         back as Float, not Int. *)
      Json.Float 1.5;
      Json.Float (-0.25);
      Json.Float 3.0;
      Json.Float 1e-9;
      Json.Str "";
      Json.Str "plain";
      Json.Str "esc \"quotes\" \\back\nnewline\ttab\x01ctl";
      Json.Str "caf\xc3\xa9";
      Json.List [];
      Json.List [ Json.Int 1; Json.Str "two"; Json.Null ];
      Json.Obj [];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("b", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok v' -> Alcotest.(check bool) (Json.to_string v) true (v' = v)
      | Error e -> Alcotest.failf "parse of %s failed: %s" (Json.to_string v) e)
    cases;
  (* Whitespace and rejects. *)
  Alcotest.(check bool) "whitespace" true
    (Json.parse "  { \"a\" : [ 1 , 2 ] }  " = Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ]));
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "parser accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "tru"; "\"unterminated"; "1 2"; "{\"a\":}" ]

(* {1 Trace events: structure and span nesting} *)

let test_span_structure () =
  with_clean_obs @@ fun () ->
  let (), events =
    with_trace (fun () ->
        Obs.span "t.outer" ~attrs:[ ("k", Json.Int 7) ] (fun () ->
            Obs.span "t.inner" (fun () -> ignore (Sys.opaque_identity 1));
            Obs.instant "t.mark";
            Obs.counter_event "t.counter" [ ("v", 3.0) ]))
  in
  Alcotest.(check int) "four events" 4 (List.length events);
  let by_name n = List.find (fun e -> str_field "name" e = n) events in
  let outer = by_name "t.outer" and inner = by_name "t.inner" in
  Alcotest.(check string) "complete event" "X" (str_field "ph" outer);
  Alcotest.(check string) "category from prefix" "t" (str_field "cat" outer);
  Alcotest.(check bool) "attrs in args" true
    (match Json.member "args" outer with
    | Some args -> Json.member "k" args = Some (Json.Int 7)
    | None -> false);
  (* Nesting in time: inner starts no earlier and ends no later. *)
  let t0 = num_field "ts" outer and d0 = num_field "dur" outer in
  let t1 = num_field "ts" inner and d1 = num_field "dur" inner in
  Alcotest.(check bool) "inner starts inside outer" true (t1 >= t0);
  Alcotest.(check bool) "inner ends inside outer" true (t1 +. d1 <= t0 +. d0 +. 1.0);
  Alcotest.(check string) "instant" "i" (str_field "ph" (by_name "t.mark"));
  Alcotest.(check string) "counter" "C" (str_field "ph" (by_name "t.counter"))

let test_span_exception () =
  with_clean_obs @@ fun () ->
  let raised, events =
    with_trace (fun () ->
        try
          Obs.span "t.boom" (fun () ->
              if Sys.opaque_identity true then failwith "cancelled mid-span");
          false
        with Failure _ -> true)
  in
  Alcotest.(check bool) "exception propagates" true raised;
  Alcotest.(check int) "span still recorded" 1 (List.length events)

let test_span_nesting_across_domains () =
  with_clean_obs @@ fun () ->
  let n_domains = 4 and per_domain = 3 in
  let (), events =
    with_trace (fun () ->
        let worker i () =
          Obs.span "t.job" ~attrs:[ ("worker", Json.Int i) ] (fun () ->
              for s = 0 to per_domain - 1 do
                Obs.span "t.sub" ~attrs:[ ("step", Json.Int s) ] (fun () ->
                    ignore (Sys.opaque_identity (i + s)))
              done)
        in
        let ds = List.init n_domains (fun i -> Domain.spawn (worker i)) in
        List.iter Domain.join ds)
  in
  let named n = List.filter (fun e -> str_field "name" e = n) events in
  Alcotest.(check int) "one job span per domain" n_domains
    (List.length (named "t.job"));
  Alcotest.(check int) "all sub spans" (n_domains * per_domain)
    (List.length (named "t.sub"));
  (* Each domain's events carry its own tid, and the job span encloses
     every sub span recorded by the same domain. *)
  List.iter
    (fun job ->
      let tid = num_field "tid" job in
      let t0 = num_field "ts" job and d0 = num_field "dur" job in
      let subs = List.filter (fun e -> num_field "tid" e = tid) (named "t.sub") in
      Alcotest.(check int) "subs share the job's tid" per_domain (List.length subs);
      List.iter
        (fun sub ->
          let t1 = num_field "ts" sub and d1 = num_field "dur" sub in
          Alcotest.(check bool) "sub inside job" true
            (t1 >= t0 && t1 +. d1 <= t0 +. d0 +. 1.0))
        subs)
    (named "t.job");
  let tids =
    List.sort_uniq compare (List.map (fun e -> num_field "tid" e) (named "t.job"))
  in
  Alcotest.(check int) "four distinct tids" n_domains (List.length tids)

let test_trace_file_roundtrip () =
  with_clean_obs @@ fun () ->
  let path = Filename.temp_file "test_obs" ".trace.json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.trace_to_file path;
      Obs.span "t.once" (fun () -> ());
      (* Normalize the in-memory value through the printer: timestamps
         are full-precision floats in memory but %.9g on disk. *)
      let in_memory =
        match Json.parse (Json.to_string (Obs.trace_json ())) with
        | Ok v -> v
        | Error e -> Alcotest.failf "trace_json does not round-trip: %s" e
      in
      Obs.close_trace ();
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      match Json.parse contents with
      | Ok on_disk ->
          Alcotest.(check bool) "file equals trace_json" true (on_disk = in_memory)
      | Error e -> Alcotest.failf "trace file does not parse: %s" e)

(* {1 Metrics} *)

let test_histogram_buckets () =
  with_clean_obs @@ fun () ->
  Obs.Metrics.enable ();
  let h = Obs.Metrics.histogram ~buckets:[| 1.0; 2.0; 5.0 |] "test.hist" in
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 5.0; 7.0 ];
  (match Obs.Metrics.find "test.hist" with
  | Some (Obs.Metrics.Histogram { buckets; counts; sum; count }) ->
      Alcotest.(check int) "bucket count" 3 (Array.length buckets);
      (* Upper bounds are inclusive: 1.0 lands in <=1, 2.0 in <=2,
         5.0 in <=5; only 7.0 overflows. *)
      Alcotest.(check (array int)) "counts" [| 2; 2; 1; 1 |] counts;
      Alcotest.(check int) "total" 6 count;
      Alcotest.(check bool) "sum" true (Float.abs (sum -. 17.0) < 1e-9)
  | _ -> Alcotest.fail "test.hist not found or wrong kind");
  (* Disabled metrics cost nothing and record nothing. *)
  Obs.Metrics.reset ();
  Obs.Metrics.disable ();
  Obs.Metrics.observe h 1.0;
  (match Obs.Metrics.find "test.hist" with
  | Some (Obs.Metrics.Histogram { count; _ }) ->
      Alcotest.(check int) "no observation while disabled" 0 count
  | _ -> Alcotest.fail "test.hist vanished");
  (* Kind mismatch on an existing name is a programming error. *)
  Alcotest.(check bool) "kind clash raises" true
    (try
       ignore (Obs.Metrics.counter "test.hist");
       false
     with Invalid_argument _ -> true)

let test_counter_gauge_series () =
  with_clean_obs @@ fun () ->
  Obs.Metrics.enable ();
  let c = Obs.Metrics.counter "test.ctr" in
  Obs.Metrics.add c 3;
  Obs.Metrics.add c 4;
  let g = Obs.Metrics.gauge "test.gauge" in
  Obs.Metrics.set g 2.5;
  Obs.Metrics.max_gauge g 1.0;
  Obs.Metrics.max_gauge g 9.0;
  let s = Obs.Metrics.series "test.series" in
  Obs.Metrics.record s 0.25;
  Obs.Metrics.record s 0.5;
  Alcotest.(check bool) "counter sums" true
    (Obs.Metrics.find "test.ctr" = Some (Obs.Metrics.Counter 7));
  Alcotest.(check bool) "max_gauge keeps the max" true
    (Obs.Metrics.find "test.gauge" = Some (Obs.Metrics.Gauge 9.0));
  Alcotest.(check bool) "series appends in order" true
    (Obs.Metrics.find "test.series" = Some (Obs.Metrics.Series [| 0.25; 0.5 |]));
  (* The snapshot JSON round-trips through the parser. *)
  let j = Obs.Metrics.json_of_snapshot () in
  match Json.parse (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "snapshot JSON round-trips" true (j = j')
  | Error e -> Alcotest.failf "snapshot JSON does not parse: %s" e

(* {1 Structured logging} *)

let test_log_levels () =
  with_clean_obs @@ fun () ->
  let lines = ref [] in
  Obs.set_log_sink (Some (fun l -> lines := l :: !lines));
  Obs.set_level Obs.Warn;
  Obs.log Obs.Info "t.dropped";
  Obs.log ~attrs:[ ("n", Json.Int 1) ] Obs.Warn "t.kept";
  Obs.log Obs.Error "t.kept_too";
  Alcotest.(check bool) "logging gate" true (Obs.logging Obs.Warn);
  Alcotest.(check bool) "logging gate filters" false (Obs.logging Obs.Debug);
  Alcotest.(check int) "only warn+error emitted" 2 (List.length !lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok ev ->
          ignore (num_field "ts_us" ev);
          ignore (num_field "tid" ev);
          Alcotest.(check bool) "event name present" true
            (String.length (str_field "event" ev) > 0)
      | Error e -> Alcotest.failf "log line does not parse: %s (%s)" line e)
    !lines;
  let kept = List.find (fun l -> Json.parse l |> function Ok ev -> str_field "event" ev = "t.kept" | _ -> false) !lines in
  (match Json.parse kept with
  | Ok ev ->
      Alcotest.(check bool) "attrs flattened into the object" true
        (Json.member "n" ev = Some (Json.Int 1));
      Alcotest.(check string) "level name" "warn" (str_field "level" ev)
  | Error _ -> assert false)

(* {1 Metrics under concurrent domain writes}

   The registry is shared mutable state behind one mutex; hammer one
   counter, one histogram and one series from four domains and demand
   exact totals — a lost update would show up as a short count. *)

let test_concurrent_metrics () =
  with_clean_obs @@ fun () ->
  Obs.Metrics.enable ();
  let c = Obs.Metrics.counter "conc.ctr" in
  let h = Obs.Metrics.histogram ~buckets:[| 10.; 100. |] "conc.hist" in
  let s = Obs.Metrics.series "conc.series" in
  let per_domain = 500 and domains = 4 in
  let worker _ =
    Domain.spawn (fun () ->
        for i = 1 to per_domain do
          Obs.Metrics.add c 1;
          Obs.Metrics.observe h (float_of_int i);
          Obs.Metrics.record s 1.0
        done)
  in
  List.iter Domain.join (List.init domains worker);
  Alcotest.(check bool) "counter exact" true
    (Obs.Metrics.find "conc.ctr"
    = Some (Obs.Metrics.Counter (domains * per_domain)));
  (match Obs.Metrics.find "conc.hist" with
  | Some (Obs.Metrics.Histogram { count; sum; _ }) ->
      Alcotest.(check int) "histogram count exact" (domains * per_domain) count;
      let expected =
        float_of_int domains *. float_of_int (per_domain * (per_domain + 1) / 2)
      in
      Alcotest.(check (float 1e-6)) "histogram sum exact" expected sum
  | _ -> Alcotest.fail "conc.hist missing");
  match Obs.Metrics.find "conc.series" with
  | Some (Obs.Metrics.Series vs) ->
      Alcotest.(check int) "series length exact" (domains * per_domain)
        (Array.length vs)
  | _ -> Alcotest.fail "conc.series missing"

(* {1 Event bus} *)

let with_bus ?ring_capacity ?file f =
  with_clean_obs @@ fun () ->
  Obs.Bus.attach ?ring_capacity ?file ();
  Fun.protect ~finally:Obs.Bus.detach f

let seqs () = List.map (fun (s : Obs.Bus.stamped) -> s.Obs.Bus.seq) (Obs.Bus.ring ())

let test_bus_ordering () =
  with_bus ~ring_capacity:64 @@ fun () ->
  for d = 1 to 10 do
    Obs.Bus.publish (Obs.Bus.Depth_solved { depth = d; seconds = 0.01 })
  done;
  Obs.Bus.publish (Obs.Bus.Cex_found { depth = 11 });
  Alcotest.(check (list int)) "seqs are 1..11 in publish order"
    (List.init 11 (fun i -> i + 1))
    (seqs ());
  let ring = Obs.Bus.ring () in
  ignore
    (List.fold_left
       (fun prev (s : Obs.Bus.stamped) ->
         Alcotest.(check bool) "timestamps non-decreasing" true
           (s.Obs.Bus.ts >= prev);
         s.Obs.Bus.ts)
       0. ring);
  Alcotest.(check int) "nothing dropped" 0 (Obs.Bus.dropped ())

let test_bus_ring_overflow () =
  with_bus ~ring_capacity:8 @@ fun () ->
  for d = 1 to 20 do
    Obs.Bus.publish (Obs.Bus.Depth_solved { depth = d; seconds = 0. })
  done;
  Alcotest.(check (list int)) "ring keeps the newest 8"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (seqs ());
  Alcotest.(check int) "oldest 12 dropped" 12 (Obs.Bus.dropped ())

let test_bus_concurrent_publish () =
  with_bus ~ring_capacity:1024 @@ fun () ->
  let domains = 4 and per_domain = 50 in
  let worker d =
    Domain.spawn (fun () ->
        Obs.Bus.with_label (Printf.sprintf "d%d" d) @@ fun () ->
        for i = 1 to per_domain do
          Obs.Bus.publish (Obs.Bus.Retry { attempt = i; reason = "conc" })
        done)
  in
  List.iter Domain.join (List.init domains worker);
  let got = List.sort compare (seqs ()) in
  Alcotest.(check (list int)) "seqs contiguous and unique across domains"
    (List.init (domains * per_domain) (fun i -> i + 1))
    got;
  (* Every publish kept the domain-local label of its publisher. *)
  List.iter
    (fun (s : Obs.Bus.stamped) ->
      Alcotest.(check bool) "label is some d<i>" true
        (String.length s.Obs.Bus.label = 2 && s.Obs.Bus.label.[0] = 'd'))
    (Obs.Bus.ring ())

let all_events =
  [
    Obs.Bus.Depth_solved { depth = 3; seconds = 0.25 };
    Obs.Bus.Cex_found { depth = 4 };
    Obs.Bus.Cache_hit;
    Obs.Bus.Cache_miss;
    Obs.Bus.Retry { attempt = 2; reason = "budget:wall_clock" };
    Obs.Bus.Unknown { reason = "faulted:bmc.incr" };
    Obs.Bus.Fault_injected { site = "bmc.incr" };
    Obs.Bus.Job_start { goal_depth = 12 };
    Obs.Bus.Job_done { verdict = "cex"; wall_s = 1.5 };
    Obs.Bus.Solver_progress { conflicts = 10; learnts = 5; conflicts_per_s = 2.5 };
    Obs.Bus.Solver_stalled { conflicts_per_s = 0.5; learnts_per_s = 0.25 };
    Obs.Bus.Heartbeat;
  ]

let test_bus_file_sink_roundtrip () =
  let path = Filename.temp_file "test_obs" ".events.jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (with_bus ~file:path @@ fun () ->
   Obs.Bus.with_label "rt" @@ fun () ->
   List.iter Obs.Bus.publish all_events);
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | l -> go (l :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  Alcotest.(check int) "one line per event" (List.length all_events)
    (List.length lines);
  let parsed =
    List.map
      (fun line ->
        match Json.parse line with
        | Error e -> Alcotest.failf "sink line does not parse: %s (%s)" line e
        | Ok j -> (
            match Obs.Bus.stamped_of_json j with
            | Error e -> Alcotest.failf "line is not a stamped event: %s" e
            | Ok s -> s))
      lines
  in
  Alcotest.(check bool) "file sink round-trips every constructor" true
    (List.map (fun (s : Obs.Bus.stamped) -> s.Obs.Bus.ev) parsed = all_events);
  List.iter
    (fun (s : Obs.Bus.stamped) ->
      Alcotest.(check string) "label survives the file" "rt" s.Obs.Bus.label)
    parsed

(* {1 Cockpit: state reconstructed from event lines alone}

   Feed the cockpit two successive batches of serialized lines — as the
   [top] command does when tailing events.jsonl — and check the visible
   state advances between batches. *)

let test_cockpit_incremental () =
  let stamp seq label ev = { Obs.Bus.seq; ts = float_of_int seq; tid = 0; label; ev } in
  let line s = Json.to_string (Obs.Bus.json_of_stamped s) in
  let t = Obs.Cockpit.create () in
  List.iter
    (fun s -> Obs.Cockpit.feed_line t (line s))
    [
      stamp 1 "maple" (Obs.Bus.Job_start { goal_depth = 8 });
      stamp 2 "maple" (Obs.Bus.Depth_solved { depth = 0; seconds = 0.1 });
      stamp 3 "maple" (Obs.Bus.Depth_solved { depth = 1; seconds = 0.2 });
      stamp 4 "maple" Obs.Bus.Cache_miss;
    ];
  (match Obs.Cockpit.rows t with
  | [ r ] ->
      Alcotest.(check string) "running after batch 1" "running"
        r.Obs.Cockpit.ro_verdict;
      Alcotest.(check int) "depth 1 after batch 1" 1 r.Obs.Cockpit.ro_depth;
      Alcotest.(check bool) "ETA available while running" true
        (Obs.Cockpit.eta_s r <> None)
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows));
  List.iter
    (fun s -> Obs.Cockpit.feed_line t (line s))
    [
      stamp 5 "maple" (Obs.Bus.Depth_solved { depth = 2; seconds = 0.4 });
      stamp 6 "maple" (Obs.Bus.Cex_found { depth = 3 });
      stamp 7 "maple" (Obs.Bus.Job_done { verdict = "cex"; wall_s = 1.0 });
    ];
  (match Obs.Cockpit.rows t with
  | [ r ] ->
      Alcotest.(check string) "verdict updated by batch 2" "cex"
        r.Obs.Cockpit.ro_verdict;
      Alcotest.(check int) "depth updated by batch 2" 3 r.Obs.Cockpit.ro_depth
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows));
  Obs.Cockpit.feed_line t "{ torn half-line";
  Alcotest.(check int) "torn line counted, not fatal" 1 (Obs.Cockpit.bad_lines t);
  Alcotest.(check int) "events counted" 7 (Obs.Cockpit.events t);
  let rendered = Obs.Cockpit.render ~now:8. t in
  Alcotest.(check bool) "render mentions the row" true
    (String.length rendered > 0
    &&
    let n = String.length rendered in
    let rec mentions i =
      i + 5 <= n && (String.sub rendered i 5 = "maple" || mentions (i + 1))
    in
    mentions 0)

(* {1 Solver-health watchdog} *)

let watchdog_policy =
  {
    Obs.Watchdog.p_every = 1;
    p_window = 3;
    p_patience = 2;
    p_min_conflicts_per_s = 100.;
    p_min_learnts_per_s = 100.;
    p_rebudget = false;
  }

let test_watchdog_stall () =
  with_clean_obs @@ fun () ->
  let fired = ref 0 in
  let dog =
    Obs.Watchdog.create ~policy:watchdog_policy
      ~on_stall:(fun ~cps:_ ~lps:_ -> incr fired)
      ()
  in
  (* 10 conflicts/s against a 100/s floor: below threshold every window. *)
  for i = 1 to 10 do
    Obs.Watchdog.feed dog ~conflicts:i ~learnts:i ~now:(float_of_int i /. 10.)
  done;
  Alcotest.(check bool) "stall latched" true (Obs.Watchdog.stalled dog);
  Alcotest.(check int) "on_stall fired exactly once" 1 !fired;
  Alcotest.(check bool) "measured rate below floor" true
    (Obs.Watchdog.conflicts_per_s dog < 100.)

let test_watchdog_healthy () =
  with_clean_obs @@ fun () ->
  let fired = ref 0 in
  let dog =
    Obs.Watchdog.create ~policy:watchdog_policy
      ~on_stall:(fun ~cps:_ ~lps:_ -> incr fired)
      ()
  in
  (* 1000 conflicts/s: comfortably above the floor. *)
  for i = 1 to 10 do
    Obs.Watchdog.feed dog ~conflicts:(i * 100) ~learnts:(i * 100)
      ~now:(float_of_int i /. 10.)
  done;
  Alcotest.(check bool) "no stall" false (Obs.Watchdog.stalled dog);
  Alcotest.(check int) "on_stall never fired" 0 !fired

let test_watchdog_policy_of_string () =
  (match
     Obs.Watchdog.policy_of_string
       "every=64,window=8,patience=3,min_cps=12.5,min_lps=7,rebudget=1"
   with
  | Ok p ->
      Alcotest.(check int) "every" 64 p.Obs.Watchdog.p_every;
      Alcotest.(check int) "window" 8 p.Obs.Watchdog.p_window;
      Alcotest.(check int) "patience" 3 p.Obs.Watchdog.p_patience;
      Alcotest.(check (float 0.)) "min_cps" 12.5 p.Obs.Watchdog.p_min_conflicts_per_s;
      Alcotest.(check bool) "rebudget" true p.Obs.Watchdog.p_rebudget
  | Error e -> Alcotest.failf "policy_of_string rejected valid input: %s" e);
  (match Obs.Watchdog.policy_of_string "window=1" with
  | Ok p ->
      Alcotest.(check int) "window clamped to 2 (slope needs 2 samples)" 2
        p.Obs.Watchdog.p_window
  | Error e -> Alcotest.failf "window=1 should clamp, not error: %s" e);
  match Obs.Watchdog.policy_of_string "every=0" with
  | Ok _ -> Alcotest.fail "every=0 must be rejected"
  | Error _ -> ()

(* Rebudget end-to-end: an absurd conflict-rate floor plus rebudget=1
   makes the watchdog trip the solver's wall-clock budget mid-search, so
   a run with no explicit budget comes back Unknown(Budget_exhausted
   Wall_clock) instead of hanging on a "stalled" solver. A 16-bit adder
   associativity proof supplies the conflicts. *)
let test_watchdog_rebudget () =
  with_clean_obs @@ fun () ->
  let saved = Obs.Watchdog.policy () in
  Fun.protect ~finally:(fun () -> Obs.Watchdog.set_policy saved) @@ fun () ->
  Obs.Watchdog.set_policy
    {
      Obs.Watchdog.p_every = 1;
      p_window = 2;
      p_patience = 1;
      p_min_conflicts_per_s = 1e12;
      p_min_learnts_per_s = 1e12;
      p_rebudget = true;
    };
  Obs.Metrics.enable ();
  let a = Signal.input "a" 16
  and b = Signal.input "b" 16
  and c = Signal.input "c" 16 in
  let open Signal in
  let circuit =
    Circuit.create ~name:"assoc" ~outputs:[ ("out", bit (a +: b) 0) ] ()
  in
  let property =
    {
      Bmc.assumes = [];
      asserts = [ ("assoc", a +: b +: c ==: a +: (b +: c)) ];
    }
  in
  match Bmc.check ~max_depth:4 ~opt:Opt.O0 circuit property with
  | Bmc.Unknown (Bmc.Budget_exhausted { ub_budget; _ }, _) ->
      Alcotest.(check bool) "tripped budget reads as wall-clock" true
        (ub_budget = Sat.Solver.Wall_clock)
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown reason %s"
        (Bmc.unknown_reason_to_string r)
  | Bmc.Cex _ -> Alcotest.fail "associativity refuted?!"
  | Bmc.Bounded_proof _ ->
      Alcotest.fail "watchdog never tripped the budget (proof completed)"

(* {1 Prometheus exposition} *)

let test_prometheus_render () =
  with_clean_obs @@ fun () ->
  Obs.Metrics.enable ();
  Obs.Metrics.add (Obs.Metrics.counter "sat.conflicts") 42;
  Obs.Metrics.set (Obs.Metrics.gauge "cache.size") 7.;
  Obs.Metrics.observe
    (Obs.Metrics.histogram ~buckets:[| 1.; 10. |] "bmc.t")
    3.5;
  let body = Obs.Prometheus.render () in
  let has sub =
    let n = String.length sub and h = String.length body in
    let rec go i = i + n <= h && (String.sub body i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter line" true (has "autocc_sat_conflicts 42");
  Alcotest.(check bool) "counter typed" true
    (has "# TYPE autocc_sat_conflicts counter");
  Alcotest.(check bool) "gauge line" true (has "autocc_cache_size 7");
  Alcotest.(check bool) "histogram buckets cumulative" true
    (has "autocc_bmc_t_bucket{le=\"10\"} 1");
  Alcotest.(check bool) "histogram +Inf" true
    (has "autocc_bmc_t_bucket{le=\"+Inf\"} 1");
  Alcotest.(check bool) "histogram count" true (has "autocc_bmc_t_count 1");
  (* Atomic file write: the snapshot parses back line-by-line. *)
  let path = Filename.temp_file "test_obs" ".prom" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Obs.Prometheus.write_file path;
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Alcotest.(check string) "file equals render" body contents

(* {1 Tail: cross-process file tailing} *)

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let append_file path s =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let test_tail_basic_and_truncation () =
  let path = Filename.temp_file "test_obs" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Sys.remove path;
  let tail = Obs.Tail.create path in
  Alcotest.(check (list string)) "absent file" [] (Obs.Tail.poll tail);
  append_file path "a\nb\npart";
  Alcotest.(check (list string))
    "complete lines only" [ "a"; "b" ] (Obs.Tail.poll tail);
  Alcotest.(check (list string)) "unchanged file" [] (Obs.Tail.poll tail);
  append_file path "ial\n\nc\n";
  Alcotest.(check (list string))
    "torn line reassembled, blanks dropped" [ "partial"; "c" ]
    (Obs.Tail.poll tail);
  (* Truncation (a fresh campaign reusing the directory) restarts the
     tail at offset 0, and the stale torn tail must not leak into the
     new stream. *)
  append_file path "orph";
  Alcotest.(check (list string)) "torn tail pending" [] (Obs.Tail.poll tail);
  write_file path "x\ny\n";
  Alcotest.(check (list string))
    "restart after truncation" [ "x"; "y" ] (Obs.Tail.poll tail)

let test_tail_seq_restart_mid_tail () =
  with_clean_obs @@ fun () ->
  let path = Filename.temp_file "test_obs" ".events.jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Sys.remove path;
  let tail = Obs.Tail.create path in
  let cockpit = Obs.Cockpit.create () in
  let drain () =
    List.iter (Obs.Cockpit.feed_line cockpit) (Obs.Tail.poll tail)
  in
  (* Authentic event lines: a real bus attachment per "campaign", whose
     seq numbering restarts at 0 — exactly what a fresh campaign process
     writing the same events.jsonl does. *)
  let publish_campaign verdict =
    Obs.Bus.attach ~file:path ();
    Obs.Bus.with_label "leaky" (fun () ->
        Obs.Bus.publish (Obs.Bus.Job_start { goal_depth = 8 });
        Obs.Bus.publish (Obs.Bus.Depth_solved { depth = 1; seconds = 0.01 });
        Obs.Bus.publish (Obs.Bus.Job_done { verdict; wall_s = 0.1 }));
    Obs.Bus.detach ()
  in
  publish_campaign "cex";
  drain ();
  let n1 = Obs.Cockpit.events cockpit in
  Alcotest.(check bool) "first campaign consumed" true (n1 >= 3);
  (* Truncate mid-tail and replay a second campaign with restarted
     seqs: every new event must land, none counted as corrupt. The
     tailer detects truncation by size, so it must see the shrunken
     file on some tick before the new stream outgrows the old offset —
     which a once-per-second cockpit poll always does. *)
  write_file path "";
  drain ();
  Alcotest.(check int) "offset restarts at 0" 0 (Obs.Tail.offset tail);
  publish_campaign "proof";
  drain ();
  Alcotest.(check int)
    "second stream fully consumed" (n1 + 3)
    (Obs.Cockpit.events cockpit);
  Alcotest.(check int) "no bad lines across the restart" 0
    (Obs.Cockpit.bad_lines cockpit)

(* {1 Bus: dropped-event counter mirrors the ring} *)

let test_bus_dropped_metric () =
  with_clean_obs @@ fun () ->
  Obs.Metrics.enable ();
  Obs.Bus.attach ~ring_capacity:4 ();
  for _ = 1 to 10 do
    Obs.Bus.publish Obs.Bus.Cache_hit
  done;
  Alcotest.(check int) "ring dropped" 6 (Obs.Bus.dropped ());
  (match List.assoc_opt "bus.dropped_events" (Obs.Metrics.snapshot ()) with
  | Some (Obs.Metrics.Counter n) ->
      Alcotest.(check int) "metric mirrors ring drops" 6 n
  | _ -> Alcotest.fail "bus.dropped_events counter missing from the registry");
  Obs.Bus.detach ()

(* {1 Prometheus: render invariants}

   Property test over random observation sets: bucket counts are
   cumulative (monotone in le), the +Inf bucket equals _count, _count
   equals the number of observations, and no metric announces itself
   with a duplicate HELP or TYPE header. *)

let prom_invariants samples =
  Fun.protect
    ~finally:(fun () ->
      Obs.shutdown ();
      Obs.Metrics.reset ())
  @@ fun () ->
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let h = Obs.Metrics.histogram ~buckets:[| 0.01; 0.1; 1.; 10. |] "prop.t" in
  List.iter (fun x -> Obs.Metrics.observe h x) samples;
  Obs.Metrics.add (Obs.Metrics.counter "prop.n") (List.length samples);
  Obs.Metrics.set (Obs.Metrics.gauge "prop.g") 1.5;
  let lines =
    List.filter (fun l -> l <> "")
      (String.split_on_char '\n' (Obs.Prometheus.render ()))
  in
  let no_dup header =
    let names =
      List.filter_map
        (fun l ->
          match String.split_on_char ' ' l with
          | "#" :: h :: name :: _ when h = header -> Some name
          | _ -> None)
        lines
    in
    names <> [] && List.length names = List.length (List.sort_uniq compare names)
  in
  let starts_with p l =
    String.length l >= String.length p && String.sub l 0 (String.length p) = p
  in
  let buckets =
    List.filter_map
      (fun l ->
        if not (starts_with "autocc_prop_t_bucket{le=" l) then None
        else
          match String.index_opt l '}' with
          | Some j ->
              float_of_string_opt
                (String.sub l (j + 2) (String.length l - j - 2))
          | None -> None)
      lines
  in
  let rec monotone = function
    | a :: (b :: _ as t) -> a <= b && monotone t
    | _ -> true
  in
  let count =
    match
      List.find_opt (fun l -> starts_with "autocc_prop_t_count " l) lines
    with
    | Some l -> float_of_string (String.sub l 20 (String.length l - 20))
    | None -> -1.
  in
  no_dup "HELP" && no_dup "TYPE"
  && List.length buckets = 5 (* 4 finite + +Inf *)
  && monotone buckets
  && (match List.rev buckets with
     | inf :: _ -> inf = count
     | [] -> false)
  && count = float_of_int (List.length samples)

let fuzz_prometheus =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30
       ~name:"prometheus render: cumulative buckets, unique HELP/TYPE"
       QCheck.(make Gen.(list_size (int_bound 40) (float_bound_inclusive 20.)))
       prom_invariants)

(* {1 Cockpit: JSON snapshot} *)

let test_cockpit_render_json () =
  with_clean_obs @@ fun () ->
  let cockpit = Obs.Cockpit.create () in
  let feed seq ev =
    Obs.Cockpit.feed_line cockpit
      (Json.to_string
         (Obs.Bus.json_of_stamped
            { Obs.Bus.seq; ts = 1000. +. float_of_int seq; tid = 0;
              label = "leaky"; ev }))
  in
  feed 0 (Obs.Bus.Job_start { goal_depth = 8 });
  feed 1 (Obs.Bus.Depth_solved { depth = 1; seconds = 0.01 });
  feed 2 (Obs.Bus.Job_done { verdict = "cex"; wall_s = 0.2 });
  let j = Obs.Cockpit.render_json ~now:1003. cockpit in
  (match Json.parse (Json.to_string j) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "render_json does not re-parse: %s" e);
  (match Json.member "schema" j with
  | Some (Json.Str s) -> Alcotest.(check string) "schema" "autocc.top/1" s
  | _ -> Alcotest.fail "snapshot lacks a schema field");
  (match Json.member "events" j with
  | Some (Json.Int 3) -> ()
  | other ->
      Alcotest.failf "events != 3: %s"
        (match other with Some x -> Json.to_string x | None -> "absent"));
  match Json.member "rows" j with
  | Some (Json.List [ row ]) ->
      (match Json.member "label" row with
      | Some (Json.Str l) -> Alcotest.(check string) "row label" "leaky" l
      | _ -> Alcotest.fail "row lacks label");
      (match Json.member "verdict" row with
      | Some (Json.Str v) -> Alcotest.(check string) "row verdict" "cex" v
      | _ -> Alcotest.fail "row lacks verdict")
  | _ -> Alcotest.fail "snapshot lacks its single row"

(* {1 Ledger: round-trip, crash tolerance, run references} *)

let test_ledger_roundtrip () =
  let dir = Filename.temp_file "test_obs" ".ledger" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove (Obs.Ledger.path dir) with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  let mk id ts =
    {
      Obs.Ledger.r_id = id;
      r_tool = "analyze";
      r_subject = "leaky";
      r_config = "check|d=8|o=2|i=true|s=default|b=-";
      r_dut_hash = "abc123";
      r_ts = ts;
      r_wall_s = 0.5;
      r_cpu_s = 0.4;
      r_cache_hits = 1;
      r_cache_misses = 2;
      r_cache_stores = 2;
      r_asserts =
        [
          {
            Obs.Ledger.a_name = "property";
            a_verdict = "cex";
            a_depth = 3;
            a_wall_s = 0.25;
            a_cached = false;
          };
        ];
      r_artifacts = [ "trace.json" ];
    }
  in
  Obs.Ledger.append ~dir (mk "r1" 100.);
  Obs.Ledger.append ~dir (mk "r2aa" 200.);
  (* A torn trailing line (crash mid-append) is rejected and counted,
     never surfaced. *)
  append_file (Obs.Ledger.path dir) "{\"schema\":\"autocc.run/1\",\"id\":\"to";
  let runs, bad = Obs.Ledger.load dir in
  Alcotest.(check int) "torn line rejected" 1 bad;
  Alcotest.(check (list string))
    "file order preserved" [ "r1"; "r2aa" ]
    (List.map (fun (r : Obs.Ledger.run) -> r.Obs.Ledger.r_id) runs);
  let r1 = List.hd runs in
  Alcotest.(check string) "config round-trips"
    "check|d=8|o=2|i=true|s=default|b=-" r1.Obs.Ledger.r_config;
  Alcotest.(check int) "cache hits round-trip" 1 r1.Obs.Ledger.r_cache_hits;
  (match r1.Obs.Ledger.r_asserts with
  | [ a ] ->
      Alcotest.(check string) "assert verdict" "cex" a.Obs.Ledger.a_verdict;
      Alcotest.(check int) "assert depth" 3 a.Obs.Ledger.a_depth;
      Alcotest.(check bool) "assert cached flag" false a.Obs.Ledger.a_cached
  | l -> Alcotest.failf "expected 1 assert record, got %d" (List.length l));
  let id_of ref_ =
    Option.map
      (fun (r : Obs.Ledger.run) -> r.Obs.Ledger.r_id)
      (Obs.Ledger.find dir ~ref:ref_)
  in
  Alcotest.(check (option string)) "~1 is the newest" (Some "r2aa") (id_of "~1");
  Alcotest.(check (option string)) "~2 is the older" (Some "r1") (id_of "~2");
  Alcotest.(check (option string)) "id prefix" (Some "r2aa") (id_of "r2");
  Alcotest.(check (option string)) "no match" None (id_of "zz")

(* {1 Profile: span-tree folding} *)

let test_profile_fold () =
  with_clean_obs @@ fun () ->
  (* Spans must dwarf the folder's 0.5us containment slack (which
     absorbs clock jitter on real, ms-scale runs) or the nesting is
     genuinely ambiguous — spin ~2ms in each. *)
  let spin () =
    let t = Unix.gettimeofday () in
    while Unix.gettimeofday () -. t < 0.002 do
      ignore (Sys.opaque_identity 0)
    done
  in
  let (), events =
    with_trace (fun () ->
        Obs.span "cli.analyze" (fun () ->
            Obs.span "bmc.depth" (fun () ->
                Obs.span "sat.solve" (fun () -> spin ()));
            Obs.span "bmc.depth" (fun () -> spin ())))
  in
  let doc = Json.Obj [ ("traceEvents", Json.List events) ] in
  let p =
    match Obs.Profile.of_trace doc with
    | Ok p -> p
    | Error e -> Alcotest.failf "profile fold failed: %s" e
  in
  Alcotest.(check int) "span count" 4 p.Obs.Profile.p_events;
  (match p.Obs.Profile.p_roots with
  | [ root ] ->
      Alcotest.(check string) "root name" "cli.analyze"
        root.Obs.Profile.pn_name;
      Alcotest.(check int) "root count" 1 root.Obs.Profile.pn_count;
      (match root.Obs.Profile.pn_children with
      | [ depth ] ->
          Alcotest.(check string) "merged child" "bmc.depth"
            depth.Obs.Profile.pn_name;
          Alcotest.(check int) "two calls merged" 2 depth.Obs.Profile.pn_count;
          Alcotest.(check (list string))
            "grandchild" [ "sat.solve" ]
            (List.map
               (fun n -> n.Obs.Profile.pn_name)
               depth.Obs.Profile.pn_children)
      | l -> Alcotest.failf "expected 1 merged child, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 root, got %d" (List.length l));
  (* Attribution: the root's total is the attributed total, and no
     node's children sum past its own total (self clamped at 0). *)
  let root = List.hd p.Obs.Profile.p_roots in
  Alcotest.(check bool) "total = root total" true
    (Float.abs (p.Obs.Profile.p_total_us -. root.Obs.Profile.pn_total_us)
    < 1e-6);
  let cats = List.map fst p.Obs.Profile.p_categories in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " category present") true (List.mem c cats))
    [ "cli"; "bmc"; "sat" ];
  (* Text + SVG renderings stay self-contained and mention the hot
     span. *)
  let mentions hay sub =
    let n = String.length sub and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "table names the span" true
    (mentions (Obs.Profile.table p) "sat.solve");
  let svg = Obs.Profile.flamegraph_svg p in
  Alcotest.(check bool) "svg is an svg" true (mentions svg "<svg");
  Alcotest.(check bool) "svg names the span" true (mentions svg "sat.solve");
  Alcotest.(check bool) "svg carries no scripts" false (mentions svg "<script")

(* {1 Determinism: telemetry must not change verdicts}

   The same random circuit and property, checked with every telemetry
   face off and then with all of them on (metrics, a null log sink at
   debug level, a trace collector): outcome kind and CEX depth must
   match exactly. *)

let check_determinism seed =
  let st = Random.State.make [| seed |] in
  let circuit = Gen_circuit.random_circuit st ~num_nodes:20 ~num_regs:3 in
  let property =
    Gen_circuit.random_property st circuit ~num_asserts:(1 + Random.State.int st 3)
  in
  let max_depth = 5 in
  let quiet = Bmc.check ~max_depth ~opt:Opt.O2 circuit property in
  let path = Filename.temp_file "test_obs" ".trace.json" in
  let noisy =
    Fun.protect
      ~finally:(fun () ->
        Obs.shutdown ();
        Obs.set_level Obs.Info;
        try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Obs.Metrics.reset ();
        Obs.Metrics.enable ();
        Obs.set_log_sink (Some (fun _ -> ()));
        Obs.set_level Obs.Debug;
        Obs.trace_to_file path;
        Bmc.check ~max_depth ~opt:Opt.O2 circuit property)
  in
  match (quiet, noisy) with
  | Bmc.Bounded_proof s1, Bmc.Bounded_proof s2 ->
      s1.Bmc.depth_reached = s2.Bmc.depth_reached
  | Bmc.Cex (c1, _), Bmc.Cex (c2, _) ->
      c1.Bmc.cex_depth = c2.Bmc.cex_depth
      && List.sort compare c1.Bmc.cex_failed = List.sort compare c2.Bmc.cex_failed
  | _ -> false

let fuzz_determinism =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:20 ~name:"telemetry on/off -> identical verdicts"
       QCheck.(make Gen.(int_bound 1_000_000))
       check_determinism)

let () =
  Alcotest.run "obs"
    [
      ("json", [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip ]);
      ( "trace",
        [
          Alcotest.test_case "span structure" `Quick test_span_structure;
          Alcotest.test_case "span survives exceptions" `Quick test_span_exception;
          Alcotest.test_case "nesting across 4 domains" `Quick
            test_span_nesting_across_domains;
          Alcotest.test_case "file equals in-memory trace" `Quick
            test_trace_file_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram bucket boundaries" `Quick
            test_histogram_buckets;
          Alcotest.test_case "counter/gauge/series" `Quick test_counter_gauge_series;
        ] );
      ("log", [ Alcotest.test_case "levels and line shape" `Quick test_log_levels ]);
      ( "concurrency",
        [
          Alcotest.test_case "metrics exact under 4 domains" `Quick
            test_concurrent_metrics;
        ] );
      ( "bus",
        [
          Alcotest.test_case "publish order and stamping" `Quick
            test_bus_ordering;
          Alcotest.test_case "ring drops oldest on overflow" `Quick
            test_bus_ring_overflow;
          Alcotest.test_case "concurrent publish from 4 domains" `Quick
            test_bus_concurrent_publish;
          Alcotest.test_case "file sink round-trips every event" `Quick
            test_bus_file_sink_roundtrip;
          Alcotest.test_case "dropped-event counter mirrors the ring" `Quick
            test_bus_dropped_metric;
        ] );
      ( "tail",
        [
          Alcotest.test_case "torn lines and truncation restart" `Quick
            test_tail_basic_and_truncation;
          Alcotest.test_case "seq restart mid-tail" `Quick
            test_tail_seq_restart_mid_tail;
        ] );
      ( "cockpit",
        [
          Alcotest.test_case "state advances from event lines alone" `Quick
            test_cockpit_incremental;
          Alcotest.test_case "autocc.top/1 JSON snapshot" `Quick
            test_cockpit_render_json;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "round-trip, torn line, run refs" `Quick
            test_ledger_roundtrip;
        ] );
      ( "profile",
        [
          Alcotest.test_case "span tree folding and renderings" `Quick
            test_profile_fold;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "slow solver latches a stall" `Quick
            test_watchdog_stall;
          Alcotest.test_case "healthy solver never stalls" `Quick
            test_watchdog_healthy;
          Alcotest.test_case "policy string parsing" `Quick
            test_watchdog_policy_of_string;
          Alcotest.test_case "rebudget turns a stall into Unknown" `Quick
            test_watchdog_rebudget;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "text format and atomic write" `Quick
            test_prometheus_render;
          fuzz_prometheus;
        ] );
      ("fuzz", [ fuzz_determinism ]);
    ]

(* The telemetry layer itself: JSON round-trips, Chrome trace-event
   structure, span nesting across worker domains, histogram bucket
   boundaries and log-level filtering — plus a determinism fuzz:
   telemetry-on and telemetry-off runs of the full
   optimize -> blast -> solve pipeline must produce identical verdicts
   and counterexample depths. *)

module Json = Obs.Json
module Signal = Rtl.Signal
module Circuit = Rtl.Circuit

(* Every test drives the same global sinks, so leave them clean. *)
let with_clean_obs f =
  Fun.protect
    ~finally:(fun () ->
      Obs.shutdown ();
      Obs.set_level Obs.Info;
      Obs.Metrics.reset ())
    f

(* Collect trace events in memory: point the writer at a temp path (the
   only way to start collecting), snapshot via [trace_json], and never
   let the file survive. *)
let with_trace f =
  let path = Filename.temp_file "test_obs" ".trace.json" in
  Fun.protect
    ~finally:(fun () ->
      Obs.close_trace ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.trace_to_file path;
      let r = f () in
      let events =
        match Json.member "traceEvents" (Obs.trace_json ()) with
        | Some (Json.List evs) -> evs
        | _ -> Alcotest.fail "trace_json lacks a traceEvents list"
      in
      (r, events))

let str_field name ev =
  match Json.member name ev with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "event lacks string field %S: %s" name (Json.to_string ev)

let num_field name ev =
  match Json.member name ev with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> Alcotest.failf "event lacks numeric field %S: %s" name (Json.to_string ev)

(* {1 JSON round-trip} *)

let test_json_roundtrip () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      (* Floats survive as long as 9 significant digits do (the
         printer's %.9g); integral floats print as "x.0" so they come
         back as Float, not Int. *)
      Json.Float 1.5;
      Json.Float (-0.25);
      Json.Float 3.0;
      Json.Float 1e-9;
      Json.Str "";
      Json.Str "plain";
      Json.Str "esc \"quotes\" \\back\nnewline\ttab\x01ctl";
      Json.Str "caf\xc3\xa9";
      Json.List [];
      Json.List [ Json.Int 1; Json.Str "two"; Json.Null ];
      Json.Obj [];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("b", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok v' -> Alcotest.(check bool) (Json.to_string v) true (v' = v)
      | Error e -> Alcotest.failf "parse of %s failed: %s" (Json.to_string v) e)
    cases;
  (* Whitespace and rejects. *)
  Alcotest.(check bool) "whitespace" true
    (Json.parse "  { \"a\" : [ 1 , 2 ] }  " = Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ]));
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "parser accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "tru"; "\"unterminated"; "1 2"; "{\"a\":}" ]

(* {1 Trace events: structure and span nesting} *)

let test_span_structure () =
  with_clean_obs @@ fun () ->
  let (), events =
    with_trace (fun () ->
        Obs.span "t.outer" ~attrs:[ ("k", Json.Int 7) ] (fun () ->
            Obs.span "t.inner" (fun () -> ignore (Sys.opaque_identity 1));
            Obs.instant "t.mark";
            Obs.counter_event "t.counter" [ ("v", 3.0) ]))
  in
  Alcotest.(check int) "four events" 4 (List.length events);
  let by_name n = List.find (fun e -> str_field "name" e = n) events in
  let outer = by_name "t.outer" and inner = by_name "t.inner" in
  Alcotest.(check string) "complete event" "X" (str_field "ph" outer);
  Alcotest.(check string) "category from prefix" "t" (str_field "cat" outer);
  Alcotest.(check bool) "attrs in args" true
    (match Json.member "args" outer with
    | Some args -> Json.member "k" args = Some (Json.Int 7)
    | None -> false);
  (* Nesting in time: inner starts no earlier and ends no later. *)
  let t0 = num_field "ts" outer and d0 = num_field "dur" outer in
  let t1 = num_field "ts" inner and d1 = num_field "dur" inner in
  Alcotest.(check bool) "inner starts inside outer" true (t1 >= t0);
  Alcotest.(check bool) "inner ends inside outer" true (t1 +. d1 <= t0 +. d0 +. 1.0);
  Alcotest.(check string) "instant" "i" (str_field "ph" (by_name "t.mark"));
  Alcotest.(check string) "counter" "C" (str_field "ph" (by_name "t.counter"))

let test_span_exception () =
  with_clean_obs @@ fun () ->
  let raised, events =
    with_trace (fun () ->
        try
          Obs.span "t.boom" (fun () ->
              if Sys.opaque_identity true then failwith "cancelled mid-span");
          false
        with Failure _ -> true)
  in
  Alcotest.(check bool) "exception propagates" true raised;
  Alcotest.(check int) "span still recorded" 1 (List.length events)

let test_span_nesting_across_domains () =
  with_clean_obs @@ fun () ->
  let n_domains = 4 and per_domain = 3 in
  let (), events =
    with_trace (fun () ->
        let worker i () =
          Obs.span "t.job" ~attrs:[ ("worker", Json.Int i) ] (fun () ->
              for s = 0 to per_domain - 1 do
                Obs.span "t.sub" ~attrs:[ ("step", Json.Int s) ] (fun () ->
                    ignore (Sys.opaque_identity (i + s)))
              done)
        in
        let ds = List.init n_domains (fun i -> Domain.spawn (worker i)) in
        List.iter Domain.join ds)
  in
  let named n = List.filter (fun e -> str_field "name" e = n) events in
  Alcotest.(check int) "one job span per domain" n_domains
    (List.length (named "t.job"));
  Alcotest.(check int) "all sub spans" (n_domains * per_domain)
    (List.length (named "t.sub"));
  (* Each domain's events carry its own tid, and the job span encloses
     every sub span recorded by the same domain. *)
  List.iter
    (fun job ->
      let tid = num_field "tid" job in
      let t0 = num_field "ts" job and d0 = num_field "dur" job in
      let subs = List.filter (fun e -> num_field "tid" e = tid) (named "t.sub") in
      Alcotest.(check int) "subs share the job's tid" per_domain (List.length subs);
      List.iter
        (fun sub ->
          let t1 = num_field "ts" sub and d1 = num_field "dur" sub in
          Alcotest.(check bool) "sub inside job" true
            (t1 >= t0 && t1 +. d1 <= t0 +. d0 +. 1.0))
        subs)
    (named "t.job");
  let tids =
    List.sort_uniq compare (List.map (fun e -> num_field "tid" e) (named "t.job"))
  in
  Alcotest.(check int) "four distinct tids" n_domains (List.length tids)

let test_trace_file_roundtrip () =
  with_clean_obs @@ fun () ->
  let path = Filename.temp_file "test_obs" ".trace.json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.trace_to_file path;
      Obs.span "t.once" (fun () -> ());
      (* Normalize the in-memory value through the printer: timestamps
         are full-precision floats in memory but %.9g on disk. *)
      let in_memory =
        match Json.parse (Json.to_string (Obs.trace_json ())) with
        | Ok v -> v
        | Error e -> Alcotest.failf "trace_json does not round-trip: %s" e
      in
      Obs.close_trace ();
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      match Json.parse contents with
      | Ok on_disk ->
          Alcotest.(check bool) "file equals trace_json" true (on_disk = in_memory)
      | Error e -> Alcotest.failf "trace file does not parse: %s" e)

(* {1 Metrics} *)

let test_histogram_buckets () =
  with_clean_obs @@ fun () ->
  Obs.Metrics.enable ();
  let h = Obs.Metrics.histogram ~buckets:[| 1.0; 2.0; 5.0 |] "test.hist" in
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 5.0; 7.0 ];
  (match Obs.Metrics.find "test.hist" with
  | Some (Obs.Metrics.Histogram { buckets; counts; sum; count }) ->
      Alcotest.(check int) "bucket count" 3 (Array.length buckets);
      (* Upper bounds are inclusive: 1.0 lands in <=1, 2.0 in <=2,
         5.0 in <=5; only 7.0 overflows. *)
      Alcotest.(check (array int)) "counts" [| 2; 2; 1; 1 |] counts;
      Alcotest.(check int) "total" 6 count;
      Alcotest.(check bool) "sum" true (Float.abs (sum -. 17.0) < 1e-9)
  | _ -> Alcotest.fail "test.hist not found or wrong kind");
  (* Disabled metrics cost nothing and record nothing. *)
  Obs.Metrics.reset ();
  Obs.Metrics.disable ();
  Obs.Metrics.observe h 1.0;
  (match Obs.Metrics.find "test.hist" with
  | Some (Obs.Metrics.Histogram { count; _ }) ->
      Alcotest.(check int) "no observation while disabled" 0 count
  | _ -> Alcotest.fail "test.hist vanished");
  (* Kind mismatch on an existing name is a programming error. *)
  Alcotest.(check bool) "kind clash raises" true
    (try
       ignore (Obs.Metrics.counter "test.hist");
       false
     with Invalid_argument _ -> true)

let test_counter_gauge_series () =
  with_clean_obs @@ fun () ->
  Obs.Metrics.enable ();
  let c = Obs.Metrics.counter "test.ctr" in
  Obs.Metrics.add c 3;
  Obs.Metrics.add c 4;
  let g = Obs.Metrics.gauge "test.gauge" in
  Obs.Metrics.set g 2.5;
  Obs.Metrics.max_gauge g 1.0;
  Obs.Metrics.max_gauge g 9.0;
  let s = Obs.Metrics.series "test.series" in
  Obs.Metrics.record s 0.25;
  Obs.Metrics.record s 0.5;
  Alcotest.(check bool) "counter sums" true
    (Obs.Metrics.find "test.ctr" = Some (Obs.Metrics.Counter 7));
  Alcotest.(check bool) "max_gauge keeps the max" true
    (Obs.Metrics.find "test.gauge" = Some (Obs.Metrics.Gauge 9.0));
  Alcotest.(check bool) "series appends in order" true
    (Obs.Metrics.find "test.series" = Some (Obs.Metrics.Series [| 0.25; 0.5 |]));
  (* The snapshot JSON round-trips through the parser. *)
  let j = Obs.Metrics.json_of_snapshot () in
  match Json.parse (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "snapshot JSON round-trips" true (j = j')
  | Error e -> Alcotest.failf "snapshot JSON does not parse: %s" e

(* {1 Structured logging} *)

let test_log_levels () =
  with_clean_obs @@ fun () ->
  let lines = ref [] in
  Obs.set_log_sink (Some (fun l -> lines := l :: !lines));
  Obs.set_level Obs.Warn;
  Obs.log Obs.Info "t.dropped";
  Obs.log ~attrs:[ ("n", Json.Int 1) ] Obs.Warn "t.kept";
  Obs.log Obs.Error "t.kept_too";
  Alcotest.(check bool) "logging gate" true (Obs.logging Obs.Warn);
  Alcotest.(check bool) "logging gate filters" false (Obs.logging Obs.Debug);
  Alcotest.(check int) "only warn+error emitted" 2 (List.length !lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok ev ->
          ignore (num_field "ts_us" ev);
          ignore (num_field "tid" ev);
          Alcotest.(check bool) "event name present" true
            (String.length (str_field "event" ev) > 0)
      | Error e -> Alcotest.failf "log line does not parse: %s (%s)" line e)
    !lines;
  let kept = List.find (fun l -> Json.parse l |> function Ok ev -> str_field "event" ev = "t.kept" | _ -> false) !lines in
  (match Json.parse kept with
  | Ok ev ->
      Alcotest.(check bool) "attrs flattened into the object" true
        (Json.member "n" ev = Some (Json.Int 1));
      Alcotest.(check string) "level name" "warn" (str_field "level" ev)
  | Error _ -> assert false)

(* {1 Determinism: telemetry must not change verdicts}

   The same random circuit and property, checked with every telemetry
   face off and then with all of them on (metrics, a null log sink at
   debug level, a trace collector): outcome kind and CEX depth must
   match exactly. *)

let check_determinism seed =
  let st = Random.State.make [| seed |] in
  let circuit = Gen_circuit.random_circuit st ~num_nodes:20 ~num_regs:3 in
  let property =
    Gen_circuit.random_property st circuit ~num_asserts:(1 + Random.State.int st 3)
  in
  let max_depth = 5 in
  let quiet = Bmc.check ~max_depth ~opt:Opt.O2 circuit property in
  let path = Filename.temp_file "test_obs" ".trace.json" in
  let noisy =
    Fun.protect
      ~finally:(fun () ->
        Obs.shutdown ();
        Obs.set_level Obs.Info;
        try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Obs.Metrics.reset ();
        Obs.Metrics.enable ();
        Obs.set_log_sink (Some (fun _ -> ()));
        Obs.set_level Obs.Debug;
        Obs.trace_to_file path;
        Bmc.check ~max_depth ~opt:Opt.O2 circuit property)
  in
  match (quiet, noisy) with
  | Bmc.Bounded_proof s1, Bmc.Bounded_proof s2 ->
      s1.Bmc.depth_reached = s2.Bmc.depth_reached
  | Bmc.Cex (c1, _), Bmc.Cex (c2, _) ->
      c1.Bmc.cex_depth = c2.Bmc.cex_depth
      && List.sort compare c1.Bmc.cex_failed = List.sort compare c2.Bmc.cex_failed
  | _ -> false

let fuzz_determinism =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:20 ~name:"telemetry on/off -> identical verdicts"
       QCheck.(make Gen.(int_bound 1_000_000))
       check_determinism)

let () =
  Alcotest.run "obs"
    [
      ("json", [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip ]);
      ( "trace",
        [
          Alcotest.test_case "span structure" `Quick test_span_structure;
          Alcotest.test_case "span survives exceptions" `Quick test_span_exception;
          Alcotest.test_case "nesting across 4 domains" `Quick
            test_span_nesting_across_domains;
          Alcotest.test_case "file equals in-memory trace" `Quick
            test_trace_file_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram bucket boundaries" `Quick
            test_histogram_buckets;
          Alcotest.test_case "counter/gauge/series" `Quick test_counter_gauge_series;
        ] );
      ("log", [ Alcotest.test_case "levels and line shape" `Quick test_log_levels ]);
      ("fuzz", [ fuzz_determinism ]);
    ]

(* The content-addressed verdict cache: canonical structural hashing
   (invariance under alpha-renaming and node-reordering, sensitivity to
   any semantic edit), the on-disk JSONL entry codec (round trip,
   corruption rejection), and the soundness bar at the BMC layer — a
   cache hit, even from a deliberately corrupted store, may never flip
   a verdict a fresh run would produce. *)

module Signal = Rtl.Signal
module Circuit = Rtl.Circuit
module J = Obs.Json

let digest_of ~assumes ~asserts = (Cache.canon ~assumes ~asserts).Cache.c_digest

(* {1 Structural hash: invariance} *)

(* Alpha-renaming via a full clone: every input and register renamed,
   every node re-allocated (fresh uids), structure untouched. The
   instrumented circuit carries the property as output ports, so the
   clone's property roots come back through the port list, positionally. *)
let canon_of_instrumented instrumented =
  let assumes, asserts =
    List.partition_map
      (fun p ->
        if String.starts_with ~prefix:"__bmc_assume_" p.Circuit.port_name then
          Either.Left p.Circuit.signal
        else Either.Right p.Circuit.signal)
      (List.filter
         (fun p -> String.starts_with ~prefix:"__bmc_" p.Circuit.port_name)
         (Circuit.outputs instrumented))
  in
  Cache.canon ~assumes ~asserts

let renamed_canon instrumented =
  let outs, _ =
    Rtl.Transform.clone_outputs instrumented
      ~map_input:(fun ~name ~width -> Signal.input ("zz_" ^ name) width)
      ~map_reg_name:(fun n -> "zz." ^ n)
  in
  let tagged prefix =
    List.filter_map
      (fun (n, s) ->
        if String.starts_with ~prefix n then Some s else None)
      outs
  in
  Cache.canon ~assumes:(tagged "__bmc_assume_") ~asserts:(tagged "__bmc_assert_")

let test_alpha_renaming_invariance () =
  for seed = 1 to 12 do
    let st = Random.State.make [| seed |] in
    let circuit = Gen_circuit.random_circuit st ~num_nodes:30 ~num_regs:4 in
    let property = Gen_circuit.random_property st circuit ~num_asserts:3 in
    let instrumented = Bmc.instrument circuit property in
    let c = canon_of_instrumented instrumented in
    let c' = renamed_canon instrumented in
    Alcotest.(check string)
      (Printf.sprintf "seed %d: digest survives alpha-renaming" seed)
      c.Cache.c_digest c'.Cache.c_digest;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: canonical input count" seed)
      (Array.length c.Cache.c_inputs)
      (Array.length c'.Cache.c_inputs);
    Array.iteri
      (fun i s ->
        Alcotest.(check int)
          (Printf.sprintf "seed %d: input %d width" seed i)
          (Signal.width s)
          (Signal.width c'.Cache.c_inputs.(i)))
      c.Cache.c_inputs
  done

let test_reordering_invariance () =
  (* The same DAG built in two different creation orders: uids and
     global node ordering differ, the structure reachable from the
     roots does not. *)
  let build first_and =
    let a = Signal.input "a" 4 and b = Signal.input "b" 4 in
    let conj, sum =
      if first_and then
        let c = Signal.( &: ) a b in
        (c, Signal.( +: ) a b)
      else
        let s = Signal.( +: ) a b in
        (Signal.( &: ) a b, s)
    in
    let r = Signal.reg "r" 4 in
    Signal.reg_set_next r sum;
    Signal.( ==: ) conj r
  in
  Alcotest.(check string) "digest ignores creation order"
    (digest_of ~assumes:[] ~asserts:[ build true ])
    (digest_of ~assumes:[] ~asserts:[ build false ])

(* {1 Structural hash: sensitivity} *)

let mini ~gate ~reg_width ~const =
  let a = Signal.input "a" 4 and b = Signal.input "b" 4 in
  let g = if gate then Signal.( &: ) a b else Signal.( |: ) a b in
  let r = Signal.reg "r" reg_width in
  Signal.reg_set_next r (Signal.uresize g reg_width);
  Signal.( ==: ) (Signal.uresize r 4) (Signal.of_int ~width:4 const)

let test_sensitivity () =
  let base = digest_of ~assumes:[] ~asserts:[ mini ~gate:true ~reg_width:4 ~const:3 ] in
  Alcotest.(check bool) "flipped gate changes the digest" true
    (base <> digest_of ~assumes:[] ~asserts:[ mini ~gate:false ~reg_width:4 ~const:3 ]);
  Alcotest.(check bool) "widened register changes the digest" true
    (base <> digest_of ~assumes:[] ~asserts:[ mini ~gate:true ~reg_width:5 ~const:3 ]);
  Alcotest.(check bool) "changed constant changes the digest" true
    (base <> digest_of ~assumes:[] ~asserts:[ mini ~gate:true ~reg_width:4 ~const:4 ]);
  Alcotest.(check bool) "promoting an assert to an assume changes the digest"
    true
    (let p = mini ~gate:true ~reg_width:4 ~const:3 in
     digest_of ~assumes:[ p ] ~asserts:[] <> digest_of ~assumes:[] ~asserts:[ p ])

let test_config_in_key () =
  let c = Cache.canon ~assumes:[] ~asserts:[ mini ~gate:true ~reg_width:4 ~const:3 ] in
  Alcotest.(check bool) "same canon, same config, same key" true
    (Cache.key c ~config:"depth=8;opt=2" = Cache.key c ~config:"depth=8;opt=2");
  Alcotest.(check bool) "depth bound separates keys" true
    (Cache.key c ~config:"depth=8;opt=2" <> Cache.key c ~config:"depth=9;opt=2");
  Alcotest.(check bool) "opt level separates keys" true
    (Cache.key c ~config:"depth=8;opt=2" <> Cache.key c ~config:"depth=8;opt=0")

(* {1 On-disk entry codec} *)

let fresh_dir tag =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "autocc_test_cache_%s_%d" tag (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let sample_cex st =
  {
    Cache.v_depth = 2;
    v_inputs =
      [|
        [ (0, Bitvec.random st 4); (3, Bitvec.random st 70) ];
        [];
        [ (1, Bitvec.random st 1) ];
      |];
    v_failed = [ 0; 2 ];
  }

let verdict_equal a b =
  match (a, b) with
  | Cache.Bounded d1, Cache.Bounded d2 | Cache.Proved d1, Cache.Proved d2 ->
      d1 = d2
  | Cache.Cex c1, Cache.Cex c2 ->
      c1.Cache.v_depth = c2.Cache.v_depth
      && c1.Cache.v_failed = c2.Cache.v_failed
      && Array.length c1.Cache.v_inputs = Array.length c2.Cache.v_inputs
      && Array.for_all2
           (fun l1 l2 ->
             List.length l1 = List.length l2
             && List.for_all2
                  (fun (o1, v1) (o2, v2) -> o1 = o2 && Bitvec.equal v1 v2)
                  l1 l2)
           c1.Cache.v_inputs c2.Cache.v_inputs
  | _ -> false

let test_codec_round_trip () =
  let st = Random.State.make [| 42 |] in
  let dir = fresh_dir "codec" in
  let cex = sample_cex st in
  let t = Cache.create ~dir () in
  Cache.add t "k_bounded" (Cache.Bounded 7);
  Cache.add t "k_proved" (Cache.Proved 3);
  Cache.add t "k_cex" (Cache.Cex cex);
  (* A brand-new instance must reload every entry through the JSONL
     codec, byte-exact down to wide bitvec payloads. *)
  let t' = Cache.create ~dir () in
  let found k =
    match Cache.find t' k with
    | Some v -> v
    | None -> Alcotest.failf "%s did not survive the disk round trip" k
  in
  Alcotest.(check bool) "bounded" true (verdict_equal (Cache.Bounded 7) (found "k_bounded"));
  Alcotest.(check bool) "proved" true (verdict_equal (Cache.Proved 3) (found "k_proved"));
  Alcotest.(check bool) "cex" true (verdict_equal (Cache.Cex cex) (found "k_cex"));
  Alcotest.(check int) "no load-time rejects" 0 (Cache.stats t').Cache.rejects

let test_codec_rejects_corruption () =
  let st = Random.State.make [| 43 |] in
  let dir = fresh_dir "corrupt" in
  let t = Cache.create ~dir () in
  Cache.add t "k_keep" (Cache.Bounded 9);
  Cache.add t "k_torn" (Cache.Cex (sample_cex st));
  Cache.add t "k_tampered" (Cache.Proved 5);
  let path = Filename.concat dir "verdicts.jsonl" in
  let lines =
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  in
  let corrupt line =
    match List.assoc "k" (match J.parse line with Ok (J.Obj o) -> o | _ -> []) with
    | J.Str "k_torn" ->
        (* Torn write: half the line. *)
        String.sub line 0 (String.length line / 2)
    | J.Str "k_tampered" -> (
        (* Payload flipped without refreshing the integrity digest. *)
        match J.parse line with
        | Ok (J.Obj fields) ->
            J.to_string
              (J.Obj
                 (List.map
                    (function
                      | "v", _ ->
                          ("v", J.Obj [ ("v", J.Str "proved"); ("depth", J.Int 6) ])
                      | f -> f)
                    fields))
        | _ -> Alcotest.fail "stored line does not parse")
    | _ -> line
  in
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc (corrupt l);
      output_char oc '\n')
    lines;
  close_out oc;
  let t' = Cache.create ~dir () in
  Alcotest.(check bool) "intact entry survives" true
    (Cache.find t' "k_keep" <> None);
  Alcotest.(check bool) "torn line rejected" true (Cache.find t' "k_torn" = None);
  Alcotest.(check bool) "digest-mismatched line rejected" true
    (Cache.find t' "k_tampered" = None);
  Alcotest.(check bool) "rejects counted" true ((Cache.stats t').Cache.rejects >= 2)

(* {1 Provenance: rides the line outside the integrity digest} *)

let test_provenance_roundtrip () =
  let dir = fresh_dir "prov" in
  let t = Cache.create ~dir () in
  let prov =
    {
      Cache.p_run = "r00000000001-00042";
      p_engine = "check";
      p_config = "check|d=8|o=2|i=true|s=default|b=-";
      p_key = "kp";
      p_ts = 1234.5;
    }
  in
  Cache.add ~prov t "kp" (Cache.Bounded 8);
  Cache.add t "kq" (Cache.Proved 4);
  let t' = Cache.create ~dir () in
  (match Cache.peek t' "kp" with
  | Some (Cache.Bounded 8, Some p) ->
      Alcotest.(check string) "run id" "r00000000001-00042" p.Cache.p_run;
      Alcotest.(check string) "engine" "check" p.Cache.p_engine;
      Alcotest.(check string) "config" prov.Cache.p_config p.Cache.p_config;
      Alcotest.(check string) "key" "kp" p.Cache.p_key;
      Alcotest.(check (float 1e-6)) "store time" 1234.5 p.Cache.p_ts
  | Some (_, None) -> Alcotest.fail "provenance lost on the disk round trip"
  | _ -> Alcotest.fail "kp missing after reload");
  (match Cache.peek t' "kq" with
  | Some (_, None) -> ()
  | Some (_, Some _) -> Alcotest.fail "phantom provenance on a bare store"
  | None -> Alcotest.fail "kq missing after reload");
  (* peek is an audit lookup: the hit/miss counters stay untouched. *)
  let st = Cache.stats t' in
  Alcotest.(check int) "peek counts no hits" 0 st.Cache.hits;
  Alcotest.(check int) "peek counts no misses" 0 st.Cache.misses

let test_provenance_outside_digest () =
  (* Stripping the "p" member from a stored line must leave the entry
     loadable with [None] provenance and zero rejects — the integrity
     digest covers the verdict payload only, so pre-provenance stores
     (and hand-edited ledgers) keep working. *)
  let dir = fresh_dir "provstrip" in
  let t = Cache.create ~dir () in
  Cache.add
    ~prov:
      {
        Cache.p_run = "r1";
        p_engine = "prove";
        p_config = "c";
        p_key = "k_strip";
        p_ts = 1.;
      }
    t "k_strip" (Cache.Proved 3);
  let path = Filename.concat dir "verdicts.jsonl" in
  let line =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> input_line ic)
  in
  let stripped =
    match J.parse line with
    | Ok (J.Obj fields) ->
        J.to_string (J.Obj (List.filter (fun (k, _) -> k <> "p") fields))
    | _ -> Alcotest.fail "stored line does not parse"
  in
  let oc = open_out path in
  output_string oc (stripped ^ "\n");
  close_out oc;
  let t' = Cache.create ~dir () in
  Alcotest.(check int) "no rejects" 0 (Cache.stats t').Cache.rejects;
  match Cache.peek t' "k_strip" with
  | Some (Cache.Proved 3, None) -> ()
  | Some (_, Some _) -> Alcotest.fail "provenance survived stripping?"
  | _ -> Alcotest.fail "stripped line no longer loads"

(* {1 BMC layer: cold/warm differential and corrupted-store soundness} *)

let stash_circuit () =
  let open Signal in
  let din = input "din" 4 in
  let capture = input "capture" 1 in
  let stash = reg "stash" 4 in
  reg_set_next stash (mux2 capture din stash);
  let circuit = Circuit.create ~name:"stash" ~outputs:[ ("stash", stash) ] () in
  (circuit, { Bmc.assumes = []; asserts = [ ("stays0", ~:(stash >: zero 4)) ] })

let outcome_fingerprint = function
  | Bmc.Cex (c, _) ->
      Printf.sprintf "cex@%d:%s" c.Bmc.cex_depth
        (String.concat ","
           (Array.to_list c.Bmc.cex_inputs
           |> List.concat_map
                (List.map (fun (n, v) -> n ^ "=" ^ Bitvec.to_hex_string v))))
  | Bmc.Bounded_proof s -> Printf.sprintf "proof@%d" s.Bmc.depth_reached
  | Bmc.Unknown (r, _) -> "unknown:" ^ Bmc.unknown_reason_to_string r

let test_cold_warm_identical () =
  let circuit, property = stash_circuit () in
  let reference = Bmc.check ~max_depth:6 circuit property in
  let dir = fresh_dir "coldwarm" in
  let cold_cache = Cache.create ~dir () in
  let cold = Bmc.check ~max_depth:6 ~cache:cold_cache circuit property in
  let warm_cache = Cache.create ~dir () in
  let warm = Bmc.check ~max_depth:6 ~cache:warm_cache circuit property in
  Alcotest.(check string) "cold run matches the cache-free reference"
    (outcome_fingerprint reference) (outcome_fingerprint cold);
  Alcotest.(check string) "warm run is byte-identical to cold"
    (outcome_fingerprint cold) (outcome_fingerprint warm);
  Alcotest.(check int) "warm run hit" 1 (Cache.stats warm_cache).Cache.hits;
  Alcotest.(check int) "warm run stored nothing" 0
    (Cache.stats warm_cache).Cache.stores

let test_corrupted_store_never_flips () =
  (* The adversarial case the integrity digest cannot catch: a
     consistent corruption (payload and digest rewritten together).
     The CEX replay re-validation at the BMC layer must reject the
     poisoned witness, evict it, and recompute the true verdict. *)
  let circuit, property = stash_circuit () in
  let dir = fresh_dir "poison" in
  let cold_cache = Cache.create ~dir () in
  let reference = Bmc.check ~max_depth:6 ~cache:cold_cache circuit property in
  let path = Filename.concat dir "verdicts.jsonl" in
  let line = input_line (open_in path) in
  let poisoned =
    match J.parse line with
    | Ok (J.Obj fields) ->
        let v =
          match List.assoc "v" fields with
          | J.Obj vf ->
              (* Zero every recorded input assignment: the replayed
                 trace no longer fails the assertion. *)
              J.Obj
                (List.map
                   (function
                     | "inputs", J.List cycles ->
                         ("inputs", J.List (List.map (fun _ -> J.Obj []) cycles))
                     | f -> f)
                   vf)
          | _ -> Alcotest.fail "stored entry has no payload object"
        in
        J.to_string
          (J.Obj
             (List.map
                (function
                  | "v", _ -> ("v", v)
                  | "d", _ ->
                      ( "d",
                        J.Str
                          (Digest.to_hex (Digest.string (J.to_string v))) )
                  | f -> f)
                fields))
    | _ -> Alcotest.fail "stored line does not parse"
  in
  let oc = open_out path in
  output_string oc poisoned;
  output_char oc '\n';
  close_out oc;
  let warm_cache = Cache.create ~dir () in
  let warm = Bmc.check ~max_depth:6 ~cache:warm_cache circuit property in
  Alcotest.(check string) "poisoned hit did not flip the verdict"
    (outcome_fingerprint reference) (outcome_fingerprint warm);
  Alcotest.(check bool) "the poisoned entry was evicted" true
    ((Cache.stats warm_cache).Cache.rejects >= 1)

let test_fuzz_cold_warm () =
  (* Random circuits: a warm re-run from disk must reproduce the cold
     verdict (kind, depth, replay-valid trace — rehydrated CEXs zero
     cone-external don't-care inputs, so input bytes may differ). *)
  let agree property o1 o2 =
    let replays c =
      []
      <> Bmc.validate c.Bmc.cex_circuit property c.Bmc.cex_inputs
           c.Bmc.cex_depth
    in
    match (o1, o2) with
    | Bmc.Bounded_proof s1, Bmc.Bounded_proof s2 ->
        s1.Bmc.depth_reached = s2.Bmc.depth_reached
    | Bmc.Cex (c1, _), Bmc.Cex (c2, _) ->
        c1.Bmc.cex_depth = c2.Bmc.cex_depth && replays c1 && replays c2
    | Bmc.Unknown _, Bmc.Unknown _ -> true
    | _ -> false
  in
  for seed = 51 to 58 do
    let st = Random.State.make [| seed |] in
    let circuit = Gen_circuit.random_circuit st ~num_nodes:25 ~num_regs:3 in
    let property = Gen_circuit.random_property st circuit ~num_asserts:2 in
    let dir = fresh_dir (Printf.sprintf "fuzz%d" seed) in
    let cold_cache = Cache.create ~dir () in
    let cold = Bmc.check ~max_depth:5 ~cache:cold_cache circuit property in
    let warm_cache = Cache.create ~dir () in
    let warm = Bmc.check ~max_depth:5 ~cache:warm_cache circuit property in
    if not (agree property cold warm) then
      Alcotest.failf "seed %d: warm %s disagrees with cold %s" seed
        (outcome_fingerprint warm) (outcome_fingerprint cold);
    match cold with
    | Bmc.Unknown _ ->
        Alcotest.(check int)
          (Printf.sprintf "seed %d: unknown is never cached" seed)
          0 (Cache.stats cold_cache).Cache.stores
    | _ ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: warm run hit" seed)
          true ((Cache.stats warm_cache).Cache.hits > 0)
  done

let () =
  Alcotest.run "cache"
    [
      ( "structural hash",
        [
          Alcotest.test_case "alpha-renaming invariance" `Quick
            test_alpha_renaming_invariance;
          Alcotest.test_case "node-reordering invariance" `Quick
            test_reordering_invariance;
          Alcotest.test_case "semantic-edit sensitivity" `Quick test_sensitivity;
          Alcotest.test_case "config fingerprint in key" `Quick test_config_in_key;
        ] );
      ( "disk codec",
        [
          Alcotest.test_case "round trip" `Quick test_codec_round_trip;
          Alcotest.test_case "corruption rejection" `Quick
            test_codec_rejects_corruption;
          Alcotest.test_case "provenance round trip and peek" `Quick
            test_provenance_roundtrip;
          Alcotest.test_case "provenance outside the digest" `Quick
            test_provenance_outside_digest;
        ] );
      ( "bmc layer",
        [
          Alcotest.test_case "cold/warm identical" `Quick test_cold_warm_identical;
          Alcotest.test_case "corrupted store never flips" `Quick
            test_corrupted_store_never_flips;
          Alcotest.test_case "fuzz: cold/warm over random circuits" `Quick
            test_fuzz_cold_warm;
        ] );
    ]

(* Structural validator for the run ledger, run by the @ledger-smoke
   rules against a real cold/warm `autocc analyze` pair sharing one
   AUTOCC_CACHE_DIR:

     validate_ledger.exe check LEDGER_DIR TRACE HISTORY WHY PROFILE SVG
       LEDGER_DIR/runs.jsonl must hold the cold and warm analyze runs:
       schema-clean, distinct run ids, identical config fingerprints
       and DUT structural hashes, the cold run storing verdicts
       (stores > 0, hits = 0) and the warm run hitting the cache
       (hits > 0, every assert marked cached) with identical verdicts.
       HISTORY (captured `autocc history`) must list both run ids; WHY
       (captured `autocc why`) must resolve the warm cache hit back to
       the cold producing run's id and print its config fingerprint and
       structural hash; TRACE, refolded through Obs.Profile, must
       attribute within 5% of the cold run's recorded wall; PROFILE and
       SVG are the rendered table and flamegraph.

     validate_ledger.exe slow LEDGER_DIR
       Append a clone of the newest run under a fresh id with every
       wall/cpu second scaled (x10 + 1s) — the forced-regression input
       for the `diff-runs` exit-1 self-test. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let mentions body sub =
  let n = String.length sub and h = String.length body in
  let rec go i = i + n <= h && (String.sub body i n = sub || go (i + 1)) in
  go 0

let load_runs dir =
  let file = Obs.Ledger.path dir in
  let runs, bad = Obs.Ledger.load dir in
  if bad > 0 then fail "%s: %d unparseable ledger line(s)" file bad;
  if runs = [] then fail "%s: empty run ledger" file;
  runs

let check dir trace history_out why_out profile_out svg_path =
  let open Obs.Ledger in
  let runs = load_runs dir in
  let analyzes = List.filter (fun r -> r.r_tool = "analyze") runs in
  (match analyzes with
  | _ :: _ :: _ -> ()
  | _ -> fail "%s: expected >= 2 analyze runs, found %d" dir
           (List.length analyzes));
  let cold = List.hd analyzes
  and warm = List.nth analyzes (List.length analyzes - 1) in
  if cold.r_id = warm.r_id then
    fail "cold and warm runs share id %s" cold.r_id;
  (* Both runs answered the same question: same subject, config
     fingerprint and DUT structural hash — otherwise the warm cache hit
     below proves nothing. *)
  if cold.r_subject <> warm.r_subject then
    fail "subject drifted: %s vs %s" cold.r_subject warm.r_subject;
  if cold.r_config = "" then fail "cold run has empty config fingerprint";
  if cold.r_config <> warm.r_config then
    fail "config fingerprint drifted: %s vs %s" cold.r_config warm.r_config;
  if cold.r_dut_hash = "" then fail "cold run has empty DUT hash";
  if cold.r_dut_hash <> warm.r_dut_hash then
    fail "DUT hash drifted: %s vs %s" cold.r_dut_hash warm.r_dut_hash;
  List.iter
    (fun r ->
      if r.r_wall_s <= 0. then fail "run %s has wall %g <= 0" r.r_id r.r_wall_s;
      if r.r_asserts = [] then fail "run %s recorded no asserts" r.r_id)
    [ cold; warm ];
  (* Cold solved fresh and stored; warm must have hit the store and
     reproduced the exact verdicts. *)
  if cold.r_cache_hits <> 0 then
    fail "cold run %s has %d cache hits (stale lcache?)" cold.r_id
      cold.r_cache_hits;
  if cold.r_cache_stores = 0 then fail "cold run %s stored nothing" cold.r_id;
  if warm.r_cache_hits = 0 then
    fail "warm run %s never hit the cache" warm.r_id;
  List.iter
    (fun a ->
      if not a.a_cached then
        fail "warm run assert %s not marked cached" a.a_name)
    warm.r_asserts;
  let verdicts r = List.map (fun a -> (a.a_name, a.a_verdict, a.a_depth)) r.r_asserts in
  if verdicts cold <> verdicts warm then
    fail "warm verdicts differ from cold (cache returned something else)";
  (* `history` lists both runs; `why` resolves the warm hit back to the
     producing (cold) run and reprints the fingerprint it was keyed
     under. *)
  let history = read_file history_out in
  List.iter
    (fun r ->
      if not (mentions history r.r_id) then
        fail "%s: history does not list run %s" history_out r.r_id)
    [ cold; warm ];
  let why = read_file why_out in
  if not (mentions why cold.r_id) then
    fail "%s: why does not resolve the cache hit to producing run %s"
      why_out cold.r_id;
  if not (mentions why cold.r_config) then
    fail "%s: why does not print config fingerprint %s" why_out cold.r_config;
  if not (mentions why cold.r_dut_hash) then
    fail "%s: why does not print structural hash %s" why_out cold.r_dut_hash;
  (* Refold the cold run's span trace: the CLI's root span covers the
     whole command, so the attributed total must sit within 5% of the
     ledger's recorded wall (plus a small absolute slack for the
     process-edge microseconds outside the root span). *)
  let profile =
    match Obs.Profile.of_file trace with
    | Result.Ok p -> p
    | Result.Error e -> fail "%s: unreadable trace: %s" trace e
  in
  if profile.Obs.Profile.p_events = 0 then fail "%s: no spans in trace" trace;
  let attributed = profile.Obs.Profile.p_total_us /. 1e6 in
  let wall = cold.r_wall_s in
  let tolerance = Float.max (0.05 *. wall) 0.015 in
  if Float.abs (attributed -. wall) > tolerance then
    fail "%s: attributed %.4fs vs recorded wall %.4fs (tolerance %.4fs)" trace
      attributed wall tolerance;
  let table = read_file profile_out in
  if not (mentions table "attributed") then
    fail "%s: profile table missing attribution headline" profile_out;
  if not (mentions table "cli.analyze") then
    fail "%s: profile table missing the root cli.analyze span" profile_out;
  let svg = read_file svg_path in
  if not (mentions svg "<svg") then fail "%s: not an SVG" svg_path;
  if not (mentions svg "cli.analyze") then
    fail "%s: flamegraph missing the root cli.analyze span" svg_path;
  if mentions svg "<script" then
    fail "%s: flamegraph carries a script element" svg_path;
  Printf.printf
    "ledger OK: %s (cold %s stored %d, warm %s hit %d; attributed %.3fs of \
     %.3fs wall)\n"
    dir cold.r_id cold.r_cache_stores warm.r_id warm.r_cache_hits attributed
    wall

(* Clone the newest run under a fresh id, ten-times-plus-a-second
   slower everywhere — guaranteed past both the diff ratio and any
   sane absolute floor, so `diff-runs` over (previous, clone) must
   exit 1. *)
let slow dir =
  let open Obs.Ledger in
  let runs = load_runs dir in
  let newest = List.nth runs (List.length runs - 1) in
  let scale x = if x >= 0. then (x *. 10.) +. 1. else x in
  let clone =
    {
      newest with
      r_id = newest.r_id ^ "x10";
      r_ts = newest.r_ts +. 1.;
      r_wall_s = scale newest.r_wall_s;
      r_cpu_s = scale newest.r_cpu_s;
      r_asserts =
        List.map
          (fun a -> { a with a_wall_s = scale a.a_wall_s })
          newest.r_asserts;
    }
  in
  append ~dir clone;
  Printf.printf "slow OK: appended %s (wall %.3fs -> %.3fs)\n" clone.r_id
    newest.r_wall_s clone.r_wall_s

let () =
  match Array.to_list Sys.argv with
  | [ _; "check"; dir; trace; history_out; why_out; profile_out; svg ] ->
      check dir trace history_out why_out profile_out svg
  | [ _; "slow"; dir ] -> slow dir
  | _ ->
      prerr_endline
        "usage: validate_ledger.exe check LEDGER_DIR TRACE HISTORY WHY \
         PROFILE SVG | slow LEDGER_DIR";
      exit 2

(* Cross-layer integration and property tests: the bit-blaster against
   the interpreter on the real DUTs, memories against a reference array
   model, temporal root-causing, and VCD identifier uniqueness. *)

module S = Sat.Solver
module Signal = Rtl.Signal
module Circuit = Rtl.Circuit

(* {1 Blaster vs interpreter on the shipped DUTs} *)

let pin blaster cycle name v =
  let circuit = Cnf.Blast.circuit blaster in
  let ls = Cnf.Blast.lits blaster ~cycle (Circuit.find_input circuit name) in
  Array.iteri
    (fun i l ->
      S.add_clause (Cnf.Blast.solver blaster)
        [ (if Bitvec.bit v i then l else S.neg l) ])
    ls

let blast_matches_sim dut seed =
  let st = Random.State.make [| seed |] in
  let cycles = 6 in
  let trace =
    List.init cycles (fun _ ->
        List.map
          (fun p ->
            (p.Circuit.port_name, Bitvec.random st (Signal.width p.Circuit.signal)))
          (Circuit.inputs dut))
  in
  let sim = Sim.create dut in
  let expected =
    List.map
      (fun assignments ->
        List.iter (fun (n, v) -> Sim.set_input sim n v) assignments;
        let outs =
          List.map (fun p -> Sim.out sim p.Circuit.port_name) (Circuit.outputs dut)
        in
        Sim.step sim;
        outs)
      trace
  in
  let solver = S.create () in
  let blaster = Cnf.Blast.create solver dut in
  List.iteri
    (fun cycle assignments ->
      Cnf.Blast.unroll_cycle blaster;
      List.iter (fun (n, v) -> pin blaster cycle n v) assignments)
    trace;
  match S.solve solver with
  | S.Unsat -> false
  | S.Sat ->
      List.for_all2
        (fun cycle outs ->
          List.for_all2
            (fun p expect ->
              Bitvec.equal
                (Cnf.Blast.node_value blaster ~cycle p.Circuit.signal)
                expect)
            (Circuit.outputs dut) outs)
        (List.init cycles Fun.id)
        expected

let qprop name f count =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name QCheck.(make Gen.(int_bound 1_000_000)) f)

let dut_props =
  [
    qprop "vscale blast = sim" (fun s -> blast_matches_sim (Duts.Vscale.create ()) s) 25;
    qprop "maple blast = sim" (fun s -> blast_matches_sim (Duts.Maple.create ()) s) 25;
    qprop "aes blast = sim" (fun s -> blast_matches_sim (Duts.Aes.create ()) s) 25;
    qprop "cva6 blast = sim" (fun s -> blast_matches_sim (Duts.Cva6lite.create ()) s) 15;
    qprop "divider blast = sim" (fun s -> blast_matches_sim (Duts.Divider.create ()) s) 25;
  ]

(* {1 Memories against an array model} *)

let prop_mem_model seed =
  let st = Random.State.make [| seed |] in
  let size = 4 in
  let open Signal in
  let wen = input "wen" 1 and waddr = input "waddr" 2 in
  let wdata = input "wdata" 8 and raddr = input "raddr" 2 in
  let m = Rtl.Mem.create ~name:"m" ~size ~width:8 () in
  Rtl.Mem.write m ~enable:wen ~addr:waddr ~data:wdata;
  Rtl.Mem.finalize m;
  let c = Circuit.create ~name:"m" ~outputs:[ ("rdata", Rtl.Mem.read m raddr) ] () in
  let sim = Sim.create c in
  let model = Array.make size 0 in
  let steps = 40 in
  let ok = ref true in
  for _ = 1 to steps do
    let we = Random.State.bool st in
    let wa = Random.State.int st size and ra = Random.State.int st size in
    let wd = Random.State.int st 256 in
    Sim.set_input_int sim "wen" (if we then 1 else 0);
    Sim.set_input_int sim "waddr" wa;
    Sim.set_input_int sim "wdata" wd;
    Sim.set_input_int sim "raddr" ra;
    if Sim.out_int sim "rdata" <> model.(ra) then ok := false;
    Sim.step sim;
    if we then model.(wa) <- wd
  done;
  !ok

(* {1 Temporal root cause} *)

let test_first_divergence_order () =
  (* [stash] diverges when captured; [echo] follows one cycle later. The
     earliest-divergence ranking must name the stash first. *)
  let open Signal in
  let din = input "din" 4 in
  let capture = input "capture" 1 in
  let query = input "query" 4 in
  let stash = reg "stash" 4 in
  let echo = reg "echo" 4 in
  reg_set_next stash (mux2 capture din stash);
  reg_set_next echo stash;
  let dut =
    Circuit.create ~name:"chain" ~outputs:[ ("hit", query ==: echo) ] ()
  in
  let ft = Autocc.Ft.generate ~threshold:2 dut in
  match Autocc.Ft.check ~max_depth:12 ft with
  | Bmc.Bounded_proof _ -> Alcotest.fail "chain must leak"
  | Bmc.Cex (cex, _) -> (
      match Autocc.Report.first_divergence ft cex with
      | (first, c1) :: rest ->
          Alcotest.(check string) "stash first" "stash" first;
          (match List.assoc_opt "echo" rest with
          | Some c2 -> Alcotest.(check bool) "echo later" true (c2 > c1)
          | None -> Alcotest.fail "echo must also diverge")
      | [] -> Alcotest.fail "divergence expected")
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

(* {1 VCD identifiers} *)

let test_vcd_many_signals () =
  (* Hundreds of variables: distinct id codes (2-char codes past the 94
     printable singles), a well-formed header, and every multi-bit value
     line referencing a declared id with the declared width. *)
  let n = 300 in
  let traces =
    List.init n (fun i ->
        (Printf.sprintf "sig%d" i, [| Bitvec.of_int ~width:8 i |]))
  in
  let path = Filename.temp_file "autocc" ".vcd" in
  Rtl.Vcd.write ~path traces;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check bool) "timescale declared" true
    (List.mem "$timescale 1 ns $end" lines);
  Alcotest.(check bool) "definitions closed" true
    (List.mem "$enddefinitions $end" lines);
  let ids = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun line ->
      if String.length line > 4 && String.sub line 0 4 = "$var" then
        match String.split_on_char ' ' line with
        | [ "$var"; "wire"; w; id; name; "$end" ] ->
            Alcotest.(check int) ("width of " ^ name) 8 (int_of_string w);
            if Hashtbl.mem ids id then Alcotest.failf "duplicate id %s" id;
            Hashtbl.replace ids id ();
            order := id :: !order
        | _ -> Alcotest.failf "unparseable $var line: %s" line)
    lines;
  Alcotest.(check int) "all declared" n (Hashtbl.length ids);
  (* 94 single-char codes, then two-char codes for the rest. *)
  let order = Array.of_list (List.rev !order) in
  Array.iteri
    (fun i id ->
      Alcotest.(check int)
        (Printf.sprintf "id length of var %d" i)
        (if i < 94 then 1 else 2)
        (String.length id))
    order;
  (* Every 8-bit signal changes at #0: one b-line per variable, each
     referencing a declared id with an 8-bit pattern. *)
  let vector = ref 0 in
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] = 'b' then
        match String.split_on_char ' ' line with
        | [ bits; id ] ->
            Alcotest.(check int) "8-bit pattern" 9 (String.length bits);
            if not (Hashtbl.mem ids id) then
              Alcotest.failf "value change on undeclared id %s" id;
            incr vector
        | _ -> Alcotest.failf "unparseable vector change: %s" line)
    lines;
  Alcotest.(check int) "one change per variable" n !vector

(* {1 Vscale CSR path in simulation} *)

let test_vscale_csr_ops () =
  let module V = Duts.Vscale in
  let program =
    [
      (0, `Load (1, 0)) (* r1 <- dmem = 0x2A *);
      (1, `Csrw (0, 1)) (* csr0 <- r1 *);
      (2, `Csrjmp 0) (* pc <- csr0 = 0x2A *);
    ]
  in
  let sim = Sim.create (V.create ()) in
  Sim.set_input_int sim "dmem_rdata" 0x2A;
  let pcs = ref [] in
  for _ = 1 to 8 do
    let pc = Sim.out_int sim "imem_addr" in
    pcs := pc :: !pcs;
    let instr =
      match List.assoc_opt pc program with
      | Some i -> V.instruction i
      | None -> V.instruction `Nop
    in
    Sim.set_input_int sim "imem_instr" instr;
    Sim.step sim
  done;
  Alcotest.(check bool) "jumped via CSR" true (List.mem 0x2A !pcs)

let () =
  Alcotest.run "integration"
    [
      ("blast-vs-sim", dut_props);
      ( "mem",
        [ qprop "mem matches array model" prop_mem_model 100 ] );
      ( "analysis",
        [
          Alcotest.test_case "first divergence order" `Quick test_first_divergence_order;
          Alcotest.test_case "vcd many signals" `Quick test_vcd_many_signals;
          Alcotest.test_case "vscale csr ops" `Quick test_vscale_csr_ops;
        ] );
    ]

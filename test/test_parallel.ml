(* The parallel verification engine, cross-checked against the
   sequential engine and the simulator.

   The heart of the suite is a differential fuzzer: random circuits with
   random multi-assert properties are verified by both [Bmc.check] and
   [Parallel.check] (sharded and portfolio), which must agree on the
   outcome kind and the counterexample depth; every parallel
   counterexample is additionally replayed on the [Sim] interpreter
   through [Bmc.validate] (raising [Replay_mismatch] on divergence). The
   worker count comes from AUTOCC_JOBS — the dune rules run the suite at
   both 1 (in-calling-domain fallback) and 4. *)

module S = Sat.Solver
module Signal = Rtl.Signal
module Circuit = Rtl.Circuit

let jobs =
  match Sys.getenv_opt "AUTOCC_JOBS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

(* {1 Fixtures} *)

(* A counter with per-value assertions: assert [cnt <> v] fails exactly
   at depth [v], giving a property whose shards answer at staggered,
   known depths. *)
let counter_property values =
  let open Signal in
  let cnt = reg "cnt" 4 in
  reg_set_next cnt (cnt +: one 4);
  let circuit = Circuit.create ~name:"counter" ~outputs:[ ("cnt", cnt) ] () in
  let asserts =
    List.map
      (fun v -> (Printf.sprintf "ne%d" v, ~:(cnt ==: of_int ~width:4 v)))
      values
  in
  (circuit, { Bmc.assumes = []; asserts })

(* Constantly-zero registers: [~:r] is 1-inductive, so every shard (and
   the joint property) proves. *)
let inductive_property n =
  let open Signal in
  let regs =
    List.init n (fun i ->
        let r = reg (Printf.sprintf "z%d" i) 1 in
        reg_set_next r r;
        r)
  in
  let circuit =
    Circuit.create ~name:"zeros"
      ~outputs:(List.mapi (fun i r -> (Printf.sprintf "o%d" i, r)) regs)
      ()
  in
  (circuit, { Bmc.assumes = []; asserts = List.mapi (fun i r -> (Printf.sprintf "z%d" i, ~:r)) regs })

let cex_depth = function
  | Bmc.Cex (cex, _) -> Some cex.Bmc.cex_depth
  | Bmc.Bounded_proof _ -> None
  | Bmc.Unknown _ -> None

(* {1 Deterministic engine tests} *)

let test_shard_agrees () =
  let circuit, property = counter_property [ 9; 3; 6; 12 ] in
  let seq = Bmc.check ~max_depth:15 circuit property in
  List.iter
    (fun jobs ->
      let par, detail = Parallel.check_detailed ~jobs ~max_depth:15 circuit property in
      Alcotest.(check (option int))
        (Printf.sprintf "depth at jobs=%d" jobs)
        (cex_depth seq) (cex_depth par);
      Alcotest.(check string) "strategy" "shard" detail.Parallel.par_strategy;
      match par with
      | Bmc.Cex (cex, _) ->
          (* The shallowest assertion is unique here, so the failing set
             is exact, and the widened trace replays on the interpreter
             against the full property. *)
          Alcotest.(check (list string)) "failing set" [ "ne3" ] cex.Bmc.cex_failed;
          Alcotest.(check (list string))
            "replays" [ "ne3" ]
            (Bmc.validate cex.Bmc.cex_circuit property cex.Bmc.cex_inputs
               cex.Bmc.cex_depth)
      | Bmc.Bounded_proof _ -> Alcotest.fail "expected a CEX"
      | Bmc.Unknown (r, _) ->
          Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r))
    [ 1; 4 ]

let test_shard_bounded () =
  (* 12 and 14 are genuine 4-bit counter values, but lie past the bound. *)
  let circuit, property = counter_property [ 12; 14 ] in
  match Parallel.check ~jobs ~max_depth:10 circuit property with
  | Bmc.Bounded_proof st ->
      Alcotest.(check int) "depth reached" 10 st.Bmc.depth_reached
  | Bmc.Cex _ -> Alcotest.fail "unexpected CEX"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

let test_portfolio_agrees () =
  let circuit, property = counter_property [ 7; 11 ] in
  let seq = Bmc.check ~max_depth:15 circuit property in
  let par, detail =
    Parallel.check_detailed ~jobs ~portfolio:4 ~max_depth:15 circuit property
  in
  Alcotest.(check (option int)) "depth" (cex_depth seq) (cex_depth par);
  Alcotest.(check string) "strategy" "portfolio" detail.Parallel.par_strategy;
  Alcotest.(check int) "jobs" 4 (List.length detail.Parallel.par_results)

let test_prove_refuted () =
  let circuit, property = counter_property [ 10; 4 ] in
  match
    ( Bmc.prove ~max_depth:15 circuit property,
      Parallel.prove ~jobs ~max_depth:15 circuit property )
  with
  | Bmc.Refuted (c1, _), Bmc.Refuted (c2, _) ->
      Alcotest.(check int) "depth" c1.Bmc.cex_depth c2.Bmc.cex_depth;
      Alcotest.(check (list string)) "failing" [ "ne4" ] c2.Bmc.cex_failed
  | _ -> Alcotest.fail "expected Refuted from both engines"

let test_prove_proved () =
  let circuit, property = inductive_property 3 in
  match
    ( Bmc.prove ~max_depth:10 circuit property,
      Parallel.prove ~jobs ~max_depth:10 circuit property )
  with
  | Bmc.Proved (k1, _), Bmc.Proved (k2, _) -> Alcotest.(check int) "k" k1 k2
  | _ -> Alcotest.fail "expected Proved from both engines"

let test_progress_calling_domain () =
  (* The reentrancy contract: progress only ever runs on the calling
     domain, with strictly increasing depths. *)
  let circuit, property = counter_property [ 13; 5; 9 ] in
  let self = Domain.self () in
  let depths = ref [] in
  let progress d =
    Alcotest.(check bool) "calling domain" true (Domain.self () = self);
    depths := d :: !depths
  in
  ignore (Parallel.check ~jobs ~max_depth:15 ~progress circuit property);
  let ds = List.rev !depths in
  Alcotest.(check bool) "non-empty" true (ds <> []);
  Alcotest.(check bool) "strictly increasing" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < List.length ds - 1) ds) (List.tl ds))

let test_equiv_mismatch () =
  let open Signal in
  let c1 =
    let a = input "a" 4 in
    Circuit.create ~name:"one" ~outputs:[ ("o", a +: one 4) ] ()
  in
  let c2 =
    let b = input "b" 4 in
    Circuit.create ~name:"two" ~outputs:[ ("o", b +: one 4) ] ()
  in
  let exn = Invalid_argument "Bmc.equiv: circuits have different interfaces" in
  Alcotest.check_raises "sequential" exn (fun () -> ignore (Bmc.equiv c1 c2));
  (* The parallel path must raise the same exception from the calling
     domain — not hang a worker pool on an unbuildable miter. *)
  Alcotest.check_raises "parallel" exn (fun () ->
      ignore (Parallel.equiv ~jobs c1 c2))

let test_equiv_parallel () =
  let mk nm =
    let open Signal in
    let a = input "a" 4 in
    let r = reg "r" 4 in
    reg_set_next r (r +: a);
    Circuit.create ~name:nm ~outputs:[ ("sum", r); ("parity", select r 0 0) ] ()
  in
  match Parallel.equiv ~jobs ~max_depth:6 (mk "x") (mk "y") with
  | Bmc.Bounded_proof _ -> ()
  | Bmc.Cex _ -> Alcotest.fail "identical circuits reported different"
  | Bmc.Unknown (r, _) ->
      Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)

(* {1 Solver-configuration determinism}

   Each portfolio configuration, run twice over the same clause/solve
   sequence, must take the identical search path: same outcome, same
   model (counterexample trace) and the same conflict count. The
   randomized configurations draw from a private PRNG seeded by the
   config, so this holds for them too. *)

let test_config_determinism () =
  List.iter
    (fun cfg ->
      let run () =
        let st = Random.State.make [| 0xC0FFEE |] in
        let circuit = Gen_circuit.random_circuit st ~num_nodes:40 ~num_regs:4 in
        let property = Gen_circuit.random_property st circuit ~num_asserts:3 in
        match Bmc.check ~max_depth:6 ~solver_config:cfg circuit property with
        | Bmc.Cex (cex, stats) ->
            (Some (cex.Bmc.cex_depth, cex.Bmc.cex_inputs), stats.Bmc.conflicts)
        | Bmc.Bounded_proof stats -> (None, stats.Bmc.conflicts)
        | Bmc.Unknown (r, _) ->
            Alcotest.failf "unexpected unknown (%s)" (Bmc.unknown_reason_to_string r)
      in
      let m1, c1 = run () in
      let m2, c2 = run () in
      Alcotest.(check bool)
        (cfg.S.cfg_name ^ " model") true (m1 = m2);
      Alcotest.(check int) (cfg.S.cfg_name ^ " conflicts") c1 c2)
    (S.portfolio 4)

(* {1 Differential fuzzing} *)

let check_differential ?portfolio seed =
  let st = Random.State.make [| seed |] in
  let circuit = Gen_circuit.random_circuit st ~num_nodes:25 ~num_regs:3 in
  let property =
    Gen_circuit.random_property st circuit ~num_asserts:(2 + Random.State.int st 4)
  in
  let max_depth = 6 in
  let seq = Bmc.check ~max_depth circuit property in
  let par = Parallel.check ~jobs ?portfolio ~max_depth circuit property in
  match (seq, par) with
  | Bmc.Bounded_proof _, Bmc.Bounded_proof _ -> true
  | Bmc.Cex (c1, _), Bmc.Cex (c2, _) ->
      (* Outcome kind and depth must agree exactly; the failing set is
         deterministic modulo which equally-shallow CEX wins, so instead
         of comparing sets we require the parallel trace to replay on
         the interpreter against the FULL property with the exact
         failing set the engine reported. *)
      c1.Bmc.cex_depth = c2.Bmc.cex_depth
      && List.sort compare c2.Bmc.cex_failed
         = List.sort compare
             (Bmc.validate c2.Bmc.cex_circuit property c2.Bmc.cex_inputs
                c2.Bmc.cex_depth)
  | _ -> false

let fuzz ?portfolio ~count name =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name
       QCheck.(make Gen.(int_bound 1_000_000))
       (check_differential ?portfolio))

let () =
  Alcotest.run "parallel"
    [
      ( "engine",
        [
          Alcotest.test_case "shard agrees with sequential" `Quick test_shard_agrees;
          Alcotest.test_case "shard bounded proof" `Quick test_shard_bounded;
          Alcotest.test_case "portfolio agrees with sequential" `Quick
            test_portfolio_agrees;
          Alcotest.test_case "parallel induction refutes" `Quick test_prove_refuted;
          Alcotest.test_case "parallel induction proves" `Quick test_prove_proved;
          Alcotest.test_case "progress on calling domain" `Quick
            test_progress_calling_domain;
          Alcotest.test_case "equiv interface mismatch raises" `Quick
            test_equiv_mismatch;
          Alcotest.test_case "equiv of identical circuits" `Quick test_equiv_parallel;
          Alcotest.test_case "portfolio configs are deterministic" `Quick
            test_config_determinism;
        ] );
      ( "fuzz",
        [
          fuzz ~count:200 "sharded parallel == sequential";
          fuzz ~portfolio:3 ~count:60 "portfolio == sequential";
        ] );
    ]

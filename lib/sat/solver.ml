(* CDCL SAT solver in the MiniSat lineage.

   Literal encoding: literal [2*v] is variable [v], literal [2*v+1] is its
   negation. Assignment encoding per variable: 0 = unassigned, 1 = true,
   2 = false; the value of a literal flips 1<->2 via [lxor 3] when the
   literal is negative.

   Invariants:
   - The two watched literals of every live clause are at positions 0 and 1.
   - When a clause becomes the reason of an implied literal, that literal
     is at position 0 (conflict analysis relies on this).
   - The trail holds assigned literals in assignment order; [trail_lim]
     marks decision-level boundaries. Assumption decisions occupy the
     lowest levels during a [solve] call. *)

type lit = int
type result = Sat | Unsat

(* A solver configuration. All search heuristics that are safe to vary
   without affecting soundness live here, so that a portfolio can race
   differently-configured solvers on the same query. Every field is
   deterministic: two solvers built from the same configuration and fed
   the same clauses perform the same search (randomized decisions come
   from a PRNG seeded by [seed]). *)
type config = {
  cfg_name : string;
  var_decay : float; (* VSIDS decay, in (0, 1); MiniSat uses 0.95 *)
  restart_first : int; (* conflicts in the first Luby restart period *)
  default_polarity : bool; (* initial saved phase of fresh variables *)
  random_freq : float; (* probability of a randomized decision, in [0, 1] *)
  seed : int; (* PRNG seed for randomized decisions *)
}

let default_config =
  {
    cfg_name = "default";
    var_decay = 0.95;
    restart_first = 100;
    default_polarity = false;
    random_freq = 0.0;
    seed = 0;
  }

(* Diverse configurations for portfolio solving. Index 0 is always the
   default configuration so a 1-solver portfolio degenerates to the
   sequential engine. *)
let portfolio k =
  let decays = [| 0.95; 0.85; 0.99; 0.91 |] in
  let restarts = [| 100; 50; 400; 150 |] in
  List.init k (fun i ->
      if i = 0 then default_config
      else
        {
          cfg_name = Printf.sprintf "p%d" i;
          var_decay = decays.(i mod 4);
          restart_first = restarts.((i + 1) mod 4);
          default_polarity = i mod 2 = 1;
          random_freq = (if i >= 4 then 0.02 else 0.0);
          seed = (91 * i) + 17;
        })

exception Stopped

type budget_kind = Wall_clock | Conflicts | Memory

type budget = {
  b_deadline : float option;
  b_conflicts : int option;
  b_learnts : int option;
  b_clock : unit -> float;
}

let no_budget =
  { b_deadline = None; b_conflicts = None; b_learnts = None; b_clock = (fun () -> 0.) }

exception Out_of_budget of budget_kind

let budget_kind_to_string = function
  | Wall_clock -> "wall_clock"
  | Conflicts -> "conflicts"
  | Memory -> "memory"

type interrupt = I_stopped | I_budget of budget_kind

type clause = {
  lits : int array;
  learnt : bool;
  mutable cact : float;
  mutable deleted : bool;
}

let dummy_clause = { lits = [||]; learnt = false; cact = 0.; deleted = true }

type t = {
  config : config;
  rng : Random.State.t;
  stop : unit -> bool; (* polled during propagation; true aborts the search *)
  mutable assigns : int array; (* var -> 0/1/2 *)
  mutable level : int array;
  mutable reason : clause array; (* dummy_clause = no reason *)
  mutable activity : float array;
  mutable polarity : bool array; (* saved phase: last assigned value *)
  mutable heap : int array;
  mutable heap_index : int array; (* -1 when not in heap *)
  mutable heap_size : int;
  mutable watches : clause Vec.t array; (* indexed by literal *)
  mutable seen : bool array;
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable nvars : int;
  mutable ok : bool;
  mutable model : bool array;
  mutable model_valid : bool;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable reduces : int;
  mutable learned_total : int;
  (* Periodic statistics sampling: [sample_hook] (when installed) runs
     every [sample_every] conflicts, on the domain running the solve.
     The telemetry layer hooks this to publish solver-progress curves;
     with no hook the per-conflict cost is one comparison. *)
  mutable sample_every : int;
  mutable sample_hook : (stats -> unit) option;
  (* Resource governance: [budget] bounds this instance; [interrupt]
     records why the last solve aborted, so reports can tell budget
     exhaustion from external cancellation. *)
  mutable budget : budget;
  mutable interrupt : interrupt option;
  (* External early-exhaustion request ([trip_budget]): set from a
     sample hook (which must not raise into the search loop itself),
     consumed at the next [check_budget] poll as a normal budget
     abort. *)
  mutable tripped : budget_kind option;
  (* Counter snapshots taken at every [solve] entry, so [last_solve] can
     report the work of the most recent query alone — the number an
     incremental caller wants when the cumulative counters span many
     queries. *)
  mutable base_conflicts : int;
  mutable base_decisions : int;
  mutable base_propagations : int;
  mutable base_restarts : int;
  mutable base_reduces : int;
  mutable base_learned : int;
}

and stats = {
  s_vars : int;
  s_clauses : int;
  s_learnts : int;
  s_conflicts : int;
  s_decisions : int;
  s_propagations : int;
  s_restarts : int;
  s_reduces : int;
  s_learned_total : int;
  s_interrupt : interrupt option;
}

let lit v sign = if sign then 2 * v else (2 * v) + 1
let neg l = l lxor 1
let var_of_lit l = l lsr 1
let lit_sign l = l land 1 = 0

let create ?(config = default_config) ?(stop = fun () -> false) () =
  {
    config;
    rng = Random.State.make [| config.seed; 0x5a7; config.seed lxor 0x2c9 |];
    stop;
    assigns = Array.make 16 0;
    level = Array.make 16 0;
    reason = Array.make 16 dummy_clause;
    activity = Array.make 16 0.;
    polarity = Array.make 16 config.default_polarity;
    heap = Array.make 16 0;
    heap_index = Array.make 16 (-1);
    heap_size = 0;
    watches = Array.init 32 (fun _ -> Vec.create dummy_clause);
    seen = Array.make 16 false;
    trail = Vec.create 0;
    trail_lim = Vec.create 0;
    qhead = 0;
    clauses = Vec.create dummy_clause;
    learnts = Vec.create dummy_clause;
    var_inc = 1.0;
    cla_inc = 1.0;
    nvars = 0;
    ok = true;
    model = [||];
    model_valid = false;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    reduces = 0;
    learned_total = 0;
    sample_every = 0;
    sample_hook = None;
    budget = no_budget;
    interrupt = None;
    tripped = None;
    base_conflicts = 0;
    base_decisions = 0;
    base_propagations = 0;
    base_restarts = 0;
    base_reduces = 0;
    base_learned = 0;
  }

let set_budget s b = s.budget <- b

let num_vars s = s.nvars
let num_clauses s = Vec.size s.clauses
let num_learnts s = Vec.size s.learnts
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations

let stats s =
  {
    s_vars = s.nvars;
    s_clauses = Vec.size s.clauses;
    s_learnts = Vec.size s.learnts;
    s_conflicts = s.conflicts;
    s_decisions = s.decisions;
    s_propagations = s.propagations;
    s_restarts = s.restarts;
    s_reduces = s.reduces;
    s_learned_total = s.learned_total;
    s_interrupt = s.interrupt;
  }

(* The delta view: cumulative counters minus the snapshot taken when the
   last [solve] began. Size-like fields (vars, clauses, live learnts) are
   absolute — a delta of those is meaningless. *)
let last_solve s =
  {
    s_vars = s.nvars;
    s_clauses = Vec.size s.clauses;
    s_learnts = Vec.size s.learnts;
    s_conflicts = s.conflicts - s.base_conflicts;
    s_decisions = s.decisions - s.base_decisions;
    s_propagations = s.propagations - s.base_propagations;
    s_restarts = s.restarts - s.base_restarts;
    s_reduces = s.reduces - s.base_reduces;
    s_learned_total = s.learned_total - s.base_learned;
    s_interrupt = s.interrupt;
  }

(* Abort helpers: every interruption path records its cause before
   unwinding, so [stats] can report it after the exception. *)
let abort_stopped s =
  s.interrupt <- Some I_stopped;
  raise Stopped

let abort_budget s kind =
  s.interrupt <- Some (I_budget kind);
  raise (Out_of_budget kind)

(* Budget poll, shared by the propagation cancellation point and the
   solve entry. The conflict cap is checked where conflicts happen (in
   the search loop); here we watch the clock and the learnt watermark. *)
let check_budget s =
  (match s.tripped with
  | Some kind ->
      (* Clear before aborting so the solver stays reusable after the
         exception is handled (a retry with a fresh budget must not
         re-trip on entry). *)
      s.tripped <- None;
      abort_budget s kind
  | None -> ());
  (match s.budget.b_deadline with
  | Some d when s.budget.b_clock () > d -> abort_budget s Wall_clock
  | _ -> ());
  match s.budget.b_learnts with
  | Some m when Vec.size s.learnts > m -> abort_budget s Memory
  | _ -> ()

let trip_budget s kind = s.tripped <- Some kind

let on_sample s ~every hook =
  if every <= 0 then invalid_arg "Sat.Solver.on_sample: every must be positive";
  s.sample_every <- every;
  s.sample_hook <- Some hook

let clear_sample s =
  s.sample_every <- 0;
  s.sample_hook <- None

(* {1 Variable order: binary max-heap on activity} *)

let heap_lt s a b = s.activity.(a) > s.activity.(b)

let rec sift_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_lt s s.heap.(i) s.heap.(parent) then begin
      let a = s.heap.(i) and b = s.heap.(parent) in
      s.heap.(i) <- b;
      s.heap.(parent) <- a;
      s.heap_index.(b) <- i;
      s.heap_index.(a) <- parent;
      sift_up s parent
    end
  end

let rec sift_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && heap_lt s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_size && heap_lt s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    let a = s.heap.(i) and b = s.heap.(!best) in
    s.heap.(i) <- b;
    s.heap.(!best) <- a;
    s.heap_index.(b) <- i;
    s.heap_index.(a) <- !best;
    sift_down s !best
  end

let heap_insert s v =
  if s.heap_index.(v) < 0 then begin
    s.heap.(s.heap_size) <- v;
    s.heap_index.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    sift_up s (s.heap_size - 1)
  end

let heap_pop s =
  let top = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap_index.(top) <- -1;
  if s.heap_size > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_size);
    s.heap_index.(s.heap.(0)) <- 0;
    sift_down s 0
  end;
  top

(* {1 Growth} *)

let grow_array a n dummy =
  if Array.length a >= n then a
  else begin
    let a' = Array.make (max n (2 * Array.length a)) dummy in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  let n = s.nvars in
  s.assigns <- grow_array s.assigns n 0;
  s.level <- grow_array s.level n 0;
  s.reason <- grow_array s.reason n dummy_clause;
  s.activity <- grow_array s.activity n 0.;
  s.polarity <- grow_array s.polarity n s.config.default_polarity;
  s.heap <- grow_array s.heap n 0;
  s.seen <- grow_array s.seen n false;
  if Array.length s.heap_index < n then begin
    let old = s.heap_index in
    let a' = Array.make (max n (2 * Array.length old)) (-1) in
    Array.blit old 0 a' 0 (Array.length old);
    s.heap_index <- a'
  end;
  if Array.length s.watches < 2 * n then begin
    let old = s.watches in
    let a' =
      Array.init (max (2 * n) (2 * Array.length old)) (fun i ->
          if i < Array.length old then old.(i) else Vec.create dummy_clause)
    in
    s.watches <- a'
  end;
  heap_insert s v;
  v

(* {1 Values and assignment} *)

let value_lit s l = match s.assigns.(l lsr 1) with 0 -> 0 | a -> if l land 1 = 0 then a else a lxor 3

let decision_level s = Vec.size s.trail_lim

(* Make literal [l] true with the given reason. Precondition: unassigned. *)
let assign s l reason =
  let v = l lsr 1 in
  s.assigns.(v) <- (if l land 1 = 0 then 1 else 2);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.polarity.(v) <- l land 1 = 0;
  Vec.push s.trail l

(* Returns false on inconsistency (literal already false). *)
let enqueue s l reason =
  match value_lit s l with
  | 1 -> true
  | 2 -> false
  | _ ->
      assign s l reason;
      true

let cancel_until s lv =
  if decision_level s > lv then begin
    let bound = Vec.get s.trail_lim lv in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = l lsr 1 in
      s.assigns.(v) <- 0;
      s.reason.(v) <- dummy_clause;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lv;
    s.qhead <- bound
  end

(* {1 Activities} *)

let cla_decay = 1.0 /. 0.999

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_index.(v) >= 0 then sift_up s s.heap_index.(v)

let bump_clause s c =
  c.cact <- c.cact +. s.cla_inc;
  if c.cact > 1e20 then begin
    Vec.iter (fun c -> c.cact <- c.cact *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let decay_activities s =
  s.var_inc <- s.var_inc *. (1.0 /. s.config.var_decay);
  s.cla_inc <- s.cla_inc *. cla_decay

(* {1 Propagation} *)

exception Conflict of clause

let propagate s =
  try
    while s.qhead < Vec.size s.trail do
      let p = Vec.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      (* Cancellation point: cheap modulo check so the poll costs nothing
         on the hot path; a firing stop or an exhausted budget aborts the
         whole solve and leaves the solver in an undefined search state
         (see {!Stopped} / {!Out_of_budget}). *)
      if s.propagations land 1023 = 0 then begin
        if s.stop () then abort_stopped s;
        check_budget s
      end;
      let false_lit = neg p in
      let ws = s.watches.(false_lit) in
      let n = Vec.size ws in
      let j = ref 0 in
      (try
         let i = ref 0 in
         while !i < n do
           let c = Vec.get ws !i in
           incr i;
           if not c.deleted then begin
             (* Ensure the false literal is at position 1. *)
             if c.lits.(0) = false_lit then begin
               c.lits.(0) <- c.lits.(1);
               c.lits.(1) <- false_lit
             end;
             let first = c.lits.(0) in
             if value_lit s first = 1 then begin
               (* Clause satisfied; keep the watch. *)
               Vec.set ws !j c;
               incr j
             end
             else begin
               (* Look for a replacement watch. *)
               let len = Array.length c.lits in
               let k = ref 2 in
               while !k < len && value_lit s c.lits.(!k) = 2 do
                 incr k
               done;
               if !k < len then begin
                 c.lits.(1) <- c.lits.(!k);
                 c.lits.(!k) <- false_lit;
                 Vec.push s.watches.(c.lits.(1)) c
               end
               else begin
                 (* Unit or conflicting. *)
                 Vec.set ws !j c;
                 incr j;
                 if not (enqueue s first c) then begin
                   (* Conflict: keep the remaining watchers and abort. *)
                   while !i < n do
                     Vec.set ws !j (Vec.get ws !i);
                     incr j;
                     incr i
                   done;
                   Vec.shrink ws !j;
                   raise (Conflict c)
                 end
               end
             end
           end
         done;
         Vec.shrink ws !j
       with Conflict _ as e -> raise e)
    done;
    None
  with Conflict c -> Some c

(* {1 Conflict analysis (first UIP)} *)

let analyze s confl =
  let learnt = ref [] in
  let to_clear = ref [] in
  let counter = ref 0 in
  let btlevel = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let idx = ref (Vec.size s.trail - 1) in
  let continue = ref true in
  let first = ref true in
  while !continue do
    let c = !confl in
    if c.learnt then bump_clause s c;
    let start = if !first then 0 else 1 in
    for j = start to Array.length c.lits - 1 do
      let q = c.lits.(j) in
      let v = q lsr 1 in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        to_clear := v :: !to_clear;
        bump_var s v;
        if s.level.(v) >= decision_level s then incr counter
        else begin
          learnt := q :: !learnt;
          if s.level.(v) > !btlevel then btlevel := s.level.(v)
        end
      end
    done;
    (* Walk the trail back to the next marked literal. *)
    while not s.seen.((Vec.get s.trail !idx) lsr 1) do
      decr idx
    done;
    p := Vec.get s.trail !idx;
    decr idx;
    s.seen.(!p lsr 1) <- false;
    decr counter;
    first := false;
    if !counter = 0 then continue := false else confl := s.reason.(!p lsr 1)
  done;
  (* Conflict-clause minimization: a literal is redundant when its reason's
     antecedents are all either at level 0, already in the clause (still
     marked seen), or recursively redundant. Memoized per variable; the
     reason graph is acyclic towards earlier trail positions. *)
  let redundant q =
    (* Local (non-recursive) check, as in basic MiniSat minimization. *)
    let c = s.reason.(q lsr 1) in
    c != dummy_clause
    && Array.length c.lits > 1
    &&
    let ok = ref true in
    for j = 1 to Array.length c.lits - 1 do
      let w = c.lits.(j) lsr 1 in
      if s.level.(w) > 0 && not s.seen.(w) then ok := false
    done;
    !ok
  in
  let learnt = List.filter (fun q -> not (redundant q)) !learnt in
  let btlevel =
    List.fold_left (fun acc q -> max acc s.level.(q lsr 1)) 0 learnt
  in
  List.iter (fun v -> s.seen.(v) <- false) !to_clear;
  (Array.of_list (neg !p :: learnt), btlevel)

(* {1 Clause management} *)

let watch_clause s c =
  Vec.push s.watches.(c.lits.(0)) c;
  Vec.push s.watches.(c.lits.(1)) c

let is_locked s c =
  Array.length c.lits > 0
  &&
  let v = c.lits.(0) lsr 1 in
  s.reason.(v) == c && s.assigns.(v) <> 0

let reduce_db s =
  s.reduces <- s.reduces + 1;
  (* Remove the less active half of the learnt clauses. *)
  let arr = Array.init (Vec.size s.learnts) (Vec.get s.learnts) in
  Array.sort (fun a b -> compare a.cact b.cact) arr;
  let limit = Array.length arr / 2 in
  Array.iteri
    (fun i c ->
      if i < limit && Array.length c.lits > 2 && not (is_locked s c) then
        c.deleted <- true)
    arr;
  let keep = Array.to_list arr |> List.filter (fun c -> not c.deleted) in
  Vec.clear s.learnts;
  List.iter (Vec.push s.learnts) keep

let record_learnt s lits btlevel =
  s.learned_total <- s.learned_total + 1;
  cancel_until s btlevel;
  if Array.length lits = 1 then begin
    if not (enqueue s lits.(0) dummy_clause) then s.ok <- false
  end
  else begin
    (* Position 1 must hold a literal from the backtrack level so the
       watches are on the two highest-level literals. *)
    let best = ref 1 in
    for k = 2 to Array.length lits - 1 do
      if s.level.(lits.(!best) lsr 1) < s.level.(lits.(k) lsr 1) then best := k
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!best);
    lits.(!best) <- tmp;
    let c = { lits; learnt = true; cact = 0.; deleted = false } in
    bump_clause s c;
    watch_clause s c;
    Vec.push s.learnts c;
    ignore (enqueue s lits.(0) c)
  end

let add_clause s lits =
  if s.ok then begin
    assert (decision_level s = 0);
    (* Simplify: drop duplicates and false literals, detect tautologies and
       satisfied clauses. *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (neg l) lits) lits
      || List.exists (fun l -> value_lit s l = 1) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> value_lit s l <> 2) lits in
      match lits with
      | [] -> s.ok <- false
      | [ l ] -> if not (enqueue s l dummy_clause) then s.ok <- false
      | _ ->
          let c =
            { lits = Array.of_list lits; learnt = false; cact = 0.; deleted = false }
          in
          watch_clause s c;
          Vec.push s.clauses c
    end
  end

(* {1 Search} *)

let luby y x =
  (* Luby restart sequence, as in MiniSat. *)
  let rec find_size size seq x = if size < x + 1 then find_size ((2 * size) + 1) (seq + 1) x else (size, seq) in
  let rec go size seq x =
    if size - 1 = x then Float.pow y (float_of_int seq)
    else
      let size = (size - 1) / 2 in
      let seq = seq - 1 in
      go size seq (x mod size)
  in
  let size, seq = find_size 1 0 x in
  go size seq x

let decide s =
  let rec pick () =
    if s.heap_size = 0 then -1
    else
      let v = heap_pop s in
      if s.assigns.(v) = 0 then v else pick ()
  in
  (* Occasional randomized decision (portfolio diversification): peek at a
     random heap slot without disturbing the heap; assigned entries are
     skipped, falling back to the activity order. *)
  let random_pick () =
    if
      s.config.random_freq > 0.0
      && s.heap_size > 0
      && Random.State.float s.rng 1.0 < s.config.random_freq
    then
      let v = s.heap.(Random.State.int s.rng s.heap_size) in
      if s.assigns.(v) = 0 then v else -1
    else -1
  in
  let v = match random_pick () with -1 -> pick () | v -> v in
  if v < 0 then false
  else begin
    s.decisions <- s.decisions + 1;
    Vec.push s.trail_lim (Vec.size s.trail);
    assign s (lit v s.polarity.(v)) dummy_clause;
    true
  end

let solve ?(assumptions = []) s =
  s.model_valid <- false;
  s.interrupt <- None;
  s.base_conflicts <- s.conflicts;
  s.base_decisions <- s.decisions;
  s.base_propagations <- s.propagations;
  s.base_restarts <- s.restarts;
  s.base_reduces <- s.reduces;
  s.base_learned <- s.learned_total;
  if not s.ok then Unsat
  else begin
    (* A deadline that already passed (or a conflict cap already spent by
       earlier incremental calls) must abort even if this query would
       propagate to an answer without ever reaching a poll point. *)
    check_budget s;
    (match s.budget.b_conflicts with
    | Some cap when s.conflicts >= cap -> abort_budget s Conflicts
    | _ -> ());
    let assumptions = Array.of_list assumptions in
    let max_learnts = ref (float_of_int (max 1000 (Vec.size s.clauses / 3))) in
    let restart = ref 0 in
    let status = ref None in
    while !status = None do
      let budget =
        int_of_float (float_of_int s.config.restart_first *. luby 2. !restart)
      in
      incr restart;
      let conflict_count = ref 0 in
      (* One restart period. *)
      let inner_done = ref false in
      while (not !inner_done) && !status = None do
        match propagate s with
        | Some confl ->
            s.conflicts <- s.conflicts + 1;
            incr conflict_count;
            (match s.budget.b_conflicts with
            | Some cap when s.conflicts >= cap -> abort_budget s Conflicts
            | _ -> ());
            (match s.sample_hook with
            | Some hook when s.conflicts mod s.sample_every = 0 -> hook (stats s)
            | _ -> ());
            if decision_level s = 0 then begin
              s.ok <- false;
              status := Some Unsat
            end
            else begin
              let learnt, btlevel = analyze s confl in
              record_learnt s learnt btlevel;
              decay_activities s;
              if not s.ok then status := Some Unsat
            end
        | None ->
            if !conflict_count >= budget then begin
              s.restarts <- s.restarts + 1;
              cancel_until s 0;
              inner_done := true
            end
            else if float_of_int (Vec.size s.learnts) > !max_learnts then begin
              max_learnts := !max_learnts *. 1.5;
              reduce_db s
            end
            else if decision_level s < Array.length assumptions then begin
              let p = assumptions.(decision_level s) in
              match value_lit s p with
              | 1 ->
                  (* Already true: open a dummy decision level. *)
                  Vec.push s.trail_lim (Vec.size s.trail)
              | 2 -> status := Some Unsat
              | _ ->
                  Vec.push s.trail_lim (Vec.size s.trail);
                  assign s p dummy_clause
            end
            else if not (decide s) then begin
              (* All variables assigned: a model. *)
              s.model <- Array.init s.nvars (fun v -> s.assigns.(v) = 1);
              s.model_valid <- true;
              status := Some Sat
            end
      done
    done;
    cancel_until s 0;
    s.qhead <- 0;
    (match !status with
    | Some Sat -> ()
    | _ -> s.model_valid <- false);
    Option.get !status
  end

let value s v =
  if not s.model_valid then failwith "Sat.value: no model available";
  if v < Array.length s.model then s.model.(v) else false

(* {1 Activation literals}

   The incremental-BMC protocol: guard a clause group with a fresh
   literal [a] by adding each clause as [¬a ∨ C], solve under the
   assumption [a] to activate the group, and retire the group forever
   with the unit clause [¬a] — after which every guarded clause is
   satisfied at level 0 and {!simplify} may physically delete it. *)

let new_act s = lit (new_var s) true
let add_clause_act s ~act lits = add_clause s (neg act :: lits)
let retire s act = add_clause s [ neg act ]

(* Delete every clause satisfied at level 0 (retired groups, subsumed
   problem clauses, satisfied learnts) and rebuild the watch lists.

   Safe at decision level 0 only. Reason clauses of level-0 implied
   literals are kept ([is_locked]) even when satisfied: level-0 vars are
   never unassigned, and keeping their reasons means no dangling
   pointer question ever arises. Every surviving clause's watch
   positions 0/1 are non-false at the level-0 fixpoint (propagation
   moved the watches, or the clause was satisfied and is now gone), so
   re-watching positions 0 and 1 preserves the watch invariant. *)
let simplify s =
  if s.ok then begin
    assert (decision_level s = 0);
    (match propagate s with Some _ -> s.ok <- false | None -> ());
    if s.ok then begin
      let compact vec =
        let keep = ref [] in
        Vec.iter
          (fun c ->
            if
              (not c.deleted)
              && (not (is_locked s c))
              && Array.exists (fun l -> value_lit s l = 1) c.lits
            then c.deleted <- true;
            if not c.deleted then keep := c :: !keep)
          vec;
        Vec.clear vec;
        List.iter (Vec.push vec) (List.rev !keep)
      in
      compact s.clauses;
      compact s.learnts;
      for l = 0 to (2 * s.nvars) - 1 do
        Vec.clear s.watches.(l)
      done;
      Vec.iter (fun c -> watch_clause s c) s.clauses;
      Vec.iter (fun c -> watch_clause s c) s.learnts
    end
  end

let config s = s.config

let pp_stats fmt s =
  Format.fprintf fmt
    "vars=%d clauses=%d learnts=%d conflicts=%d decisions=%d propagations=%d \
     restarts=%d reduces=%d"
    s.nvars (Vec.size s.clauses) (Vec.size s.learnts) s.conflicts s.decisions
    s.propagations s.restarts s.reduces

(** A CDCL SAT solver.

    Conflict-driven clause learning in the MiniSat lineage: two-watched-
    literal propagation, first-UIP conflict analysis, VSIDS variable
    activities with phase saving, Luby restarts, and activity-based
    deletion of learned clauses.

    The solver is incremental: clauses and variables may be added between
    {!solve} calls, and each call may carry a list of assumption literals
    that hold only for that call — the mechanism {!Bmc} uses to activate
    per-depth constraints. *)

type t

type lit = private int
(** A literal; obtain with {!lit} or {!neg}. *)

type result = Sat | Unsat

type config = {
  cfg_name : string;  (** label used in portfolio reports *)
  var_decay : float;  (** VSIDS activity decay, in (0, 1) *)
  restart_first : int;  (** conflicts in the first Luby restart period *)
  default_polarity : bool;  (** initial saved phase of fresh variables *)
  random_freq : float;  (** probability of a randomized decision *)
  seed : int;  (** PRNG seed for randomized decisions *)
}
(** Search-heuristic knobs, none of which affect soundness. A solver's
    behaviour is a deterministic function of its configuration and the
    clause/solve sequence it is fed: randomized decisions draw from a
    private PRNG seeded by [seed], so two solvers with equal
    configurations run identical searches — the property the portfolio
    mode of {!Parallel} relies on before racing configurations across
    domains. *)

val default_config : config

val portfolio : int -> config list
(** [portfolio k] is [k] diverse configurations (varying decay, restart
    cadence, default polarity and decision randomization). The first is
    always {!default_config}. *)

exception Stopped
(** Raised from inside {!solve} when the [stop] hook passed to {!create}
    returns true. After [Stopped] the solver's search state is undefined
    and the instance must be discarded — the mechanism used to cancel
    still-running jobs once a counterexample is found elsewhere. *)

(** {1 Resource budgets}

    Long unattended campaigns need a solver that {e gives up} instead of
    hanging: a budget bounds one solver instance by wall-clock deadline,
    cumulative conflicts, and a live learnt-clause watermark (the memory
    proxy — learnt clauses are where an incremental CDCL instance's
    footprint grows without bound). Budgets compose with the [stop]
    hook, and exhaustion is distinguishable from external cancellation:
    a fired budget raises {!Out_of_budget} (never {!Stopped}) and leaves
    its cause in {!stats}[.s_interrupt]. *)

type budget_kind =
  | Wall_clock  (** the deadline passed *)
  | Conflicts  (** the cumulative conflict cap was hit *)
  | Memory  (** the live learnt-clause watermark was crossed *)

type budget = {
  b_deadline : float option;
      (** absolute time on the [b_clock] axis after which {!solve}
          aborts; checked at the propagation poll point *)
  b_conflicts : int option;  (** cap on this instance's total conflicts *)
  b_learnts : int option;  (** watermark on live learnt clauses *)
  b_clock : unit -> float;
      (** the clock [b_deadline] is measured against — supplied by the
          caller so this library stays dependency-free (and so tests can
          mock time); consulted only when a deadline is set *)
}

val no_budget : budget
(** No limits; [b_clock] is never called. *)

exception Out_of_budget of budget_kind
(** Raised from inside {!solve} when a budget is exhausted. Exactly like
    {!Stopped}, the search state is afterwards undefined and the
    instance must be discarded; unlike {!Stopped}, the cause is a
    resource limit, not an external cancellation. *)

val budget_kind_to_string : budget_kind -> string
(** ["wall_clock" | "conflicts" | "memory"] — the machine-readable names
    used in reports and JSON artifacts. *)

val create : ?config:config -> ?stop:(unit -> bool) -> unit -> t
(** [create ()] uses {!default_config} and a never-firing stop hook.
    [stop] is polled from the propagation loop (roughly once per thousand
    propagations); it must be cheap and safe to call from the domain
    running the solve. *)

val set_budget : t -> budget -> unit
(** Install (or replace, between [solve]s) the instance's budget.
    Freshly-created solvers carry {!no_budget}. *)

val trip_budget : t -> budget_kind -> unit
(** Request early budget exhaustion: the next budget poll inside
    {!solve} aborts with [Out_of_budget kind] exactly as if the real
    limit had fired. Safe to call from an {!on_sample} hook (which must
    not raise into the search loop itself) — this is how a solver-health
    watchdog hands a stalled query to the retry schedule without the
    solver depending on the telemetry layer. The request is consumed by
    the abort, so a later [solve] (e.g. a retry with a fresh budget)
    starts clean. *)

val config : t -> config

val new_var : t -> int
(** Allocate a fresh variable; returns its id (>= 0). *)

val num_vars : t -> int

val lit : int -> bool -> lit
(** [lit v sign] is [v] when [sign], [¬v] otherwise. *)

val neg : lit -> lit
val var_of_lit : lit -> int
val lit_sign : lit -> bool

val add_clause : t -> lit list -> unit
(** Add a clause. Adding the empty clause (or a clause that simplifies to
    it) makes the instance permanently unsatisfiable. All variables must
    have been allocated. *)

val solve : ?assumptions:lit list -> t -> result
(** Solve under the given assumptions. After [Sat], {!value} reads the
    model. After [Unsat] under assumptions, the solver remains usable. *)

(** {1 Activation literals}

    The protocol behind incremental BMC: a clause group guarded by a
    fresh activation literal [a] is dormant until a {!solve} call
    carries [a] as an assumption, and is permanently disabled by
    {!retire} — the unit clause [¬a] — after which {!simplify} may
    physically delete the group. Learnt clauses derived while [a] was
    assumed mention [¬a] wherever they depend on the group, so they
    remain sound (and become satisfied, then collectable) once the
    group is retired. *)

val new_act : t -> lit
(** A fresh activation literal (a positive literal over a fresh
    variable). *)

val add_clause_act : t -> act:lit -> lit list -> unit
(** [add_clause_act s ~act c] adds the guarded clause [¬act ∨ c]: inert
    until [act] is assumed, indistinguishable from a plain clause while
    it is. *)

val retire : t -> lit -> unit
(** [retire s act] adds the unit clause [¬act], permanently disabling
    every clause guarded by [act]. The guarded clauses keep consuming
    watch-list slots until the next {!simplify}. *)

val simplify : t -> unit
(** Physically delete every clause satisfied at decision level 0 —
    retired groups and any clause satisfied by a root-level fact — and
    rebuild the watch lists. Callable only between [solve]s. Cheap
    relative to a solve (one pass over the clause database), so call it
    after retiring a large group rather than after every query. *)

val value : t -> int -> bool
(** Model value of a variable after a [Sat] answer. Unconstrained
    variables read [false]. Raises [Failure] if the last call was not
    satisfiable. *)

val num_clauses : t -> int
val num_learnts : t -> int
val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int

(** {1 Statistics and sampling}

    The solver keeps this library dependency-free: it exposes a plain
    stats struct and a periodic callback, and the telemetry layer
    ({!Obs}) is wired in by callers ({!Bmc}) that can see both. *)

type interrupt =
  | I_stopped  (** the external [stop] hook fired *)
  | I_budget of budget_kind  (** a resource budget was exhausted *)

type stats = {
  s_vars : int;
  s_clauses : int;  (** problem clauses *)
  s_learnts : int;  (** currently-live learnt clauses *)
  s_conflicts : int;
  s_decisions : int;
  s_propagations : int;
  s_restarts : int;  (** Luby restart periods completed *)
  s_reduces : int;  (** learnt-database reductions *)
  s_learned_total : int;  (** learnt clauses ever recorded (incl. units) *)
  s_interrupt : interrupt option;
      (** why the last {!solve} was aborted, if it was — the field that
          keeps budget exhaustion distinguishable from external
          cancellation in merged reports *)
}

val stats : t -> stats
(** A consistent snapshot; callable between (not during) [solve]s from
    the owning domain, and from the sampling hook. *)

val last_solve : t -> stats
(** Like {!stats}, but the counter fields ([s_conflicts],
    [s_decisions], [s_propagations], [s_restarts], [s_reduces],
    [s_learned_total]) cover only the most recent {!solve} call: each
    call snapshots the cumulative counters on entry and this view
    subtracts the snapshot. Size fields ([s_vars], [s_clauses],
    [s_learnts]) remain absolute. The per-query cost view an
    incremental caller wants when one instance serves many queries. *)

val on_sample : t -> every:int -> (stats -> unit) -> unit
(** Install a hook called every [every] conflicts from inside [solve],
    on the domain running the solve. The hook must be cheap and must not
    call back into the solver. Raises [Invalid_argument] when
    [every <= 0]. With no hook installed the per-conflict overhead is a
    single comparison. *)

val clear_sample : t -> unit

val pp_stats : Format.formatter -> t -> unit

module Signal = Rtl.Signal
module J = Obs.Json

(* {1 Canonical structural hashing}

   One deterministic preorder walk from the property roots assigns
   canonical indices; a second pass serializes every node as (operator
   tag, width, payload, canonical argument indices). The digest of that
   serialization is equal exactly for isomorphic cones: input names
   never enter it (alpha-renaming invariance), and node allocation
   order / uid values never enter it (reordering invariance), while any
   semantic difference — a flipped gate, a changed width, a different
   constant, different wiring — lands in some node record. Register
   initial values are part of the record: they are semantics. *)

type canon = {
  c_digest : string;
  c_inputs : Signal.t array;
  c_nasserts : int;
}

let canon ~assumes ~asserts =
  let roots = assumes @ asserts in
  let ids : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  let count = ref 0 in
  let stack = Stack.create () in
  List.iter
    (fun root ->
      Stack.push root stack;
      while not (Stack.is_empty stack) do
        let s = Stack.pop stack in
        if not (Hashtbl.mem ids (Signal.uid s)) then begin
          Hashtbl.replace ids (Signal.uid s) !count;
          incr count;
          order := s :: !order;
          (* Reverse push so args.(0) is discovered first; a register's
             next-state function is walked like an extra last argument,
             which is how the traversal crosses the feedback loop. *)
          (match Signal.op s with
          | Signal.Reg r -> (
              match r.Signal.next with
              | Some n -> Stack.push n stack
              | None -> ())
          | _ -> ());
          let args = Signal.args s in
          for k = Array.length args - 1 downto 0 do
            Stack.push args.(k) stack
          done
        end
      done)
    roots;
  let nodes = Array.of_list (List.rev !order) in
  let id s = Hashtbl.find ids (Signal.uid s) in
  let buf = Buffer.create (64 * Array.length nodes) in
  Array.iter
    (fun s ->
      (match Signal.op s with
      | Signal.Const v -> Buffer.add_string buf ("c" ^ Bitvec.to_hex_string v)
      | Signal.Input _ -> Buffer.add_char buf 'i'
      | Signal.Reg r ->
          Buffer.add_char buf 'r';
          Buffer.add_string buf (Bitvec.to_hex_string r.Signal.init);
          Buffer.add_char buf '>';
          Buffer.add_string buf
            (match r.Signal.next with
            | Some n -> string_of_int (id n)
            | None -> "-")
      | Signal.Not -> Buffer.add_char buf '!'
      | Signal.And -> Buffer.add_char buf '&'
      | Signal.Or -> Buffer.add_char buf '|'
      | Signal.Xor -> Buffer.add_char buf '^'
      | Signal.Add -> Buffer.add_char buf '+'
      | Signal.Sub -> Buffer.add_char buf '-'
      | Signal.Mul -> Buffer.add_char buf '*'
      | Signal.Eq -> Buffer.add_char buf '='
      | Signal.Ult -> Buffer.add_char buf '<'
      | Signal.Slt -> Buffer.add_char buf 's'
      | Signal.Mux -> Buffer.add_char buf 'm'
      | Signal.Concat -> Buffer.add_char buf '#'
      | Signal.Slice (hi, lo) ->
          Buffer.add_string buf (Printf.sprintf "[%d.%d" hi lo));
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int (Signal.width s));
      Array.iter
        (fun a ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int (id a)))
        (Signal.args s);
      Buffer.add_char buf ';')
    nodes;
  (* Root sections are positional: the i-th assumption / assertion of
     one query corresponds to the i-th of another. *)
  Buffer.add_string buf "|a";
  List.iter
    (fun r ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int (id r)))
    assumes;
  Buffer.add_string buf "|t";
  List.iter
    (fun r ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int (id r)))
    asserts;
  let inputs =
    Array.of_seq
      (Seq.filter
         (fun s -> match Signal.op s with Signal.Input _ -> true | _ -> false)
         (Array.to_seq nodes))
  in
  {
    c_digest = Digest.to_hex (Digest.string (Buffer.contents buf));
    c_inputs = inputs;
    c_nasserts = List.length asserts;
  }

let key c ~config = Digest.to_hex (Digest.string (c.c_digest ^ "\x00" ^ config))

(* {1 Verdicts and their JSONL codec} *)

type cex = {
  v_depth : int;
  v_inputs : (int * Bitvec.t) list array;
  v_failed : int list;
}

type verdict = Bounded of int | Proved of int | Cex of cex

exception Bad_entry

let json_of_bv v =
  J.Str (Printf.sprintf "%d:%s" (Bitvec.width v) (Bitvec.to_hex_string v))

let bv_of_json = function
  | J.Str s -> (
      match String.index_opt s ':' with
      | Some i -> (
          let w = String.sub s 0 i in
          let h = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt w with
          | Some w when w > 0 -> Bitvec.of_hex_string ~width:w h
          | _ -> raise Bad_entry)
      | None -> raise Bad_entry)
  | _ -> raise Bad_entry

let json_of_verdict = function
  | Bounded d -> J.Obj [ ("v", J.Str "bounded"); ("depth", J.Int d) ]
  | Proved k -> J.Obj [ ("v", J.Str "proved"); ("depth", J.Int k) ]
  | Cex { v_depth; v_inputs; v_failed } ->
      J.Obj
        [
          ("v", J.Str "cex");
          ("depth", J.Int v_depth);
          ("failed", J.List (List.map (fun i -> J.Int i) v_failed));
          ( "inputs",
            J.List
              (Array.to_list
                 (Array.map
                    (fun cycle ->
                      J.Obj
                        (List.map
                           (fun (ord, v) -> (string_of_int ord, json_of_bv v))
                           cycle))
                    v_inputs)) );
        ]

let int_of_json = function J.Int i -> i | _ -> raise Bad_entry

let member name j =
  match J.member name j with Some v -> v | None -> raise Bad_entry

(* {1 Provenance}

   Who earned a verdict: the producing process's ledger run id, the
   engine, and the full config fingerprint that went into the key. The
   record rides the JSONL line as an optional "p" field OUTSIDE the
   integrity digest (which stays over the verdict payload alone), so
   stores written before provenance existed still parse — they just
   answer [None] to "who made this". Provenance is descriptive, never
   load-bearing: no verdict decision reads it. *)

type prov = {
  p_run : string;
  p_engine : string;
  p_config : string;
  p_key : string;
  p_ts : float;
}

let json_of_prov p =
  J.Obj
    [
      ("run", J.Str p.p_run);
      ("engine", J.Str p.p_engine);
      ("config", J.Str p.p_config);
      ("key", J.Str p.p_key);
      ("ts", J.Float p.p_ts);
    ]

let prov_of_json j =
  match
    (J.member "run" j, J.member "engine" j, J.member "config" j,
     J.member "key" j)
  with
  | Some (J.Str r), Some (J.Str e), Some (J.Str c), Some (J.Str k) ->
      Some
        {
          p_run = r;
          p_engine = e;
          p_config = c;
          p_key = k;
          p_ts =
            (match J.member "ts" j with
            | Some (J.Float f) -> f
            | Some (J.Int n) -> float_of_int n
            | _ -> 0.);
        }
  | _ -> None

let verdict_of_json j =
  match member "v" j with
  | J.Str "bounded" -> Bounded (int_of_json (member "depth" j))
  | J.Str "proved" -> Proved (int_of_json (member "depth" j))
  | J.Str "cex" ->
      let cycles =
        match member "inputs" j with J.List l -> l | _ -> raise Bad_entry
      in
      Cex
        {
          v_depth = int_of_json (member "depth" j);
          v_failed =
            (match member "failed" j with
            | J.List l -> List.map int_of_json l
            | _ -> raise Bad_entry);
          v_inputs =
            Array.of_list
              (List.map
                 (function
                   | J.Obj fields ->
                       List.map
                         (fun (k, v) ->
                           match int_of_string_opt k with
                           | Some ord when ord >= 0 -> (ord, bv_of_json v)
                           | _ -> raise Bad_entry)
                         fields
                   | _ -> raise Bad_entry)
                 cycles);
        }
  | _ -> raise Bad_entry

(* {1 Store} *)

type stats = {
  hits : int;
  misses : int;
  stores : int;
  rejects : int;
  evictions : int;
  size : int;
}

type t = {
  table : (string, verdict * prov option) Hashtbl.t;
  mutex : Mutex.t;
  mutable chan : out_channel option;
  path : string option;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable rejects : int;
  mutable evictions : int;
}

let m_hits = lazy (Obs.Metrics.counter "cache.hits")
let m_misses = lazy (Obs.Metrics.counter "cache.misses")
let m_stores = lazy (Obs.Metrics.counter "cache.stores")
let m_rejects = lazy (Obs.Metrics.counter "cache.rejects")
let m_evictions = lazy (Obs.Metrics.counter "cache.evictions")
let m_size = lazy (Obs.Metrics.gauge "cache.size")

let count m = if Obs.Metrics.enabled () then Obs.Metrics.add (Lazy.force m) 1

let gauge_size t =
  if Obs.Metrics.enabled () then
    Obs.Metrics.set (Lazy.force m_size)
      (float_of_int (Hashtbl.length t.table))

(* A disk line is {"k":key,"d":md5(payload),"v":payload,"p":prov?}: the
   digest is computed over the canonical printing of the payload JSON,
   which is re-derivable at load because the printer is deterministic.
   The provenance field is optional and outside the digest (see above). *)
let parse_line line =
  match J.parse line with
  | Error _ -> None
  | Ok j -> (
      try
        match (member "k" j, member "d" j) with
        | J.Str k, J.Str d ->
            let payload = member "v" j in
            if Digest.to_hex (Digest.string (J.to_string payload)) <> d then
              None
            else
              let prov =
                match J.member "p" j with
                | Some pj -> prov_of_json pj
                | None -> None
              in
              Some (k, verdict_of_json payload, prov)
        | _ -> None
      with Bad_entry -> None)

let create ?dir () =
  let table = Hashtbl.create 64 in
  let rejects = ref 0 in
  let chan, path =
    match dir with
    | None -> (None, None)
    | Some d ->
        (try if not (Sys.file_exists d) then Sys.mkdir d 0o755
         with Sys_error _ -> ());
        let path = Filename.concat d "verdicts.jsonl" in
        (if Sys.file_exists path then
           try
             let ic = open_in path in
             Fun.protect
               ~finally:(fun () -> close_in_noerr ic)
               (fun () ->
                 try
                   while true do
                     let line = input_line ic in
                     if String.trim line <> "" then
                       match parse_line line with
                       (* Later lines supersede earlier ones: a
                          recomputed verdict wins over the stale entry
                          it replaced. *)
                       | Some (k, v, p) -> Hashtbl.replace table k (v, p)
                       | None -> incr rejects
                   done
                 with End_of_file -> ())
           with Sys_error _ -> ());
        let oc =
          try Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
          with Sys_error _ -> None
        in
        (oc, Some path)
  in
  let t =
    {
      table;
      mutex = Mutex.create ();
      chan;
      path;
      hits = 0;
      misses = 0;
      stores = 0;
      rejects = !rejects;
      evictions = 0;
    }
  in
  gauge_size t;
  t

let dir t = Option.map Filename.dirname t.path

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t k =
  Obs.span "cache.lookup" @@ fun () ->
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table k with
  | Some (v, _) ->
      t.hits <- t.hits + 1;
      count m_hits;
      Obs.Bus.publish Obs.Bus.Cache_hit;
      Some v
  | None ->
      t.misses <- t.misses + 1;
      count m_misses;
      Obs.Bus.publish Obs.Bus.Cache_miss;
      None

(* Audit lookup: no counters, no bus traffic — `autocc why` inspecting
   a store must not perturb its hit/miss statistics. *)
let peek t k = locked t @@ fun () -> Hashtbl.find_opt t.table k

let add ?prov t k v =
  locked t @@ fun () ->
  Hashtbl.replace t.table k (v, prov);
  t.stores <- t.stores + 1;
  count m_stores;
  gauge_size t;
  match t.chan with
  | None -> ()
  | Some oc -> (
      let payload = json_of_verdict v in
      let line =
        J.to_string
          (J.Obj
             ([
                ("k", J.Str k);
                ( "d",
                  J.Str (Digest.to_hex (Digest.string (J.to_string payload))) );
                ("v", payload);
              ]
             @
             match prov with
             | Some p -> [ ("p", json_of_prov p) ]
             | None -> []))
      in
      (* The fault site models a torn/partial write: the injected path
         persists a truncated line — which load-time integrity checking
         must reject — and the store degrades to memory-only. Verdicts
         already live in the table either way; persistence failures can
         never surface as answers. *)
      try
        Fault.point "cache.store";
        output_string oc line;
        output_char oc '\n';
        flush oc
      with
      | Fault.Injected _ ->
          (try
             output_string oc (String.sub line 0 (String.length line / 2));
             output_char oc '\n';
             flush oc
           with Sys_error _ -> ());
          t.chan <- None
      | Sys_error _ -> t.chan <- None)

let remove t k =
  locked t @@ fun () ->
  if Hashtbl.mem t.table k then begin
    Hashtbl.remove t.table k;
    (* An eviction is also a reject (the entry failed revalidation) —
       [rejects] keeps its historical "anything distrusted" meaning
       while [evictions] isolates live removals from load-time parse
       failures. *)
    t.rejects <- t.rejects + 1;
    count m_rejects;
    t.evictions <- t.evictions + 1;
    count m_evictions;
    gauge_size t
  end

let stats t =
  locked t @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    stores = t.stores;
    rejects = t.rejects;
    evictions = t.evictions;
    size = Hashtbl.length t.table;
  }

(** Content-addressed verdict cache.

    A verification query is a pure function of the property cone's
    {e structure} and of the engine configuration: two queries whose
    netlist DAGs are isomorphic (same operators, same wiring, same
    constants — names are immaterial) and whose configuration
    fingerprints match must produce the same verdict. This module
    exploits that: {!canon} computes a canonical, order-independent
    digest of the cone reachable from a property's roots, {!key} folds
    in the configuration, and {!t} memoizes conclusive verdicts behind
    that key — in memory, and optionally on disk as append-only JSONL
    with a per-entry integrity digest, so repeated proofs and re-runs
    of edited DUTs skip straight to the verdict.

    Only conclusive verdicts are cacheable: a bounded proof at exactly
    the queried depth, a full inductive proof, or a counterexample.
    [Unknown] verdicts (budget exhaustion, faults, bound exhaustion of
    [prove]) are never stored — they depend on transient resource state,
    not on the query.

    Soundness does not rest on the hash alone: the BMC layer re-validates
    every cached counterexample against the fresh circuit on the
    simulator before trusting it, and rejects (and recomputes) entries
    whose replay fails. Disk entries additionally carry an MD5 digest of
    their payload; a corrupted or torn line is rejected at load time and
    counted, never surfaced. *)

(** {1 Canonical structural hashing} *)

type canon = {
  c_digest : string;
      (** Hex digest of the canonical serialization of the cone. Equal
          for alpha-renamed or reordered-but-isomorphic DAGs; different
          whenever any reachable operator, wiring, width or constant
          differs. *)
  c_inputs : Rtl.Signal.t array;
      (** The [Input] nodes of the cone, in canonical (deterministic
          traversal) order. A counterexample is serialized against these
          ordinals, so it re-materializes correctly on any isomorphic
          circuit regardless of input names. *)
  c_nasserts : int;  (** Number of assertion roots hashed. *)
}

val canon :
  assumes:Rtl.Signal.t list -> asserts:Rtl.Signal.t list -> canon
(** [canon ~assumes ~asserts] walks the DAG reachable from the property
    roots (assumptions first, then assertions, both positional) —
    through register next-state functions — assigning canonical indices
    in traversal order, and digests the per-node records (operator,
    width, constant payloads, canonical argument indices). Input {e
    names} are deliberately excluded: inputs are identified by their
    structural position only. *)

val key : canon -> config:string -> string
(** Final cache key: the structural digest combined with an opaque
    configuration fingerprint (engine, depth bound, opt level, solver
    config, budget, …) built by the caller. Distinct configurations
    never share entries. *)

(** {1 Verdicts} *)

type cex = {
  v_depth : int;
  v_inputs : (int * Bitvec.t) list array;
      (** Per cycle: assignments keyed by canonical input ordinal (an
          index into {!canon.c_inputs} of the cone the entry was stored
          against). *)
  v_failed : int list;
      (** Ordinals (positions in the assert list) of the failing
          assertions — advisory; the replaying engine recomputes them. *)
}

type verdict =
  | Bounded of int  (** no assertion fails up to (inclusive) this depth *)
  | Proved of int  (** k-induction succeeded at this k *)
  | Cex of cex

(** {1 Provenance}

    Who earned a verdict. The record is attached at store time, rides
    the JSONL line as an optional field {e outside} the integrity digest
    (pre-provenance stores still load; they answer [None]), and is
    surfaced by [autocc why] to audit a warm hit back to the run that
    carried the solve. Provenance is descriptive only — no verdict
    decision ever reads it. *)

type prov = {
  p_run : string;  (** producing process's {!Obs.Ledger.run_id} *)
  p_engine : string;  (** ["check"] or ["prove"] *)
  p_config : string;  (** the full config fingerprint behind the key *)
  p_key : string;  (** the cache key itself (self-describing lines) *)
  p_ts : float;  (** store time, seconds since the epoch *)
}

(** {1 Store} *)

type t
(** A verdict store: an in-memory table, optionally backed by an
    append-only [verdicts.jsonl] in a cache directory. One instance may
    be shared by concurrent domains (operations are mutex-guarded; the
    sharing engine keeps a single writer). *)

type stats = {
  hits : int;
  misses : int;
  stores : int;
  rejects : int;
      (** everything ever distrusted: load-time parse/digest failures
          plus live evictions *)
  evictions : int;  (** live {!remove}s alone (a subset of [rejects]) *)
  size : int;  (** entries currently in the table *)
}

val create : ?dir:string -> unit -> t
(** [create ()] is a purely in-memory cache. [create ~dir ()] loads any
    existing [dir/verdicts.jsonl] (creating [dir] if needed) — rejecting
    and counting lines that fail to parse or whose integrity digest does
    not match — and appends every subsequent store to it. The disk store
    is best-effort: I/O errors (and injected [cache.store] faults)
    degrade to memory-only operation and can never affect verdicts. *)

val find : t -> string -> verdict option
(** Guarded lookup; counts a hit or a miss, under a [cache.lookup]
    telemetry span. *)

val peek : t -> string -> (verdict * prov option) option
(** Audit lookup for [autocc why]: the entry plus its provenance,
    without touching the hit/miss counters or publishing bus events. *)

val add : ?prov:prov -> t -> string -> verdict -> unit
(** Memoize a conclusive verdict, appending it to the disk store when
    one is attached. The write path contains the [cache.store] fault
    site: an injected fault simulates a torn write (a truncated line
    that load-time integrity checking must reject) instead of raising. *)

val remove : t -> string -> unit
(** Drop an entry whose payload failed downstream validation (e.g. a
    cached counterexample that no longer replays); counted as both a
    reject and an eviction. The recomputed verdict's subsequent {!add}
    supersedes the stale disk line (last write wins at load). *)

val stats : t -> stats
(** Counters since [create] (loads count neither hits nor misses;
    load-time corruption counts as rejects). *)

val dir : t -> string option
(** The attached cache directory, if any. *)

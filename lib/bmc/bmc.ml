module S = Sat.Solver
module Signal = Rtl.Signal
module Circuit = Rtl.Circuit

type property = {
  assumes : Rtl.Signal.t list;
  asserts : (string * Rtl.Signal.t) list;
}

type cex = {
  cex_depth : int;
  cex_inputs : (string * Bitvec.t) list array;
  cex_failed : string list;
  cex_circuit : Rtl.Circuit.t;
}

type stats = {
  depth_reached : int;
  solve_time : float;
  vars : int;
  clauses : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  opt : Opt.stats option;
}

type budget = {
  bud_wall_s : float option;
  bud_conflicts : int option;
  bud_learnts : int option;
}

let no_budget = { bud_wall_s = None; bud_conflicts = None; bud_learnts = None }

let budget ?wall_s ?conflicts ?learnts () =
  let pos what = function
    | Some v when v <= 0 -> invalid_arg ("Bmc.budget: " ^ what ^ " must be positive")
    | o -> o
  in
  (match wall_s with
  | Some s when s <= 0. -> invalid_arg "Bmc.budget: wall_s must be positive"
  | _ -> ());
  {
    bud_wall_s = wall_s;
    bud_conflicts = pos "conflicts" conflicts;
    bud_learnts = pos "learnts" learnts;
  }

type case = Base | Step

type unknown_reason =
  | Bound_exhausted
  | Budget_exhausted of {
      ub_budget : S.budget_kind;
      ub_depth : int;
      ub_case : case;
    }
  | Faulted of string

let case_to_string = function Base -> "base" | Step -> "step"

let unknown_reason_to_string = function
  | Bound_exhausted -> "bound"
  | Budget_exhausted { ub_budget; ub_depth; ub_case } ->
      Printf.sprintf "budget:%s@%d:%s"
        (S.budget_kind_to_string ub_budget)
        ub_depth (case_to_string ub_case)
  | Faulted site -> "fault:" ^ site

let pp_unknown_reason fmt r =
  Format.pp_print_string fmt (unknown_reason_to_string r)

type outcome =
  | Cex of cex * stats
  | Bounded_proof of stats
  | Unknown of unknown_reason * stats

exception Replay_mismatch of string
exception Cancelled of stats

(* Relative budget -> absolute solver budget: the deadline is pinned to
   the wall clock at engine entry, so retries get a fresh allowance. *)
let solver_budget b =
  match (b.bud_wall_s, b.bud_conflicts, b.bud_learnts) with
  | None, None, None -> S.no_budget
  | _ ->
      let clock = Unix.gettimeofday in
      {
        S.b_deadline = Option.map (fun s -> clock () +. s) b.bud_wall_s;
        b_conflicts = b.bud_conflicts;
        b_learnts = b.bud_learnts;
        b_clock = clock;
      }

(* Compose the fault probe into the stop hook: an armed [sat.stop] site
   raises {!Fault.Injected} from the polling points, which the engine
   downgrades to [Unknown (Faulted _)] — distinguishable from a real
   external cancellation, which raises {!Sat.Solver.Stopped}. *)
let fault_stop stop () =
  Fault.point "sat.stop";
  stop ()

let check_width_1 what s =
  if Signal.width s <> 1 then
    invalid_arg (Printf.sprintf "Bmc: %s signal must be 1 bit wide" what)

let replay cex =
  let sim = Sim.create cex.cex_circuit in
  sim

let replay_values cex signals =
  let sim = replay cex in
  Sim.watch sim signals;
  Sim.run sim cex.cex_inputs;
  Sim.waveform sim

(* Validate a candidate CEX on the interpreter: all assumptions must hold
   on cycles 0..depth and some named assertion must be false at [depth]. *)
let validate circuit property inputs depth =
  let sim = Sim.create circuit in
  let failed = ref [] in
  Array.iteri
    (fun cycle assignments ->
      List.iter (fun (n, v) -> Sim.set_input sim n v) assignments;
      List.iter
        (fun a ->
          if Bitvec.is_zero (Sim.peek sim a) then
            raise
              (Replay_mismatch
                 (Printf.sprintf "assumption violated at cycle %d in replay" cycle)))
        property.assumes;
      if cycle = depth then
        failed :=
          List.filter_map
            (fun (name, a) ->
              if Bitvec.is_zero (Sim.peek sim a) then Some name else None)
            property.asserts;
      Sim.step sim)
    inputs;
  if !failed = [] then
    raise (Replay_mismatch "no assertion failed at CEX depth in replay");
  !failed

let check_property what property =
  List.iter (check_width_1 "assume") property.assumes;
  List.iter (fun (_, s) -> check_width_1 "assert" s) property.asserts;
  if property.asserts = [] then invalid_arg (what ^ ": no assertions")

(* Property signals are usually fresh nodes over the circuit's graph;
   elaborate an extended circuit that carries them as outputs so that the
   blaster and the replay simulator both know them. Creates no new signal
   nodes, so it is safe to call from worker domains. Idempotent: ports
   from an earlier instrumentation (a {!preoptimize}d circuit) are
   dropped before the current property's are appended. *)
let is_prop_port name =
  String.length name >= 6 && String.sub name 0 6 = "__bmc_"

let instrument circuit property =
  Rtl.Circuit.create
    ~name:(Rtl.Circuit.name circuit ^ "_prop")
    ~outputs:
      (List.filter_map
         (fun p ->
           if is_prop_port p.Circuit.port_name then None
           else Some (p.Circuit.port_name, p.Circuit.signal))
         (Circuit.outputs circuit)
      @ List.mapi (fun i a -> (Printf.sprintf "__bmc_assume_%d" i, a)) property.assumes
      @ List.map (fun (n, a) -> ("__bmc_assert_" ^ n, a)) property.asserts)
    ()

(* Output names the optimizer must keep: the property signals. *)
let prop_output_names property =
  List.mapi (fun i _ -> Printf.sprintf "__bmc_assume_%d" i) property.assumes
  @ List.map (fun (n, _) -> "__bmc_assert_" ^ n) property.asserts

(* Optimize the instrumented circuit around the property cone. Returns
   the circuit to blast, the property re-rooted into it, and a widening
   function taking a CEX input trace of the slim circuit back to a full
   assignment of the original instrumented circuit's inputs
   (cone-dropped inputs are provably irrelevant, so zeros do) — the CEX
   is then validated against the unoptimized circuit, which catches any
   optimizer unsoundness as a {!Replay_mismatch}. Symmetric-universe
   pairs are re-rooted alongside the property; pairs whose cone the
   optimizer dropped, or that it merged into one node, disappear (the
   blaster re-verifies the survivors structurally anyway). *)
let map_sym o sym =
  List.filter_map
    (fun (a, b) ->
      match (o.Opt.opt_map a, o.Opt.opt_map b) with
      | a', b' when a' != b' -> Some (a', b')
      | _ -> None
      | exception Not_found -> None)
    sym

let optimize_instrumented ?sweep_solver ~opt ?(sym = []) full property =
  match opt with
  | Opt.O0 -> (full, property, (fun inputs -> inputs), None, sym)
  | _ ->
      let o =
        Opt.optimize ~level:opt ?sweep_solver
          ~keep_outputs:(prop_output_names property) full
      in
      let property' =
        {
          assumes = List.map o.Opt.opt_map property.assumes;
          asserts = List.map (fun (n, a) -> (n, o.Opt.opt_map a)) property.asserts;
        }
      in
      let widen inputs =
        Array.map
          (fun assignments ->
            List.map
              (fun p ->
                let name = p.Circuit.port_name in
                match List.assoc_opt name assignments with
                | Some v -> (name, v)
                | None -> (name, Bitvec.zero (Signal.width p.Circuit.signal)))
              (Circuit.inputs full))
          inputs
      in
      (o.Opt.opt_circuit, property', widen, Some o.Opt.opt_stats, map_sym o sym)

(* Instrument + optimize once, outside any engine: callers that run the
   same circuit/property through several engines (benchmarks comparing
   them, a portfolio) can pay the optimizer once and hand each engine
   the slim circuit with [~opt:O0]. *)
let preoptimize ?(opt = Opt.O2) ?(sym = []) circuit property =
  check_property "Bmc.preoptimize" property;
  let full = instrument circuit property in
  let circuit', property', _, stats, sym' =
    optimize_instrumented ~opt ~sym full property
  in
  (circuit', property', sym', stats)

(* {1 Telemetry}

   The solver stays dependency-free; this is where its sampling hook and
   final counters get wired into {!Obs}. Counters are global atomics, so
   worker domains running concurrent checks all fold into one total. *)

let m_sat_conflicts = lazy (Obs.Metrics.counter "sat.conflicts")
let m_sat_decisions = lazy (Obs.Metrics.counter "sat.decisions")
let m_sat_propagations = lazy (Obs.Metrics.counter "sat.propagations")
let m_sat_restarts = lazy (Obs.Metrics.counter "sat.restarts")
let m_sat_reduces = lazy (Obs.Metrics.counter "sat.reduces")
let m_sat_learned = lazy (Obs.Metrics.counter "sat.learned_clauses")
let m_depth_seconds = lazy (Obs.Metrics.series "bmc.depth_seconds")

(* Emit solver-progress counter tracks while tracing, feed the solver
   health watchdog, and publish progress/stall events on the bus. The
   hook runs on the domain executing the solve. A stalled query with
   [p_rebudget] set trips the solver budget: the query surfaces as
   [Out_of_budget Wall_clock] -> [Unknown (Budget_exhausted ...)], which
   the retry schedule already treats as transient — the "rebudget early"
   hint without [lib/sat] ever depending on [lib/obs]. *)
let attach_sampling label solver =
  if Obs.enabled () then begin
    let policy = Obs.Watchdog.policy () in
    let dog =
      Obs.Watchdog.create ~policy
        ~on_stall:(fun ~cps:_ ~lps:_ ->
          if policy.Obs.Watchdog.p_rebudget then
            S.trip_budget solver S.Wall_clock)
        ()
    in
    S.on_sample solver ~every:policy.Obs.Watchdog.p_every (fun st ->
        Obs.counter_event ("sat." ^ label)
          [
            ("conflicts", float_of_int st.S.s_conflicts);
            ("propagations", float_of_int st.S.s_propagations);
            ("learnts", float_of_int st.S.s_learnts);
          ];
        Obs.Watchdog.feed dog ~conflicts:st.S.s_conflicts
          ~learnts:st.S.s_learned_total ~now:(Unix.gettimeofday ());
        if Obs.Bus.enabled () then begin
          let cps = Obs.Watchdog.conflicts_per_s dog in
          if not (Float.is_nan cps) then
            Obs.Bus.publish
              (Obs.Bus.Solver_progress
                 {
                   conflicts = st.S.s_conflicts;
                   learnts = st.S.s_learnts;
                   conflicts_per_s = cps;
                 })
        end)
  end

(* Fold a run's final solver counters into the metric registry; each
   engine entry point calls this exactly once, on any exit path. *)
let flush_solver_metrics solvers =
  if Obs.Metrics.enabled () then
    List.iter
      (fun solver ->
        let st = S.stats solver in
        Obs.Metrics.add (Lazy.force m_sat_conflicts) st.S.s_conflicts;
        Obs.Metrics.add (Lazy.force m_sat_decisions) st.S.s_decisions;
        Obs.Metrics.add (Lazy.force m_sat_propagations) st.S.s_propagations;
        Obs.Metrics.add (Lazy.force m_sat_restarts) st.S.s_restarts;
        Obs.Metrics.add (Lazy.force m_sat_reduces) st.S.s_reduces;
        Obs.Metrics.add (Lazy.force m_sat_learned) st.S.s_learned_total)
      solvers

(* The incremental engine: ONE solver instance lives for the whole run.
   The optimizer's sweep queries run on it first (guarded, then retired
   and simplified away — see {!Opt.optimize}), then each depth adds only
   the new transition frame (a [Template] instantiation) and selects the
   per-depth property via an activation literal: clauses [¬act_k ∨ …]
   are inert until [solve ~assumptions:[act_k]], and a depth moving on
   retires [act_k] with a unit clause. Learnt clauses and variable
   activity therefore survive across depths — the amortization the whole
   refactor is for. *)
let check_incremental ~max_depth ~progress ?solver_config ~stop ~opt ~budget
    ~sym circuit property =
  check_property "Bmc.check" property;
  let full = instrument circuit property in
  let stop = fault_stop stop in
  let solve_time = ref 0. in
  let cur_depth = ref 0 in
  (* Filled in as the run sets up, so that abort paths (budget, fault,
     cancellation) can report honest statistics even when the failure
     precedes solver creation (e.g. a fault inside an opt pass). *)
  let solver_ref = ref None in
  let opt_ref = ref None in
  let stats depth =
    match !solver_ref with
    | None ->
        {
          depth_reached = depth;
          solve_time = !solve_time;
          vars = 0;
          clauses = 0;
          conflicts = 0;
          decisions = 0;
          propagations = 0;
          restarts = 0;
          opt = !opt_ref;
        }
    | Some solver ->
        flush_solver_metrics [ solver ];
        let st = S.stats solver in
        {
          depth_reached = depth;
          solve_time = !solve_time;
          vars = st.S.s_vars;
          clauses = st.S.s_clauses;
          conflicts = st.S.s_conflicts;
          decisions = st.S.s_decisions;
          propagations = st.S.s_propagations;
          restarts = st.S.s_restarts;
          opt = !opt_ref;
        }
  in
  let run () =
  let solver = S.create ?config:solver_config ~stop () in
  S.set_budget solver (solver_budget budget);
  solver_ref := Some solver;
  attach_sampling "check" solver;
  (* The O2 sweep borrows the persistent solver: its queries obey this
     run's budget/stop hooks, and the search heuristics arrive at depth
     0 already warm. *)
  let circuit, sprop, widen, opt_stats, sym =
    optimize_instrumented ~sweep_solver:solver ~opt ~sym full property
  in
  opt_ref := opt_stats;
  let blaster =
    Cnf.Blast.create ~mode:Cnf.Blast.Template ~sym solver circuit
  in
  let timed_solve ~depth ~assumptions () =
    Obs.span "sat.solve" ~attrs:[ ("depth", Obs.Json.Int depth) ] @@ fun () ->
    let t0 = Unix.gettimeofday () in
    let r = S.solve ~assumptions solver in
    solve_time := !solve_time +. (Unix.gettimeofday () -. t0);
    r
  in
  let rec go depth =
    if depth > max_depth then Bounded_proof (stats max_depth)
    else begin
      cur_depth := depth;
      if stop () then raise S.Stopped;
      progress depth;
      let t_depth = Unix.gettimeofday () in
      let found =
        Obs.span "bmc.depth" ~attrs:[ ("depth", Obs.Json.Int depth) ]
        @@ fun () ->
        Obs.log ~attrs:[ ("depth", Obs.Json.Int depth) ] Debug "bmc.depth";
        (* Fault probe for the incremental path: fires between depth
           [k-1]'s clean verdict and depth [k]'s clause addition, so the
           robustness fuzz can hit the solver-reuse window specifically. *)
        if depth > 0 then Fault.point "bmc.incr";
        Fault.point "bmc.alloc";
        Cnf.Blast.unroll_cycle blaster;
        (* Assumptions hold unconditionally on every cycle. *)
        List.iter
          (fun a ->
            S.add_clause solver [ Cnf.Blast.lit1 blaster ~cycle:depth a ])
          sprop.assumes;
        (* Activation literal: act -> (some assertion is false at [depth]). *)
        let act = Cnf.Blast.fresh_var blaster in
        S.add_clause solver
          (S.neg act
          :: List.map
               (fun (_, a) -> S.neg (Cnf.Blast.lit1 blaster ~cycle:depth a))
               sprop.asserts);
        match timed_solve ~depth ~assumptions:[ act ] () with
        | S.Sat ->
            let inputs =
              Array.init (depth + 1) (fun cycle ->
                  List.map
                    (fun p ->
                      ( p.Circuit.port_name,
                        Cnf.Blast.input_value blaster ~cycle p.Circuit.port_name
                      ))
                    (Circuit.inputs circuit))
            in
            (* Replay on the unoptimized instrumented circuit with the
               original property roots. *)
            let inputs = widen inputs in
            let failed = validate full property inputs depth in
            Obs.instant ~attrs:[ ("depth", Obs.Json.Int depth) ] "bmc.cex";
            Obs.log
              ~attrs:
                [
                  ("depth", Obs.Json.Int depth);
                  ( "failed",
                    Obs.Json.List (List.map (fun n -> Obs.Json.Str n) failed)
                  );
                ]
              Info "bmc.cex";
            Some
              (Cex
                 ( {
                     cex_depth = depth;
                     cex_inputs = inputs;
                     cex_failed = failed;
                     cex_circuit = full;
                   },
                   stats depth ))
        | S.Unsat ->
            (* No failure at this depth: deactivate and assert the properties
               as facts for deeper searches. *)
            S.add_clause solver [ S.neg act ];
            List.iter
              (fun (_, a) ->
                S.add_clause solver [ Cnf.Blast.lit1 blaster ~cycle:depth a ])
              sprop.asserts;
            None
      in
      let depth_s = Unix.gettimeofday () -. t_depth in
      if Obs.Metrics.enabled () then
        Obs.Metrics.record (Lazy.force m_depth_seconds) depth_s;
      (match found with
      | Some _ -> Obs.Bus.publish (Obs.Bus.Cex_found { depth })
      | None ->
          Obs.Bus.publish (Obs.Bus.Depth_solved { depth; seconds = depth_s }));
      match found with Some outcome -> outcome | None -> go (depth + 1)
    end
  in
  go 0
  in
  try run () with
  | S.Stopped -> raise (Cancelled (stats !cur_depth))
  | S.Out_of_budget kind ->
      Unknown
        ( Budget_exhausted
            { ub_budget = kind; ub_depth = !cur_depth; ub_case = Base },
          stats (!cur_depth - 1) )
  | Fault.Injected site ->
      Obs.Bus.publish (Obs.Bus.Fault_injected { site });
      Unknown (Faulted site, stats (!cur_depth - 1))

(* The scratch oracle (`--no-incremental`): every depth gets a fresh
   solver and a fresh [Direct] re-blast of cycles 0..k, so nothing —
   learnt clauses, activity, watch lists — survives between depths. Its
   value is not speed (it is quadratic in depth) but independence: a
   different CNF shape and a different search trajectory that must still
   agree with the incremental engine on verdict and CEX depth, which is
   what the differential harness checks.

   Semantics mirror the incremental engine: facts proven at earlier
   depths (no assertion fails before k) are re-asserted, so both report
   the shallowest failing depth. The wall deadline is pinned once at
   entry and shared by every per-depth solver; the conflict cap is
   cumulative — depth k's solver receives the cap minus what earlier
   depths spent — so [Out_of_budget] fires when the run as a whole
   exceeds the grant and the report stays clean up to depth k-1. *)
let check_scratch ~max_depth ~progress ?solver_config ~stop ~opt ~budget
    circuit property =
  check_property "Bmc.check" property;
  let full = instrument circuit property in
  let stop = fault_stop stop in
  let solve_time = ref 0. in
  let cur_depth = ref 0 in
  let opt_ref = ref None in
  let sbud = solver_budget budget in
  (* Counters fold in as each per-depth solver retires; the size fields
     track the deepest (= largest) instance. *)
  let acc_conflicts = ref 0 and acc_decisions = ref 0 in
  let acc_propagations = ref 0 and acc_restarts = ref 0 in
  let last_vars = ref 0 and last_clauses = ref 0 in
  let live = ref None in
  let retire_solver () =
    match !live with
    | None -> ()
    | Some solver ->
        flush_solver_metrics [ solver ];
        let st = S.stats solver in
        acc_conflicts := !acc_conflicts + st.S.s_conflicts;
        acc_decisions := !acc_decisions + st.S.s_decisions;
        acc_propagations := !acc_propagations + st.S.s_propagations;
        acc_restarts := !acc_restarts + st.S.s_restarts;
        last_vars := st.S.s_vars;
        last_clauses := st.S.s_clauses;
        live := None
  in
  let stats depth =
    retire_solver ();
    {
      depth_reached = depth;
      solve_time = !solve_time;
      vars = !last_vars;
      clauses = !last_clauses;
      conflicts = !acc_conflicts;
      decisions = !acc_decisions;
      propagations = !acc_propagations;
      restarts = !acc_restarts;
      opt = !opt_ref;
    }
  in
  let run () =
    let circuit, sprop, widen, opt_stats, _ =
      optimize_instrumented ~opt full property
    in
    opt_ref := opt_stats;
    let rec go depth =
      if depth > max_depth then Bounded_proof (stats max_depth)
      else begin
        cur_depth := depth;
        if stop () then raise S.Stopped;
        progress depth;
        let t_depth = Unix.gettimeofday () in
        let found =
          Obs.span "bmc.depth" ~attrs:[ ("depth", Obs.Json.Int depth) ]
          @@ fun () ->
          Obs.log ~attrs:[ ("depth", Obs.Json.Int depth) ] Debug "bmc.depth";
          Fault.point "bmc.alloc";
          let solver = S.create ?config:solver_config ~stop () in
          S.set_budget solver
            {
              sbud with
              S.b_conflicts =
                Option.map
                  (fun cap -> cap - !acc_conflicts)
                  budget.bud_conflicts;
            };
          attach_sampling "check" solver;
          live := Some solver;
          let blaster = Cnf.Blast.create solver circuit in
          for cycle = 0 to depth do
            Cnf.Blast.unroll_cycle blaster;
            List.iter
              (fun a -> S.add_clause solver [ Cnf.Blast.lit1 blaster ~cycle a ])
              sprop.assumes;
            if cycle < depth then
              List.iter
                (fun (_, a) ->
                  S.add_clause solver [ Cnf.Blast.lit1 blaster ~cycle a ])
                sprop.asserts
          done;
          let act = Cnf.Blast.fresh_var blaster in
          S.add_clause solver
            (S.neg act
            :: List.map
                 (fun (_, a) -> S.neg (Cnf.Blast.lit1 blaster ~cycle:depth a))
                 sprop.asserts);
          let r =
            Obs.span "sat.solve" ~attrs:[ ("depth", Obs.Json.Int depth) ]
            @@ fun () ->
            let t0 = Unix.gettimeofday () in
            let r = S.solve ~assumptions:[ act ] solver in
            solve_time := !solve_time +. (Unix.gettimeofday () -. t0);
            r
          in
          match r with
          | S.Sat ->
              let inputs =
                Array.init (depth + 1) (fun cycle ->
                    List.map
                      (fun p ->
                        ( p.Circuit.port_name,
                          Cnf.Blast.input_value blaster ~cycle
                            p.Circuit.port_name ))
                      (Circuit.inputs circuit))
              in
              let inputs = widen inputs in
              let failed = validate full property inputs depth in
              Obs.instant ~attrs:[ ("depth", Obs.Json.Int depth) ] "bmc.cex";
              Some
                (Cex
                   ( {
                       cex_depth = depth;
                       cex_inputs = inputs;
                       cex_failed = failed;
                       cex_circuit = full;
                     },
                     stats depth ))
          | S.Unsat ->
              retire_solver ();
              None
        in
        let depth_s = Unix.gettimeofday () -. t_depth in
        if Obs.Metrics.enabled () then
          Obs.Metrics.record (Lazy.force m_depth_seconds) depth_s;
        (match found with
        | Some _ -> Obs.Bus.publish (Obs.Bus.Cex_found { depth })
        | None ->
            Obs.Bus.publish (Obs.Bus.Depth_solved { depth; seconds = depth_s }));
        match found with Some outcome -> outcome | None -> go (depth + 1)
      end
    in
    go 0
  in
  try run () with
  | S.Stopped -> raise (Cancelled (stats !cur_depth))
  | S.Out_of_budget kind ->
      Unknown
        ( Budget_exhausted
            { ub_budget = kind; ub_depth = !cur_depth; ub_case = Base },
          stats (!cur_depth - 1) )
  | Fault.Injected site ->
      Obs.Bus.publish (Obs.Bus.Fault_injected { site });
      Unknown (Faulted site, stats (!cur_depth - 1))

(* {1 Verdict cache}

   The cache fronts the engines: the key is {!Cache.canon} over the
   property cone (structure only — isomorphic, alpha-renamed circuits
   share entries) combined with a fingerprint of everything else that
   could influence the verdict: engine, depth bound, opt level, engine
   variant, solver configuration and budget. Only conclusive verdicts
   are stored, and a cached counterexample is never trusted as-is: it is
   re-materialized onto the fresh circuit (by canonical input ordinal,
   so names are immaterial) and replayed on the simulator; a failed
   replay evicts the entry and falls through to a fresh run. A cache hit
   can therefore never flip a verdict a fresh run would have produced:
   Bounded/Proved entries assert exactly what the identical query
   proved, and Cex entries carry their own machine-checkable witness. *)

let cache_config ~engine ~max_depth ~opt ~incremental ~solver_config ~budget =
  let cfg =
    match solver_config with
    | None -> "default"
    | Some c ->
        Printf.sprintf "%s;%g;%d;%b;%g;%d" c.S.cfg_name c.S.var_decay
          c.S.restart_first c.S.default_polarity c.S.random_freq c.S.seed
  in
  let fl = function None -> "-" | Some f -> Printf.sprintf "%g" f in
  let it = function None -> "-" | Some i -> string_of_int i in
  Printf.sprintf "%s|d=%d|o=%d|i=%b|s=%s|b=%s,%s,%s" engine max_depth
    (Opt.level_to_int opt) incremental cfg (fl budget.bud_wall_s)
    (it budget.bud_conflicts) (it budget.bud_learnts)

(* The exact (structural digest, cache key, config fingerprint) triple
   {!check}/{!prove} would use for [property] — what `autocc why`
   recomputes to address the store, and what the run ledger records. *)
let cache_fingerprint ~engine ?(max_depth = 30) ?(opt = Opt.O0)
    ?(incremental = true) ?solver_config ?(budget = no_budget) property =
  let canon =
    Cache.canon ~assumes:property.assumes
      ~asserts:(List.map snd property.asserts)
  in
  let config =
    cache_config ~engine ~max_depth ~opt ~incremental ~solver_config ~budget
  in
  (canon.Cache.c_digest, Cache.key canon ~config, config)

(* Provenance stamped onto every store: this process's ledger run id
   plus the full fingerprint, so a later warm hit is auditable back to
   the run that carried the solve. *)
let prov_now ~engine ~config ~key =
  {
    Cache.p_run = Obs.Ledger.run_id ();
    p_engine = engine;
    p_config = config;
    p_key = key;
    p_ts = Unix.gettimeofday ();
  }

(* On a warm hit, surface who earned the verdict (when a log sink is
   attached): the audit trail costs nothing on the default path. *)
let log_provenance cache key =
  if Obs.logging Obs.Info then
    match Cache.peek cache key with
    | Some (_, Some p) ->
        Obs.log Obs.Info "cache.provenance"
          ~attrs:
            [
              ("key", Obs.Json.Str key);
              ("run", Obs.Json.Str p.Cache.p_run);
              ("engine", Obs.Json.Str p.Cache.p_engine);
              ("config", Obs.Json.Str p.Cache.p_config);
            ]
    | _ -> ()

(* Statistics for a run the cache answered: no solver existed. *)
let hit_stats depth =
  {
    depth_reached = depth;
    solve_time = 0.;
    vars = 0;
    clauses = 0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    opt = None;
  }

let cache_entry_of_cex canon property cex =
  let ord_of_name = Hashtbl.create 16 in
  Array.iteri
    (fun i s ->
      match Signal.op s with
      | Signal.Input n -> Hashtbl.replace ord_of_name n i
      | _ -> ())
    canon.Cache.c_inputs;
  let inputs =
    Array.map
      (fun assignments ->
        List.filter_map
          (fun (n, v) ->
            match Hashtbl.find_opt ord_of_name n with
            | Some i when not (Bitvec.is_zero v) -> Some (i, v)
            | _ -> None)
          assignments)
      cex.cex_inputs
  in
  let failed =
    List.filter_map
      (fun n ->
        let rec pos i = function
          | [] -> None
          | (n', _) :: _ when n' = n -> Some i
          | _ :: rest -> pos (i + 1) rest
        in
        pos 0 property.asserts)
      cex.cex_failed
  in
  { Cache.v_depth = cex.cex_depth; v_inputs = inputs; v_failed = failed }

(* Re-materialize a cached witness onto the current circuit: canonical
   input ordinal -> this circuit's input of the same structural
   position; inputs outside the hashed cone are not part of the entry
   and zeros do (they cannot influence the property). *)
let cex_inputs_of_entry canon full cc =
  let name_of_ord i =
    if i < 0 || i >= Array.length canon.Cache.c_inputs then None
    else
      match Signal.op canon.Cache.c_inputs.(i) with
      | Signal.Input n -> Some n
      | _ -> None
  in
  Array.map
    (fun cycle ->
      let assigned = Hashtbl.create 16 in
      List.iter
        (fun (ord, v) ->
          match name_of_ord ord with
          | Some n -> Hashtbl.replace assigned n v
          | None -> ())
        cycle;
      List.map
        (fun p ->
          let n = p.Circuit.port_name in
          match Hashtbl.find_opt assigned n with
          | Some v when Bitvec.width v = Signal.width p.Circuit.signal ->
              (n, v)
          | _ -> (n, Bitvec.zero (Signal.width p.Circuit.signal)))
        (Circuit.inputs full))
    cc.Cache.v_inputs

(* The soundness backstop: a cached counterexample is only surfaced if
   it replays as a genuine violation on the fresh circuit. Anything
   else — wrong depth, wrong shape, stale structure that slipped
   through a hash collision — evicts the entry and reports a miss. *)
let revalidate_cached_cex cache key canon full property max_depth cc =
  if
    cc.Cache.v_depth < 0
    || cc.Cache.v_depth > max_depth
    || Array.length cc.Cache.v_inputs <> cc.Cache.v_depth + 1
  then begin
    Cache.remove cache key;
    None
  end
  else
    let inputs = cex_inputs_of_entry canon full cc in
    match validate full property inputs cc.Cache.v_depth with
    | failed ->
        Obs.instant "cache.cex_replayed";
        Some
          {
            cex_depth = cc.Cache.v_depth;
            cex_inputs = inputs;
            cex_failed = failed;
            cex_circuit = full;
          }
    | exception Replay_mismatch _ ->
        Cache.remove cache key;
        None

let cached_check cache key canon full property max_depth =
  match Cache.find cache key with
  | None -> None
  | Some (Cache.Bounded d) when d = max_depth ->
      log_provenance cache key;
      Some (Bounded_proof (hit_stats d))
  | Some (Cache.Bounded _) | Some (Cache.Proved _) ->
      (* Malformed under this key (the depth bound and engine are part
         of it): evict and recompute. *)
      Cache.remove cache key;
      None
  | Some (Cache.Cex cc) ->
      Option.map
        (fun cex ->
          log_provenance cache key;
          Cex (cex, hit_stats cex.cex_depth))
        (revalidate_cached_cex cache key canon full property max_depth cc)

let store_check cache key canon property ~config = function
  | Bounded_proof st ->
      Cache.add cache key (Cache.Bounded st.depth_reached)
        ~prov:(prov_now ~engine:"check" ~config ~key)
  | Cex (cex, _) ->
      Cache.add cache key
        (Cache.Cex (cache_entry_of_cex canon property cex))
        ~prov:(prov_now ~engine:"check" ~config ~key)
  | Unknown _ -> ()

let check ?(max_depth = 30) ?(progress = fun _ -> ()) ?solver_config
    ?(stop = fun () -> false) ?(opt = Opt.O0) ?(budget = no_budget)
    ?(incremental = true) ?(sym = []) ?cache circuit property =
  let engine () =
    if incremental then
      check_incremental ~max_depth ~progress ?solver_config ~stop ~opt ~budget
        ~sym circuit property
    else
      check_scratch ~max_depth ~progress ?solver_config ~stop ~opt ~budget
        circuit property
  in
  match cache with
  | None -> engine ()
  | Some c -> (
      check_property "Bmc.check" property;
      let canon =
        Cache.canon ~assumes:property.assumes
          ~asserts:(List.map snd property.asserts)
      in
      let config =
        cache_config ~engine:"check" ~max_depth ~opt ~incremental
          ~solver_config ~budget
      in
      let key = Cache.key canon ~config in
      let full = instrument circuit property in
      match cached_check c key canon full property max_depth with
      | Some o -> o
      | None ->
          let o = engine () in
          store_check c key canon property ~config o;
          o)

(* One bounded check per assertion, every assumption kept. Where [check]
   stops at the first (shallowest) failure of {e any} assertion, this
   sweep reports a witness per failing output — the raw CEX pool a
   campaign dedups into distinct channels.

   Incremental mode shares ONE solver session across the whole sweep:
   the circuit is optimized once over the union of the assertion cones
   (a trade-off against the per-assertion cone restriction of the
   scratch path: one bigger instance, paid for once), the unrolling is
   shared, and each per-assertion Unsat verdict is recorded as a unit
   fact — sound to share because "assertion A holds at cycle c" is an
   unconditional theorem under the assumptions, independent of which
   assertion's search proved it. The [budget] is still granted afresh
   per assertion (fresh deadline; conflict/learnt caps re-based on the
   session's current counters), so one diverging assertion degrades to
   Unknown without starving the rest; a budget abort or injected fault
   leaves the solver's search state undefined, so the poisoned session
   is dropped and the next assertion rebuilds it.

   Scratch mode keeps the historical semantics exactly: one fresh
   [check ~incremental:false] per assertion, each optimized down to its
   own cone. *)
let check_each ?(max_depth = 30) ?(progress = fun _ -> ()) ?solver_config
    ?(stop = fun () -> false) ?(opt = Opt.O0) ?(budget = no_budget)
    ?(incremental = true) ?(sym = []) ?cache circuit property =
  if property.asserts = [] then []
  else if not incremental then
    List.map
      (fun (name, a) ->
        let sub = { assumes = property.assumes; asserts = [ (name, a) ] } in
        ( name,
          Obs.span "bmc.check_each" ~attrs:[ ("assert", Obs.Json.Str name) ]
            (fun () ->
              check ~max_depth ~progress ?solver_config ~stop ~opt ~budget
                ~incremental:false ?cache circuit sub) ))
      property.asserts
  else begin
    check_property "Bmc.check_each" property;
    let full = instrument circuit property in
    let stop = fault_stop stop in
    let opt_memo = ref None in
    let session = ref None in
    let all_solvers = ref [] in
    let get_session () =
      match !session with
      | Some s -> s
      | None ->
          let solver = S.create ?config:solver_config ~stop () in
          attach_sampling "check_each" solver;
          all_solvers := solver :: !all_solvers;
          let opt_result =
            match !opt_memo with
            | Some r -> r
            | None ->
                (* The O2 sweep borrows the session solver under its own
                   budget grant; its warm-up benefits every assertion. *)
                S.set_budget solver (solver_budget budget);
                let r =
                  optimize_instrumented ~sweep_solver:solver ~opt ~sym full
                    property
                in
                opt_memo := Some r;
                r
          in
          let circuit', _, _, _, sym' = opt_result in
          let blaster =
            Cnf.Blast.create ~mode:Cnf.Blast.Template ~sym:sym' solver circuit'
          in
          let s = (solver, blaster, opt_result) in
          session := Some s;
          s
    in
    (* Unroll (and constrain with the assumptions) up to [depth]; cycles
       unrolled during an earlier assertion's search are reused as-is. *)
    let ensure_cycle solver blaster sprop depth =
      while Cnf.Blast.cycles blaster <= depth do
        let cycle = Cnf.Blast.cycles blaster in
        Fault.point "bmc.alloc";
        Cnf.Blast.unroll_cycle blaster;
        List.iter
          (fun a -> S.add_clause solver [ Cnf.Blast.lit1 blaster ~cycle a ])
          sprop.assumes
      done
    in
    let opt_stats_of () =
      match !opt_memo with Some (_, _, _, o, _) -> o | None -> None
    in
    let run_one idx (name, orig_a) =
      Obs.span "bmc.check_each" ~attrs:[ ("assert", Obs.Json.Str name) ]
      @@ fun () ->
      let solve_time = ref 0. in
      let cur_depth = ref 0 in
      let baseline = ref None in
      (* Per-assertion view of the shared instance: counters are deltas
         against the session snapshot taken when this assertion started;
         sizes stay absolute (the instance the query actually ran on). *)
      let stats depth =
        match !baseline with
        | None ->
            {
              depth_reached = depth;
              solve_time = !solve_time;
              vars = 0;
              clauses = 0;
              conflicts = 0;
              decisions = 0;
              propagations = 0;
              restarts = 0;
              opt = opt_stats_of ();
            }
        | Some (solver, st0) ->
            let st = S.stats solver in
            {
              depth_reached = depth;
              solve_time = !solve_time;
              vars = st.S.s_vars;
              clauses = st.S.s_clauses;
              conflicts = st.S.s_conflicts - st0.S.s_conflicts;
              decisions = st.S.s_decisions - st0.S.s_decisions;
              propagations = st.S.s_propagations - st0.S.s_propagations;
              restarts = st.S.s_restarts - st0.S.s_restarts;
              opt = opt_stats_of ();
            }
      in
      let run () =
        let solver, blaster, (_, sprop, widen, _, _) = get_session () in
        let st0 = S.stats solver in
        baseline := Some (solver, st0);
        (* Fresh grant on the shared instance: new deadline, caps re-based
           on what the session has already spent. *)
        let sbud = solver_budget budget in
        S.set_budget solver
          {
            sbud with
            S.b_conflicts =
              Option.map
                (fun cap -> st0.S.s_conflicts + cap)
                budget.bud_conflicts;
            b_learnts =
              Option.map (fun cap -> st0.S.s_learnts + cap) budget.bud_learnts;
          };
        let asig = snd (List.nth sprop.asserts idx) in
        let sub = { assumes = property.assumes; asserts = [ (name, orig_a) ] } in
        let rec go depth =
          if depth > max_depth then Bounded_proof (stats max_depth)
          else begin
            cur_depth := depth;
            if stop () then raise S.Stopped;
            progress depth;
            let t_depth = Unix.gettimeofday () in
            let found =
              Obs.span "bmc.depth" ~attrs:[ ("depth", Obs.Json.Int depth) ]
              @@ fun () ->
              if depth > 0 then Fault.point "bmc.incr";
              ensure_cycle solver blaster sprop depth;
              let alit = Cnf.Blast.lit1 blaster ~cycle:depth asig in
              let act = Cnf.Blast.fresh_var blaster in
              S.add_clause solver [ S.neg act; S.neg alit ];
              let r =
                Obs.span "sat.solve" ~attrs:[ ("depth", Obs.Json.Int depth) ]
                @@ fun () ->
                let t0 = Unix.gettimeofday () in
                let r = S.solve ~assumptions:[ act ] solver in
                solve_time := !solve_time +. (Unix.gettimeofday () -. t0);
                r
              in
              match r with
              | S.Sat ->
                  S.add_clause solver [ S.neg act ];
                  let inputs =
                    Array.init (depth + 1) (fun cycle ->
                        List.map
                          (fun p ->
                            ( p.Circuit.port_name,
                              Cnf.Blast.input_value blaster ~cycle
                                p.Circuit.port_name ))
                          (Circuit.inputs (Cnf.Blast.circuit blaster)))
                  in
                  let inputs = widen inputs in
                  let failed = validate full sub inputs depth in
                  Obs.instant
                    ~attrs:[ ("depth", Obs.Json.Int depth) ]
                    "bmc.cex";
                  Some
                    (Cex
                       ( {
                           cex_depth = depth;
                           cex_inputs = inputs;
                           cex_failed = failed;
                           cex_circuit = full;
                         },
                         stats depth ))
              | S.Unsat ->
                  (* Retire the query and record the theorem: this
                     assertion holds at [depth], for every later search. *)
                  S.add_clause solver [ S.neg act ];
                  S.add_clause solver [ alit ];
                  None
            in
            let depth_s = Unix.gettimeofday () -. t_depth in
            if Obs.Metrics.enabled () then
              Obs.Metrics.record (Lazy.force m_depth_seconds) depth_s;
            (match found with
            | Some _ -> Obs.Bus.publish (Obs.Bus.Cex_found { depth })
            | None ->
                Obs.Bus.publish
                  (Obs.Bus.Depth_solved { depth; seconds = depth_s }));
            match found with Some outcome -> outcome | None -> go (depth + 1)
          end
        in
        go 0
      in
      try run () with
      | S.Stopped ->
          session := None;
          raise (Cancelled (stats !cur_depth))
      | S.Out_of_budget kind ->
          session := None;
          Unknown
            ( Budget_exhausted
                { ub_budget = kind; ub_depth = !cur_depth; ub_case = Base },
              stats (!cur_depth - 1) )
      | Fault.Injected site ->
          session := None;
          Obs.Bus.publish (Obs.Bus.Fault_injected { site });
          Unknown (Faulted site, stats (!cur_depth - 1))
    in
    (* Per-assertion cache entries use the same key shape as a
       single-assertion [check] at the same configuration — the verdict
       for one assertion is a theorem about its own cone, independent of
       which engine variant established it. A hit skips the session
       entirely for that assertion. *)
    let run_cached idx (name, orig_a) =
      (* Per-assertion bus scope: events from this query (depths, CEX,
         solver progress) carry "parent/assertion" so the cockpit shows
         one row per assertion of a multi-assert sweep. *)
      Obs.Bus.with_label (Obs.Bus.sub_label name) @@ fun () ->
      let t_job = Unix.gettimeofday () in
      Obs.Bus.publish (Obs.Bus.Job_start { goal_depth = max_depth });
      let o =
        match cache with
        | None -> run_one idx (name, orig_a)
        | Some c -> (
            let canon =
              Cache.canon ~assumes:property.assumes ~asserts:[ orig_a ]
            in
            let config =
              cache_config ~engine:"check" ~max_depth ~opt ~incremental:true
                ~solver_config ~budget
            in
            let key = Cache.key canon ~config in
            let sub =
              { assumes = property.assumes; asserts = [ (name, orig_a) ] }
            in
            match cached_check c key canon full sub max_depth with
            | Some o -> o
            | None ->
                let o = run_one idx (name, orig_a) in
                store_check c key canon sub ~config o;
                o)
      in
      if Obs.Bus.enabled () then begin
        (match o with
        | Unknown (reason, _) ->
            Obs.Bus.publish
              (Obs.Bus.Unknown { reason = unknown_reason_to_string reason })
        | Cex _ | Bounded_proof _ -> ());
        let verdict =
          match o with
          | Cex _ -> "cex"
          | Bounded_proof _ -> "proof"
          | Unknown _ -> "unknown"
        in
        Obs.Bus.publish
          (Obs.Bus.Job_done
             { verdict; wall_s = Unix.gettimeofday () -. t_job })
      end;
      o
    in
    let flush () = flush_solver_metrics !all_solvers in
    match List.mapi (fun i (name, a) -> (name, run_cached i (name, a))) property.asserts with
    | results ->
        flush ();
        results
    | exception e ->
        flush ();
        raise e
  end

let pp_cex fmt cex =
  Format.fprintf fmt "CEX at depth %d, failing: %s@."
    cex.cex_depth
    (String.concat ", " cex.cex_failed);
  Array.iteri
    (fun cycle assignments ->
      Format.fprintf fmt "  cycle %2d:" cycle;
      List.iter
        (fun (n, v) ->
          if not (Bitvec.is_zero v) then
            Format.fprintf fmt " %s=%s" n (Bitvec.to_hex_string v))
        assignments;
      Format.fprintf fmt "@.")
    cex.cex_inputs

type induction_outcome =
  | Proved of int * stats
  | Refuted of cex * stats
  | Unknown of unknown_reason * stats

(* Incremental k-induction: the base and step solvers are each created
   once and live across every round — round k adds one [Template] frame,
   the round's activation literal, and (step side) the uniqueness
   constraints pairing cycle k against earlier cycles; the previously
   installed pairs persist, so after round k the step instance carries
   the full loop-free condition over cycles 0..k. The O2 sweep borrows
   the base solver. *)
let prove_incremental ~max_depth ~progress ?solver_config ~stop ~opt ~budget
    ~sym circuit property =
  check_property "Bmc.prove" property;
  let full = instrument circuit property in
  let stop = fault_stop stop in
  let solve_time = ref 0. in
  let cur_depth = ref 0 in
  let cur_case = ref Base in
  let solvers_ref = ref [] in
  let opt_ref = ref None in
  let stats depth =
    flush_solver_metrics !solvers_ref;
    let sum f =
      List.fold_left (fun acc s -> acc + f (S.stats s)) 0 !solvers_ref
    in
    {
      depth_reached = depth;
      solve_time = !solve_time;
      vars = sum (fun st -> st.S.s_vars);
      clauses = sum (fun st -> st.S.s_clauses);
      conflicts = sum (fun st -> st.S.s_conflicts);
      decisions = sum (fun st -> st.S.s_decisions);
      propagations = sum (fun st -> st.S.s_propagations);
      restarts = sum (fun st -> st.S.s_restarts);
      opt = !opt_ref;
    }
  in
  let run () =
  (* One absolute deadline shared by both solvers. *)
  let sbud = solver_budget budget in
  let base_solver = S.create ?config:solver_config ~stop () in
  S.set_budget base_solver sbud;
  attach_sampling "base" base_solver;
  solvers_ref := [ base_solver ];
  let circuit, sprop, widen, opt_stats, sym =
    optimize_instrumented ~sweep_solver:base_solver ~opt ~sym full property
  in
  opt_ref := opt_stats;
  let base =
    Cnf.Blast.create ~mode:Cnf.Blast.Template ~sym base_solver circuit
  in
  let step_solver = S.create ?config:solver_config ~stop () in
  S.set_budget step_solver sbud;
  attach_sampling "step" step_solver;
  let step =
    Cnf.Blast.create ~free_init:true ~mode:Cnf.Blast.Template ~sym step_solver
      circuit
  in
  solvers_ref := [ base_solver; step_solver ];
  let timed ~case ~depth solver assumptions =
    cur_case := (match case with "base" -> Base | _ -> Step);
    Obs.span ("bmc." ^ case) ~attrs:[ ("depth", Obs.Json.Int depth) ]
    @@ fun () ->
    let t0 = Unix.gettimeofday () in
    let r =
      Obs.span "sat.solve"
        ~attrs:[ ("case", Obs.Json.Str case); ("depth", Obs.Json.Int depth) ]
        (fun () -> S.solve ~assumptions solver)
    in
    solve_time := !solve_time +. (Unix.gettimeofday () -. t0);
    r
  in
  (* Shared per-cycle constraint installation for either blaster. *)
  let install blaster depth =
    Fault.point "bmc.alloc";
    Cnf.Blast.unroll_cycle blaster;
    let solver = Cnf.Blast.solver blaster in
    List.iter
      (fun a -> S.add_clause solver [ Cnf.Blast.lit1 blaster ~cycle:depth a ])
      sprop.assumes;
    let act = Cnf.Blast.fresh_var blaster in
    S.add_clause solver
      (S.neg act
      :: List.map
           (fun (_, a) -> S.neg (Cnf.Blast.lit1 blaster ~cycle:depth a))
           sprop.asserts);
    act
  in
  let retire blaster depth act =
    let solver = Cnf.Blast.solver blaster in
    S.add_clause solver [ S.neg act ];
    List.iter
      (fun (_, a) -> S.add_clause solver [ Cnf.Blast.lit1 blaster ~cycle:depth a ])
      sprop.asserts
  in
  let rec go k =
    if k > max_depth then Unknown (Bound_exhausted, stats max_depth)
    else begin
      cur_depth := k;
      if stop () then raise S.Stopped;
      progress k;
      let t_depth = Unix.gettimeofday () in
      Obs.log ~attrs:[ ("depth", Obs.Json.Int k) ] Debug "bmc.induction_depth";
      if k > 0 then Fault.point "bmc.incr";
      (* Base case: bad at cycle k, from reset. *)
      let base_act = install base k in
      match timed ~case:"base" ~depth:k base_solver [ base_act ] with
      | S.Sat ->
          let inputs =
            Array.init (k + 1) (fun cycle ->
                List.map
                  (fun p ->
                    ( p.Circuit.port_name,
                      Cnf.Blast.input_value base ~cycle p.Circuit.port_name ))
                  (Circuit.inputs circuit))
          in
          let inputs = widen inputs in
          let failed = validate full property inputs k in
          Obs.instant ~attrs:[ ("depth", Obs.Json.Int k) ] "bmc.cex";
          Obs.log
            ~attrs:
              [
                ("depth", Obs.Json.Int k);
                ("failed", Obs.Json.List (List.map (fun n -> Obs.Json.Str n) failed));
              ]
            Info "bmc.refuted";
          Refuted
            ( { cex_depth = k; cex_inputs = inputs; cex_failed = failed; cex_circuit = full },
              stats k )
      | S.Unsat ->
          retire base k base_act;
          (* Inductive step: a loop-free path of k good states reaching a
             bad one at cycle k, from an arbitrary start. *)
          let step_act = install step k in
          for i = 0 to k - 1 do
            S.add_clause step_solver [ Cnf.Blast.state_distinct step i k ]
          done;
          (match timed ~case:"step" ~depth:k step_solver [ step_act ] with
          | S.Unsat ->
              Obs.instant ~attrs:[ ("depth", Obs.Json.Int k) ] "bmc.proved";
              Obs.log ~attrs:[ ("k", Obs.Json.Int k) ] Info "bmc.proved";
              Proved (k, stats k)
          | S.Sat ->
              retire step k step_act;
              if Obs.Metrics.enabled () then
                Obs.Metrics.record (Lazy.force m_depth_seconds)
                  (Unix.gettimeofday () -. t_depth);
              go (k + 1))
    end
  in
  go 0
  in
  try run () with
  | S.Stopped -> raise (Cancelled (stats !cur_depth))
  | S.Out_of_budget kind ->
      Unknown
        ( Budget_exhausted
            { ub_budget = kind; ub_depth = !cur_depth; ub_case = !cur_case },
          stats (!cur_depth - 1) )
  | Fault.Injected site ->
      Obs.Bus.publish (Obs.Bus.Fault_injected { site });
      Unknown (Faulted site, stats (!cur_depth - 1))

(* Scratch k-induction oracle: each round builds a fresh base and a
   fresh step solver with [Direct] unrollings of cycles 0..k, assertion
   facts below k, and — step side — the full loop-free condition (every
   pair of cycles i < j <= k distinct, since nothing persists from
   earlier rounds). The wall deadline is shared by every solver ever
   created; the conflict cap is cumulative across them (each new solver
   gets the cap minus what its predecessors spent). *)
let prove_scratch ~max_depth ~progress ?solver_config ~stop ~opt ~budget
    circuit property =
  check_property "Bmc.prove" property;
  let full = instrument circuit property in
  let stop = fault_stop stop in
  let solve_time = ref 0. in
  let cur_depth = ref 0 in
  let cur_case = ref Base in
  let opt_ref = ref None in
  let sbud = solver_budget budget in
  let acc_conflicts = ref 0 and acc_decisions = ref 0 in
  let acc_propagations = ref 0 and acc_restarts = ref 0 in
  let last_vars = ref 0 and last_clauses = ref 0 in
  let live = ref [] in
  let retire_solvers () =
    match !live with
    | [] -> ()
    | solvers ->
        flush_solver_metrics solvers;
        last_vars := 0;
        last_clauses := 0;
        List.iter
          (fun solver ->
            let st = S.stats solver in
            acc_conflicts := !acc_conflicts + st.S.s_conflicts;
            acc_decisions := !acc_decisions + st.S.s_decisions;
            acc_propagations := !acc_propagations + st.S.s_propagations;
            acc_restarts := !acc_restarts + st.S.s_restarts;
            last_vars := !last_vars + st.S.s_vars;
            last_clauses := !last_clauses + st.S.s_clauses)
          solvers;
        live := []
  in
  let stats depth =
    retire_solvers ();
    {
      depth_reached = depth;
      solve_time = !solve_time;
      vars = !last_vars;
      clauses = !last_clauses;
      conflicts = !acc_conflicts;
      decisions = !acc_decisions;
      propagations = !acc_propagations;
      restarts = !acc_restarts;
      opt = !opt_ref;
    }
  in
  let run () =
    let circuit, sprop, widen, opt_stats, _ =
      optimize_instrumented ~opt full property
    in
    opt_ref := opt_stats;
    let new_solver label =
      let solver = S.create ?config:solver_config ~stop () in
      S.set_budget solver
        {
          sbud with
          S.b_conflicts =
            Option.map (fun cap -> cap - !acc_conflicts) budget.bud_conflicts;
        };
      attach_sampling label solver;
      live := solver :: !live;
      solver
    in
    let timed ~case ~depth solver assumptions =
      cur_case := (match case with "base" -> Base | _ -> Step);
      Obs.span ("bmc." ^ case) ~attrs:[ ("depth", Obs.Json.Int depth) ]
      @@ fun () ->
      let t0 = Unix.gettimeofday () in
      let r =
        Obs.span "sat.solve"
          ~attrs:[ ("case", Obs.Json.Str case); ("depth", Obs.Json.Int depth) ]
          (fun () -> S.solve ~assumptions solver)
      in
      solve_time := !solve_time +. (Unix.gettimeofday () -. t0);
      r
    in
    (* Unroll cycles 0..k into a fresh blaster: assumptions everywhere,
       assertion facts strictly below k, activation clause at k. *)
    let build blaster k =
      let solver = Cnf.Blast.solver blaster in
      for cycle = 0 to k do
        Cnf.Blast.unroll_cycle blaster;
        List.iter
          (fun a -> S.add_clause solver [ Cnf.Blast.lit1 blaster ~cycle a ])
          sprop.assumes;
        if cycle < k then
          List.iter
            (fun (_, a) ->
              S.add_clause solver [ Cnf.Blast.lit1 blaster ~cycle a ])
            sprop.asserts
      done;
      let act = Cnf.Blast.fresh_var blaster in
      S.add_clause solver
        (S.neg act
        :: List.map
             (fun (_, a) -> S.neg (Cnf.Blast.lit1 blaster ~cycle:k a))
             sprop.asserts);
      act
    in
    let rec go k =
      if k > max_depth then Unknown (Bound_exhausted, stats max_depth)
      else begin
        cur_depth := k;
        if stop () then raise S.Stopped;
        progress k;
        let t_depth = Unix.gettimeofday () in
        Obs.log ~attrs:[ ("depth", Obs.Json.Int k) ] Debug
          "bmc.induction_depth";
        Fault.point "bmc.alloc";
        let base_solver = new_solver "base" in
        let base = Cnf.Blast.create base_solver circuit in
        let base_act = build base k in
        match timed ~case:"base" ~depth:k base_solver [ base_act ] with
        | S.Sat ->
            let inputs =
              Array.init (k + 1) (fun cycle ->
                  List.map
                    (fun p ->
                      ( p.Circuit.port_name,
                        Cnf.Blast.input_value base ~cycle p.Circuit.port_name ))
                    (Circuit.inputs circuit))
            in
            let inputs = widen inputs in
            let failed = validate full property inputs k in
            Obs.instant ~attrs:[ ("depth", Obs.Json.Int k) ] "bmc.cex";
            Refuted
              ( {
                  cex_depth = k;
                  cex_inputs = inputs;
                  cex_failed = failed;
                  cex_circuit = full;
                },
                stats k )
        | S.Unsat ->
            (* Fold the base instance in before granting the step solver
               its share of the conflict cap. *)
            retire_solvers ();
            Fault.point "bmc.alloc";
            let step_solver = new_solver "step" in
            let step = Cnf.Blast.create ~free_init:true step_solver circuit in
            let step_act = build step k in
            for i = 0 to k - 1 do
              for j = i + 1 to k do
                S.add_clause step_solver [ Cnf.Blast.state_distinct step i j ]
              done
            done;
            (match timed ~case:"step" ~depth:k step_solver [ step_act ] with
            | S.Unsat ->
                Obs.instant ~attrs:[ ("depth", Obs.Json.Int k) ] "bmc.proved";
                Obs.log ~attrs:[ ("k", Obs.Json.Int k) ] Info "bmc.proved";
                Proved (k, stats k)
            | S.Sat ->
                retire_solvers ();
                if Obs.Metrics.enabled () then
                  Obs.Metrics.record (Lazy.force m_depth_seconds)
                    (Unix.gettimeofday () -. t_depth);
                go (k + 1))
      end
    in
    go 0
  in
  try run () with
  | S.Stopped -> raise (Cancelled (stats !cur_depth))
  | S.Out_of_budget kind ->
      Unknown
        ( Budget_exhausted
            { ub_budget = kind; ub_depth = !cur_depth; ub_case = !cur_case },
          stats (!cur_depth - 1) )
  | Fault.Injected site ->
      Obs.Bus.publish (Obs.Bus.Fault_injected { site });
      Unknown (Faulted site, stats (!cur_depth - 1))

let prove ?(max_depth = 30) ?(progress = fun _ -> ()) ?solver_config
    ?(stop = fun () -> false) ?(opt = Opt.O0) ?(budget = no_budget)
    ?(incremental = true) ?(sym = []) ?cache circuit property =
  let engine () =
    if incremental then
      prove_incremental ~max_depth ~progress ?solver_config ~stop ~opt ~budget
        ~sym circuit property
    else
      prove_scratch ~max_depth ~progress ?solver_config ~stop ~opt ~budget
        circuit property
  in
  match cache with
  | None -> engine ()
  | Some c -> (
      check_property "Bmc.prove" property;
      let canon =
        Cache.canon ~assumes:property.assumes
          ~asserts:(List.map snd property.asserts)
      in
      let config =
        cache_config ~engine:"prove" ~max_depth ~opt ~incremental
          ~solver_config ~budget
      in
      let key = Cache.key canon ~config in
      let full = instrument circuit property in
      let miss () =
        let o = engine () in
        let prov = prov_now ~engine:"prove" ~config ~key in
        (match o with
        | Proved (k, _) -> Cache.add ~prov c key (Cache.Proved k)
        | Refuted (cex, _) ->
            Cache.add ~prov c key
              (Cache.Cex (cache_entry_of_cex canon property cex))
        | Unknown _ -> ());
        o
      in
      match Cache.find c key with
      | Some (Cache.Proved k) when k >= 0 && k <= max_depth ->
          log_provenance c key;
          Proved (k, hit_stats k)
      | Some (Cache.Cex cc) -> (
          match
            revalidate_cached_cex c key canon full property max_depth cc
          with
          | Some cex ->
              log_provenance c key;
              Refuted (cex, hit_stats cex.cex_depth)
          | None -> miss ())
      | Some (Cache.Proved _) | Some (Cache.Bounded _) ->
          Cache.remove c key;
          miss ()
      | None -> miss ())

let miter c1 c2 =
  let module T = Rtl.Transform in
  let port_names c =
    List.sort compare (List.map (fun p -> p.Circuit.port_name) (Circuit.inputs c)),
    List.sort compare (List.map (fun p -> p.Circuit.port_name) (Circuit.outputs c))
  in
  if port_names c1 <> port_names c2 then
    invalid_arg "Bmc.equiv: circuits have different interfaces";
  (* Clone both circuits into one graph, sharing the primary inputs. *)
  let shared = Hashtbl.create 16 in
  let map_input ~name ~width =
    match Hashtbl.find_opt shared name with
    | Some s ->
        if Signal.width s <> width then
          invalid_arg ("Bmc.equiv: width mismatch on input " ^ name);
        s
    | None ->
        let s = Signal.input name width in
        Hashtbl.replace shared name s;
        s
  in
  let outs1, _ = T.clone_outputs ~map_input ~map_reg_name:(fun n -> "a." ^ n) c1 in
  let outs2, _ = T.clone_outputs ~map_input ~map_reg_name:(fun n -> "b." ^ n) c2 in
  let asserts =
    List.map
      (fun (n, s1) ->
        let s2 = List.assoc n outs2 in
        ("eq_" ^ n, Signal.( ==: ) s1 s2))
      outs1
  in
  let miter =
    Circuit.create ~name:(Circuit.name c1 ^ "_miter")
      ~outputs:(List.map (fun (n, s) -> ("a_" ^ n, s)) outs1)
      ()
  in
  (miter, { assumes = []; asserts })

let equiv ?max_depth ?opt ?incremental c1 c2 =
  let m, p = miter c1 c2 in
  check ?max_depth ?opt ?incremental m p

(* Pure retry schedule: budget escalation, config rotation, capped
   exponential backoff. No clocks and no effects — see retry.mli. *)

type policy = {
  max_attempts : int;
  growth : float;
  cap : float;
  backoff_base_s : float;
  backoff_cap_s : float;
  alternate_configs : Sat.Solver.config list;
}

let default =
  {
    max_attempts = 1;
    growth = 4.;
    cap = 64.;
    backoff_base_s = 0.05;
    backoff_cap_s = 2.;
    alternate_configs = [];
  }

let policy ?(max_attempts = 3) ?(growth = 4.) ?(cap = 64.)
    ?(backoff_base_s = 0.05) ?(backoff_cap_s = 2.) ?alternate_configs () =
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts must be >= 1";
  if growth < 1. then invalid_arg "Retry.policy: growth must be >= 1";
  if backoff_base_s < 0. || backoff_cap_s < 0. then
    invalid_arg "Retry.policy: backoff delays must be non-negative";
  let alternate_configs =
    match alternate_configs with
    | Some l -> l
    | None -> List.tl (Sat.Solver.portfolio 4)
  in
  { max_attempts; growth; cap; backoff_base_s; backoff_cap_s; alternate_configs }

let scale p ~attempt =
  if attempt <= 0 then 1. else min (p.growth ** float_of_int attempt) p.cap

let budget_for p (b : Bmc.budget) ~attempt =
  let s = scale p ~attempt in
  let scale_int = Option.map (fun n -> max 1 (int_of_float (float_of_int n *. s))) in
  {
    Bmc.bud_wall_s = Option.map (fun w -> w *. s) b.Bmc.bud_wall_s;
    bud_conflicts = scale_int b.Bmc.bud_conflicts;
    bud_learnts = scale_int b.Bmc.bud_learnts;
  }

let config_for p ~attempt =
  if attempt <= 0 then None
  else
    match p.alternate_configs with
    | [] -> None
    | l -> Some (List.nth l ((attempt - 1) mod List.length l))

let backoff_s p ~attempt =
  if attempt <= 0 then 0.
  else min (p.backoff_base_s *. (2. ** float_of_int (attempt - 1))) p.backoff_cap_s

let should_retry p ~attempt reason =
  attempt + 1 < p.max_attempts
  &&
  match reason with
  | Bmc.Budget_exhausted _ | Bmc.Faulted _ -> true
  | Bmc.Bound_exhausted -> false

(** Parallel bounded model checking over OCaml 5 domains.

    Every AutoCC run checks many independent assertions over the same
    two-universe miter, and solver wall-clock is the usability bottleneck
    of the refine/re-run loop. This module shards that work across a
    domain pool, with two composable strategies:

    - {b assertion sharding} ({!check}, {!prove}): a property with [n]
      assertions is split into per-assertion (or per-group) jobs, each
      verified by an independent solver over the cone of its own
      assertions. Outcomes merge back into the ordinary {!Bmc.outcome} /
      {!Bmc.induction_outcome}: the shallowest counterexample wins, and
      as soon as one is found every job searching at the same depth or
      deeper is cancelled through an atomic stop flag polled in the
      solvers' propagation loops ({!Sat.Solver.Stopped}).
    - {b portfolio} ({!check} with [~portfolio:k]): [k] solver
      configurations ({!Sat.Solver.portfolio} — differing restart
      cadence, decay, polarity and decision-randomization seeds) race on
      the {e whole} property; the first answer wins and cancels the
      rest.

    {b Determinism.} The outcome kind and the counterexample depth are
    deterministic: a shard can only be cancelled once a counterexample at
    most as shallow as its current depth exists, so the minimum depth is
    always discovered. The reported input trace (and hence the failing-
    assertion set, which is re-validated on the winning trace against the
    {e full} property) is deterministic modulo which equally-shallow
    counterexample wins the race — the same caveat that applies to any
    portfolio FPV tool.

    {b Callbacks.} [progress] is only ever invoked from the calling
    domain, with a strictly increasing sequence of depths: worker domains
    enqueue ticks into a mutex-protected queue that the coordinating
    (calling) domain drains. User code never runs on a worker domain.

    {b Counterexamples} found by a shard are replayed on the {!Sim}
    interpreter against the full property before being returned, exactly
    like the sequential engine, so a returned CEX is always
    simulation-validated and its [cex_failed] set is complete for its
    trace. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

(** Per-job accounting, for merged reports ({!Report.merge_stats}). *)
type job_verdict =
  | Job_cex of Bmc.cex  (** this job found a counterexample *)
  | Job_bounded  (** no CEX within the bound *)
  | Job_proved of int  (** k-induction succeeded at the carried [k] *)
  | Job_unknown of Bmc.unknown_reason
      (** inconclusive, after every retry the policy allowed: bound
          reached without an inductive answer, a budget fired, or a
          fault was injected *)
  | Job_cancelled  (** stopped because another job answered first *)
  | Job_failed of exn  (** the job raised; re-raised after the pool drains *)

type job_result = {
  job_label : string;  (** assertion names (shard) or config name (portfolio) *)
  job_verdict : job_verdict;
  job_stats : Bmc.stats;  (** this job's own solver statistics *)
  job_retries : int;
      (** extra attempts the {!Retry} policy spent on this job (0 when
          the first attempt was conclusive or retries were disabled) *)
  job_wall : float;  (** seconds of wall-clock this job occupied a worker *)
  job_cpu : float;
      (** CPU seconds of the worker domain while it ran this job
          ({!Obs.Clock.thread_cpu_s}); [job_wall -. job_cpu] is time the
          job spent descheduled or blocked *)
}

type detail = {
  par_strategy : string;  (** ["shard"] or ["portfolio"] *)
  par_workers : int;  (** domains used (1 = in-calling-domain fallback) *)
  par_wall : float;
      (** wall-clock seconds of the whole parallel run, spawn to join —
          the denominator of pool utilization *)
  par_results : job_result list;  (** in job order *)
}

val check :
  ?jobs:int ->
  ?portfolio:int ->
  ?group_size:int ->
  ?max_depth:int ->
  ?progress:(int -> unit) ->
  ?opt:Opt.level ->
  ?budget:Bmc.budget ->
  ?retry:Retry.policy ->
  ?incremental:bool ->
  ?sym:(Rtl.Signal.t * Rtl.Signal.t) list ->
  ?cache:Cache.t ->
  Rtl.Circuit.t ->
  Bmc.property ->
  Bmc.outcome
(** Drop-in parallel replacement for {!Bmc.check}.

    @param jobs worker-domain cap; defaults to {!default_jobs}. [1] runs
      every job in the calling domain (the single-domain fallback path —
      same scheduler and merge code, no spawns).
    @param portfolio when given (> 1), race that many solver
      configurations on the whole property instead of sharding.
    @param group_size assertions per shard job (default 1, i.e. one job
      per assertion; larger groups amortize blasting for very cheap
      assertions). Ignored in portfolio mode.
    @param opt netlist-optimization level (default {!Opt.O0}), forwarded
      to the sequential engine inside each job — every shard optimizes
      its own slim circuit independently, in its worker domain, so the
      optimization work is parallelized along with the solving.
    @param budget per-{e job} resource budget (default {!Bmc.no_budget}):
      each shard or portfolio member gets its own wall-clock deadline
      pinned at its attempt's start, so one straggler exhausts {e its}
      budget, frees its worker, and degrades to [Job_unknown] without
      dragging down the rest of the run.
    @param retry retry policy for inconclusive jobs (default
      {!Retry.default}, i.e. no retries): transient Unknowns are re-run
      on the same worker with escalated budgets and (in shard mode)
      alternate solver configurations, after capped exponential backoff.
    @param incremental engine selection, forwarded verbatim to
      {!Bmc.check} inside every job (default [true]): each shard or
      portfolio member keeps one persistent solver across its depth
      sequence. [false] selects the scratch differential oracle in every
      job.
    @param sym symmetric node pairs of a two-universe miter, forwarded
      to every job's {!Bmc.check}; pairs outside a shard's cone are
      dropped by the per-job optimizer remap, so sharding composes with
      symmetric blasting unchanged.
    @param cache one shared verdict cache (see {!Cache}). Lookups and
      stores are mutex-guarded and the store keeps a single writer, so
      all jobs may share the one instance; per-shard keys are the same
      single-assertion keys {!Bmc.check_each} uses.

    Merged verdicts order as [Cex > Unknown > Bounded_proof]: any
    counterexample wins outright; otherwise any job still inconclusive
    after retries weakens the whole answer to [Unknown] whose
    [stats.depth_reached] is the weakest job's fully-checked depth. In
    portfolio mode one conclusive racer is enough — an exhausted racer
    neither wins nor cancels the race. *)

val check_detailed :
  ?jobs:int ->
  ?portfolio:int ->
  ?group_size:int ->
  ?max_depth:int ->
  ?progress:(int -> unit) ->
  ?opt:Opt.level ->
  ?budget:Bmc.budget ->
  ?retry:Retry.policy ->
  ?incremental:bool ->
  ?sym:(Rtl.Signal.t * Rtl.Signal.t) list ->
  ?cache:Cache.t ->
  Rtl.Circuit.t ->
  Bmc.property ->
  Bmc.outcome * detail
(** {!check}, plus per-job accounting. *)

val prove :
  ?jobs:int ->
  ?group_size:int ->
  ?max_depth:int ->
  ?progress:(int -> unit) ->
  ?opt:Opt.level ->
  ?budget:Bmc.budget ->
  ?retry:Retry.policy ->
  ?incremental:bool ->
  ?sym:(Rtl.Signal.t * Rtl.Signal.t) list ->
  ?cache:Cache.t ->
  Rtl.Circuit.t ->
  Bmc.property ->
  Bmc.induction_outcome
(** Parallel k-induction by assertion sharding. Sound but possibly less
    complete than {!Bmc.prove}: each shard's inductive step may only
    assume {e its own} assertions held on the previous [k] cycles, so a
    property that is only jointly inductive merges as [Unknown] even
    though the sequential engine proves it. [Refuted] results are exact
    (the base case is plain BMC) and merge earliest-depth-first;
    [Proved] requires every shard to prove, and carries the largest [k]. *)

val prove_detailed :
  ?jobs:int ->
  ?group_size:int ->
  ?max_depth:int ->
  ?progress:(int -> unit) ->
  ?opt:Opt.level ->
  ?budget:Bmc.budget ->
  ?retry:Retry.policy ->
  ?incremental:bool ->
  ?sym:(Rtl.Signal.t * Rtl.Signal.t) list ->
  ?cache:Cache.t ->
  Rtl.Circuit.t ->
  Bmc.property ->
  Bmc.induction_outcome * detail

val equiv :
  ?jobs:int ->
  ?max_depth:int ->
  ?opt:Opt.level ->
  ?incremental:bool ->
  Rtl.Circuit.t ->
  Rtl.Circuit.t ->
  Bmc.outcome
(** Parallel {!Bmc.equiv}: the per-output equality assertions of the
    miter are sharded across the pool. Interface mismatches raise
    [Invalid_argument] from the calling domain before any worker is
    spawned, exactly like the sequential version. *)

(** Retry policies for inconclusive verification jobs.

    When a job comes back [Unknown] because a budget fired or a fault
    was injected, the runtime may try again with an escalated budget
    and/or an alternate solver configuration, after a capped exponential
    backoff. This module is the {e pure} decision core of that loop —
    every function is a total function of its arguments, so the whole
    schedule is unit-testable without clocks, solvers, or domains. The
    effectful half (sleeping, re-running) lives in {!Parallel}.

    Attempts are numbered from 0 (the original try); a policy with
    [max_attempts = 1] never retries. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first; >= 1 *)
  growth : float;  (** budget multiplier per retry; >= 1 *)
  cap : float;  (** ceiling on the cumulative multiplier *)
  backoff_base_s : float;  (** delay before the first retry *)
  backoff_cap_s : float;  (** ceiling on the retry delay *)
  alternate_configs : Sat.Solver.config list;
      (** solver configurations rotated through on retries; empty means
          every attempt keeps the caller's configuration *)
}

val default : policy
(** [max_attempts = 1] — no retries, zero behaviour change. *)

val policy :
  ?max_attempts:int ->
  ?growth:float ->
  ?cap:float ->
  ?backoff_base_s:float ->
  ?backoff_cap_s:float ->
  ?alternate_configs:Sat.Solver.config list ->
  unit ->
  policy
(** Defaults: [max_attempts = 3], [growth = 4.], [cap = 64.],
    [backoff_base_s = 0.05], [backoff_cap_s = 2.], alternates drawn from
    {!Sat.Solver.portfolio}[ 4] minus its head (the default config).
    Raises [Invalid_argument] on [max_attempts < 1], [growth < 1.], or
    negative delays. *)

val scale : policy -> attempt:int -> float
(** The budget multiplier for [attempt]: [min (growth ^ attempt) cap].
    [scale ~attempt:0 = 1.] always. *)

val budget_for : policy -> Bmc.budget -> attempt:int -> Bmc.budget
(** [budget] with every set limit multiplied by [scale ~attempt]
    (integer limits rounded down, kept >= 1). Unset limits stay unset. *)

val config_for : policy -> attempt:int -> Sat.Solver.config option
(** [None] for attempt 0 (keep the caller's configuration) or when
    [alternate_configs] is empty; otherwise the alternates cycled in
    order starting from the first retry. *)

val backoff_s : policy -> attempt:int -> float
(** Delay to wait before launching [attempt] (>= 1):
    [min (backoff_base_s *. 2. ^ (attempt - 1)) backoff_cap_s]. *)

val should_retry : policy -> attempt:int -> Bmc.unknown_reason -> bool
(** True iff another attempt is allowed ([attempt + 1 < max_attempts])
    and the reason is transient: budget exhaustion or an injected fault.
    [Bound_exhausted] is never retried — a deeper bound needs a
    different [max_depth], not a bigger budget. *)

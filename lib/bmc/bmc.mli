(** Bounded model checking of safety properties.

    A {!property} is a set of 1-bit [assume] signals, required to hold on
    every cycle, and named 1-bit [assert] signals, checked on every cycle.
    [check] searches for the shallowest execution in which some assertion
    fails at a cycle while all assumptions hold up to and including that
    cycle, unrolling one cycle at a time on a single incremental SAT
    solver. This mirrors the single-cycle SVA properties AutoCC generates
    ([assume property (spy_mode |-> input_eq)] becomes an unconditional
    1-bit implication signal).

    Counterexamples carry the full primary-input trace and are replayed on
    the {!Sim} interpreter before being reported, so a returned CEX is
    always simulation-validated. *)

type property = {
  assumes : Rtl.Signal.t list;
  asserts : (string * Rtl.Signal.t) list;
}

type cex = {
  cex_depth : int;  (** 0-based cycle at which an assertion failed *)
  cex_inputs : (string * Bitvec.t) list array;
      (** per-cycle assignment of every primary input *)
  cex_failed : string list;  (** names of the assertions that failed *)
  cex_circuit : Rtl.Circuit.t;
}

type stats = {
  depth_reached : int;  (** deepest cycle index fully checked *)
  solve_time : float;  (** seconds spent in the SAT solver *)
  vars : int;
  clauses : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;  (** Luby restart periods completed *)
  opt : Opt.stats option;
      (** netlist-optimization counters when running at [-O1]/[-O2];
          [None] at [-O0] *)
}

(** {1 Resource budgets and the [Unknown] verdict}

    Industrial FPV flows treat {e inconclusive} as a first-class verdict
    with per-property budgets; so does this engine. A {!budget} bounds
    one [check]/[prove] call (and each sub-check of [check_each]), and
    exhaustion yields an [Unknown] verdict carrying a structured
    {!unknown_reason} instead of hanging or raising — exhaustion while
    exploring depth [k] still reports a result whose
    [stats.depth_reached] is [k - 1] ("clean up to [k - 1]"; [-1] when
    nothing completed).

    Soundness: [Unknown] is only ever a {e downgrade}. A budget or an
    injected fault ({!Fault}) can turn a would-be [Cex]/[Bounded_proof]
    into [Unknown], but never a [Cex] into a proof or vice versa —
    counterexamples are still simulation-replayed and proofs still
    require an exhaustive search of the bound. *)

type budget = {
  bud_wall_s : float option;  (** wall-clock budget in seconds *)
  bud_conflicts : int option;  (** SAT conflict budget per solver *)
  bud_learnts : int option;
      (** live learnt-clause watermark per solver (memory proxy) *)
}
(** Pure data (relative limits), so retry policies ({!Retry}) can scale
    it without touching a clock; the engine converts it into an absolute
    {!Sat.Solver.budget} at call entry. *)

val no_budget : budget

val budget :
  ?wall_s:float -> ?conflicts:int -> ?learnts:int -> unit -> budget
(** Raises [Invalid_argument] on a non-positive limit. *)

type case =
  | Base  (** reset-rooted search: all of [check], or [prove]'s base *)
  | Step  (** the arbitrary-start inductive step of [prove] *)

type unknown_reason =
  | Bound_exhausted
      (** [prove] reached [max_depth] without an answer — the
          completeness threshold was not reached *)
  | Budget_exhausted of {
      ub_budget : Sat.Solver.budget_kind;  (** which budget fired *)
      ub_depth : int;  (** the depth being explored when it fired *)
      ub_case : case;  (** base vs step *)
    }
  | Faulted of string
      (** an injected or internal failure (the {!Fault} site name)
          downgraded the run instead of crashing it *)

val unknown_reason_to_string : unknown_reason -> string
(** Stable machine-readable rendering, e.g.
    ["budget:conflicts@4:base"], ["bound"], ["fault:opt.pass"]. *)

val pp_unknown_reason : Format.formatter -> unknown_reason -> unit

type outcome =
  | Cex of cex * stats
  | Bounded_proof of stats
      (** no assertion can fail within [max_depth] cycles *)
  | Unknown of unknown_reason * stats
      (** gave up; clean up to [stats.depth_reached] *)

exception Replay_mismatch of string
(** Raised if a SAT counterexample fails to reproduce in simulation —
    indicates a bug in the blasting or solving layer. *)

exception Cancelled of stats
(** Raised by {!check} / {!prove} when the [stop] hook fires mid-search.
    Carries the statistics accumulated up to the cancellation point;
    [depth_reached] is the depth that was being explored. Used by
    {!Parallel} to abandon jobs once a shallower counterexample exists. *)

val cache_config :
  engine:string ->
  max_depth:int ->
  opt:Opt.level ->
  incremental:bool ->
  solver_config:Sat.Solver.config option ->
  budget:budget ->
  string
(** The configuration fingerprint folded into every cache key:
    everything beyond the property's structure that can influence a
    verdict ([engine|d=..|o=..|i=..|s=..|b=..]). Also recorded verbatim
    in run-ledger rows and provenance records, so `autocc why` can show
    which configuration earned a cached verdict. *)

val cache_fingerprint :
  engine:string ->
  ?max_depth:int ->
  ?opt:Opt.level ->
  ?incremental:bool ->
  ?solver_config:Sat.Solver.config ->
  ?budget:budget ->
  property ->
  string * string * string
(** [(structural digest, cache key, config fingerprint)] — exactly the
    triple {!check} (engine ["check"]) or {!prove} (engine ["prove"])
    would address the verdict cache with for [property] under this
    configuration (defaults match theirs: depth 30, [O0], incremental,
    no solver config, no budget). [autocc why] uses this to locate and
    audit entries without running any engine; per-assertion entries of
    {!check_each} use the same shape on the single-assertion
    sub-property with [~incremental:true]. *)

val check :
  ?max_depth:int ->
  ?progress:(int -> unit) ->
  ?solver_config:Sat.Solver.config ->
  ?stop:(unit -> bool) ->
  ?opt:Opt.level ->
  ?budget:budget ->
  ?incremental:bool ->
  ?sym:(Rtl.Signal.t * Rtl.Signal.t) list ->
  ?cache:Cache.t ->
  Rtl.Circuit.t ->
  property ->
  outcome
(** [check circuit property] with [max_depth] defaulting to 30 cycles.

    [incremental] (default [true]) selects the engine. Incrementally,
    ONE solver instance lives for the whole run: the [-O2] sweep borrows
    it first, the transition relation is blasted once as a template and
    stamped out per depth, and each depth's property is selected by an
    activation literal that a clean verdict retires — learnt clauses and
    branching activity survive across depths. With [~incremental:false]
    every depth gets a fresh solver and a fresh direct re-blast of
    cycles [0..k]: slower (quadratic in depth) but with an independent
    CNF shape and search trajectory, which is what makes it the
    differential oracle the incremental engine is fuzzed against (the
    [--no-incremental] escape hatch of the CLI). Both engines report the
    same verdicts, counterexample depths, and [Unknown] reasons; under a
    budget, exhaustion mid-sequence still reports clean up to depth
    [k - 1] in either mode (the conflict cap is cumulative across the
    scratch engine's per-depth solvers).

    [budget] (default {!no_budget}) bounds the whole call; exhaustion
    returns [Unknown (Budget_exhausted _, stats)] with [stats] honest
    about the deepest fully-checked cycle. An injected fault
    ({!Fault.Injected}) likewise returns [Unknown (Faulted _, stats)].

    [opt] (default {!Opt.O0}) runs the {!Opt} netlist pipeline over the
    instrumented circuit, restricted to the property's
    cone-of-influence, before blasting. Verdicts and counterexample
    depths are unchanged by construction; any counterexample found on
    the optimized circuit is widened (cone-dropped inputs are zero) and
    replayed on the {e unoptimized} circuit, so [cex_circuit] and
    [cex_inputs] always describe the original instrumented design.

    [progress] is invoked with each depth just before it is solved.
    Reentrancy contract: it is always called from the domain that called
    [check], never from another domain — {!Parallel} relies on this by
    giving each worker job its own callback and marshalling user-visible
    ticks back to the coordinating domain through a mutex-protected
    queue. The callback must not call back into this [check] run.

    [solver_config] selects the SAT heuristics (see
    {!Sat.Solver.config}); [stop] is polled in the solver's propagation
    loop and between depths, and a firing stop aborts the run by raising
    {!Cancelled}.

    [sym] (default none; incremental engine only) declares symmetric
    node pairs of a two-universe miter — see {!Cnf.Blast.create}. The
    pairs are remapped through the optimizer's node map (pairs the
    optimizer breaks or merges are dropped) and handed to the template
    blaster, which encodes one universe and derives the other by
    variable renaming. Verdicts and counterexample depths are
    unchanged by construction; the flag only shortens template
    construction. The scratch engine ignores it, which keeps
    [~incremental:false] a differential oracle for the symmetric path
    too.

    [cache] (default none) memoizes conclusive verdicts behind a
    content-addressed key (see {!Cache}): the canonical structural hash
    of the property cone plus a fingerprint of [max_depth], [opt],
    [incremental], [solver_config] and [budget]. Only [Cex] and
    [Bounded_proof] outcomes are stored — never [Unknown]. A cached
    counterexample is re-materialized by canonical input ordinal and
    replayed on the simulator before being trusted; entries that fail
    replay (or are structurally malformed) are evicted and recomputed,
    so a hit can never flip a verdict a fresh run would produce. *)

val check_each :
  ?max_depth:int ->
  ?progress:(int -> unit) ->
  ?solver_config:Sat.Solver.config ->
  ?stop:(unit -> bool) ->
  ?opt:Opt.level ->
  ?budget:budget ->
  ?incremental:bool ->
  ?sym:(Rtl.Signal.t * Rtl.Signal.t) list ->
  ?cache:Cache.t ->
  Rtl.Circuit.t ->
  property ->
  (string * outcome) list
(** [check_each circuit property] runs one bounded check per assertion
    (all assumptions kept), in declaration order. Where {!check} stops
    at the shallowest failure of {e any} assertion, this sweep returns a
    witness (or bounded proof) for {e every} assertion — the raw
    counterexample pool a campaign deduplicates into distinct covert
    channels. Optional arguments behave as in {!check}; in particular
    [budget] is granted {e per assertion} (the per-property timeout
    discipline of industrial FPV runners), so one diverging assertion
    degrades to [Unknown] without starving the rest of the sweep.

    Incrementally (the default) the whole sweep shares one solver
    session: the circuit is optimized once over the union of the
    assertion cones, the unrolling is shared, and each per-assertion
    "holds at cycle [c]" verdict is asserted as a unit fact for every
    later search — sound because such verdicts are unconditional
    theorems under the assumptions. The per-assertion budget grant is
    re-based on the session's current counters (fresh deadline,
    [current + cap] conflict/learnt limits); a budget abort or injected
    fault poisons the session, which the next assertion silently
    rebuilds. With [~incremental:false] each assertion runs a fully
    independent scratch {!check} restricted to its own cone — the
    historical semantics, kept as the differential oracle.

    [sym] and [cache] behave as in {!check}. Cache entries are {e per
    assertion} — keyed on the single-assertion cone, with the same key
    shape as a one-assertion [check] — so a campaign resuming after a
    DUT edit re-verifies only the assertions whose cones actually
    changed; a hit skips the shared session entirely for that
    assertion. *)

val instrument : Rtl.Circuit.t -> property -> Rtl.Circuit.t
(** The extended circuit [check] verifies: the original outputs plus one
    output per assumption ([__bmc_assume_<i>]) and per assertion
    ([__bmc_assert_<name>]). Allocates no new signal nodes, so it is safe
    to call concurrently from several domains on a shared signal graph.
    Idempotent: property ports from an earlier instrumentation are
    replaced, not duplicated. *)

val preoptimize :
  ?opt:Opt.level ->
  ?sym:(Rtl.Signal.t * Rtl.Signal.t) list ->
  Rtl.Circuit.t ->
  property ->
  Rtl.Circuit.t * property * (Rtl.Signal.t * Rtl.Signal.t) list
  * Opt.stats option
(** [preoptimize circuit property] runs the same instrument-and-optimize
    front end {!check} runs (at [opt], default {!Opt.O2}), and returns
    the optimized circuit, the remapped property, the surviving
    symmetric pairs, and the optimizer statistics. Feeding the result
    back into {!check} at [~opt:O0] reproduces the optimized run while
    keeping the optimization cost out of the measured interval — the
    benchmark harness uses it to share one O2 setup between the arms it
    compares. The SAT sweep runs on a private throwaway solver here. *)

val validate :
  Rtl.Circuit.t ->
  property ->
  (string * Bitvec.t) list array ->
  int ->
  string list
(** [validate circuit property inputs depth] replays a candidate
    counterexample on the {!Sim} interpreter: all assumptions must hold
    on cycles [0 .. depth] and some assertion must be false at [depth].
    Returns the names of every failing assertion at [depth]; raises
    {!Replay_mismatch} otherwise. [circuit] must carry the property
    signals (use {!instrument}). *)

val replay : cex -> Sim.t
(** A simulator advanced to just before cycle 0 with watches installed;
    use {!replay_values} for convenience. *)

val replay_values : cex -> Rtl.Signal.t list -> (Rtl.Signal.t * Bitvec.t array) list
(** Per-cycle values (combinationally settled, cycles [0 .. cex_depth]) of
    the given signals along the counterexample trace. *)

val pp_cex : Format.formatter -> cex -> unit
(** Print the trace: per-cycle inputs and the failing assertions. *)

val miter : Rtl.Circuit.t -> Rtl.Circuit.t -> Rtl.Circuit.t * property
(** The shared-input miter of two interface-identical circuits and the
    per-output equality property {!equiv} checks. Raises
    [Invalid_argument] if the interfaces differ — validated eagerly, so
    parallel callers fail in the calling domain before any worker
    spawns. *)

val equiv :
  ?max_depth:int ->
  ?opt:Opt.level ->
  ?incremental:bool ->
  Rtl.Circuit.t ->
  Rtl.Circuit.t ->
  outcome
(** [equiv a b] checks that two circuits with identical port interfaces
    are cycle-for-cycle observationally equal: a miter drives both with
    the same inputs and asserts every output pair equal, bounded to
    [max_depth]. Used to validate the Verilog round-trip (emit, parse,
    re-elaborate). Raises [Invalid_argument] if the interfaces differ. *)

(** {1 Unbounded proofs by k-induction}

    Bounded model checking only refutes; to {e prove} a property for
    executions of any length (the paper's "full proof" on the AES
    accelerator) the standard strengthening is k-induction: the base case
    is ordinary BMC from reset, and the inductive step asks whether a
    loop-free path of [k] good states starting {e anywhere} can reach a
    bad state. If the step is unsatisfiable at some [k] (and the base
    holds to [k]), the property holds at every depth. *)

type induction_outcome =
  | Proved of int * stats  (** property holds unboundedly; [k] reached *)
  | Refuted of cex * stats  (** genuine counterexample from reset *)
  | Unknown of unknown_reason * stats
      (** neither proved nor refuted: [Bound_exhausted] when [max_depth]
          was reached without an answer, or a budget/fault downgrade *)

val prove :
  ?max_depth:int ->
  ?progress:(int -> unit) ->
  ?solver_config:Sat.Solver.config ->
  ?stop:(unit -> bool) ->
  ?opt:Opt.level ->
  ?budget:budget ->
  ?incremental:bool ->
  ?sym:(Rtl.Signal.t * Rtl.Signal.t) list ->
  ?cache:Cache.t ->
  Rtl.Circuit.t ->
  property ->
  induction_outcome
(** [prove circuit property] interleaves the base case and the inductive
    step, deepening [k] until one of them answers. [progress],
    [solver_config], [stop], [opt] and [incremental] behave exactly as
    in {!check} (including the calling-domain-only contract on
    [progress]). Incrementally the base and step solvers each persist
    across rounds (template frames, per-round activation literals, the
    accumulated loop-free condition) and the [-O2] sweep borrows the
    base solver; the scratch oracle rebuilds both instances per round
    with direct unrollings and the full pairwise uniqueness constraint.
    The register merges {!Opt} commits are inductive invariants, so they
    are sound under the arbitrary-start-state encoding of the step
    case. [sym] and [cache] behave as in {!check} ([Proved] joins the
    cacheable verdict set; [Unknown] is still never stored). *)

(* Parallel BMC/induction over OCaml 5 domains.

   Two strategies over the same small scheduler:

   - sharding: one job per assertion (group); each job runs the ordinary
     sequential engine on a slim copy of the circuit whose outputs are
     just its own assertions, so the blaster only encodes the cone of
     those assertions plus the assumptions. The shallowest CEX wins and
     cancels every job that cannot beat it.
   - portfolio: k differently-configured solvers race on the whole
     property; first answer wins and cancels the rest.

   Scheduler shape: jobs are closures in an array; worker domains pull
   the next unstarted index off an atomic cursor (work stealing with a
   single cursor — an idle worker always takes the next job, so
   imbalance costs at most one job's latency). Progress ticks and
   completions travel to the coordinating domain through one
   mutex-protected queue; user callbacks only ever run on the calling
   domain (see the reentrancy contract on Bmc.check's [progress]).

   Domain-safety notes: the signal uid counter is atomic, so workers may
   build fresh nodes (the Opt passes each shard runs do); the shared
   original graph is only ever read. Every pre-existing circuit a worker
   touches is built here in the calling domain before any spawn, or by
   Circuit.create / Bmc.instrument, which only walk existing nodes.
   Solvers, blasters and simulators are created per job and never
   shared. *)

module S = Sat.Solver
module Signal = Rtl.Signal
module Circuit = Rtl.Circuit

let default_jobs () = Domain.recommended_domain_count ()

type job_verdict =
  | Job_cex of Bmc.cex
  | Job_bounded
  | Job_proved of int
  | Job_unknown of Bmc.unknown_reason
  | Job_cancelled
  | Job_failed of exn

type job_result = {
  job_label : string;
  job_verdict : job_verdict;
  job_stats : Bmc.stats;
  job_retries : int;
  job_wall : float;
  job_cpu : float;
      (* CPU seconds consumed by the domain that ran the job; filled in
         by the scheduler, so the per-job [finish] helpers leave it 0. *)
}

type detail = {
  par_strategy : string;
  par_workers : int;
  par_wall : float;
  par_results : job_result list;
}

let zero_stats =
  {
    Bmc.depth_reached = 0;
    solve_time = 0.;
    vars = 0;
    clauses = 0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    opt = None;
  }

(* {1 The domain pool} *)

(* Run one job with telemetry: a [par.job] span on the executing domain,
   start/done events through the mutex-guarded {!Obs} log sink (worker
   domains must never write user-visible output directly — see the
   reentrancy contract on [Bmc.check]'s [progress]), and the executing
   domain's CPU time measured around the job. *)
let run_job ~scope ~index task ~tick =
  (* [scope] is the coordinator's bus label, captured at [run_tasks]
     entry: the domain-local label scope does not cross [Domain.spawn],
     so each job re-establishes it (suffixed per job) on the domain that
     actually runs it. *)
  let job_scope =
    if scope = "" then Printf.sprintf "j%d" index
    else Printf.sprintf "%s/j%d" scope index
  in
  Obs.Bus.with_label job_scope @@ fun () ->
  Obs.span "par.job" ~attrs:[ ("index", Obs.Json.Int index) ] @@ fun () ->
  Obs.log ~attrs:[ ("index", Obs.Json.Int index) ] Debug "par.job_start";
  Obs.Bus.publish (Obs.Bus.Job_start { goal_depth = -1 });
  let c0 = Obs.Clock.thread_cpu_s () in
  let r = task ~tick in
  let r = { r with job_cpu = Obs.Clock.thread_cpu_s () -. c0 } in
  let verdict =
    match r.job_verdict with
    | Job_cex c -> Printf.sprintf "cex@%d" c.Bmc.cex_depth
    | Job_bounded -> "bounded"
    | Job_proved k -> Printf.sprintf "proved@%d" k
    | Job_unknown r -> "unknown:" ^ Bmc.unknown_reason_to_string r
    | Job_cancelled -> "cancelled"
    | Job_failed _ -> "failed"
  in
  Obs.Bus.publish (Obs.Bus.Job_done { verdict; wall_s = r.job_wall });
  Obs.log
    ~attrs:
      [
        ("index", Obs.Json.Int index);
        ("label", Obs.Json.Str r.job_label);
        ("verdict", Obs.Json.Str verdict);
        ("wall_s", Obs.Json.Float r.job_wall);
        ("cpu_s", Obs.Json.Float r.job_cpu);
      ]
    Debug "par.job_done";
  r

let run_tasks ~workers ~progress (tasks : (tick:(int -> unit) -> job_result) array)
    =
  let n = Array.length tasks in
  let scope = Obs.Bus.current_label () in
  let reported = ref (-1) in
  let report d =
    if d > !reported then begin
      reported := d;
      progress d
    end
  in
  let workers = max 1 (min workers n) in
  if workers = 1 then
    (* Single-domain fallback (-j 1): same jobs, same merge path, ticks
       delivered directly — no domains are spawned at all. *)
    Array.mapi (fun i task -> run_job ~scope ~index:i task ~tick:report) tasks
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let m = Mutex.create () in
    let cond = Condition.create () in
    let ticks = Queue.create () in
    let completed = ref 0 in
    let post f =
      Mutex.lock m;
      f ();
      Condition.signal cond;
      Mutex.unlock m
    in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          let r =
            run_job ~scope ~index:i tasks.(i)
              ~tick:(fun d -> post (fun () -> Queue.push d ticks))
          in
          post (fun () ->
              results.(i) <- Some r;
              incr completed);
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init workers (fun _ -> Domain.spawn worker) in
    (* Coordinator: drain ticks (running the user callback here, in the
       calling domain) until every job has reported a result. *)
    let rec drain () =
      Mutex.lock m;
      while Queue.is_empty ticks && !completed < n do
        Condition.wait cond m
      done;
      let pending = List.of_seq (Queue.to_seq ticks) in
      Queue.clear ticks;
      let finished = !completed = n in
      Mutex.unlock m;
      List.iter report (List.sort compare pending);
      if not finished then drain ()
    in
    drain ();
    Array.iter Domain.join domains;
    Array.map Option.get results
  end

(* {1 Shared helpers} *)

let rec atomic_min a v =
  let c = Atomic.get a in
  if v < c && not (Atomic.compare_and_set a c v) then atomic_min a v

let rec atomic_min_float a v =
  let c = Atomic.get a in
  if v < c && not (Atomic.compare_and_set a c v) then atomic_min_float a v

(* {1 Cancellation telemetry}

   [t_req] holds the wall time of the earliest cancellation request
   (infinity until one happens). The latency histogram measures how long
   a running solve takes to observe the request and unwind — the figure
   that bounds how much work a won race keeps burning. *)

let m_cancel_latency =
  lazy
    (Obs.Metrics.histogram "par.cancel_latency_s"
       ~buckets:[| 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. |])

let m_utilization = lazy (Obs.Metrics.gauge "par.utilization")

let note_cancel_request t_req =
  atomic_min_float t_req (Unix.gettimeofday ());
  Obs.instant "par.cancel_request"

let observe_cancelled t_req =
  (if Obs.Metrics.enabled () then
     let t = Atomic.get t_req in
     if t < infinity then
       Obs.Metrics.observe
         (Lazy.force m_cancel_latency)
         (Unix.gettimeofday () -. t));
  Obs.instant "par.cancelled"

let make_detail ~strategy ~workers ~t0 results =
  let wall = Unix.gettimeofday () -. t0 in
  let busy = Array.fold_left (fun a r -> a +. r.job_wall) 0. results in
  let util = if wall > 0. then busy /. (float_of_int workers *. wall) else 1. in
  if Obs.Metrics.enabled () then
    Obs.Metrics.set (Lazy.force m_utilization) util;
  Obs.log
    ~attrs:
      [
        ("strategy", Obs.Json.Str strategy);
        ("jobs", Obs.Json.Int (Array.length results));
        ("workers", Obs.Json.Int workers);
        ("wall_s", Obs.Json.Float wall);
        ("utilization", Obs.Json.Float util);
      ]
    Info "par.done";
  {
    par_strategy = strategy;
    par_workers = workers;
    par_wall = wall;
    par_results = Array.to_list results;
  }

let validate_property what (p : Bmc.property) =
  List.iter
    (fun s ->
      if Signal.width s <> 1 then
        invalid_arg (what ^ ": assume signal must be 1 bit wide"))
    p.Bmc.assumes;
  List.iter
    (fun (_, s) ->
      if Signal.width s <> 1 then
        invalid_arg (what ^ ": assert signal must be 1 bit wide"))
    p.Bmc.asserts;
  if p.Bmc.asserts = [] then invalid_arg (what ^ ": no assertions")

let rec chunk size l =
  match l with
  | [] -> []
  | _ ->
      let rec take k = function
        | x :: rest when k > 0 ->
            let h, t = take (k - 1) rest in
            (x :: h, t)
        | rest -> ([], rest)
      in
      let h, t = take size l in
      h :: chunk size t

let label_of_group g = String.concat "," (List.map fst g)

let merge_opt a b =
  match (a, b) with
  | None, o | o, None -> o
  | Some x, Some y -> Some (Opt.add_stats x y)

let merge_stats ~depth results =
  Array.fold_left
    (fun acc r ->
      {
        Bmc.depth_reached = depth;
        solve_time = acc.Bmc.solve_time +. r.job_stats.Bmc.solve_time;
        vars = acc.Bmc.vars + r.job_stats.Bmc.vars;
        clauses = acc.Bmc.clauses + r.job_stats.Bmc.clauses;
        conflicts = acc.Bmc.conflicts + r.job_stats.Bmc.conflicts;
        decisions = acc.Bmc.decisions + r.job_stats.Bmc.decisions;
        propagations = acc.Bmc.propagations + r.job_stats.Bmc.propagations;
        restarts = acc.Bmc.restarts + r.job_stats.Bmc.restarts;
        opt = merge_opt acc.Bmc.opt r.job_stats.Bmc.opt;
      })
    { zero_stats with Bmc.depth_reached = depth }
    results

(* A job that raised poisons the whole run: re-raise the first failure
   (in job order, for determinism) in the calling domain. By the time we
   get here every worker has been joined, so nothing deadlocks. *)
let reraise_failures results =
  Array.iter
    (fun r -> match r.job_verdict with Job_failed e -> raise e | _ -> ())
    results

(* Rebuild the winning shard's counterexample over the full property:
   extend the input trace to every input of the fully-instrumented
   circuit (inputs outside the shard's cone cannot influence the
   assumptions or the winning assertion, so zeros are as good as any
   value) and re-validate on the interpreter to recover the complete
   failing-assertion set for this trace. *)
let widen_cex circuit property (win : Bmc.cex) =
  let full = Bmc.instrument circuit property in
  let inputs =
    Array.map
      (fun assignments ->
        List.map
          (fun p ->
            let name = p.Circuit.port_name in
            match List.assoc_opt name assignments with
            | Some v -> (name, v)
            | None -> (name, Bitvec.zero (Signal.width p.Circuit.signal)))
          (Circuit.inputs full))
      win.Bmc.cex_inputs
  in
  let failed = Bmc.validate full property inputs win.Bmc.cex_depth in
  {
    Bmc.cex_depth = win.Bmc.cex_depth;
    cex_inputs = inputs;
    cex_failed = failed;
    cex_circuit = full;
  }

let shallowest results =
  let best = ref None in
  Array.iter
    (fun r ->
      match (r.job_verdict, !best) with
      | Job_cex c, None -> best := Some c
      | Job_cex c, Some b when c.Bmc.cex_depth < b.Bmc.cex_depth -> best := Some c
      | _ -> ())
    results;
  !best

(* {1 Retry}

   The effectful half of {!Retry}: run attempts on the worker domain
   until either the verdict is conclusive or the policy stops
   escalating. Only transient Unknowns (budget exhaustion, injected
   faults) are retried — each retry sleeps the capped exponential
   backoff, then re-runs with the scaled budget and, when the policy
   carries alternates, a different solver configuration. [retries]
   counts the extra attempts for per-job accounting. *)
let unknown_of_outcome : Bmc.outcome -> Bmc.unknown_reason option = function
  | Bmc.Unknown (r, _) -> Some r
  | _ -> None

let unknown_of_induction : Bmc.induction_outcome -> Bmc.unknown_reason option =
  function
  | Bmc.Unknown (r, _) -> Some r
  | _ -> None

let with_retries ~retry ~stop ~retries ~reason_of run =
  let rec loop attempt =
    let r = run ~attempt in
    match reason_of r with
    | Some reason
      when (not (stop ())) && Retry.should_retry retry ~attempt reason ->
        incr retries;
        let reason_s = Bmc.unknown_reason_to_string reason in
        Obs.Bus.publish
          (Obs.Bus.Retry { attempt = attempt + 1; reason = reason_s });
        Obs.log
          ~attrs:
            [
              ("attempt", Obs.Json.Int (attempt + 1));
              ("reason", Obs.Json.Str reason_s);
            ]
          Debug "par.retry";
        let d = Retry.backoff_s retry ~attempt:(attempt + 1) in
        if d > 0. then Unix.sleepf d;
        loop (attempt + 1)
    | _ -> r
  in
  loop 0

(* Merged "clean up to" depth when no job found a CEX but some came back
   Unknown: the weakest job bounds the claim. *)
let clean_depth ~max_depth results =
  Array.fold_left
    (fun acc r ->
      match r.job_verdict with
      | Job_unknown _ | Job_cancelled -> min acc r.job_stats.Bmc.depth_reached
      | _ -> acc)
    max_depth results

(* First Unknown reason in job order, for deterministic merged reports. *)
let first_unknown results =
  Array.fold_left
    (fun acc r ->
      match (acc, r.job_verdict) with
      | None, Job_unknown reason -> Some reason
      | acc, _ -> acc)
    None results

(* {1 Assertion sharding} *)

let check_sharded ~workers ~group_size ~max_depth ~progress ~opt ~budget ~retry
    ~incremental ~sym ~cache circuit property =
  let groups = chunk (max 1 group_size) property.Bmc.asserts in
  (* Slim per-shard circuits, built in the calling domain: outputs are
     only this group's assertions, so each shard blasts only their cone
     (plus the assumption cones added back by Bmc.check's
     instrumentation). *)
  let slim =
    List.map (fun g -> Circuit.create ~name:(Circuit.name circuit) ~outputs:g ()) groups
  in
  let best = Atomic.make max_int in
  let halt = Atomic.make false in
  let t_req = Atomic.make infinity in
  let task g c ~tick =
    let cur = ref 0 in
    let retries = ref 0 in
    let stop () = Atomic.get halt || Atomic.get best <= !cur in
    let t0 = Unix.gettimeofday () in
    let finish verdict stats =
      {
        job_label = label_of_group g;
        job_verdict = verdict;
        job_stats = stats;
        job_retries = !retries;
        job_wall = Unix.gettimeofday () -. t0;
        job_cpu = 0.;
      }
    in
    try
      match
        with_retries ~retry ~stop ~retries
          ~reason_of:unknown_of_outcome
          (fun ~attempt ->
            Bmc.check ~max_depth
              ~progress:(fun d ->
                cur := d;
                tick d)
              ?solver_config:(Retry.config_for retry ~attempt)
              ~stop ~opt
              ~budget:(Retry.budget_for retry budget ~attempt)
              ~incremental ~sym ?cache c
              { Bmc.assumes = property.Bmc.assumes; asserts = g })
      with
      | Bmc.Cex (cex, st) ->
          atomic_min best cex.Bmc.cex_depth;
          note_cancel_request t_req;
          finish (Job_cex cex) st
      | Bmc.Bounded_proof st -> finish Job_bounded st
      | Bmc.Unknown (reason, st) -> finish (Job_unknown reason) st
    with
    | Bmc.Cancelled st ->
        observe_cancelled t_req;
        finish Job_cancelled st
    | e ->
        Atomic.set halt true;
        note_cancel_request t_req;
        finish (Job_failed e) zero_stats
  in
  let tasks = Array.of_list (List.map2 (fun g c ~tick -> task g c ~tick) groups slim) in
  let t0_run = Unix.gettimeofday () in
  let results = run_tasks ~workers ~progress tasks in
  reraise_failures results;
  let detail =
    make_detail ~strategy:"shard"
      ~workers:(max 1 (min workers (Array.length tasks)))
      ~t0:t0_run results
  in
  match shallowest results with
  | Some win ->
      let cex = widen_cex circuit property win in
      (Bmc.Cex (cex, merge_stats ~depth:win.Bmc.cex_depth results), detail)
  | None -> (
      (* No CEX anywhere. An Unknown shard weakens the merged claim from
         a bounded proof to Unknown-with-clean-prefix: the bound only
         holds up to the weakest shard's fully-checked depth. *)
      match first_unknown results with
      | Some reason ->
          ( Bmc.Unknown
              (reason, merge_stats ~depth:(clean_depth ~max_depth results) results),
            detail )
      | None -> (Bmc.Bounded_proof (merge_stats ~depth:max_depth results), detail))

(* {1 Portfolio} *)

let check_portfolio ~workers ~k ~max_depth ~progress ~opt ~budget ~retry
    ~incremental ~sym ~cache circuit property =
  let configs = S.portfolio k in
  let finished = Atomic.make false in
  let t_req = Atomic.make infinity in
  let task cfg ~tick =
    let retries = ref 0 in
    let stop () = Atomic.get finished in
    let t0 = Unix.gettimeofday () in
    let finish verdict stats =
      {
        job_label = cfg.S.cfg_name;
        job_verdict = verdict;
        job_stats = stats;
        job_retries = !retries;
        job_wall = Unix.gettimeofday () -. t0;
        job_cpu = 0.;
      }
    in
    try
      match
        with_retries ~retry ~stop ~retries
          ~reason_of:unknown_of_outcome
          (fun ~attempt ->
            let cfg =
              match Retry.config_for retry ~attempt with
              | Some c -> c
              | None -> cfg
            in
            Bmc.check ~max_depth ~progress:tick ~solver_config:cfg ~stop ~opt
              ~budget:(Retry.budget_for retry budget ~attempt)
              ~incremental ~sym ?cache circuit property)
      with
      | Bmc.Cex (cex, st) ->
          Atomic.set finished true;
          note_cancel_request t_req;
          finish (Job_cex cex) st
      | Bmc.Bounded_proof st ->
          Atomic.set finished true;
          note_cancel_request t_req;
          finish Job_bounded st
      | Bmc.Unknown (reason, st) ->
          (* An exhausted racer does NOT end the race: the other
             configurations may still answer within their budgets. *)
          finish (Job_unknown reason) st
    with
    | Bmc.Cancelled st ->
        observe_cancelled t_req;
        finish Job_cancelled st
    | e ->
        Atomic.set finished true;
        note_cancel_request t_req;
        finish (Job_failed e) zero_stats
  in
  let tasks = Array.of_list (List.map (fun cfg ~tick -> task cfg ~tick) configs) in
  let t0_run = Unix.gettimeofday () in
  let results = run_tasks ~workers ~progress tasks in
  reraise_failures results;
  let detail =
    make_detail ~strategy:"portfolio"
      ~workers:(max 1 (min workers (Array.length tasks)))
      ~t0:t0_run results
  in
  (* Every configuration answers the same deepening queries, so whichever
     finished first has THE shallowest depth; the first completer in job
     order keeps reports deterministic modulo the race. *)
  match shallowest results with
  | Some win -> (Bmc.Cex (win, merge_stats ~depth:win.Bmc.cex_depth results), detail)
  | None -> (
      match
        Array.find_opt
          (fun r -> match r.job_verdict with Job_bounded -> true | _ -> false)
          results
      with
      | Some _ -> (Bmc.Bounded_proof (merge_stats ~depth:max_depth results), detail)
      | None -> (
          match first_unknown results with
          | Some reason ->
              ( Bmc.Unknown
                  ( reason,
                    merge_stats ~depth:(clean_depth ~max_depth results) results ),
                detail )
          | None ->
              (Bmc.Bounded_proof (merge_stats ~depth:max_depth results), detail)))

(* {1 Entry points} *)

let check_detailed ?jobs ?portfolio ?(group_size = 1) ?(max_depth = 30)
    ?(progress = fun _ -> ()) ?(opt = Opt.O0) ?(budget = Bmc.no_budget)
    ?(retry = Retry.default) ?(incremental = true) ?(sym = []) ?cache circuit
    property =
  validate_property "Parallel.check" property;
  let workers = match jobs with Some j -> max 1 j | None -> default_jobs () in
  match portfolio with
  | Some k when k > 1 ->
      check_portfolio ~workers ~k ~max_depth ~progress ~opt ~budget ~retry
        ~incremental ~sym ~cache circuit property
  | _ ->
      check_sharded ~workers ~group_size ~max_depth ~progress ~opt ~budget
        ~retry ~incremental ~sym ~cache circuit property

let check ?jobs ?portfolio ?group_size ?max_depth ?progress ?opt ?budget ?retry
    ?incremental ?sym ?cache circuit property =
  fst
    (check_detailed ?jobs ?portfolio ?group_size ?max_depth ?progress ?opt
       ?budget ?retry ?incremental ?sym ?cache circuit property)

let prove_detailed ?jobs ?(group_size = 1) ?(max_depth = 30)
    ?(progress = fun _ -> ()) ?(opt = Opt.O0) ?(budget = Bmc.no_budget)
    ?(retry = Retry.default) ?(incremental = true) ?(sym = []) ?cache circuit
    property =
  validate_property "Parallel.prove" property;
  let workers = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let groups = chunk (max 1 group_size) property.Bmc.asserts in
  let slim =
    List.map (fun g -> Circuit.create ~name:(Circuit.name circuit) ~outputs:g ()) groups
  in
  let best = Atomic.make max_int in
  let halt = Atomic.make false in
  let t_req = Atomic.make infinity in
  let task g c ~tick =
    let cur = ref 0 in
    let retries = ref 0 in
    (* Only refutations cancel the others: a shard that proves its own
       assertions says nothing about the remaining shards. *)
    let stop () = Atomic.get halt || Atomic.get best <= !cur in
    let t0 = Unix.gettimeofday () in
    let finish verdict stats =
      {
        job_label = label_of_group g;
        job_verdict = verdict;
        job_stats = stats;
        job_retries = !retries;
        job_wall = Unix.gettimeofday () -. t0;
        job_cpu = 0.;
      }
    in
    try
      match
        with_retries ~retry ~stop ~retries
          ~reason_of:unknown_of_induction
          (fun ~attempt ->
            Bmc.prove ~max_depth
              ~progress:(fun d ->
                cur := d;
                tick d)
              ?solver_config:(Retry.config_for retry ~attempt)
              ~stop ~opt
              ~budget:(Retry.budget_for retry budget ~attempt)
              ~incremental ~sym ?cache c
              { Bmc.assumes = property.Bmc.assumes; asserts = g })
      with
      | Bmc.Proved (k, st) -> finish (Job_proved k) st
      | Bmc.Refuted (cex, st) ->
          atomic_min best cex.Bmc.cex_depth;
          note_cancel_request t_req;
          finish (Job_cex cex) st
      | Bmc.Unknown (reason, st) -> finish (Job_unknown reason) st
    with
    | Bmc.Cancelled st ->
        observe_cancelled t_req;
        finish Job_cancelled st
    | e ->
        Atomic.set halt true;
        note_cancel_request t_req;
        finish (Job_failed e) zero_stats
  in
  let tasks = Array.of_list (List.map2 (fun g c ~tick -> task g c ~tick) groups slim) in
  let t0_run = Unix.gettimeofday () in
  let results = run_tasks ~workers ~progress tasks in
  reraise_failures results;
  let detail =
    make_detail ~strategy:"shard"
      ~workers:(max 1 (min workers (Array.length tasks)))
      ~t0:t0_run results
  in
  match shallowest results with
  | Some win ->
      let cex = widen_cex circuit property win in
      (Bmc.Refuted (cex, merge_stats ~depth:win.Bmc.cex_depth results), detail)
  | None ->
      let unknown =
        Array.exists
          (fun r ->
            match r.job_verdict with
            | Job_unknown _ | Job_cancelled -> true
            | _ -> false)
          results
      in
      if unknown then
        let reason =
          match first_unknown results with
          | Some r -> r
          | None -> Bmc.Bound_exhausted
        in
        (Bmc.Unknown (reason, merge_stats ~depth:max_depth results), detail)
      else
        let k =
          Array.fold_left
            (fun acc r ->
              match r.job_verdict with Job_proved k -> max acc k | _ -> acc)
            0 results
        in
        (Bmc.Proved (k, merge_stats ~depth:k results), detail)

let prove ?jobs ?group_size ?max_depth ?progress ?opt ?budget ?retry
    ?incremental ?sym ?cache circuit property =
  fst
    (prove_detailed ?jobs ?group_size ?max_depth ?progress ?opt ?budget ?retry
       ?incremental ?sym ?cache circuit property)

let equiv ?jobs ?max_depth ?opt ?incremental c1 c2 =
  (* Interface validation happens in the calling domain, inside miter —
     mismatches raise Invalid_argument before any worker exists. *)
  let m, p = Bmc.miter c1 c2 in
  check ?jobs ?max_depth ?opt ?incremental m p

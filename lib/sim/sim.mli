(** Cycle-accurate interpreter for elaborated circuits.

    The usage protocol per cycle is: drive inputs with {!set_input}, read
    combinational results with {!peek} / {!out} (which evaluate lazily),
    then {!step} to latch registers and advance time. {!reset} returns all
    registers to their initial values. *)

type t

val create : Rtl.Circuit.t -> t
(** A fresh simulator, in reset state, all inputs zero. *)

val circuit : t -> Rtl.Circuit.t
val reset : t -> unit

val set_input : t -> string -> Bitvec.t -> unit
(** Raises [Failure] on unknown input or width mismatch. *)

val set_input_int : t -> string -> int -> unit

val peek : t -> Rtl.Signal.t -> Bitvec.t
(** Combinational value of any node of the circuit in the current cycle,
    given the currently driven inputs. *)

val out : t -> string -> Bitvec.t
(** Value of an output port. *)

val out_int : t -> string -> int

val reg_value : t -> string -> Bitvec.t
(** Current (pre-step) value of a register looked up by name. *)

val step : t -> unit
(** Latch all registers with their next-state values and advance one
    cycle. *)

val cycle : t -> int
(** Number of [step]s since the last reset. *)

val run : t -> (string * Bitvec.t) list array -> unit
(** [run t inputs] drives a recorded input trace: for each cycle, apply
    the per-cycle assignments with {!set_input}, then {!step}. This is
    the shape of a BMC counterexample's input trace; watched signals
    record one sample per cycle as usual. *)

val watch : t -> Rtl.Signal.t list -> unit
(** Record the values of the given signals at every subsequent {!step};
    used for waveform output. *)

val waveform : t -> (Rtl.Signal.t * Bitvec.t array) list
(** Recorded values, one array entry per stepped cycle. *)

val pp_waveform : Format.formatter -> t -> unit
(** Render the recorded waveform as an ASCII table, one signal per row. *)

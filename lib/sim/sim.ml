module Signal = Rtl.Signal
module Circuit = Rtl.Circuit

type t = {
  circuit : Circuit.t;
  values : Bitvec.t array; (* indexed by Circuit.node_index *)
  state : (int, Bitvec.t) Hashtbl.t; (* register uid -> current value *)
  inputs : (string, Bitvec.t ref) Hashtbl.t;
  mutable dirty : bool; (* inputs changed since last evaluation *)
  mutable cycle : int;
  mutable watched : (Signal.t * Bitvec.t list ref) list; (* values latest-first *)
}

let m_sim_steps = lazy (Obs.Metrics.counter "sim.steps")

let create circuit =
  Obs.span "sim.create"
    ~attrs:[ ("circuit", Obs.Json.Str (Circuit.name circuit)) ]
  @@ fun () ->
  let values =
    Array.map (fun s -> Bitvec.zero (Signal.width s)) (Circuit.topo circuit)
  in
  let state = Hashtbl.create 64 in
  List.iter
    (fun r -> Hashtbl.replace state (Signal.uid r) (Signal.reg_of r).Signal.init)
    (Circuit.regs circuit);
  let inputs = Hashtbl.create 16 in
  List.iter
    (fun p ->
      Hashtbl.replace inputs p.Circuit.port_name
        (ref (Bitvec.zero (Signal.width p.Circuit.signal))))
    (Circuit.inputs circuit);
  { circuit; values; state; inputs; dirty = true; cycle = 0; watched = [] }

let circuit t = t.circuit

let reset t =
  List.iter
    (fun r -> Hashtbl.replace t.state (Signal.uid r) (Signal.reg_of r).Signal.init)
    (Circuit.regs t.circuit);
  Hashtbl.iter (fun _ v -> v := Bitvec.zero (Bitvec.width !v)) t.inputs;
  t.cycle <- 0;
  t.dirty <- true;
  List.iter (fun (_, log) -> log := []) t.watched

let set_input t name v =
  match Hashtbl.find_opt t.inputs name with
  | None -> failwith ("Sim.set_input: unknown input " ^ name)
  | Some r ->
      if Bitvec.width v <> Bitvec.width !r then
        failwith
          (Printf.sprintf "Sim.set_input(%s): width mismatch (%d vs %d)" name
             (Bitvec.width v) (Bitvec.width !r));
      r := v;
      t.dirty <- true

let set_input_int t name n =
  match Hashtbl.find_opt t.inputs name with
  | None -> failwith ("Sim.set_input_int: unknown input " ^ name)
  | Some r -> set_input t name (Bitvec.of_int ~width:(Bitvec.width !r) n)

let eval t =
  if t.dirty then begin
    let topo = Circuit.topo t.circuit in
    Array.iteri
      (fun i s ->
        let v =
          match Signal.op s with
          | Signal.Const v -> v
          | Signal.Input n -> !(Hashtbl.find t.inputs n)
          | Signal.Reg _ -> Hashtbl.find t.state (Signal.uid s)
          | op ->
              let arg k =
                t.values.(Circuit.node_index t.circuit (Signal.args s).(k))
              in
              (match op with
              | Signal.Not -> Bitvec.lognot (arg 0)
              | Signal.And -> Bitvec.logand (arg 0) (arg 1)
              | Signal.Or -> Bitvec.logor (arg 0) (arg 1)
              | Signal.Xor -> Bitvec.logxor (arg 0) (arg 1)
              | Signal.Add -> Bitvec.add (arg 0) (arg 1)
              | Signal.Sub -> Bitvec.sub (arg 0) (arg 1)
              | Signal.Mul -> Bitvec.mul (arg 0) (arg 1)
              | Signal.Eq -> Bitvec.of_bool (Bitvec.equal (arg 0) (arg 1))
              | Signal.Ult -> Bitvec.of_bool (Bitvec.ult (arg 0) (arg 1))
              | Signal.Slt -> Bitvec.of_bool (Bitvec.slt (arg 0) (arg 1))
              | Signal.Mux -> if Bitvec.bit (arg 0) 0 then arg 1 else arg 2
              | Signal.Concat ->
                  Bitvec.concat_list
                    (Array.to_list (Array.mapi (fun k _ -> arg k) (Signal.args s)))
              | Signal.Slice (hi, lo) -> Bitvec.extract ~hi ~lo (arg 0)
              | Signal.Const _ | Signal.Input _ | Signal.Reg _ -> assert false)
        in
        t.values.(i) <- v)
      topo;
    t.dirty <- false
  end

let peek t s =
  eval t;
  t.values.(Circuit.node_index t.circuit s)

let out t name = peek t (Circuit.find_output t.circuit name)
let out_int t name = Bitvec.to_int (out t name)

let reg_value t name =
  Hashtbl.find t.state (Signal.uid (Circuit.find_reg t.circuit name))

let step t =
  eval t;
  List.iter
    (fun (s, log) -> log := t.values.(Circuit.node_index t.circuit s) :: !log)
    t.watched;
  (* Read every next value before latching: updates must be simultaneous. *)
  let updates =
    List.map
      (fun r ->
        let next = Option.get (Signal.reg_of r).Signal.next in
        (Signal.uid r, t.values.(Circuit.node_index t.circuit next)))
      (Circuit.regs t.circuit)
  in
  List.iter (fun (uid, v) -> Hashtbl.replace t.state uid v) updates;
  t.cycle <- t.cycle + 1;
  t.dirty <- true;
  if Obs.Metrics.enabled () then Obs.Metrics.add (Lazy.force m_sim_steps) 1

let cycle t = t.cycle

let run t inputs =
  Array.iter
    (fun assignments ->
      List.iter (fun (n, v) -> set_input t n v) assignments;
      step t)
    inputs

let watch t signals =
  t.watched <- t.watched @ List.map (fun s -> (s, ref [])) signals

let waveform t =
  List.map (fun (s, log) -> (s, Array.of_list (List.rev !log))) t.watched

let pp_waveform fmt t =
  let wf = waveform t in
  let label s =
    match Signal.name s with
    | Some n -> n
    | None -> Format.asprintf "%a" Signal.pp s
  in
  let width = List.fold_left (fun m (s, _) -> max m (String.length (label s))) 0 wf in
  List.iter
    (fun (s, vs) ->
      Format.fprintf fmt "%-*s |" width (label s);
      Array.iter (fun v -> Format.fprintf fmt " %s" (Bitvec.to_hex_string v)) vs;
      Format.fprintf fmt "@.")
    wf

(** Counterexample provenance and campaign observability.

    A {!Bmc.cex} prints as a flat input trace; root-causing it is a
    manual waveform walk, exactly as Sec. 4 of the paper narrates. This
    module turns a raw CEX into the paper's actual deliverable — a
    {e classified covert channel} (Tables 1 and 2: culprit state element,
    divergence path, observable output) — in three steps:

    - {b backward trace slicing} ({!slice}): starting from the failing
      output at [cex_depth], walk the DUT's fan-in cone (via {!Opt.cone})
      cycle by cycle, keeping only signal pairs whose α/β values actually
      differ along the replayed trace. The walk yields a {e provenance
      chain} from the culprit register at the context switch, through
      the combinational/sequential logic that propagated the difference,
      to the observable output — the UPEC-style propagation analysis
      that turns a counterexample into a security finding;
    - {b minimization} ({!minimize}): greedily truncate the witness
      depth and rewrite don't-care input bits to zero, accepting a
      rewrite only if the trace, replayed on the interpreter
      ({!Bmc.validate}), still violates the same assertion under all
      assumptions — so every minimized witness is replay-verified;
    - {b clustering} ({!cluster}): fingerprint each CEX by (culprit
      register, register-level divergence-path signature) and
      deduplicate a whole run's CEX pool into distinct named channels,
      Table-1 style.

    {!Campaign} sweeps a list of DUT configurations, runs the
    per-assertion CEX sweep ({!Bmc.check_each}), explains and clusters
    every witness, and persists one JSON artifact per channel plus a
    self-contained static HTML report with a waveform strip per channel
    rendered from the sliced trace.

    All passes are instrumented with {!Obs} spans and metrics
    ([explain.slice], [explain.minimize], [explain.cluster]; slice width
    per cycle, minimization iterations, cluster count), so [--trace]
    covers explanation time too. *)

(** {1 Trace slicing} *)

type link_kind = Reg | Input | Output | Node

type link = {
  link_cycle : int;  (** cycle at which this hop's divergence is observed *)
  link_label : string;  (** register/port/debug name, or an op label *)
  link_kind : link_kind;
  link_a : Bitvec.t;  (** value in universe α at [link_cycle] *)
  link_b : Bitvec.t;  (** value in universe β at [link_cycle] *)
}

type slice = {
  sl_assert : string;  (** failing assertion the slice explains *)
  sl_output : string option;  (** DUT output port behind the assertion *)
  sl_chain : link list;
      (** provenance chain, origin first and observable output last; only
          named hops (registers, inputs, outputs, debug-named nodes) are
          kept *)
  sl_culprit : string option;
      (** the culprit register: the chain's earliest register still
          diverging when spy mode begins — {!Synthesis.find_cause} on the
          sliced register set *)
  sl_spy_start : int option;  (** first spy-mode cycle along the trace *)
  sl_depth : int;  (** [cex_depth] of the sliced witness *)
  sl_widths : int array;
      (** per-cycle count of diverging cone signals — the slice width,
          also recorded as the [explain.slice_width] metric series *)
  sl_trace : (string * link_kind * Bitvec.t array * Bitvec.t array) list;
      (** per-cycle α/β values of every chain hop plus the monitor
          signals, cycles [0 .. sl_depth] — the waveform strip the HTML
          report renders *)
}

val slice : Autocc.Ft.t -> Bmc.cex -> slice
(** Slice one counterexample. The failing assertion is
    [List.hd cex.cex_failed]; use {!slice_assert} to target another. *)

val slice_assert : Autocc.Ft.t -> Bmc.cex -> string -> slice
(** Slice with respect to a specific failing assertion name
    (["as__<output>_eq"]). *)

val pp_slice : Format.formatter -> slice -> unit
(** Human rendering: the provenance chain with per-hop α/β values, the
    culprit, and the slice width profile. *)

(** {1 Minimization} *)

type minimized = {
  mn_cex : Bmc.cex;  (** the minimized, replay-verified witness *)
  mn_depth_delta : int;  (** cycles removed from the original depth *)
  mn_zeroed_bits : int;  (** input bits rewritten from 1 to 0 *)
  mn_iterations : int;  (** replay trials performed *)
}

val minimize : Autocc.Ft.t -> Bmc.cex -> minimized
(** Greedy replay-checked reduction: first shrink [cex_depth] (BMC
    already returns shallowest-first, so this usually holds the depth),
    then rewrite whole input words and then individual set bits to zero.
    Every accepted rewrite is validated with {!Bmc.validate} — the
    assumptions must hold on every cycle and the {e original} failing
    assertion must still fail at the final depth, so the result provably
    witnesses the same channel. *)

(** {1 Clustering} *)

type channel = {
  ch_name : string;  (** ["<culprit> -> <output>"], unique per campaign entry *)
  ch_fingerprint : string;  (** culprit + register-path signature *)
  ch_culprit : string option;
  ch_asserts : string list;  (** failing assertions merged into this channel *)
  ch_raw_cexs : int;  (** raw CEXs deduplicated into this channel *)
  ch_slice : slice;  (** representative (shallowest) slice *)
  ch_min : minimized;  (** minimized representative witness *)
}

val fingerprint : slice -> string
(** The dedup key: culprit register plus the ordered register hops of the
    provenance chain (observable outputs excluded, so the same stale
    state read through two output ports is one channel). *)

val cluster : Autocc.Ft.t -> Bmc.cex list -> channel list
(** Slice + minimize every CEX and group them by {!fingerprint},
    shallowest representative first. *)

(** {1 Campaign driver} *)

module Campaign : sig
  type entry = {
    e_label : string;  (** e.g. ["maple/m3"] *)
    e_dut : string;
    e_ft : unit -> Autocc.Ft.t;  (** fresh FT per run *)
    e_max_depth : int;
  }

  type channel_ref = {
    cr_name : string;
    cr_culprit : string option;
    cr_min_depth : int;  (** [cex_depth] of the minimized witness *)
    cr_artifact : string;  (** artifact basename in the campaign directory *)
  }
  (** What [campaign.json] records per channel — enough to index and
      link the per-channel artifact without re-solving. Resumed entries
      carry only these refs (their full {!channel} values live in the
      persisted artifacts). *)

  type entry_result = {
    r_label : string;
    r_dut : string;
    r_status : [ `Done | `Failed of string ];
        (** [`Failed msg]: the entry raised; the campaign recorded the
            failure and moved on (crash isolation). *)
    r_channels : channel list;
        (** empty for a bounded proof, a failed entry, or a resumed
            entry (see {!field-r_index}) *)
    r_index : channel_ref list;  (** one ref per channel, fresh or resumed *)
    r_raw_cexs : int;  (** size of the per-assertion CEX pool *)
    r_asserts : int;  (** assertions swept *)
    r_unknowns : int;
        (** assertions still inconclusive after all retry rounds *)
    r_depth : int;  (** max depth checked *)
    r_wall_ms : int;
    r_resumed : bool;  (** reused from a previous run's artifacts *)
  }

  type t = {
    c_results : entry_result list;
    c_artifacts : string list;  (** paths written, campaign.json first *)
  }

  val run :
    ?opt:Opt.level ->
    ?incremental:bool ->
    ?symmetric:bool ->
    ?cache:Cache.t ->
    ?budget:Bmc.budget ->
    ?retry:Retry.policy ->
    ?resume:bool ->
    ?out_dir:string ->
    ?should_stop:(unit -> bool) ->
    entry list ->
    t
  (** Sweep the entries: per entry, run {!Bmc.check_each} over the FT's
      property set ([budget] granted per assertion; [incremental]
      forwarded to the engine — [false] selects the scratch differential
      oracle), explain and
      {!cluster} every counterexample. Assertions left [Unknown] by a
      transient cause (budget, fault) are re-swept under [retry]'s
      escalated budgets / alternate solver configs with capped backoff;
      whatever remains inconclusive is counted in [r_unknowns]. An
      exception inside one entry downgrades it to a [`Failed] record
      instead of aborting the campaign. [symmetric] (default [true])
      enables the two-universe symmetric template encoding inside each
      sweep; [cache] memoizes per-assertion verdicts content-addressed
      by cone structure (see {!Cache}), so a resumed or re-run campaign
      over an edited DUT re-solves only the assertions whose cones
      changed — complementary to [resume], which reuses whole-entry
      artifacts only when {e nothing} changed.

      With [out_dir] set, persist the artifacts: [campaign.json]
      (index), one [channel_<entry>_<n>.json] per channel
      ({!json_of_channel}, schema ["autocc.channel/1"]) and a
      self-contained [report.html] with a waveform strip per channel.
      The index and report are rewritten after {e every} entry, so a
      killed campaign keeps all completed work. The directory is
      created if missing; an unwritable directory raises [Failure]
      before any solving starts.

      With [resume] set (requires [out_dir]), entries whose persisted
      record is conclusive — status ["done"], zero unknowns, same DUT
      and depth, every channel artifact present and valid — are reused
      without re-solving ([r_resumed = true]); all others are
      recomputed. Resuming an already-complete campaign rewrites
      [campaign.json] byte-identically.

      [should_stop] (default: never) is polled at each entry boundary;
      when it returns [true] the remaining entries are skipped and the
      already-checkpointed results returned — the hook signal handlers
      use to turn SIGTERM/SIGINT into a clean, resumable checkpoint
      instead of a mid-entry kill. *)

  val json_of_channel : label:string -> dut:string -> channel -> Obs.Json.t
  (** The per-channel artifact: schema tag, channel naming, provenance
      chain, minimized witness (inputs as hex), slice widths, spy start
      and a telemetry snapshot. *)

  val json_of_campaign : t -> Obs.Json.t
  (** The [campaign.json] index: schema ["autocc.campaign/2"], one entry
      per result with status, counters and channel refs. Values are
      integers and strings only (wall time as [wall_ms]) with a fixed
      field order, so re-emitting a parsed index is byte-identical —
      the property [--resume] relies on. *)

  val html_report : t -> string
  (** The self-contained static HTML report. *)

  val pp : Format.formatter -> t -> unit
  (** Table-1-style text rendering: one line per entry, channels with
      culprit → output provenance and minimized depth. *)
end

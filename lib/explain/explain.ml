module Signal = Rtl.Signal
module Circuit = Rtl.Circuit
module Ft = Autocc.Ft
module Json = Obs.Json

type link_kind = Reg | Input | Output | Node

type link = {
  link_cycle : int;
  link_label : string;
  link_kind : link_kind;
  link_a : Bitvec.t;
  link_b : Bitvec.t;
}

type slice = {
  sl_assert : string;
  sl_output : string option;
  sl_chain : link list;
  sl_culprit : string option;
  sl_spy_start : int option;
  sl_depth : int;
  sl_widths : int array;
  sl_trace : (string * link_kind * Bitvec.t array * Bitvec.t array) list;
}

let kind_to_string = function
  | Reg -> "reg"
  | Input -> "input"
  | Output -> "output"
  | Node -> "node"

(* "as__<out>_eq" -> Some "<out>"; the assertion naming of Ft.generate. *)
let output_of_assert name =
  let pre = "as__" and suf = "_eq" in
  let lp = String.length pre and ls = String.length suf in
  let n = String.length name in
  if n > lp + ls && String.sub name 0 lp = pre && String.sub name (n - ls) ls = suf
  then Some (String.sub name lp (n - lp - ls))
  else None

let m_slice_width = lazy (Obs.Metrics.series "explain.slice_width")

let slice_assert ft cex assert_name =
  Obs.span "explain.slice" ~attrs:[ ("assert", Json.Str assert_name) ]
  @@ fun () ->
  let dut = ft.Ft.dut in
  let depth = cex.Bmc.cex_depth in
  let out_name = output_of_assert assert_name in
  let root =
    Option.bind out_name (fun n ->
        match Circuit.find_output dut n with
        | s -> Some s
        | exception Not_found -> None)
  in
  (* Watch the α/β images of every node that can affect the failing
     output, plus the monitor signals of the wrapper. *)
  let cone =
    match root with
    | None -> []
    | Some s ->
        List.filter
          (fun n -> match Signal.op n with Signal.Const _ -> false | _ -> true)
          (Opt.cone dut ~roots:[ s ])
  in
  let pairs =
    List.filter_map
      (fun n ->
        match (ft.Ft.map_a n, ft.Ft.map_b n) with
        | a, b
          when Circuit.mem_node cex.Bmc.cex_circuit a
               && Circuit.mem_node cex.Bmc.cex_circuit b ->
            Some (n, a, b)
        | _ -> None
        | exception Not_found -> None)
      cone
  in
  let monitors =
    [
      ("spy_mode", ft.Ft.spy_mode);
      ("transfer_cond", ft.Ft.transfer_cond);
      ("eq_cnt", ft.Ft.eq_cnt);
      ("flush_done", ft.Ft.flush_done);
    ]
  in
  let watched =
    List.map snd monitors @ List.concat_map (fun (_, a, b) -> [ a; b ]) pairs
  in
  let values = Bmc.replay_values cex watched in
  let arr s = List.assq s values in
  (* Per-DUT-node α/β value arrays, keyed by uid. *)
  let tbl = Hashtbl.create 256 in
  List.iter (fun (n, a, b) -> Hashtbl.replace tbl (Signal.uid n) (arr a, arr b)) pairs;
  let diverges n t =
    match Hashtbl.find_opt tbl (Signal.uid n) with
    | Some (va, vb) -> t >= 0 && t < Array.length va && not (Bitvec.equal va.(t) vb.(t))
    | None -> false
  in
  let widths =
    Array.init (depth + 1) (fun t ->
        List.length (List.filter (fun (n, _, _) -> diverges n t) pairs))
  in
  Array.iter
    (fun w -> Obs.Metrics.record (Lazy.force m_slice_width) (float_of_int w))
    widths;
  (* Backward walk: each visited node genuinely diverges at its cycle. A
     combinational node with equal args would be equal, so some arg
     diverges at the same cycle; a register holds its next's value of the
     previous cycle. Cycles never increase and intra-cycle hops follow
     the combinational DAG, so the walk terminates. *)
  let rec walk acc n t =
    let acc = (n, t) :: acc in
    match Signal.op n with
    | Signal.Input _ | Signal.Const _ -> acc
    | Signal.Reg r -> (
        if t = 0 then acc
        else
          match r.Signal.next with
          | Some nx when diverges nx (t - 1) -> walk acc nx (t - 1)
          | _ -> acc)
    | Signal.Mux
      when (not (diverges (Signal.args n).(0) t))
           && Hashtbl.mem tbl (Signal.uid (Signal.args n).(0)) -> (
        (* Equal select: follow the branch it actually selects. *)
        let va, _ = Hashtbl.find tbl (Signal.uid (Signal.args n).(0)) in
        let picked = (Signal.args n).(if Bitvec.bit va.(t) 0 then 1 else 2) in
        if diverges picked t then walk acc picked t else acc)
    | _ -> (
        match Array.to_list (Signal.args n) |> List.find_opt (fun a -> diverges a t) with
        | Some a -> walk acc a t
        | None -> acc)
  in
  let raw =
    match root with
    | None -> []
    | Some s ->
        (* The assertion failed at [depth]; with payload gating the port
           itself may first differ slightly earlier — slice from the
           latest cycle at which it does. [walk] prepends as it descends,
           so the result is already origin-first, output last. *)
        let rec latest t = if t < 0 then None else if diverges s t then Some t else latest (t - 1) in
        (match latest depth with
        | Some t -> walk [] s t
        | None -> [])
  in
  (* A hop is kept in the chain only if it has a stable name. *)
  let named_node n =
    match Signal.op n with
    | Signal.Reg r -> Some (r.Signal.reg_name, Reg)
    | Signal.Input i -> Some (i, Input)
    | _ -> Option.map (fun l -> (l, Node)) (Signal.name n)
  in
  let link_of (n, t) (label, kind) =
    let a, b =
      match Hashtbl.find_opt tbl (Signal.uid n) with
      | Some (va, vb) -> (va.(t), vb.(t))
      | None ->
          let z = Bitvec.zero (Signal.width n) in
          (z, z)
    in
    { link_cycle = t; link_label = label; link_kind = kind; link_a = a; link_b = b }
  in
  let chain =
    match raw with
    | [] -> []
    | _ ->
        let rec split_last acc = function
          | [] -> assert false
          | [ last ] -> (List.rev acc, last)
          | hop :: tl -> split_last (hop :: acc) tl
        in
        let body_hops, ((last_n, _) as last) = split_last [] raw in
        (* Named hops only; the observable output is always last, under
           its port name. A register the divergence merely persists in
           appears once per cycle along the walk — collapse those runs,
           or the same channel at two depths would fingerprint apart. *)
        let body =
          List.filter_map
            (fun ((n, _) as hop) -> Option.map (link_of hop) (named_node n))
            body_hops
        in
        let body =
          List.fold_left
            (fun acc l ->
              match acc with
              | prev :: _
                when prev.link_label = l.link_label && prev.link_kind = l.link_kind
                -> acc
              | _ -> l :: acc)
            [] body
          |> List.rev
        in
        let out_link =
          match out_name with
          | Some o -> [ link_of last (o, Output) ]
          | None -> Option.to_list (Option.map (link_of last) (named_node last_n))
        in
        body @ out_link
  in
  let chain_regs =
    List.filter_map (fun l -> if l.link_kind = Reg then Some l.link_label else None) chain
    |> List.sort_uniq compare
  in
  let culprit =
    match Autocc.Synthesis.find_cause ft cex ~candidates:chain_regs ~already_flushed:[] with
    | Some c -> Some c
    | None -> (
        match Autocc.Report.first_divergence ft cex with
        | (n, _) :: _ -> Some n
        | [] -> None)
  in
  (* Waveform strip: the monitor signals, every distinct named chain hop
     (full per-cycle α/β arrays), and the observable output last. *)
  let row_of_node label kind n =
    Option.map
      (fun (va, vb) -> (label, kind, va, vb))
      (Hashtbl.find_opt tbl (Signal.uid n))
  in
  let strip_hops =
    let out_row =
      match (root, out_name) with
      | Some s, Some o -> Option.to_list (row_of_node o Output s)
      | _ -> []
    in
    let hop_rows =
      List.filter_map
        (fun (n, _) ->
          match named_node n with
          | Some (label, kind)
            when not (List.exists (fun (o, _, _, _) -> o = label) out_row) ->
              row_of_node label kind n
          | _ -> None)
        raw
    in
    let seen = Hashtbl.create 8 in
    List.filter
      (fun (label, _, _, _) ->
        if Hashtbl.mem seen label then false
        else begin
          Hashtbl.replace seen label ();
          true
        end)
      hop_rows
    @ out_row
  in
  let trace =
    List.map (fun (lbl, s) -> let v = arr s in (lbl, Node, v, v)) monitors
    @ strip_hops
  in
  {
    sl_assert = assert_name;
    sl_output = out_name;
    sl_chain = chain;
    sl_culprit = culprit;
    sl_spy_start = Ft.spy_start_cycle ft cex;
    sl_depth = depth;
    sl_widths = widths;
    sl_trace = trace;
  }

let slice ft cex =
  match cex.Bmc.cex_failed with
  | [] -> invalid_arg "Explain.slice: counterexample with no failing assertion"
  | a :: _ -> slice_assert ft cex a

let pp_slice fmt sl =
  Format.fprintf fmt "slice of %s (depth %d%s):@." sl.sl_assert (sl.sl_depth + 1)
    (match sl.sl_spy_start with
    | Some c -> Printf.sprintf ", spy from cycle %d" c
    | None -> "");
  (match sl.sl_culprit with
  | Some c -> Format.fprintf fmt "  culprit register: %s@." c
  | None -> Format.fprintf fmt "  culprit register: (none identified)@.");
  List.iter
    (fun l ->
      Format.fprintf fmt "  [%d] %-7s %-24s %s vs %s@." l.link_cycle
        (kind_to_string l.link_kind) l.link_label
        (Bitvec.to_hex_string l.link_a) (Bitvec.to_hex_string l.link_b))
    sl.sl_chain;
  Format.fprintf fmt "  slice width per cycle: %s@."
    (String.concat " " (Array.to_list (Array.map string_of_int sl.sl_widths)))

(* {1 Minimization} *)

type minimized = {
  mn_cex : Bmc.cex;
  mn_depth_delta : int;
  mn_zeroed_bits : int;
  mn_iterations : int;
}

let m_min_iterations = lazy (Obs.Metrics.counter "explain.min_iterations")
let m_min_zeroed = lazy (Obs.Metrics.counter "explain.min_zeroed_bits")

let popcount v = Array.fold_left (fun n b -> if b then n + 1 else n) 0 (Bitvec.to_bits v)

let minimize ft cex =
  Obs.span "explain.minimize"
    ~attrs:[ ("depth", Json.Int cex.Bmc.cex_depth) ]
  @@ fun () ->
  let targets = cex.Bmc.cex_failed in
  (* Restrict the property to the assertions this CEX actually
     violates: a per-assertion sweep instruments only those, so the
     others may not be nodes of [cex_circuit]. *)
  let prop =
    {
      Bmc.assumes = ft.Ft.property.Bmc.assumes;
      Bmc.asserts =
        List.filter (fun (n, _) -> List.mem n targets) ft.Ft.property.Bmc.asserts;
    }
  in
  let iterations = ref 0 in
  (* A trial passes when replay raises no mismatch (assumptions hold,
     something fails at the final depth) and one of the original failing
     assertions is among the failures. *)
  let ok inputs depth =
    incr iterations;
    match Bmc.validate cex.Bmc.cex_circuit prop inputs depth with
    | failed -> if List.exists (fun n -> List.mem n targets) failed then Some failed else None
    | exception Bmc.Replay_mismatch _ -> None
  in
  (match ok cex.Bmc.cex_inputs cex.Bmc.cex_depth with
  | None ->
      raise
        (Bmc.Replay_mismatch
           "Explain.minimize: counterexample does not replay against the FT property")
  | Some _ -> ());
  (* Depth: try each shallower prefix, shallowest first. [Bmc.check]
     already returns the shallowest failure, so this usually confirms
     rather than shrinks — but it re-verifies, and minimizes CEXs that
     arrive from other sources (induction refutations, files). *)
  let depth = ref cex.Bmc.cex_depth in
  let inputs = ref cex.Bmc.cex_inputs in
  let failed = ref targets in
  (try
     for d = 0 to cex.Bmc.cex_depth - 1 do
       let trunc = Array.sub cex.Bmc.cex_inputs 0 (d + 1) in
       match ok trunc d with
       | Some f ->
           depth := d;
           inputs := trunc;
           failed := f;
           raise Exit
       | None -> ()
     done
   with Exit -> ());
  (* Inputs: zero whole words, then single bits, greedily; every accepted
     rewrite re-replayed the full trace above. *)
  let current = Array.copy !inputs in
  let replace c name v =
    let arr = Array.copy current in
    arr.(c) <-
      List.map (fun (n, v') -> if String.equal n name then (n, v) else (n, v')) arr.(c);
    arr
  in
  let zeroed = ref 0 in
  Array.iteri
    (fun c assignments ->
      List.iter
        (fun (name, v) ->
          if not (Bitvec.is_zero v) then begin
            let w = Bitvec.width v in
            let trial = replace c name (Bitvec.zero w) in
            match ok trial !depth with
            | Some f ->
                current.(c) <- trial.(c);
                failed := f;
                zeroed := !zeroed + popcount v
            | None ->
                (* Word is load-bearing; try its set bits one by one. *)
                for i = 0 to w - 1 do
                  let v' = List.assoc name current.(c) in
                  if Bitvec.bit v' i then begin
                    let mask =
                      Bitvec.lognot (Bitvec.shift_left (Bitvec.one w) i)
                    in
                    let trial = replace c name (Bitvec.logand v' mask) in
                    match ok trial !depth with
                    | Some f ->
                        current.(c) <- trial.(c);
                        failed := f;
                        incr zeroed
                    | None -> ()
                  end
                done
          end)
        assignments)
    current;
  Obs.Metrics.add (Lazy.force m_min_iterations) !iterations;
  Obs.Metrics.add (Lazy.force m_min_zeroed) !zeroed;
  {
    mn_cex =
      {
        cex with
        Bmc.cex_depth = !depth;
        Bmc.cex_inputs = current;
        Bmc.cex_failed = !failed;
      };
    mn_depth_delta = cex.Bmc.cex_depth - !depth;
    mn_zeroed_bits = !zeroed;
    mn_iterations = !iterations;
  }

(* {1 Clustering} *)

type channel = {
  ch_name : string;
  ch_fingerprint : string;
  ch_culprit : string option;
  ch_asserts : string list;
  ch_raw_cexs : int;
  ch_slice : slice;
  ch_min : minimized;
}

let fingerprint sl =
  let culprit = Option.value ~default:"?" sl.sl_culprit in
  let hops =
    List.filter_map
      (fun l -> if l.link_kind = Reg then Some l.link_label else None)
      sl.sl_chain
  in
  Printf.sprintf "culprit=%s;path=%s" culprit (String.concat ">" hops)

let m_clusters = lazy (Obs.Metrics.gauge "explain.clusters")

let cluster ft cexs =
  Obs.span "explain.cluster"
    ~attrs:[ ("cexs", Json.Int (List.length cexs)) ]
  @@ fun () ->
  let explained = List.map (fun c -> (slice ft c, minimize ft c)) cexs in
  (* Group by fingerprint, preserving first-seen order. *)
  let order = ref [] in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (sl, mn) ->
      let fp = fingerprint sl in
      match Hashtbl.find_opt groups fp with
      | Some members -> members := (sl, mn) :: !members
      | None ->
          Hashtbl.replace groups fp (ref [ (sl, mn) ]);
          order := fp :: !order)
    explained;
  let channels =
    List.rev_map
      (fun fp ->
        let members = List.rev !(Hashtbl.find groups fp) in
        let rep_sl, rep_mn =
          List.fold_left
            (fun (bs, bm) (sl, mn) ->
              if mn.mn_cex.Bmc.cex_depth < bm.mn_cex.Bmc.cex_depth then (sl, mn)
              else (bs, bm))
            (List.hd members) (List.tl members)
        in
        let asserts =
          List.sort_uniq compare (List.map (fun (sl, _) -> sl.sl_assert) members)
        in
        let name =
          Printf.sprintf "%s->%s"
            (Option.value ~default:"in-flight" rep_sl.sl_culprit)
            (Option.value ~default:rep_sl.sl_assert rep_sl.sl_output)
        in
        {
          ch_name = name;
          ch_fingerprint = fp;
          ch_culprit = rep_sl.sl_culprit;
          ch_asserts = asserts;
          ch_raw_cexs = List.length members;
          ch_slice = rep_sl;
          ch_min = rep_mn;
        })
      !order
    |> List.rev
    |> List.stable_sort (fun a b ->
           compare a.ch_min.mn_cex.Bmc.cex_depth b.ch_min.mn_cex.Bmc.cex_depth)
  in
  (* Same culprit and output via distinct paths: disambiguate names. *)
  let channels =
    List.mapi
      (fun i ch ->
        let dup =
          List.exists
            (fun (j, other) -> j < i && other.ch_name = ch.ch_name)
            (List.mapi (fun j o -> (j, o)) channels)
        in
        if dup then { ch with ch_name = Printf.sprintf "%s#%d" ch.ch_name i } else ch)
      channels
  in
  Obs.Metrics.set (Lazy.force m_clusters) (float_of_int (List.length channels));
  channels

(* {1 Campaign driver} *)

module Campaign = struct
  type entry = {
    e_label : string;
    e_dut : string;
    e_ft : unit -> Ft.t;
    e_max_depth : int;
  }

  type channel_ref = {
    cr_name : string;
    cr_culprit : string option;
    cr_min_depth : int;
    cr_artifact : string;
  }

  type entry_result = {
    r_label : string;
    r_dut : string;
    r_status : [ `Done | `Failed of string ];
    r_channels : channel list;
    r_index : channel_ref list;
    r_raw_cexs : int;
    r_asserts : int;
    r_unknowns : int;
    r_depth : int;
    r_wall_ms : int;
    r_resumed : bool;
  }

  type t = { c_results : entry_result list; c_artifacts : string list }

  let sanitize label =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
      label

  let artifact_name label i = Printf.sprintf "channel_%s_%d.json" (sanitize label) i

  let json_of_link l =
    Json.Obj
      [
        ("cycle", Json.Int l.link_cycle);
        ("signal", Json.Str l.link_label);
        ("kind", Json.Str (kind_to_string l.link_kind));
        ("alpha", Json.Str (Bitvec.to_hex_string l.link_a));
        ("beta", Json.Str (Bitvec.to_hex_string l.link_b));
      ]

  let json_opt_str = function None -> Json.Null | Some s -> Json.Str s
  let json_opt_int = function None -> Json.Null | Some i -> Json.Int i

  let json_of_channel ~label ~dut ch =
    let sl = ch.ch_slice and mn = ch.ch_min in
    Json.Obj
      [
        ("schema", Json.Str "autocc.channel/1");
        ("label", Json.Str label);
        ("dut", Json.Str dut);
        ( "channel",
          Json.Obj
            [
              ("name", Json.Str ch.ch_name);
              ("culprit", json_opt_str ch.ch_culprit);
              ("fingerprint", Json.Str ch.ch_fingerprint);
              ("asserts", Json.List (List.map (fun a -> Json.Str a) ch.ch_asserts));
              ("raw_cexs", Json.Int ch.ch_raw_cexs);
            ] );
        ( "witness",
          Json.Obj
            [
              ("depth", Json.Int mn.mn_cex.Bmc.cex_depth);
              ("depth_delta", Json.Int mn.mn_depth_delta);
              ("zeroed_bits", Json.Int mn.mn_zeroed_bits);
              ("iterations", Json.Int mn.mn_iterations);
              ( "inputs",
                Json.List
                  (Array.to_list
                     (Array.map
                        (fun assignments ->
                          Json.Obj
                            (List.map
                               (fun (n, v) -> (n, Json.Str (Bitvec.to_hex_string v)))
                               assignments))
                        mn.mn_cex.Bmc.cex_inputs)) );
            ] );
        ("provenance", Json.List (List.map json_of_link sl.sl_chain));
        ( "slice",
          Json.Obj
            [
              ("assert", Json.Str sl.sl_assert);
              ("output", json_opt_str sl.sl_output);
              ("spy_start", json_opt_int sl.sl_spy_start);
              ( "widths",
                Json.List
                  (Array.to_list (Array.map (fun w -> Json.Int w) sl.sl_widths)) );
            ] );
        ("telemetry", Obs.Metrics.json_of_snapshot ());
      ]

  let ref_of_channel ~label i ch =
    {
      cr_name = ch.ch_name;
      cr_culprit = ch.ch_culprit;
      cr_min_depth = ch.ch_min.mn_cex.Bmc.cex_depth;
      cr_artifact = artifact_name label i;
    }

  (* The campaign index (schema 2) is the resume ledger, so it must be
     byte-stable across re-emission: every field is an Int/Str/Null
     (wall clock in integer milliseconds — the float printer is not
     read-back exact), field order is fixed here, and no volatile
     telemetry snapshot is embedded (it lives in the HTML report and the
     per-channel artifacts instead). Re-parsing a record and printing it
     again reproduces the original bytes. *)
  let json_of_entry r =
    Json.Obj
      [
        ("label", Json.Str r.r_label);
        ("dut", Json.Str r.r_dut);
        ( "status",
          Json.Str (match r.r_status with `Done -> "done" | `Failed _ -> "failed")
        );
        ( "error",
          match r.r_status with `Done -> Json.Null | `Failed m -> Json.Str m );
        ("asserts", Json.Int r.r_asserts);
        ("raw_cexs", Json.Int r.r_raw_cexs);
        ("unknowns", Json.Int r.r_unknowns);
        ("max_depth", Json.Int r.r_depth);
        ("wall_ms", Json.Int r.r_wall_ms);
        ( "channels",
          Json.List
            (List.map
               (fun cr ->
                 Json.Obj
                   [
                     ("name", Json.Str cr.cr_name);
                     ("culprit", json_opt_str cr.cr_culprit);
                     ("minimized_depth", Json.Int cr.cr_min_depth);
                     ("artifact", Json.Str cr.cr_artifact);
                   ])
               r.r_index) );
      ]

  let json_of_campaign t =
    Json.Obj
      [
        ("schema", Json.Str "autocc.campaign/2");
        ("entries", Json.List (List.map json_of_entry t.c_results));
      ]

  let html_escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '<' -> Buffer.add_string b "&lt;"
        | '>' -> Buffer.add_string b "&gt;"
        | '&' -> Buffer.add_string b "&amp;"
        | '"' -> Buffer.add_string b "&quot;"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let html_report t =
    let b = Buffer.create 16384 in
    let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    pf
      {|<!doctype html>
<html><head><meta charset="utf-8"><title>AutoCC campaign report</title>
<style>
body { font-family: sans-serif; margin: 2em; color: #222; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #bbb; padding: 2px 8px; font-family: monospace; font-size: 0.9em; }
th { background: #eee; }
td.diff { background: #ffd7d7; font-weight: bold; }
td.spy { border-top: 2px solid #c00; }
.chain li { font-family: monospace; }
.meta { color: #555; }
details pre { background: #f6f6f6; padding: 0.5em; overflow-x: auto; }
h3 { margin-bottom: 0.2em; }
</style></head><body>
<h1>AutoCC campaign report</h1>
|};
    pf
      "<table><tr><th>entry</th><th>DUT</th><th>status</th><th>assertions</th><th>raw \
       CEXs</th><th>unknown</th><th>channels</th><th>max depth</th><th>wall \
       (s)</th></tr>\n";
    List.iter
      (fun r ->
        pf
          "<tr><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%.3f</td></tr>\n"
          (html_escape r.r_label) (html_escape r.r_dut)
          (match r.r_status with
          | `Done when r.r_resumed -> "done (resumed)"
          | `Done -> "done"
          | `Failed _ -> "failed")
          r.r_asserts r.r_raw_cexs r.r_unknowns
          (List.length r.r_index)
          r.r_depth
          (float_of_int r.r_wall_ms /. 1000.))
      t.c_results;
    pf "</table>\n";
    List.iter
      (fun r ->
        pf "<h2>%s <span class=\"meta\">(%s)</span></h2>\n" (html_escape r.r_label)
          (html_escape r.r_dut);
        (match r.r_status with
        | `Failed msg ->
            pf "<p class=\"meta\">entry failed: <code>%s</code></p>\n"
              (html_escape msg)
        | `Done -> ());
        if r.r_unknowns > 0 then
          pf
            "<p class=\"meta\">%d assertion%s inconclusive (budget or fault) — \
             rerun with <code>--resume</code> and a larger budget.</p>\n"
            r.r_unknowns
            (if r.r_unknowns = 1 then "" else "s");
        if r.r_resumed then begin
          (* Resumed entries re-list their persisted artifacts; the
             sliced traces needed for waveform strips are not serialized,
             so the compact index links to the channel JSON instead. *)
          pf "<p>Channels (from persisted artifacts):</p>\n<ul>\n";
          List.iter
            (fun cr ->
              pf "<li><b>%s</b> — culprit <code>%s</code>, minimized depth %d: <a href=\"%s\">%s</a></li>\n"
                (html_escape cr.cr_name)
                (html_escape (Option.value ~default:"(in-flight)" cr.cr_culprit))
                (cr.cr_min_depth + 1)
                (html_escape cr.cr_artifact) (html_escape cr.cr_artifact))
            r.r_index;
          pf "</ul>\n"
        end
        else if r.r_channels = [] then begin
          if r.r_status = `Done && r.r_unknowns = 0 then
            pf "<p>No channel: every assertion has a bounded proof to depth %d.</p>\n"
              r.r_depth
        end
        else
          List.iter
            (fun ch ->
              let sl = ch.ch_slice and mn = ch.ch_min in
              pf "<h3>%s</h3>\n" (html_escape ch.ch_name);
              pf
                "<p class=\"meta\">culprit: <code>%s</code> · assertions: %s · %d raw \
                 CEX%s · minimized depth %d (−%d cycles, %d bits zeroed, %d replays)%s</p>\n"
                (html_escape (Option.value ~default:"(in-flight)" ch.ch_culprit))
                (String.concat ", "
                   (List.map (fun a -> "<code>" ^ html_escape a ^ "</code>") ch.ch_asserts))
                ch.ch_raw_cexs
                (if ch.ch_raw_cexs = 1 then "" else "s")
                (mn.mn_cex.Bmc.cex_depth + 1)
                mn.mn_depth_delta mn.mn_zeroed_bits mn.mn_iterations
                (match sl.sl_spy_start with
                | Some c -> Printf.sprintf " · spy mode from cycle %d" c
                | None -> "");
              pf "<p>Provenance (origin to observable output):</p>\n<ol class=\"chain\">\n";
              List.iter
                (fun l ->
                  pf "<li>cycle %d: %s <b>%s</b> — α=%s β=%s</li>\n" l.link_cycle
                    (kind_to_string l.link_kind) (html_escape l.link_label)
                    (html_escape (Bitvec.to_hex_string l.link_a))
                    (html_escape (Bitvec.to_hex_string l.link_b)))
                sl.sl_chain;
              pf "</ol>\n";
              (* Waveform strip: one row per sliced signal, one column per
                 cycle; diverging cells highlighted. *)
              pf "<table><tr><th>signal</th>";
              for c = 0 to sl.sl_depth do
                pf "<th>%d%s</th>" c
                  (if sl.sl_spy_start = Some c then "&nbsp;spy" else "")
              done;
              pf "</tr>\n";
              List.iter
                (fun (label, kind, va, vb) ->
                  pf "<tr><td>%s%s</td>" (html_escape label)
                    (match kind with
                    | Reg -> " <span class=\"meta\">reg</span>"
                    | Output -> " <span class=\"meta\">out</span>"
                    | Input -> " <span class=\"meta\">in</span>"
                    | Node -> "");
                  for c = 0 to sl.sl_depth do
                    if c < Array.length va then
                      if Bitvec.equal va.(c) vb.(c) then
                        pf "<td>%s</td>" (html_escape (Bitvec.to_hex_string va.(c)))
                      else
                        pf "<td class=\"diff\">%s&nbsp;∣&nbsp;%s</td>"
                          (html_escape (Bitvec.to_hex_string va.(c)))
                          (html_escape (Bitvec.to_hex_string vb.(c)))
                    else pf "<td></td>"
                  done;
                  pf "</tr>\n")
                sl.sl_trace;
              pf "</table>\n")
            r.r_channels)
      t.c_results;
    pf "<h2>Telemetry</h2>\n<details open><summary>metrics snapshot</summary><pre>%s</pre></details>\n"
      (html_escape (Json.to_string (Obs.Metrics.json_of_snapshot ())));
    pf "</body></html>\n";
    Buffer.contents b

  let rec mkdir_p dir =
    if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  (* {2 Resume support}

     The resume ledger is campaign.json itself: a persisted entry is
     reusable only when it is conclusively done — status "done", zero
     unknowns, the DUT and depth unchanged, and every referenced channel
     artifact still parsing with the autocc.channel/1 schema. Anything
     less (failed, inconclusive, missing or corrupt artifact) is
     recomputed. Reused entries re-emit their persisted records through
     the same fixed-order integer-only printer, so resuming a finished
     campaign rewrites campaign.json byte-identically. *)

  type persisted = {
    p_dut : string;
    p_asserts : int;
    p_raw_cexs : int;
    p_depth : int;
    p_wall_ms : int;
    p_refs : channel_ref list;
  }

  let read_json path =
    try
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.parse s with Ok j -> Some j | Error _ -> None
    with Sys_error _ -> None

  let jstr = function Some (Json.Str s) -> Some s | _ -> None
  let jint = function Some (Json.Int i) -> Some i | _ -> None

  let ref_of_json j =
    let ( let* ) = Option.bind in
    let* name = jstr (Json.member "name" j) in
    let culprit = jstr (Json.member "culprit" j) in
    let* depth = jint (Json.member "minimized_depth" j) in
    let* artifact = jstr (Json.member "artifact" j) in
    (* Artifact names are generated by [artifact_name]; refuse anything
       that could escape the campaign directory. *)
    if Filename.basename artifact <> artifact then None
    else Some { cr_name = name; cr_culprit = culprit; cr_min_depth = depth; cr_artifact = artifact }

  let persisted_of_json dir j =
    let ( let* ) = Option.bind in
    let* label = jstr (Json.member "label" j) in
    let* dut = jstr (Json.member "dut" j) in
    let* status = jstr (Json.member "status" j) in
    let* asserts = jint (Json.member "asserts" j) in
    let* raw_cexs = jint (Json.member "raw_cexs" j) in
    let* unknowns = jint (Json.member "unknowns" j) in
    let* depth = jint (Json.member "max_depth" j) in
    let* wall_ms = jint (Json.member "wall_ms" j) in
    let* chans =
      match Json.member "channels" j with Some (Json.List l) -> Some l | _ -> None
    in
    if status <> "done" || unknowns <> 0 then None
    else
      let* refs =
        List.fold_left
          (fun acc cj ->
            let* acc = acc in
            let* r = ref_of_json cj in
            Some (r :: acc))
          (Some []) chans
      in
      let refs = List.rev refs in
      let artifact_ok cr =
        match read_json (Filename.concat dir cr.cr_artifact) with
        | Some cj -> jstr (Json.member "schema" cj) = Some "autocc.channel/1"
        | None -> false
      in
      if List.for_all artifact_ok refs then
        Some
          ( label,
            {
              p_dut = dut;
              p_asserts = asserts;
              p_raw_cexs = raw_cexs;
              p_depth = depth;
              p_wall_ms = wall_ms;
              p_refs = refs;
            } )
      else None

  let load_resume dir =
    match read_json (Filename.concat dir "campaign.json") with
    | Some j when jstr (Json.member "schema" j) = Some "autocc.campaign/2" -> (
        match Json.member "entries" j with
        | Some (Json.List l) -> List.filter_map (persisted_of_json dir) l
        | _ -> [])
    | _ -> []

  (* {2 The per-entry sweep}

     [check_each] with a per-assertion budget, then retry rounds: only
     the assertions whose verdict is a transient Unknown (budget or
     fault) are re-swept, with the policy's escalated budget and
     alternate configuration, after the capped backoff. Conclusive
     verdicts from earlier rounds are never re-run and never change. *)
  let sweep ?opt ?incremental ?(symmetric = true) ?cache ?(beat = fun () -> ())
      ~budget ~retry ft ~max_depth =
    let property = ft.Ft.property in
    let run_asserts ~attempt asserts =
      Bmc.check_each ~max_depth ?opt ?incremental
        ~progress:(fun _ -> beat ())
        ~sym:(if symmetric then ft.Ft.sym else [])
        ?cache
        ?solver_config:(Retry.config_for retry ~attempt)
        ~budget:(Retry.budget_for retry budget ~attempt)
        ft.Ft.wrapper
        { Bmc.assumes = property.Bmc.assumes; asserts }
    in
    let rec refine attempt (outcomes : (string * Bmc.outcome) list) =
      let transient =
        List.filter_map
          (fun ((n, o) : string * Bmc.outcome) ->
            match o with
            | Bmc.Unknown (r, _) when Retry.should_retry retry ~attempt r ->
                Some (n, r)
            | _ -> None)
          outcomes
      in
      let transient_names = List.map fst transient in
      if transient = [] then outcomes
      else begin
        let attempt = attempt + 1 in
        List.iter
          (fun (n, r) ->
            Obs.Bus.publish
              ~label:(Obs.Bus.sub_label n)
              (Obs.Bus.Retry
                 { attempt; reason = Bmc.unknown_reason_to_string r }))
          transient;
        Obs.log
          ~attrs:
            [
              ("attempt", Json.Int attempt);
              ("asserts", Json.Int (List.length transient));
            ]
          Obs.Debug "explain.retry";
        let d = Retry.backoff_s retry ~attempt in
        if d > 0. then Unix.sleepf d;
        let redo =
          run_asserts ~attempt
            (List.filter
               (fun (n, _) -> List.mem n transient_names)
               property.Bmc.asserts)
        in
        refine attempt
          (List.map
             (fun (n, o) ->
               match List.assoc_opt n redo with Some o' -> (n, o') | None -> (n, o))
             outcomes)
      end
    in
    refine 0 (run_asserts ~attempt:0 property.Bmc.asserts)

  (* {2 Heartbeats}

     [heartbeats.json] lives beside [campaign.json] but is deliberately
     a separate file: campaign.json must stay byte-identical across a
     no-op [--resume] (the robustness smoke [cmp]s it), while heartbeats
     are volatile liveness state. Schema [autocc.heartbeat/1]:
     [{schema, pid, entries: {label: {started_s, beat_s, done}}}],
     rewritten atomically (tmp + rename) so [autocc top] never reads a
     torn file. A reader pairs [beat_s] with a liveness probe of [pid]
     to tell a crashed campaign (pid dead, beat frozen) from a slow one
     (pid alive, beat advancing or recent). *)

  let heartbeat_path dir = Filename.concat dir "heartbeats.json"

  let read_heartbeat_pid dir =
    match read_json (heartbeat_path dir) with
    | Some j when jstr (Json.member "schema" j) = Some "autocc.heartbeat/1"
      -> (
        match Json.member "pid" j with Some (Json.Int p) -> Some p | _ -> None)
    | _ -> None

  let write_heartbeats dir (hb : (string, float * float * bool) Hashtbl.t) =
    let entries =
      List.sort compare
        (Hashtbl.fold
           (fun label (started, beat, finished) acc ->
             ( label,
               Json.Obj
                 [
                   ("started_s", Json.Float started);
                   ("beat_s", Json.Float beat);
                   ("done", Json.Bool finished);
                 ] )
             :: acc)
           hb [])
    in
    let j =
      Json.Obj
        [
          ("schema", Json.Str "autocc.heartbeat/1");
          ("pid", Json.Int (Unix.getpid ()));
          ("entries", Json.Obj entries);
        ]
    in
    let path = heartbeat_path dir in
    let tmp = path ^ ".tmp" in
    try
      Json.write_file ~path:tmp j;
      Sys.rename tmp path
    with Sys_error _ -> ()

  let run ?opt ?incremental ?symmetric ?cache ?(budget = Bmc.no_budget)
      ?(retry = Retry.default) ?(resume = false) ?out_dir
      ?(should_stop = fun () -> false) entries =
    Obs.span "explain.campaign"
      ~attrs:[ ("entries", Json.Int (List.length entries)) ]
    @@ fun () ->
    (* Fail fast on an unusable output directory, before any solving. *)
    (match out_dir with
    | None -> ()
    | Some dir -> (
        mkdir_p dir;
        if not (Sys.file_exists dir && Sys.is_directory dir) then
          failwith ("campaign: cannot create output directory " ^ dir);
        let probe = Filename.concat dir ".autocc_write_probe" in
        try
          let oc = open_out probe in
          close_out oc;
          Sys.remove probe
        with Sys_error _ ->
          failwith ("campaign: output directory " ^ dir ^ " is not writable")));
    (* Live observability: a campaign with an output directory publishes
       its event stream to <dir>/events.jsonl (append-only, flushed per
       event) unless the caller already attached a bus of its own. *)
    let bus_owned = ref false in
    (match out_dir with
    | Some dir when not (Obs.Bus.enabled ()) ->
        Obs.Bus.attach ~file:(Filename.concat dir "events.jsonl") ();
        bus_owned := true
    | _ -> ());
    (* A resume against a directory whose heartbeat file names a live,
       different process is almost certainly a concurrent campaign on
       the same state — warn, don't refuse (the pid may be recycled). *)
    (match (resume, out_dir) with
    | true, Some dir -> (
        match read_heartbeat_pid dir with
        | Some pid
          when pid <> Unix.getpid ()
               && (try
                     Unix.kill pid 0;
                     true
                   with Unix.Unix_error _ -> false) ->
            Obs.log
              ~attrs:[ ("pid", Json.Int pid) ]
              Obs.Warn "explain.live_campaign_conflict"
        | _ -> ())
    | _ -> ());
    let hb : (string, float * float * bool) Hashtbl.t = Hashtbl.create 8 in
    let hb_last = ref 0. in
    let hb_flush ~force () =
      match out_dir with
      | None -> ()
      | Some dir ->
          let now = Unix.gettimeofday () in
          (* Beats arrive per solved depth; throttle the rewrite so a
             fast sweep doesn't turn into an fsync storm. *)
          if force || now -. !hb_last >= 0.2 then begin
            hb_last := now;
            write_heartbeats dir hb
          end
    in
    let hb_start label =
      let now = Unix.gettimeofday () in
      Hashtbl.replace hb label (now, now, false);
      hb_flush ~force:true ()
    in
    let hb_beat label =
      (match Hashtbl.find_opt hb label with
      | Some (started, _, finished) ->
          Hashtbl.replace hb label (started, Unix.gettimeofday (), finished)
      | None -> ());
      hb_flush ~force:false ()
    in
    let hb_done label =
      (match Hashtbl.find_opt hb label with
      | Some (started, _, _) ->
          Hashtbl.replace hb label (started, Unix.gettimeofday (), true)
      | None -> ());
      hb_flush ~force:true ()
    in
    Fun.protect ~finally:(fun () -> if !bus_owned then Obs.Bus.detach ())
    @@ fun () ->
    let persisted =
      match (resume, out_dir) with
      | true, Some dir -> load_resume dir
      | _ -> []
    in
    let failed e t0 msg =
      {
        r_label = e.e_label;
        r_dut = e.e_dut;
        r_status = `Failed msg;
        r_channels = [];
        r_index = [];
        r_raw_cexs = 0;
        r_asserts = 0;
        r_unknowns = 0;
        r_depth = e.e_max_depth;
        r_wall_ms = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.);
        r_resumed = false;
      }
    in
    let run_entry e =
      Obs.Bus.with_label e.e_label @@ fun () ->
      Obs.span "explain.campaign.entry" ~attrs:[ ("label", Json.Str e.e_label) ]
      @@ fun () ->
      let t0 = Unix.gettimeofday () in
      hb_start e.e_label;
      Obs.Bus.publish (Obs.Bus.Job_start { goal_depth = e.e_max_depth });
      let fresh () =
        let ft = e.e_ft () in
        let outcomes =
          sweep ?opt ?incremental ?symmetric ?cache
            ~beat:(fun () -> hb_beat e.e_label)
            ~budget ~retry ft ~max_depth:e.e_max_depth
        in
        let cexs =
          List.filter_map
            (fun (_, o) -> match o with Bmc.Cex (c, _) -> Some c | _ -> None)
            outcomes
        in
        let unknowns =
          List.length
            (List.filter
               (fun ((_, o) : string * Bmc.outcome) ->
                 match o with Bmc.Unknown _ -> true | _ -> false)
               outcomes)
        in
        let channels = cluster ft cexs in
        Obs.log
          ~attrs:
            [
              ("label", Json.Str e.e_label);
              ("raw_cexs", Json.Int (List.length cexs));
              ("channels", Json.Int (List.length channels));
              ("unknowns", Json.Int unknowns);
            ]
          Obs.Info "explain.entry_done";
        {
          r_label = e.e_label;
          r_dut = e.e_dut;
          r_status = `Done;
          r_channels = channels;
          r_index =
            List.mapi (fun i ch -> ref_of_channel ~label:e.e_label i ch) channels;
          r_raw_cexs = List.length cexs;
          r_asserts = List.length outcomes;
          r_unknowns = unknowns;
          r_depth = e.e_max_depth;
          r_wall_ms = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.);
          r_resumed = false;
        }
      in
      let r =
        match List.assoc_opt e.e_label persisted with
        | Some p when p.p_dut = e.e_dut && p.p_depth = e.e_max_depth ->
            Obs.log
              ~attrs:[ ("label", Json.Str e.e_label) ]
              Obs.Info "explain.entry_resumed";
            {
              r_label = e.e_label;
              r_dut = e.e_dut;
              r_status = `Done;
              r_channels = [];
              r_index = p.p_refs;
              r_raw_cexs = p.p_raw_cexs;
              r_asserts = p.p_asserts;
              r_unknowns = 0;
              r_depth = p.p_depth;
              r_wall_ms = p.p_wall_ms;
              r_resumed = true;
            }
        | _ -> (
            (* Crash isolation: an exception inside one entry downgrades
               that entry to a persisted failure record; the remaining
               entries still run and the campaign still reports. *)
            try fresh () with
            | Fault.Injected site ->
                Obs.Bus.publish (Obs.Bus.Fault_injected { site });
                failed e t0 ("fault:" ^ site)
            | exn -> failed e t0 (Printexc.to_string exn))
      in
      (if Obs.Bus.enabled () then
         let verdict =
           if r.r_resumed then "resumed"
           else
             match r.r_status with
             | `Failed _ -> "failed"
             | `Done ->
                 if r.r_raw_cexs > 0 then
                   Printf.sprintf "cex:%d" r.r_raw_cexs
                 else if r.r_unknowns > 0 then "unknown"
                 else "proof"
         in
         Obs.Bus.publish
           (Obs.Bus.Job_done
              { verdict; wall_s = Unix.gettimeofday () -. t0 }));
      hb_done e.e_label;
      r
    in
    let artifacts = ref [] in
    let checkpoint results_rev =
      match out_dir with
      | None -> ()
      | Some dir ->
          let t = { c_results = List.rev results_rev; c_artifacts = [] } in
          Json.write_file
            ~path:(Filename.concat dir "campaign.json")
            (json_of_campaign t);
          let oc = open_out (Filename.concat dir "report.html") in
          output_string oc (html_report t);
          close_out oc
    in
    let results_rev =
      List.fold_left
        (fun acc e ->
          (* A pending stop (SIGTERM/SIGINT checkpoint handler) is
             honored at the entry boundary: every finished entry has
             already checkpointed, and skipping the rest leaves a
             campaign.json that [--resume] completes byte-stably. *)
          if should_stop () then acc
          else
          let r = run_entry e in
          (* Flush this entry's channel artifacts, then checkpoint the
             index and report: a kill between entries loses at most the
             entry that was in flight, and [--resume] picks up there. *)
          (match out_dir with
          | Some dir when not r.r_resumed ->
              List.iteri
                (fun i ch ->
                  let path = Filename.concat dir (artifact_name r.r_label i) in
                  Json.write_file ~path
                    (json_of_channel ~label:r.r_label ~dut:r.r_dut ch);
                  artifacts := path :: !artifacts)
                r.r_channels
          | Some dir ->
              List.iter
                (fun cr ->
                  artifacts := Filename.concat dir cr.cr_artifact :: !artifacts)
                r.r_index
          | None -> ());
          let acc = r :: acc in
          checkpoint acc;
          acc)
        [] entries
    in
    let results = List.rev results_rev in
    (* Each [cluster] call set the gauge to its own count; leave the
       campaign total behind, so the end-of-run snapshot reflects the
       whole sweep rather than the last entry. *)
    Obs.Metrics.set (Lazy.force m_clusters)
      (float_of_int
         (List.fold_left (fun n r -> n + List.length r.r_index) 0 results));
    match out_dir with
    | None -> { c_results = results; c_artifacts = [] }
    | Some dir ->
        (* Clean completion: the heartbeat sidecar is live-progress
           state, meaningless once every entry has checkpointed —
           leaving it behind would make the next `autocc top` of this
           directory report a CRASHED owner pid. A campaign that dies
           mid-run keeps its heartbeats, which is exactly the forensic
           breadcrumb `top` needs. *)
        (try Sys.remove (heartbeat_path dir) with Sys_error _ -> ());
        let index = Filename.concat dir "campaign.json" in
        let html = Filename.concat dir "report.html" in
        { c_results = results; c_artifacts = (index :: List.rev !artifacts) @ [ html ] }

  let pp fmt t =
    List.iter
      (fun r ->
        Format.fprintf fmt
          "%s (%s): %s%d assertion%s, %d raw CEX%s, %d unknown%s, %d channel%s, %.3fs%s@."
          r.r_label r.r_dut
          (match r.r_status with `Failed m -> "FAILED (" ^ m ^ "): " | `Done -> "")
          r.r_asserts
          (if r.r_asserts = 1 then "" else "s")
          r.r_raw_cexs
          (if r.r_raw_cexs = 1 then "" else "s")
          r.r_unknowns
          (if r.r_unknowns = 1 then "" else "s")
          (List.length r.r_index)
          (if List.length r.r_index = 1 then "" else "s")
          (float_of_int r.r_wall_ms /. 1000.)
          (if r.r_resumed then " (resumed)" else "");
        if r.r_resumed then
          List.iter
            (fun cr ->
              Format.fprintf fmt "  %-40s depth %d  (%s)@." cr.cr_name
                (cr.cr_min_depth + 1) cr.cr_artifact)
            r.r_index
        else
          List.iter
            (fun ch ->
              Format.fprintf fmt "  %-40s depth %d  via %s@." ch.ch_name
                (ch.ch_min.mn_cex.Bmc.cex_depth + 1)
                (String.concat " -> "
                   (List.map (fun l -> l.link_label) ch.ch_slice.sl_chain)))
            r.r_channels)
      t.c_results
end

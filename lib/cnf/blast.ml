module S = Sat.Solver
module Signal = Rtl.Signal
module Circuit = Rtl.Circuit

(* {1 Gate context}

   The Tseitin encoders are written once, over an abstract literal type:
   instantiated at [S.lit] they emit clauses straight into a solver
   (direct mode, and cycle 0 of every mode); instantiated at [int] they
   build the reusable transition-frame template that incremental mode
   stamps out per cycle with a variable substitution. *)

type 'l ctx = {
  ctrue : 'l;
  cfalse : 'l;
  cneg : 'l -> 'l;
  cfresh : unit -> 'l;
  cemit : 'l list -> unit;
}

type mode = Direct | Template

(* A template variable is either the constant-true variable, a variable
   fresh at every instantiation (primary inputs and gate outputs), or a
   placeholder for a previous-frame literal (a register reading its
   next-state function from the prior cycle). *)
type tkind = K_true | K_fresh | K_prev of int * int

(* Template literals use the solver's own encoding: [2v] positive,
   [2v+1] negative; variable 0 is the constant true. *)
type template = {
  tpl_nvars : int;
  tpl_kinds : tkind array;
  tpl_clauses : int array array;
  tpl_frame : int array array; (* node index -> per-bit template lits *)
}

type t = {
  solver : S.t;
  circuit : Circuit.t;
  t_lit : S.lit; (* literal that is constant true *)
  free_init : bool;
  mode : mode;
  guard : S.lit option;
  sym : (Signal.t * Signal.t) list;
  mutable tpl : template option;
  mutable frames : S.lit array array list; (* per cycle, newest first *)
  mutable ncycles : int;
}

let solver t = t.solver
let circuit t = t.circuit
let cycles t = t.ncycles
let lit_true t = t.t_lit
let lit_false t = S.neg t.t_lit

let fresh_var t = S.lit (S.new_var t.solver) true

(* All clauses of a guarded blaster carry the guard's negation, so the
   whole blast is inert without the guard assumption and can be retired
   wholesale with one unit clause (see [create ?guard]). *)
let emit t lits =
  match t.guard with
  | None -> S.add_clause t.solver lits
  | Some g -> S.add_clause t.solver (S.neg g :: lits)

let scx t =
  {
    ctrue = t.t_lit;
    cfalse = S.neg t.t_lit;
    cneg = S.neg;
    cfresh = (fun () -> fresh_var t);
    cemit = (fun ls -> emit t ls);
  }

let create ?(free_init = false) ?(mode = Direct) ?guard ?(sym = []) solver
    circuit =
  let t_lit = S.lit (S.new_var solver) true in
  let t =
    {
      solver;
      circuit;
      t_lit;
      free_init;
      mode;
      guard;
      sym;
      tpl = None;
      frames = [];
      ncycles = 0;
    }
  in
  emit t [ t_lit ];
  t

(* {1 Gate helpers}

   Each returns a literal equivalent to the gate's output, adding Tseitin
   clauses as needed, with local simplification on constant or equal
   operands. *)

let is_true cx l = l = cx.ctrue
let is_false cx l = l = cx.cfalse

let gand cx a b =
  if is_false cx a || is_false cx b then cx.cfalse
  else if is_true cx a then b
  else if is_true cx b then a
  else if a = b then a
  else if a = cx.cneg b then cx.cfalse
  else begin
    let x = cx.cfresh () in
    cx.cemit [ cx.cneg x; a ];
    cx.cemit [ cx.cneg x; b ];
    cx.cemit [ x; cx.cneg a; cx.cneg b ];
    x
  end

let gor cx a b = cx.cneg (gand cx (cx.cneg a) (cx.cneg b))

let gxor cx a b =
  if is_false cx a then b
  else if is_false cx b then a
  else if is_true cx a then cx.cneg b
  else if is_true cx b then cx.cneg a
  else if a = b then cx.cfalse
  else if a = cx.cneg b then cx.ctrue
  else begin
    let x = cx.cfresh () in
    cx.cemit [ cx.cneg x; a; b ];
    cx.cemit [ cx.cneg x; cx.cneg a; cx.cneg b ];
    cx.cemit [ x; cx.cneg a; b ];
    cx.cemit [ x; a; cx.cneg b ];
    x
  end

let gmux cx sel a b =
  (* x = sel ? a : b *)
  if is_true cx sel then a
  else if is_false cx sel then b
  else if a = b then a
  else begin
    let x = cx.cfresh () in
    cx.cemit [ cx.cneg sel; cx.cneg x; a ];
    cx.cemit [ cx.cneg sel; x; cx.cneg a ];
    cx.cemit [ sel; cx.cneg x; b ];
    cx.cemit [ sel; x; cx.cneg b ];
    x
  end

let gand_list cx = function
  | [] -> cx.ctrue
  | l :: rest -> List.fold_left (gand cx) l rest

(* {1 Word-level encodings} *)

let enc_add cx a b =
  let n = Array.length a in
  let out = Array.make n cx.cfalse in
  let carry = ref cx.cfalse in
  for i = 0 to n - 1 do
    let axb = gxor cx a.(i) b.(i) in
    out.(i) <- gxor cx axb !carry;
    (* majority(a, b, c) = (a & b) | (c & (a ^ b)) *)
    carry := gor cx (gand cx a.(i) b.(i)) (gand cx !carry axb)
  done;
  out

let enc_neg cx a =
  let n = Array.length a in
  let inv = Array.map cx.cneg a in
  let one = Array.init n (fun i -> if i = 0 then cx.ctrue else cx.cfalse) in
  enc_add cx inv one

let enc_sub cx a b = enc_add cx a (enc_neg cx b)

let enc_eq cx a b =
  let bits = Array.to_list (Array.map2 (fun x y -> cx.cneg (gxor cx x y)) a b) in
  gand_list cx bits

let enc_ult cx a b =
  (* From lsb to msb: lt = (~a & b) | ((a xnor b) & lt_prev). *)
  let lt = ref cx.cfalse in
  Array.iteri
    (fun i ai ->
      let bi = b.(i) in
      let eq = cx.cneg (gxor cx ai bi) in
      lt := gor cx (gand cx (cx.cneg ai) bi) (gand cx eq !lt))
    a;
  !lt

let enc_slt cx a b =
  let n = Array.length a in
  let a' = Array.copy a and b' = Array.copy b in
  a'.(n - 1) <- cx.cneg a.(n - 1);
  b'.(n - 1) <- cx.cneg b.(n - 1);
  enc_ult cx a' b'

let enc_mul cx a b =
  let n = Array.length a in
  let acc = ref (Array.make n cx.cfalse) in
  for i = 0 to n - 1 do
    if not (is_false cx b.(i)) then begin
      (* Partial product: (a << i) masked by b_i. *)
      let partial =
        Array.init n (fun j -> if j < i then cx.cfalse else gand cx a.(j - i) b.(i))
      in
      acc := enc_add cx !acc partial
    end
  done;
  !acc

(* {1 Unrolling} *)

(* One topological pass over the circuit, encoding every node into the
   given context. [const], [input] and [reg] close over the per-mode
   policy (solver constants vs template kinds, previous-frame lookup vs
   placeholder variables); everything combinational is shared. [wrap],
   when given, intercepts each node with (index, node, frame accessor,
   default encoder) — the symmetric template uses it to replace the
   default encoding of one universe with a renamed image of the
   other's. *)
let encode_frame ?wrap cx circuit ~const ~input ~reg =
  let topo = Circuit.topo circuit in
  let f = Array.make (Array.length topo) [||] in
  Array.iteri
    (fun i s ->
      let get k = f.(Circuit.node_index circuit (Signal.args s).(k)) in
      let default () =
        match Signal.op s with
        | Signal.Const v -> const v
        | Signal.Input _ -> input s
        | Signal.Reg r -> reg s r
        | Signal.Not -> Array.map cx.cneg (get 0)
        | Signal.And -> Array.map2 (gand cx) (get 0) (get 1)
        | Signal.Or -> Array.map2 (gor cx) (get 0) (get 1)
        | Signal.Xor -> Array.map2 (gxor cx) (get 0) (get 1)
        | Signal.Add -> enc_add cx (get 0) (get 1)
        | Signal.Sub -> enc_sub cx (get 0) (get 1)
        | Signal.Mul -> enc_mul cx (get 0) (get 1)
        | Signal.Eq -> [| enc_eq cx (get 0) (get 1) |]
        | Signal.Ult -> [| enc_ult cx (get 0) (get 1) |]
        | Signal.Slt -> [| enc_slt cx (get 0) (get 1) |]
        | Signal.Mux ->
            let sel = (get 0).(0) in
            Array.map2 (gmux cx sel) (get 1) (get 2)
        | Signal.Concat ->
            (* Args are msb first; bit arrays are lsb first. *)
            let parts = Array.to_list (Array.mapi (fun k _ -> get k) (Signal.args s)) in
            Array.concat (List.rev parts)
        | Signal.Slice (hi, lo) -> Array.sub (get 0) lo (hi - lo + 1)
      in
      let encoded =
        match wrap with None -> default () | Some w -> w i s (fun j -> f.(j)) default
      in
      f.(i) <- encoded)
    topo;
  f

let const_lits t v =
  Array.init (Bitvec.width v) (fun i ->
      if Bitvec.bit v i then lit_true t else lit_false t)

let direct_frame t =
  let prev = if t.ncycles = 0 then None else Some (List.hd t.frames) in
  encode_frame (scx t) t.circuit
    ~const:(fun v -> const_lits t v)
    ~input:(fun s -> Array.init (Signal.width s) (fun _ -> fresh_var t))
    ~reg:(fun s r ->
      match prev with
      | None ->
          if t.free_init then Array.init (Signal.width s) (fun _ -> fresh_var t)
          else const_lits t r.Signal.init
      | Some pf ->
          let next = Option.get r.Signal.next in
          pf.(Circuit.node_index t.circuit next))

let m_sym_substituted = lazy (Obs.Metrics.counter "cnf.sym_substituted")
let m_sym_direct = lazy (Obs.Metrics.counter "cnf.sym_direct")

(* Blast the transition cone once, symbolically: registers become
   [K_prev] placeholders for the previous frame's next-state literals,
   inputs and gate outputs become [K_fresh]. Constants stay literal over
   template variable 0, so constant folding inside the template is as
   strong as in direct mode; what the template cannot fold is whatever
   would have required knowing the reset values — [S.add_clause]'s
   level-0 simplification recovers most of that at instantiation.

   [sym] lists pairs of nodes known to compute the same function of
   corresponding operands — the two universes of a miter. The template
   encodes the first (in topological order) member of each pair through
   the full Tseitin machinery and, where a structural check confirms
   the pairing, derives the second member's encoding as a pure variable
   renaming of the first's recorded clauses: fresh template variables
   get fresh twins, a paired register's placeholders map to placeholders
   over its *own* next-state node, and variables owned by shared
   operands map to themselves. Renaming preserves literal (in)equality
   both ways (the twin map is injective and sign-preserving), so the
   image is exactly what direct encoding of the second member would have
   produced — the per-cycle CNF is isomorphic to the unshared build,
   only cheaper to construct. Pairs that fail the check (optimizer
   merged the universes asymmetrically, widths differ, operands not
   pairwise shared-or-paired) silently fall back to direct encoding. *)
let build_template ?(sym = []) circuit =
  let topo = Circuit.topo circuit in
  let n = Array.length topo in
  (* Resolve pairs to node indices, oriented source-before-image in
     topological order (the relation is symmetric, the substitution is
     not: the image replays clauses the source has already emitted).
     First pairing of a node wins; conflicting re-pairings are dropped. *)
  let partner = Array.make n (-1) (* source -> image *)
  and rpartner = Array.make n (-1) (* image -> source *) in
  List.iter
    (fun (a, b) ->
      if Circuit.mem_node circuit a && Circuit.mem_node circuit b then begin
        let ia = Circuit.node_index circuit a
        and ib = Circuit.node_index circuit b in
        if ia <> ib then begin
          let ia, ib = if ia < ib then (ia, ib) else (ib, ia) in
          if
            partner.(ia) < 0 && rpartner.(ia) < 0 && partner.(ib) < 0
            && rpartner.(ib) < 0
          then begin
            partner.(ia) <- ib;
            rpartner.(ib) <- ia
          end
        end
      end)
    sym;
  (* A paired image node is substitutable iff it mirrors its source
     structurally: same operator (payloads included), same width, and
     every operand either physically shared or itself a substitutable
     pair in the same position. Operands precede their users in [topo],
     so one forward pass settles the predicate. Registers and inputs
     need only the width: their images are re-encoded faithfully from
     their own semantics (own next-state placeholder / fresh vars) and
     the pairing merely names the variable correspondence. *)
  let ok = Array.make n false in
  let arg_ok xa xb =
    let ka = Circuit.node_index circuit xa
    and kb = Circuit.node_index circuit xb in
    ka = kb || (partner.(ka) = kb && ok.(kb))
  in
  for ib = 0 to n - 1 do
    let ia = rpartner.(ib) in
    if ia >= 0 then begin
      let a = topo.(ia) and b = topo.(ib) in
      ok.(ib) <-
        Signal.width a = Signal.width b
        &&
        match (Signal.op a, Signal.op b) with
        | Signal.Input _, Signal.Input _ -> true
        | Signal.Reg ra, Signal.Reg rb ->
            ra.Signal.next <> None && rb.Signal.next <> None
        | Signal.Const va, Signal.Const vb -> Bitvec.equal va vb
        | opa, opb ->
            opa = opb
            &&
            let aa = Signal.args a and ab = Signal.args b in
            Array.length aa = Array.length ab
            && Array.for_all2 arg_ok aa ab
    end
  done;
  let nvars = ref 1 in
  let kinds = ref (Array.make 1024 K_true) in
  let owner = ref (Array.make 1024 (-1)) in
  let cur_node = ref (-1) in
  let fresh_kind k =
    let v = !nvars in
    incr nvars;
    if v >= Array.length !kinds then begin
      let bigger = Array.make (2 * v) K_true in
      Array.blit !kinds 0 bigger 0 v;
      kinds := bigger;
      let bigger_o = Array.make (2 * v) (-1) in
      Array.blit !owner 0 bigger_o 0 v;
      owner := bigger_o
    end;
    !kinds.(v) <- k;
    !owner.(v) <- !cur_node;
    2 * v
  in
  let clauses = ref (Array.make 1024 [||]) in
  let nclauses = ref 0 in
  let push_clause cl =
    if !nclauses >= Array.length !clauses then begin
      let bigger = Array.make (2 * !nclauses) [||] in
      Array.blit !clauses 0 bigger 0 !nclauses;
      clauses := bigger
    end;
    !clauses.(!nclauses) <- cl;
    incr nclauses
  in
  (* Per-node clause ranges, so an image node can replay exactly the
     clauses its source emitted (including ranges that are themselves
     replayed images, which is what makes substitution chains work). *)
  let cstart = Array.make n 0 and cstop = Array.make n 0 in
  let cx =
    {
      ctrue = 0;
      cfalse = 1;
      cneg = (fun l -> l lxor 1);
      cfresh = (fun () -> fresh_kind K_fresh);
      cemit = (fun ls -> push_clause (Array.of_list ls));
    }
  in
  (* var -> twin var. Variable 0 (constant true) is its own twin; a
     variable owned by the source being replayed gets a fresh twin
     (lazily, first time the renaming meets it); any other variable
     reached the source's clauses through a physically shared operand's
     frame and must stay itself. *)
  let twin : (int, int) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.replace twin 0 0;
  let substituted = ref 0 and direct_nodes = ref 0 in
  let wrap i s getf default =
    cur_node := i;
    if ok.(i) then begin
      incr substituted;
      let ia = rpartner.(i) in
      let fa = getf ia in
      let start = !nclauses in
      let res =
        match Signal.op s with
        | Signal.Reg r ->
            (* The image register is encoded from its own semantics —
               placeholders over its own next-state node — and each
               source placeholder is twinned to the matching bit. *)
            let nidx = Circuit.node_index circuit (Option.get r.Signal.next) in
            Array.mapi
              (fun b la ->
                let l = fresh_kind (K_prev (nidx, b)) in
                Hashtbl.replace twin (la lsr 1) (l lsr 1);
                l)
              fa
        | _ ->
            let twin_var v =
              match Hashtbl.find_opt twin v with
              | Some tv -> tv
              | None ->
                  let tv =
                    if !owner.(v) = ia then fresh_kind K_fresh lsr 1 else v
                  in
                  Hashtbl.replace twin v tv;
                  tv
            in
            let twin_lit l = (2 * twin_var (l lsr 1)) lor (l land 1) in
            for c = cstart.(ia) to cstop.(ia) - 1 do
              push_clause (Array.map twin_lit !clauses.(c))
            done;
            Array.map twin_lit fa
      in
      cstart.(i) <- start;
      cstop.(i) <- !nclauses;
      res
    end
    else begin
      incr direct_nodes;
      cstart.(i) <- !nclauses;
      let res = default () in
      cstop.(i) <- !nclauses;
      res
    end
  in
  let frame =
    encode_frame ~wrap cx circuit
      ~const:(fun v ->
        Array.init (Bitvec.width v) (fun i -> if Bitvec.bit v i then 0 else 1))
      ~input:(fun s -> Array.init (Signal.width s) (fun _ -> cx.cfresh ()))
      ~reg:(fun s r ->
        let next = Option.get r.Signal.next in
        let nidx = Circuit.node_index circuit next in
        Array.init (Signal.width s) (fun b -> fresh_kind (K_prev (nidx, b))))
  in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.add (Lazy.force m_sym_substituted) !substituted;
    Obs.Metrics.add (Lazy.force m_sym_direct) !direct_nodes
  end;
  {
    tpl_nvars = !nvars;
    tpl_kinds = Array.sub !kinds 0 !nvars;
    tpl_clauses = Array.sub !clauses 0 !nclauses;
    tpl_frame = frame;
  }

(* Stamp the template out as cycle [ncycles]: allocate a block of fresh
   solver variables for the [K_fresh] kinds, substitute the previous
   frame's literals for the [K_prev] kinds, and replay the template
   clauses under the substitution. Two template variables may land on
   the same solver literal (two registers sharing one next-state
   signal); [S.add_clause] de-duplicates. *)
let instantiate t tpl prev =
  let map = Array.make tpl.tpl_nvars t.t_lit in
  Array.iteri
    (fun v k ->
      match k with
      | K_true -> ()
      | K_fresh -> map.(v) <- fresh_var t
      | K_prev (nidx, b) -> map.(v) <- prev.(nidx).(b))
    tpl.tpl_kinds;
  let subst l =
    let sv = map.(l lsr 1) in
    if l land 1 = 0 then sv else S.neg sv
  in
  Array.iter
    (fun cl -> emit t (Array.to_list (Array.map subst cl)))
    tpl.tpl_clauses;
  Array.map (fun bits -> Array.map subst bits) tpl.tpl_frame

let frame t cycle =
  if cycle < 0 || cycle >= t.ncycles then
    invalid_arg (Printf.sprintf "Blast: cycle %d not unrolled (have %d)" cycle t.ncycles)
  else List.nth t.frames (t.ncycles - 1 - cycle)

let lits t ~cycle s =
  let f = frame t cycle in
  let idx =
    try Circuit.node_index t.circuit s
    with Not_found -> invalid_arg "Blast.lits: node not in circuit"
  in
  f.(idx)

let lit1 t ~cycle s =
  let l = lits t ~cycle s in
  if Array.length l <> 1 then invalid_arg "Blast.lit1: signal is not 1 bit";
  l.(0)

let m_cnf_vars = lazy (Obs.Metrics.gauge "cnf.vars")
let m_cnf_clauses = lazy (Obs.Metrics.gauge "cnf.clauses")
let m_cnf_cycles = lazy (Obs.Metrics.counter "cnf.cycles_unrolled")

let unroll_cycle t =
  Obs.span "cnf.unroll" ~attrs:[ ("cycle", Obs.Json.Int t.ncycles) ]
  @@ fun () ->
  let f =
    match (t.mode, t.ncycles) with
    | Direct, _ | Template, 0 ->
        (* Cycle 0 is always encoded directly: reset values are concrete
           (unless [free_init]), so constant folding prunes most of the
           cone — the template, which must stay symbolic in the state,
           could not. *)
        direct_frame t
    | Template, _ ->
        let tpl =
          match t.tpl with
          | Some tpl -> tpl
          | None ->
              let tpl = build_template ~sym:t.sym t.circuit in
              t.tpl <- Some tpl;
              tpl
        in
        instantiate t tpl (List.hd t.frames)
  in
  t.frames <- f :: t.frames;
  t.ncycles <- t.ncycles + 1;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.set (Lazy.force m_cnf_vars) (float_of_int (S.num_vars t.solver));
    Obs.Metrics.set (Lazy.force m_cnf_clauses)
      (float_of_int (S.num_clauses t.solver));
    Obs.Metrics.add (Lazy.force m_cnf_cycles) 1
  end;
  if Obs.tracing () then
    Obs.counter_event "cnf"
      [
        ("vars", float_of_int (S.num_vars t.solver));
        ("clauses", float_of_int (S.num_clauses t.solver));
      ]

let reg_lits t ~cycle =
  Array.concat (List.map (fun r -> lits t ~cycle r) (Circuit.regs t.circuit))

let state_distinct t i j =
  let cx = scx t in
  let a = reg_lits t ~cycle:i and b = reg_lits t ~cycle:j in
  if Array.length a = 0 then lit_false t
  else
    let xors = Array.to_list (Array.map2 (gxor cx) a b) in
    (* One literal implied by the disjunction of the per-bit differences. *)
    let d = fresh_var t in
    emit t (S.neg d :: xors);
    List.iter (fun x -> emit t [ d; S.neg x ]) xors;
    d

let node_value t ~cycle s =
  let ls = lits t ~cycle s in
  Bitvec.of_bits
    (Array.map
       (fun l ->
         let v = S.value t.solver (S.var_of_lit l) in
         if S.lit_sign l then v else not v)
       ls)

let input_value t ~cycle name =
  node_value t ~cycle (Circuit.find_input t.circuit name)

let xor_lit t a b = gxor (scx t) a b

module S = Sat.Solver
module Signal = Rtl.Signal
module Circuit = Rtl.Circuit

type t = {
  solver : S.t;
  circuit : Circuit.t;
  t_lit : S.lit; (* literal that is constant true *)
  free_init : bool;
  mutable frames : S.lit array array list; (* per cycle, newest first *)
  mutable ncycles : int;
}

let solver t = t.solver
let circuit t = t.circuit
let cycles t = t.ncycles
let lit_true t = t.t_lit
let lit_false t = S.neg t.t_lit

let fresh_var t = S.lit (S.new_var t.solver) true

let create ?(free_init = false) solver circuit =
  let t_lit = S.lit (S.new_var solver) true in
  S.add_clause solver [ t_lit ];
  { solver; circuit; t_lit; free_init; frames = []; ncycles = 0 }

(* {1 Gate helpers}

   Each returns a literal equivalent to the gate's output, adding Tseitin
   clauses as needed, with local simplification on constant or equal
   operands. *)

let is_true t l = l = t.t_lit
let is_false t l = l = S.neg t.t_lit

let gand t a b =
  if is_false t a || is_false t b then lit_false t
  else if is_true t a then b
  else if is_true t b then a
  else if a = b then a
  else if a = S.neg b then lit_false t
  else begin
    let x = fresh_var t in
    S.add_clause t.solver [ S.neg x; a ];
    S.add_clause t.solver [ S.neg x; b ];
    S.add_clause t.solver [ x; S.neg a; S.neg b ];
    x
  end

let gor t a b = S.neg (gand t (S.neg a) (S.neg b))

let gxor t a b =
  if is_false t a then b
  else if is_false t b then a
  else if is_true t a then S.neg b
  else if is_true t b then S.neg a
  else if a = b then lit_false t
  else if a = S.neg b then lit_true t
  else begin
    let x = fresh_var t in
    S.add_clause t.solver [ S.neg x; a; b ];
    S.add_clause t.solver [ S.neg x; S.neg a; S.neg b ];
    S.add_clause t.solver [ x; S.neg a; b ];
    S.add_clause t.solver [ x; a; S.neg b ];
    x
  end

let gmux t sel a b =
  (* x = sel ? a : b *)
  if is_true t sel then a
  else if is_false t sel then b
  else if a = b then a
  else begin
    let x = fresh_var t in
    S.add_clause t.solver [ S.neg sel; S.neg x; a ];
    S.add_clause t.solver [ S.neg sel; x; S.neg a ];
    S.add_clause t.solver [ sel; S.neg x; b ];
    S.add_clause t.solver [ sel; x; S.neg b ];
    x
  end

let gand_list t = function
  | [] -> lit_true t
  | l :: rest -> List.fold_left (gand t) l rest

(* {1 Word-level encodings} *)

let enc_add t a b =
  let n = Array.length a in
  let out = Array.make n (lit_false t) in
  let carry = ref (lit_false t) in
  for i = 0 to n - 1 do
    let axb = gxor t a.(i) b.(i) in
    out.(i) <- gxor t axb !carry;
    (* majority(a, b, c) = (a & b) | (c & (a ^ b)) *)
    carry := gor t (gand t a.(i) b.(i)) (gand t !carry axb)
  done;
  out

let enc_neg t a =
  let n = Array.length a in
  let inv = Array.map S.neg a in
  let one = Array.init n (fun i -> if i = 0 then lit_true t else lit_false t) in
  enc_add t inv one

let enc_sub t a b = enc_add t a (enc_neg t b)

let enc_eq t a b =
  let bits = Array.to_list (Array.map2 (fun x y -> S.neg (gxor t x y)) a b) in
  gand_list t bits

let enc_ult t a b =
  (* From lsb to msb: lt = (~a & b) | ((a xnor b) & lt_prev). *)
  let lt = ref (lit_false t) in
  Array.iteri
    (fun i ai ->
      let bi = b.(i) in
      let eq = S.neg (gxor t ai bi) in
      lt := gor t (gand t (S.neg ai) bi) (gand t eq !lt))
    a;
  !lt

let enc_slt t a b =
  let n = Array.length a in
  let a' = Array.copy a and b' = Array.copy b in
  a'.(n - 1) <- S.neg a.(n - 1);
  b'.(n - 1) <- S.neg b.(n - 1);
  enc_ult t a' b'

let enc_mul t a b =
  let n = Array.length a in
  let acc = ref (Array.make n (lit_false t)) in
  for i = 0 to n - 1 do
    if not (is_false t b.(i)) then begin
      (* Partial product: (a << i) masked by b_i. *)
      let partial =
        Array.init n (fun j -> if j < i then lit_false t else gand t a.(j - i) b.(i))
      in
      acc := enc_add t !acc partial
    end
  done;
  !acc

(* {1 Unrolling} *)

let const_lits t v =
  Array.init (Bitvec.width v) (fun i ->
      if Bitvec.bit v i then lit_true t else lit_false t)

let frame t cycle =
  if cycle < 0 || cycle >= t.ncycles then
    invalid_arg (Printf.sprintf "Blast: cycle %d not unrolled (have %d)" cycle t.ncycles)
  else List.nth t.frames (t.ncycles - 1 - cycle)

let lits t ~cycle s =
  let f = frame t cycle in
  let idx =
    try Circuit.node_index t.circuit s
    with Not_found -> invalid_arg "Blast.lits: node not in circuit"
  in
  f.(idx)

let lit1 t ~cycle s =
  let l = lits t ~cycle s in
  if Array.length l <> 1 then invalid_arg "Blast.lit1: signal is not 1 bit";
  l.(0)

let m_cnf_vars = lazy (Obs.Metrics.gauge "cnf.vars")
let m_cnf_clauses = lazy (Obs.Metrics.gauge "cnf.clauses")
let m_cnf_cycles = lazy (Obs.Metrics.counter "cnf.cycles_unrolled")

let unroll_cycle t =
  Obs.span "cnf.unroll" ~attrs:[ ("cycle", Obs.Json.Int t.ncycles) ]
  @@ fun () ->
  let topo = Circuit.topo t.circuit in
  let f = Array.make (Array.length topo) [||] in
  let prev = if t.ncycles = 0 then None else Some (List.hd t.frames) in
  Array.iteri
    (fun i s ->
      let get k = f.(Circuit.node_index t.circuit (Signal.args s).(k)) in
      let encoded =
        match Signal.op s with
        | Signal.Const v -> const_lits t v
        | Signal.Input _ ->
            Array.init (Signal.width s) (fun _ -> fresh_var t)
        | Signal.Reg r -> (
            match prev with
            | None ->
                if t.free_init then
                  Array.init (Signal.width s) (fun _ -> fresh_var t)
                else const_lits t r.Signal.init
            | Some pf ->
                let next = Option.get r.Signal.next in
                pf.(Circuit.node_index t.circuit next))
        | Signal.Not -> Array.map S.neg (get 0)
        | Signal.And -> Array.map2 (gand t) (get 0) (get 1)
        | Signal.Or -> Array.map2 (gor t) (get 0) (get 1)
        | Signal.Xor -> Array.map2 (gxor t) (get 0) (get 1)
        | Signal.Add -> enc_add t (get 0) (get 1)
        | Signal.Sub -> enc_sub t (get 0) (get 1)
        | Signal.Mul -> enc_mul t (get 0) (get 1)
        | Signal.Eq -> [| enc_eq t (get 0) (get 1) |]
        | Signal.Ult -> [| enc_ult t (get 0) (get 1) |]
        | Signal.Slt -> [| enc_slt t (get 0) (get 1) |]
        | Signal.Mux ->
            let sel = (get 0).(0) in
            Array.map2 (gmux t sel) (get 1) (get 2)
        | Signal.Concat ->
            (* Args are msb first; bit arrays are lsb first. *)
            let parts = Array.to_list (Array.mapi (fun k _ -> get k) (Signal.args s)) in
            Array.concat (List.rev parts)
        | Signal.Slice (hi, lo) ->
            Array.sub (get 0) lo (hi - lo + 1)
      in
      f.(i) <- encoded)
    topo;
  t.frames <- f :: t.frames;
  t.ncycles <- t.ncycles + 1;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.set (Lazy.force m_cnf_vars) (float_of_int (S.num_vars t.solver));
    Obs.Metrics.set (Lazy.force m_cnf_clauses)
      (float_of_int (S.num_clauses t.solver));
    Obs.Metrics.add (Lazy.force m_cnf_cycles) 1
  end;
  if Obs.tracing () then
    Obs.counter_event "cnf"
      [
        ("vars", float_of_int (S.num_vars t.solver));
        ("clauses", float_of_int (S.num_clauses t.solver));
      ]

let reg_lits t ~cycle =
  Array.concat (List.map (fun r -> lits t ~cycle r) (Circuit.regs t.circuit))

let state_distinct t i j =
  let a = reg_lits t ~cycle:i and b = reg_lits t ~cycle:j in
  if Array.length a = 0 then lit_false t
  else
    let xors = Array.to_list (Array.map2 (gxor t) a b) in
    (* One literal implied by the disjunction of the per-bit differences. *)
    let d = fresh_var t in
    S.add_clause t.solver (S.neg d :: xors);
    List.iter (fun x -> S.add_clause t.solver [ d; S.neg x ]) xors;
    d

let node_value t ~cycle s =
  let ls = lits t ~cycle s in
  Bitvec.of_bits
    (Array.map
       (fun l ->
         let v = S.value t.solver (S.var_of_lit l) in
         if S.lit_sign l then v else not v)
       ls)

let input_value t ~cycle name =
  node_value t ~cycle (Circuit.find_input t.circuit name)

let xor_lit = gxor

(** Tseitin bit-blasting of circuits into CNF.

    A blaster incrementally unrolls a circuit's transition relation into a
    SAT solver, one cycle at a time: primary inputs get fresh variables
    per cycle, registers take their initial value at cycle 0 and the
    literals of their next-state function from the previous cycle
    afterwards. Combinational operators are encoded with standard Tseitin
    clauses, with local constant propagation.

    One reserved variable represents the constant true so that constant
    bits are plain literals. *)

type t

type mode =
  | Direct
      (** Re-encode every cycle from the circuit graph. Constant folding
          sees the concrete reset state, so early frames are smaller;
          each cycle costs a full topological walk. The encoding used by
          the scratch (non-incremental) differential oracle. *)
  | Template
      (** Blast the transition cone once, symbolically, and stamp it out
          per cycle with a variable-offset substitution (registers bind
          to the previous frame's next-state literals, inputs and gate
          outputs take a fresh block). Cycle 0 is still encoded
          directly. The two universes of a two-universe miter circuit
          live inside one transition cone, so the single template covers
          both and is instantiated with distinct substitutions per
          cycle. *)

val create :
  ?free_init:bool ->
  ?mode:mode ->
  ?guard:Sat.Solver.lit ->
  ?sym:(Rtl.Signal.t * Rtl.Signal.t) list ->
  Sat.Solver.t ->
  Rtl.Circuit.t ->
  t
(** Attach to a solver. The solver may be shared with other constraints;
    the blaster allocates its own variables.

    With [free_init] (default false), registers take fresh variables at
    cycle 0 instead of their reset values — the arbitrary-start-state
    encoding used by the inductive step of k-induction.

    [mode] (default [Direct]) selects the per-cycle encoding strategy;
    the two produce equisatisfiable unrollings with identical node
    semantics but different CNF shapes.

    [sym] (Template mode only; ignored by [Direct]) declares pairs of
    nodes that compute the same function of corresponding operands —
    the two universes of a symmetric miter. The template encoder blasts
    one member of each pair and derives the other's encoding as a pure
    variable renaming of the recorded clauses, roughly halving template
    construction on a two-universe circuit. Every pair is re-verified
    structurally (operator, width, operands pairwise shared-or-paired)
    before being used; pairs the optimizer broke fall back to direct
    encoding. The instantiated CNF is variable-for-variable isomorphic
    to the unshared build, so verdicts and counterexample depths are
    unchanged by construction — the [cnf.sym_substituted] /
    [cnf.sym_direct] metrics record how much of the cone was shared.

    With [guard], {e every} clause the blaster emits (including the
    constant-true unit) is weakened by the guard's negation: the whole
    blast is inert unless [guard] is assumed, and one
    [Sat.Solver.retire] of the guard followed by [Sat.Solver.simplify]
    physically removes it — how a temporary session (e.g. the
    optimizer's SAT sweep) borrows a long-lived solver and cleans up
    after itself. *)

val reg_lits : t -> cycle:int -> Sat.Solver.lit array
(** The concatenated literals of every register at a cycle, in a fixed
    order — the state vector used for uniqueness constraints. *)

val solver : t -> Sat.Solver.t
val circuit : t -> Rtl.Circuit.t

val cycles : t -> int
(** Number of cycles unrolled so far. *)

val unroll_cycle : t -> unit
(** Encode one more cycle of the circuit. *)

val lits : t -> cycle:int -> Rtl.Signal.t -> Sat.Solver.lit array
(** Per-bit literals (lsb first) of a node at an unrolled cycle. Raises
    [Invalid_argument] if the cycle is not yet unrolled or the node is not
    part of the circuit. *)

val lit1 : t -> cycle:int -> Rtl.Signal.t -> Sat.Solver.lit
(** The single literal of a 1-bit node. *)

val lit_true : t -> Sat.Solver.lit
val lit_false : t -> Sat.Solver.lit

val node_value : t -> cycle:int -> Rtl.Signal.t -> Bitvec.t
(** Read a node's value out of the solver model after a [Sat] answer. *)

val input_value : t -> cycle:int -> string -> Bitvec.t

val fresh_var : t -> Sat.Solver.lit
(** A fresh positive literal for auxiliary constraints (e.g. activation
    literals for bounded checks). *)

val xor_lit : t -> Sat.Solver.lit -> Sat.Solver.lit -> Sat.Solver.lit
(** Tseitin XOR of two literals, with local constant simplification —
    building block for external miter constraints (e.g. SAT sweeping). *)

val state_distinct : t -> int -> int -> Sat.Solver.lit
(** [state_distinct t i j] is a literal that is true iff the register
    state vectors at cycles [i] and [j] differ — the loop-free-path
    (uniqueness) constraint of k-induction. For a circuit without
    registers this is the false literal. *)

module Signal = Rtl.Signal
module Circuit = Rtl.Circuit
open Signal

exception Elab_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Elab_error s)) fmt

let range_width = function
  | Some { Ast.msb; lsb } ->
      if msb < lsb then fail "descending ranges only ([msb:lsb] with msb >= lsb)";
      msb - lsb + 1
  | None -> 1

(* Bring two operands to a common width by zero-extension; context-sized
   literals (width 0 markers were already resolved to 1-bit vdd/gnd by
   [expr], so here we only see real signals). *)
let harmonize a b =
  let wa = width a and wb = width b in
  if wa = wb then (a, b)
  else if wa < wb then (uresize a wb, b)
  else (a, uresize b wa)

type env = {
  (* name -> definition site *)
  wires : (string, Ast.expr option) Hashtbl.t;
  wire_widths : (string, int) Hashtbl.t;
  regs : (string, Signal.t) Hashtbl.t;
  params : (string, Bitvec.t) Hashtbl.t;
  inputs : (string, Signal.t) Hashtbl.t;
  memo : (string, Signal.t) Hashtbl.t;
  mutable visiting : string list; (* combinational-loop detection *)
}

(* Width of an expression, needed to size context-dependent literals. 0
   means "context-sized". *)
let rec expr_width env e =
  match e with
  | Ast.Literal { width = Some 0; _ } -> 0
  | Ast.Literal { width = Some w; _ } -> w
  | Ast.Literal { width = None; value } -> Bitvec.width value
  | Ast.Ident n -> name_width env n
  | Ast.Index _ -> 1
  | Ast.Slice (_, hi, lo) -> hi - lo + 1
  | Ast.Unop ((Ast.Not | Ast.Neg), e) -> expr_width env e
  | Ast.Unop (Ast.Lognot, _) -> 1
  | Ast.Binop ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Logand | Ast.Logor), _, _) -> 1
  | Ast.Binop ((Ast.Shl | Ast.Shr), a, _) -> expr_width env a
  | Ast.Binop (_, a, b) -> max (expr_width env a) (expr_width env b)
  | Ast.Ternary (_, t, f) -> max (expr_width env t) (expr_width env f)
  | Ast.Concat parts -> List.fold_left (fun acc p -> acc + expr_width env p) 0 parts
  | Ast.Repl (n, e) -> n * expr_width env e
  | Ast.Signed e -> expr_width env e

and name_width env n =
  match Hashtbl.find_opt env.inputs n with
  | Some s -> width s
  | None -> (
      match Hashtbl.find_opt env.regs n with
      | Some s -> width s
      | None -> (
          match Hashtbl.find_opt env.wire_widths n with
          | Some w -> w
          | None -> (
              match Hashtbl.find_opt env.params n with
              | Some v -> Bitvec.width v
              | None -> fail "unknown identifier %s" n)))

(* Evaluate an expression to a signal; [ctx] is the context width used to
   size '0/'1 and bare decimals when nothing else determines it. *)
let rec eval env ?(ctx = 0) e =
  match e with
  | Ast.Literal { width = Some 0; value } ->
      (* '0 / '1: replicate to the context width. *)
      let w = max 1 ctx in
      if Bitvec.is_zero value then zero w else ones w
  | Ast.Literal { width = Some _; value } -> const value
  | Ast.Literal { width = None; value } ->
      (* Unsized decimal: shrink or extend to context if one exists. *)
      if ctx = 0 then const value
      else if Bitvec.width value >= ctx then
        const (Bitvec.extract ~hi:(ctx - 1) ~lo:0 value)
      else const (Bitvec.zero_extend value ctx)
  | Ast.Ident n -> resolve env n
  | Ast.Index (n, idx) -> (
      let s = resolve env n in
      match idx with
      | Ast.Literal { value; _ } -> bit s (Bitvec.to_int value)
      | _ ->
          (* Dynamic bit select: shift right then take bit 0. *)
          let amount = eval env idx in
          lsb (log_shift_right s (uresize amount (width s))))
  | Ast.Slice (n, hi, lo) -> select (resolve env n) hi lo
  | Ast.Unop (op, e) -> (
      let v = eval env ~ctx e in
      match op with
      | Ast.Not -> ~:v
      | Ast.Neg -> zero (width v) -: v
      | Ast.Lognot -> is_zero v)
  | Ast.Binop (op, a, b) -> (
      let wa = expr_width env a and wb = expr_width env b in
      let ctx' = max ctx (max wa wb) in
      let va = eval env ~ctx:ctx' a and vb = eval env ~ctx:ctx' b in
      match op with
      | Ast.Shl | Ast.Shr -> (
          let vb = eval env b in
          match op with
          | Ast.Shl -> log_shift_left va (uresize vb (width va))
          | _ -> log_shift_right va (uresize vb (width va)))
      | _ -> (
          let va, vb = harmonize va vb in
          match op with
          | Ast.And -> va &: vb
          | Ast.Or -> va |: vb
          | Ast.Xor -> va ^: vb
          | Ast.Logand -> reduce_or va &: reduce_or vb
          | Ast.Logor -> reduce_or va |: reduce_or vb
          | Ast.Add -> va +: vb
          | Ast.Sub -> va -: vb
          | Ast.Mul -> va *: vb
          | Ast.Eq -> va ==: vb
          | Ast.Neq -> va <>: vb
          | Ast.Lt -> (
              match (a, b) with
              | Ast.Signed _, _ | _, Ast.Signed _ -> slt va vb
              | _ -> va <: vb)
          | Ast.Le -> (
              match (a, b) with
              | Ast.Signed _, _ | _, Ast.Signed _ -> ~:(slt vb va)
              | _ -> va <=: vb)
          | Ast.Gt -> (
              match (a, b) with
              | Ast.Signed _, _ | _, Ast.Signed _ -> slt vb va
              | _ -> va >: vb)
          | Ast.Ge -> (
              match (a, b) with
              | Ast.Signed _, _ | _, Ast.Signed _ -> ~:(slt va vb)
              | _ -> va >=: vb)
          | Ast.Shl | Ast.Shr -> assert false))
  | Ast.Ternary (c, t, f) ->
      let wc = max (expr_width env t) (expr_width env f) in
      let sel = reduce_or (eval env c) in
      let vt = eval env ~ctx:(max ctx wc) t and vf = eval env ~ctx:(max ctx wc) f in
      let vt, vf = harmonize vt vf in
      mux2 sel vt vf
  | Ast.Concat parts -> concat (List.map (fun p -> eval env p) parts)
  | Ast.Repl (n, e) ->
      let v = eval env e in
      concat (List.init n (fun _ -> v))
  | Ast.Signed e -> eval env ~ctx e

and resolve env n =
  match Hashtbl.find_opt env.memo n with
  | Some s -> s
  | None -> (
      match Hashtbl.find_opt env.inputs n with
      | Some s -> s
      | None -> (
          match Hashtbl.find_opt env.regs n with
          | Some s -> s
          | None -> (
              match Hashtbl.find_opt env.params n with
              | Some v -> const v
              | None -> (
                  match Hashtbl.find_opt env.wires n with
                  | Some (Some rhs) ->
                      if List.mem n env.visiting then
                        fail "combinational cycle through %s" n;
                      env.visiting <- n :: env.visiting;
                      let w = Hashtbl.find env.wire_widths n in
                      let s = eval env ~ctx:w rhs in
                      let s =
                        if width s = w then s
                        else if width s < w then uresize s w
                        else select s (w - 1) 0
                      in
                      env.visiting <- List.tl env.visiting;
                      let s = s -- n in
                      Hashtbl.replace env.memo n s;
                      s
                  | Some None -> fail "wire %s is never assigned" n
                  | None -> fail "unknown identifier %s" n))))

(* {1 Hierarchy flattening}

   Instances are inlined: every name of the child module gets an
   [inst.] prefix, the child's input ports become alias wires driven by
   the (parent-scope) connection expressions, and the child's output
   ports become parent wires driven from inside the flattened body. Each
   instance is recorded as a blackboxable boundary. *)

type flat_boundary = {
  fb_name : string;
  fb_outputs : (string * string) list; (* label, flattened wire name *)
  fb_inputs : (string * string) list;
}

let rec rename_expr pfx e =
  let r = rename_expr pfx in
  match e with
  | Ast.Literal _ -> e
  | Ast.Ident n -> Ast.Ident (pfx ^ n)
  | Ast.Index (n, i) -> Ast.Index (pfx ^ n, r i)
  | Ast.Slice (n, hi, lo) -> Ast.Slice (pfx ^ n, hi, lo)
  | Ast.Unop (op, a) -> Ast.Unop (op, r a)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, r a, r b)
  | Ast.Ternary (c, t, f) -> Ast.Ternary (r c, r t, r f)
  | Ast.Concat parts -> Ast.Concat (List.map r parts)
  | Ast.Repl (n, a) -> Ast.Repl (n, r a)
  | Ast.Signed a -> Ast.Signed (r a)

let find_module mods name =
  match List.find_opt (fun m -> m.Ast.mod_name = name) mods with
  | Some m -> m
  | None -> fail "unknown module %s" name

(* Flatten the items of [m], prefixing all names with [pfx]. Connection
   expressions arriving from the parent are already fully renamed. *)
let rec flatten_items mods pfx items boundaries =
  List.concat_map
    (fun item ->
      match item with
      | Ast.Wire { range; name; init } ->
          [ Ast.Wire { range; name = pfx ^ name; init = Option.map (rename_expr pfx) init } ]
      | Ast.Reg_decl { range; name } -> [ Ast.Reg_decl { range; name = pfx ^ name } ]
      | Ast.Localparam (n, e) -> [ Ast.Localparam (pfx ^ n, rename_expr pfx e) ]
      | Ast.Assign (n, e) -> [ Ast.Assign (pfx ^ n, rename_expr pfx e) ]
      | Ast.Always { resets; updates } ->
          [
            Ast.Always
              {
                resets = List.map (fun (n, e) -> (pfx ^ n, rename_expr pfx e)) resets;
                updates = List.map (fun (n, e) -> (pfx ^ n, rename_expr pfx e)) updates;
              };
          ]
      | Ast.Instance { mod_type; inst_name; conns } ->
          let child = find_module mods mod_type in
          let cpfx = pfx ^ inst_name ^ "." in
          let conns =
            List.filter (fun (p, _) -> p <> "clk" && p <> "rst") conns
          in
          let port_of p =
            match List.find_opt (fun q -> q.Ast.port_name = p) child.Ast.ports with
            | Some q -> q
            | None -> fail "module %s has no port %s" mod_type p
          in
          (* Input ports: alias wires carrying the parent expressions. *)
          let input_aliases =
            List.filter_map
              (fun (p, e) ->
                let q = port_of p in
                if q.Ast.dir = Ast.Input then
                  Some
                    (Ast.Wire
                       {
                         range = q.Ast.port_range;
                         name = cpfx ^ p;
                         init = Some (rename_expr pfx e);
                       })
                else None)
              conns
          in
          (* Unconnected child inputs default to zero. *)
          let unconnected =
            List.filter_map
              (fun q ->
                if
                  q.Ast.dir = Ast.Input
                  && q.Ast.port_name <> "clk"
                  && q.Ast.port_name <> "rst"
                  && not (List.mem_assoc q.Ast.port_name conns)
                then
                  Some
                    (Ast.Wire
                       {
                         range = q.Ast.port_range;
                         name = cpfx ^ q.Ast.port_name;
                         init =
                           Some (Ast.Literal { width = Some 0; value = Bitvec.zero 1 });
                       })
                else None)
              child.Ast.ports
          in
          (* Output ports: declare the flattened wire; the child body's
             assign fills it. The parent connection target must be a
             plain identifier, which becomes an alias of that wire. *)
          let output_decls =
            List.filter_map
              (fun q ->
                if q.Ast.dir = Ast.Output then
                  Some (Ast.Wire { range = q.Ast.port_range; name = cpfx ^ q.Ast.port_name; init = None })
                else None)
              child.Ast.ports
          in
          let output_aliases =
            List.filter_map
              (fun (p, e) ->
                let q = port_of p in
                if q.Ast.dir = Ast.Output then
                  match e with
                  | Ast.Ident w -> Some (Ast.Assign (pfx ^ w, Ast.Ident (cpfx ^ p)))
                  | _ -> fail "output connection .%s must be a plain identifier" p
                else None)
              conns
          in
          boundaries :=
            {
              fb_name = pfx ^ inst_name;
              fb_outputs =
                List.filter_map
                  (fun q ->
                    if q.Ast.dir = Ast.Output then
                      Some (q.Ast.port_name, cpfx ^ q.Ast.port_name)
                    else None)
                  child.Ast.ports;
              fb_inputs =
                List.filter_map
                  (fun q ->
                    if q.Ast.dir = Ast.Input && q.Ast.port_name <> "clk" && q.Ast.port_name <> "rst"
                    then Some (q.Ast.port_name, cpfx ^ q.Ast.port_name)
                    else None)
                  child.Ast.ports;
            }
            :: !boundaries;
          input_aliases @ unconnected @ output_decls
          @ flatten_items mods cpfx child.Ast.items boundaries
          @ output_aliases)
    items

(* {1 Transaction inference (AutoSVA-style naming convention)} *)

let infer_tx ports =
  let names = List.map (fun p -> p.Ast.port_name) ports in
  let suffix = "_valid" in
  List.filter_map
    (fun p ->
      let n = p.Ast.port_name in
      let ln = String.length n and ls = String.length suffix in
      if ln > ls && String.sub n (ln - ls) ls = suffix && range_width p.Ast.port_range = 1
      then begin
        let prefix = String.sub n 0 (ln - ls) in
        let payloads =
          List.filter
            (fun q ->
              q <> n
              && String.length q > String.length prefix
              && String.sub q 0 (String.length prefix + 1) = prefix ^ "_"
              && List.exists (fun r -> r.Ast.port_name = q && r.Ast.dir = p.Ast.dir) ports)
            names
        in
        if payloads = [] then None
        else Some (p.Ast.dir, { Circuit.tx_name = prefix; valid = n; payloads })
      end
      else None)
    ports

(* {1 Top-level elaboration} *)

let elaborate ?(infer_transactions = true) ?(library = []) (m : Ast.modul) =
  (* Inline the module hierarchy; [library] provides the definitions of
     instantiated modules. *)
  let flat_boundaries = ref [] in
  let items = flatten_items (m :: library) "" m.Ast.items flat_boundaries in
  let env =
    {
      wires = Hashtbl.create 64;
      wire_widths = Hashtbl.create 64;
      regs = Hashtbl.create 64;
      params = Hashtbl.create 16;
      inputs = Hashtbl.create 16;
      memo = Hashtbl.create 64;
      visiting = [];
    }
  in
  (* Ports: clk/rst are implicit infrastructure, not data inputs. *)
  let data_ports =
    List.filter (fun p -> p.Ast.port_name <> "clk" && p.Ast.port_name <> "rst") m.Ast.ports
  in
  List.iter
    (fun p ->
      if p.Ast.dir = Ast.Input then
        Hashtbl.replace env.inputs p.Ast.port_name
          (input p.Ast.port_name (range_width p.Ast.port_range)))
    data_ports;
  (* Pass 1: declarations. Localparams are evaluated eagerly (they may
     only reference earlier params and literals). *)
  List.iter
    (fun item ->
      match item with
      | Ast.Localparam (n, e) -> (
          match e with
          | Ast.Literal { value; _ } -> Hashtbl.replace env.params n value
          | _ -> fail "localparam %s must be a literal" n)
      | Ast.Wire { range; name; init } ->
          Hashtbl.replace env.wire_widths name (range_width range);
          Hashtbl.replace env.wires name init
      | Ast.Reg_decl { range; name } ->
          (* Initial value is patched from the reset branch later; create
             with zero init and rebuild if needed. We instead collect
             resets first, so scan below. *)
          Hashtbl.replace env.wire_widths name (range_width range)
      | Ast.Assign _ | Ast.Always _ -> ()
      | Ast.Instance _ -> assert false (* flattened away *))
    items;
  (* Collect reset values so registers can be created with their init. *)
  let resets = Hashtbl.create 16 in
  List.iter
    (function
      | Ast.Always { resets = rs; _ } ->
          List.iter (fun (n, e) -> Hashtbl.replace resets n e) rs
      | _ -> ())
    items;
  List.iter
    (fun item ->
      match item with
      | Ast.Reg_decl { range; name } ->
          let w = range_width range in
          let init =
            match Hashtbl.find_opt resets name with
            | Some (Ast.Literal { width = Some 0; value }) ->
                if Bitvec.is_zero value then Bitvec.zero w else Bitvec.ones w
            | Some (Ast.Literal { value; _ }) ->
                if Bitvec.width value = w then value
                else if Bitvec.width value < w then Bitvec.zero_extend value w
                else Bitvec.extract ~hi:(w - 1) ~lo:0 value
            | Some _ -> fail "reset value of %s must be a literal" name
            | None -> Bitvec.zero w
          in
          Hashtbl.replace env.regs name (reg ~init name w)
      | _ -> ())
    items;
  (* Continuous assignments to declared wires (assign w = e). *)
  List.iter
    (function
      | Ast.Assign (n, e) ->
          if Hashtbl.mem env.wires n then (
            match Hashtbl.find env.wires n with
            | None -> Hashtbl.replace env.wires n (Some e)
            | Some _ -> fail "wire %s assigned twice" n)
          else begin
            (* assign to an output port: treat as a fresh implicit wire *)
            Hashtbl.replace env.wire_widths n
              (match
                 List.find_opt (fun p -> p.Ast.port_name = n) data_ports
               with
              | Some p -> range_width p.Ast.port_range
              | None -> fail "assign to undeclared name %s" n);
            Hashtbl.replace env.wires n (Some e)
          end
      | _ -> ())
    items;
  (* Register next-state functions. *)
  let updated = Hashtbl.create 16 in
  List.iter
    (function
      | Ast.Always { updates; _ } ->
          List.iter
            (fun (n, e) ->
              let r =
                match Hashtbl.find_opt env.regs n with
                | Some r -> r
                | None -> fail "non-blocking assignment to non-reg %s" n
              in
              if Hashtbl.mem updated n then fail "register %s updated twice" n;
              Hashtbl.replace updated n ();
              let w = width r in
              let next = eval env ~ctx:w e in
              let next =
                if width next = w then next
                else if width next < w then uresize next w
                else select next (w - 1) 0
              in
              reg_set_next r next)
            updates
      | _ -> ())
    items;
  (* Registers never updated hold their value. *)
  Hashtbl.iter
    (fun n r -> if not (Hashtbl.mem updated n) then reg_set_next r r)
    env.regs;
  (* Outputs. *)
  let outputs =
    List.filter_map
      (fun p ->
        if p.Ast.dir = Ast.Output then begin
          let w = range_width p.Ast.port_range in
          let s = resolve env p.Ast.port_name in
          let s =
            if width s = w then s
            else fail "output %s has width %d but is driven with width %d"
                   p.Ast.port_name w (width s)
          in
          Some (p.Ast.port_name, s)
        end
        else None)
      data_ports
  in
  (* Ports that nothing references are dropped by elaboration (they
     cannot carry information), so restrict the metadata to the inputs
     that survive. *)
  let reachable_inputs =
    let seen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let found : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    let rec walk s =
      if not (Hashtbl.mem seen (Signal.uid s)) then begin
        Hashtbl.replace seen (Signal.uid s) ();
        (match Signal.op s with
        | Signal.Input n -> Hashtbl.replace found n ()
        | Signal.Reg r -> (
            match r.Signal.next with Some nx -> walk nx | None -> ())
        | _ -> ());
        Array.iter walk (Signal.args s)
      end
    in
    List.iter (fun (_, s) -> walk s) outputs;
    fun n -> Hashtbl.mem found n
  in
  let common =
    List.filter_map
      (fun p ->
        if p.Ast.common && p.Ast.dir = Ast.Input && reachable_inputs p.Ast.port_name then
          Some p.Ast.port_name
        else None)
      data_ports
  in
  let in_tx, out_tx =
    if infer_transactions then begin
      let txs = infer_tx data_ports in
      (* Input transactions may only mention inputs that survived
         elaboration. *)
      let restrict tx =
        if reachable_inputs tx.Circuit.valid then
          match List.filter reachable_inputs tx.Circuit.payloads with
          | [] -> None
          | payloads -> Some { tx with Circuit.payloads }
        else None
      in
      ( List.filter_map (fun (d, tx) -> if d = Ast.Input then restrict tx else None) txs,
        List.filter_map (fun (d, tx) -> if d = Ast.Output then Some tx else None) txs )
    end
    else ([], [])
  in
  (* Instance boundaries, resolved into the signal graph; wires that the
     design never uses are dropped from the boundary. *)
  let boundaries =
    List.filter_map
      (fun fb ->
        let resolve_all l =
          List.filter_map
            (fun (label, wire) ->
              match resolve env wire with
              | s -> Some (label, s)
              | exception _ -> None)
            l
        in
        match resolve_all fb.fb_outputs with
        | [] -> None
        | bnd_outputs ->
            Some
              {
                Circuit.bnd_name = fb.fb_name;
                bnd_outputs;
                bnd_inputs = resolve_all fb.fb_inputs;
              })
      !flat_boundaries
  in
  Circuit.create ~name:m.Ast.mod_name ~in_tx ~out_tx ~common ~boundaries ~outputs ()

let pick_top mods top =
  match top with
  | None -> (
      match mods with
      | m :: rest -> (m, rest)
      | [] -> fail "no module in source")
  | Some name -> (
      match List.partition (fun m -> m.Ast.mod_name = name) mods with
      | [ m ], rest -> (m, rest)
      | _ -> fail "no module named %s" name)

let circuit_of_string ?infer_transactions ?top source =
  let m, library =
    Obs.span "frontend.parse" (fun () ->
        pick_top (Parser.parse_program source) top)
  in
  Obs.span "frontend.elaborate"
    ~attrs:[ ("module", Obs.Json.Str m.Ast.mod_name) ]
    (fun () -> elaborate ?infer_transactions ~library m)

let circuit_of_file ?infer_transactions ?top path =
  let m, library =
    Obs.span "frontend.parse"
      ~attrs:[ ("path", Obs.Json.Str path) ]
      (fun () -> pick_top (Parser.parse_program_file path) top)
  in
  Obs.span "frontend.elaborate"
    ~attrs:[ ("module", Obs.Json.Str m.Ast.mod_name) ]
    (fun () -> elaborate ?infer_transactions ~library m)

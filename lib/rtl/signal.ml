type op =
  | Const of Bitvec.t
  | Input of string
  | Reg of reg
  | Not
  | And
  | Or
  | Xor
  | Add
  | Sub
  | Mul
  | Eq
  | Ult
  | Slt
  | Mux
  | Concat
  | Slice of int * int

and reg = { reg_name : string; init : Bitvec.t; mutable next : t option }

and t = {
  s_uid : int;
  s_width : int;
  s_op : op;
  s_args : t array;
  mutable s_name : string option;
}

(* Atomic so that signal construction is domain-safe: Parallel workers
   run the Opt netlist passes, which build fresh nodes concurrently. *)
let counter = Atomic.make 1

let make width op args =
  {
    s_uid = Atomic.fetch_and_add counter 1;
    s_width = width;
    s_op = op;
    s_args = args;
    s_name = None;
  }

let uid s = s.s_uid
let width s = s.s_width
let op s = s.s_op
let args s = s.s_args
let name s = s.s_name

let ( -- ) s n =
  s.s_name <- Some n;
  s

let const v = make (Bitvec.width v) (Const v) [||]
let of_int ~width:w n = const (Bitvec.of_int ~width:w n)
let zero w = const (Bitvec.zero w)
let one w = const (Bitvec.one w)
let ones w = const (Bitvec.ones w)
let vdd = of_int ~width:1 1
let gnd = of_int ~width:1 0

let input nm w =
  if w < 1 then invalid_arg "Signal.input: width must be >= 1";
  make w (Input nm) [||]

let reg ?init nm w =
  if w < 1 then invalid_arg "Signal.reg: width must be >= 1";
  let init = match init with Some v -> v | None -> Bitvec.zero w in
  if Bitvec.width init <> w then invalid_arg "Signal.reg: init width mismatch";
  make w (Reg { reg_name = nm; init; next = None }) [||]

let reg_of s =
  match s.s_op with
  | Reg r -> r
  | _ -> invalid_arg "Signal.reg_of: not a register"

let reg_set_next r next =
  let payload = reg_of r in
  if next.s_width <> r.s_width then
    invalid_arg
      (Printf.sprintf "Signal.reg_set_next(%s): width mismatch (%d vs %d)"
         payload.reg_name r.s_width next.s_width);
  (match payload.next with
  | Some _ -> invalid_arg (Printf.sprintf "Signal.reg_set_next(%s): already set" payload.reg_name)
  | None -> ());
  payload.next <- Some next

let const_value s = match s.s_op with Const v -> Some v | _ -> None

let check_same op_name a b =
  if a.s_width <> b.s_width then
    invalid_arg
      (Printf.sprintf "Signal.%s: width mismatch (%d vs %d)" op_name a.s_width b.s_width)

(* Binary operator with constant folding. *)
let binop op_name op fold out_width a b =
  check_same op_name a b;
  match (const_value a, const_value b) with
  | Some va, Some vb -> const (fold va vb)
  | _ -> make (out_width a) op [| a; b |]

let same_width a = a.s_width
let bool_width _ = 1

let ( ~: ) a =
  match const_value a with
  | Some v -> const (Bitvec.lognot v)
  | None -> make a.s_width Not [| a |]

let ( &: ) a b = binop "(&:)" And Bitvec.logand same_width a b
let ( |: ) a b = binop "(|:)" Or Bitvec.logor same_width a b
let ( ^: ) a b = binop "(^:)" Xor Bitvec.logxor same_width a b
let ( +: ) a b = binop "(+:)" Add Bitvec.add same_width a b
let ( -: ) a b = binop "(-:)" Sub Bitvec.sub same_width a b
let ( *: ) a b = binop "(*:)" Mul Bitvec.mul same_width a b

let ( ==: ) a b =
  binop "(==:)" Eq (fun x y -> Bitvec.of_bool (Bitvec.equal x y)) bool_width a b

let ( <: ) a b =
  binop "(<:)" Ult (fun x y -> Bitvec.of_bool (Bitvec.ult x y)) bool_width a b

let slt a b =
  binop "slt" Slt (fun x y -> Bitvec.of_bool (Bitvec.slt x y)) bool_width a b

let ( <>: ) a b = ~:(a ==: b)
let ( <=: ) a b = ~:(b <: a)
let ( >: ) a b = b <: a
let ( >=: ) a b = ~:(a <: b)

let mux2 sel on_true on_false =
  if sel.s_width <> 1 then invalid_arg "Signal.mux2: selector must be 1 bit";
  check_same "mux2" on_true on_false;
  match const_value sel with
  | Some v -> if Bitvec.bit v 0 then on_true else on_false
  | None -> make on_true.s_width Mux [| sel; on_true; on_false |]

let concat = function
  | [] -> invalid_arg "Signal.concat: empty"
  | [ s ] -> s
  | parts ->
      if List.for_all (fun s -> const_value s <> None) parts then
        const (Bitvec.concat_list (List.map (fun s -> Option.get (const_value s)) parts))
      else
        let w = List.fold_left (fun acc s -> acc + s.s_width) 0 parts in
        make w Concat (Array.of_list parts)

let select s hi lo =
  if lo < 0 || hi >= s.s_width || hi < lo then
    invalid_arg
      (Printf.sprintf "Signal.select: bad range [%d:%d] of width %d" hi lo s.s_width);
  if lo = 0 && hi = s.s_width - 1 then s
  else
    match const_value s with
    | Some v -> const (Bitvec.extract ~hi ~lo v)
    | None -> make (hi - lo + 1) (Slice (hi, lo)) [| s |]

let bit s i = select s i i
let msb s = bit s (s.s_width - 1)
let lsb s = bit s 0

let uresize s w =
  if w = s.s_width then s
  else if w < s.s_width then select s (w - 1) 0
  else concat [ zero (w - s.s_width); s ]

let sresize s w =
  if w = s.s_width then s
  else if w < s.s_width then select s (w - 1) 0
  else
    (* Replicate the msb; a mux on the sign selects between all-ones and
       all-zeros padding, which avoids a repeat primitive. *)
    concat [ mux2 (msb s) (ones (w - s.s_width)) (zero (w - s.s_width)); s ]

let is_zero s = s ==: zero s.s_width
let reduce_or s = ~:(is_zero s)
let reduce_and s = s ==: ones s.s_width

let sll s k =
  if k < 0 then invalid_arg "Signal.sll: negative shift";
  if k = 0 then s
  else if k >= s.s_width then zero s.s_width
  else concat [ select s (s.s_width - 1 - k) 0; zero k ]

let srl s k =
  if k < 0 then invalid_arg "Signal.srl: negative shift";
  if k = 0 then s
  else if k >= s.s_width then zero s.s_width
  else concat [ zero k; select s (s.s_width - 1) k ]

let log_shift shift s amount =
  (* Barrel shifter: stage i shifts by 2^i when bit i of [amount] is set. *)
  let rec go acc i =
    if i >= amount.s_width then acc
    else
      let shifted = shift acc (1 lsl i) in
      go (mux2 (bit amount i) shifted acc) (i + 1)
  in
  go s 0

let log_shift_left s amount = log_shift sll s amount
let log_shift_right s amount = log_shift srl s amount

let mux sel cases =
  match cases with
  | [] -> invalid_arg "Signal.mux: empty case list"
  | first :: rest ->
      List.iter (check_same "mux" first) rest;
      let n = List.length cases in
      let arr = Array.of_list cases in
      (* Binary-decode the selector into a mux tree. *)
      let rec build lo count bit_idx =
        if count = 1 || bit_idx < 0 then arr.(min lo (n - 1))
        else
          let half = 1 lsl bit_idx in
          if half >= count then
            (* The whole upper half is out of range: clamp to the last case. *)
            mux2 (bit sel bit_idx) arr.(n - 1) (build lo count (bit_idx - 1))
          else
            mux2 (bit sel bit_idx)
              (build (lo + half) (count - half) (bit_idx - 1))
              (build lo (min half count) (bit_idx - 1))
      in
      build 0 n (sel.s_width - 1)

let onehot_mux pairs ~default =
  List.fold_right (fun (cond, v) acc -> mux2 cond v acc) pairs default

let pp fmt s =
  let opname =
    match s.s_op with
    | Const v -> Format.asprintf "const %a" Bitvec.pp v
    | Input n -> Printf.sprintf "input %s" n
    | Reg r -> Printf.sprintf "reg %s" r.reg_name
    | Not -> "not"
    | And -> "and"
    | Or -> "or"
    | Xor -> "xor"
    | Add -> "add"
    | Sub -> "sub"
    | Mul -> "mul"
    | Eq -> "eq"
    | Ult -> "ult"
    | Slt -> "slt"
    | Mux -> "mux"
    | Concat -> "concat"
    | Slice (hi, lo) -> Printf.sprintf "slice[%d:%d]" hi lo
  in
  Format.fprintf fmt "#%d:%d %s%s" s.s_uid s.s_width opname
    (match s.s_name with Some n -> " (" ^ n ^ ")" | None -> "")

(** Hardware signals.

    A signal is a node of a directed graph describing synchronous hardware:
    combinational operators over fixed-width bitvectors, primary inputs, and
    registers. Registers are created first and given their next-state
    function afterwards ({!reg_set_next}), which is how feedback loops are
    closed.

    Signals carry globally unique ids; a {!Circuit} elaborates a set of
    output signals into a checked, topologically ordered netlist. *)

type t

(** Operator of a node, exposed for consumers (simulator, bit-blaster,
    printers) that traverse the graph. *)
type op =
  | Const of Bitvec.t
  | Input of string
  | Reg of reg
  | Not
  | And
  | Or
  | Xor
  | Add
  | Sub
  | Mul
  | Eq  (** 1-bit result *)
  | Ult  (** unsigned less-than, 1-bit result *)
  | Slt  (** signed less-than, 1-bit result *)
  | Mux  (** args = [sel; on_true; on_false], [sel] 1 bit wide *)
  | Concat  (** args are most-significant first *)
  | Slice of int * int  (** [Slice (hi, lo)], single argument *)

and reg = {
  reg_name : string;
  init : Bitvec.t;
  mutable next : t option;
}

val uid : t -> int
val width : t -> int
val op : t -> op
val args : t -> t array

val name : t -> string option
(** Debug name, if one was attached with {!( -- )}. *)

val ( -- ) : t -> string -> t
(** [s -- n] attaches debug name [n] to [s] and returns [s]. *)

(** {1 Sources} *)

val const : Bitvec.t -> t

(** [const_value s] is [Some v] when the node is a constant — the hook
    used by constant folding in optimization passes. *)
val const_value : t -> Bitvec.t option
val of_int : width:int -> int -> t
val zero : int -> t
val one : int -> t
val ones : int -> t
val vdd : t  (** fresh 1-bit constant 1 *)

val gnd : t  (** fresh 1-bit constant 0 *)

val input : string -> int -> t
(** [input name width] declares a primary input. *)

val reg : ?init:Bitvec.t -> string -> int -> t
(** [reg name width] creates a register initialized to [init] (default
    zero). Its next-state function must be set with {!reg_set_next} before
    elaboration. *)

val reg_set_next : t -> t -> unit
(** [reg_set_next r next] closes the feedback loop. Raises if [r] is not a
    register, widths differ, or the next is already set. *)

val reg_of : t -> reg
(** The register payload of a [Reg] node. Raises otherwise. *)

(** {1 Combinational operators}

    All operators check widths and raise [Invalid_argument] on mismatch.
    Constant folding is applied where both operands are constants. *)

val ( ~: ) : t -> t
val ( &: ) : t -> t -> t
val ( |: ) : t -> t -> t
val ( ^: ) : t -> t -> t
val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( ==: ) : t -> t -> t
val ( <>: ) : t -> t -> t
val ( <: ) : t -> t -> t  (** unsigned *)

val ( <=: ) : t -> t -> t
val ( >: ) : t -> t -> t
val ( >=: ) : t -> t -> t
val slt : t -> t -> t

val mux2 : t -> t -> t -> t
(** [mux2 sel on_true on_false]. *)

val mux : t -> t list -> t
(** [mux sel cases] selects [List.nth cases (value sel)]; the last case is
    replicated for out-of-range select values. Raises on empty list. *)

val concat : t list -> t
(** Most-significant first. *)

val select : t -> int -> int -> t
(** [select s hi lo]. *)

val bit : t -> int -> t
val msb : t -> t
val lsb : t -> t

val uresize : t -> int -> t
(** Zero-extend or truncate to the given width. *)

val sresize : t -> int -> t

val reduce_or : t -> t
val reduce_and : t -> t

val is_zero : t -> t
(** [is_zero s] is a 1-bit signal, true when all bits of [s] are 0. *)

val sll : t -> int -> t
(** Shift left by a constant, keeping width. *)

val srl : t -> int -> t
val log_shift_left : t -> t -> t
(** Dynamic shift, as a mux tree over the bits of the shift amount. *)

val log_shift_right : t -> t -> t

val onehot_mux : (t * t) list -> default:t -> t
(** [onehot_mux [(c0, v0); ...] ~default] is a priority mux: the value of
    the first pair whose 1-bit condition holds, else [default]. *)

val pp : Format.formatter -> t -> unit

type mapping = Signal.t -> Signal.t

let rebuild ?(subst = fun _ -> None)
    ?(map_input = fun ~name ~width -> Signal.input name width)
    ?(map_reg_name = fun n -> n) ?(instrument_next = fun ~reg:_ ~next -> next)
    roots =
  let memo : (int, Signal.t) Hashtbl.t = Hashtbl.create 1024 in
  (* Registers whose next-state function still needs cloning. Wiring is
     deferred until every root's combinational cone is done: recursing
     into [next] eagerly would re-enter the feedback loop while the
     combinational ancestors are still mid-clone (unmemoized) and
     duplicate them, leaving the copy semantically equal but not
     isomorphic to the original. *)
  let pending : (Signal.reg * Signal.t) Queue.t = Queue.create () in
  let copy_name old fresh =
    match Signal.name old with
    | Some n -> ignore (Signal.( -- ) fresh n)
    | None -> ()
  in
  let rec clone s =
    match Hashtbl.find_opt memo (Signal.uid s) with
    | Some s' -> s'
    | None -> (
        match subst s with
        | Some replacement ->
            Hashtbl.replace memo (Signal.uid s) replacement;
            replacement
        | None -> (
            match Signal.op s with
            | Signal.Const v ->
                let s' = Signal.const v in
                copy_name s s';
                Hashtbl.replace memo (Signal.uid s) s';
                s'
            | Signal.Input n ->
                let s' = map_input ~name:n ~width:(Signal.width s) in
                Hashtbl.replace memo (Signal.uid s) s';
                s'
            | Signal.Reg r ->
                let s' =
                  Signal.reg ~init:r.Signal.init
                    (map_reg_name r.Signal.reg_name)
                    (Signal.width s)
                in
                copy_name s s';
                Hashtbl.replace memo (Signal.uid s) s';
                Queue.add (r, s') pending;
                s'
            | op ->
                let args = Array.map clone (Signal.args s) in
                let s' = rebuild_op op args in
                copy_name s s';
                Hashtbl.replace memo (Signal.uid s) s';
                s'))
  and rebuild_op op args =
    let a i = args.(i) in
    match op with
    | Signal.Not -> Signal.( ~: ) (a 0)
    | Signal.And -> Signal.( &: ) (a 0) (a 1)
    | Signal.Or -> Signal.( |: ) (a 0) (a 1)
    | Signal.Xor -> Signal.( ^: ) (a 0) (a 1)
    | Signal.Add -> Signal.( +: ) (a 0) (a 1)
    | Signal.Sub -> Signal.( -: ) (a 0) (a 1)
    | Signal.Mul -> Signal.( *: ) (a 0) (a 1)
    | Signal.Eq -> Signal.( ==: ) (a 0) (a 1)
    | Signal.Ult -> Signal.( <: ) (a 0) (a 1)
    | Signal.Slt -> Signal.slt (a 0) (a 1)
    | Signal.Mux -> Signal.mux2 (a 0) (a 1) (a 2)
    | Signal.Concat -> Signal.concat (Array.to_list args)
    | Signal.Slice (hi, lo) -> Signal.select (a 0) hi lo
    | Signal.Const _ | Signal.Input _ | Signal.Reg _ ->
        assert false (* handled above *)
  in
  let roots' = List.map clone roots in
  (* Wire the deferred next-state functions; cloning one may discover
     further registers, which join the queue. *)
  let rec drain () =
    match Queue.take_opt pending with
    | None -> ()
    | Some (r, s') ->
        let next =
          match r.Signal.next with
          | Some n -> clone n
          | None ->
              failwith
                ("Transform.rebuild: register without next: " ^ r.Signal.reg_name)
        in
        Signal.reg_set_next s' (instrument_next ~reg:s' ~next);
        drain ()
  in
  drain ();
  let mapping s = Hashtbl.find memo (Signal.uid s) in
  (roots', mapping)

let clone_outputs ?subst ?map_input ?map_reg_name ?instrument_next circuit =
  let ports = Circuit.outputs circuit in
  let roots = List.map (fun p -> p.Circuit.signal) ports in
  let roots', mapping =
    rebuild ?subst ?map_input ?map_reg_name ?instrument_next roots
  in
  (List.map2 (fun p s -> (p.Circuit.port_name, s)) ports roots', mapping)

(** Word-level netlist optimization, run between FT construction and
    bit-blasting.

    The two-universe miter AutoCC builds duplicates every DUT gate, and
    the BMC loop re-encodes the whole signal DAG at every unrolled depth,
    so netlist reductions are paid back [max_depth] times per run. The
    pipeline applies, in order:

    + {b structural hash-consing (strash/CSE)}: structurally identical
      gates (commutative operands normalized) collapse to one node;
    + {b constant folding and algebraic rewrites}: identity/annihilator
      operands, double negation, muxes with equal arms, slice-of-slice
      and slice-of-concat collapsing, nested-concat flattening;
    + {b cone-of-influence restriction}: only the outputs named in
      [keep_outputs] (for BMC: the property signals) are kept as roots —
      logic feeding no assumption or assertion is never encoded;
    + {b inductive SAT sweep with register correspondence} (level {!O2},
      the van Eijk pass): candidate equivalence classes are proposed by
      two signature families — reset-reachable random-simulation traces
      and free-state frames (inputs {e and} registers random) — then
      discharged by 2-frame induction on one incremental solver: class
      equalities are assumed at cycle 0 under an activation literal,
      each pair is queried at cycle 1, and a refuting model re-partitions
      every class by its model values (CEGAR) until a fixpoint; a second
      solver checks the base case from reset. Register pairs with equal
      reset values merge the same way through their next-state
      functions — in an AutoCC miter this is what collapses α/β register
      pairs whose cones depend only on shared (common) inputs.

    {b Soundness.} Classes surviving base + step are inductive
    invariants: they hold on every reachable (state, input) pair, so
    merging them preserves all traces from the initial state — the
    optimized circuit is cycle-accurate against the original on the
    simulator, and BMC verdicts {e and counterexample depths} are
    unchanged. {!Bmc} additionally replays every counterexample found on
    an optimized circuit against the {e unoptimized} instrumented
    circuit, so optimizer bugs surface as {!Bmc.Replay_mismatch} rather
    than as wrong answers. *)

type level = O0 | O1 | O2
(** [O0] disables the pipeline, [O1] runs the structural passes
    (strash, rewrites, cone-of-influence), [O2] adds the SAT-backed
    sweeping and register-correspondence passes. *)

val level_of_int : int -> level
(** [0 -> O0], [1 -> O1], anything larger [-> O2]. Raises
    [Invalid_argument] on negatives. *)

val level_to_int : level -> int

type stats = {
  o_nodes_before : int;  (** nodes of the input circuit *)
  o_nodes_after : int;  (** nodes of the optimized circuit *)
  o_coi_dropped : int;  (** nodes outside the kept outputs' cones *)
  o_cse_merged : int;  (** structural-hash hits *)
  o_rewrites : int;  (** algebraic-rewrite hits *)
  o_sweep_candidates : int;  (** class members proposed by the signatures *)
  o_sweep_merged : int;  (** nodes proven equivalent and merged *)
  o_sweep_refuted : int;  (** candidates dropped by induction/base checks *)
  o_regs_merged : int;  (** registers merged by correspondence *)
  o_sat_queries : int;  (** discharge queries issued *)
  o_time : float;  (** seconds spent optimizing (including SAT) *)
}

val empty_stats : stats

val add_stats : stats -> stats -> stats
(** Componentwise sum — used when merging per-shard reports. *)

val pp_stats : Format.formatter -> stats -> unit

val cone : Rtl.Circuit.t -> roots:Rtl.Signal.t list -> Rtl.Signal.t list
(** Backward fan-in cone-of-influence: every node of the circuit reachable
    from [roots] through operator arguments and register next-state
    functions, returned in the circuit's topological order. This is the
    same reachability the [keep_outputs] restriction of {!optimize} prunes
    by; exposed so trace slicing ({!Explain}) can watch exactly the nodes
    that can affect a failing assertion. Roots outside the circuit are
    ignored. *)

type result = {
  opt_circuit : Rtl.Circuit.t;
  opt_map : Rtl.Signal.t -> Rtl.Signal.t;
      (** Maps a node of the input circuit (within the kept cones) to
          its optimized counterpart. Raises [Not_found] for nodes whose
          cone was dropped. *)
  opt_stats : stats;
}

val optimize :
  ?level:level ->
  ?keep_outputs:string list ->
  ?sweep_solver:Sat.Solver.t ->
  ?sweep_min:int ->
  Rtl.Circuit.t ->
  result
(** [optimize circuit] runs the pipeline (default level {!O2}) over the
    outputs named in [keep_outputs] (default: all outputs). At {!O0} the
    circuit is returned unchanged with the identity map.

    The {!O2} sweep only runs when the post-structural circuit has at
    least [sweep_min] nodes (default a few hundred): the sweep's fixed
    cost — signature simulation plus an inductive discharge instance —
    cannot be recouped on cones that already solve in milliseconds.
    Pass [~sweep_min:0] to force the sweep regardless of size.

    With [sweep_solver], the {!O2} sweep runs on the given (persistent)
    solver instead of private instances: every clause of the sweep
    session carries a session guard, and the session retires the guard
    and calls {!Sat.Solver.simplify} before returning, so the solver
    comes back with no live sweep clauses — only the learnt clauses and
    variable activity seeded by the sweep queries, which is the point:
    the BMC engine that lends its solver here starts its depth queries
    warm. The borrowed solver's budget and stop hook govern the sweep
    queries too, so a deadline or cancellation fires inside [optimize]
    (as {!Sat.Solver.Out_of_budget} / {!Sat.Solver.Stopped}) rather
    than being ignored until blasting begins. *)

module Signal = Rtl.Signal
module Circuit = Rtl.Circuit
module S = Sat.Solver
module Blast = Cnf.Blast

type level = O0 | O1 | O2

let level_of_int = function
  | n when n < 0 -> invalid_arg "Opt.level_of_int: negative level"
  | 0 -> O0
  | 1 -> O1
  | _ -> O2

let level_to_int = function O0 -> 0 | O1 -> 1 | O2 -> 2

type stats = {
  o_nodes_before : int;
  o_nodes_after : int;
  o_coi_dropped : int;
  o_cse_merged : int;
  o_rewrites : int;
  o_sweep_candidates : int;
  o_sweep_merged : int;
  o_sweep_refuted : int;
  o_regs_merged : int;
  o_sat_queries : int;
  o_time : float;
}

let empty_stats =
  {
    o_nodes_before = 0;
    o_nodes_after = 0;
    o_coi_dropped = 0;
    o_cse_merged = 0;
    o_rewrites = 0;
    o_sweep_candidates = 0;
    o_sweep_merged = 0;
    o_sweep_refuted = 0;
    o_regs_merged = 0;
    o_sat_queries = 0;
    o_time = 0.;
  }

let add_stats a b =
  {
    o_nodes_before = a.o_nodes_before + b.o_nodes_before;
    o_nodes_after = a.o_nodes_after + b.o_nodes_after;
    o_coi_dropped = a.o_coi_dropped + b.o_coi_dropped;
    o_cse_merged = a.o_cse_merged + b.o_cse_merged;
    o_rewrites = a.o_rewrites + b.o_rewrites;
    o_sweep_candidates = a.o_sweep_candidates + b.o_sweep_candidates;
    o_sweep_merged = a.o_sweep_merged + b.o_sweep_merged;
    o_sweep_refuted = a.o_sweep_refuted + b.o_sweep_refuted;
    o_regs_merged = a.o_regs_merged + b.o_regs_merged;
    o_sat_queries = a.o_sat_queries + b.o_sat_queries;
    o_time = a.o_time +. b.o_time;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "%d -> %d nodes (coi -%d, cse %d, rw %d; sweep %d/%d merged, %d refuted, %d regs, %d queries) %.3fs"
    s.o_nodes_before s.o_nodes_after s.o_coi_dropped s.o_cse_merged s.o_rewrites
    s.o_sweep_merged s.o_sweep_candidates s.o_sweep_refuted s.o_regs_merged
    s.o_sat_queries s.o_time

type result = {
  opt_circuit : Circuit.t;
  opt_map : Signal.t -> Signal.t;
  opt_stats : stats;
}

(* Backward reachability from [roots] through args and register
   next-state functions — the same closure the [keep_outputs] restriction
   computes implicitly during the rebuild pass, exposed for trace
   slicing. *)
let cone circuit ~roots =
  let seen = Hashtbl.create 256 in
  let rec visit s =
    if Circuit.mem_node circuit s && not (Hashtbl.mem seen (Signal.uid s))
    then begin
      Hashtbl.replace seen (Signal.uid s) ();
      Array.iter visit (Signal.args s);
      match Signal.op s with
      | Signal.Reg r -> Option.iter visit r.Signal.next
      | _ -> ()
    end
  in
  List.iter visit roots;
  Array.to_list (Circuit.topo circuit)
  |> List.filter (fun s -> Hashtbl.mem seen (Signal.uid s))

(* {1 Structural rebuild: hash-consing + algebraic rewrites}

   One bottom-up pass over the (resolved) graph. Every rebuilt node is
   interned in a structural hash table keyed by operator, width and
   argument uids (commutative operands sorted), so structurally equal
   gates collapse; before a fresh gate is created the algebraic rules
   below get a chance to return an existing node instead. *)

type counters = { mutable cse : int; mutable rw : int }

let op_tag = function
  | Signal.Not -> "not"
  | Signal.And -> "and"
  | Signal.Or -> "or"
  | Signal.Xor -> "xor"
  | Signal.Add -> "add"
  | Signal.Sub -> "sub"
  | Signal.Mul -> "mul"
  | Signal.Eq -> "eq"
  | Signal.Ult -> "ult"
  | Signal.Slt -> "slt"
  | Signal.Mux -> "mux"
  | Signal.Concat -> "concat"
  | Signal.Slice (hi, lo) -> Printf.sprintf "slice:%d:%d" hi lo
  | Signal.Const _ | Signal.Input _ | Signal.Reg _ -> assert false

let key_of op args w =
  let uids = Array.to_list (Array.map Signal.uid args) in
  match op with
  | Signal.And | Signal.Or | Signal.Xor | Signal.Add | Signal.Mul | Signal.Eq ->
      (op_tag op, w, List.sort compare uids)
  | _ -> (op_tag op, w, uids)

(* The rebuild closure set: [clone] walks old nodes, [mk] interns and
   rewrites one operator application over already-rebuilt arguments. *)
let rebuild ~cnt ~resolve roots =
  let memo : (int, Signal.t) Hashtbl.t = Hashtbl.create 1024 in
  let strash : (string * int * int list, Signal.t) Hashtbl.t = Hashtbl.create 1024 in
  let copy_name old fresh =
    match Signal.name old with
    | Some n -> ignore (Signal.( -- ) fresh n)
    | None -> ()
  in
  let const v =
    let key = ("const:" ^ Bitvec.to_hex_string v, Bitvec.width v, []) in
    match Hashtbl.find_opt strash key with
    | Some n -> n
    | None ->
        let n = Signal.const v in
        Hashtbl.replace strash key n;
        n
  in
  let cv = Signal.const_value in
  let is0 s = match cv s with Some v -> Bitvec.is_zero v | None -> false in
  let isF s = match cv s with Some v -> Bitvec.is_ones v | None -> false in
  let is_one s =
    match cv s with
    | Some v -> Bitvec.equal v (Bitvec.one (Bitvec.width v))
    | None -> false
  in
  let same a b = Signal.uid a = Signal.uid b in
  (* Concat normalization: splice nested concats in, merge adjacent
     constant parts (most-significant first). *)
  let normalize op args =
    match op with
    | Signal.Concat ->
        let parts =
          Array.to_list args
          |> List.concat_map (fun a ->
                 match Signal.op a with
                 | Signal.Concat -> Array.to_list (Signal.args a)
                 | _ -> [ a ])
        in
        let merged =
          List.fold_left
            (fun acc p ->
              match (acc, cv p) with
              | prev :: rest, Some v -> (
                  match cv prev with
                  | Some pv -> const (Bitvec.concat_list [ pv; v ]) :: rest
                  | None -> p :: acc)
              | _ -> p :: acc)
            [] parts
          |> List.rev
        in
        if List.length merged <> Array.length args then cnt.rw <- cnt.rw + 1;
        (op, Array.of_list merged)
    | _ -> (op, args)
  in
  let rec mk op args w =
    match op with
    | Signal.Const v -> const v
    | Signal.Input n -> (
        let key = ("input:" ^ n, w, []) in
        match Hashtbl.find_opt strash key with
        | Some s -> s
        | None ->
            let s = Signal.input n w in
            Hashtbl.replace strash key s;
            s)
    | Signal.Reg _ -> assert false (* handled in [clone] *)
    | _ -> (
        let op, args = normalize op args in
        let key = key_of op args w in
        match Hashtbl.find_opt strash key with
        | Some n ->
            cnt.cse <- cnt.cse + 1;
            n
        | None ->
            let node = rewrite op args w in
            Hashtbl.replace strash key node;
            node)
  and rewrite op args w =
    let hit n =
      cnt.rw <- cnt.rw + 1;
      n
    in
    let a i = args.(i) in
    match op with
    | Signal.Not -> (
        match Signal.op (a 0) with
        | Signal.Not -> hit (Signal.args (a 0)).(0)
        | _ -> Signal.( ~: ) (a 0))
    | Signal.And ->
        if same (a 0) (a 1) then hit (a 0)
        else if is0 (a 0) || is0 (a 1) then hit (const (Bitvec.zero w))
        else if isF (a 0) then hit (a 1)
        else if isF (a 1) then hit (a 0)
        else Signal.( &: ) (a 0) (a 1)
    | Signal.Or ->
        if same (a 0) (a 1) then hit (a 0)
        else if isF (a 0) || isF (a 1) then hit (const (Bitvec.ones w))
        else if is0 (a 0) then hit (a 1)
        else if is0 (a 1) then hit (a 0)
        else Signal.( |: ) (a 0) (a 1)
    | Signal.Xor ->
        if same (a 0) (a 1) then hit (const (Bitvec.zero w))
        else if is0 (a 0) then hit (a 1)
        else if is0 (a 1) then hit (a 0)
        else if isF (a 0) then hit (mk Signal.Not [| a 1 |] w)
        else if isF (a 1) then hit (mk Signal.Not [| a 0 |] w)
        else Signal.( ^: ) (a 0) (a 1)
    | Signal.Add ->
        if is0 (a 0) then hit (a 1)
        else if is0 (a 1) then hit (a 0)
        else Signal.( +: ) (a 0) (a 1)
    | Signal.Sub ->
        if is0 (a 1) then hit (a 0)
        else if same (a 0) (a 1) then hit (const (Bitvec.zero w))
        else Signal.( -: ) (a 0) (a 1)
    | Signal.Mul ->
        if is0 (a 0) || is0 (a 1) then hit (const (Bitvec.zero w))
        else if is_one (a 0) then hit (a 1)
        else if is_one (a 1) then hit (a 0)
        else Signal.( *: ) (a 0) (a 1)
    | Signal.Eq -> (
        if same (a 0) (a 1) then hit (const (Bitvec.one 1))
        else
          let x = a 0 and y = a 1 in
          (* An equality over a concatenation splits into part-wise
             equalities: constant parts fold away and unit propagation
             becomes local to each field (tag compares in caches, opcode
             fields in decoders). *)
          let split_concat c other =
            let parts_lsb = List.rev (Array.to_list (Signal.args c)) in
            let rec go off acc = function
              | [] -> acc
              | p :: rest ->
                  let pw = Signal.width p in
                  let o = mk (Signal.Slice (off + pw - 1, off)) [| other |] pw in
                  go (off + pw) (mk Signal.Eq [| p; o |] 1 :: acc) rest
            in
            match go 0 [] parts_lsb with
            | [] -> const (Bitvec.one 1)
            | e :: es ->
                List.fold_left (fun acc e -> mk Signal.And [| acc; e |] 1) e es
          in
          (* [mux(s,t,f) == c] with a constant [c] and a constant arm
             distributes the compare into the mux: the constant arm folds
             to a boolean and the whole equality collapses towards the
             selector (FSM state-compare chains). *)
          let mux_const_arm m =
            let ma = Signal.args m in
            cv ma.(1) <> None || cv ma.(2) <> None
          in
          let distribute m c =
            let ma = Signal.args m in
            mk Signal.Mux
              [|
                ma.(0);
                mk Signal.Eq [| ma.(1); c |] 1;
                mk Signal.Eq [| ma.(2); c |] 1;
              |]
              1
          in
          match (Signal.op x, Signal.op y) with
          | Signal.Concat, _ -> hit (split_concat x y)
          | _, Signal.Concat -> hit (split_concat y x)
          | Signal.Mux, Signal.Const _ when mux_const_arm x ->
              hit (distribute x y)
          | Signal.Const _, Signal.Mux when mux_const_arm y ->
              hit (distribute y x)
          | _ -> Signal.( ==: ) x y)
    | Signal.Ult ->
        (* a < a and a < 0 are never true; ones is the unsigned maximum. *)
        if same (a 0) (a 1) || is0 (a 1) || isF (a 0) then
          hit (const (Bitvec.zero 1))
        else Signal.( <: ) (a 0) (a 1)
    | Signal.Slt ->
        if same (a 0) (a 1) then hit (const (Bitvec.zero 1))
        else Signal.slt (a 0) (a 1)
    | Signal.Mux ->
        let s = a 0 and t = a 1 and f = a 2 in
        if same t f then hit t
        else if w = 1 && is_one t && is0 f then hit s
        else if w = 1 && is0 t && is_one f then hit (mk Signal.Not [| s |] 1)
        else begin
          (* Nested muxes on the same selector are redundant on one arm. *)
          let t' =
            match Signal.op t with
            | Signal.Mux when same (Signal.args t).(0) s -> (Signal.args t).(1)
            | _ -> t
          in
          let f' =
            match Signal.op f with
            | Signal.Mux when same (Signal.args f).(0) s -> (Signal.args f).(2)
            | _ -> f
          in
          if not (same t t') || not (same f f') then cnt.rw <- cnt.rw + 1;
          if same t' f' then t' else Signal.mux2 s t' f'
        end
    | Signal.Concat -> Signal.concat (Array.to_list args)
    | Signal.Slice (hi, lo) -> (
        let x = a 0 in
        if lo = 0 && hi = Signal.width x - 1 then x
        else
          match Signal.op x with
          | Signal.Slice (_, lo') ->
              hit (mk (Signal.Slice (lo' + hi, lo' + lo)) [| (Signal.args x).(0) |] w)
          | Signal.Concat ->
              (* Re-slice only the parts the range overlaps; parts are
                 stored most-significant first. *)
              let parts_lsb = List.rev (Array.to_list (Signal.args x)) in
              let rec collect off acc = function
                | [] -> acc (* built lsb-to-msb by prepending: msb first *)
                | p :: rest ->
                    let pw = Signal.width p in
                    let acc =
                      if off + pw <= lo || off > hi then acc
                      else
                        let phi = min (hi - off) (pw - 1)
                        and plo = max 0 (lo - off) in
                        mk (Signal.Slice (phi, plo)) [| p |] (phi - plo + 1)
                        :: acc
                    in
                    collect (off + pw) acc rest
              in
              hit (mk Signal.Concat (Array.of_list (collect 0 [] parts_lsb)) w)
          | _ -> Signal.select x hi lo)
    | Signal.Const _ | Signal.Input _ | Signal.Reg _ -> assert false
  in
  let rec clone s0 =
    let s = resolve s0 in
    match Hashtbl.find_opt memo (Signal.uid s) with
    | Some s' ->
        if Signal.uid s0 <> Signal.uid s then
          Hashtbl.replace memo (Signal.uid s0) s';
        s'
    | None ->
        let s' =
          match Signal.op s with
          | Signal.Const v -> const v
          | Signal.Input n -> mk (Signal.Input n) [||] (Signal.width s)
          | Signal.Reg r ->
              let fresh =
                Signal.reg ~init:r.Signal.init r.Signal.reg_name (Signal.width s)
              in
              copy_name s fresh;
              (* Memoize before recursing: next-state functions refer back
                 to the register. *)
              Hashtbl.replace memo (Signal.uid s) fresh;
              Hashtbl.replace memo (Signal.uid s0) fresh;
              Signal.reg_set_next fresh (clone (Option.get r.Signal.next));
              fresh
          | op -> mk op (Array.map clone (Signal.args s)) (Signal.width s)
        in
        copy_name s s';
        Hashtbl.replace memo (Signal.uid s) s';
        Hashtbl.replace memo (Signal.uid s0) s';
        s'
  in
  let roots' = List.map (fun (n, s) -> (n, clone s)) roots in
  (roots', memo)

(* {1 SAT sweeping and register correspondence}

   Both passes share one solver and one [free_init] single-cycle blast of
   the circuit: at cycle 0 every input AND every register is a fresh
   variable, so a literal-level equivalence proof is an equivalence for
   every valuation of inputs and current state. *)

type sweep_counters = {
  mutable sw_cand : int;
  mutable sw_merged : int;
  mutable sw_refuted : int;
  mutable sw_regs : int;
  mutable sw_queries : int;
}

(* Candidate detection: simulate random traces {e from reset} and group
   nodes by their value sequences. Sampling reachable states (rather
   than random state valuations) keeps as candidates the pairs that are
   equal on every reachable state but differ on some unreachable one —
   exactly the merges only the inductive pass below can discharge.

   Signatures are accumulated as integer hashes rather than value lists:
   [Bitvec.t] is normalized (structural equality coincides with value
   equality), so [Hashtbl.hash] is value-stable and two nodes with equal
   trace behaviour always hash equal. A collision between inequivalent
   nodes merely creates a candidate pair the SAT pass refutes — never an
   unsound merge — at one query of cost, for a signature phase with no
   string building or per-node allocation. *)
let sig_combine h v = ((h * 31) + Hashtbl.hash v) land max_int

let trace_signatures ?(free_state = false) st ~ntraces ~len circuit =
  let topo = Circuit.topo circuit in
  let n = Array.length topo in
  let sigs = Array.make n 0 in
  let vals = Array.make n (Bitvec.zero 1) in
  let state = Array.make n (Bitvec.zero 1) in
  let regs = Circuit.regs circuit in
  let idx s = Circuit.node_index circuit s in
  for _ = 1 to ntraces do
    List.iter
      (fun r ->
        state.(idx r) <-
          (if free_state then Bitvec.random st (Signal.width r)
           else (Signal.reg_of r).Signal.init))
      regs;
    for _ = 1 to len do
      Array.iteri
        (fun i s ->
          let arg k = vals.(idx (Signal.args s).(k)) in
          let v =
            match Signal.op s with
            | Signal.Const c -> c
            | Signal.Input _ -> Bitvec.random st (Signal.width s)
            | Signal.Reg _ -> state.(i)
            | Signal.Not -> Bitvec.lognot (arg 0)
            | Signal.And -> Bitvec.logand (arg 0) (arg 1)
            | Signal.Or -> Bitvec.logor (arg 0) (arg 1)
            | Signal.Xor -> Bitvec.logxor (arg 0) (arg 1)
            | Signal.Add -> Bitvec.add (arg 0) (arg 1)
            | Signal.Sub -> Bitvec.sub (arg 0) (arg 1)
            | Signal.Mul -> Bitvec.mul (arg 0) (arg 1)
            | Signal.Eq -> Bitvec.of_bool (Bitvec.equal (arg 0) (arg 1))
            | Signal.Ult -> Bitvec.of_bool (Bitvec.ult (arg 0) (arg 1))
            | Signal.Slt -> Bitvec.of_bool (Bitvec.slt (arg 0) (arg 1))
            | Signal.Mux -> if Bitvec.bit (arg 0) 0 then arg 1 else arg 2
            | Signal.Concat ->
                Bitvec.concat_list
                  (Array.to_list (Array.mapi (fun k _ -> arg k) (Signal.args s)))
            | Signal.Slice (hi, lo) -> Bitvec.extract ~hi ~lo (arg 0)
          in
          vals.(i) <- v;
          sigs.(i) <- sig_combine sigs.(i) v)
        topo;
      List.iter
        (fun r ->
          state.(idx r) <-
            vals.(idx (Option.get (Signal.reg_of r).Signal.next)))
        regs
    done
  done;
  sigs

(* Group a list by a key function (any hashable key), preserving
   first-seen key order and within-class element order; classes of fewer
   than two elements drop. *)
let group_by key elems =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun s ->
      let k = key s in
      (match Hashtbl.find_opt tbl k with
      | None -> order := k :: !order
      | Some _ -> ());
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
      Hashtbl.replace tbl k (s :: prev))
    elems;
  List.rev !order
  |> List.filter_map (fun k ->
         match List.rev (Hashtbl.find tbl k) with
         | _ :: _ :: _ as cls -> Some cls
         | _ -> None)

(* Dominance bail-out for the sweep: its queries are one- and two-frame
   solves on exactly the cone BMC is about to unroll, so the time the
   solver spends inside them is a live observation of shallow-depth
   solve cost. When the machinery around the queries — signatures,
   blasting three frames, clause loading, xor ladders — has cost more
   than [overhead_ratio] times the accumulated in-solver time, the cone
   is discharging trivially and the sweep's fixed cost is the dominant
   term of the whole -O2 run (the C1 row of BENCH_opt.json regressed to
   0.55x this way); the sweep is abandoned and every unproven merge is
   dropped, which is sound — skipping a sound reduction is itself
   sound. On solver-bound cones the overhead fraction stays well under
   the ratio and the sweep runs to completion, keeping both its merges
   and the learnt clauses it seeds into a borrowed solver. The floor
   delays the test past the setup phase, where the overhead fraction is
   high for every cone because no queries have run yet. *)
let sweep_bail_floor_s = 0.018
let sweep_bail_overhead_ratio = 2.0

let sweep ?solver ?(max_queries = 4000) circuit =
  let t_start = Unix.gettimeofday () in
  let solve_acc = ref 0. in
  let sc =
    { sw_cand = 0; sw_merged = 0; sw_refuted = 0; sw_regs = 0; sw_queries = 0 }
  in
  let merges : (int, Signal.t) Hashtbl.t = Hashtbl.create 64 in
  let topo = Circuit.topo circuit in
  let st = Random.State.make [| 0x0517AC; Array.length topo |] in
  let sigs = trace_signatures st ~ntraces:12 ~len:6 circuit in
  (* Free-state frames sharpen the combinational filter: a pair that
     differs on some random (state, input) valuation is almost never a
     profitable speculative merge, even when its from-reset traces
     agree — every candidate filtered here saves a refuting SAT query. *)
  let free_sigs = trace_signatures ~free_state:true st ~ntraces:64 ~len:1 circuit in
  let sig_of s = sigs.(Circuit.node_index circuit s) in
  let free_sig_of s = free_sigs.(Circuit.node_index circuit s) in
  (* Combinational candidate classes: topo order puts the representative
     (the class head) strictly before its members, so a member's cone can
     never contain its representative and merging cannot create cycles.
     Constants and inputs may lead a class (members merge into them) but
     never merge away themselves. *)
  let mergeable m =
    match Signal.op m with
    | Signal.Const _ | Signal.Input _ | Signal.Reg _ -> false
    | _ -> true
  in
  let comb_classes =
    Array.to_list topo
    |> List.filter (fun s ->
           match Signal.op s with Signal.Reg _ -> false | _ -> true)
    |> group_by (fun s -> (Signal.width s, sig_of s, free_sig_of s))
    |> List.filter_map (fun cls ->
           match cls with
           | rep :: members -> (
               match List.filter mergeable members with
               | [] -> None
               | ms -> Some (rep :: ms))
           | [] -> None)
  in
  (* Register candidate classes: same width, same reset value, same
     from-reset behaviour on the sampled traces. *)
  let reg_classes =
    group_by
      (fun r -> (Signal.width r, (Signal.reg_of r).Signal.init, sig_of r))
      (Circuit.regs circuit)
  in
  let all_classes = comb_classes @ reg_classes in
  List.iter
    (fun cls -> sc.sw_cand <- sc.sw_cand + List.length cls - 1)
    all_classes;
  if all_classes = [] then (merges, sc)
  else begin
    (* Both SAT instances live on ONE solver — the caller's persistent
       solver when [solver] is given (the BMC engine lends its instance
       so learnt clauses and variable activity seeded here survive into
       the depth queries that follow), a private one otherwise. When the
       solver is borrowed, every clause this session emits is weakened
       by a session guard so the whole sweep can be retired and
       physically deleted before handing the solver back. *)
    let ssolver = match solver with Some s -> s | None -> S.create () in
    let guard = Option.map (fun _ -> S.new_act ssolver) solver in
    let session_assumptions = match guard with None -> [] | Some g -> [ g ] in
    (* Induction step instance: two unrolled frames with a free starting
       state. Assuming the candidate equalities on frame 0 and proving a
       pair equal on frame 1 discharges the induction step for every
       (state, input) pair at once; registers read their frame-1 value
       from their frame-0 next-state cone, so combinational nodes and
       registers are handled uniformly. *)
    let sblaster = Blast.create ~free_init:true ?guard ssolver circuit in
    Blast.unroll_cycle sblaster;
    Blast.unroll_cycle sblaster;
    (* Base-case instance: one frame from the genuine reset state, inputs
       free. Register pairs in a class share a reset value, so their
       frame-0 literals coincide and the base case is free for them. *)
    let bsolver = ssolver in
    let bblaster = Blast.create ?guard bsolver circuit in
    Blast.unroll_cycle bblaster;
    (* A literal whose assumption forces [a <> b] at [cycle]; [None] when
       the two nodes already blast to identical literals. *)
    let diff blaster ~cycle a b =
      let la = Blast.lits blaster ~cycle a and lb = Blast.lits blaster ~cycle b in
      let xs = ref [] in
      Array.iteri
        (fun i ai ->
          let x = Blast.xor_lit blaster ai lb.(i) in
          if x <> Blast.lit_false blaster then xs := x :: !xs)
        la;
      match !xs with
      | [] -> None
      | xs ->
          let d = Blast.fresh_var blaster in
          S.add_clause (Blast.solver blaster) (S.neg d :: xs);
          Some d
    in
    let timed_solve ~assumptions s =
      let t = Unix.gettimeofday () in
      let r = S.solve ~assumptions s in
      solve_acc := !solve_acc +. (Unix.gettimeofday () -. t);
      r
    in
    let budget_left () =
      sc.sw_queries < max_queries
      &&
      let elapsed = Unix.gettimeofday () -. t_start in
      elapsed <= sweep_bail_floor_s
      || elapsed -. !solve_acc <= sweep_bail_overhead_ratio *. !solve_acc
    in
    let aborted = ref false in
    (* Refinement is counterexample-guided: a refuting model satisfies
       the frame-0 equalities of {e every} class, so its frame-1 values
       re-partition all classes at once. Structures full of same-shape
       but inequivalent nodes (cache lines) collapse to singletons in a
       couple of models instead of one SAT query per member per round. *)
    let model_key s = Blast.node_value sblaster ~cycle:1 s in
    let split_by_model classes = List.concat_map (group_by model_key) classes in
    let rec refine classes round =
      if classes = [] then []
      else if round > 64 || not (budget_left ()) then begin
        aborted := true;
        []
      end
      else begin
        let act = Blast.fresh_var sblaster in
        List.iter
          (fun cls ->
            match cls with
            | rep :: members ->
                let la = Blast.lits sblaster ~cycle:0 rep in
                List.iter
                  (fun m ->
                    let lb = Blast.lits sblaster ~cycle:0 m in
                    Array.iteri
                      (fun i ai ->
                        S.add_clause ssolver [ S.neg act; S.neg ai; lb.(i) ];
                        S.add_clause ssolver [ S.neg act; ai; S.neg lb.(i) ])
                      la)
                  members
            | [] -> ())
          classes;
        (* Walk every pair until one is refuted; [Some _] re-splits the
           whole round's classes by the refuting model. *)
        let rec walk = function
          | [] -> None
          | (rep :: members) :: rest ->
              let rec go = function
                | [] -> walk rest
                | m :: ms -> (
                    if not (budget_left ()) then begin
                      aborted := true;
                      None
                    end
                    else
                      match diff sblaster ~cycle:1 rep m with
                      | None -> go ms
                      | Some d ->
                          sc.sw_queries <- sc.sw_queries + 1;
                          let r =
                            timed_solve
                              ~assumptions:(act :: d :: session_assumptions)
                              ssolver
                          in
                          let resplit =
                            match r with
                            | S.Sat -> Some (split_by_model classes)
                            | S.Unsat -> None
                          in
                          S.add_clause ssolver [ S.neg d ];
                          if r = S.Unsat then go ms else resplit)
              in
              go members
          | [] :: rest -> walk rest
        in
        let resplit = walk classes in
        S.add_clause ssolver [ S.neg act ];
        match resplit with
        | Some classes' -> refine classes' (round + 1)
        | None -> if !aborted then [] else classes
      end
    in
    (* The induction fixpoint must also hold at reset for every input; a
       member failing the base case weakens the induction hypothesis the
       others used, so refinement reruns without it. *)
    let rec establish classes =
      match refine classes 1 with
      | [] -> []
      | classes -> (
          let dropped = ref false in
          let classes' =
            List.filter_map
              (fun cls ->
                match cls with
                | rep :: members -> (
                    let keep =
                      List.filter
                        (fun m ->
                          if !aborted then false
                          else
                            match diff bblaster ~cycle:0 rep m with
                            | None -> true
                            | Some d ->
                                if not (budget_left ()) then begin
                                  aborted := true;
                                  false
                                end
                                else begin
                                  sc.sw_queries <- sc.sw_queries + 1;
                                  let r =
                                    timed_solve
                                      ~assumptions:(d :: session_assumptions)
                                      bsolver
                                  in
                                  S.add_clause bsolver [ S.neg d ];
                                  if r <> S.Unsat then dropped := true;
                                  r = S.Unsat
                                end)
                        members
                    in
                    match keep with [] -> None | _ -> Some (rep :: keep))
                | [] -> None)
              classes
          in
          if !aborted then []
          else if !dropped then establish classes'
          else classes')
    in
    List.iter
      (fun cls ->
        match cls with
        | rep :: members ->
            List.iter
              (fun m ->
                Hashtbl.replace merges (Signal.uid m) rep;
                match Signal.op m with
                | Signal.Reg _ -> sc.sw_regs <- sc.sw_regs + 1
                | _ -> sc.sw_merged <- sc.sw_merged + 1)
              members
        | [] -> ())
      (establish all_classes);
    sc.sw_refuted <- sc.sw_cand - sc.sw_merged - sc.sw_regs;
    (* Hand a borrowed solver back clean: one unit clause disables every
       guarded clause of the session, and [simplify] physically deletes
       them, leaving only dead variables behind. *)
    (match guard with
    | Some g ->
        S.retire ssolver g;
        S.simplify ssolver
    | None -> ());
    (merges, sc)
  end

(* {1 Driver} *)

(* Smallest post-structural cone worth sweeping.  Tuned on the bench
   DUTs: the AES and MAPLE cones land near 200-240 nodes and solve in
   single-digit milliseconds, so the sweep's fixed setup time dominates;
   the Vscale and CVA6 cones (260+) recoup it comfortably. *)
let sweep_min_nodes = 250

let run_optimize ~level ?keep_outputs ?sweep_solver
    ?(sweep_min = sweep_min_nodes) circuit =
  let t0 = Unix.gettimeofday () in
  let nodes_before = Circuit.num_nodes circuit in
  match level with
  | O0 ->
      {
        opt_circuit = circuit;
        opt_map = (fun s -> s);
        opt_stats =
          {
            empty_stats with
            o_nodes_before = nodes_before;
            o_nodes_after = nodes_before;
          };
      }
  | O1 | O2 ->
      (* Fault-injection probe for the robustness tests: an armed
         [opt.pass] site makes the pipeline raise here, which the BMC
         engines downgrade to an Unknown verdict instead of crashing. *)
      Fault.point "opt.pass";
      let all_ports = Circuit.outputs circuit in
      let kept =
        match keep_outputs with
        | None -> all_ports
        | Some names -> (
            match
              List.filter
                (fun p -> List.mem p.Circuit.port_name names)
                all_ports
            with
            | [] -> all_ports
            | l -> l)
      in
      let roots =
        List.map (fun p -> (p.Circuit.port_name, p.Circuit.signal)) kept
      in
      let cnt = { cse = 0; rw = 0 } in
      let roots1, memo1 =
        Obs.span "opt.strash" ~attrs:[ ("pass", Obs.Json.Int 1) ] @@ fun () ->
        rebuild ~cnt ~resolve:(fun s -> s) roots
      in
      let visited = Hashtbl.length memo1 in
      let mid =
        Circuit.create ~name:(Circuit.name circuit) ~outputs:roots1 ()
      in
      let final, map2, sc =
        (* The sweep's fixed cost — signature simulation plus a two-frame
           induction instance — is only recouped when blasting and
           solving dominate the run. Below a few hundred kept nodes the
           structural passes have already saturated the gain, so [O2]
           degenerates gracefully to the [O1] result (skipping a sound
           reduction is itself sound). *)
        if level = O1 || Circuit.num_nodes mid < sweep_min then
          (mid, None, None)
        else
          let merges, sc =
            Obs.span "opt.sweep" (fun () -> sweep ?solver:sweep_solver mid)
          in
          if Hashtbl.length merges = 0 then (mid, None, Some sc)
          else begin
            let rec resolve s =
              match Hashtbl.find_opt merges (Signal.uid s) with
              | Some s' when Signal.uid s' <> Signal.uid s -> resolve s'
              | _ -> s
            in
            let roots2, memo2 =
              Obs.span "opt.strash" ~attrs:[ ("pass", Obs.Json.Int 2) ]
              @@ fun () -> rebuild ~cnt ~resolve roots1
            in
            let final =
              Circuit.create ~name:(Circuit.name circuit) ~outputs:roots2 ()
            in
            (final, Some memo2, Some sc)
          end
      in
      let opt_map s =
        let m1 = Hashtbl.find memo1 (Signal.uid s) in
        match map2 with
        | None -> m1
        | Some memo2 -> Hashtbl.find memo2 (Signal.uid m1)
      in
      let sw =
        Option.value
          ~default:
            {
              sw_cand = 0;
              sw_merged = 0;
              sw_refuted = 0;
              sw_regs = 0;
              sw_queries = 0;
            }
          sc
      in
      {
        opt_circuit = final;
        opt_map;
        opt_stats =
          {
            o_nodes_before = nodes_before;
            o_nodes_after = Circuit.num_nodes final;
            o_coi_dropped = nodes_before - visited;
            o_cse_merged = cnt.cse;
            o_rewrites = cnt.rw;
            o_sweep_candidates = sw.sw_cand;
            o_sweep_merged = sw.sw_merged;
            o_sweep_refuted = sw.sw_refuted;
            o_regs_merged = sw.sw_regs;
            o_sat_queries = sw.sw_queries;
            o_time = Unix.gettimeofday () -. t0;
          };
      }

let m_opt_nodes_removed = lazy (Obs.Metrics.counter "opt.nodes_removed")
let m_opt_cse = lazy (Obs.Metrics.counter "opt.cse_merged")
let m_opt_rewrites = lazy (Obs.Metrics.counter "opt.rewrites")
let m_opt_sweep_merged = lazy (Obs.Metrics.counter "opt.sweep_merged")
let m_opt_sat_queries = lazy (Obs.Metrics.counter "opt.sat_queries")
let m_opt_time = lazy (Obs.Metrics.series "opt.pass_seconds")

let level_name = function O0 -> "O0" | O1 -> "O1" | O2 -> "O2"

let optimize ?(level = O2) ?keep_outputs ?sweep_solver ?sweep_min circuit =
  Obs.span "opt.optimize"
    ~attrs:
      [
        ("level", Obs.Json.Str (level_name level));
        ("nodes", Obs.Json.Int (Circuit.num_nodes circuit));
      ]
  @@ fun () ->
  let res = run_optimize ~level ?keep_outputs ?sweep_solver ?sweep_min circuit in
  let st = res.opt_stats in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.add (Lazy.force m_opt_nodes_removed)
      (st.o_nodes_before - st.o_nodes_after);
    Obs.Metrics.add (Lazy.force m_opt_cse) st.o_cse_merged;
    Obs.Metrics.add (Lazy.force m_opt_rewrites) st.o_rewrites;
    Obs.Metrics.add (Lazy.force m_opt_sweep_merged) st.o_sweep_merged;
    Obs.Metrics.add (Lazy.force m_opt_sat_queries) st.o_sat_queries;
    Obs.Metrics.record (Lazy.force m_opt_time) st.o_time
  end;
  res

(** Crash-isolated verification service.

    [autocc serve] turns the one-shot CLI into a supervised system: a
    long-running daemon accepts DUT/property submissions over a
    newline-delimited-JSON wire protocol on a Unix domain socket, keeps
    a persistent job queue on disk, and dispatches each job to a
    {e worker process} (fork/exec of [autocc worker], one job per
    lease). Process isolation is the robustness boundary the OCaml 5
    domain boundary cannot give: a segfaulting, OOM-killed or hung SAT
    job takes down one worker, and the supervisor redelivers the job
    instead of losing the campaign.

    The supervisor owns the robustness contract:

    - {b Leases.} A dispatched job is leased to one worker pid. The
      worker renews the lease by atomically rewriting a per-job
      heartbeat file at every solved depth; a lease whose beat goes
      stale past the configured horizon is expired and the worker
      SIGKILLed (it may be hung in the solver with signals blocked by
      no one — SIGKILL is the only honest option).
    - {b Crash detection.} [waitpid] reaping plus lease expiry. A
      worker that exits without depositing a well-formed result file —
      whatever the exit status — crashed.
    - {b Redelivery.} A crashed job goes back to pending after the
      capped exponential backoff of the {!Retry} schedule
      ([backoff_s ~attempt:crashes]), and the respawned worker is told
      its attempt number so it can rotate the fault-injection seed
      ({!Fault.reseed}) — a deterministically replayed crash would
      otherwise quarantine every faulted job.
    - {b Quarantine.} After [max_crashes] crashes a job is parked as
      poison with the terminal verdict ["unknown:worker_crashed"].
      Quarantine only ever applies to jobs with {e no} conclusive
      verdict, so — per the budget-governance invariant — a crash can
      never flip a Sat/Unsat.
    - {b Drain.} SIGTERM/SIGINT stop intake (submissions are refused
      with ["draining"]), let leased jobs finish, persist the queue
      byte-stably and exit 0; a restarted daemon reloads the queue and
      re-solves only what never completed — against a warm verdict
      cache that is mostly cache hits.
    - {b Load shedding.} Submissions past the queue-depth watermark are
      refused with ["overloaded"] instead of growing the queue without
      bound.

    Workers share the verdict cache ([AUTOCC_CACHE_DIR]) and append to
    the service directory's run ledger and event stream; [autocc top],
    the Prometheus exposition and the bench diff gate all attach to the
    service directory unchanged. *)

(** The supervisor state machine, kept pure — every daemon decision is
    [step state event -> state * actions], so the whole
    submit → lease → heartbeat → crash → redeliver → quarantine → drain
    lifecycle is testable as a fold over events with no processes, no
    clock and no filesystem. *)
module Machine : sig
  type spec = {
    sp_dut : string;  (** a {!Duts.Bundled.known} name *)
    sp_engine : string;  (** ["check"] (BMC) or ["prove"] (k-induction) *)
    sp_depth : int;
    sp_threshold : int;
  }

  (** What a worker deposits for a completed job. *)
  type result = {
    w_verdict : string;  (** ["cex"], ["proof"], ["proved"], ["refuted"]
                             or ["unknown:<reason>"] *)
    w_depth : int;
    w_wall_ms : int;
    w_cache_hits : int;
  }

  type jstate =
    | Pending of { not_before : float }
        (** queued; [not_before] is the redelivery backoff gate *)
    | Leased of {
        pid : int;  (** worker pid; [0] while the spawn is in flight *)
        attempt : int;  (** = crashes when leased; forwarded to the worker *)
        leased_at : float;
        last_beat : float;
      }
    | Done of result
    | Quarantined of { q_crashes : int }  (** poison; terminal *)

  type job = {
    j_id : string;
    j_spec : spec;
    j_crashes : int;
    j_state : jstate;
  }

  type config = {
    c_workers : int;  (** pool size; [0] = accept but never dispatch *)
    c_lease_s : float;  (** beat staleness horizon before expiry *)
    c_max_crashes : int;  (** crashes before quarantine *)
    c_shed : int;  (** live-job watermark past which submits are shed *)
    c_retry : Retry.policy;  (** redelivery backoff schedule *)
  }

  val default_config : config
  (** 2 workers, 10s lease, quarantine after 3 crashes, shed at 64. *)

  type t = {
    m_cfg : config;
    m_jobs : job list;  (** submit order *)
    m_next : int;  (** next job id suffix *)
    m_draining : bool;
  }

  (** Everything that can happen to the supervisor. [Tick] drives all
      time-based behavior (expiry, backoff gates, spawning, drain
      completion), so tests control the clock completely. *)
  type event =
    | Submit of spec
    | Spawned of { id : string; pid : int; now : float }
        (** the daemon forked a worker for a [Start] action *)
    | Beat of { id : string; now : float }
        (** lease renewal observed from the worker's heartbeat file *)
    | Exited of { id : string; pid : int; result : result option; now : float }
        (** worker reaped; [result] is its deposited result file, if a
            well-formed one exists — [None] means the attempt crashed *)
    | Tick of { now : float }
    | Drain

  (** Effects the daemon must perform; the machine never performs them
      itself. *)
  type action =
    | Accept of { id : string }  (** reply to the submitter *)
    | Reject of { reason : string }  (** ... negatively *)
    | Start of { id : string; spec : spec; attempt : int }
        (** fork/exec a worker; answer with [Spawned] *)
    | Kill of { id : string; pid : int }  (** SIGKILL an expired/duplicate worker *)
    | Redeliver of { id : string; attempt : int; backoff_s : float }
    | Quarantine of { id : string; crashes : int }
    | Complete of { id : string; verdict : string }
    | Persist  (** the durable queue state changed *)
    | Exit  (** drain finished; shut down *)

  val create : config -> t
  val step : t -> event -> t * action list

  val find : t -> string -> job option

  val live : t -> int
  (** pending + leased *)

  val leased : t -> int

  val crashed_verdict : string
  (** ["unknown:worker_crashed"] — the quarantine verdict. *)

  val verdict_of : job -> string option
  (** Terminal verdict: [Done]'s, {!crashed_verdict} for quarantined,
      [None] while live. *)

  val state_name : job -> string
  (** ["pending" | "leased" | "done" | "quarantined"]. *)
end

(** Durable queue state: [<dir>/queue.json], schema [autocc.serve/1],
    atomically rewritten (tmp + rename). The rendering is byte-stable —
    fixed field order, integers and strings only, leases persisted as
    pending (a lease never survives the daemon) — so save∘load is the
    identity on bytes and a drain/restart cycle can be [cmp]ed. *)
module Store : sig
  val path : string -> string
  (** [dir ^ "/queue.json"]. *)

  val render : Machine.t -> string
  (** The exact bytes {!save} writes (including trailing newline). *)

  val save : dir:string -> Machine.t -> unit

  val load : dir:string -> Machine.config -> (Machine.t option, string) result
  (** [Ok None] when no queue file exists; [Error] on a malformed one
      (refuse to run rather than silently drop jobs). *)
end

(** The [autocc.serve/1] wire protocol: one JSON request line in, one
    JSON response line out, connection per request ([wait] holds its
    connection open until the job is terminal). *)
module Proto : sig
  val schema : string

  type request =
    | Submit of Machine.spec
    | Status
    | Wait of string  (** block until the named job is terminal *)
    | Drain  (** same effect as SIGTERM *)
    | Ping

  val json_of_request : request -> Obs.Json.t
  val request_of_json : Obs.Json.t -> (request, string) result

  val ok : (string * Obs.Json.t) list -> Obs.Json.t
  (** [{"schema":…,"ok":true, fields…}]. *)

  val error : string -> Obs.Json.t
  (** [{"schema":…,"ok":false,"error":msg}]. *)

  val json_of_job : Machine.job -> Obs.Json.t
  (** The status row for one job (live state, unlike {!Store}'s durable
      form). *)
end

(** Client side of the wire protocol, shared by [autocc submit],
    [autocc status] and the smoke validator. *)
module Client : sig
  val socket_path : string -> string
  (** [dir ^ "/serve.sock"]. *)

  val request :
    dir:string -> ?timeout_s:float -> Obs.Json.t -> (Obs.Json.t, string) result
  (** One round trip; [Error] on connection failure, timeout (default
      30s), EOF or a malformed/negative response. *)

  val submit : dir:string -> Machine.spec -> (string, string) result
  (** Returns the accepted job id. *)

  val wait :
    dir:string -> ?timeout_s:float -> string -> (Obs.Json.t, string) result
  (** Block (default up to 600s) until the job is terminal; returns its
      status row. *)

  val status : dir:string -> (Obs.Json.t, string) result
  val ping : dir:string -> bool
end

(** One leased job, executed inside a disposable process. *)
module Worker : sig
  val run : dir:string -> job_id:string -> attempt:int -> int
  (** Read the job spec ([jobs/<id>.json]), build the DUT and property
      set via {!Duts.Bundled}, solve with the verdict cache from
      [AUTOCC_CACHE_DIR] (if set), renew the heartbeat lease
      ([hb/<id>.json]) at every solved depth, deposit the result
      atomically ([results/<id>.json]), append a ledger row and publish
      [Job_start]/[Job_done] to the service's event stream. Returns the
      process exit code (0 on any deposited verdict, including
      [unknown:*]).

      [attempt] > 0 rotates the fault-injection seed by the attempt
      number, so an injected crash does not replay deterministically on
      redelivery. Probes the ["serve.worker"] (self-SIGKILL) and
      ["serve.lease"] (renewal dropped) fault sites at every depth. *)
end

(** The supervisor loop: owns the socket, the worker pool and the
    queue; drives {!Machine} and performs its actions. *)
module Daemon : sig
  type config = {
    d_dir : string;  (** service directory (created if missing) *)
    d_workers : int;
    d_lease_s : float;
    d_max_crashes : int;
    d_shed : int;
    d_retry : Retry.policy;
    d_exe : string;  (** binary to fork/exec as [<exe> worker …] *)
    d_cache_dir : string option;  (** exported to workers as [AUTOCC_CACHE_DIR] *)
    d_metrics_file : string option;  (** Prometheus snapshot ticker *)
    d_quiet : bool;
  }

  val default : dir:string -> exe:string -> config

  val run : config -> int
  (** Serve until drained (SIGTERM/SIGINT or a [drain] request): bind
      [<dir>/serve.sock], reload any persisted queue (leases revert to
      pending; a pending job whose result file already exists is
      absorbed without re-solving), then loop: accept, dispatch, reap,
      observe heartbeats, tick. Maintains [<dir>/heartbeats.json] in
      the [autocc.heartbeat/1] schema so [autocc top] renders service
      jobs exactly like campaign entries. Refuses to start (exit 1)
      when a live daemon already owns the directory. Exit 0 on a clean
      drain. *)
end

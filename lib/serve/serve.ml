(* Crash-isolated verification service — see serve.mli. The layering
   keeps every policy decision in the pure [Machine] and every effect
   (sockets, fork/exec, signals, files) in [Daemon]/[Worker], so the
   supervisor lifecycle is tested as a fold and the daemon loop stays a
   thin interpreter of [Machine.action]s. *)

module Json = Obs.Json

let ( // ) = Filename.concat

(* Shared JSON field accessors; the wire and the stores tolerate Int
   where Float is expected (and vice versa for whole floats). *)
let jstr j name =
  match Json.member name j with Some (Json.Str s) -> Some s | _ -> None

let jint j name =
  match Json.member name j with Some (Json.Int i) -> Some i | _ -> None

let jnum j name =
  match Json.member name j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let atomic_write_json path j =
  let tmp = path ^ ".tmp" in
  Json.write_file ~path:tmp j;
  Sys.rename tmp path

module Machine = struct
  type spec = {
    sp_dut : string;
    sp_engine : string;
    sp_depth : int;
    sp_threshold : int;
  }

  type result = {
    w_verdict : string;
    w_depth : int;
    w_wall_ms : int;
    w_cache_hits : int;
  }

  type jstate =
    | Pending of { not_before : float }
    | Leased of { pid : int; attempt : int; leased_at : float; last_beat : float }
    | Done of result
    | Quarantined of { q_crashes : int }

  type job = { j_id : string; j_spec : spec; j_crashes : int; j_state : jstate }

  type config = {
    c_workers : int;
    c_lease_s : float;
    c_max_crashes : int;
    c_shed : int;
    c_retry : Retry.policy;
  }

  let default_config =
    {
      c_workers = 2;
      c_lease_s = 10.;
      c_max_crashes = 3;
      c_shed = 64;
      c_retry = Retry.default;
    }

  type t = {
    m_cfg : config;
    m_jobs : job list;
    m_next : int;
    m_draining : bool;
  }

  type event =
    | Submit of spec
    | Spawned of { id : string; pid : int; now : float }
    | Beat of { id : string; now : float }
    | Exited of { id : string; pid : int; result : result option; now : float }
    | Tick of { now : float }
    | Drain

  type action =
    | Accept of { id : string }
    | Reject of { reason : string }
    | Start of { id : string; spec : spec; attempt : int }
    | Kill of { id : string; pid : int }
    | Redeliver of { id : string; attempt : int; backoff_s : float }
    | Quarantine of { id : string; crashes : int }
    | Complete of { id : string; verdict : string }
    | Persist
    | Exit

  let create cfg = { m_cfg = cfg; m_jobs = []; m_next = 1; m_draining = false }
  let find t id = List.find_opt (fun j -> j.j_id = id) t.m_jobs

  let is_live j =
    match j.j_state with Pending _ | Leased _ -> true | _ -> false

  let live t = List.length (List.filter is_live t.m_jobs)

  let leased t =
    List.length
      (List.filter
         (fun j -> match j.j_state with Leased _ -> true | _ -> false)
         t.m_jobs)

  let crashed_verdict = "unknown:worker_crashed"

  let verdict_of j =
    match j.j_state with
    | Done r -> Some r.w_verdict
    | Quarantined _ -> Some crashed_verdict
    | Pending _ | Leased _ -> None

  let state_name j =
    match j.j_state with
    | Pending _ -> "pending"
    | Leased _ -> "leased"
    | Done _ -> "done"
    | Quarantined _ -> "quarantined"

  let update t id f =
    { t with m_jobs = List.map (fun j -> if j.j_id = id then f j else j) t.m_jobs }

  (* One attempt died. Quarantine is reachable only from here — only
     jobs without a conclusive verdict pass through — which is what
     makes "a crash can never flip Sat/Unsat" structural rather than
     policed. *)
  let crashed t j ~now =
    let crashes = j.j_crashes + 1 in
    if crashes >= t.m_cfg.c_max_crashes then
      ( update t j.j_id (fun j ->
            { j with j_crashes = crashes; j_state = Quarantined { q_crashes = crashes } }),
        [ Quarantine { id = j.j_id; crashes }; Persist ] )
    else
      let backoff_s = Retry.backoff_s t.m_cfg.c_retry ~attempt:crashes in
      ( update t j.j_id (fun j ->
            { j with j_crashes = crashes; j_state = Pending { not_before = now +. backoff_s } }),
        [ Redeliver { id = j.j_id; attempt = crashes; backoff_s }; Persist ] )

  let complete t id (r : result) extra =
    ( update t id (fun j -> { j with j_state = Done r }),
      extra @ [ Complete { id; verdict = r.w_verdict }; Persist ] )

  let step t ev =
    match ev with
    | Submit spec ->
        if t.m_draining then (t, [ Reject { reason = "draining" } ])
        else if live t >= t.m_cfg.c_shed then
          (t, [ Reject { reason = "overloaded" } ])
        else
          let id = "j" ^ string_of_int t.m_next in
          let job =
            { j_id = id; j_spec = spec; j_crashes = 0; j_state = Pending { not_before = 0. } }
          in
          ( { t with m_jobs = t.m_jobs @ [ job ]; m_next = t.m_next + 1 },
            [ Accept { id }; Persist ] )
    | Spawned { id; pid; now } -> (
        match find t id with
        | Some { j_state = Leased l; _ } when l.pid = 0 ->
            ( update t id (fun j ->
                  { j with j_state = Leased { l with pid; leased_at = now; last_beat = now } }),
              [] )
        | _ -> (t, []))
    | Beat { id; now } -> (
        match find t id with
        | Some { j_state = Leased l; _ } when now > l.last_beat ->
            ( update t id (fun j ->
                  { j with j_state = Leased { l with last_beat = now } }),
              [] )
        | _ -> (t, []))
    | Exited { id; pid; result; now } -> (
        match find t id with
        | None -> (t, [])
        | Some j -> (
            match (j.j_state, result) with
            (* Terminal states are immutable: whatever a late worker
               reports, a recorded verdict never changes. *)
            | (Done _ | Quarantined _), _ -> (t, [])
            | Leased l, Some r when l.pid = pid || l.pid = 0 ->
                complete t id r []
            | Leased l, None when l.pid = pid || l.pid = 0 -> crashed t j ~now
            | Leased l, Some r ->
                (* A previously expired attempt finished after all: the
                   verdict is deterministic, so take it and stop the
                   replacement — completing twice is the bug, not
                   completing from a stale pid. *)
                complete t id r [ Kill { id; pid = l.pid } ]
            | Leased _, None -> (t, [])
            | Pending _, Some r -> complete t id r []
            | Pending _, None -> (t, [])))
    | Drain -> ({ t with m_draining = true }, [])
    | Tick { now } ->
        (* Expire leases whose beat went stale. *)
        let t, acts =
          List.fold_left
            (fun (t, acts) j0 ->
              match find t j0.j_id with
              | Some ({ j_state = Leased l; _ } as j)
                when now -. l.last_beat > t.m_cfg.c_lease_s ->
                  let kill =
                    if l.pid > 0 then [ Kill { id = j.j_id; pid = l.pid } ] else []
                  in
                  let t, acts' = crashed t j ~now in
                  (t, acts @ kill @ acts')
              | _ -> (t, acts))
            (t, []) t.m_jobs
        in
        if t.m_draining then
          if leased t = 0 then (t, acts @ [ Exit ]) else (t, acts)
        else
          (* Fill the pool from the pending queue in submit order,
             skipping jobs still inside their redelivery backoff. *)
          let slots = ref (t.m_cfg.c_workers - leased t) in
          let t, starts =
            List.fold_left
              (fun (t, starts) j ->
                match j.j_state with
                | Pending { not_before } when !slots > 0 && not_before <= now ->
                    decr slots;
                    ( update t j.j_id (fun j ->
                          {
                            j with
                            j_state =
                              Leased
                                {
                                  pid = 0;
                                  attempt = j.j_crashes;
                                  leased_at = now;
                                  last_beat = now;
                                };
                          }),
                      Start { id = j.j_id; spec = j.j_spec; attempt = j.j_crashes }
                      :: starts )
                | _ -> (t, starts))
              (t, []) t.m_jobs
          in
          (t, acts @ List.rev starts)
end

module Store = struct
  let schema = "autocc.serve/1"
  let path dir = dir // "queue.json"

  (* The durable form of a job: fixed field order, ints and strings
     only, no timestamps, leases flattened to pending — every bit of
     volatile state is excluded so the rendering is byte-stable across
     save/load and across a drain/restart cycle. *)
  let json_of_job (j : Machine.job) =
    let state =
      match j.j_state with
      | Machine.Pending _ | Machine.Leased _ -> "pending"
      | Machine.Done _ -> "done"
      | Machine.Quarantined _ -> "quarantined"
    in
    let verdict, depth, wall_ms, cache_hits =
      match j.j_state with
      | Machine.Done r -> (r.w_verdict, r.w_depth, r.w_wall_ms, r.w_cache_hits)
      | Machine.Quarantined _ -> (Machine.crashed_verdict, -1, 0, 0)
      | _ -> ("", -1, 0, 0)
    in
    Json.Obj
      [
        ("id", Json.Str j.j_id);
        ("dut", Json.Str j.j_spec.sp_dut);
        ("engine", Json.Str j.j_spec.sp_engine);
        ("max_depth", Json.Int j.j_spec.sp_depth);
        ("threshold", Json.Int j.j_spec.sp_threshold);
        ("crashes", Json.Int j.j_crashes);
        ("state", Json.Str state);
        ("verdict", Json.Str verdict);
        ("depth", Json.Int depth);
        ("wall_ms", Json.Int wall_ms);
        ("cache_hits", Json.Int cache_hits);
      ]

  let render (t : Machine.t) =
    Json.to_string
      (Json.Obj
         [
           ("schema", Json.Str schema);
           ("next", Json.Int t.m_next);
           ("jobs", Json.List (List.map json_of_job t.m_jobs));
         ])
    ^ "\n"

  let save ~dir t =
    let p = path dir in
    let tmp = p ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc (render t);
    close_out oc;
    Sys.rename tmp p

  let job_of_json j =
    let ( let* ) = Result.bind in
    let req f name = Option.to_result ~none:("queue.json: missing " ^ name) (f j name) in
    let* id = req jstr "id" in
    let* dut = req jstr "dut" in
    let* engine = req jstr "engine" in
    let* depth = req jint "max_depth" in
    let* threshold = req jint "threshold" in
    let* crashes = req jint "crashes" in
    let* state = req jstr "state" in
    let spec =
      { Machine.sp_dut = dut; sp_engine = engine; sp_depth = depth; sp_threshold = threshold }
    in
    let* j_state =
      match state with
      | "pending" -> Ok (Machine.Pending { not_before = 0. })
      | "quarantined" -> Ok (Machine.Quarantined { q_crashes = crashes })
      | "done" ->
          let* verdict = req jstr "verdict" in
          let* w_depth = req jint "depth" in
          let* wall_ms = req jint "wall_ms" in
          let* cache_hits = req jint "cache_hits" in
          Ok
            (Machine.Done
               { w_verdict = verdict; w_depth; w_wall_ms = wall_ms; w_cache_hits = cache_hits })
      | other -> Error ("queue.json: unknown job state " ^ other)
    in
    Ok { Machine.j_id = id; j_spec = spec; j_crashes = crashes; j_state }

  let load ~dir cfg =
    let p = path dir in
    if not (Sys.file_exists p) then Ok None
    else
      let ic = open_in_bin p in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      match Json.parse s with
      | Error msg -> Error ("queue.json: " ^ msg)
      | Ok j when jstr j "schema" <> Some schema ->
          Error "queue.json: unrecognized schema"
      | Ok j -> (
          let ( let* ) = Result.bind in
          let* next = Option.to_result ~none:"queue.json: missing next" (jint j "next") in
          let* jobs =
            match Json.member "jobs" j with
            | Some (Json.List l) ->
                List.fold_left
                  (fun acc e ->
                    let* acc = acc in
                    let* job = job_of_json e in
                    Ok (job :: acc))
                  (Ok []) l
                |> Result.map List.rev
            | _ -> Error "queue.json: missing jobs"
          in
          Ok
            (Some
               { Machine.m_cfg = cfg; m_jobs = jobs; m_next = next; m_draining = false }))
end

module Proto = struct
  let schema = "autocc.serve/1"

  type request =
    | Submit of Machine.spec
    | Status
    | Wait of string
    | Drain
    | Ping

  let json_of_request = function
    | Submit s ->
        Json.Obj
          [
            ("schema", Json.Str schema);
            ("op", Json.Str "submit");
            ("dut", Json.Str s.Machine.sp_dut);
            ("engine", Json.Str s.sp_engine);
            ("max_depth", Json.Int s.sp_depth);
            ("threshold", Json.Int s.sp_threshold);
          ]
    | Status -> Json.Obj [ ("schema", Json.Str schema); ("op", Json.Str "status") ]
    | Wait id ->
        Json.Obj
          [ ("schema", Json.Str schema); ("op", Json.Str "wait"); ("job", Json.Str id) ]
    | Drain -> Json.Obj [ ("schema", Json.Str schema); ("op", Json.Str "drain") ]
    | Ping -> Json.Obj [ ("schema", Json.Str schema); ("op", Json.Str "ping") ]

  let request_of_json j =
    if jstr j "schema" <> Some schema then
      Error ("expected schema " ^ schema)
    else
      match jstr j "op" with
      | Some "submit" -> (
          match (jstr j "dut", jint j "max_depth") with
          | Some dut, Some depth ->
              Ok
                (Submit
                   {
                     Machine.sp_dut = dut;
                     sp_engine = Option.value ~default:"check" (jstr j "engine");
                     sp_depth = depth;
                     sp_threshold = Option.value ~default:2 (jint j "threshold");
                   })
          | _ -> Error "submit: dut and max_depth are required")
      | Some "status" -> Ok Status
      | Some "wait" -> (
          match jstr j "job" with
          | Some id -> Ok (Wait id)
          | None -> Error "wait: job is required")
      | Some "drain" -> Ok Drain
      | Some "ping" -> Ok Ping
      | Some other -> Error ("unknown op " ^ other)
      | None -> Error "missing op"

  let ok fields =
    Json.Obj (("schema", Json.Str schema) :: ("ok", Json.Bool true) :: fields)

  let error msg =
    Json.Obj
      [ ("schema", Json.Str schema); ("ok", Json.Bool false); ("error", Json.Str msg) ]

  let json_of_job (j : Machine.job) =
    let verdict, depth, wall_ms =
      match j.j_state with
      | Machine.Done r -> (r.w_verdict, r.w_depth, r.w_wall_ms)
      | Machine.Quarantined _ -> (Machine.crashed_verdict, -1, 0)
      | _ -> ("", -1, 0)
    in
    Json.Obj
      [
        ("id", Json.Str j.j_id);
        ("dut", Json.Str j.j_spec.sp_dut);
        ("engine", Json.Str j.j_spec.sp_engine);
        ("max_depth", Json.Int j.j_spec.sp_depth);
        ("threshold", Json.Int j.j_spec.sp_threshold);
        ("state", Json.Str (Machine.state_name j));
        ("crashes", Json.Int j.j_crashes);
        ("verdict", Json.Str verdict);
        ("depth", Json.Int depth);
        ("wall_ms", Json.Int wall_ms);
      ]
end

module Client = struct
  let socket_path dir = dir // "serve.sock"

  let write_all fd s =
    let b = Bytes.of_string s in
    let rec go pos len =
      if len > 0 then begin
        let n = Unix.write fd b pos len in
        go (pos + n) (len - n)
      end
    in
    go 0 (Bytes.length b)

  (* One response line, with a deadline: the server answers every
     request with exactly one line, so reading to '\n' (or EOF) is the
     whole framing. *)
  let read_line_fd fd ~deadline =
    let buf = Buffer.create 256 in
    let chunk = Bytes.create 4096 in
    let rec go () =
      if Buffer.length buf > 1_000_000 then Error "response too large"
      else
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0. then Error "timeout"
        else
          match Unix.select [ fd ] [] [] remaining with
          | [], _, _ -> Error "timeout"
          | _ -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                  if Buffer.length buf > 0 then Ok (Buffer.contents buf)
                  else Error "connection closed"
              | n -> (
                  match Bytes.index_opt (Bytes.sub chunk 0 n) '\n' with
                  | Some i ->
                      Buffer.add_subbytes buf chunk 0 i;
                      Ok (Buffer.contents buf)
                  | None ->
                      Buffer.add_subbytes buf chunk 0 n;
                      go ()))
    in
    go ()

  let request ~dir ?(timeout_s = 30.) j =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    match Unix.connect fd (Unix.ADDR_UNIX (socket_path dir)) with
    | exception Unix.Unix_error (e, _, _) ->
        Error ("cannot reach service at " ^ socket_path dir ^ ": " ^ Unix.error_message e)
    | () -> (
        let deadline = Unix.gettimeofday () +. timeout_s in
        match write_all fd (Json.to_string j ^ "\n") with
        | exception Unix.Unix_error (e, _, _) ->
            Error ("send failed: " ^ Unix.error_message e)
        | () -> (
            match read_line_fd fd ~deadline with
            | Error _ as e -> e
            | Ok line -> (
                match Json.parse line with
                | Error msg -> Error ("malformed response: " ^ msg)
                | Ok r -> (
                    match Json.member "ok" r with
                    | Some (Json.Bool true) -> Ok r
                    | Some (Json.Bool false) ->
                        Error
                          (Option.value ~default:"request refused" (jstr r "error"))
                    | _ -> Error "malformed response: missing ok"))))

  let submit ~dir spec =
    match request ~dir (Proto.json_of_request (Proto.Submit spec)) with
    | Error _ as e -> e
    | Ok r -> (
        match jstr r "job" with
        | Some id -> Ok id
        | None -> Error "malformed response: missing job")

  let wait ~dir ?(timeout_s = 600.) id =
    request ~dir ~timeout_s (Proto.json_of_request (Proto.Wait id))

  let status ~dir = request ~dir (Proto.json_of_request Proto.Status)

  let ping ~dir =
    match request ~dir ~timeout_s:2. (Proto.json_of_request Proto.Ping) with
    | Ok _ -> true
    | Error _ -> false
end

(* {1 Per-job files}

   jobs/<id>.json   the immutable spec, written at accept time
   hb/<id>.json     the worker's lease renewal, atomically rewritten
   results/<id>.json the deposited verdict, atomically written once

   All three are tmp+rename so the daemon never reads a torn file. *)

let job_schema = "autocc.serve.job/1"
let lease_schema = "autocc.serve.lease/1"
let result_schema = "autocc.serve.result/1"

let job_file dir id = dir // "jobs" // (id ^ ".json")
let lease_file dir id = dir // "hb" // (id ^ ".json")
let result_file dir id = dir // "results" // (id ^ ".json")

let write_job_spec dir id (s : Machine.spec) =
  atomic_write_json (job_file dir id)
    (Json.Obj
       [
         ("schema", Json.Str job_schema);
         ("id", Json.Str id);
         ("dut", Json.Str s.sp_dut);
         ("engine", Json.Str s.sp_engine);
         ("max_depth", Json.Int s.sp_depth);
         ("threshold", Json.Int s.sp_threshold);
       ])

let read_job_spec dir id =
  let p = job_file dir id in
  let ic = open_in_bin p in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.parse s with
  | Error msg -> failwith (p ^ ": " ^ msg)
  | Ok j -> (
      if jstr j "schema" <> Some job_schema then failwith (p ^ ": bad schema");
      match (jstr j "dut", jstr j "engine", jint j "max_depth", jint j "threshold") with
      | Some dut, Some engine, Some depth, Some threshold ->
          { Machine.sp_dut = dut; sp_engine = engine; sp_depth = depth; sp_threshold = threshold }
      | _ -> failwith (p ^ ": missing fields"))

let read_result dir id : Machine.result option =
  let p = result_file dir id in
  if not (Sys.file_exists p) then None
  else
    let ic = open_in_bin p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Json.parse s with
    | Error _ -> None
    | Ok j ->
        if jstr j "schema" <> Some result_schema || jstr j "id" <> Some id then None
        else
          (match (jstr j "verdict", jint j "depth", jint j "wall_ms", jint j "cache_hits") with
          | Some w_verdict, Some w_depth, Some w_wall_ms, Some w_cache_hits ->
              Some { Machine.w_verdict; w_depth; w_wall_ms; w_cache_hits }
          | _ -> None)

let read_lease dir id =
  let p = lease_file dir id in
  if not (Sys.file_exists p) then None
  else
    let ic = open_in_bin p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Json.parse s with
    | Error _ -> None
    | Ok j -> (
        if jstr j "schema" <> Some lease_schema then None
        else
          match (jint j "pid", jnum j "beat_s") with
          | Some pid, Some beat -> Some (pid, beat)
          | _ -> None)

module Worker = struct
  let renew_lease dir id attempt =
    (* The "serve.lease" site models a lost renewal (NFS hiccup, paging
       stall): the write is skipped, the solve continues, and the
       supervisor's expiry machinery must cope. *)
    if not (Fault.fire "serve.lease") then
      atomic_write_json (lease_file dir id)
        (Json.Obj
           [
             ("schema", Json.Str lease_schema);
             ("pid", Json.Int (Unix.getpid ()));
             ("attempt", Json.Int attempt);
             ("beat_s", Json.Float (Unix.gettimeofday ()));
           ])

  let crash_probe () =
    (* The "serve.worker" site is the real thing, not an exception the
       runtime could catch: SIGKILL to self, exactly like the OOM
       killer. *)
    if Fault.fire "serve.worker" then Unix.kill (Unix.getpid ()) Sys.sigkill

  let run ~dir ~job_id ~attempt =
    if attempt > 0 then Fault.reseed ~offset:attempt;
    let spec = read_job_spec dir job_id in
    Obs.Bus.attach ~file:(dir // "events.jsonl") ();
    Fun.protect ~finally:Obs.Bus.detach @@ fun () ->
    Obs.Bus.with_label (job_id ^ "/" ^ spec.sp_dut) @@ fun () ->
    Obs.Bus.publish (Obs.Bus.Job_start { goal_depth = spec.sp_depth });
    renew_lease dir job_id attempt;
    crash_probe ();
    let cache =
      match Sys.getenv_opt "AUTOCC_CACHE_DIR" with
      | Some d when d <> "" -> Some (Cache.create ~dir:d ())
      | _ -> None
    in
    let dut = Duts.Bundled.build spec.sp_dut in
    let ft = Duts.Bundled.ft_for ~threshold:spec.sp_threshold spec.sp_dut dut in
    let progress _k =
      renew_lease dir job_id attempt;
      crash_probe ()
    in
    let t0 = Unix.gettimeofday () in
    let verdict, depth =
      match spec.sp_engine with
      | "prove" -> (
          match Autocc.Ft.prove ~max_depth:spec.sp_depth ~progress ?cache ft with
          | Bmc.Proved (k, _) -> ("proved", k)
          | Bmc.Refuted (cex, _) -> ("refuted", cex.Bmc.cex_depth)
          | Bmc.Unknown (reason, st) ->
              ("unknown:" ^ Bmc.unknown_reason_to_string reason, st.Bmc.depth_reached))
      | _ -> (
          match Autocc.Ft.check ~max_depth:spec.sp_depth ~progress ?cache ft with
          | Bmc.Cex (cex, _) -> ("cex", cex.Bmc.cex_depth)
          | Bmc.Bounded_proof st -> ("proof", st.Bmc.depth_reached)
          | Bmc.Unknown (reason, st) ->
              ("unknown:" ^ Bmc.unknown_reason_to_string reason, st.Bmc.depth_reached))
    in
    let wall = Unix.gettimeofday () -. t0 in
    let wall_ms = int_of_float (wall *. 1000.) in
    let hits, misses, stores =
      match cache with
      | None -> (0, 0, 0)
      | Some c ->
          let st = Cache.stats c in
          (st.Cache.hits, st.Cache.misses, st.Cache.stores)
    in
    Obs.Bus.publish (Obs.Bus.Job_done { verdict; wall_s = wall });
    atomic_write_json (result_file dir job_id)
      (Json.Obj
         [
           ("schema", Json.Str result_schema);
           ("id", Json.Str job_id);
           ("verdict", Json.Str verdict);
           ("depth", Json.Int depth);
           ("wall_ms", Json.Int wall_ms);
           ("cache_hits", Json.Int hits);
         ]);
    (* One ledger row per delivery, beside the daemon's queue: the
       service directory is self-describing post-mortem. *)
    (try
       Obs.Ledger.append ~dir
         {
           Obs.Ledger.r_id = Obs.Ledger.run_id () ^ "-" ^ job_id;
           r_tool = "worker";
           r_subject = spec.sp_dut;
           r_config =
             Printf.sprintf "%s:depth=%d:threshold=%d:attempt=%d" spec.sp_engine
               spec.sp_depth spec.sp_threshold attempt;
           r_dut_hash = "";
           r_ts = t0;
           r_wall_s = wall;
           r_cpu_s = Sys.time ();
           r_cache_hits = hits;
           r_cache_misses = misses;
           r_cache_stores = stores;
           r_asserts =
             [
               {
                 Obs.Ledger.a_name = "property";
                 a_verdict = verdict;
                 a_depth = depth;
                 a_wall_s = wall;
                 a_cached = hits > 0;
               };
             ];
           r_artifacts = [ result_file dir job_id ];
         }
     with Sys_error _ | Unix.Unix_error _ -> ());
    0
end

module Daemon = struct
  type config = {
    d_dir : string;
    d_workers : int;
    d_lease_s : float;
    d_max_crashes : int;
    d_shed : int;
    d_retry : Retry.policy;
    d_exe : string;
    d_cache_dir : string option;
    d_metrics_file : string option;
    d_quiet : bool;
  }

  let default ~dir ~exe =
    {
      d_dir = dir;
      d_workers = Machine.default_config.Machine.c_workers;
      d_lease_s = Machine.default_config.Machine.c_lease_s;
      d_max_crashes = Machine.default_config.Machine.c_max_crashes;
      d_shed = Machine.default_config.Machine.c_shed;
      d_retry = Retry.default;
      d_exe = exe;
      d_cache_dir = None;
      d_metrics_file = None;
      d_quiet = false;
    }

  let pid_path dir = dir // "serve.pid"

  let mkdir_p dir =
    let rec go d =
      if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
        go (Filename.dirname d);
        try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      end
    in
    go dir

  let pid_alive pid =
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.EPERM, _, _) -> true
    | exception Unix.Unix_error _ -> false

  (* Aggregate per-job liveness into the campaign heartbeat schema so
     `autocc top` renders service jobs exactly like campaign entries:
     entry keys match the job half of the workers' "id/dut" bus
     labels. *)
  let write_heartbeats dir (m : Machine.t) started =
    let entries =
      List.filter_map
        (fun (j : Machine.job) ->
          let start =
            match Hashtbl.find_opt started j.Machine.j_id with
            | Some t -> t
            | None -> 0.
          in
          let beat, fin =
            match j.Machine.j_state with
            | Machine.Leased l -> (l.last_beat, false)
            | Machine.Done _ | Machine.Quarantined _ -> (start, true)
            | Machine.Pending _ -> (start, false)
          in
          if start = 0. then None
          else
            Some
              ( j.Machine.j_id,
                Json.Obj
                  [
                    ("started_s", Json.Float start);
                    ("beat_s", Json.Float beat);
                    ("done", Json.Bool fin);
                  ] ))
        m.Machine.m_jobs
    in
    try
      atomic_write_json (dir // "heartbeats.json")
        (Json.Obj
           [
             ("schema", Json.Str "autocc.heartbeat/1");
             ("pid", Json.Int (Unix.getpid ()));
             ("entries", Json.Obj entries);
           ])
    with Sys_error _ -> ()

  let m_queue = lazy (Obs.Metrics.gauge "serve.queue_depth")
  let m_leased = lazy (Obs.Metrics.gauge "serve.leased")
  let m_submitted = lazy (Obs.Metrics.counter "serve.submitted")
  let m_completed = lazy (Obs.Metrics.counter "serve.completed")
  let m_crashes = lazy (Obs.Metrics.counter "serve.crashes")
  let m_quarantined = lazy (Obs.Metrics.counter "serve.quarantined")
  let m_shed = lazy (Obs.Metrics.counter "serve.shed")

  let run cfg =
    let dir = cfg.d_dir in
    mkdir_p dir;
    List.iter (fun d -> mkdir_p (dir // d)) [ "jobs"; "hb"; "results"; "logs" ];
    (* Exactly one daemon per directory: two supervisors would lease the
       same jobs to different pools. *)
    (match
       let ic = open_in (pid_path dir) in
       let line = try input_line ic with End_of_file -> "" in
       close_in ic;
       int_of_string_opt (String.trim line)
     with
    | Some pid when pid <> Unix.getpid () && pid_alive pid ->
        Printf.eprintf "autocc serve: %s is already served by pid %d\n%!" dir pid;
        exit 1
    | _ | (exception Sys_error _) -> ());
    let oc = open_out (pid_path dir) in
    output_string oc (string_of_int (Unix.getpid ()) ^ "\n");
    close_out oc;
    if cfg.d_metrics_file <> None then Obs.Metrics.enable ();
    Option.iter Obs.Exposition.start cfg.d_metrics_file;
    Option.iter (fun d -> mkdir_p d) cfg.d_cache_dir;
    let mcfg =
      {
        Machine.c_workers = cfg.d_workers;
        c_lease_s = cfg.d_lease_s;
        c_max_crashes = cfg.d_max_crashes;
        c_shed = cfg.d_shed;
        c_retry = cfg.d_retry;
      }
    in
    let machine =
      ref
        (match Store.load ~dir mcfg with
        | Ok (Some m) -> m
        | Ok None -> Machine.create mcfg
        | Error msg -> failwith ("autocc serve: " ^ msg))
    in
    let say fmt =
      Printf.ksprintf
        (fun s -> if not cfg.d_quiet then Printf.printf "serve: %s\n%!" s)
        fmt
    in
    let started : (string, float) Hashtbl.t = Hashtbl.create 16 in
    let dirty = ref true in
    let exit_requested = ref false in
    let pid_to_id : (int * string) list ref = ref [] in
    let clients : (Unix.file_descr * Buffer.t) list ref = ref [] in
    let waiters : (Unix.file_descr * string) list ref = ref [] in
    let drain_req = Atomic.make false in
    let drained = ref false in
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> Atomic.set drain_req true));
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle (fun _ -> Atomic.set drain_req true));
    let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let sock_path = Client.socket_path dir in
    (try Sys.remove sock_path with Sys_error _ -> ());
    Unix.bind sock (Unix.ADDR_UNIX sock_path);
    Unix.listen sock 16;
    let drop_client fd =
      clients := List.remove_assoc fd !clients;
      waiters := List.filter (fun (w, _) -> w <> fd) !waiters;
      try Unix.close fd with Unix.Unix_error _ -> ()
    in
    let reply fd j =
      (try Client.write_all fd (Json.to_string j ^ "\n")
       with Unix.Unix_error _ -> ());
      drop_client fd
    in
    let spawn id attempt =
      let log = dir // "logs" // Printf.sprintf "%s-%d.log" id attempt in
      let logfd =
        Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      let argv =
        [|
          cfg.d_exe; "worker"; "--dir"; dir; "--job"; id;
          "--attempt"; string_of_int attempt;
        |]
      in
      let env =
        let base =
          Array.to_list (Unix.environment ())
          |> List.filter (fun kv ->
                 not (String.length kv >= 17 && String.sub kv 0 17 = "AUTOCC_CACHE_DIR="))
        in
        let extra =
          match cfg.d_cache_dir with
          | Some d -> [ "AUTOCC_CACHE_DIR=" ^ d ]
          | None -> []
        in
        Array.of_list (base @ extra)
      in
      let r =
        match Unix.create_process_env cfg.d_exe argv env devnull logfd logfd with
        | pid -> Some pid
        | exception Unix.Unix_error (e, _, _) ->
            say "spawn of %s failed: %s" id (Unix.error_message e);
            None
      in
      Unix.close logfd;
      r
    in
    let rec feed ev =
      let m, acts = Machine.step !machine ev in
      machine := m;
      List.iter apply acts;
      acts
    and apply = function
      | Machine.Accept { id } ->
          Obs.Metrics.add (Lazy.force m_submitted) 1;
          Hashtbl.replace started id (Unix.gettimeofday ());
          (match Machine.find !machine id with
          | Some j -> write_job_spec dir id j.Machine.j_spec
          | None -> ());
          say "%s accepted (%s)"
            id
            (match Machine.find !machine id with
            | Some j -> j.Machine.j_spec.Machine.sp_dut
            | None -> "?")
      | Machine.Reject { reason } ->
          if reason = "overloaded" then Obs.Metrics.add (Lazy.force m_shed) 1
      | Machine.Start { id; spec = _; attempt } -> (
          match spawn id attempt with
          | Some pid ->
              pid_to_id := (pid, id) :: !pid_to_id;
              say "%s leased to pid %d (attempt %d)" id pid attempt;
              ignore (feed (Machine.Spawned { id; pid; now = Unix.gettimeofday () }))
          | None ->
              (* Count a failed fork as a crash of this attempt. *)
              ignore
                (feed
                   (Machine.Exited
                      { id; pid = 0; result = None; now = Unix.gettimeofday () })))
      | Machine.Kill { id; pid } ->
          say "%s: killing worker pid %d" id pid;
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
      | Machine.Redeliver { id; attempt; backoff_s } ->
          Obs.Metrics.add (Lazy.force m_crashes) 1;
          Obs.Bus.publish ~label:id
            (Obs.Bus.Retry { attempt; reason = "worker_crashed" });
          say "%s crashed; redelivery %d in %.2fs" id attempt backoff_s
      | Machine.Quarantine { id; crashes } ->
          Obs.Metrics.add (Lazy.force m_crashes) 1;
          Obs.Metrics.add (Lazy.force m_quarantined) 1;
          Obs.Bus.publish ~label:id
            (Obs.Bus.Unknown { reason = "worker_crashed" });
          say "%s quarantined after %d crashes" id crashes
      | Machine.Complete { id; verdict } ->
          Obs.Metrics.add (Lazy.force m_completed) 1;
          say "%s done: %s" id verdict
      | Machine.Persist -> dirty := true
      | Machine.Exit -> exit_requested := true
    in
    (* A pending job whose result file already exists completed just
       before a daemon crash/restart lost the Done transition — absorb
       the deposit instead of re-solving. *)
    List.iter
      (fun (j : Machine.job) ->
        match j.Machine.j_state with
        | Machine.Pending _ -> (
            match read_result dir j.Machine.j_id with
            | Some r ->
                ignore
                  (feed
                     (Machine.Exited
                        {
                          id = j.Machine.j_id;
                          pid = 0;
                          result = Some r;
                          now = Unix.gettimeofday ();
                        }))
            | None -> ())
        | _ -> ())
      !machine.Machine.m_jobs;
    Obs.Bus.attach ~file:(dir // "events.jsonl") ();
    say "listening on %s (%d workers, lease %.1fs, quarantine after %d)"
      sock_path cfg.d_workers cfg.d_lease_s cfg.d_max_crashes;
    let handle_request fd line =
      match Json.parse line with
      | Error msg -> reply fd (Proto.error ("malformed request: " ^ msg))
      | Ok j -> (
          match Proto.request_of_json j with
          | Error msg -> reply fd (Proto.error msg)
          | Ok (Proto.Submit spec) ->
              if not (List.mem spec.Machine.sp_dut Duts.Bundled.known) then
                reply fd (Proto.error ("unknown dut " ^ spec.Machine.sp_dut))
              else if not (List.mem spec.Machine.sp_engine [ "check"; "prove" ]) then
                reply fd (Proto.error ("unknown engine " ^ spec.Machine.sp_engine))
              else if spec.Machine.sp_depth < 1 || spec.Machine.sp_threshold < 1 then
                reply fd (Proto.error "max_depth and threshold must be >= 1")
              else begin
                let acts = feed (Machine.Submit spec) in
                match
                  List.find_map
                    (function
                      | Machine.Accept { id } -> Some (Ok id)
                      | Machine.Reject { reason } -> Some (Error reason)
                      | _ -> None)
                    acts
                with
                | Some (Ok id) -> reply fd (Proto.ok [ ("job", Json.Str id) ])
                | Some (Error reason) -> reply fd (Proto.error reason)
                | None -> reply fd (Proto.error "internal: no decision")
              end
          | Ok Proto.Status ->
              reply fd
                (Proto.ok
                   [
                     ("draining", Json.Bool !machine.Machine.m_draining);
                     ( "jobs",
                       Json.List
                         (List.map Proto.json_of_job !machine.Machine.m_jobs) );
                   ])
          | Ok (Proto.Wait id) -> (
              match Machine.find !machine id with
              | None -> reply fd (Proto.error ("no such job " ^ id))
              | Some j -> (
                  match j.Machine.j_state with
                  | Machine.Done _ | Machine.Quarantined _ ->
                      reply fd (Proto.ok [ ("job", Proto.json_of_job j) ])
                  | _ -> waiters := (fd, id) :: !waiters))
          | Ok Proto.Drain ->
              Atomic.set drain_req true;
              reply fd (Proto.ok [])
          | Ok Proto.Ping ->
              reply fd (Proto.ok [ ("pid", Json.Int (Unix.getpid ())) ]))
    in
    let handle_readable fd =
      match List.assoc_opt fd !clients with
      | None -> ()
      | Some buf -> (
          let chunk = Bytes.create 4096 in
          match Unix.read fd chunk 0 4096 with
          | exception Unix.Unix_error _ -> drop_client fd
          | 0 -> drop_client fd
          | n -> (
              Buffer.add_subbytes buf chunk 0 n;
              if Buffer.length buf > 1_000_000 then drop_client fd
              else
                let s = Buffer.contents buf in
                match String.index_opt s '\n' with
                | None -> ()
                | Some i ->
                    (* One request per connection; anything after the
                       first line is ignored. *)
                    handle_request fd (String.sub s 0 i)))
    in
    let rec reap () =
      match Unix.waitpid [ Unix.WNOHANG ] (-1) with
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
      | 0, _ -> ()
      | pid, _status ->
          (match List.assoc_opt pid !pid_to_id with
          | None -> ()
          | Some id ->
              pid_to_id := List.remove_assoc pid !pid_to_id;
              let result = read_result dir id in
              ignore
                (feed
                   (Machine.Exited
                      { id; pid; result; now = Unix.gettimeofday () })));
          reap ()
    in
    let poll_beats () =
      List.iter
        (fun (j : Machine.job) ->
          match j.Machine.j_state with
          | Machine.Leased l when l.pid > 0 -> (
              match read_lease dir j.Machine.j_id with
              | Some (pid, beat) when pid = l.pid && beat > l.last_beat ->
                  ignore (feed (Machine.Beat { id = j.Machine.j_id; now = beat }))
              | _ -> ())
          | _ -> ())
        !machine.Machine.m_jobs
    in
    let serve_waiters () =
      let ready, rest =
        List.partition
          (fun (_, id) ->
            match Machine.find !machine id with
            | Some j -> (
                match j.Machine.j_state with
                | Machine.Done _ | Machine.Quarantined _ -> true
                | _ -> false)
            | None -> true)
          !waiters
      in
      waiters := rest;
      List.iter
        (fun (fd, id) ->
          match Machine.find !machine id with
          | Some j -> reply fd (Proto.ok [ ("job", Proto.json_of_job j) ])
          | None -> reply fd (Proto.error ("no such job " ^ id)))
        ready
    in
    let hb_last = ref 0. in
    let persist_and_observe () =
      if !dirty then begin
        Store.save ~dir !machine;
        dirty := false
      end;
      let now = Unix.gettimeofday () in
      if now -. !hb_last >= 0.2 then begin
        hb_last := now;
        write_heartbeats dir !machine started;
        Obs.Metrics.set (Lazy.force m_queue) (float_of_int (Machine.live !machine));
        Obs.Metrics.set (Lazy.force m_leased)
          (float_of_int (Machine.leased !machine))
      end
    in
    while not !exit_requested do
      if Atomic.get drain_req && not !drained then begin
        drained := true;
        say "draining: intake closed, waiting for %d leased job(s)"
          (Machine.leased !machine);
        ignore (feed Machine.Drain)
      end;
      let rfds = sock :: List.map fst !clients @ List.map fst !waiters in
      let ready, _, _ =
        match Unix.select rfds [] [] 0.05 with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if List.mem sock ready then begin
        match Unix.accept sock with
        | fd, _ -> clients := (fd, Buffer.create 256) :: !clients
        | exception Unix.Unix_error _ -> ()
      end;
      List.iter
        (fun fd ->
          if fd <> sock then
            if List.mem_assoc fd !clients then handle_readable fd
            else if List.exists (fun (w, _) -> w = fd) !waiters then
              (* A waiter that writes or hangs up before its job
                 finishes is gone; reclaim the fd. *)
              drop_client fd)
        ready;
      reap ();
      poll_beats ();
      ignore (feed (Machine.Tick { now = Unix.gettimeofday () }));
      serve_waiters ();
      persist_and_observe ()
    done;
    (* Drained: everything leased has been reaped; pending jobs (still
       inside backoff, or submitted after the pool filled) persist for
       the next incarnation. *)
    List.iter (fun (fd, _) -> reply fd (Proto.error "draining")) !waiters;
    List.iter (fun (fd, _) -> drop_client fd) !clients;
    if !dirty then Store.save ~dir !machine;
    write_heartbeats dir !machine started;
    Obs.Bus.detach ();
    (try Unix.close sock with Unix.Unix_error _ -> ());
    (try Unix.close devnull with Unix.Unix_error _ -> ());
    (try Sys.remove sock_path with Sys_error _ -> ());
    (try Sys.remove (pid_path dir) with Sys_error _ -> ());
    (* Clean shutdown: like a completed campaign, drop the heartbeat
       sidecar so `autocc top` doesn't report a CRASHED owner. *)
    (try Sys.remove (dir // "heartbeats.json") with Sys_error _ -> ());
    Option.iter (fun _ -> Obs.Exposition.stop ()) cfg.d_metrics_file;
    let done_n, quar_n, pend_n =
      List.fold_left
        (fun (d, q, p) (j : Machine.job) ->
          match j.Machine.j_state with
          | Machine.Done _ -> (d + 1, q, p)
          | Machine.Quarantined _ -> (d, q + 1, p)
          | _ -> (d, q, p + 1))
        (0, 0, 0) !machine.Machine.m_jobs
    in
    say "drained: %d done, %d quarantined, %d pending (queue persisted)"
      done_n quar_n pend_n;
    0
end

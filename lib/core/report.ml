let diff_at ft cex =
  match Ft.spy_start_cycle ft cex with
  | None -> (None, [])
  | Some cycle -> (Some cycle, Ft.state_diff ft cex ~cycle)

let first_divergence ft cex =
  let module Signal = Rtl.Signal in
  let module Circuit = Rtl.Circuit in
  let pairs =
    List.map
      (fun r -> ((Signal.reg_of r).Signal.reg_name, ft.Ft.map_a r, ft.Ft.map_b r))
      (Circuit.regs ft.Ft.dut)
  in
  let watched = List.concat_map (fun (_, a, b) -> [ a; b ]) pairs in
  let values = Bmc.replay_values cex watched in
  let arr s = List.assq s values in
  List.filter_map
    (fun (name, a, b) ->
      let va = arr a and vb = arr b in
      let n = Array.length va in
      let rec find i =
        if i >= n then None
        else if not (Bitvec.equal va.(i) vb.(i)) then Some (name, i)
        else find (i + 1)
      in
      find 0)
    pairs
  |> List.stable_sort (fun (_, c1) (_, c2) -> compare c1 c2)

let pp_first_divergence fmt ft cex =
  match first_divergence ft cex with
  | [] -> Format.fprintf fmt "first divergence: none (no register differs)"
  | l ->
      Format.fprintf fmt "first divergence: %s"
        (String.concat ", "
           (List.map (fun (n, c) -> Printf.sprintf "%s@%d" n c) l))

let explain fmt ft cex =
  Format.fprintf fmt "=== AutoCC counterexample ===@.";
  Format.fprintf fmt "DUT: %s@." (Rtl.Circuit.name ft.Ft.dut);
  Format.fprintf fmt "Failing assertion(s): %s@."
    (String.concat ", " cex.Bmc.cex_failed);
  Format.fprintf fmt "Depth: %d cycles@." (cex.Bmc.cex_depth + 1);
  (match diff_at ft cex with
  | None, _ -> Format.fprintf fmt "Spy mode never set along the trace (unexpected).@."
  | Some cycle, diffs ->
      Format.fprintf fmt "Spy process begins at cycle %d.@." cycle;
      if diffs = [] then
        Format.fprintf fmt
          "No register differs at spy start: divergence is in-flight (pipeline contents).@."
      else begin
        Format.fprintf fmt
          "Microarchitectural state differing at spy start (alpha vs beta):@.";
        List.iter
          (fun (name, va, vb) ->
            Format.fprintf fmt "  %-32s %s vs %s@." name
              (Bitvec.to_hex_string va) (Bitvec.to_hex_string vb))
          diffs
      end);
  (match first_divergence ft cex with
  | [] -> ()
  | (root, cycle) :: _ as all ->
      Format.fprintf fmt "Earliest state divergence: %s at cycle %d%s@." root cycle
        (match all with
        | _ :: (next, c2) :: _ -> Printf.sprintf " (then %s at cycle %d)" next c2
        | _ -> ""));
  Format.fprintf fmt "Input trace:@.";
  Bmc.pp_cex fmt cex

let summary ft cex =
  let _, diffs = diff_at ft cex in
  let culprits =
    match diffs with
    | [] -> "in-flight state"
    | l -> String.concat "," (List.map (fun (n, _, _) -> n) l)
  in
  Printf.sprintf "%s @ depth %d via %s"
    (String.concat "," cex.Bmc.cex_failed)
    (cex.Bmc.cex_depth + 1) culprits

type merged_stats = {
  m_strategy : string;
  m_jobs : int;
  m_workers : int;
  m_cancelled : int;
  m_unknown : int;
  m_timeout : int;
  m_retries : int;
  m_solve_time : float;
  m_critical_path : float;
  m_wall : float;
  m_busy : float;
  m_cpu : float;
  m_vars : int;
  m_clauses : int;
  m_conflicts : int;
  m_decisions : int;
  m_propagations : int;
  m_restarts : int;
  m_opt : Opt.stats option;
}

let merge_stats (d : Parallel.detail) =
  List.fold_left
    (fun acc (r : Parallel.job_result) ->
      {
        acc with
        m_cancelled =
          (acc.m_cancelled
          + match r.Parallel.job_verdict with Parallel.Job_cancelled -> 1 | _ -> 0);
        m_unknown =
          (acc.m_unknown
          + match r.Parallel.job_verdict with Parallel.Job_unknown _ -> 1 | _ -> 0);
        m_timeout =
          (acc.m_timeout
          +
          match r.Parallel.job_verdict with
          | Parallel.Job_unknown
              (Bmc.Budget_exhausted { ub_budget = Sat.Solver.Wall_clock; _ }) ->
              1
          | _ -> 0);
        m_retries = acc.m_retries + r.Parallel.job_retries;
        m_solve_time = acc.m_solve_time +. r.Parallel.job_stats.Bmc.solve_time;
        m_critical_path = Float.max acc.m_critical_path r.Parallel.job_wall;
        m_busy = acc.m_busy +. r.Parallel.job_wall;
        m_cpu = acc.m_cpu +. r.Parallel.job_cpu;
        m_vars = acc.m_vars + r.Parallel.job_stats.Bmc.vars;
        m_clauses = acc.m_clauses + r.Parallel.job_stats.Bmc.clauses;
        m_conflicts = acc.m_conflicts + r.Parallel.job_stats.Bmc.conflicts;
        m_decisions = acc.m_decisions + r.Parallel.job_stats.Bmc.decisions;
        m_propagations =
          acc.m_propagations + r.Parallel.job_stats.Bmc.propagations;
        m_restarts = acc.m_restarts + r.Parallel.job_stats.Bmc.restarts;
        m_opt =
          (match (acc.m_opt, r.Parallel.job_stats.Bmc.opt) with
          | None, o | o, None -> o
          | Some x, Some y -> Some (Opt.add_stats x y));
      })
    {
      m_strategy = d.Parallel.par_strategy;
      m_jobs = List.length d.Parallel.par_results;
      m_workers = d.Parallel.par_workers;
      m_cancelled = 0;
      m_unknown = 0;
      m_timeout = 0;
      m_retries = 0;
      m_solve_time = 0.;
      m_critical_path = 0.;
      m_wall = d.Parallel.par_wall;
      m_busy = 0.;
      m_cpu = 0.;
      m_vars = 0;
      m_clauses = 0;
      m_conflicts = 0;
      m_decisions = 0;
      m_propagations = 0;
      m_restarts = 0;
      m_opt = None;
    }
    d.Parallel.par_results

let pp_merged fmt m =
  Format.fprintf fmt
    "%s: %d jobs on %d workers (%d cancelled%s), solver %.3fs total / %.3fs critical path, %d vars %d clauses %d conflicts"
    m.m_strategy m.m_jobs m.m_workers m.m_cancelled
    ((if m.m_unknown > 0 then Printf.sprintf ", %d unknown" m.m_unknown else "")
    ^
    if m.m_retries > 0 then Printf.sprintf ", %d retries" m.m_retries else "")
    m.m_solve_time m.m_critical_path m.m_vars m.m_clauses m.m_conflicts;
  Format.fprintf fmt
    "@.pool: %.3fs wall, %.3fs busy, %.3fs cpu (utilization %.0f%%)" m.m_wall
    m.m_busy m.m_cpu
    (if m.m_wall > 0. && m.m_workers > 0 then
       100. *. m.m_busy /. (float_of_int m.m_workers *. m.m_wall)
     else 0.);
  match m.m_opt with
  | None -> ()
  | Some o -> Format.fprintf fmt "@.opt: %a" Opt.pp_stats o

(* {1 JSON schema}

   The one place the shapes of machine-readable stats are defined; the
   [bench] executable and the CLI both emit through these, so
   [BENCH_*.json] and [--log-json] reports never drift apart. *)

module Json = Obs.Json

let json_of_opt_stats = function
  | None -> Json.Null
  | Some (o : Opt.stats) ->
      Json.Obj
        [
          ("nodes_before", Json.Int o.Opt.o_nodes_before);
          ("nodes_after", Json.Int o.Opt.o_nodes_after);
          ("coi_dropped", Json.Int o.Opt.o_coi_dropped);
          ("cse_merged", Json.Int o.Opt.o_cse_merged);
          ("rewrites", Json.Int o.Opt.o_rewrites);
          ("sweep_candidates", Json.Int o.Opt.o_sweep_candidates);
          ("sweep_merged", Json.Int o.Opt.o_sweep_merged);
          ("sweep_refuted", Json.Int o.Opt.o_sweep_refuted);
          ("regs_merged", Json.Int o.Opt.o_regs_merged);
          ("sat_queries", Json.Int o.Opt.o_sat_queries);
          ("opt_time_s", Json.Float o.Opt.o_time);
        ]

let json_of_bmc_stats (st : Bmc.stats) =
  Json.Obj
    [
      ("depth_reached", Json.Int st.Bmc.depth_reached);
      ("solve_s", Json.Float st.Bmc.solve_time);
      ("vars", Json.Int st.Bmc.vars);
      ("clauses", Json.Int st.Bmc.clauses);
      ("conflicts", Json.Int st.Bmc.conflicts);
      ("decisions", Json.Int st.Bmc.decisions);
      ("propagations", Json.Int st.Bmc.propagations);
      ("restarts", Json.Int st.Bmc.restarts);
      ("opt", json_of_opt_stats st.Bmc.opt);
    ]

let json_of_merged m =
  Json.Obj
    [
      ("strategy", Json.Str m.m_strategy);
      ("jobs", Json.Int m.m_jobs);
      ("workers", Json.Int m.m_workers);
      ("cancelled", Json.Int m.m_cancelled);
      ("unknown", Json.Int m.m_unknown);
      ("timeout", Json.Int m.m_timeout);
      ("retries", Json.Int m.m_retries);
      ("solve_s", Json.Float m.m_solve_time);
      ("critical_path_s", Json.Float m.m_critical_path);
      ("wall_s", Json.Float m.m_wall);
      ("busy_s", Json.Float m.m_busy);
      ("cpu_s", Json.Float m.m_cpu);
      ("vars", Json.Int m.m_vars);
      ("clauses", Json.Int m.m_clauses);
      ("conflicts", Json.Int m.m_conflicts);
      ("decisions", Json.Int m.m_decisions);
      ("propagations", Json.Int m.m_propagations);
      ("restarts", Json.Int m.m_restarts);
      ("opt", json_of_opt_stats m.m_opt);
    ]

let dump_vcd ~path ft cex =
  let module Signal = Rtl.Signal in
  let module Circuit = Rtl.Circuit in
  let dut = ft.Ft.dut in
  let monitor =
    [
      ("spy_mode", ft.Ft.spy_mode);
      ("transfer_cond", ft.Ft.transfer_cond);
      ("eq_cnt", ft.Ft.eq_cnt);
      ("flush_done", ft.Ft.flush_done);
    ]
  in
  let per_universe prefix m =
    List.map
      (fun p -> (prefix ^ p.Circuit.port_name, m p.Circuit.signal))
      (Circuit.outputs dut)
    @ List.map
        (fun r -> (prefix ^ (Signal.reg_of r).Signal.reg_name, m r))
        (Circuit.regs dut)
  in
  let labelled =
    monitor @ per_universe "ua." ft.Ft.map_a @ per_universe "ub." ft.Ft.map_b
  in
  let values = Bmc.replay_values cex (List.map snd labelled) in
  let traces =
    List.map2 (fun (label, _) (_, vs) -> (label, vs)) labelled values
  in
  Rtl.Vcd.write ~path ~module_name:(Circuit.name dut ^ "_ft") traces

module Signal = Rtl.Signal
module Circuit = Rtl.Circuit

type step = {
  step_flush : string list;
  step_result :
    [ `Cex of string * int | `Proof of int | `Unknown of string ];
}

type result = { flush_set : string list; steps : step list; proved : bool }

let check_with_flush ?max_depth ?threshold ?arch_regs dut flush_set =
  let dut' = Flush.instrument ~regs:flush_set dut in
  let ft =
    Ft.generate ?threshold ?arch_regs
      ~flush_done:(Flush.flush_done_of_input ())
      dut'
  in
  (ft, Ft.check ?max_depth ft)

(* FindCause: the first microarchitectural register from the candidate
   pool whose two universes differ when spy mode begins. *)
let find_cause ft cex ~candidates ~already_flushed =
  let cycle =
    match Ft.spy_start_cycle ft cex with
    | Some c -> c
    | None -> cex.Bmc.cex_depth
  in
  let diffs = Ft.state_diff ft cex ~cycle in
  List.find_map
    (fun (name, _, _) ->
      if List.mem name candidates && not (List.mem name already_flushed) then
        Some name
      else None)
    diffs

let incremental ?max_depth ?threshold ?(arch_regs = []) ~candidates dut =
  let rec go flush_set steps =
    let ft, outcome =
      check_with_flush ?max_depth ?threshold ~arch_regs dut flush_set
    in
    match outcome with
    | Bmc.Bounded_proof stats ->
        let step = { step_flush = flush_set; step_result = `Proof stats.Bmc.depth_reached } in
        { flush_set; steps = List.rev (step :: steps); proved = true }
    | Bmc.Unknown (reason, _) ->
        (* An inconclusive check proves nothing: stop, honestly unproved. *)
        let step =
          {
            step_flush = flush_set;
            step_result = `Unknown (Bmc.unknown_reason_to_string reason);
          }
        in
        { flush_set; steps = List.rev (step :: steps); proved = false }
    | Bmc.Cex (cex, _) -> (
        match find_cause ft cex ~candidates ~already_flushed:flush_set with
        | None ->
            (* No candidate explains the difference: report failure. *)
            let step =
              { step_flush = flush_set; step_result = `Cex ("<none>", cex.Bmc.cex_depth) }
            in
            { flush_set; steps = List.rev (step :: steps); proved = false }
        | Some culprit ->
            let step =
              { step_flush = flush_set; step_result = `Cex (culprit, cex.Bmc.cex_depth) }
            in
            go (flush_set @ [ culprit ]) (step :: steps))
  in
  go [] []

let decremental ?max_depth ?threshold ?(arch_regs = []) ?initial ~candidates dut =
  let all_regs =
    List.map (fun r -> (Signal.reg_of r).Signal.reg_name) (Circuit.regs dut)
  in
  let initial =
    match initial with
    | Some l -> l
    | None -> List.filter (fun n -> not (List.mem n arch_regs)) all_regs
  in
  let try_set flush_set =
    snd (check_with_flush ?max_depth ?threshold ~arch_regs dut flush_set)
  in
  (* The starting point must prove, otherwise the invariant of the loop
     does not hold. *)
  match try_set initial with
  | Bmc.Cex (cex, _) ->
      {
        flush_set = initial;
        steps =
          [ { step_flush = initial; step_result = `Cex ("<initial>", cex.Bmc.cex_depth) } ];
        proved = false;
      }
  | Bmc.Unknown (reason, _) ->
      {
        flush_set = initial;
        steps =
          [
            {
              step_flush = initial;
              step_result = `Unknown (Bmc.unknown_reason_to_string reason);
            };
          ];
        proved = false;
      }
  | Bmc.Bounded_proof stats0 ->
      let steps = ref [ { step_flush = initial; step_result = `Proof stats0.Bmc.depth_reached } ] in
      let flush_set =
        List.fold_left
          (fun flush_set candidate ->
            if not (List.mem candidate flush_set) then flush_set
            else begin
              let attempt = List.filter (fun n -> n <> candidate) flush_set in
              match try_set attempt with
              | Bmc.Bounded_proof stats ->
                  steps :=
                    { step_flush = attempt; step_result = `Proof stats.Bmc.depth_reached }
                    :: !steps;
                  attempt
              | Bmc.Cex (cex, _) ->
                  steps :=
                    { step_flush = attempt; step_result = `Cex (candidate, cex.Bmc.cex_depth) }
                    :: !steps;
                  flush_set
              | Bmc.Unknown (reason, _) ->
                  (* Removal unconfirmed: keep the candidate flushed. *)
                  steps :=
                    {
                      step_flush = attempt;
                      step_result =
                        `Unknown (Bmc.unknown_reason_to_string reason);
                    }
                    :: !steps;
                  flush_set
            end)
          initial candidates
      in
      { flush_set; steps = List.rev !steps; proved = true }

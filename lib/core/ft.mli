(** AutoCC FPV-testbench (FT) generation — the paper's core contribution.

    Given a DUT circuit, [generate] builds the two-universe wrapper of
    Fig. 2 and the property set of Listing 1:

    - the DUT is instantiated twice (universes α and β) with independent
      copies of every input, except inputs marked common;
    - a [transfer_cond] wire conjoins architectural-state equality,
      input equality and output equality (payloads gated by their
      transaction valids);
    - an [eq_cnt] counter tracks consecutive transfer cycles after
      [flush_done]; when it reaches the threshold, the registered
      [spy_mode] flag sets and stays set;
    - one assumption per DUT input: [spy_mode |-> input_eq];
    - one assertion per DUT output: [spy_mode |-> output_eq].

    A counterexample to any assertion is an execution pair in which the
    victim's pre-switch behaviour causes an observable difference in the
    spy's execution — a covert channel (or an RTL bug).

    The architectural-state condition and the flush-done condition default
    to the weakest choice (constant true, and a free symbolic input,
    respectively) and are refined by the user as counterexamples are
    found, exactly as in Sec. 4.1 of the paper. *)

type mapping = Rtl.Signal.t -> Rtl.Signal.t
(** Maps a DUT signal into one universe of the wrapper. *)

type t = {
  wrapper : Rtl.Circuit.t;  (** both universes plus the monitor logic *)
  dut : Rtl.Circuit.t;  (** the (possibly blackboxed) DUT *)
  map_a : mapping;
  map_b : mapping;
  spy_mode : Rtl.Signal.t;  (** registered spy-mode flag (1 bit) *)
  transfer_cond : Rtl.Signal.t;
  eq_cnt : Rtl.Signal.t;
  flush_done : Rtl.Signal.t;
  property : Bmc.property;
  sym : (Rtl.Signal.t * Rtl.Signal.t) list;
      (** symmetric (α, β) node pairs — the image of every DUT node
          under the two universe mappings, minus nodes the universes
          physically share. Fed to the blaster's symmetric template
          encoder (see {!Cnf.Blast.create}). *)
}

type sync = Flush_end | Flush_start
(** Which point of the flush event synchronizes the two universes
    (Sec. 3.2, "Measuring Context Switch Latency"). [Flush_end] (the
    default) takes the completion of the flush as the synchronization
    point: the transfer period is counted after [flush_done] and latency
    differences of the flush itself are invisible. [Flush_start] counts
    the transfer period {e before} the flush and starts the spy at the
    flush-start edge, making the flush part of the spy's observation —
    a Trojan-modulated flush latency then produces a CEX. *)

val generate :
  ?threshold:int ->
  ?sync:sync ->
  ?common:string list ->
  ?blackbox:string list ->
  ?arch_regs:string list ->
  ?arch_eq:(Rtl.Circuit.t -> mapping -> mapping -> Rtl.Signal.t) ->
  ?flush_done:(Rtl.Circuit.t -> mapping -> mapping -> Rtl.Signal.t) ->
  ?assumes:(Rtl.Circuit.t -> mapping -> mapping -> Rtl.Signal.t list) ->
  Rtl.Circuit.t ->
  t
(** [generate dut] builds the FT.

    @param threshold length of the transfer period (default 4; the
      heuristic in the paper is the longest path through the pipeline).
    @param common inputs shared verbatim between the two universes, in
      addition to those the DUT circuit itself marks common (the
      [//AutoCC Common] annotation).
    @param blackbox submodule boundaries to cut before wrapping.
    @param arch_regs DUT register names whose equality joins
      [architectural_state_eq] — the refinement knob of Sec. 4.
    @param arch_eq additional custom architectural-state condition over
      the two universes; it receives the final (post-blackbox) DUT
      circuit and the two universe mappings.
    @param flush_done condition indicating the microarchitectural flush
      has finished in both universes; default: a free symbolic 1-bit
      input, i.e. "anytime", as in Listing 1.
    @param assumes extra 1-bit environment assumptions, required to hold
      on {e every} cycle — the Sec. 3.4 mechanism for constraining the
      FPV tool to legal input sequences (e.g. "no memory response without
      an outstanding request") when spurious CEXs appear. *)

val check :
  ?max_depth:int ->
  ?progress:(int -> unit) ->
  ?jobs:int ->
  ?portfolio:int ->
  ?budget:Bmc.budget ->
  ?retry:Retry.policy ->
  ?opt:Opt.level ->
  ?incremental:bool ->
  ?symmetric:bool ->
  ?cache:Cache.t ->
  t ->
  Bmc.outcome
(** Run BMC over the generated property set. With [jobs] > 1 or
    [portfolio] set the work runs on the parallel engine ({!Parallel}):
    assertion sharding by default, a configuration race with
    [~portfolio:k]. Without either, the sequential engine is used
    unchanged — except that a [retry] policy also routes through the
    parallel engine (which owns the retry loop), even at one job.
    [budget] bounds each solver run; exhaustion yields
    {!Bmc.outcome.Unknown} rather than an exception. [opt] (default
    {!Opt.O2} — this is the product path) runs the {!Opt} netlist
    pipeline on the miter before blasting; verdicts and CEX depths are
    unchanged by construction.

    [symmetric] (default [true]) hands the two-universe pairing to the
    incremental engine's template blaster, which encodes the shared
    transition cone once and mirrors it — a pure construction-time
    saving; verdicts and CEX depths are identical by construction, and
    [~symmetric:false] (the CLI's [--no-symmetric]) is the differential
    oracle for that claim. [cache] memoizes conclusive verdicts across
    runs (see {!Cache} and {!Bmc.check}). *)

val check_detailed :
  ?max_depth:int ->
  ?progress:(int -> unit) ->
  ?jobs:int ->
  ?portfolio:int ->
  ?budget:Bmc.budget ->
  ?retry:Retry.policy ->
  ?opt:Opt.level ->
  ?incremental:bool ->
  ?symmetric:bool ->
  ?cache:Cache.t ->
  t ->
  Bmc.outcome * Parallel.detail
(** {!check} via the parallel engine, returning per-job accounting
    (always parallel-engine, even at [jobs:1]). *)

val prove :
  ?max_depth:int ->
  ?progress:(int -> unit) ->
  ?jobs:int ->
  ?budget:Bmc.budget ->
  ?retry:Retry.policy ->
  ?opt:Opt.level ->
  ?incremental:bool ->
  ?symmetric:bool ->
  ?cache:Cache.t ->
  t ->
  Bmc.induction_outcome
(** Attempt an unbounded proof of the property set by k-induction — the
    "full proof" the paper reaches on the AES accelerator. [jobs] > 1
    shards assertions across domains (see the completeness caveat on
    {!Parallel.prove}); as with {!check}, a [retry] policy forces the
    parallel engine. *)

val spy_start_cycle : t -> Bmc.cex -> int option
(** First cycle at which [spy_mode] is set along a counterexample
    trace. *)

val state_diff : t -> Bmc.cex -> cycle:int -> (string * Bitvec.t * Bitvec.t) list
(** Registers of the DUT whose two universes hold different values at the
    given cycle of a counterexample: (register name, value in α, value in
    β). This is the [FindCause] primitive of Algorithm 1. *)

(** Flush-set construction — Algorithms 1 and 2 of the paper.

    Both algorithms drive the full AutoCC loop (instrument a flush →
    generate the FT → run FPV) to converge on a set of microarchitectural
    registers whose flushing makes the DUT free of observable execution
    differences.

    {!incremental} (Algorithm 1) starts from the empty flush set and adds
    the register [FindCause] identifies for each counterexample until a
    bounded proof is reached.

    {!decremental} (Algorithm 2) starts from a full flush and removes
    candidate registers one at a time, keeping a removal only if the
    bounded proof still holds. *)

type step = {
  step_flush : string list;  (** flush set tried at this step *)
  step_result :
    [ `Cex of string * int | `Proof of int | `Unknown of string ];
      (** [`Cex (culprit, depth)]: the register added (incremental) or
          re-inserted (decremental) and the counterexample depth;
          [`Proof d]: bounded proof of depth [d]; [`Unknown reason]: the
          check was inconclusive (budget or fault — the rendered
          {!Bmc.unknown_reason}). An inconclusive check never counts as
          a proof: incremental stops unproved, decremental keeps the
          candidate flushed. *)
}

type result = {
  flush_set : string list;
  steps : step list;  (** in execution order *)
  proved : bool;
      (** false if the algorithm ran out of candidates or a required
          check came back [`Unknown] *)
}

val find_cause :
  Ft.t ->
  Bmc.cex ->
  candidates:string list ->
  already_flushed:string list ->
  string option
(** [FindCause] of Algorithm 1: the first register from [candidates]
    (and not in [already_flushed]) whose two universes differ at the
    spy-start cycle of the counterexample (falling back to the failure
    cycle when spy mode is never reached). Exposed so the provenance
    engine ({!Explain}) can name the culprit of a sliced trace with the
    exact primitive the synthesis loop uses. *)

val incremental :
  ?max_depth:int ->
  ?threshold:int ->
  ?arch_regs:string list ->
  candidates:string list ->
  Rtl.Circuit.t ->
  result
(** [incremental ~candidates dut]: [candidates] is the pool of registers
    [FindCause] may select from (typically all microarchitectural
    registers). [arch_regs] are treated as architectural state handled by
    the OS, exactly as in {!Ft.generate}. *)

val decremental :
  ?max_depth:int ->
  ?threshold:int ->
  ?arch_regs:string list ->
  ?initial:string list ->
  candidates:string list ->
  Rtl.Circuit.t ->
  result
(** [decremental ~candidates dut]: [initial] defaults to every register of
    the DUT not listed in [arch_regs]; [candidates] are the registers the
    algorithm attempts to remove from the flush (the paper notes the
    candidate set may be a strict subset when some flushes are free). *)

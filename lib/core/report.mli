(** Human-readable counterexample analysis.

    The paper highlights that AutoCC counterexamples are short and easy to
    root-cause; this module renders a CEX the way Sec. 4 walks through
    them: which assertion fired, at what depth, when spy mode began, which
    microarchitectural state differed between the universes at that
    moment, and the per-cycle input trace. *)

val explain : Format.formatter -> Ft.t -> Bmc.cex -> unit

val summary : Ft.t -> Bmc.cex -> string
(** One-line summary: failing assertions, depth, and the differing state
    at spy start. *)

val first_divergence : Ft.t -> Bmc.cex -> (string * int) list
(** For every DUT register that ever differs between the universes along
    the counterexample trace, the first cycle at which it does —
    earliest first. The head of this list is usually the true root cause;
    registers that diverge later are downstream effects. *)

val pp_first_divergence : Format.formatter -> Ft.t -> Bmc.cex -> unit
(** One line per diverging register, earliest first:
    ["first divergence: stash@3, echo@4"]. The rendering every
    CEX-producing CLI command prints (analyze, prove, stats,
    campaign). *)

(** {1 Parallel-run accounting} *)

type merged_stats = {
  m_strategy : string;  (** ["shard"] or ["portfolio"] *)
  m_jobs : int;
  m_workers : int;
  m_cancelled : int;  (** jobs abandoned after another job answered *)
  m_unknown : int;  (** jobs that ended [Job_unknown] after all retries *)
  m_timeout : int;
      (** subset of [m_unknown] whose final reason was the wall-clock
          budget *)
  m_retries : int;  (** re-runs performed across all jobs *)
  m_solve_time : float;  (** total solver seconds, summed across jobs *)
  m_critical_path : float;
      (** longest single job's wall-clock — the lower bound on parallel
          wall time with unlimited workers *)
  m_wall : float;  (** wall-clock of the whole parallel run, spawn to join *)
  m_busy : float;
      (** summed per-job wall-clock; [m_busy / (m_workers * m_wall)] is
          pool utilization *)
  m_cpu : float;  (** summed per-domain CPU seconds across jobs *)
  m_vars : int;
  m_clauses : int;
  m_conflicts : int;
  m_decisions : int;
  m_propagations : int;
  m_restarts : int;
  m_opt : Opt.stats option;
      (** summed netlist-optimization counters across jobs; [None] when
          every job ran at [-O0] *)
}

val merge_stats : Parallel.detail -> merged_stats
(** Aggregate the per-job results of a {!Parallel} run: solver time,
    CPU time and instance sizes are summed; the critical path is the
    longest job; [m_wall] is the run's own wall-clock (maxing over jobs
    would undercount coordinator time). *)

val pp_merged : Format.formatter -> merged_stats -> unit
(** Rendering of {!merge_stats}, as printed by the CLI under [--jobs]:
    the one-line solver summary plus a pool-utilization line. *)

(** {1 JSON schema}

    The single definition of the machine-readable stats shapes: the
    [bench] emitters and the CLI both go through these functions, so
    [BENCH_*.json] and the CLI's JSON output cannot drift apart. *)

val json_of_opt_stats : Opt.stats option -> Obs.Json.t
(** [Null] for [None]. *)

val json_of_bmc_stats : Bmc.stats -> Obs.Json.t
val json_of_merged : merged_stats -> Obs.Json.t

val dump_vcd : path:string -> Ft.t -> Bmc.cex -> unit
(** Write the counterexample as a VCD waveform: the monitor signals
    (spy_mode, transfer_cond, eq_cnt, flush_done), every DUT output in
    both universes, and every DUT register pair — the signal set one
    loads into the waveform viewer in the paper's appendix walkthrough. *)

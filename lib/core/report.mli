(** Human-readable counterexample analysis.

    The paper highlights that AutoCC counterexamples are short and easy to
    root-cause; this module renders a CEX the way Sec. 4 walks through
    them: which assertion fired, at what depth, when spy mode began, which
    microarchitectural state differed between the universes at that
    moment, and the per-cycle input trace. *)

val explain : Format.formatter -> Ft.t -> Bmc.cex -> unit

val summary : Ft.t -> Bmc.cex -> string
(** One-line summary: failing assertions, depth, and the differing state
    at spy start. *)

val first_divergence : Ft.t -> Bmc.cex -> (string * int) list
(** For every DUT register that ever differs between the universes along
    the counterexample trace, the first cycle at which it does —
    earliest first. The head of this list is usually the true root cause;
    registers that diverge later are downstream effects. *)

(** {1 Parallel-run accounting} *)

type merged_stats = {
  m_strategy : string;  (** ["shard"] or ["portfolio"] *)
  m_jobs : int;
  m_workers : int;
  m_cancelled : int;  (** jobs abandoned after another job answered *)
  m_solve_time : float;  (** total solver seconds, summed across jobs *)
  m_critical_path : float;
      (** longest single job's wall-clock — the lower bound on parallel
          wall time with unlimited workers *)
  m_vars : int;
  m_clauses : int;
  m_conflicts : int;
  m_opt : Opt.stats option;
      (** summed netlist-optimization counters across jobs; [None] when
          every job ran at [-O0] *)
}

val merge_stats : Parallel.detail -> merged_stats
(** Aggregate the per-job results of a {!Parallel} run: solver time and
    instance sizes are summed, the critical path is the longest job. *)

val pp_merged : Format.formatter -> merged_stats -> unit
(** One-line rendering of {!merge_stats}, as printed by the CLI under
    [--jobs]. *)

val dump_vcd : path:string -> Ft.t -> Bmc.cex -> unit
(** Write the counterexample as a VCD waveform: the monitor signals
    (spy_mode, transfer_cond, eq_cnt, flush_done), every DUT output in
    both universes, and every DUT register pair — the signal set one
    loads into the waveform viewer in the paper's appendix walkthrough. *)

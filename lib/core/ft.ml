module Signal = Rtl.Signal
module Circuit = Rtl.Circuit
open Signal

type mapping = Signal.t -> Signal.t

type t = {
  wrapper : Circuit.t;
  dut : Circuit.t;
  map_a : mapping;
  map_b : mapping;
  spy_mode : Signal.t;
  transfer_cond : Signal.t;
  eq_cnt : Signal.t;
  flush_done : Signal.t;
  property : Bmc.property;
  sym : (Signal.t * Signal.t) list;
}

let clog2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (2 * v) in
  go 0 1

let and_list = function
  | [] -> vdd
  | s :: rest -> List.fold_left ( &: ) s rest

(* Equality of one port between the two universes, with transaction
   payloads gated by the α valid (valids themselves are compared
   strictly, so gating by either valid is equivalent under the
   assumptions). Returns [(label, eq_signal)] pairs. *)
let port_eqs ~txs ~ports map_a map_b =
  let find_tx name =
    List.find_opt (fun tx -> List.mem name tx.Circuit.payloads) txs
  in
  List.map
    (fun p ->
      let name = p.Circuit.port_name in
      let a = map_a p.Circuit.signal and b = map_b p.Circuit.signal in
      match find_tx name with
      | None -> (name, a ==: b)
      | Some tx ->
          (* Payload compared only while the transaction is valid. *)
          let va =
            map_a
              (List.find
                 (fun q -> q.Circuit.port_name = tx.Circuit.valid)
                 ports)
                .Circuit.signal
          in
          (name, ~:va |: (a ==: b)))
    ports

type sync = Flush_end | Flush_start

let generate ?(threshold = 4) ?(sync = Flush_end) ?(common = []) ?(blackbox = [])
    ?(arch_regs = []) ?arch_eq ?flush_done ?assumes dut =
  Obs.span "ft.generate"
    ~attrs:[ ("dut", Obs.Json.Str (Circuit.name dut)) ]
  @@ fun () ->
  let dut = if blackbox = [] then dut else Blackbox.cut dut blackbox in
  let common = List.sort_uniq compare (common @ Circuit.common dut) in
  List.iter
    (fun n -> ignore (Circuit.find_input dut n))
    common;
  (* Shared (common) inputs appear once; every other input is duplicated
     with an a_/b_ prefix. *)
  let shared =
    List.filter_map
      (fun p ->
        if List.mem p.Circuit.port_name common then
          Some
            ( p.Circuit.port_name,
              Signal.input p.Circuit.port_name (Signal.width p.Circuit.signal) )
        else None)
      (Circuit.inputs dut)
  in
  let map_input prefix ~name ~width =
    match List.assoc_opt name shared with
    | Some s -> s
    | None -> Signal.input (prefix ^ name) width
  in
  let outs_a, map_a =
    Rtl.Transform.clone_outputs dut
      ~map_input:(map_input "a_")
      ~map_reg_name:(fun n -> "ua." ^ n)
  in
  let outs_b, map_b =
    Rtl.Transform.clone_outputs dut
      ~map_input:(map_input "b_")
      ~map_reg_name:(fun n -> "ub." ^ n)
  in
  (* Equality conditions per interface signal. *)
  let dup_inputs =
    List.filter (fun p -> not (List.mem p.Circuit.port_name common)) (Circuit.inputs dut)
  in
  let input_eqs =
    port_eqs ~txs:(Circuit.in_tx dut) ~ports:dup_inputs map_a map_b
  in
  let output_eqs =
    port_eqs ~txs:(Circuit.out_tx dut) ~ports:(Circuit.outputs dut) map_a map_b
  in
  (* Architectural-state equality: named registers plus a custom hook. *)
  let arch_reg_eq =
    List.map
      (fun name ->
        let r = Circuit.find_reg dut name in
        map_a r ==: map_b r)
      arch_regs
  in
  let arch_custom =
    match arch_eq with Some f -> [ f dut map_a map_b ] | None -> []
  in
  let architectural_state_eq =
    and_list (arch_reg_eq @ arch_custom) -- "architectural_state_eq"
  in
  let transfer_cond =
    (architectural_state_eq
    &: and_list (List.map snd input_eqs)
    &: and_list (List.map snd output_eqs))
    -- "transfer_cond"
  in
  (* flush_done: user condition or a free symbolic input ("anytime"). *)
  let flush_done_sig =
    match flush_done with
    | Some f -> f dut map_a map_b -- "flush_done"
    | None -> Signal.input "flush_done" 1
  in
  if Signal.width flush_done_sig <> 1 then
    invalid_arg "Ft.generate: flush_done must be 1 bit";
  (* eq_cnt counts consecutive transfer cycles since the flush finished;
     it saturates at the threshold. *)
  let cnt_width = clog2 (threshold + 1) + 1 in
  let eq_cnt = reg "autocc.eq_cnt" cnt_width in
  let threshold_c = of_int ~width:cnt_width threshold in
  let spy_mode_r = reg "autocc.spy_mode" 1 in
  (* Flush_end: the transfer period starts when the flush completes, as
     in Listing 1. Flush_start: the transfer period precedes the flush
     and the spy begins at the flush-start edge, so the flush itself is
     observed. *)
  let spy_starts =
    (match sync with
    | Flush_end -> transfer_cond &: (eq_cnt >=: threshold_c)
    | Flush_start -> transfer_cond &: (eq_cnt >=: threshold_c) &: flush_done_sig)
    -- "spy_starts"
  in
  reg_set_next spy_mode_r (spy_starts |: spy_mode_r);
  let counting =
    match sync with
    | Flush_end -> (flush_done_sig |: (eq_cnt >: zero cnt_width)) &: transfer_cond
    | Flush_start -> transfer_cond
  in
  let saturated = mux2 (eq_cnt >=: threshold_c) eq_cnt (eq_cnt +: one cnt_width) in
  reg_set_next eq_cnt (mux2 counting saturated (zero cnt_width));
  let spy_mode = spy_mode_r -- "spy_mode" in
  (* Properties of Listing 1. *)
  let implies a b = ~:a |: b in
  let user_assumes =
    match assumes with Some f -> f dut map_a map_b | None -> []
  in
  List.iter
    (fun a ->
      if Signal.width a <> 1 then invalid_arg "Ft.generate: assumptions must be 1 bit")
    user_assumes;
  let assumes =
    user_assumes @ List.map (fun (_, eq) -> implies spy_mode eq) input_eqs
  in
  let asserts =
    List.map
      (fun (name, eq) -> ("as__" ^ name ^ "_eq", implies spy_mode eq))
      output_eqs
  in
  let wrapper_outputs =
    List.map (fun (n, s) -> ("a_" ^ n, s)) outs_a
    @ List.map (fun (n, s) -> ("b_" ^ n, s)) outs_b
    @ [
        ("spy_mode", spy_mode);
        ("transfer_cond", transfer_cond);
        ("eq_cnt", eq_cnt);
        ("flush_done_w", flush_done_sig);
      ]
  in
  let wrapper =
    Circuit.create
      ~name:("ft_" ^ Circuit.name dut)
      ~outputs:wrapper_outputs ()
  in
  (* The two universes are clones of one circuit, so every DUT node
     yields a symmetric (α, β) pair — except nodes the clones physically
     share (common inputs and anything fed only by them), which need no
     pair. Handed to the blaster so the transition-relation template is
     encoded once and mirrored. *)
  let sym =
    List.filter_map
      (fun n ->
        match (map_a n, map_b n) with
        | a, b when a != b -> Some (a, b)
        | _ -> None
        | exception Not_found -> None)
      (Array.to_list (Circuit.topo dut))
  in
  {
    wrapper;
    dut;
    map_a;
    map_b;
    spy_mode;
    transfer_cond;
    eq_cnt;
    flush_done = flush_done_sig;
    property = { Bmc.assumes; asserts };
    sym;
  }

(* [jobs]/[portfolio] route through the parallel engine; the default (no
   jobs, no portfolio) stays on the sequential engine so existing callers
   and the differential-fuzz baseline are untouched. A [retry] policy
   also routes through the parallel engine (which owns the retry loop)
   even at one job. [opt] defaults to O2 here — the product path always
   optimizes the miter; engines keep their raw O0 default for direct
   callers. *)
let sym_of ~symmetric ft = if symmetric then ft.sym else []

let check ?max_depth ?progress ?jobs ?portfolio ?budget ?retry
    ?(opt = Opt.O2) ?incremental ?(symmetric = true) ?cache ft =
  let sym = sym_of ~symmetric ft in
  match (jobs, portfolio, retry) with
  | (None | Some 1), None, None ->
      Bmc.check ?max_depth ?progress ?budget ~opt ?incremental ~sym ?cache
        ft.wrapper ft.property
  | _ ->
      Parallel.check ?jobs ?portfolio ?max_depth ?progress ?budget ?retry ~opt
        ?incremental ~sym ?cache ft.wrapper ft.property

let check_detailed ?max_depth ?progress ?jobs ?portfolio ?budget ?retry
    ?(opt = Opt.O2) ?incremental ?(symmetric = true) ?cache ft =
  Parallel.check_detailed ?jobs ?portfolio ?max_depth ?progress ?budget ?retry
    ~opt ?incremental ~sym:(sym_of ~symmetric ft) ?cache ft.wrapper ft.property

let prove ?max_depth ?progress ?jobs ?budget ?retry ?(opt = Opt.O2)
    ?incremental ?(symmetric = true) ?cache ft =
  let sym = sym_of ~symmetric ft in
  match (jobs, retry) with
  | (None | Some 1), None ->
      Bmc.prove ?max_depth ?progress ?budget ~opt ?incremental ~sym ?cache
        ft.wrapper ft.property
  | _ ->
      Parallel.prove ?jobs ?max_depth ?progress ?budget ?retry ~opt
        ?incremental ~sym ?cache ft.wrapper ft.property

let spy_start_cycle ft cex =
  match Bmc.replay_values cex [ ft.spy_mode ] with
  | [ (_, values) ] ->
      let n = Array.length values in
      let rec find i =
        if i >= n then None
        else if not (Bitvec.is_zero values.(i)) then Some i
        else find (i + 1)
      in
      find 0
  | _ -> None

let state_diff ft cex ~cycle =
  let dut_regs = Circuit.regs ft.dut in
  let pairs =
    List.map (fun r -> ((Signal.reg_of r).Signal.reg_name, ft.map_a r, ft.map_b r)) dut_regs
  in
  let watched = List.concat_map (fun (_, a, b) -> [ a; b ]) pairs in
  let values = Bmc.replay_values cex watched in
  let value s = Array.get (List.assq s values) cycle in
  List.filter_map
    (fun (name, a, b) ->
      let va = value a and vb = value b in
      if Bitvec.equal va vb then None else Some (name, va, vb))
    pairs

(** Deterministic fault injection for test builds.

    The recovery paths of the resource-governed runtime (budget
    exhaustion, crash isolation, campaign resume) are only trustworthy if
    they are exercised, so the verification layers carry named {e fault
    points} — cheap probes that do nothing in production but, when the
    harness is {e armed}, deterministically raise {!Injected} or fire a
    simulated stop at seeded points. Tests arm the harness, run the
    ordinary pipeline, and assert the contract that faults may only
    downgrade a verdict to [Unknown], never flip Sat<->Unsat.

    Determinism: whether the [n]-th hit of a site fires is a pure
    function of [(seed, site, n)] (a splitmix-style hash against the
    armed rate), so a single-domain run replays identically for a given
    seed. Under multiple domains the interleaving of hits is scheduling-
    dependent, but every individual decision is still drawn from the same
    deterministic die — the verdict-monotonicity contract must hold for
    {e any} interleaving.

    When disarmed (the default) every probe is a single [Atomic.get]. *)

exception Injected of string
(** Raised by {!point} when the die fires; carries the site name. The
    governed engines ({!Bmc}, {!Explain.Campaign}) catch this and
    downgrade the result rather than crash. *)

val arm : ?sites:string list -> ?rate:float -> seed:int -> unit -> unit
(** Arm the harness. [rate] (default 0.01) is the per-hit firing
    probability in [0, 1]; [sites] (default: all) restricts injection to
    the named fault points. Raises [Invalid_argument] on a rate outside
    [0, 1]. Re-arming resets all hit counters. *)

val arm_from_env : unit -> unit
(** Arm from the [AUTOCC_FAULT] environment variable, a comma-separated
    [key=value] list: [seed=42,rate=0.05,sites=sat.stop;opt.pass]. Does
    nothing when the variable is unset or empty — the hook production
    binaries call at startup so harnesses can inject without code
    changes. Raises [Failure] on a malformed specification. *)

val disarm : unit -> unit
(** Return to the zero-cost disarmed state and reset counters. *)

val reseed : offset:int -> unit
(** Rotate the armed seed by [offset] (and reset counters); no-op when
    disarmed. Fault decisions are a pure function of [(seed, site, n)]
    and counters are per-process, so a respawned worker would otherwise
    replay the exact fault sequence that killed its predecessor — a
    redelivered job would crash forever and quarantine. The service
    worker calls [reseed ~offset:attempt] so each delivery attempt rolls
    a fresh (but still deterministic) die.

    Known process-level sites probed by the serve worker:
    ["serve.worker"] (worker self-[SIGKILL] mid-job) and ["serve.lease"]
    (a heartbeat lease renewal silently dropped). *)

val armed : unit -> bool

val point : string -> unit
(** [point site] raises {!Injected site} when armed and the seeded die
    fires for this hit of [site]; otherwise does nothing. *)

val fire : string -> bool
(** Boolean form of {!point} for contexts where raising is wrong (e.g.
    simulating a spurious stop-hook firing): [true] when the die fires. *)

val hits : unit -> int
(** Total probe evaluations since arming (armed only) — lets tests check
    that the instrumented path actually passed through fault points. *)

val fired : unit -> int
(** Total faults fired since arming. *)

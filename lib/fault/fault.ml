(* Deterministic fault injection. Disarmed, a probe is one Atomic.get of
   [state]; armed, each hit hashes (seed, site, per-site counter) and
   fires when the hash lands under the armed rate. Counters live behind
   one mutex — armed runs are test runs, so the lock is not a hot-path
   concern, and it keeps per-site sequences well-defined under domains. *)

exception Injected of string

type config = {
  seed : int;
  threshold : int; (* fire when hash mod 1_000_000 < threshold *)
  sites : string list option; (* None = every site *)
}

type state = { config : config; mutable hits : int; mutable fired : int }

let state : state option Atomic.t = Atomic.make None
let lock = Mutex.create ()
let counters : (string, int) Hashtbl.t = Hashtbl.create 16

let arm ?sites ?(rate = 0.01) ~seed () =
  if not (rate >= 0. && rate <= 1.) then
    invalid_arg "Fault.arm: rate must be in [0, 1]";
  Mutex.lock lock;
  Hashtbl.reset counters;
  Atomic.set state
    (Some
       {
         config = { seed; threshold = int_of_float (rate *. 1_000_000.); sites };
         hits = 0;
         fired = 0;
       });
  Mutex.unlock lock

let disarm () =
  Mutex.lock lock;
  Hashtbl.reset counters;
  Atomic.set state None;
  Mutex.unlock lock

let armed () = Atomic.get state <> None

let reseed ~offset =
  match Atomic.get state with
  | None -> ()
  | Some st ->
      let c = st.config in
      Mutex.lock lock;
      Hashtbl.reset counters;
      Atomic.set state
        (Some { config = { c with seed = c.seed + offset }; hits = 0; fired = 0 });
      Mutex.unlock lock

let arm_from_env () =
  match Sys.getenv_opt "AUTOCC_FAULT" with
  | None | Some "" -> ()
  | Some spec ->
      let seed = ref 0 and rate = ref 0.01 and sites = ref None in
      List.iter
        (fun kv ->
          match String.index_opt kv '=' with
          | None -> failwith ("AUTOCC_FAULT: expected key=value, got " ^ kv)
          | Some i -> (
              let k = String.sub kv 0 i in
              let v = String.sub kv (i + 1) (String.length kv - i - 1) in
              match k with
              | "seed" -> (
                  match int_of_string_opt v with
                  | Some n -> seed := n
                  | None -> failwith ("AUTOCC_FAULT: bad seed " ^ v))
              | "rate" -> (
                  match float_of_string_opt v with
                  | Some r when r >= 0. && r <= 1. -> rate := r
                  | _ -> failwith ("AUTOCC_FAULT: bad rate " ^ v))
              | "sites" -> sites := Some (String.split_on_char ';' v)
              | _ -> failwith ("AUTOCC_FAULT: unknown key " ^ k)))
        (String.split_on_char ',' spec);
      arm ?sites:!sites ~rate:!rate ~seed:!seed ()

(* splitmix64 finalizer — a well-mixed pure function of the inputs. *)
let mix x =
  let x = Int64.of_int x in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94d049bb133111ebL in
  Int64.to_int (Int64.logxor x (Int64.shift_right_logical x 31)) land max_int

let site_hash site =
  (* FNV-1a over the site name; folded into the per-hit mix. *)
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land max_int) site;
  !h

let decide st site =
  let enabled =
    match st.config.sites with None -> true | Some l -> List.mem site l
  in
  if not enabled then false
  else begin
    let n =
      match Hashtbl.find_opt counters site with Some n -> n | None -> 0
    in
    Hashtbl.replace counters site (n + 1);
    st.hits <- st.hits + 1;
    let h = mix (st.config.seed lxor site_hash site lxor (n * 0x9e3779b9)) in
    let fire = h mod 1_000_000 < st.config.threshold in
    if fire then st.fired <- st.fired + 1;
    fire
  end

let fire site =
  match Atomic.get state with
  | None -> false
  | Some st ->
      Mutex.lock lock;
      let r = decide st site in
      Mutex.unlock lock;
      r

let point site = if fire site then raise (Injected site)

let hits () =
  match Atomic.get state with None -> 0 | Some st -> st.hits

let fired () =
  match Atomic.get state with None -> 0 | Some st -> st.fired

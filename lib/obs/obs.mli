(** Unified telemetry for the whole FPV pipeline.

    Three faces, all off by default and all safe to leave compiled into
    hot paths:

    - {b spans} ({!span}): nestable, domain-safe timed regions exported
      as Chrome/Perfetto trace-event JSON ({!trace_to_file}), so a whole
      [prove] run — elaborate, opt passes, per-depth unroll, blast, SAT
      solve, across parallel shards — is visible on one timeline;
    - {b metrics} ({!Metrics}): a registry of counters, gauges,
      histograms and series (append-only float sequences, used for
      per-depth timings), snapshotted into reports and [BENCH_*.json];
    - {b structured logging} ({!log}): leveled JSONL events through one
      mutex-guarded sink, replacing scattered [Printf] progress output —
      in particular, worker domains of {!Parallel} log through this sink
      instead of interleaving writes to stderr.

    {b Overhead contract.} With telemetry disabled (no trace sink, no
    log sink, metrics off — the default), {!span} is one atomic load and
    a closure call, {!log} is one atomic load, and every {!Metrics}
    recorder is one atomic load; the end-to-end budget is <= 2% on
    [bench smoke]. With tracing enabled, each span records one
    heap-allocated event under a mutex at exit.

    {b Clocks.} Timestamps come from [Unix.gettimeofday] rebased to the
    process start (the toolchain has no monotonic clock; an NTP step
    mid-run can skew a trace, which we accept). Per-domain CPU time
    reads [/proc/thread-self/stat] on Linux and falls back to process
    CPU time ([Sys.time]) elsewhere.

    {b Domain safety.} Every entry point may be called from any domain
    concurrently. Sinks are guarded by one mutex each; counters are
    atomics. *)

(** {1 JSON}

    A minimal JSON value type with a printer and a parser — shared by
    the trace exporter, the JSONL logger, [Report]'s schema functions
    and the [BENCH_*.json] emitters (the toolchain has no JSON
    library). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_buffer : Buffer.t -> t -> unit
  val to_string : t -> string

  val parse : string -> (t, string) result
  (** Strict recursive-descent parser for the subset this module prints
      (all of JSON minus surrogate-pair escapes, which decode to
      U+FFFD). Numbers with [.], [e] or [E] parse as [Float], others as
      [Int]. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] on missing field or non-object. *)

  val write_file : path:string -> t -> unit
  (** Write the value plus a trailing newline. *)
end

(** {1 Clocks} *)
module Clock : sig
  val wall_s : unit -> float
  (** Seconds since the Unix epoch ([Unix.gettimeofday]). *)

  val elapsed_us : unit -> float
  (** Microseconds since this module was initialized — the trace
      timestamp base. *)

  val thread_cpu_s : unit -> float
  (** CPU seconds consumed by the {e calling thread} (so, by the calling
      domain): [/proc/thread-self/stat] utime+stime on Linux, process
      CPU time as a fallback. Differences of this across a job measure
      per-domain CPU. *)
end

val domain_id : unit -> int
(** The calling domain's id — the [tid] of every event it records. *)

(** {1 Structured logging} *)

type level = Error | Warn | Info | Debug

val set_level : level -> unit
(** Drop log events above this level (default [Info]). Tracing and
    metrics are unaffected. *)

val get_level : unit -> level
val level_of_string : string -> (level, string) result
val level_to_string : level -> string

val log_to_file : string -> unit
(** Open [path] and send one JSON object per line to it:
    [{"ts_us":..,"level":..,"tid":..,"event":..,<attrs>}]. Replaces any
    previous sink (which is closed). *)

val set_log_sink : (string -> unit) option -> unit
(** Install a custom sink receiving each serialized line (no trailing
    newline), or [None] to disable logging. Used by tests. *)

val close_log : unit -> unit
(** Flush and drop the sink. *)

val log : ?attrs:(string * Json.t) list -> level -> string -> unit
(** [log level event] emits one line if a sink is installed and [level]
    passes the filter. [event] names follow the span taxonomy
    ("layer.what": [bmc.depth], [par.cancelled], ...). *)

val logging : level -> bool
(** Would {!log} at this level emit? Lets callers skip building attrs. *)

(** {1 Tracing} *)

val trace_to_file : string -> unit
(** Start collecting trace events; {!close_trace} writes them to [path]
    as [{"traceEvents": [...]}] — loadable by Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) and [chrome://tracing].
    Clears any previously collected events. *)

val tracing : unit -> bool

val span : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and, when tracing, records a complete ("X")
    event named [name] with the span's wall duration, the calling
    domain as [tid], and [attrs] as [args]. The category is the part of
    [name] before the first ['.']. Exceptions propagate (with their
    backtrace) after the event is recorded, so a cancelled solve still
    closes its span. When tracing is off: one atomic load, then
    [f ()]. *)

val instant : ?attrs:(string * Json.t) list -> string -> unit
(** A zero-duration instant ("i") event — cancellation requests,
    CEX-found moments. No-op when tracing is off. *)

val counter_event : string -> (string * float) list -> unit
(** A counter ("C") sample: Perfetto renders each key as a stacked
    track under [name]. Used for solver-progress and CNF-size curves.
    No-op when tracing is off. *)

val close_trace : unit -> unit
(** Stop tracing and write the collected events to the path given to
    {!trace_to_file} (no-op if tracing was never started). *)

val trace_json : unit -> Json.t
(** The trace collected so far, as the object {!close_trace} would
    write. For tests and in-memory consumers. *)

(** {1 Metrics} *)
module Metrics : sig
  type counter
  type gauge
  type histogram
  type series

  val enable : unit -> unit
  val disable : unit -> unit
  val enabled : unit -> bool
  (** Recording is gated on this flag (default off) so that fully
      disabled telemetry costs one atomic load per call site. Handles
      may be created, and {!snapshot} read, regardless. *)

  val counter : string -> counter
  (** Get or create. Raises [Invalid_argument] if [name] exists with a
      different kind (same for the other constructors). *)

  val add : counter -> int -> unit

  val gauge : string -> gauge
  val set : gauge -> float -> unit
  val max_gauge : gauge -> float -> unit  (** set to max(current, v) *)

  val histogram : ?buckets:float array -> string -> histogram
  (** [buckets] are upper bounds, strictly increasing; an observation
      lands in the first bucket with [v <= bound], or in the implicit
      overflow bucket. Default buckets: powers of ten from 1e-6 to 1e3.
      [buckets] is ignored when the histogram already exists. *)

  val observe : histogram -> float -> unit

  val series : string -> series
  val record : series -> float -> unit
  (** Append one value — e.g. seconds spent at each BMC depth, in depth
      order. *)

  (** A read-only snapshot of one metric. *)
  type value =
    | Counter of int
    | Gauge of float
    | Histogram of {
        buckets : float array;
        counts : int array;  (** length = buckets + 1 (overflow last) *)
        sum : float;
        count : int;
      }
    | Series of float array

  val snapshot : unit -> (string * value) list
  (** Every registered metric, sorted by name. *)

  val find : string -> value option

  val reset : unit -> unit
  (** Zero every metric (registrations survive). *)

  val json_of_snapshot : unit -> Json.t
  (** The snapshot as one JSON object keyed by metric name — the
      ["telemetry"] field of [BENCH_*.json]. *)
end

val enabled : unit -> bool
(** True when any face is on (tracing, logging, or metrics) — the gate
    instrumented layers use before installing sampling hooks. *)

val shutdown : unit -> unit
(** [close_trace], [close_log], [Metrics.disable] — idempotent; wired
    to CLI exit. *)

(** Unified telemetry for the whole FPV pipeline.

    Three faces, all off by default and all safe to leave compiled into
    hot paths:

    - {b spans} ({!span}): nestable, domain-safe timed regions exported
      as Chrome/Perfetto trace-event JSON ({!trace_to_file}), so a whole
      [prove] run — elaborate, opt passes, per-depth unroll, blast, SAT
      solve, across parallel shards — is visible on one timeline;
    - {b metrics} ({!Metrics}): a registry of counters, gauges,
      histograms and series (append-only float sequences, used for
      per-depth timings), snapshotted into reports and [BENCH_*.json];
    - {b structured logging} ({!log}): leveled JSONL events through one
      mutex-guarded sink, replacing scattered [Printf] progress output —
      in particular, worker domains of {!Parallel} log through this sink
      instead of interleaving writes to stderr.

    {b Overhead contract.} With telemetry disabled (no trace sink, no
    log sink, metrics off — the default), {!span} is one atomic load and
    a closure call, {!log} is one atomic load, and every {!Metrics}
    recorder is one atomic load; the end-to-end budget is <= 2% on
    [bench smoke]. With tracing enabled, each span records one
    heap-allocated event under a mutex at exit.

    {b Clocks.} Timestamps come from [Unix.gettimeofday] rebased to the
    process start (the toolchain has no monotonic clock; an NTP step
    mid-run can skew a trace, which we accept). Per-domain CPU time
    reads [/proc/thread-self/stat] on Linux and falls back to process
    CPU time ([Sys.time]) elsewhere.

    {b Domain safety.} Every entry point may be called from any domain
    concurrently. Sinks are guarded by one mutex each; counters are
    atomics. *)

(** {1 JSON}

    A minimal JSON value type with a printer and a parser — shared by
    the trace exporter, the JSONL logger, [Report]'s schema functions
    and the [BENCH_*.json] emitters (the toolchain has no JSON
    library). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_buffer : Buffer.t -> t -> unit
  val to_string : t -> string

  val parse : string -> (t, string) result
  (** Strict recursive-descent parser for the subset this module prints
      (all of JSON minus surrogate-pair escapes, which decode to
      U+FFFD). Numbers with [.], [e] or [E] parse as [Float], others as
      [Int]. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] on missing field or non-object. *)

  val write_file : path:string -> t -> unit
  (** Write the value plus a trailing newline. *)
end

(** {1 Clocks} *)
module Clock : sig
  val wall_s : unit -> float
  (** Seconds since the Unix epoch ([Unix.gettimeofday]). *)

  val elapsed_us : unit -> float
  (** Microseconds since this module was initialized — the trace
      timestamp base. *)

  val thread_cpu_s : unit -> float
  (** CPU seconds consumed by the {e calling thread} (so, by the calling
      domain): [/proc/thread-self/stat] utime+stime on Linux, process
      CPU time as a fallback. Differences of this across a job measure
      per-domain CPU. *)
end

val domain_id : unit -> int
(** The calling domain's id — the [tid] of every event it records. *)

(** {1 Atomic line appends}

    Multi-process-safe jsonl emission. The ledger ([runs.jsonl]) and the
    bus file sink ([events.jsonl]) are appended by the service's worker
    processes concurrently with the daemon and any one-shot CLI runs;
    buffered channels can split one line across several [write(2)] calls
    and interleave the halves. An {!Appender} opens the file [O_APPEND]
    and emits each line (payload + newline) as a single [write(2)],
    which POSIX lands contiguously at the end of file — concurrent
    writers can reorder whole lines but never tear one. *)

module Appender : sig
  type t

  val open_path : string -> t
  (** Open (creating if absent) for append-only line emission. *)

  val line : t -> string -> unit
  (** Append [s ^ "\n"] in one [write(2)]. [s] must not itself contain
      newlines (jsonl payloads never do). Raises [Invalid_argument]
      after {!close}. *)

  val json_line : t -> Json.t -> unit
  (** {!line} of the compact rendering of a JSON value. *)

  val close : t -> unit
  (** Idempotent. *)

  val with_path : string -> (t -> 'a) -> 'a
  (** Open, run, close (also on exception). *)
end

(** {1 Structured logging} *)

type level = Error | Warn | Info | Debug

val set_level : level -> unit
(** Drop log events above this level (default [Info]). Tracing and
    metrics are unaffected. *)

val get_level : unit -> level
val level_of_string : string -> (level, string) result
val level_to_string : level -> string

val log_to_file : string -> unit
(** Open [path] and send one JSON object per line to it:
    [{"ts_us":..,"level":..,"tid":..,"event":..,<attrs>}]. Replaces any
    previous sink (which is closed). *)

val set_log_sink : (string -> unit) option -> unit
(** Install a custom sink receiving each serialized line (no trailing
    newline), or [None] to disable logging. Used by tests. *)

val close_log : unit -> unit
(** Flush and drop the sink. *)

val log : ?attrs:(string * Json.t) list -> level -> string -> unit
(** [log level event] emits one line if a sink is installed and [level]
    passes the filter. [event] names follow the span taxonomy
    ("layer.what": [bmc.depth], [par.cancelled], ...). *)

val logging : level -> bool
(** Would {!log} at this level emit? Lets callers skip building attrs. *)

(** {1 Tracing} *)

val trace_to_file : string -> unit
(** Start collecting trace events; {!close_trace} writes them to [path]
    as [{"traceEvents": [...]}] — loadable by Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) and [chrome://tracing].
    Clears any previously collected events. *)

val tracing : unit -> bool

val span : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and, when tracing, records a complete ("X")
    event named [name] with the span's wall duration, the calling
    domain as [tid], and [attrs] as [args]. The category is the part of
    [name] before the first ['.']. Exceptions propagate (with their
    backtrace) after the event is recorded, so a cancelled solve still
    closes its span. When tracing is off: one atomic load, then
    [f ()]. *)

val instant : ?attrs:(string * Json.t) list -> string -> unit
(** A zero-duration instant ("i") event — cancellation requests,
    CEX-found moments. No-op when tracing is off. *)

val counter_event : string -> (string * float) list -> unit
(** A counter ("C") sample: Perfetto renders each key as a stacked
    track under [name]. Used for solver-progress and CNF-size curves.
    No-op when tracing is off. *)

val close_trace : unit -> unit
(** Stop tracing and write the collected events to the path given to
    {!trace_to_file} (no-op if tracing was never started). *)

val trace_json : unit -> Json.t
(** The trace collected so far, as the object {!close_trace} would
    write. For tests and in-memory consumers. *)

(** {1 Metrics} *)
module Metrics : sig
  type counter
  type gauge
  type histogram
  type series

  val enable : unit -> unit
  val disable : unit -> unit
  val enabled : unit -> bool
  (** Recording is gated on this flag (default off) so that fully
      disabled telemetry costs one atomic load per call site. Handles
      may be created, and {!snapshot} read, regardless. *)

  val counter : string -> counter
  (** Get or create. Raises [Invalid_argument] if [name] exists with a
      different kind (same for the other constructors). *)

  val add : counter -> int -> unit

  val gauge : string -> gauge
  val set : gauge -> float -> unit
  val max_gauge : gauge -> float -> unit  (** set to max(current, v) *)

  val histogram : ?buckets:float array -> string -> histogram
  (** [buckets] are upper bounds, strictly increasing; an observation
      lands in the first bucket with [v <= bound], or in the implicit
      overflow bucket. Default buckets: powers of ten from 1e-6 to 1e3.
      [buckets] is ignored when the histogram already exists. *)

  val observe : histogram -> float -> unit

  val series : string -> series
  val record : series -> float -> unit
  (** Append one value — e.g. seconds spent at each BMC depth, in depth
      order. *)

  (** A read-only snapshot of one metric. *)
  type value =
    | Counter of int
    | Gauge of float
    | Histogram of {
        buckets : float array;
        counts : int array;  (** length = buckets + 1 (overflow last) *)
        sum : float;
        count : int;
      }
    | Series of float array

  val snapshot : unit -> (string * value) list
  (** Every registered metric, sorted by name. *)

  val find : string -> value option

  val reset : unit -> unit
  (** Zero every metric (registrations survive). *)

  val json_of_snapshot : unit -> Json.t
  (** The snapshot as one JSON object keyed by metric name — the
      ["telemetry"] field of [BENCH_*.json]. *)
end

(** {1 Event bus}

    Typed, structured events for live campaign observability. Publishers
    (the BMC depth loop, the parallel engine, the verdict cache and the
    campaign driver) call {!Bus.publish}; with the bus detached (the
    default) that costs one atomic load. When attached, each event is
    stamped — monotone per-process sequence number, wall-clock
    timestamp, domain id, current {!Bus.with_label} scope — into a
    bounded in-process ring buffer and, when a file sink was given, as
    one JSON line appended and flushed to an [events.jsonl], so another
    process ([autocc top]) can follow a live campaign by tailing the
    file with no IPC and a crash loses at most one partial line. *)
module Bus : sig
  type event =
    | Depth_solved of { depth : int; seconds : float }
        (** One BMC depth closed without a CEX; [seconds] is the wall
            time spent at that depth. *)
    | Cex_found of { depth : int }
    | Cache_hit
    | Cache_miss
    | Retry of { attempt : int; reason : string }
    | Unknown of { reason : string }
    | Fault_injected of { site : string }
    | Job_start of { goal_depth : int }  (** [-1] when unknown. *)
    | Job_done of { verdict : string; wall_s : float }
    | Solver_progress of {
        conflicts : int;
        learnts : int;
        conflicts_per_s : float;
      }  (** Periodic sample from the solver health watchdog. *)
    | Solver_stalled of { conflicts_per_s : float; learnts_per_s : float }
    | Heartbeat

  type stamped = { seq : int; ts : float; tid : int; label : string; ev : event }
  (** [seq] is monotone within one publishing process (a resumed
      campaign restarts it); [ts] is [Clock.wall_s]. *)

  val attach : ?ring_capacity:int -> ?file:string -> unit -> unit
  (** Turn the bus on. [ring_capacity] bounds the in-process buffer
      (default 1024; oldest events are dropped on overflow — the file
      sink, which never drops, still has them). [file] is opened in
      append mode and flushed per event. Replaces any previous
      attachment. *)

  val detach : unit -> unit
  (** Turn the bus off and close the file sink. The ring remains
      readable. Idempotent. *)

  val enabled : unit -> bool

  val publish : ?label:string -> event -> unit
  (** One atomic load when detached. [label] defaults to
      {!current_label}. *)

  val with_label : string -> (unit -> 'a) -> 'a
  (** Run [f] with the domain-local label scope set — campaign entries
      use their label, [check_each] nests [entry/assertion]. The scope
      does {e not} cross [Domain.spawn]; the parallel engine re-applies
      the coordinator's label inside each worker job. *)

  val current_label : unit -> string
  (** The innermost {!with_label} scope, or [""]. *)

  val sub_label : string -> string
  (** [sub_label n] is ["scope/n"], or just [n] at top level. *)

  val ring : unit -> stamped list
  (** The buffered events, oldest first. *)

  val dropped : unit -> int
  (** Events evicted from the ring since {!attach}. *)

  val json_of_stamped : stamped -> Json.t
  val stamped_of_json : Json.t -> (stamped, string) result
end

(** {1 Solver health watchdog}

    Slope detection over the solver's periodic conflict-driven samples
    ([Sat.Solver.on_sample]): the BMC layer feeds cumulative conflict
    and learnt-clause counts; the watchdog computes their rates over a
    sliding window and, after [p_patience] consecutive windows with both
    rates below threshold, latches "stalled", publishes
    {!Bus.Solver_stalled} once, and invokes [on_stall] (which the BMC
    layer uses to trip the solver's budget early when [p_rebudget] is
    set, handing the query to the retry schedule). Sampling is
    conflict-driven, so a query wedged inside one propagation never
    samples again — that case is left to the budget deadline. *)
module Watchdog : sig
  type policy = {
    p_every : int;  (** sample every N conflicts *)
    p_window : int;  (** slope window, in samples (>= 2) *)
    p_patience : int;  (** consecutive below-threshold windows to stall *)
    p_min_conflicts_per_s : float;
    p_min_learnts_per_s : float;
    p_rebudget : bool;  (** trip the solver budget on stall *)
  }

  val default_policy : policy
  val policy : unit -> policy
  val set_policy : policy -> unit

  val policy_of_string : string -> (policy, string) result
  (** ["every=64,window=4,patience=2,min_cps=100,min_lps=0,rebudget=1"];
      unset keys keep their defaults. *)

  val arm_from_env : unit -> unit
  (** Install the policy from [AUTOCC_WATCHDOG] if set; raises [Failure]
      on a malformed value. *)

  type t

  val create :
    ?policy:policy -> ?on_stall:(cps:float -> lps:float -> unit) -> unit -> t
  (** One instance per solver query ([policy] defaults to the global
      one). *)

  val feed : t -> conflicts:int -> learnts:int -> now:float -> unit
  val stalled : t -> bool
  val conflicts_per_s : t -> float
  (** [nan] until the window fills (same for {!learnts_per_s}). *)

  val learnts_per_s : t -> float
end

(** {1 Prometheus text exposition} *)
module Prometheus : sig
  val sanitize : string -> string
  (** Metric-name mangling: non-[[a-zA-Z0-9_]] becomes ['_'], and
      everything is prefixed [autocc_]. *)

  val render : unit -> string
  (** The whole {!Metrics.snapshot} in Prometheus text format: counters
      and gauges verbatim, histograms as cumulative [_bucket{le=...}] +
      [_sum] + [_count], series reduced to [_count]/[_sum]/[_last]
      gauges. *)

  val of_snapshot : (string * Metrics.value) list -> string

  val write_file : string -> unit
  (** Atomic replace (write to [path ^ ".tmp"], then rename), so a
      scraper never observes a torn snapshot. *)
end

(** A background ticker rewriting the Prometheus snapshot — the
    [--metrics-file] flag. *)
module Exposition : sig
  val start : ?interval_s:float -> string -> unit
  (** Write the snapshot now and then every [interval_s] (default 2.0)
      seconds from a dedicated domain, until {!stop}. Replaces any
      previous ticker. *)

  val stop : unit -> unit
  (** Join the ticker and write one final snapshot. Idempotent; wired to
      {!shutdown}. *)

  val running : unit -> bool
end

(** {1 Cockpit}

    The aggregation model behind [autocc top]: a fold over stamped
    events (normally parsed back from a campaign's [events.jsonl]) into
    one row per label — current depth, verdict, cache hit ratio,
    conflict rate, and an ETA extrapolated from the per-depth solve
    times. Pure state + renderer, so tests drive it by feeding lines. *)
module Cockpit : sig
  type row = {
    ro_label : string;
    mutable ro_goal : int;  (** target depth; [-1] unknown *)
    mutable ro_depth : int;  (** deepest solved depth; [-1] none *)
    mutable ro_times : float list;  (** per-depth seconds, newest first *)
    mutable ro_verdict : string;
        (** ["running"] until a [Job_done]/[Cex_found]/[Unknown] *)
    mutable ro_hits : int;
    mutable ro_misses : int;
    mutable ro_retries : int;
    mutable ro_faults : int;
    mutable ro_cps : float;
    mutable ro_stalled : bool;
    mutable ro_first_ts : float;
    mutable ro_last_ts : float;
    mutable ro_wall : float;
  }

  type t

  val create : unit -> t
  val feed : t -> Bus.stamped -> unit

  val feed_line : t -> string -> unit
  (** Parse one [events.jsonl] line and fold it in; malformed lines are
      counted ({!bad_lines}), not fatal — the file's last line may be
      mid-write. *)

  val rows : t -> row list
  (** Sorted by label. *)

  val events : t -> int
  val bad_lines : t -> int

  val eta_s : row -> float option
  (** Remaining-time estimate for a running row: geometric extrapolation
      of the recorded per-depth times with a clamped growth ratio.
      [None] when the row is finished or has no depth data yet. *)

  val render : ?now:float -> ?note:(string -> string option) -> t -> string
  (** The terminal table: a header (event/cache totals) and one line per
      row. [note] appends an extra annotation per label (used by [top]
      for heartbeat staleness). *)

  val render_json : ?now:float -> ?note:(string -> string option) -> t -> Json.t
  (** The same snapshot as an [autocc.top/1] JSON object (one element of
      ["rows"] per cockpit row, raw numbers, [null] for unknowns) — the
      [autocc top --json] payload for scripting. *)
end

(** {1 File tailing}

    Follow an append-only JSONL file by byte offset — the cross-process
    half of [autocc top]. Torn trailing lines (a writer mid-append) are
    carried to the next poll; a file that shrank (a fresh campaign
    truncated it) restarts the tail from byte zero. *)
module Tail : sig
  type t

  val create : string -> t
  (** [create path] starts a tail at offset 0. The file need not exist
      yet. *)

  val poll : t -> string list
  (** Newly completed lines since the last poll (empty lines filtered),
      or [[]] when the file is absent or unchanged. *)

  val offset : t -> int
  (** The byte offset consumed so far. *)
end

(** {1 Numeric regression diffing}

    The ratio+floor regression gate shared by [bench diff] and
    [autocc diff-runs]: JSON documents are flattened to dotted-path
    numeric leaves and only duration ([*_s], lower-better) and [speedup]
    (higher-better) paths are gated. *)
module Numdiff : sig
  type direction = Lower_better | Higher_better

  val leaves : Json.t -> (string * float) list
  (** Numeric leaves keyed by dotted path (["o2.stats.solve_s"]), in
      document order. *)

  val gate : string -> direction option
  (** Gating direction for a path, decided by its last segment: [None]
      means the leaf is informational only. *)

  val thresholds : unit -> float * float
  (** [(ratio, floor_s)] from [AUTOCC_DIFF_RATIO] (default 1.5) and
      [AUTOCC_DIFF_FLOOR_S] (default 0.02); raises [Failure] on a
      malformed value. *)

  val regressed :
    direction -> ratio:float -> floor:float -> base:float -> fresh:float -> bool
  (** Worse by more than [ratio] AND by more than [floor] — both gates,
      so microsecond leaves don't trip the ratio on scheduler noise. *)
end

(** {1 Run ledger}

    Append-only cross-run provenance: one [autocc.run/1] JSON line per
    CLI/bench invocation in [<dir>/runs.jsonl] (line-flushed; a crash
    loses at most the trailing partial line). Verdict-cache provenance
    records cite {!Ledger.run_id}, so [autocc why] can resolve a cache
    hit back to the producing run's row here. *)
module Ledger : sig
  val schema : string
  (** ["autocc.run/1"]. *)

  type assert_record = {
    a_name : string;
    a_verdict : string;
        (** ["cex"], ["proof"], ["proved"], ["refuted"],
            ["unknown:<reason>"], or a campaign entry status. *)
    a_depth : int;  (** CEX/proof depth; [-1] unknown. *)
    a_wall_s : float;  (** [-1.] unknown. *)
    a_cached : bool;
  }

  type run = {
    r_id : string;
    r_tool : string;  (** [analyze], [prove], [campaign] or [bench]. *)
    r_subject : string;  (** DUT name(s) or bench subcommand. *)
    r_config : string;  (** the {!Bmc.cache_config}-shaped fingerprint *)
    r_dut_hash : string;  (** {!Cache.canon} structural digest, or [""] *)
    r_ts : float;
    r_wall_s : float;
    r_cpu_s : float;
    r_cache_hits : int;
    r_cache_misses : int;
    r_cache_stores : int;
    r_asserts : assert_record list;
    r_artifacts : string list;
  }

  val run_id : unit -> string
  (** This process's run id — generated once, stable for the process
      lifetime (time + pid). *)

  val resolve_dir : ?explicit:string -> unit -> string option
  (** Where the ledger lives: [explicit] if given, else
      [AUTOCC_LEDGER_DIR], else [AUTOCC_CACHE_DIR] (the ledger defaults
      to living beside the verdict cache), else [None]. *)

  val path : string -> string
  (** [path dir] is [dir ^ "/runs.jsonl"]. *)

  val json_of_run : run -> Json.t
  val run_of_json : Json.t -> (run, string) result

  val append : dir:string -> run -> unit
  (** Append one line (creating [dir] and the file as needed) and flush. *)

  val load : string -> run list * int
  (** [load dir] is all parseable runs of [path dir] in file
      (= chronological) order, plus the count of rejected lines.
      Missing file is [([], 0)]. *)

  val find : string -> ref:string -> run option
  (** Resolve a run reference in [dir]: ["~N"] is the Nth newest run
      (["~1"] = latest), anything else an id prefix (newest match
      wins). *)
end

(** {1 Span profiler}

    Fold a recorded Chrome-trace file back into a merged span tree —
    children with the same name at the same stack position aggregate
    their durations — and attribute self time per category (the part of
    the span name before the first ['.']: [sat], [cnf], [opt], [bmc],
    [cache], [explain], ...). Rendered by [autocc profile] as a text
    table or a self-contained flamegraph SVG. *)
module Profile : sig
  type node = {
    pn_name : string;
    mutable pn_total_us : float;
    mutable pn_self_us : float;  (** total minus children (clamped >= 0) *)
    mutable pn_count : int;
    mutable pn_children : node list;
  }

  type t = {
    p_roots : node list;
    p_total_us : float;
        (** Sum of root totals — the attributed time; within 5% of the
            run's wall when the CLI's root span covers the command. *)
    p_wall_us : float;  (** Trace extent: max span end - min span start. *)
    p_categories : (string * float) list;  (** self us per category, desc *)
    p_events : int;
  }

  val of_trace : Json.t -> (t, string) result
  (** Fold a [{"traceEvents": [...]}] document (only ["X"] spans are
      read; instants and counter samples are ignored). *)

  val of_file : string -> (t, string) result

  val table : t -> string
  (** Text rendering: an ["attributed ... of ... wall"] headline, the
      indented span tree, and the per-category self-time breakdown. *)

  val flamegraph_svg : t -> string
  (** A self-contained icicle-layout SVG (no external scripts or fonts);
      hover titles carry exact totals. *)
end

val enabled : unit -> bool
(** True when any face is on (tracing, logging, metrics, or the event
    bus) — the gate instrumented layers use before installing sampling
    hooks. *)

val shutdown : unit -> unit
(** [Exposition.stop], [close_trace], [close_log], [Bus.detach],
    [Metrics.disable] — idempotent; wired to CLI exit. *)

(* Telemetry substrate: spans -> Chrome trace events, metrics registry,
   leveled JSONL logging. Everything here must be cheap when disabled
   (one Atomic.get per call site) and callable from any domain. *)

(* {1 JSON} *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let add_string b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let add_float b f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" f)
    else if Float.is_nan f || Float.abs f = Float.infinity then
      (* JSON has no NaN/inf; null is the least-wrong encoding. *)
      Buffer.add_string b "null"
    else Buffer.add_string b (Printf.sprintf "%.9g" f)

  let rec to_buffer b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f -> add_float b f
    | Str s -> add_string b s
    | List l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            to_buffer b x)
          l;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            add_string b k;
            Buffer.add_char b ':';
            to_buffer b v)
          kvs;
        Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 256 in
    to_buffer b t;
    Buffer.contents b

  exception Parse_error of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' -> Buffer.add_char b '"'; go ()
            | '\\' -> Buffer.add_char b '\\'; go ()
            | '/' -> Buffer.add_char b '/'; go ()
            | 'b' -> Buffer.add_char b '\b'; go ()
            | 'f' -> Buffer.add_char b '\012'; go ()
            | 'n' -> Buffer.add_char b '\n'; go ()
            | 'r' -> Buffer.add_char b '\r'; go ()
            | 't' -> Buffer.add_char b '\t'; go ()
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                (* UTF-8 encode; surrogates decode to U+FFFD. *)
                let code = if code >= 0xd800 && code <= 0xdfff then 0xfffd else code in
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                end;
                go ()
            | _ -> fail "bad escape")
        | c -> Buffer.add_char b c; go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      let rec go () =
        match peek () with
        | Some ('0' .. '9' | '-' | '+') ->
            advance ();
            go ()
        | Some ('.' | 'e' | 'E') ->
            is_float := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      let text = String.sub s start (!pos - start) in
      if !is_float then
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt text with
            | Some f -> Float f
            | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> Str (parse_string ())
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            items []
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            fields []
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None

  let write_file ~path t =
    let oc = open_out path in
    let b = Buffer.create 4096 in
    to_buffer b t;
    Buffer.add_char b '\n';
    output_string oc (Buffer.contents b);
    close_out oc
end

(* {1 Clocks} *)

module Clock = struct
  let wall_s = Unix.gettimeofday

  let epoch = Unix.gettimeofday ()

  let elapsed_us () = (Unix.gettimeofday () -. epoch) *. 1e6

  (* Per-thread CPU: utime+stime from /proc/thread-self/stat (fields 14
     and 15, counted after the parenthesized comm, in USER_HZ ticks —
     100/s on every Linux ABI). Worker domains map 1:1 onto system
     threads, so this is per-domain CPU. Non-Linux falls back to
     process CPU time, which overcounts under parallelism but keeps the
     field meaningful at -j1. *)
  let user_hz = 100.0

  let thread_cpu_s () =
    match open_in "/proc/thread-self/stat" with
    | exception _ -> Sys.time ()
    | ic -> (
        let line = try input_line ic with _ -> "" in
        close_in ic;
        match String.rindex_opt line ')' with
        | None -> Sys.time ()
        | Some i -> (
            let rest = String.sub line (i + 1) (String.length line - i - 1) in
            let fields =
              String.split_on_char ' ' rest |> List.filter (fun s -> s <> "")
            in
            (* fields: state ppid pgrp session tty_nr tpgid flags minflt
               cminflt majflt cmajflt utime stime ... *)
            match (List.nth_opt fields 11, List.nth_opt fields 12) with
            | Some ut, Some st -> (
                match (float_of_string_opt ut, float_of_string_opt st) with
                | Some u, Some s -> (u +. s) /. user_hz
                | _ -> Sys.time ())
            | _ -> Sys.time ()))
end

let domain_id () = (Domain.self () :> int)

(* {1 Structured logging} *)

type level = Error | Warn | Info | Debug

let level_to_int = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string = function
  | "error" -> Ok Error
  | "warn" | "warning" -> Ok Warn
  | "info" -> Ok Info
  | "debug" -> Ok Debug
  | other -> Error (Printf.sprintf "unknown log level %S (error|warn|info|debug)" other)

let cur_level = Atomic.make (level_to_int Info)
let set_level l = Atomic.set cur_level (level_to_int l)

let get_level () =
  match Atomic.get cur_level with
  | 0 -> Error
  | 1 -> Warn
  | 2 -> Info
  | _ -> Debug

(* The one mutex-guarded sink every domain logs through. [log_on] is the
   fast-path gate so a disabled log costs one atomic load. *)
let log_on = Atomic.make false
let log_mutex = Mutex.create ()
let log_sink : (string -> unit) option ref = ref None
let log_channel : out_channel option ref = ref None

let close_log_locked () =
  (match !log_channel with
  | Some oc ->
      (try close_out oc with _ -> ());
      log_channel := None
  | None -> ());
  log_sink := None;
  Atomic.set log_on false

let close_log () =
  Mutex.lock log_mutex;
  close_log_locked ();
  Mutex.unlock log_mutex

let set_log_sink sink =
  Mutex.lock log_mutex;
  close_log_locked ();
  (match sink with
  | Some _ ->
      log_sink := sink;
      Atomic.set log_on true
  | None -> ());
  Mutex.unlock log_mutex

let log_to_file path =
  Mutex.lock log_mutex;
  close_log_locked ();
  let oc = open_out path in
  log_channel := Some oc;
  log_sink :=
    Some
      (fun line ->
        output_string oc line;
        output_char oc '\n');
  Atomic.set log_on true;
  Mutex.unlock log_mutex

let logging level =
  Atomic.get log_on && level_to_int level <= Atomic.get cur_level

let log ?(attrs = []) level event =
  if logging level then begin
    let line =
      Json.to_string
        (Json.Obj
           (("ts_us", Json.Float (Clock.elapsed_us ()))
           :: ("level", Json.Str (level_to_string level))
           :: ("tid", Json.Int (domain_id ()))
           :: ("event", Json.Str event)
           :: attrs))
    in
    Mutex.lock log_mutex;
    (match !log_sink with Some sink -> (try sink line with _ -> ()) | None -> ());
    Mutex.unlock log_mutex
  end

(* {1 Tracing} *)

type trace_event = {
  ev_name : string;
  ev_ph : char; (* 'X' complete, 'i' instant, 'C' counter *)
  ev_ts : float; (* microseconds *)
  ev_dur : float; (* microseconds; complete events only *)
  ev_tid : int;
  ev_args : (string * Json.t) list;
}

let tracing_on = Atomic.make false
let trace_mutex = Mutex.create ()
let trace_path : string option ref = ref None
let trace_events : trace_event list ref = ref [] (* newest first *)

let tracing () = Atomic.get tracing_on

let trace_to_file path =
  Mutex.lock trace_mutex;
  trace_path := Some path;
  trace_events := [];
  Atomic.set tracing_on true;
  Mutex.unlock trace_mutex

let record ev =
  Mutex.lock trace_mutex;
  trace_events := ev :: !trace_events;
  Mutex.unlock trace_mutex

let category name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let json_of_event ev =
  let base =
    [
      ("name", Json.Str ev.ev_name);
      ("cat", Json.Str (category ev.ev_name));
      ("ph", Json.Str (String.make 1 ev.ev_ph));
      ("ts", Json.Float ev.ev_ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.ev_tid);
    ]
  in
  let base = if ev.ev_ph = 'X' then base @ [ ("dur", Json.Float ev.ev_dur) ] else base in
  let base = if ev.ev_ph = 'i' then base @ [ ("s", Json.Str "t") ] else base in
  Json.Obj (if ev.ev_args = [] then base else base @ [ ("args", Json.Obj ev.ev_args) ])

let trace_json () =
  Mutex.lock trace_mutex;
  let evs = List.rev !trace_events in
  Mutex.unlock trace_mutex;
  Json.Obj
    [
      ("traceEvents", Json.List (List.map json_of_event evs));
      ("displayTimeUnit", Json.Str "ms");
    ]

let close_trace () =
  if Atomic.get tracing_on then begin
    Atomic.set tracing_on false;
    let j = trace_json () in
    Mutex.lock trace_mutex;
    let path = !trace_path in
    trace_path := None;
    Mutex.unlock trace_mutex;
    match path with Some p -> Json.write_file ~path:p j | None -> ()
  end

let span ?(attrs = []) name f =
  if not (Atomic.get tracing_on) then f ()
  else begin
    let t0 = Clock.elapsed_us () in
    let finish () =
      record
        {
          ev_name = name;
          ev_ph = 'X';
          ev_ts = t0;
          ev_dur = Clock.elapsed_us () -. t0;
          ev_tid = domain_id ();
          ev_args = attrs;
        }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

let instant ?(attrs = []) name =
  if Atomic.get tracing_on then
    record
      {
        ev_name = name;
        ev_ph = 'i';
        ev_ts = Clock.elapsed_us ();
        ev_dur = 0.;
        ev_tid = domain_id ();
        ev_args = attrs;
      }

let counter_event name values =
  if Atomic.get tracing_on then
    record
      {
        ev_name = name;
        ev_ph = 'C';
        ev_ts = Clock.elapsed_us ();
        ev_dur = 0.;
        ev_tid = domain_id ();
        ev_args = List.map (fun (k, v) -> (k, Json.Float v)) values;
      }

(* {1 Metrics} *)

module Metrics = struct
  type counter = int Atomic.t
  type gauge = float Atomic.t

  type hist = {
    h_buckets : float array;
    h_counts : int array; (* length = buckets + 1; overflow last *)
    mutable h_sum : float;
    mutable h_count : int;
  }

  type histogram = hist
  type series = float list ref (* newest first *)

  type kind =
    | Kcounter of counter
    | Kgauge of gauge
    | Khist of hist
    | Kseries of series

  let on = Atomic.make false
  let enable () = Atomic.set on true
  let disable () = Atomic.set on false
  let enabled () = Atomic.get on

  let registry : (string, kind) Hashtbl.t = Hashtbl.create 64
  let reg_mutex = Mutex.create ()

  let get_or_create name mk describe =
    Mutex.lock reg_mutex;
    let r =
      match Hashtbl.find_opt registry name with
      | Some k -> k
      | None ->
          let k = mk () in
          Hashtbl.replace registry name k;
          k
    in
    Mutex.unlock reg_mutex;
    match describe r with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Obs.Metrics: %s exists with another kind" name)

  let counter name =
    get_or_create name
      (fun () -> Kcounter (Atomic.make 0))
      (function Kcounter c -> Some c | _ -> None)

  let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c n)

  let gauge name =
    get_or_create name
      (fun () -> Kgauge (Atomic.make 0.))
      (function Kgauge g -> Some g | _ -> None)

  let set g v = if Atomic.get on then Atomic.set g v

  let rec max_gauge g v =
    if Atomic.get on then begin
      let cur = Atomic.get g in
      if v > cur && not (Atomic.compare_and_set g cur v) then max_gauge g v
    end

  let default_buckets =
    [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10.; 100.; 1000. |]

  let histogram ?(buckets = default_buckets) name =
    let ok = ref true in
    Array.iteri (fun i b -> if i > 0 && b <= buckets.(i - 1) then ok := false) buckets;
    if (not !ok) || Array.length buckets = 0 then
      invalid_arg "Obs.Metrics.histogram: buckets must be strictly increasing";
    get_or_create name
      (fun () ->
        Khist
          {
            h_buckets = Array.copy buckets;
            h_counts = Array.make (Array.length buckets + 1) 0;
            h_sum = 0.;
            h_count = 0;
          })
      (function Khist h -> Some h | _ -> None)

  let observe h v =
    if Atomic.get on then begin
      Mutex.lock reg_mutex;
      let n = Array.length h.h_buckets in
      let rec idx i = if i >= n then n else if v <= h.h_buckets.(i) then i else idx (i + 1) in
      let i = idx 0 in
      h.h_counts.(i) <- h.h_counts.(i) + 1;
      h.h_sum <- h.h_sum +. v;
      h.h_count <- h.h_count + 1;
      Mutex.unlock reg_mutex
    end

  let series name =
    get_or_create name
      (fun () -> Kseries (ref []))
      (function Kseries s -> Some s | _ -> None)

  let record s v =
    if Atomic.get on then begin
      Mutex.lock reg_mutex;
      s := v :: !s;
      Mutex.unlock reg_mutex
    end

  type value =
    | Counter of int
    | Gauge of float
    | Histogram of {
        buckets : float array;
        counts : int array;
        sum : float;
        count : int;
      }
    | Series of float array

  let snapshot () =
    Mutex.lock reg_mutex;
    let items =
      Hashtbl.fold
        (fun name k acc ->
          let v =
            match k with
            | Kcounter c -> Counter (Atomic.get c)
            | Kgauge g -> Gauge (Atomic.get g)
            | Khist h ->
                Histogram
                  {
                    buckets = Array.copy h.h_buckets;
                    counts = Array.copy h.h_counts;
                    sum = h.h_sum;
                    count = h.h_count;
                  }
            | Kseries s -> Series (Array.of_list (List.rev !s))
          in
          (name, v) :: acc)
        registry []
    in
    Mutex.unlock reg_mutex;
    List.sort (fun (a, _) (b, _) -> compare a b) items

  let find name = List.assoc_opt name (snapshot ())

  let reset () =
    Mutex.lock reg_mutex;
    Hashtbl.iter
      (fun _ k ->
        match k with
        | Kcounter c -> Atomic.set c 0
        | Kgauge g -> Atomic.set g 0.
        | Khist h ->
            Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
            h.h_sum <- 0.;
            h.h_count <- 0
        | Kseries s -> s := [])
      registry;
    Mutex.unlock reg_mutex

  let json_of_value = function
    | Counter n -> Json.Int n
    | Gauge v -> Json.Float v
    | Histogram { buckets; counts; sum; count } ->
        Json.Obj
          [
            ("buckets", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) buckets)));
            ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) counts)));
            ("sum", Json.Float sum);
            ("count", Json.Int count);
          ]
    | Series vs ->
        Json.List (Array.to_list (Array.map (fun v -> Json.Float v) vs))

  let json_of_snapshot () =
    Json.Obj (List.map (fun (name, v) -> (name, json_of_value v)) (snapshot ()))
end

let enabled () = tracing () || Atomic.get log_on || Metrics.enabled ()

let shutdown () =
  close_trace ();
  close_log ();
  Metrics.disable ()

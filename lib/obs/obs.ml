(* Telemetry substrate: spans -> Chrome trace events, metrics registry,
   leveled JSONL logging. Everything here must be cheap when disabled
   (one Atomic.get per call site) and callable from any domain. *)

(* {1 JSON} *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let add_string b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let add_float b f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" f)
    else if Float.is_nan f || Float.abs f = Float.infinity then
      (* JSON has no NaN/inf; null is the least-wrong encoding. *)
      Buffer.add_string b "null"
    else Buffer.add_string b (Printf.sprintf "%.9g" f)

  let rec to_buffer b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f -> add_float b f
    | Str s -> add_string b s
    | List l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            to_buffer b x)
          l;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            add_string b k;
            Buffer.add_char b ':';
            to_buffer b v)
          kvs;
        Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 256 in
    to_buffer b t;
    Buffer.contents b

  exception Parse_error of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' -> Buffer.add_char b '"'; go ()
            | '\\' -> Buffer.add_char b '\\'; go ()
            | '/' -> Buffer.add_char b '/'; go ()
            | 'b' -> Buffer.add_char b '\b'; go ()
            | 'f' -> Buffer.add_char b '\012'; go ()
            | 'n' -> Buffer.add_char b '\n'; go ()
            | 'r' -> Buffer.add_char b '\r'; go ()
            | 't' -> Buffer.add_char b '\t'; go ()
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                (* UTF-8 encode; surrogates decode to U+FFFD. *)
                let code = if code >= 0xd800 && code <= 0xdfff then 0xfffd else code in
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                end;
                go ()
            | _ -> fail "bad escape")
        | c -> Buffer.add_char b c; go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      let rec go () =
        match peek () with
        | Some ('0' .. '9' | '-' | '+') ->
            advance ();
            go ()
        | Some ('.' | 'e' | 'E') ->
            is_float := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      let text = String.sub s start (!pos - start) in
      if !is_float then
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt text with
            | Some f -> Float f
            | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> Str (parse_string ())
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            items []
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            fields []
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None

  let write_file ~path t =
    let oc = open_out path in
    let b = Buffer.create 4096 in
    to_buffer b t;
    Buffer.add_char b '\n';
    output_string oc (Buffer.contents b);
    close_out oc
end

(* {1 Clocks} *)

module Clock = struct
  let wall_s = Unix.gettimeofday

  let epoch = Unix.gettimeofday ()

  let elapsed_us () = (Unix.gettimeofday () -. epoch) *. 1e6

  (* Per-thread CPU: utime+stime from /proc/thread-self/stat (fields 14
     and 15, counted after the parenthesized comm, in USER_HZ ticks —
     100/s on every Linux ABI). Worker domains map 1:1 onto system
     threads, so this is per-domain CPU. Non-Linux falls back to
     process CPU time, which overcounts under parallelism but keeps the
     field meaningful at -j1. *)
  let user_hz = 100.0

  let thread_cpu_s () =
    match open_in "/proc/thread-self/stat" with
    | exception _ -> Sys.time ()
    | ic -> (
        let line = try input_line ic with _ -> "" in
        close_in ic;
        match String.rindex_opt line ')' with
        | None -> Sys.time ()
        | Some i -> (
            let rest = String.sub line (i + 1) (String.length line - i - 1) in
            let fields =
              String.split_on_char ' ' rest |> List.filter (fun s -> s <> "")
            in
            (* fields: state ppid pgrp session tty_nr tpgid flags minflt
               cminflt majflt cmajflt utime stime ... *)
            match (List.nth_opt fields 11, List.nth_opt fields 12) with
            | Some ut, Some st -> (
                match (float_of_string_opt ut, float_of_string_opt st) with
                | Some u, Some s -> (u +. s) /. user_hz
                | _ -> Sys.time ())
            | _ -> Sys.time ()))
end

let domain_id () = (Domain.self () :> int)

(* {1 Atomic line appends}

   The jsonl sinks (events.jsonl, runs.jsonl) used to go through
   buffered out_channels, which is fine for a single process but tears
   lines once service workers append from separate processes: stdio may
   split one line across several write(2) calls, and two writers
   interleave the halves. POSIX guarantees that a single write(2) on an
   O_APPEND descriptor lands contiguously at the (atomically advanced)
   end of file, so the fix is structural: every line is emitted as
   exactly one write of "payload\n". *)

module Appender = struct
  type t = { fd : Unix.file_descr; mutable closed : bool }

  let open_path path =
    {
      fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644;
      closed = false;
    }

  (* One write(2) per line. A short write on a regular file only happens
     under pathological conditions (ENOSPC, rlimit); we finish the tail
     rather than drop bytes, accepting that only the first write is
     tear-free. *)
  let write_all fd b pos len =
    let rec go pos len =
      if len > 0 then begin
        let n = Unix.single_write fd b pos len in
        go (pos + n) (len - n)
      end
    in
    go pos len

  let line t s =
    if t.closed then invalid_arg "Obs.Appender.line: closed";
    let n = String.length s in
    let b = Bytes.create (n + 1) in
    Bytes.blit_string s 0 b 0 n;
    Bytes.set b n '\n';
    write_all t.fd b 0 (n + 1)

  let json_line t j = line t (Json.to_string j)

  let close t =
    if not t.closed then begin
      t.closed <- true;
      try Unix.close t.fd with Unix.Unix_error _ -> ()
    end

  let with_path path f =
    let t = open_path path in
    Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
end

(* {1 Structured logging} *)

type level = Error | Warn | Info | Debug

let level_to_int = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string = function
  | "error" -> Ok Error
  | "warn" | "warning" -> Ok Warn
  | "info" -> Ok Info
  | "debug" -> Ok Debug
  | other -> Error (Printf.sprintf "unknown log level %S (error|warn|info|debug)" other)

let cur_level = Atomic.make (level_to_int Info)
let set_level l = Atomic.set cur_level (level_to_int l)

let get_level () =
  match Atomic.get cur_level with
  | 0 -> Error
  | 1 -> Warn
  | 2 -> Info
  | _ -> Debug

(* The one mutex-guarded sink every domain logs through. [log_on] is the
   fast-path gate so a disabled log costs one atomic load. *)
let log_on = Atomic.make false
let log_mutex = Mutex.create ()
let log_sink : (string -> unit) option ref = ref None
let log_channel : out_channel option ref = ref None

let close_log_locked () =
  (match !log_channel with
  | Some oc ->
      (try close_out oc with _ -> ());
      log_channel := None
  | None -> ());
  log_sink := None;
  Atomic.set log_on false

let close_log () =
  Mutex.lock log_mutex;
  close_log_locked ();
  Mutex.unlock log_mutex

let set_log_sink sink =
  Mutex.lock log_mutex;
  close_log_locked ();
  (match sink with
  | Some _ ->
      log_sink := sink;
      Atomic.set log_on true
  | None -> ());
  Mutex.unlock log_mutex

let log_to_file path =
  Mutex.lock log_mutex;
  close_log_locked ();
  let oc = open_out path in
  log_channel := Some oc;
  log_sink :=
    Some
      (fun line ->
        output_string oc line;
        output_char oc '\n');
  Atomic.set log_on true;
  Mutex.unlock log_mutex

let logging level =
  Atomic.get log_on && level_to_int level <= Atomic.get cur_level

let log ?(attrs = []) level event =
  if logging level then begin
    let line =
      Json.to_string
        (Json.Obj
           (("ts_us", Json.Float (Clock.elapsed_us ()))
           :: ("level", Json.Str (level_to_string level))
           :: ("tid", Json.Int (domain_id ()))
           :: ("event", Json.Str event)
           :: attrs))
    in
    Mutex.lock log_mutex;
    (match !log_sink with Some sink -> (try sink line with _ -> ()) | None -> ());
    Mutex.unlock log_mutex
  end

(* {1 Tracing} *)

type trace_event = {
  ev_name : string;
  ev_ph : char; (* 'X' complete, 'i' instant, 'C' counter *)
  ev_ts : float; (* microseconds *)
  ev_dur : float; (* microseconds; complete events only *)
  ev_tid : int;
  ev_args : (string * Json.t) list;
}

let tracing_on = Atomic.make false
let trace_mutex = Mutex.create ()
let trace_path : string option ref = ref None
let trace_events : trace_event list ref = ref [] (* newest first *)

let tracing () = Atomic.get tracing_on

let trace_to_file path =
  Mutex.lock trace_mutex;
  trace_path := Some path;
  trace_events := [];
  Atomic.set tracing_on true;
  Mutex.unlock trace_mutex

let record ev =
  Mutex.lock trace_mutex;
  trace_events := ev :: !trace_events;
  Mutex.unlock trace_mutex

let category name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let json_of_event ev =
  let base =
    [
      ("name", Json.Str ev.ev_name);
      ("cat", Json.Str (category ev.ev_name));
      ("ph", Json.Str (String.make 1 ev.ev_ph));
      ("ts", Json.Float ev.ev_ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.ev_tid);
    ]
  in
  let base = if ev.ev_ph = 'X' then base @ [ ("dur", Json.Float ev.ev_dur) ] else base in
  let base = if ev.ev_ph = 'i' then base @ [ ("s", Json.Str "t") ] else base in
  Json.Obj (if ev.ev_args = [] then base else base @ [ ("args", Json.Obj ev.ev_args) ])

let trace_json () =
  Mutex.lock trace_mutex;
  let evs = List.rev !trace_events in
  Mutex.unlock trace_mutex;
  Json.Obj
    [
      ("traceEvents", Json.List (List.map json_of_event evs));
      ("displayTimeUnit", Json.Str "ms");
    ]

let close_trace () =
  if Atomic.get tracing_on then begin
    Atomic.set tracing_on false;
    let j = trace_json () in
    Mutex.lock trace_mutex;
    let path = !trace_path in
    trace_path := None;
    Mutex.unlock trace_mutex;
    match path with Some p -> Json.write_file ~path:p j | None -> ()
  end

let span ?(attrs = []) name f =
  if not (Atomic.get tracing_on) then f ()
  else begin
    let t0 = Clock.elapsed_us () in
    let finish () =
      record
        {
          ev_name = name;
          ev_ph = 'X';
          ev_ts = t0;
          ev_dur = Clock.elapsed_us () -. t0;
          ev_tid = domain_id ();
          ev_args = attrs;
        }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

let instant ?(attrs = []) name =
  if Atomic.get tracing_on then
    record
      {
        ev_name = name;
        ev_ph = 'i';
        ev_ts = Clock.elapsed_us ();
        ev_dur = 0.;
        ev_tid = domain_id ();
        ev_args = attrs;
      }

let counter_event name values =
  if Atomic.get tracing_on then
    record
      {
        ev_name = name;
        ev_ph = 'C';
        ev_ts = Clock.elapsed_us ();
        ev_dur = 0.;
        ev_tid = domain_id ();
        ev_args = List.map (fun (k, v) -> (k, Json.Float v)) values;
      }

(* {1 Metrics} *)

module Metrics = struct
  type counter = int Atomic.t
  type gauge = float Atomic.t

  type hist = {
    h_buckets : float array;
    h_counts : int array; (* length = buckets + 1; overflow last *)
    mutable h_sum : float;
    mutable h_count : int;
  }

  type histogram = hist
  type series = float list ref (* newest first *)

  type kind =
    | Kcounter of counter
    | Kgauge of gauge
    | Khist of hist
    | Kseries of series

  let on = Atomic.make false
  let enable () = Atomic.set on true
  let disable () = Atomic.set on false
  let enabled () = Atomic.get on

  let registry : (string, kind) Hashtbl.t = Hashtbl.create 64
  let reg_mutex = Mutex.create ()

  let get_or_create name mk describe =
    Mutex.lock reg_mutex;
    let r =
      match Hashtbl.find_opt registry name with
      | Some k -> k
      | None ->
          let k = mk () in
          Hashtbl.replace registry name k;
          k
    in
    Mutex.unlock reg_mutex;
    match describe r with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Obs.Metrics: %s exists with another kind" name)

  let counter name =
    get_or_create name
      (fun () -> Kcounter (Atomic.make 0))
      (function Kcounter c -> Some c | _ -> None)

  let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c n)

  let gauge name =
    get_or_create name
      (fun () -> Kgauge (Atomic.make 0.))
      (function Kgauge g -> Some g | _ -> None)

  let set g v = if Atomic.get on then Atomic.set g v

  let rec max_gauge g v =
    if Atomic.get on then begin
      let cur = Atomic.get g in
      if v > cur && not (Atomic.compare_and_set g cur v) then max_gauge g v
    end

  let default_buckets =
    [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10.; 100.; 1000. |]

  let histogram ?(buckets = default_buckets) name =
    let ok = ref true in
    Array.iteri (fun i b -> if i > 0 && b <= buckets.(i - 1) then ok := false) buckets;
    if (not !ok) || Array.length buckets = 0 then
      invalid_arg "Obs.Metrics.histogram: buckets must be strictly increasing";
    get_or_create name
      (fun () ->
        Khist
          {
            h_buckets = Array.copy buckets;
            h_counts = Array.make (Array.length buckets + 1) 0;
            h_sum = 0.;
            h_count = 0;
          })
      (function Khist h -> Some h | _ -> None)

  let observe h v =
    if Atomic.get on then begin
      Mutex.lock reg_mutex;
      let n = Array.length h.h_buckets in
      let rec idx i = if i >= n then n else if v <= h.h_buckets.(i) then i else idx (i + 1) in
      let i = idx 0 in
      h.h_counts.(i) <- h.h_counts.(i) + 1;
      h.h_sum <- h.h_sum +. v;
      h.h_count <- h.h_count + 1;
      Mutex.unlock reg_mutex
    end

  let series name =
    get_or_create name
      (fun () -> Kseries (ref []))
      (function Kseries s -> Some s | _ -> None)

  let record s v =
    if Atomic.get on then begin
      Mutex.lock reg_mutex;
      s := v :: !s;
      Mutex.unlock reg_mutex
    end

  type value =
    | Counter of int
    | Gauge of float
    | Histogram of {
        buckets : float array;
        counts : int array;
        sum : float;
        count : int;
      }
    | Series of float array

  let snapshot () =
    Mutex.lock reg_mutex;
    let items =
      Hashtbl.fold
        (fun name k acc ->
          let v =
            match k with
            | Kcounter c -> Counter (Atomic.get c)
            | Kgauge g -> Gauge (Atomic.get g)
            | Khist h ->
                Histogram
                  {
                    buckets = Array.copy h.h_buckets;
                    counts = Array.copy h.h_counts;
                    sum = h.h_sum;
                    count = h.h_count;
                  }
            | Kseries s -> Series (Array.of_list (List.rev !s))
          in
          (name, v) :: acc)
        registry []
    in
    Mutex.unlock reg_mutex;
    List.sort (fun (a, _) (b, _) -> compare a b) items

  let find name = List.assoc_opt name (snapshot ())

  let reset () =
    Mutex.lock reg_mutex;
    Hashtbl.iter
      (fun _ k ->
        match k with
        | Kcounter c -> Atomic.set c 0
        | Kgauge g -> Atomic.set g 0.
        | Khist h ->
            Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
            h.h_sum <- 0.;
            h.h_count <- 0
        | Kseries s -> s := [])
      registry;
    Mutex.unlock reg_mutex

  let json_of_value = function
    | Counter n -> Json.Int n
    | Gauge v -> Json.Float v
    | Histogram { buckets; counts; sum; count } ->
        Json.Obj
          [
            ("buckets", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) buckets)));
            ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) counts)));
            ("sum", Json.Float sum);
            ("count", Json.Int count);
          ]
    | Series vs ->
        Json.List (Array.to_list (Array.map (fun v -> Json.Float v) vs))

  let json_of_snapshot () =
    Json.Obj (List.map (fun (name, v) -> (name, json_of_value v)) (snapshot ()))
end

(* {1 Event bus}

   Structured, typed events for live campaign observability. Publishers
   (BMC depth loop, the parallel engine, the cache, campaign drivers)
   call {!Bus.publish}; when the bus is detached that is one atomic
   load. When attached, every event is stamped (monotone sequence
   number, wall-clock timestamp, domain id, the current label scope)
   under one mutex and lands in a bounded in-process ring buffer and —
   when a file sink is attached — as one JSON line appended and flushed
   immediately, so a crash loses at most the event being written and a
   separate process can tail the file with no IPC. *)

module Bus = struct
  type event =
    | Depth_solved of { depth : int; seconds : float }
    | Cex_found of { depth : int }
    | Cache_hit
    | Cache_miss
    | Retry of { attempt : int; reason : string }
    | Unknown of { reason : string }
    | Fault_injected of { site : string }
    | Job_start of { goal_depth : int }
    | Job_done of { verdict : string; wall_s : float }
    | Solver_progress of {
        conflicts : int;
        learnts : int;
        conflicts_per_s : float;
      }
    | Solver_stalled of { conflicts_per_s : float; learnts_per_s : float }
    | Heartbeat

  type stamped = { seq : int; ts : float; tid : int; label : string; ev : event }

  (* The label scope names whose work the events describe (a campaign
     entry, then entry/assertion inside [check_each]). It is
     domain-local: worker domains must re-establish it — [Parallel]
     captures the coordinator's label when it builds its job wrappers. *)
  let label_key = Domain.DLS.new_key (fun () -> "")
  let current_label () = Domain.DLS.get label_key

  let with_label label f =
    let old = Domain.DLS.get label_key in
    Domain.DLS.set label_key label;
    Fun.protect ~finally:(fun () -> Domain.DLS.set label_key old) f

  let sub_label name =
    match current_label () with "" -> name | l -> l ^ "/" ^ name

  let on = Atomic.make false
  let enabled () = Atomic.get on
  let bus_mutex = Mutex.create ()
  let seq = ref 0
  let ring_buf : stamped array ref = ref [||]
  let ring_start = ref 0
  let ring_len = ref 0
  let dropped_count = ref 0

  (* O_APPEND + single-write line emission: service workers from
     separate processes append to the same events.jsonl, and buffered
     channels would interleave partial lines. *)
  let sink : Appender.t option ref = ref None

  let type_name = function
    | Depth_solved _ -> "depth_solved"
    | Cex_found _ -> "cex_found"
    | Cache_hit -> "cache_hit"
    | Cache_miss -> "cache_miss"
    | Retry _ -> "retry"
    | Unknown _ -> "unknown"
    | Fault_injected _ -> "fault_injected"
    | Job_start _ -> "job_start"
    | Job_done _ -> "job_done"
    | Solver_progress _ -> "solver_progress"
    | Solver_stalled _ -> "solver_stalled"
    | Heartbeat -> "heartbeat"

  let payload = function
    | Depth_solved { depth; seconds } ->
        [ ("depth", Json.Int depth); ("seconds", Json.Float seconds) ]
    | Cex_found { depth } -> [ ("depth", Json.Int depth) ]
    | Cache_hit | Cache_miss | Heartbeat -> []
    | Retry { attempt; reason } ->
        [ ("attempt", Json.Int attempt); ("reason", Json.Str reason) ]
    | Unknown { reason } -> [ ("reason", Json.Str reason) ]
    | Fault_injected { site } -> [ ("site", Json.Str site) ]
    | Job_start { goal_depth } -> [ ("goal_depth", Json.Int goal_depth) ]
    | Job_done { verdict; wall_s } ->
        [ ("verdict", Json.Str verdict); ("wall_s", Json.Float wall_s) ]
    | Solver_progress { conflicts; learnts; conflicts_per_s } ->
        [
          ("conflicts", Json.Int conflicts);
          ("learnts", Json.Int learnts);
          ("conflicts_per_s", Json.Float conflicts_per_s);
        ]
    | Solver_stalled { conflicts_per_s; learnts_per_s } ->
        [
          ("conflicts_per_s", Json.Float conflicts_per_s);
          ("learnts_per_s", Json.Float learnts_per_s);
        ]

  let json_of_stamped st =
    Json.Obj
      (("seq", Json.Int st.seq)
      :: ("ts", Json.Float st.ts)
      :: ("tid", Json.Int st.tid)
      :: ("label", Json.Str st.label)
      :: ("type", Json.Str (type_name st.ev))
      :: payload st.ev)

  let stamped_of_json j =
    let str name =
      match Json.member name j with
      | Some (Json.Str s) -> Ok s
      | _ -> Error (Printf.sprintf "missing string field %S" name)
    in
    let int name =
      match Json.member name j with
      | Some (Json.Int i) -> Ok i
      | _ -> Error (Printf.sprintf "missing int field %S" name)
    in
    let num name =
      match Json.member name j with
      | Some (Json.Float f) -> Ok f
      | Some (Json.Int i) -> Ok (float_of_int i)
      | _ -> Error (Printf.sprintf "missing numeric field %S" name)
    in
    let ( let* ) = Result.bind in
    let* seq = int "seq" in
    let* ts = num "ts" in
    let* tid = int "tid" in
    let* label = str "label" in
    let* ty = str "type" in
    let* ev =
      match ty with
      | "depth_solved" ->
          let* depth = int "depth" in
          let* seconds = num "seconds" in
          Ok (Depth_solved { depth; seconds })
      | "cex_found" ->
          let* depth = int "depth" in
          Ok (Cex_found { depth })
      | "cache_hit" -> Ok Cache_hit
      | "cache_miss" -> Ok Cache_miss
      | "retry" ->
          let* attempt = int "attempt" in
          let* reason = str "reason" in
          Ok (Retry { attempt; reason })
      | "unknown" ->
          let* reason = str "reason" in
          Ok (Unknown { reason })
      | "fault_injected" ->
          let* site = str "site" in
          Ok (Fault_injected { site })
      | "job_start" ->
          let* goal_depth = int "goal_depth" in
          Ok (Job_start { goal_depth })
      | "job_done" ->
          let* verdict = str "verdict" in
          let* wall_s = num "wall_s" in
          Ok (Job_done { verdict; wall_s })
      | "solver_progress" ->
          let* conflicts = int "conflicts" in
          let* learnts = int "learnts" in
          let* conflicts_per_s = num "conflicts_per_s" in
          Ok (Solver_progress { conflicts; learnts; conflicts_per_s })
      | "solver_stalled" ->
          let* conflicts_per_s = num "conflicts_per_s" in
          let* learnts_per_s = num "learnts_per_s" in
          Ok (Solver_stalled { conflicts_per_s; learnts_per_s })
      | "heartbeat" -> Ok Heartbeat
      | other -> Error (Printf.sprintf "unknown event type %S" other)
    in
    Ok { seq; ts; tid; label; ev }

  (* Overflow drops used to be invisible outside {!dropped}; surfacing
     them in the metrics registry puts them on the Prometheus exposition
     where a scraper can alert on ring under-sizing. *)
  let m_dropped = lazy (Metrics.counter "bus.dropped_events")

  let push_locked st =
    let buf = !ring_buf in
    let cap = Array.length buf in
    if cap > 0 then
      if !ring_len < cap then begin
        buf.((!ring_start + !ring_len) mod cap) <- st;
        incr ring_len
      end
      else begin
        (* Full: overwrite the oldest. The file sink (when attached)
           still has it; only the in-process view drops. *)
        buf.(!ring_start) <- st;
        ring_start := (!ring_start + 1) mod cap;
        incr dropped_count;
        Metrics.add (Lazy.force m_dropped) 1
      end

  let publish ?label ev =
    if Atomic.get on then begin
      let label = match label with Some l -> l | None -> current_label () in
      let tid = domain_id () in
      Mutex.lock bus_mutex;
      incr seq;
      let st = { seq = !seq; ts = Clock.wall_s (); tid; label; ev } in
      push_locked st;
      (match !sink with
      | Some ap -> (
          try Appender.json_line ap (json_of_stamped st)
          with Sys_error _ | Unix.Unix_error _ ->
            Appender.close ap;
            sink := None)
      | None -> ());
      Mutex.unlock bus_mutex
    end

  let attach ?(ring_capacity = 1024) ?file () =
    if ring_capacity <= 0 then
      invalid_arg "Obs.Bus.attach: ring_capacity must be positive";
    Mutex.lock bus_mutex;
    (match !sink with Some ap -> Appender.close ap | None -> ());
    let dummy =
      { seq = 0; ts = 0.; tid = 0; label = ""; ev = Heartbeat }
    in
    ring_buf := Array.make ring_capacity dummy;
    ring_start := 0;
    ring_len := 0;
    dropped_count := 0;
    (* Each attach opens a fresh run: seq restarts at 1, which is how
       readers of a shared events.jsonl (Cockpit, validators) detect a
       process boundary after --resume. *)
    seq := 0;
    sink := Option.map Appender.open_path file;
    Atomic.set on true;
    Mutex.unlock bus_mutex

  let detach () =
    if Atomic.get on then begin
      Atomic.set on false;
      Mutex.lock bus_mutex;
      (match !sink with Some ap -> Appender.close ap | None -> ());
      sink := None;
      Mutex.unlock bus_mutex
    end

  let ring () =
    Mutex.lock bus_mutex;
    let buf = !ring_buf in
    let cap = Array.length buf in
    let r =
      List.init !ring_len (fun i -> buf.((!ring_start + i) mod cap))
    in
    Mutex.unlock bus_mutex;
    r

  let dropped () =
    Mutex.lock bus_mutex;
    let d = !dropped_count in
    Mutex.unlock bus_mutex;
    d
end

(* {1 Solver health watchdog}

   Slope detection over the solver's periodic samples: the BMC layer
   feeds (cumulative conflicts, cumulative learnt clauses, now) every
   [p_every] conflicts; the watchdog computes conflict-rate and
   learnt-growth slopes over a sliding window of those samples and
   latches "stalled" after [p_patience] consecutive windows with both
   slopes below threshold. Because sampling is conflict-driven, a query
   whose conflict rate merely collapses is caught; one wedged inside a
   single propagation never samples again and is left to the budget
   deadline / stop hook. *)

module Watchdog = struct
  type policy = {
    p_every : int;
    p_window : int;
    p_patience : int;
    p_min_conflicts_per_s : float;
    p_min_learnts_per_s : float;
    p_rebudget : bool;
  }

  let default_policy =
    {
      p_every = 1024;
      p_window = 4;
      p_patience = 4;
      p_min_conflicts_per_s = 25.;
      p_min_learnts_per_s = 25.;
      p_rebudget = false;
    }

  let current = ref default_policy
  let policy () = !current
  let set_policy p = current := p

  (* "every=64,window=4,patience=2,min_cps=100,min_lps=0,rebudget=1" —
     unset keys keep their default. *)
  let policy_of_string s =
    let ( let* ) = Result.bind in
    List.fold_left
      (fun acc kv ->
        let* p = acc in
        match String.index_opt kv '=' with
        | None -> Error (Printf.sprintf "bad AUTOCC_WATCHDOG item %S" kv)
        | Some i -> (
            let k = String.sub kv 0 i in
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            let int () =
              match int_of_string_opt v with
              | Some n when n > 0 -> Ok n
              | _ -> Error (Printf.sprintf "bad AUTOCC_WATCHDOG value %S" kv)
            in
            let flt () =
              match float_of_string_opt v with
              | Some f -> Ok f
              | None -> Error (Printf.sprintf "bad AUTOCC_WATCHDOG value %S" kv)
            in
            match k with
            | "every" ->
                let* n = int () in
                Ok { p with p_every = n }
            | "window" ->
                let* n = int () in
                Ok { p with p_window = max 2 n }
            | "patience" ->
                let* n = int () in
                Ok { p with p_patience = n }
            | "min_cps" ->
                let* f = flt () in
                Ok { p with p_min_conflicts_per_s = f }
            | "min_lps" ->
                let* f = flt () in
                Ok { p with p_min_learnts_per_s = f }
            | "rebudget" -> Ok { p with p_rebudget = v = "1" || v = "true" }
            | _ -> Error (Printf.sprintf "unknown AUTOCC_WATCHDOG key %S" k)))
      (Ok default_policy)
      (List.filter (fun s -> s <> "") (String.split_on_char ',' s))

  let arm_from_env () =
    match Sys.getenv_opt "AUTOCC_WATCHDOG" with
    | None | Some "" -> ()
    | Some s -> (
        match policy_of_string s with
        | Ok p -> current := p
        | Error msg -> failwith msg)

  type t = {
    w_policy : policy;
    w_times : float array;
    w_confl : int array;
    w_learn : int array;
    mutable w_n : int; (* samples fed so far *)
    mutable w_below : int;
    mutable w_stalled : bool;
    mutable w_cps : float;
    mutable w_lps : float;
    w_on_stall : cps:float -> lps:float -> unit;
  }

  let create ?policy ?(on_stall = fun ~cps:_ ~lps:_ -> ()) () =
    let p = match policy with Some p -> p | None -> !current in
    let w = max 2 p.p_window in
    {
      w_policy = { p with p_window = w };
      w_times = Array.make w 0.;
      w_confl = Array.make w 0;
      w_learn = Array.make w 0;
      w_n = 0;
      w_below = 0;
      w_stalled = false;
      w_cps = Float.nan;
      w_lps = Float.nan;
      w_on_stall = on_stall;
    }

  let feed t ~conflicts ~learnts ~now =
    let p = t.w_policy in
    let w = p.p_window in
    t.w_times.(t.w_n mod w) <- now;
    t.w_confl.(t.w_n mod w) <- conflicts;
    t.w_learn.(t.w_n mod w) <- learnts;
    t.w_n <- t.w_n + 1;
    if t.w_n >= w then begin
      (* The slot about to be overwritten holds the oldest sample still
         in the window. *)
      let j = t.w_n mod w in
      let dt = now -. t.w_times.(j) in
      if dt > 0. then begin
        t.w_cps <- float_of_int (conflicts - t.w_confl.(j)) /. dt;
        t.w_lps <- float_of_int (learnts - t.w_learn.(j)) /. dt;
        if
          t.w_cps < p.p_min_conflicts_per_s
          && t.w_lps < p.p_min_learnts_per_s
        then t.w_below <- t.w_below + 1
        else t.w_below <- 0;
        if t.w_below >= p.p_patience && not t.w_stalled then begin
          t.w_stalled <- true;
          Bus.publish
            (Bus.Solver_stalled
               { conflicts_per_s = t.w_cps; learnts_per_s = t.w_lps });
          t.w_on_stall ~cps:t.w_cps ~lps:t.w_lps
        end
      end
    end

  let stalled t = t.w_stalled
  let conflicts_per_s t = t.w_cps
  let learnts_per_s t = t.w_lps
end

(* {1 Prometheus text exposition} *)

module Prometheus = struct
  let sanitize name =
    "autocc_"
    ^ String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
          | _ -> '_')
        name

  let fmt_float f =
    if Float.is_nan f then "NaN"
    else if f = Float.infinity then "+Inf"
    else if f = Float.neg_infinity then "-Inf"
    else Printf.sprintf "%.9g" f

  let add_metric buf name value =
    let p = Buffer.add_string buf in
    (* One HELP + one TYPE line per exposed metric name, in that order —
       scrapers reject duplicated metadata lines, which the render
       property test enforces. *)
    let head n kind =
      p (Printf.sprintf "# HELP %s autocc telemetry metric %s\n" n n);
      p (Printf.sprintf "# TYPE %s %s\n" n kind)
    in
    match value with
    | Metrics.Counter n ->
        head name "counter";
        p (Printf.sprintf "%s %d\n" name n)
    | Metrics.Gauge g ->
        head name "gauge";
        p (Printf.sprintf "%s %s\n" name (fmt_float g))
    | Metrics.Histogram { buckets; counts; sum; count } ->
        head name "histogram";
        let cum = ref 0 in
        Array.iteri
          (fun i b ->
            cum := !cum + counts.(i);
            p
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (fmt_float b)
                 !cum))
          buckets;
        p (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name count);
        p (Printf.sprintf "%s_sum %s\n" name (fmt_float sum));
        p (Printf.sprintf "%s_count %d\n" name count)
    | Metrics.Series vs ->
        (* Series are unbounded per-step sequences (e.g. seconds per BMC
           depth); exposition reduces them to count/sum/last gauges. *)
        let n = Array.length vs in
        let sum = Array.fold_left ( +. ) 0. vs in
        head (name ^ "_count") "gauge";
        p (Printf.sprintf "%s_count %d\n" name n);
        head (name ^ "_sum") "gauge";
        p (Printf.sprintf "%s_sum %s\n" name (fmt_float sum));
        if n > 0 then begin
          head (name ^ "_last") "gauge";
          p (Printf.sprintf "%s_last %s\n" name (fmt_float vs.(n - 1)))
        end

  let of_snapshot snap =
    let buf = Buffer.create 1024 in
    List.iter (fun (name, v) -> add_metric buf (sanitize name) v) snap;
    Buffer.contents buf

  let render () = of_snapshot (Metrics.snapshot ())

  (* Atomic replace: a scraper (or `cat`) never sees a half-written
     snapshot. The temp file lives next to the target so the rename
     stays within one filesystem. *)
  let write_file path =
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc (render ());
    close_out oc;
    Sys.rename tmp path
end

module Exposition = struct
  let stop_flag = Atomic.make true
  let ticker : unit Domain.t option ref = ref None
  let exp_mutex = Mutex.create ()
  let exp_path = ref None

  let stop () =
    Mutex.lock exp_mutex;
    let t = !ticker in
    let path = !exp_path in
    ticker := None;
    exp_path := None;
    Atomic.set stop_flag true;
    Mutex.unlock exp_mutex;
    (match t with Some d -> Domain.join d | None -> ());
    (* One final rewrite so the file reflects the end-of-run registry. *)
    match path with
    | Some p -> ( try Prometheus.write_file p with Sys_error _ -> ())
    | None -> ()

  let start ?(interval_s = 2.0) path =
    if interval_s <= 0. then
      invalid_arg "Obs.Exposition.start: interval must be positive";
    stop ();
    (try Prometheus.write_file path with Sys_error _ -> ());
    Atomic.set stop_flag false;
    let d =
      Domain.spawn (fun () ->
          while not (Atomic.get stop_flag) do
            (* Sleep in short naps so [stop] is prompt at CLI exit. *)
            let left = ref interval_s in
            while !left > 0. && not (Atomic.get stop_flag) do
              let nap = Float.min 0.05 !left in
              Unix.sleepf nap;
              left := !left -. nap
            done;
            if not (Atomic.get stop_flag) then
              try Prometheus.write_file path with Sys_error _ -> ()
          done)
    in
    Mutex.lock exp_mutex;
    ticker := Some d;
    exp_path := Some path;
    Mutex.unlock exp_mutex

  let running () = not (Atomic.get stop_flag)
end

(* {1 Cockpit: the aggregation model behind `autocc top`}

   A pure fold over stamped events (usually parsed back from an
   events.jsonl a campaign process is appending to) into one row per
   label: current depth, verdict, cache hit ratio, conflict rate, and
   an ETA extrapolated from the per-depth solve times. The CLI tails
   the file and re-renders; tests feed lines directly. *)

module Cockpit = struct
  type row = {
    ro_label : string;
    mutable ro_goal : int; (* target depth; -1 unknown *)
    mutable ro_depth : int; (* deepest solved depth; -1 none *)
    mutable ro_times : float list; (* per-depth seconds, newest first *)
    mutable ro_verdict : string;
    mutable ro_hits : int;
    mutable ro_misses : int;
    mutable ro_retries : int;
    mutable ro_faults : int;
    mutable ro_cps : float;
    mutable ro_stalled : bool;
    mutable ro_first_ts : float;
    mutable ro_last_ts : float;
    mutable ro_wall : float;
  }

  type t = {
    c_rows : (string, row) Hashtbl.t;
    mutable c_events : int;
    mutable c_bad : int;
    mutable c_last_seq : int;
  }

  let create () =
    { c_rows = Hashtbl.create 16; c_events = 0; c_bad = 0; c_last_seq = 0 }

  let find_row t label ts =
    match Hashtbl.find_opt t.c_rows label with
    | Some r -> r
    | None ->
        let r =
          {
            ro_label = label;
            ro_goal = -1;
            ro_depth = -1;
            ro_times = [];
            ro_verdict = "running";
            ro_hits = 0;
            ro_misses = 0;
            ro_retries = 0;
            ro_faults = 0;
            ro_cps = Float.nan;
            ro_stalled = false;
            ro_first_ts = ts;
            ro_last_ts = ts;
            ro_wall = Float.nan;
          }
        in
        Hashtbl.replace t.c_rows label r;
        r

  let feed t (st : Bus.stamped) =
    t.c_events <- t.c_events + 1;
    (* Sequence numbers are per-process: a resumed campaign restarts at
       1, which is not a gap. *)
    t.c_last_seq <- st.Bus.seq;
    let r = find_row t st.Bus.label st.Bus.ts in
    r.ro_last_ts <- Float.max r.ro_last_ts st.Bus.ts;
    match st.Bus.ev with
    | Bus.Job_start { goal_depth } ->
        r.ro_goal <- goal_depth;
        r.ro_verdict <- "running";
        r.ro_first_ts <- st.Bus.ts
    | Bus.Depth_solved { depth; seconds } ->
        r.ro_depth <- max r.ro_depth depth;
        r.ro_times <- seconds :: r.ro_times
    | Bus.Cex_found { depth } ->
        r.ro_depth <- max r.ro_depth depth;
        r.ro_verdict <- "cex"
    | Bus.Job_done { verdict; wall_s } ->
        r.ro_verdict <- verdict;
        r.ro_wall <- wall_s
    | Bus.Unknown { reason } ->
        if r.ro_verdict = "running" then r.ro_verdict <- "unknown:" ^ reason
    | Bus.Retry { attempt = _; reason = _ } ->
        r.ro_retries <- r.ro_retries + 1;
        r.ro_verdict <- "running"
    | Bus.Cache_hit -> r.ro_hits <- r.ro_hits + 1
    | Bus.Cache_miss -> r.ro_misses <- r.ro_misses + 1
    | Bus.Fault_injected _ -> r.ro_faults <- r.ro_faults + 1
    | Bus.Solver_progress { conflicts_per_s; _ } -> r.ro_cps <- conflicts_per_s
    | Bus.Solver_stalled { conflicts_per_s; _ } ->
        r.ro_stalled <- true;
        r.ro_cps <- conflicts_per_s
    | Bus.Heartbeat -> ()

  let feed_line t line =
    if String.trim line = "" then ()
    else
      match Json.parse line with
      | Error _ -> t.c_bad <- t.c_bad + 1
      | Ok j -> (
          match Bus.stamped_of_json j with
          | Ok st -> feed t st
          | Error _ -> t.c_bad <- t.c_bad + 1)

  let rows t =
    List.sort
      (fun a b -> compare a.ro_label b.ro_label)
      (Hashtbl.fold (fun _ r acc -> r :: acc) t.c_rows [])

  let events t = t.c_events
  let bad_lines t = t.c_bad

  (* ETA from the recorded per-depth solve times: per-depth cost in a
     CDCL-backed BMC grows roughly geometrically, so extrapolate with
     the (clamped) mean growth ratio of the most recent depths. *)
  let eta_s row =
    if row.ro_verdict <> "running" then None
    else if row.ro_goal < 0 || row.ro_depth < 0 then None
    else if row.ro_depth >= row.ro_goal then Some 0.
    else
      match row.ro_times with
      | [] -> None
      | last :: older ->
          let ratios =
            let rec go acc newer = function
              | [] -> acc
              | _ when List.length acc >= 4 -> acc
              | prev :: rest ->
                  let acc =
                    if prev > 1e-9 then (newer /. prev) :: acc else acc
                  in
                  go acc prev rest
            in
            go [] last older
          in
          let r =
            match ratios with
            | [] -> 1.5
            | rs ->
                let mean =
                  List.fold_left ( +. ) 0. rs /. float_of_int (List.length rs)
                in
                Float.max 1.0 (Float.min 3.0 mean)
          in
          let remaining = min 64 (row.ro_goal - row.ro_depth) in
          let eta = ref 0. in
          let step = ref last in
          for _ = 1 to remaining do
            step := !step *. r;
            eta := !eta +. !step
          done;
          Some !eta

  let fmt_eta = function
    | None -> "-"
    | Some s when s < 0.0005 -> "0s"
    | Some s when s < 60. -> Printf.sprintf "%.1fs" s
    | Some s when s < 3600. -> Printf.sprintf "%.1fm" (s /. 60.)
    | Some s -> Printf.sprintf "%.1fh" (s /. 3600.)

  let render ?now ?(note = fun _ -> None) t =
    let now = match now with Some n -> n | None -> Clock.wall_s () in
    let buf = Buffer.create 1024 in
    let rs = rows t in
    let hits, misses =
      List.fold_left
        (fun (h, m) r -> (h + r.ro_hits, m + r.ro_misses))
        (0, 0) rs
    in
    Buffer.add_string buf
      (Printf.sprintf
         "autocc top — %d events, %d rows%s | cache %d/%d%s\n" t.c_events
         (List.length rs)
         (if t.c_bad > 0 then Printf.sprintf ", %d bad lines" t.c_bad else "")
         hits (hits + misses)
         (if hits + misses > 0 then
            Printf.sprintf " (%.0f%% hit)"
              (100. *. float_of_int hits /. float_of_int (hits + misses))
          else ""));
    Buffer.add_string buf
      (Printf.sprintf "%-34s %7s  %-18s %7s %9s %7s  %s\n" "LABEL" "DEPTH"
         "VERDICT" "CACHE" "CONF/S" "ETA" "NOTE");
    List.iter
      (fun r ->
        let depth =
          if r.ro_depth < 0 then
            if r.ro_goal >= 0 then Printf.sprintf "-/%d" r.ro_goal else "-"
          else if r.ro_goal >= 0 then
            Printf.sprintf "%d/%d" r.ro_depth r.ro_goal
          else string_of_int r.ro_depth
        in
        let cache =
          if r.ro_hits + r.ro_misses = 0 then "-"
          else Printf.sprintf "%d/%d" r.ro_hits (r.ro_hits + r.ro_misses)
        in
        let cps =
          if Float.is_nan r.ro_cps then "-"
          else Printf.sprintf "%.3g" r.ro_cps
        in
        let age = now -. r.ro_last_ts in
        let notes =
          List.filter
            (fun s -> s <> "")
            [
              (if r.ro_stalled then "STALLED" else "");
              (if r.ro_retries > 0 then Printf.sprintf "%d retries" r.ro_retries
               else "");
              (if r.ro_faults > 0 then Printf.sprintf "%d faults" r.ro_faults
               else "");
              (if r.ro_verdict = "running" && age > 10. then
                 Printf.sprintf "silent %.0fs" age
               else "");
              (match note r.ro_label with Some s -> s | None -> "");
            ]
        in
        Buffer.add_string buf
          (Printf.sprintf "%-34s %7s  %-18s %7s %9s %7s  %s\n"
             (if String.length r.ro_label > 34 then
                String.sub r.ro_label 0 34
              else r.ro_label)
             depth r.ro_verdict cache cps
             (fmt_eta (eta_s r))
             (String.concat ", " notes)))
      rs;
    Buffer.contents buf

  (* Machine-readable snapshot of the same fold (`autocc top --json`):
     one object per row, every number raw (no terminal formatting), so
     scripts gate on verdicts or ETAs without scraping the table. *)
  let render_json ?now ?(note = fun _ -> None) t =
    let now = match now with Some n -> n | None -> Clock.wall_s () in
    let opt_float f = if Float.is_nan f then Json.Null else Json.Float f in
    let rows_json =
      List.map
        (fun r ->
          Json.Obj
            [
              ("label", Json.Str r.ro_label);
              ("goal_depth", Json.Int r.ro_goal);
              ("depth", Json.Int r.ro_depth);
              ("verdict", Json.Str r.ro_verdict);
              ("cache_hits", Json.Int r.ro_hits);
              ("cache_misses", Json.Int r.ro_misses);
              ("retries", Json.Int r.ro_retries);
              ("faults", Json.Int r.ro_faults);
              ("conflicts_per_s", opt_float r.ro_cps);
              ("stalled", Json.Bool r.ro_stalled);
              ("eta_s", match eta_s r with Some e -> Json.Float e | None -> Json.Null);
              ("wall_s", opt_float r.ro_wall);
              ("silent_s", Json.Float (Float.max 0. (now -. r.ro_last_ts)));
              ( "note",
                match note r.ro_label with
                | Some s -> Json.Str s
                | None -> Json.Null );
            ])
        (rows t)
    in
    Json.Obj
      [
        ("schema", Json.Str "autocc.top/1");
        ("ts", Json.Float now);
        ("events", Json.Int t.c_events);
        ("bad_lines", Json.Int t.c_bad);
        ("rows", Json.List rows_json);
      ]
end

(* {1 File tailing}

   The cross-process half of the cockpit: follow an append-only JSONL
   file (events.jsonl) by byte offset, carrying torn trailing lines to
   the next poll and restarting from zero when the file shrinks (a new
   campaign truncated/replaced it). Extracted from `autocc top` so the
   truncation and seq-restart behavior is testable without a terminal. *)

module Tail = struct
  type t = { t_path : string; mutable t_offset : int; t_partial : Buffer.t }

  let create path = { t_path = path; t_offset = 0; t_partial = Buffer.create 256 }
  let offset t = t.t_offset

  let poll t =
    if not (Sys.file_exists t.t_path) then []
    else
      let ic = open_in_bin t.t_path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          if len < t.t_offset then begin
            (* The file shrank: a fresh campaign replaced it. Restart,
               dropping any torn tail of the dead run. *)
            t.t_offset <- 0;
            Buffer.clear t.t_partial
          end;
          if len = t.t_offset then []
          else begin
            seek_in ic t.t_offset;
            let chunk = really_input_string ic (len - t.t_offset) in
            t.t_offset <- len;
            Buffer.add_string t.t_partial chunk;
            let data = Buffer.contents t.t_partial in
            Buffer.clear t.t_partial;
            match String.rindex_opt data '\n' with
            | None ->
                (* No complete line yet: keep accumulating. *)
                Buffer.add_string t.t_partial data;
                []
            | Some last ->
                let complete = String.sub data 0 last in
                Buffer.add_substring t.t_partial data (last + 1)
                  (String.length data - last - 1);
                List.filter
                  (fun l -> String.trim l <> "")
                  (String.split_on_char '\n' complete)
          end)
end

(* {1 Numeric regression diffing}

   The ratio+floor gate shared by `bench diff` and `autocc diff-runs`:
   flatten a JSON document to dotted-path numeric leaves, gate only the
   paths whose last segment names a duration (lower-better [*_s]) or a
   [speedup] (higher-better), and call a fresh value regressed when it
   is worse by more than a noise ratio AND an absolute floor. *)

module Numdiff = struct
  type direction = Lower_better | Higher_better

  let leaves j =
    let rec go prefix j acc =
      let child k = if prefix = "" then k else prefix ^ "." ^ k in
      match j with
      | Json.Obj kvs ->
          List.fold_left (fun acc (k, v) -> go (child k) v acc) acc kvs
      | Json.List l ->
          List.fold_left
            (fun (i, acc) v -> (i + 1, go (child (string_of_int i)) v acc))
            (0, acc) l
          |> snd
      | Json.Int n -> (prefix, float_of_int n) :: acc
      | Json.Float f -> (prefix, f) :: acc
      | Json.Null | Json.Bool _ | Json.Str _ -> acc
    in
    go "" j []

  let gate path =
    let last =
      match String.rindex_opt path '.' with
      | Some i -> String.sub path (i + 1) (String.length path - i - 1)
      | None -> path
    in
    let n = String.length last in
    if last = "speedup" then Some Higher_better
    else if n > 2 && String.sub last (n - 2) 2 = "_s" then Some Lower_better
    else None

  let env_float name default =
    match Sys.getenv_opt name with
    | None -> default
    | Some s -> (
        match float_of_string_opt s with
        | Some f when f > 0. -> f
        | _ ->
            failwith (Printf.sprintf "%s must be a positive float" name))

  let thresholds () =
    (env_float "AUTOCC_DIFF_RATIO" 1.5, env_float "AUTOCC_DIFF_FLOOR_S" 0.02)

  let regressed direction ~ratio ~floor ~base ~fresh =
    match direction with
    | Lower_better -> fresh > (base *. ratio) && fresh -. base > floor
    | Higher_better ->
        (* Speedups are dimensionless; the floor guards the absolute
           drop instead. *)
        fresh < (base /. ratio) && base -. fresh > floor
end

(* {1 Run ledger}

   The cross-run memory: every analyze/prove/campaign/bench appends one
   [autocc.run/1] line to an append-only [runs.jsonl] (line-flushed,
   crash loses at most the final partial line — same contract as
   events.jsonl), recording the configuration fingerprint, the DUT's
   structural hash, per-assertion verdicts and the cache traffic. The
   cache's provenance records point back into this file by run id, which
   is what makes a warm Unsat auditable: `autocc why` resolves the hit
   to the run that actually carried the solve. *)

module Ledger = struct
  let schema = "autocc.run/1"

  type assert_record = {
    a_name : string;
    a_verdict : string;
    a_depth : int;  (* CEX/proof depth; -1 unknown *)
    a_wall_s : float;
    a_cached : bool;
  }

  type run = {
    r_id : string;
    r_tool : string;
    r_subject : string;
    r_config : string;
    r_dut_hash : string;
    r_ts : float;
    r_wall_s : float;
    r_cpu_s : float;
    r_cache_hits : int;
    r_cache_misses : int;
    r_cache_stores : int;
    r_asserts : assert_record list;
    r_artifacts : string list;
  }

  (* One id per process: a CLI invocation is one run, and everything it
     stores into the verdict cache cites this id as producer. Wall-clock
     centiseconds + pid: concurrent processes differ by pid, successive
     ones by time. *)
  let generated = ref None
  let id_mutex = Mutex.create ()

  let run_id () =
    Mutex.lock id_mutex;
    let id =
      match !generated with
      | Some id -> id
      | None ->
          let id =
            Printf.sprintf "r%011x-%05d"
              (int_of_float (Unix.gettimeofday () *. 100.))
              (Unix.getpid ())
          in
          generated := Some id;
          id
    in
    Mutex.unlock id_mutex;
    id

  let resolve_dir ?explicit () =
    let nonempty = function Some d when d <> "" -> Some d | _ -> None in
    match explicit with
    | Some d -> Some d
    | None -> (
        match nonempty (Sys.getenv_opt "AUTOCC_LEDGER_DIR") with
        | Some d -> Some d
        | None -> nonempty (Sys.getenv_opt "AUTOCC_CACHE_DIR"))

  let path dir = Filename.concat dir "runs.jsonl"

  let json_of_assert a =
    Json.Obj
      [
        ("name", Json.Str a.a_name);
        ("verdict", Json.Str a.a_verdict);
        ("depth", Json.Int a.a_depth);
        ("wall_s", Json.Float a.a_wall_s);
        ("cached", Json.Bool a.a_cached);
      ]

  let json_of_run r =
    Json.Obj
      [
        ("schema", Json.Str schema);
        ("id", Json.Str r.r_id);
        ("tool", Json.Str r.r_tool);
        ("subject", Json.Str r.r_subject);
        ("config", Json.Str r.r_config);
        ("dut_hash", Json.Str r.r_dut_hash);
        ("ts", Json.Float r.r_ts);
        ("wall_s", Json.Float r.r_wall_s);
        ("cpu_s", Json.Float r.r_cpu_s);
        ( "cache",
          Json.Obj
            [
              ("hits", Json.Int r.r_cache_hits);
              ("misses", Json.Int r.r_cache_misses);
              ("stores", Json.Int r.r_cache_stores);
            ] );
        ("asserts", Json.List (List.map json_of_assert r.r_asserts));
        ("artifacts", Json.List (List.map (fun s -> Json.Str s) r.r_artifacts));
      ]

  let run_of_json j =
    let ( let* ) = Result.bind in
    let str k =
      match Json.member k j with
      | Some (Json.Str s) -> Ok s
      | _ -> Error (Printf.sprintf "missing string field %S" k)
    in
    let num k d =
      match Json.member k j with
      | Some (Json.Float f) -> f
      | Some (Json.Int n) -> float_of_int n
      | _ -> d
    in
    let cache_int k =
      match Json.member "cache" j with
      | Some c -> (
          match Json.member k c with Some (Json.Int n) -> n | _ -> 0)
      | None -> 0
    in
    let* s = str "schema" in
    if s <> schema then Error (Printf.sprintf "unknown schema %S" s)
    else
      let* id = str "id" in
      let* tool = str "tool" in
      let* subject = str "subject" in
      let* config = str "config" in
      let* dut_hash = str "dut_hash" in
      let asserts =
        match Json.member "asserts" j with
        | Some (Json.List l) ->
            List.filter_map
              (fun a ->
                match (Json.member "name" a, Json.member "verdict" a) with
                | Some (Json.Str n), Some (Json.Str v) ->
                    Some
                      {
                        a_name = n;
                        a_verdict = v;
                        a_depth =
                          (match Json.member "depth" a with
                          | Some (Json.Int d) -> d
                          | _ -> -1);
                        a_wall_s =
                          (match Json.member "wall_s" a with
                          | Some (Json.Float f) -> f
                          | Some (Json.Int n) -> float_of_int n
                          | _ -> -1.);
                        a_cached =
                          (match Json.member "cached" a with
                          | Some (Json.Bool b) -> b
                          | _ -> false);
                      }
                | _ -> None)
              l
        | _ -> []
      in
      let artifacts =
        match Json.member "artifacts" j with
        | Some (Json.List l) ->
            List.filter_map
              (function Json.Str s -> Some s | _ -> None)
              l
        | _ -> []
      in
      Ok
        {
          r_id = id;
          r_tool = tool;
          r_subject = subject;
          r_config = config;
          r_dut_hash = dut_hash;
          r_ts = num "ts" 0.;
          r_wall_s = num "wall_s" (-1.);
          r_cpu_s = num "cpu_s" (-1.);
          r_cache_hits = cache_int "hits";
          r_cache_misses = cache_int "misses";
          r_cache_stores = cache_int "stores";
          r_asserts = asserts;
          r_artifacts = artifacts;
        }

  let append ~dir r =
    (try
       if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
     with Unix.Unix_error _ -> ());
    (* One write(2) per row: campaign coordinator and service workers
       append concurrently from separate processes. *)
    Appender.with_path (path dir) (fun ap ->
        Appender.json_line ap (json_of_run r))

  (* File order is run order. Unparseable lines (torn final line of a
     crashed writer, foreign junk) are counted, not fatal. *)
  let load dir =
    let p = path dir in
    if not (Sys.file_exists p) then ([], 0)
    else
      let ic = open_in p in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let runs = ref [] and bad = ref 0 in
          (try
             while true do
               let line = input_line ic in
               if String.trim line <> "" then
                 match Json.parse line with
                 | Error _ -> incr bad
                 | Ok j -> (
                     match run_of_json j with
                     | Ok r -> runs := r :: !runs
                     | Error _ -> incr bad)
             done
           with End_of_file -> ());
          (List.rev !runs, !bad))

  (* A run reference is either an id prefix or ["~N"]: the Nth run from
     the end of the ledger (["~1"] = latest). *)
  let find dir ~ref:r =
    let runs, _ = load dir in
    if String.length r > 1 && r.[0] = '~' then
      match int_of_string_opt (String.sub r 1 (String.length r - 1)) with
      | Some n when n >= 1 && n <= List.length runs ->
          Some (List.nth runs (List.length runs - n))
      | _ -> None
    else
      let matches =
        List.filter
          (fun run ->
            String.length run.r_id >= String.length r
            && String.sub run.r_id 0 (String.length r) = r)
          runs
      in
      match List.rev matches with last :: _ -> Some last | [] -> None
end

(* {1 Span profiler}

   Post-mortem answer to "where did the time go": fold the Chrome-trace
   spans of a finished run back into a merged call tree (children with
   the same name at the same stack position aggregate), attribute self
   time per category (the [layer.] prefix: sat vs cnf vs opt vs bmc vs
   cache vs explain), and render either a text table or a self-contained
   flamegraph SVG. Nesting is reconstructed from interval containment
   per domain: spans are recorded at exit but each fully contains its
   children, so sorting by start time (ties: longer span first) and
   running a stack gives the original tree. *)

module Profile = struct
  type node = {
    pn_name : string;
    mutable pn_total_us : float;
    mutable pn_self_us : float;
    mutable pn_count : int;
    mutable pn_children : node list; (* insertion order, reversed *)
  }

  type t = {
    p_roots : node list;
    p_total_us : float;  (* sum of root totals = attributed time *)
    p_wall_us : float;  (* extent of the trace: max end - min start *)
    p_categories : (string * float) list;  (* category -> self us, desc *)
    p_events : int;
  }

  let category name =
    match String.index_opt name '.' with
    | Some i -> String.sub name 0 i
    | None -> name

  (* Sub-microsecond slack: timestamps round-trip through %.9g, so a
     child's recorded end can exceed its parent's by a hair. *)
  let eps = 0.5

  let of_trace j =
    match Json.member "traceEvents" j with
    | Some (Json.List evs) ->
        let num k e =
          match Json.member k e with
          | Some (Json.Float f) -> Some f
          | Some (Json.Int n) -> Some (float_of_int n)
          | _ -> None
        in
        let spans =
          List.filter_map
            (fun e ->
              match (Json.member "ph" e, Json.member "name" e) with
              | Some (Json.Str "X"), Some (Json.Str name) -> (
                  match (num "ts" e, num "dur" e, num "tid" e) with
                  | Some ts, Some dur, Some tid when dur >= 0. ->
                      Some (tid, ts, dur, name)
                  | _ -> None)
              | _ -> None)
            evs
        in
        let tids =
          List.sort_uniq compare (List.map (fun (tid, _, _, _) -> tid) spans)
        in
        let roots = ref [] in
        let find_or_create siblings name =
          match List.find_opt (fun n -> n.pn_name = name) !siblings with
          | Some n -> n
          | None ->
              let n =
                {
                  pn_name = name;
                  pn_total_us = 0.;
                  pn_self_us = 0.;
                  pn_count = 0;
                  pn_children = [];
                }
              in
              siblings := n :: !siblings;
              n
        in
        List.iter
          (fun tid ->
            let mine =
              List.filter (fun (t, _, _, _) -> t = tid) spans
              |> List.sort (fun (_, ts1, d1, _) (_, ts2, d2, _) ->
                     match compare ts1 ts2 with
                     | 0 -> compare d2 d1
                     | c -> c)
            in
            (* Stack of (end_ts, node): pop until the current span fits
               inside the top, then merge it into that level. *)
            let stack = ref [] in
            List.iter
              (fun (_, ts, dur, name) ->
                while
                  match !stack with
                  | (end_ts, _) :: rest when ts +. eps >= end_ts ->
                      stack := rest;
                      true
                  | _ -> false
                do
                  ()
                done;
                let node =
                  match !stack with
                  | [] ->
                      let n = find_or_create roots name in
                      n
                  | (_, parent) :: _ ->
                      let siblings = ref parent.pn_children in
                      let n = find_or_create siblings name in
                      parent.pn_children <- !siblings;
                      n
                in
                node.pn_total_us <- node.pn_total_us +. dur;
                node.pn_count <- node.pn_count + 1;
                stack := (ts +. dur, node) :: !stack)
              mine)
          tids;
        (* Self time: total minus children (clamped — fp slack can make
           the child sum overshoot by nanoseconds). *)
        let rec finalize n =
          n.pn_children <- List.rev n.pn_children;
          List.iter finalize n.pn_children;
          let child_total =
            List.fold_left
              (fun acc c -> acc +. c.pn_total_us)
              0. n.pn_children
          in
          n.pn_self_us <- Float.max 0. (n.pn_total_us -. child_total)
        in
        let roots = List.rev !roots in
        List.iter finalize roots;
        let total =
          List.fold_left (fun acc n -> acc +. n.pn_total_us) 0. roots
        in
        let wall =
          match spans with
          | [] -> 0.
          | _ ->
              let lo =
                List.fold_left
                  (fun acc (_, ts, _, _) -> Float.min acc ts)
                  Float.infinity spans
              and hi =
                List.fold_left
                  (fun acc (_, ts, dur, _) -> Float.max acc (ts +. dur))
                  Float.neg_infinity spans
              in
              hi -. lo
        in
        let cats = Hashtbl.create 16 in
        let rec walk n =
          let c = category n.pn_name in
          Hashtbl.replace cats c
            (n.pn_self_us
            +. (match Hashtbl.find_opt cats c with Some v -> v | None -> 0.));
          List.iter walk n.pn_children
        in
        List.iter walk roots;
        let categories =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) cats []
          |> List.sort (fun (_, a) (_, b) -> compare b a)
        in
        Ok
          {
            p_roots = roots;
            p_total_us = total;
            p_wall_us = wall;
            p_categories = categories;
            p_events = List.length spans;
          }
    | _ -> Error "not a trace: no traceEvents array"

  let of_file path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error e -> Result.Error e
    | body -> (
        match Json.parse body with
        | Result.Error e -> Result.Error (Printf.sprintf "%s: %s" path e)
        | Ok j -> of_trace j)

  let fmt_ms us =
    if us >= 100000. then Printf.sprintf "%.2fs" (us /. 1e6)
    else Printf.sprintf "%.2fms" (us /. 1e3)

  let table t =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "attributed %.6fs of %.6fs wall (%.1f%% covered)\n"
         (t.p_total_us /. 1e6) (t.p_wall_us /. 1e6)
         (if t.p_wall_us > 0. then 100. *. t.p_total_us /. t.p_wall_us
          else 0.));
    Buffer.add_string buf
      (Printf.sprintf "%10s %10s %6s %5s  %s\n" "TOTAL" "SELF" "COUNT" "%"
         "SPAN");
    let rec emit depth n =
      Buffer.add_string buf
        (Printf.sprintf "%10s %10s %6d %4.0f%%  %s%s\n"
           (fmt_ms n.pn_total_us) (fmt_ms n.pn_self_us) n.pn_count
           (if t.p_total_us > 0. then 100. *. n.pn_total_us /. t.p_total_us
            else 0.)
           (String.make (2 * depth) ' ')
           n.pn_name);
      List.iter (emit (depth + 1)) n.pn_children
    in
    List.iter (emit 0) t.p_roots;
    Buffer.add_string buf "\nself time by category:\n";
    List.iter
      (fun (c, us) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-12s %10s %4.0f%%\n" c (fmt_ms us)
             (if t.p_total_us > 0. then 100. *. us /. t.p_total_us else 0.)))
      t.p_categories;
    Buffer.contents buf

  let xml_escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (function
        | '<' -> Buffer.add_string buf "&lt;"
        | '>' -> Buffer.add_string buf "&gt;"
        | '&' -> Buffer.add_string buf "&amp;"
        | '"' -> Buffer.add_string buf "&quot;"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* Deterministic per-category pastel: hash the category name to a hue. *)
  let color name =
    let c = category name in
    let h = ref 17 in
    String.iter (fun ch -> h := ((!h * 31) + Char.code ch) land 0xffffff) c;
    Printf.sprintf "hsl(%d,65%%,%d%%)" (!h mod 360) (55 + (!h / 360 mod 15))

  let flamegraph_svg t =
    let width = 1200. in
    let row_h = 17. in
    let rec depth_of n =
      1 + List.fold_left (fun acc c -> max acc (depth_of c)) 0 n.pn_children
    in
    let levels =
      List.fold_left (fun acc n -> max acc (depth_of n)) 1 t.p_roots
    in
    let height = (float_of_int levels *. row_h) +. 40. in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Printf.sprintf
         "<?xml version=\"1.0\" standalone=\"no\"?>\n\
          <svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" \
          height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n\
          <style>text{font:11px monospace;fill:#111}rect{stroke:#fff;stroke-width:0.5}</style>\n\
          <rect x=\"0\" y=\"0\" width=\"%.0f\" height=\"%.0f\" \
          fill=\"#f8f8f8\"/>\n\
          <text x=\"6\" y=\"14\">autocc profile — attributed %s of %s wall \
          (%d spans)</text>\n"
         width height width height width height
         (fmt_ms t.p_total_us) (fmt_ms t.p_wall_us) t.p_events);
    let scale =
      if t.p_total_us > 0. then width /. t.p_total_us else 0.
    in
    (* Icicle layout: roots on top, children below their parent, widths
       proportional to total time. *)
    let rec emit x y n =
      let w = n.pn_total_us *. scale in
      if w >= 0.4 then begin
        Buffer.add_string buf
          (Printf.sprintf
             "<g><title>%s — %s total, %s self, ×%d (%.1f%%)</title><rect \
              x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.0f\" \
              fill=\"%s\"/>"
             (xml_escape n.pn_name) (fmt_ms n.pn_total_us)
             (fmt_ms n.pn_self_us) n.pn_count
             (if t.p_total_us > 0. then
                100. *. n.pn_total_us /. t.p_total_us
              else 0.)
             x y w (row_h -. 1.) (color n.pn_name));
        if w > 40. then
          Buffer.add_string buf
            (Printf.sprintf "<text x=\"%.2f\" y=\"%.2f\">%s</text>" (x +. 3.)
               (y +. 12.)
               (xml_escape
                  (let max_chars = int_of_float (w /. 7.) in
                   if String.length n.pn_name > max_chars then
                     String.sub n.pn_name 0 max_chars
                   else n.pn_name)));
        Buffer.add_string buf "</g>\n";
        let cx = ref x in
        List.iter
          (fun c ->
            emit !cx (y +. row_h) c;
            cx := !cx +. (c.pn_total_us *. scale))
          n.pn_children
      end
    in
    let cx = ref 0. in
    List.iter
      (fun n ->
        emit !cx 24. n;
        cx := !cx +. (n.pn_total_us *. scale))
      t.p_roots;
    Buffer.add_string buf "</svg>\n";
    Buffer.contents buf
end

let enabled () =
  tracing () || Atomic.get log_on || Metrics.enabled () || Bus.enabled ()

let shutdown () =
  Exposition.stop ();
  close_trace ();
  close_log ();
  Bus.detach ();
  Metrics.disable ()

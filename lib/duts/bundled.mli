(** Named construction of the bundled DUT zoo.

    The CLI subcommands and the [autocc serve] worker processes both
    need to turn a DUT {e name} arriving as plain data (a command-line
    flag, a job submission over the wire) into a circuit and its
    flush-transparency property set. Keeping that mapping here — beside
    the DUTs themselves — means a job spec solved by a service worker
    names exactly the same circuit the one-shot CLI would build, which
    is what makes "service verdicts match a crash-free one-shot
    campaign" a meaningful invariant to test. *)

type fixes = {
  fix_m2 : bool;  (** maple: clear the M2 metadata latch on flush *)
  fix_m3 : bool;  (** maple: drain the M3 output buffer on flush *)
  fix_c1 : bool;  (** cva6lite: micro-reset the C1 predictor *)
  fix_c2 : bool;  (** cva6lite: micro-reset the C2 prefetcher *)
  fix_c3 : bool;  (** cva6lite: micro-reset the C3 line buffer *)
  full_flush : bool;  (** cva6lite: full-flush mode instead of micro-reset *)
}

val no_fixes : fixes
(** All fixes off — the leaky baseline every DUT ships as. *)

val known : string list
(** The recognized DUT names:
    [["vscale"; "maple"; "aes"; "cva6"; "divider"; "leaky"]]. *)

val build : ?fixes:fixes -> string -> Rtl.Circuit.t
(** Construct the named DUT ([fixes] defaults to {!no_fixes}; only
    maple and cva6 consult it). ["leaky"] is the one-register
    stash/query textbook channel. Raises [Failure] on an unknown name,
    listing {!known}. *)

val ft_for :
  ?stage:int -> ?threshold:int -> string -> Rtl.Circuit.t -> Autocc.Ft.t
(** The flush-transparency property set for a DUT built by {!build}:
    each DUT's own flush-done predicate where it has one, the generic
    template otherwise. [stage] (default 0, clamped) selects the
    pipeline stage for vscale; [threshold] (default 2) is the
    flush-countdown bound. *)

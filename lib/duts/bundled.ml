type fixes = {
  fix_m2 : bool;
  fix_m3 : bool;
  fix_c1 : bool;
  fix_c2 : bool;
  fix_c3 : bool;
  full_flush : bool;
}

let no_fixes =
  {
    fix_m2 = false;
    fix_m3 = false;
    fix_c1 = false;
    fix_c2 = false;
    fix_c3 = false;
    full_flush = false;
  }

let known = [ "vscale"; "maple"; "aes"; "cva6"; "divider"; "leaky" ]

let build ?(fixes = no_fixes) name =
  match name with
  | "vscale" -> Vscale.create ()
  | "maple" ->
      Maple.create
        ~config:{ Maple.fix_m2 = fixes.fix_m2; fix_m3 = fixes.fix_m3 }
        ()
  | "aes" -> Aes.create ()
  | "divider" -> Divider.create ()
  | "cva6" ->
      let mode =
        if fixes.full_flush then Cva6lite.Full_flush else Cva6lite.Microreset
      in
      Cva6lite.create
        ~config:
          (Cva6lite.with_fixes ~fix_c1:fixes.fix_c1 ~fix_c2:fixes.fix_c2
             ~fix_c3:fixes.fix_c3 mode)
        ()
  | "leaky" ->
      (* The textbook channel: one stash register a flush never clears,
         read back through an equality probe. Small enough that every
         smoke test can afford to solve it. *)
      let open Rtl.Signal in
      let din = input "din" 8 in
      let capture = input "capture" 1 in
      let query = input "query" 8 in
      let stash = reg "stash" 8 in
      reg_set_next stash (mux2 capture din stash);
      Rtl.Circuit.create ~name:"leaky" ~outputs:[ ("hit", query ==: stash) ] ()
  | other ->
      failwith
        ("unknown DUT " ^ other ^ " (expected " ^ String.concat "|" known ^ ")")

let ft_for ?(stage = 0) ?(threshold = 2) name dut =
  match name with
  | "vscale" ->
      let stages = Array.of_list Vscale.stages in
      let stage = max 0 (min stage (Array.length stages - 1)) in
      Vscale.ft_for_stage ~threshold stages.(stage) dut
  | "maple" ->
      Autocc.Ft.generate ~threshold
        ~flush_done:(Maple.flush_done ~require_outbuf_empty:true ())
        dut
  | "aes" ->
      Autocc.Ft.generate ~threshold ~flush_done:(Aes.flush_done_idle ()) dut
  | "cva6" ->
      Autocc.Ft.generate ~threshold ~flush_done:(Cva6lite.flush_done ()) dut
  | "divider" ->
      Autocc.Ft.generate ~threshold ~flush_done:(Divider.flush_done_idle ())
        dut
  | _ -> Autocc.Ft.generate ~threshold dut

(* Benchmark harness: regenerates every table of the paper's evaluation
   (the paper's figures 1-3 are conceptual diagrams; the quickstart
   example narrates Fig. 2's phases). Each experiment prints the paper's
   reported numbers next to the measured ones; absolute values differ (we
   run downsized DUTs on our own SAT engine, not JasperGold on full RTL)
   but the shape — what is found, in which refinement order, and that
   fixes turn CEXs into proofs — must match.

   Usage: dune exec bench/main.exe [table1|table2|exploit|aes_proof|
                                    fixes|baseline|flush_tdd|parallel|
                                    opt|incremental|cache|symmetric|
                                    campaign|smoke|diff|bechamel|all]

   The [parallel] subcommand re-runs representative Table 1 rows on the
   sequential engine and on the domain-sharded parallel engine
   (lib/bmc/parallel.ml), checks the verdicts and CEX depths agree, and
   prints the per-row speedup (AUTOCC_JOBS overrides the worker count).
   The [opt] subcommand re-runs the Table 1 rows end-to-end at -O0 and
   -O2, asserts identical verdicts and CEX depths, and reports the
   wall-clock speedup from the lib/opt netlist pipeline; [smoke] is its
   single-row variant hooked into [dune runtest] via @bench-smoke.
   [parallel] and [opt] each write a machine-readable BENCH_<name>.json
   next to the table.

   The [bechamel] subcommand runs one Bechamel micro-benchmark per table
   on representative kernels. *)

module V = Duts.Vscale
module M = Duts.Maple
module A = Duts.Aes
module C = Duts.Cva6lite

(* {1 Machine-readable output}

   Hand-rolled JSON (no json library in the toolchain): each perf-bearing
   subcommand dumps BENCH_<name>.json next to the stdout table so the
   repo's perf trajectory can be tracked across commits. *)

module Json = struct
  include Obs.Json

  let write ~path t =
    write_file ~path t;
    Printf.printf "     machine-readable results written to %s\n" path
end

(* One outcome (verdict kind, CEX/proof depth, solver stats) as JSON.
   The stats shape comes from {!Autocc.Report.json_of_bmc_stats} — the
   one schema shared with the CLI. *)
let json_of_outcome outcome ~wall =
  let stats =
    match outcome with
    | Bmc.Cex (_, st) | Bmc.Bounded_proof st | Bmc.Unknown (_, st) -> st
  in
  let verdict, depth =
    match outcome with
    | Bmc.Cex (cex, _) -> ("cex", cex.Bmc.cex_depth)
    | Bmc.Bounded_proof st -> ("bounded_proof", st.Bmc.depth_reached)
    | Bmc.Unknown (r, st) ->
        ("unknown:" ^ Bmc.unknown_reason_to_string r, st.Bmc.depth_reached)
  in
  Json.Obj
    [
      ("verdict", Json.Str verdict);
      ("depth", Json.Int depth);
      ("wall_s", Json.Float wall);
      ("stats", Autocc.Report.json_of_bmc_stats stats);
    ]

let line () = print_endline (String.make 100 '-')

let header title =
  line ();
  Printf.printf "%s\n" title;
  line ()

type outcome_row = {
  id : string;
  description : string;
  paper : string; (* paper's depth/time *)
  depth : int option; (* measured CEX depth in cycles, None for proof *)
  proof_depth : int option;
  seconds : float;
  detail : string;
}

let pp_row r =
  let result =
    match (r.depth, r.proof_depth) with
    | Some d, _ -> Printf.sprintf "CEX depth %d" d
    | None, Some d -> Printf.sprintf "proof to %d" d
    | None, None -> "-"
  in
  Printf.printf "%-4s %-44s %-22s %-16s %8.2fs  %s\n" r.id r.description r.paper
    result r.seconds r.detail

let run_ft id description paper ft ~max_depth =
  let t0 = Unix.gettimeofday () in
  match Autocc.Ft.check ~max_depth ft with
  | Bmc.Cex (cex, _) ->
      {
        id;
        description;
        paper;
        depth = Some (cex.Bmc.cex_depth + 1);
        proof_depth = None;
        seconds = Unix.gettimeofday () -. t0;
        detail = Autocc.Report.summary ft cex;
      }
  | Bmc.Bounded_proof stats ->
      {
        id;
        description;
        paper;
        depth = None;
        proof_depth = Some (stats.Bmc.depth_reached + 1);
        seconds = Unix.gettimeofday () -. t0;
        detail = "";
      }
  | Bmc.Unknown (reason, _) ->
      {
        id;
        description;
        paper;
        depth = None;
        proof_depth = None;
        seconds = Unix.gettimeofday () -. t0;
        detail = "unknown (" ^ Bmc.unknown_reason_to_string reason ^ ")";
      }

(* {1 Table 1: valuable CEXs across the four DUTs} *)

let maple_ft ?(require_outbuf_empty = true) config =
  Autocc.Ft.generate ~threshold:2
    ~flush_done:(M.flush_done ~require_outbuf_empty ())
    (M.create ~config ())

let cva6_ft config =
  Autocc.Ft.generate ~threshold:2 ~flush_done:(C.flush_done ())
    (C.create ~config ())

let table1 () =
  header
    "Table 1 — CEXs uncovering hardware bugs / covert channels (paper depth & runtime vs measured)";
  let vscale = V.create () in
  let rows =
    [
      run_ft "V5" "Vscale: pending interrupt stalls spy pipeline"
        "depth 9, <10 min"
        (V.ft_for_stage V.Arch_pipeline vscale)
        ~max_depth:8;
      run_ft "C1" "CVA6: leaks invalid I-cache data to next PC"
        "depth 76, <30 min"
        (cva6_ft (C.with_fixes ~fix_c1:false C.Microreset))
        ~max_depth:15;
      run_ft "C2" "CVA6: wrong transition in the PTW FSM" "depth 80, <6 h"
        (cva6_ft (C.with_fixes ~fix_c2:false C.Microreset))
        ~max_depth:11;
      run_ft "C3" "CVA6: valid D$ line after flush (in-flight fill)"
        "depth 80, <6 h"
        (cva6_ft (C.with_fixes ~fix_c3:false C.Microreset))
        ~max_depth:11;
      run_ft "M2" "MAPLE: leak whether the TLB was disabled"
        "depth 21, <30 min"
        (maple_ft { M.fix_m2 = false; fix_m3 = true })
        ~max_depth:10;
      run_ft "M3" "MAPLE: leak the array base-address register"
        "depth 23, <3 h"
        (maple_ft { M.fix_m2 = true; fix_m3 = false })
        ~max_depth:10;
      run_ft "A1" "AES: request in the pipeline during the switch"
        "depth 42, <1 min"
        (Autocc.Ft.generate ~threshold:2 (A.create ()))
        ~max_depth:12;
    ]
  in
  List.iter pp_row rows;
  print_newline ();
  (* The extra CVA6 findings of Sec. 4.2: the three fence.t adaptations
     of increasing exhaustiveness. The plain fence leaves caches, TLB and
     branch predictor as classic channels; the full flush still leaks via
     in-flight state (outstanding AXI transactions, PTW activity). *)
  pp_row
    (run_ft "--" "CVA6 plain fence.t: predictor/cache channels"
       "(motivates fence.t)" (cva6_ft C.plain_fence) ~max_depth:10);
  pp_row
    (run_ft "--" "CVA6 full-flush fence.t: outstanding AXI/KILL_MISS"
       "(validated prior work)" (cva6_ft C.full_flush) ~max_depth:10);
  (* M1 from Sec. 4.3: requests parked in the NoC output buffer. *)
  pp_row
    (run_ft "M1" "MAPLE: requests in NoC output buffer at switch"
       "(refined by assumption)"
       (maple_ft ~require_outbuf_empty:false M.fixed)
       ~max_depth:10)

(* {1 Table 2: every CEX on Vscale, in refinement order} *)

let table2 () =
  header "Table 2 — Vscale refinement walk (every CEX from the default FT, in order)";
  let paper_ref = function
    | V.Default -> "V1: depth 6, <10 s"
    | V.Arch_regfile -> "V2: depth 6, <10 s"
    | V.Blackbox_csr -> "V3: depth 7, <10 s"
    | V.Arch_pc -> "V4: depth 7, <10 s"
    | V.Arch_pipeline -> "V5: depth 9, <100 s"
    | V.Arch_irq -> "bounded proof (24 h)"
  in
  let dut = V.create () in
  List.iter
    (fun stage ->
      pp_row
        (run_ft "" (V.stage_name stage) (paper_ref stage)
           (V.ft_for_stage stage dut)
           ~max_depth:(match stage with V.Arch_irq -> 10 | _ -> 8)))
    V.stages

(* {1 The M3 system-level exploit (Sec. 4.3, Listing 2)} *)

let exploit () =
  header
    "Exploit — M3 covert channel at system level (paper: 0xdeadbeef in <6000 cycles; 0x0 after fix)";
  let secret = 0xdeadbeef in
  let r =
    Soc.Exploit.run
      ~config:{ M.fix_m2 = true; fix_m3 = false }
      ~secret ~iterations:8 ()
  in
  Printf.printf "vulnerable RTL : recovered 0x%08x in %5d cycles (%s)\n"
    r.Soc.Exploit.recovered r.Soc.Exploit.cycles
    (if r.Soc.Exploit.recovered = secret then "secret fully leaked" else "MISMATCH");
  let r' = Soc.Exploit.run ~config:M.fixed ~secret ~iterations:8 () in
  Printf.printf "fixed RTL      : recovered 0x%08x in %5d cycles (%s)\n"
    r'.Soc.Exploit.recovered r'.Soc.Exploit.cycles
    (if r'.Soc.Exploit.recovered = 0 then "channel closed" else "MISMATCH");
  (* A printed MISMATCH must also fail the run: CI consumes exit codes,
     not stdout. *)
  if r.Soc.Exploit.recovered <> secret || r'.Soc.Exploit.recovered <> 0 then begin
    print_endline "     exploit expectations FAILED";
    exit 1
  end

(* {1 AES full proof (Sec. 4.4)} *)

let aes_proof () =
  header
    "AES — full proof with the no-ongoing-requests condition (paper: full proof in <6 h)";
  let dut = A.create () in
  (* The deepest interesting execution is bounded by the pipeline depth
     plus the transfer period plus a margin; we check well past it. *)
  let bound = (2 * A.default_stages) + 6 in
  pp_row
    (run_ft "A" "AES, bounded check past the pipeline depth" "full proof, <6 h"
       (Autocc.Ft.generate ~threshold:2 ~flush_done:(A.flush_done_idle ()) dut)
       ~max_depth:bound);
  (* The genuine unbounded proof, by k-induction. *)
  let t0 = Unix.gettimeofday () in
  (match
     Autocc.Ft.prove ~max_depth:20
       (Autocc.Ft.generate ~threshold:2 ~flush_done:(A.flush_done_idle ()) dut)
   with
  | Bmc.Proved (k, _) ->
      Printf.printf
        "A    AES, k-induction%42s FULL PROOF k=%-3d %8.2fs  (holds at every depth)\n"
        "full proof, <6 h" k
        (Unix.gettimeofday () -. t0)
  | Bmc.Refuted _ ->
      print_endline "A    AES, k-induction: REFUTED (unexpected)";
      exit 1
  | Bmc.Unknown _ ->
      print_endline "A    AES, k-induction: unknown (unexpected)";
      exit 1);
  print_endline
    "     (MAPLE/CVA6 are not k-inductive without auxiliary invariants; their bounded\n      proofs above are the tool's verdict, as in the paper's other case studies.)"


(* {1 Fix validation (Sec. 4: re-running AutoCC after the RTL fixes)} *)

let fixes () =
  header "Fixes — RTL fixes eliminate the CEXs (paper Sec. 4: re-ran AutoCC, merged upstream)";
  let vscale = V.create () in
  List.iter pp_row
    [
      run_ft "V" "Vscale, full architectural refinement" "proof (depth 21 in 24 h)"
        (V.ft_for_stage V.Arch_irq vscale) ~max_depth:10;
      run_ft "C" "CVA6 microreset with C1+C2+C3 fixes" "no CEXs found"
        (cva6_ft C.microreset_fixed) ~max_depth:11;
      run_ft "M" "MAPLE with M2+M3 fixes (upstream commits)" "no CEXs found"
        (maple_ft M.fixed) ~max_depth:10;
      run_ft "A" "AES with idle-allocation discipline" "full proof"
        (Autocc.Ft.generate ~threshold:2 ~flush_done:(A.flush_done_idle ())
           (A.create ()))
        ~max_depth:14;
    ]

(* {1 FPV vs stress testing (the paper's "minutes instead of hours")} *)

let wide_leaky w =
  let open Rtl.Signal in
  let din = input "din" w in
  let capture = input "capture" 1 in
  let query = input "query" w in
  let stash = reg "stash" w in
  reg_set_next stash (mux2 capture din stash);
  Rtl.Circuit.create ~name:"wide_leaky" ~outputs:[ ("hit", query ==: stash) ] ()

let baseline () =
  header "Baseline — BMC vs constrained-random testing on a w-bit hidden-state channel";
  Printf.printf "%-8s %-28s %-50s\n" "width" "AutoCC (BMC)" "random two-universe testing";
  List.iter
    (fun w ->
      let dut = wide_leaky w in
      let t0 = Unix.gettimeofday () in
      let bmc =
        match Autocc.Ft.check ~max_depth:8 (Autocc.Ft.generate ~threshold:2 dut) with
        | Bmc.Cex (cex, _) ->
            Printf.sprintf "CEX depth %d in %.2fs" (cex.Bmc.cex_depth + 1)
              (Unix.gettimeofday () -. t0)
        | Bmc.Bounded_proof _ -> "missed!"
        | Bmc.Unknown (r, _) ->
            "unknown (" ^ Bmc.unknown_reason_to_string r ^ ")"
      in
      let r = Baseline.search ~max_trials:20_000 ~victim_cycles:10 ~spy_cycles:10 dut in
      let rnd =
        if r.Baseline.found then
          Printf.sprintf "found after %d trials (%d cycles, %.2fs)" r.Baseline.trials
            r.Baseline.sim_cycles r.Baseline.seconds
        else
          Printf.sprintf "NOT FOUND in %d trials (%d cycles, %.2fs)" r.Baseline.trials
            r.Baseline.sim_cycles r.Baseline.seconds
      in
      Printf.printf "%-8d %-28s %-50s\n" w bmc rnd)
    [ 4; 8; 12; 16; 20 ];
  Printf.printf
    "\nBMC cost is flat in the channel width; random testing scales as 2^w — the\n\
     crossover is the paper's motivation for formal search.\n"

(* {1 The Sec. 5 discussion: hardware vs software protections on a
   data-dependent-latency divider} *)

let divider () =
  header
    "Divider — Sec. 5 tradeoffs: close the channel in hardware or restrict the software";
  List.iter pp_row
    [
      run_ft "D1" "shared divider, default FT" "the flagged channel"
        (Autocc.Ft.generate ~threshold:2 (Duts.Divider.create ()))
        ~max_depth:12;
      run_ft "D2" "OS allocates only when idle" "hardware-side closure"
        (Autocc.Ft.generate ~threshold:2
           ~flush_done:(Duts.Divider.flush_done_idle ())
           (Duts.Divider.create ()))
        ~max_depth:12;
      run_ft "D3" "constant-time software (env. assumption)"
        "software-side closure"
        (Autocc.Ft.generate ~threshold:2
           ~assumes:Duts.Divider.constant_time_software
           (Duts.Divider.create ()))
        ~max_depth:12;
    ];
  (* The PPA cost of the hardware alternative: padded worst-case latency. *)
  let measure constant_latency =
    let sim = Sim.create (Duts.Divider.create ~constant_latency ()) in
    let latency dividend divisor =
      Sim.set_input_int sim "start" 1;
      Sim.set_input_int sim "dividend" dividend;
      Sim.set_input_int sim "divisor" divisor;
      Sim.step sim;
      Sim.set_input_int sim "start" 0;
      let n = ref 1 in
      while Sim.out_int sim "done_valid" = 0 && !n < 40 do
        Sim.step sim;
        incr n
      done;
      Sim.step sim;
      !n
    in
    (latency 3 2, latency 15 1)
  in
  let fast, slow = measure false in
  let cfast, cslow = measure true in
  Printf.printf
    "     PPA note: variable-latency divides take %d..%d cycles; the constant-latency\n\
    \     variant always takes %d (%d) — the performance price of the hardware fix.\n"
    fast slow cfast cslow

(* {1 Flush-latency channel (Sec. 3.2, "Measuring Context Switch
   Latency")} *)

let latency () =
  header
    "Flush latency — sync at flush start exposes Trojan-modulated flush latency (Sec. 3.2)";
  let dut pad = M.create ~config:M.fixed ~pad_flush:pad () in
  List.iter pp_row
    [
      run_ft "L1" "MAPLE fixed, sync at flush end" "blind spot by design"
        (Autocc.Ft.generate ~threshold:2
           ~flush_done:(M.flush_done ~require_outbuf_empty:true ())
           (dut false))
        ~max_depth:12;
      run_ft "L2" "MAPLE fixed, sync at flush start" "latency channel"
        (Autocc.Ft.generate ~threshold:2 ~sync:Autocc.Ft.Flush_start
           ~flush_done:(M.flush_start ~require_outbuf_empty:true ())
           (dut false))
        ~max_depth:12;
      run_ft "L3" "MAPLE fixed + worst-case padding, start sync"
        "microreset-style fix"
        (Autocc.Ft.generate ~threshold:2 ~sync:Autocc.Ft.Flush_start
           ~flush_done:(M.flush_start ~require_outbuf_empty:true ())
           (dut true))
        ~max_depth:12;
    ]

(* {1 State-space scaling and modularity (Secs. 1 and 3.4)} *)

let scaling () =
  header
    "Scaling — FPV cost vs structure size, and the modularity/blackboxing remedy (Sec. 3.4)";
  Printf.printf "%-30s %-12s %-30s
" "configuration" "state bits" "microreset proof (depth 11)";
  let proof ?blackbox params =
    let dut = Duts.Cva6lite.create ~config:C.microreset_fixed ~params () in
    let ft =
      Autocc.Ft.generate ~threshold:2 ?blackbox ~flush_done:(C.flush_done ()) dut
    in
    let t0 = Unix.gettimeofday () in
    match Autocc.Ft.check ~max_depth:10 ft with
    | Bmc.Bounded_proof stats ->
        ( Rtl.Circuit.state_bits ft.Autocc.Ft.dut,
          Printf.sprintf "%.2fs (%d conflicts)" (Unix.gettimeofday () -. t0)
            stats.Bmc.conflicts )
    | Bmc.Cex (cex, _) ->
        (Rtl.Circuit.state_bits ft.Autocc.Ft.dut,
         Printf.sprintf "CEX at %d (unexpected)" cex.Bmc.cex_depth)
    | Bmc.Unknown (r, _) ->
        ( Rtl.Circuit.state_bits ft.Autocc.Ft.dut,
          Printf.sprintf "unknown (%s, unexpected)"
            (Bmc.unknown_reason_to_string r) )
  in
  List.iter
    (fun n ->
      let params = { Duts.Cva6lite.icache_lines = n; dcache_lines = n; btb_entries = n } in
      let bits, r = proof params in
      Printf.printf "%-30s %-12d %-30s
" (Printf.sprintf "CVA6, %d-entry structures" n) bits r)
    [ 2; 4; 8 ];
  let bits, r =
    proof ~blackbox:[ "lsu" ]
      { Duts.Cva6lite.icache_lines = 8; dcache_lines = 8; btb_entries = 8 }
  in
  Printf.printf "%-30s %-12d %-30s
" "CVA6 8-entry, LSU blackboxed" bits r;
  Printf.printf
    "
State growth inflates solver cost (the exponential-search discussion of Sec. 1);
     cutting the load unit out (Sec. 3.4) removes its state and restores tractability,
     at the price of verifying the LSU separately.
"

(* {1 Flush synthesis (Sec. 3.5, Algorithms 1 and 2)} *)

let tdd_engine () =
  let open Rtl.Signal in
  let din = input "din" 8 in
  let cap = input "cap" 1 in
  let set_mode = input "set_mode" 1 in
  let query = input "query" 8 in
  let stash = reg "stash" 8 in
  let mode = reg "mode" 1 in
  let heartbeat = reg "heartbeat" 4 in
  reg_set_next stash (mux2 cap din stash);
  reg_set_next mode (mux2 set_mode (bit din 0) mode);
  reg_set_next heartbeat (heartbeat +: one 4);
  let hit = query ==: stash in
  Rtl.Circuit.create ~name:"engine"
    ~outputs:[ ("hit", mux2 mode hit gnd); ("beat", bit heartbeat 3) ]
    ()

let flush_tdd () =
  header "Flush synthesis — Algorithms 1 (incremental) and 2 (decremental)";
  let t0 = Unix.gettimeofday () in
  let r1 =
    Autocc.Synthesis.incremental ~max_depth:10 ~threshold:2
      ~candidates:[ "stash"; "mode"; "heartbeat" ]
      (tdd_engine ())
  in
  Printf.printf "Algorithm 1: flush set {%s} in %d FPV runs (%.2fs), proved=%b\n"
    (String.concat ", " r1.Autocc.Synthesis.flush_set)
    (List.length r1.Autocc.Synthesis.steps)
    (Unix.gettimeofday () -. t0)
    r1.Autocc.Synthesis.proved;
  let t0 = Unix.gettimeofday () in
  let r2 =
    Autocc.Synthesis.decremental ~max_depth:10 ~threshold:2
      ~candidates:[ "heartbeat"; "stash"; "mode" ]
      (tdd_engine ())
  in
  Printf.printf "Algorithm 2: minimal flush set {%s} in %d FPV runs (%.2fs), proved=%b\n"
    (String.concat ", " r2.Autocc.Synthesis.flush_set)
    (List.length r2.Autocc.Synthesis.steps)
    (Unix.gettimeofday () -. t0)
    r2.Autocc.Synthesis.proved

(* {1 Parallel engine: sequential vs sharded/portfolio wall-clock} *)

let parallel_bench () =
  header
    "Parallel — sequential engine vs domain-sharded verification (same verdicts, wall-clock speedup)";
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let jobs =
    match Sys.getenv_opt "AUTOCC_JOBS" with
    | Some s -> ( try int_of_string s with _ -> Parallel.default_jobs ())
    | None -> Parallel.default_jobs ()
  in
  Printf.printf "worker domains: %d (cores: %d; set AUTOCC_JOBS to override)\n\n"
    jobs
    (Domain.recommended_domain_count ());
  let describe = function
    | Bmc.Cex (cex, _) -> Printf.sprintf "CEX depth %d" (cex.Bmc.cex_depth + 1)
    | Bmc.Bounded_proof st -> Printf.sprintf "proof to %d" (st.Bmc.depth_reached + 1)
    | Bmc.Unknown (r, _) ->
        Printf.sprintf "unknown (%s)" (Bmc.unknown_reason_to_string r)
  in
  let mismatches = ref 0 in
  let json_rows = ref [] in
  let row id description ?portfolio ft ~max_depth =
    let t0 = Unix.gettimeofday () in
    let seq = Autocc.Ft.check ~max_depth ft in
    let seq_t = Unix.gettimeofday () -. t0 in
    let t0 = Unix.gettimeofday () in
    let par, detail = Autocc.Ft.check_detailed ~max_depth ~jobs ?portfolio ft in
    let par_t = Unix.gettimeofday () -. t0 in
    (* The acceptance bar: identical outcome kind, CEX depth and (for
       sharding, which re-validates on the full property) a failing set
       that the sequential engine could also have reported. *)
    let agree =
      match (seq, par) with
      | Bmc.Cex (c1, _), Bmc.Cex (c2, _) -> c1.Bmc.cex_depth = c2.Bmc.cex_depth
      | Bmc.Bounded_proof _, Bmc.Bounded_proof _ -> true
      | _ -> false
    in
    if not agree then incr mismatches;
    Printf.printf "%-4s %-40s seq %-14s %7.2fs | par %-14s %7.2fs | %5.2fx%s\n" id
      description (describe seq) seq_t (describe par) par_t
      (seq_t /. Float.max 1e-9 par_t)
      (if agree then "" else "  MISMATCH");
    let merged = Autocc.Report.merge_stats detail in
    Printf.printf "     %s\n"
      (Format.asprintf "%a" Autocc.Report.pp_merged merged);
    json_rows :=
      Json.Obj
        [
          ("id", Json.Str id);
          ("description", Json.Str description);
          ( "portfolio",
            match portfolio with Some p -> Json.Int p | None -> Json.Null );
          ("max_depth", Json.Int max_depth);
          ("sequential", json_of_outcome seq ~wall:seq_t);
          ("parallel", json_of_outcome par ~wall:par_t);
          ("merged", Autocc.Report.json_of_merged merged);
          ("speedup", Json.Float (seq_t /. Float.max 1e-9 par_t));
          ("agree", Json.Bool agree);
        ]
      :: !json_rows
  in
  let vscale = V.create () in
  row "V5" "Vscale: pending-IRQ channel (Table 1 row)"
    (V.ft_for_stage V.Arch_pipeline vscale)
    ~max_depth:8;
  row "M3" "MAPLE: base-address leak"
    (maple_ft { M.fix_m2 = true; fix_m3 = false })
    ~max_depth:10;
  row "C0" "CVA6: microreset, all fixes (bounded proof)" (cva6_ft C.microreset_fixed)
    ~max_depth:11;
  row "A1" "AES: idle flush, portfolio of 4" ~portfolio:4
    (Autocc.Ft.generate ~threshold:2 ~flush_done:(A.flush_done_idle ()) (A.create ()))
    ~max_depth:12;
  print_newline ();
  Json.write ~path:"BENCH_parallel.json"
    (Json.Obj
       [
         ("bench", Json.Str "parallel");
         ("jobs", Json.Int jobs);
         ("rows", Json.List (List.rev !json_rows));
         ("mismatches", Json.Int !mismatches);
         ("telemetry", Obs.Metrics.json_of_snapshot ());
       ]);
  if !mismatches = 0 then
    print_endline "     all parallel verdicts and CEX depths match the sequential engine"
  else begin
    Printf.printf "     %d MISMATCH(ES) between sequential and parallel runs\n" !mismatches;
    exit 1
  end

(* {1 Optimizer benchmark: -O0 vs -O2 end-to-end, identical verdicts} *)

(* The Table-1 row set shared by [opt_bench] and the [@bench-smoke]
   runtest hook. Thunks, so each run rebuilds the FT fresh. *)
let opt_rows () =
  let vscale = V.create () in
  [
    ( "V5",
      "Vscale: pending-IRQ channel",
      (fun () -> V.ft_for_stage V.Arch_pipeline vscale),
      8 );
    ( "C1",
      "CVA6: I-cache leak to next PC",
      (fun () -> cva6_ft (C.with_fixes ~fix_c1:false C.Microreset)),
      15 );
    ( "C2",
      "CVA6: wrong PTW FSM transition",
      (fun () -> cva6_ft (C.with_fixes ~fix_c2:false C.Microreset)),
      11 );
    ( "M2",
      "MAPLE: TLB-disabled leak",
      (fun () -> maple_ft { M.fix_m2 = false; fix_m3 = true }),
      10 );
    ( "M3",
      "MAPLE: base-address leak",
      (fun () -> maple_ft { M.fix_m2 = true; fix_m3 = false }),
      10 );
    ( "A1",
      "AES: request in pipeline at switch",
      (fun () -> Autocc.Ft.generate ~threshold:2 (A.create ())),
      12 );
    ( "C0",
      "CVA6: microreset, all fixes (bounded proof)",
      (fun () -> cva6_ft C.microreset_fixed),
      11 );
    (* Proof-heavy rows: deep unrollings dominated by solver time, where
       the netlist pipeline pays for itself many times over. *)
    ( "V",
      "Vscale: full arch refinement (deep proof)",
      (fun () -> V.ft_for_stage V.Arch_irq vscale),
      9 );
    ( "V3",
      "Vscale: CSR blackboxed (Table 2 stage)",
      (fun () -> V.ft_for_stage V.Blackbox_csr vscale),
      8 );
    ( "C0+",
      "CVA6: microreset proof, deeper bound",
      (fun () -> cva6_ft C.microreset_fixed),
      13 );
  ]

(* One row at both optimization levels; returns (json, agree, speedup). *)
let opt_row (id, description, mk_ft, max_depth) =
  let run opt =
    let ft = mk_ft () in
    let t0 = Unix.gettimeofday () in
    let outcome = Autocc.Ft.check ~max_depth ~opt ft in
    (outcome, Unix.gettimeofday () -. t0)
  in
  let o0, t0_s = run Opt.O0 in
  let o2, t2_s = run Opt.O2 in
  let agree =
    match (o0, o2) with
    | Bmc.Cex (c1, _), Bmc.Cex (c2, _) -> c1.Bmc.cex_depth = c2.Bmc.cex_depth
    | Bmc.Bounded_proof s1, Bmc.Bounded_proof s2 ->
        s1.Bmc.depth_reached = s2.Bmc.depth_reached
    | _ -> false
  in
  let describe = function
    | Bmc.Cex (cex, _) -> Printf.sprintf "CEX depth %d" (cex.Bmc.cex_depth + 1)
    | Bmc.Bounded_proof st -> Printf.sprintf "proof to %d" (st.Bmc.depth_reached + 1)
    | Bmc.Unknown (r, _) ->
        Printf.sprintf "unknown (%s)" (Bmc.unknown_reason_to_string r)
  in
  let speedup = t0_s /. Float.max 1e-9 t2_s in
  Printf.printf "%-4s %-44s O0 %-14s %7.2fs | O2 %-14s %7.2fs | %5.2fx%s\n" id
    description (describe o0) t0_s (describe o2) t2_s speedup
    (if agree then "" else "  MISMATCH");
  let json =
    Json.Obj
      [
        ("id", Json.Str id);
        ("description", Json.Str description);
        ("max_depth", Json.Int max_depth);
        ("o0", json_of_outcome o0 ~wall:t0_s);
        ("o2", json_of_outcome o2 ~wall:t2_s);
        ("speedup", Json.Float speedup);
        ("agree", Json.Bool agree);
      ]
  in
  (json, agree, speedup)

let opt_bench () =
  header
    "Optimizer — end-to-end BMC at -O0 vs -O2 (identical verdicts and CEX depths, wall-clock speedup)";
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let wanted =
    match Sys.getenv_opt "AUTOCC_BENCH_ROWS" with
    | None | Some "" -> List.map (fun (id, _, _, _) -> id) (opt_rows ())
    | Some s -> String.split_on_char ',' s
  in
  let results =
    List.map opt_row
      (List.filter (fun (id, _, _, _) -> List.mem id wanted) (opt_rows ()))
  in
  let mismatches = List.length (List.filter (fun (_, a, _) -> not a) results) in
  let fast = List.length (List.filter (fun (_, _, s) -> s >= 1.5) results) in
  print_newline ();
  Json.write ~path:"BENCH_opt.json"
    (Json.Obj
       [
         ("bench", Json.Str "opt");
         ("rows", Json.List (List.map (fun (j, _, _) -> j) results));
         ("mismatches", Json.Int mismatches);
         ("rows_speedup_ge_1_5", Json.Int fast);
         ("telemetry", Obs.Metrics.json_of_snapshot ());
       ]);
  Printf.printf "     %d/%d rows at >= 1.5x speedup under -O2\n" fast
    (List.length results);
  if mismatches = 0 then
    print_endline "     all -O2 verdicts and CEX depths match -O0"
  else begin
    Printf.printf "     %d MISMATCH(ES) between -O0 and -O2 runs\n" mismatches;
    exit 1
  end

(* {1 Incremental-engine benchmark: persistent solver vs scratch re-blast} *)

(* The rows where depth unrolling dominates: the deep bounded proof V
   and a spread of CEX rows at varying depths run [Ft.check]; the C0+
   row runs [Bmc.check_each] — per-assertion bounded proofs in one
   shared solver session, against per-assertion scratch sweeps — which
   is where session reuse compounds (one unrolling serves every
   assertion). V and C0+ are the rows the [@incremental-smoke]
   validator gates at >= 1.5x. Both engines run at -O2, so the only
   variable is solver-session reuse. *)
let incremental_row_ids = [ "V5"; "M3"; "A1"; "C0"; "V"; "C0+" ]

(* Pairwise outcome agreement, shared by the [check] and [check_each]
   row runners. *)
let outcomes_agree scr inc =
  match (scr, inc) with
  | Bmc.Cex (c1, _), Bmc.Cex (c2, _) -> c1.Bmc.cex_depth = c2.Bmc.cex_depth
  | Bmc.Bounded_proof s1, Bmc.Bounded_proof s2 ->
      s1.Bmc.depth_reached = s2.Bmc.depth_reached
  | Bmc.Unknown (r1, _), Bmc.Unknown (r2, _) ->
      Bmc.unknown_reason_to_string r1 = Bmc.unknown_reason_to_string r2
  | _ -> false

let incremental_row ~force_mismatch (id, description, mk_ft, max_depth) =
  (* The shared -O2 front end (FT generation + instrument + netlist
     pipeline) runs ONCE, outside both timed intervals: the arms then
     differ only in solver-session reuse, so the walls measure solving,
     not re-optimization. [setup_s] is reported as its own field. *)
  let ft = mk_ft () in
  let su = Unix.gettimeofday () in
  let circuit, property, sym, _ =
    Bmc.preoptimize ~opt:Opt.O2 ~sym:ft.Autocc.Ft.sym ft.Autocc.Ft.wrapper
      ft.Autocc.Ft.property
  in
  let setup_s = Unix.gettimeofday () -. su in
  let run incremental =
    let t0 = Unix.gettimeofday () in
    let outcome =
      Bmc.check ~max_depth ~incremental ~opt:Opt.O0 ~sym circuit property
    in
    (outcome, Unix.gettimeofday () -. t0)
  in
  let scr, scr_t = run false in
  let inc, inc_t = run true in
  let agree = (not force_mismatch) && outcomes_agree scr inc in
  let describe = function
    | Bmc.Cex (cex, _) -> Printf.sprintf "CEX depth %d" (cex.Bmc.cex_depth + 1)
    | Bmc.Bounded_proof st -> Printf.sprintf "proof to %d" (st.Bmc.depth_reached + 1)
    | Bmc.Unknown (r, _) ->
        Printf.sprintf "unknown (%s)" (Bmc.unknown_reason_to_string r)
  in
  let speedup = scr_t /. Float.max 1e-9 inc_t in
  Printf.printf
    "%-4s %-44s scratch %-14s %7.2fs | incr %-14s %7.2fs | %5.2fx (setup %.2fs)%s\n"
    id description (describe scr) scr_t (describe inc) inc_t speedup setup_s
    (if agree then "" else "  MISMATCH");
  let json =
    Json.Obj
      [
        ("id", Json.Str id);
        ("description", Json.Str description);
        ("max_depth", Json.Int max_depth);
        ("setup_s", Json.Float setup_s);
        ("scratch", json_of_outcome scr ~wall:scr_t);
        ("incremental", json_of_outcome inc ~wall:inc_t);
        ("speedup", Json.Float speedup);
        ("agree", Json.Bool agree);
      ]
  in
  (json, agree, speedup)

(* The [check_each] row: per-assertion bounded proofs. The incremental
   engine serves every assertion from one solver session (one circuit
   optimization, one unrolling, per-assertion activation queries, proved
   facts shared); the scratch oracle runs one independent per-depth
   re-blasting sweep per assertion. The report aggregates the
   per-assertion outcomes: the row's verdict is [bounded_proof] only if
   every assertion reached the bound, a CEX on any assertion surfaces as
   [cex] at the shallowest depth, and the stats of the deepest-working
   assertion stand for the side (for the incremental side those are
   session totals, since the session's counters are cumulative). *)
let incremental_each_row ~force_mismatch (id, description, mk_ft, max_depth) =
  (* As in [incremental_row]: one shared -O2 setup outside the timed
     intervals, arms at -O0 on the preoptimized cone. *)
  let ft = mk_ft () in
  let su = Unix.gettimeofday () in
  let circuit, property, sym, _ =
    Bmc.preoptimize ~opt:Opt.O2 ~sym:ft.Autocc.Ft.sym ft.Autocc.Ft.wrapper
      ft.Autocc.Ft.property
  in
  let setup_s = Unix.gettimeofday () -. su in
  let run incremental =
    let t0 = Unix.gettimeofday () in
    let rs =
      Bmc.check_each ~max_depth ~incremental ~opt:Opt.O0 ~sym circuit property
    in
    (rs, Unix.gettimeofday () -. t0)
  in
  let scr, scr_t = run false in
  let inc, inc_t = run true in
  let agree =
    (not force_mismatch)
    && List.length scr = List.length inc
    && List.for_all2
         (fun (n1, o1) (n2, o2) -> n1 = n2 && outcomes_agree o1 o2)
         scr inc
  in
  let aggregate rs =
    let worst =
      List.fold_left
        (fun acc (_, o) ->
          match (acc, o) with
          | (Bmc.Cex (c1, _) as a), Bmc.Cex (c2, _) ->
              if c2.Bmc.cex_depth < c1.Bmc.cex_depth then o else a
          | Bmc.Cex _, _ -> acc
          | _, Bmc.Cex _ -> o
          | (Bmc.Unknown _ as a), _ -> a
          | _, (Bmc.Unknown _ as u) -> u
          | Bmc.Bounded_proof _, (Bmc.Bounded_proof _ as b) -> b)
        (snd (List.hd rs))
        (List.tl rs)
    in
    worst
  in
  let describe rs =
    match aggregate rs with
    | Bmc.Cex (cex, _) -> Printf.sprintf "CEX depth %d" (cex.Bmc.cex_depth + 1)
    | Bmc.Bounded_proof st ->
        Printf.sprintf "%d proofs to %d" (List.length rs)
          (st.Bmc.depth_reached + 1)
    | Bmc.Unknown (r, _) ->
        Printf.sprintf "unknown (%s)" (Bmc.unknown_reason_to_string r)
  in
  let speedup = scr_t /. Float.max 1e-9 inc_t in
  Printf.printf
    "%-4s %-44s scratch %-14s %7.2fs | incr %-14s %7.2fs | %5.2fx (setup %.2fs)%s\n"
    id description (describe scr) scr_t (describe inc) inc_t speedup setup_s
    (if agree then "" else "  MISMATCH");
  let json =
    Json.Obj
      [
        ("id", Json.Str id);
        ("description", Json.Str description);
        ("max_depth", Json.Int max_depth);
        ("setup_s", Json.Float setup_s);
        ("assertions", Json.Int (List.length scr));
        ("scratch", json_of_outcome (aggregate scr) ~wall:scr_t);
        ("incremental", json_of_outcome (aggregate inc) ~wall:inc_t);
        ("speedup", Json.Float speedup);
        ("agree", Json.Bool agree);
      ]
  in
  (json, agree, speedup)

let incremental_bench () =
  header
    "Incremental — persistent-solver BMC vs per-depth scratch re-blast (identical verdicts, cumulative-depth speedup)";
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  (* Exit-code self-test knob: force every row to report disagreement so
     the test suite can assert the bench exits nonzero on mismatches
     without needing a genuinely broken engine. *)
  let force_mismatch = Sys.getenv_opt "AUTOCC_BENCH_FORCE_MISMATCH" <> None in
  (* AUTOCC_BENCH_ROWS=V5,M3 restricts the row set — used by the
     exit-code self-test so it doesn't pay for the deep-proof rows. *)
  let wanted =
    match Sys.getenv_opt "AUTOCC_BENCH_ROWS" with
    | None | Some "" -> incremental_row_ids
    | Some s -> String.split_on_char ',' s
  in
  let rows =
    List.filter (fun (id, _, _, _) -> List.mem id wanted) (opt_rows ())
  in
  let results =
    List.map
      (fun ((id, _, mk_ft, _) as row) ->
        if id = "C0+" then
          (* The deep-proof gate row runs the per-assertion sweep — the
             workload where one shared session replaces one scratch
             re-blasting sweep per assertion. *)
          incremental_each_row ~force_mismatch
            (id, "CVA6: microreset, per-assertion proofs", mk_ft, 13)
        else incremental_row ~force_mismatch row)
      rows
  in
  let mismatches = List.length (List.filter (fun (_, a, _) -> not a) results) in
  let fast = List.length (List.filter (fun (_, _, s) -> s >= 1.5) results) in
  print_newline ();
  (* Overridable so the forced-mismatch exit-code self-test doesn't
     clobber the real artifact the validator reads. *)
  let out =
    Option.value
      (Sys.getenv_opt "AUTOCC_BENCH_OUT")
      ~default:"BENCH_incremental.json"
  in
  Json.write ~path:out
    (Json.Obj
       [
         ("bench", Json.Str "incremental");
         ("rows", Json.List (List.map (fun (j, _, _) -> j) results));
         ("mismatches", Json.Int mismatches);
         ("rows_speedup_ge_1_5", Json.Int fast);
         ("telemetry", Obs.Metrics.json_of_snapshot ());
       ]);
  Printf.printf "     %d/%d rows at >= 1.5x cumulative-depth speedup\n" fast
    (List.length results);
  if mismatches = 0 then
    print_endline
      "     all incremental verdicts and CEX depths match the scratch engine"
  else begin
    Printf.printf "     %d MISMATCH(ES) between incremental and scratch runs\n"
      mismatches;
    exit 1
  end

(* {1 Verdict-cache benchmark: cold solve vs warm on-disk replay} *)

(* Cold phase: a fresh store, every verdict solved and persisted. Warm
   phase: a NEW [Cache.create] over the same directory, so every hit
   rides the JSONL codec + integrity digest + CEX replay-revalidation
   path — exactly what a re-run campaign exercises — rather than the
   in-memory table. Verdicts must agree (kind, depth) row by row and
   every warm row must hit; either failure exits nonzero. *)
let cache_row_ids = [ "V5"; "M3"; "A1"; "C0" ]

let cache_bench () =
  header
    "Verdict cache — cold solve vs warm content-addressed replay (identical verdicts, on-disk round trip)";
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let force_mismatch = Sys.getenv_opt "AUTOCC_BENCH_FORCE_MISMATCH" <> None in
  let wanted =
    match Sys.getenv_opt "AUTOCC_BENCH_ROWS" with
    | None | Some "" -> cache_row_ids
    | Some s -> String.split_on_char ',' s
  in
  let rows =
    List.filter (fun (id, _, _, _) -> List.mem id wanted) (opt_rows ())
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "autocc_bench_cache_%d" (Unix.getpid ()))
  in
  (* Fresh store: drop leftovers from a previous run under this pid. *)
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  let run_all cache =
    List.map
      (fun (id, description, mk_ft, max_depth) ->
        let ft = mk_ft () in
        let t0 = Unix.gettimeofday () in
        let outcome = Autocc.Ft.check ~max_depth ~cache ft in
        (id, description, max_depth, outcome, Unix.gettimeofday () -. t0))
      rows
  in
  let cold_cache = Cache.create ~dir () in
  let cold = run_all cold_cache in
  let cold_stats = Cache.stats cold_cache in
  let warm_cache = Cache.create ~dir () in
  let warm = run_all warm_cache in
  let warm_stats = Cache.stats warm_cache in
  let describe = function
    | Bmc.Cex (cex, _) -> Printf.sprintf "CEX depth %d" (cex.Bmc.cex_depth + 1)
    | Bmc.Bounded_proof st ->
        Printf.sprintf "proof to %d" (st.Bmc.depth_reached + 1)
    | Bmc.Unknown (r, _) ->
        Printf.sprintf "unknown (%s)" (Bmc.unknown_reason_to_string r)
  in
  let results =
    List.map2
      (fun (id, description, max_depth, c_out, c_t) (_, _, _, w_out, w_t) ->
        let agree = (not force_mismatch) && outcomes_agree c_out w_out in
        let speedup = c_t /. Float.max 1e-9 w_t in
        Printf.printf
          "%-4s %-44s cold %-14s %7.2fs | warm %-14s %7.2fs | %7.1fx%s\n" id
          description (describe c_out) c_t (describe w_out) w_t speedup
          (if agree then "" else "  MISMATCH");
        let json =
          Json.Obj
            [
              ("id", Json.Str id);
              ("description", Json.Str description);
              ("max_depth", Json.Int max_depth);
              ("cold", json_of_outcome c_out ~wall:c_t);
              ("warm", json_of_outcome w_out ~wall:w_t);
              ("speedup", Json.Float speedup);
              ("agree", Json.Bool agree);
            ]
        in
        (json, agree, c_t, w_t))
      cold warm
  in
  let mismatches =
    List.length (List.filter (fun (_, a, _, _) -> not a) results)
  in
  let cold_s = List.fold_left (fun acc (_, _, c, _) -> acc +. c) 0. results in
  let warm_s = List.fold_left (fun acc (_, _, _, w) -> acc +. w) 0. results in
  let speedup = cold_s /. Float.max 1e-9 warm_s in
  print_newline ();
  let json_of_stats (s : Cache.stats) =
    Json.Obj
      [
        ("hits", Json.Int s.Cache.hits);
        ("misses", Json.Int s.Cache.misses);
        ("stores", Json.Int s.Cache.stores);
        ("rejects", Json.Int s.Cache.rejects);
      ]
  in
  let out =
    Option.value (Sys.getenv_opt "AUTOCC_BENCH_OUT") ~default:"BENCH_cache.json"
  in
  Json.write ~path:out
    (Json.Obj
       [
         ("bench", Json.Str "cache");
         ("rows", Json.List (List.map (fun (j, _, _, _) -> j) results));
         ("mismatches", Json.Int mismatches);
         ("cold_s", Json.Float cold_s);
         ("warm_s", Json.Float warm_s);
         ("speedup", Json.Float speedup);
         ("cold_cache", json_of_stats cold_stats);
         ("warm_cache", json_of_stats warm_stats);
         ("telemetry", Obs.Metrics.json_of_snapshot ());
       ]);
  Printf.printf
    "     cold %.2fs (%d stores) -> warm %.2fs (%d hits, %d rejects): %.1fx\n"
    cold_s cold_stats.Cache.stores warm_s warm_stats.Cache.hits
    warm_stats.Cache.rejects speedup;
  if mismatches = 0 && warm_stats.Cache.hits > 0 then
    print_endline "     all warm verdicts match the cold solve"
  else begin
    if warm_stats.Cache.hits = 0 then
      print_endline "     FAILURE: warm run produced zero cache hits";
    if mismatches > 0 then
      Printf.printf "     %d MISMATCH(ES) between cold and warm runs\n"
        mismatches;
    exit 1
  end

(* {1 Symmetric-blasting benchmark: mirrored template vs double blast} *)

(* End-to-end differential ([--no-symmetric] is the double-blast oracle)
   plus a template-construction micro-measure: the end-to-end walls are
   solver-dominated, so the second number times exactly the code the
   flag shortens — building the per-cycle transition-relation template
   on the -O2 cone, with and without the symmetric pairs (min-of-3). *)
let symmetric_row_ids = [ "V5"; "M3"; "A1"; "C0" ]

let symmetric_row ~force_mismatch (id, description, mk_ft, max_depth) =
  let run symmetric =
    let ft = mk_ft () in
    let t0 = Unix.gettimeofday () in
    let outcome = Autocc.Ft.check ~max_depth ~symmetric ft in
    (outcome, Unix.gettimeofday () -. t0)
  in
  let dbl, dbl_t = run false in
  let sym, sym_t = run true in
  let agree = (not force_mismatch) && outcomes_agree dbl sym in
  let ft = mk_ft () in
  let circuit, _, pairs, _ =
    Bmc.preoptimize ~opt:Opt.O2 ~sym:ft.Autocc.Ft.sym ft.Autocc.Ft.wrapper
      ft.Autocc.Ft.property
  in
  let template_time sym_pairs =
    let best = ref infinity in
    for _ = 1 to 3 do
      let solver = Sat.Solver.create () in
      let b =
        Cnf.Blast.create ~mode:Cnf.Blast.Template ~sym:sym_pairs solver circuit
      in
      (* Cycle 0 is encoded directly (identical in both arms, so kept
         outside the timed interval); cycle 1 builds and stamps the
         transition-relation template — the cost the flag shortens. *)
      Cnf.Blast.unroll_cycle b;
      let t0 = Unix.gettimeofday () in
      Cnf.Blast.unroll_cycle b;
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let tpl_dbl = template_time [] in
  let tpl_sym = template_time pairs in
  let describe = function
    | Bmc.Cex (cex, _) -> Printf.sprintf "CEX depth %d" (cex.Bmc.cex_depth + 1)
    | Bmc.Bounded_proof st ->
        Printf.sprintf "proof to %d" (st.Bmc.depth_reached + 1)
    | Bmc.Unknown (r, _) ->
        Printf.sprintf "unknown (%s)" (Bmc.unknown_reason_to_string r)
  in
  let tpl_speedup = tpl_dbl /. Float.max 1e-9 tpl_sym in
  Printf.printf
    "%-4s %-44s 2x-blast %-14s %7.2fs | sym %-14s %7.2fs | template %5.2fx (%d pairs)%s\n"
    id description (describe dbl) dbl_t (describe sym) sym_t tpl_speedup
    (List.length pairs)
    (if agree then "" else "  MISMATCH");
  let json =
    Json.Obj
      [
        ("id", Json.Str id);
        ("description", Json.Str description);
        ("max_depth", Json.Int max_depth);
        ("sym_pairs", Json.Int (List.length pairs));
        ("double_blast", json_of_outcome dbl ~wall:dbl_t);
        ("symmetric", json_of_outcome sym ~wall:sym_t);
        ("template_double_s", Json.Float tpl_dbl);
        ("template_symmetric_s", Json.Float tpl_sym);
        ("template_speedup", Json.Float tpl_speedup);
        ("agree", Json.Bool agree);
      ]
  in
  (json, agree, tpl_speedup)

let symmetric_bench () =
  header
    "Symmetric blasting — mirrored two-universe template vs double blast (identical verdicts, template-build speedup)";
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let force_mismatch = Sys.getenv_opt "AUTOCC_BENCH_FORCE_MISMATCH" <> None in
  let wanted =
    match Sys.getenv_opt "AUTOCC_BENCH_ROWS" with
    | None | Some "" -> symmetric_row_ids
    | Some s -> String.split_on_char ',' s
  in
  let rows =
    List.filter (fun (id, _, _, _) -> List.mem id wanted) (opt_rows ())
  in
  let results = List.map (symmetric_row ~force_mismatch) rows in
  let mismatches = List.length (List.filter (fun (_, a, _) -> not a) results) in
  let faster =
    List.length (List.filter (fun (_, _, s) -> s > 1.0) results)
  in
  print_newline ();
  let out =
    Option.value
      (Sys.getenv_opt "AUTOCC_BENCH_OUT")
      ~default:"BENCH_symmetric.json"
  in
  Json.write ~path:out
    (Json.Obj
       [
         ("bench", Json.Str "symmetric");
         ("rows", Json.List (List.map (fun (j, _, _) -> j) results));
         ("mismatches", Json.Int mismatches);
         ("rows_template_faster", Json.Int faster);
         ("telemetry", Obs.Metrics.json_of_snapshot ());
       ]);
  Printf.printf "     %d/%d rows build the template faster symmetrically\n"
    faster (List.length results);
  if mismatches = 0 then
    print_endline
      "     all symmetric verdicts and CEX depths match the double-blast oracle"
  else begin
    Printf.printf "     %d MISMATCH(ES) between symmetric and double-blast runs\n"
      mismatches;
    exit 1
  end

(* One tiny Table-1 row end-to-end at both levels — seconds, not minutes.
   Wired into [dune runtest] via the [@bench-smoke] alias so every test
   run exercises the full generate-FT -> optimize -> blast -> solve ->
   replay path on a real DUT. *)
let smoke () =
  header "Bench smoke — one Table-1 row, -O0 vs -O2";
  let ((_, _, mk_ft, max_depth) as row) =
    List.find (fun (id, _, _, _) -> id = "M3") (opt_rows ())
  in
  let _, agree, _ = opt_row row in
  if agree then print_endline "     smoke OK: verdict and CEX depth agree across -O0/-O2"
  else begin
    print_endline "     smoke FAILED: -O0 and -O2 disagree";
    exit 1
  end;
  (* Telemetry-overhead gate: the same row at -O2 with every telemetry
     face on (metrics + JSONL sink + trace writer) must stay within
     budget of the plain run. min-of-two per config to shave scheduler
     noise; the bound is deliberately loose (the DESIGN.md budget of
     <= 2% applies to telemetry *disabled*, which the tier-1 runs
     already exercise — here we bound the *enabled* cost). *)
  let time_once () =
    let ft = mk_ft () in
    let t0 = Unix.gettimeofday () in
    ignore (Autocc.Ft.check ~max_depth ~opt:Opt.O2 ft);
    Unix.gettimeofday () -. t0
  in
  let min_of_two f =
    let a = f () in
    let b = f () in
    Float.min a b
  in
  let plain = min_of_two time_once in
  let trace_path = Filename.temp_file "autocc_smoke" ".trace.json" in
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  Obs.set_log_sink (Some (fun _ -> ()));
  Obs.trace_to_file trace_path;
  let instrumented = min_of_two time_once in
  Obs.shutdown ();
  (try Sys.remove trace_path with Sys_error _ -> ());
  let ratio = instrumented /. Float.max 1e-9 plain in
  Printf.printf "     telemetry overhead: plain %.3fs, instrumented %.3fs (%.2fx)\n"
    plain instrumented ratio;
  if ratio > 1.25 then begin
    print_endline "     smoke FAILED: telemetry-enabled overhead above 1.25x budget";
    exit 1
  end
  else print_endline "     smoke OK: telemetry overhead within budget";
  (* Same gate for the event bus: metrics plus a live bus with a JSONL
     file sink (the `campaign --out` configuration) — every depth, CEX,
     job and cache event stamped, ring-buffered and flushed to disk —
     must also stay within 1.25x of the plain run. *)
  let events_path = Filename.temp_file "autocc_smoke" ".events.jsonl" in
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  Obs.Bus.attach ~file:events_path ();
  let bus_on = min_of_two time_once in
  Obs.shutdown ();
  (try Sys.remove events_path with Sys_error _ -> ());
  let bus_ratio = bus_on /. Float.max 1e-9 plain in
  Printf.printf
    "     event-bus overhead: plain %.3fs, bus+file sink %.3fs (%.2fx)\n" plain
    bus_on bus_ratio;
  if bus_ratio > 1.25 then begin
    print_endline "     smoke FAILED: event-bus-enabled overhead above 1.25x budget";
    exit 1
  end
  else print_endline "     smoke OK: event-bus overhead within budget"

(* {1 Campaign: per-assertion sweep + provenance/clustering over the
   Table-1 row set, one JSON artifact per deduplicated channel} *)

let campaign_bench () =
  header
    "Campaign — per-assertion CEX sweep, sliced/minimized/clustered into distinct channels";
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let vscale = V.create () in
  let entries =
    [
      {
        Explain.Campaign.e_label = "vscale_arch_pipeline";
        e_dut = "vscale";
        e_ft = (fun () -> V.ft_for_stage V.Arch_pipeline vscale);
        e_max_depth = 8;
      };
      {
        Explain.Campaign.e_label = "maple_m3";
        e_dut = "maple";
        e_ft = (fun () -> maple_ft { M.fix_m2 = true; fix_m3 = false });
        e_max_depth = 10;
      };
      {
        Explain.Campaign.e_label = "divider";
        e_dut = "divider";
        e_ft =
          (fun () -> Autocc.Ft.generate ~threshold:2 (Duts.Divider.create ()));
        e_max_depth = 12;
      };
      {
        Explain.Campaign.e_label = "maple_fixed";
        e_dut = "maple";
        e_ft = (fun () -> maple_ft M.fixed);
        e_max_depth = 8;
      };
    ]
  in
  let t0 = Unix.gettimeofday () in
  let result = Explain.Campaign.run ~opt:Opt.O2 ~out_dir:"autocc_campaign" entries in
  Explain.Campaign.pp Format.std_formatter result;
  Printf.printf "\n     %d artifacts under autocc_campaign/ in %.2fs\n"
    (List.length result.Explain.Campaign.c_artifacts)
    (Unix.gettimeofday () -. t0);
  (* The acceptance bar: CEX-bearing entries must dedupe into at least
     one channel each, every minimized witness already replay-verified
     by Explain.minimize; the fixed row must report zero channels. *)
  let failures = ref 0 in
  List.iter
    (fun r ->
      let n = List.length r.Explain.Campaign.r_channels in
      let expect_channels = r.Explain.Campaign.r_label <> "maple_fixed" in
      if expect_channels && n = 0 then begin
        Printf.printf "     FAILED: %s found no channel\n" r.Explain.Campaign.r_label;
        incr failures
      end;
      if (not expect_channels) && n > 0 then begin
        Printf.printf "     FAILED: %s reported %d channel(s) on fixed RTL\n"
          r.Explain.Campaign.r_label n;
        incr failures
      end;
      if r.Explain.Campaign.r_raw_cexs < n then begin
        Printf.printf "     FAILED: %s has more channels than raw CEXs\n"
          r.Explain.Campaign.r_label;
        incr failures
      end)
    result.Explain.Campaign.c_results;
  Json.write ~path:"BENCH_campaign.json"
    (Json.Obj
       [
         ("bench", Json.Str "campaign");
         ("campaign", Explain.Campaign.json_of_campaign result);
         ("failures", Json.Int !failures);
         ("telemetry", Obs.Metrics.json_of_snapshot ());
       ]);
  if !failures = 0 then
    print_endline "     all entries clustered as expected (fixed RTL: no channels)"
  else begin
    Printf.printf "     %d FAILURE(S) in campaign expectations\n" !failures;
    exit 1
  end

(* {1 Robustness: budget-forced Unknown verdicts, retry accounting, and
   the unbudgeted rerun completing with the reference verdict} *)

let robustness_bench () =
  header
    "Robustness — budgets only downgrade verdicts to Unknown; retries are accounted; the unbudgeted run completes";
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let mk_ft () = maple_ft { M.fix_m2 = true; fix_m3 = false } in
  let max_depth = 10 in
  let describe = function
    | Bmc.Cex (cex, _) -> Printf.sprintf "CEX depth %d" (cex.Bmc.cex_depth + 1)
    | Bmc.Bounded_proof st ->
        Printf.sprintf "proof to %d" (st.Bmc.depth_reached + 1)
    | Bmc.Unknown (r, st) ->
        Printf.sprintf "unknown (%s), clean to %d"
          (Bmc.unknown_reason_to_string r)
          (st.Bmc.depth_reached + 1)
  in
  let failures = ref 0 in
  (* A deadline already in the past when the first solve starts:
     deterministically Unknown on any machine, no matter how fast. *)
  let tiny = Bmc.budget ~wall_s:1e-6 () in
  let retry =
    Retry.policy ~max_attempts:3 ~backoff_base_s:0.001 ~backoff_cap_s:0.002 ()
  in
  let t0 = Unix.gettimeofday () in
  let budgeted, detail =
    Autocc.Ft.check_detailed ~max_depth ~jobs:2 ~budget:tiny ~retry (mk_ft ())
  in
  let budget_t = Unix.gettimeofday () -. t0 in
  let merged = Autocc.Report.merge_stats detail in
  Printf.printf
    "tiny budget : %-36s %6.2fs  (%d unknown, %d timeouts, %d retries)\n"
    (describe budgeted) budget_t merged.Autocc.Report.m_unknown
    merged.Autocc.Report.m_timeout merged.Autocc.Report.m_retries;
  let t0 = Unix.gettimeofday () in
  let full = Autocc.Ft.check ~max_depth (mk_ft ()) in
  let full_t = Unix.gettimeofday () -. t0 in
  Printf.printf "no budget   : %-36s %6.2fs\n" (describe full) full_t;
  (* The soundness bar: exhaustion may only downgrade to Unknown — a
     conclusive verdict under the expired budget must equal the
     reference one. *)
  (match (budgeted, full) with
  | Bmc.Unknown _, _ -> ()
  | Bmc.Cex (c1, _), Bmc.Cex (c2, _) when c1.Bmc.cex_depth = c2.Bmc.cex_depth
    ->
      ()
  | Bmc.Bounded_proof _, Bmc.Bounded_proof _ -> ()
  | _ ->
      print_endline "     FAILED: the budget changed the verdict";
      incr failures);
  (match full with
  | Bmc.Unknown _ ->
      print_endline "     FAILED: the unbudgeted run did not complete";
      incr failures
  | _ -> ());
  if merged.Autocc.Report.m_unknown > 0 && merged.Autocc.Report.m_retries = 0
  then begin
    print_endline "     FAILED: Unknown jobs recorded no retry attempts";
    incr failures
  end;
  Json.write ~path:"BENCH_robustness.json"
    (Json.Obj
       [
         ("bench", Json.Str "robustness");
         ("max_depth", Json.Int max_depth);
         ("budgeted", json_of_outcome budgeted ~wall:budget_t);
         ("unbudgeted", json_of_outcome full ~wall:full_t);
         ("merged", Autocc.Report.json_of_merged merged);
         ("unknown", Json.Int merged.Autocc.Report.m_unknown);
         ("timeouts", Json.Int merged.Autocc.Report.m_timeout);
         ("retries", Json.Int merged.Autocc.Report.m_retries);
         ("failures", Json.Int !failures);
         ("telemetry", Obs.Metrics.json_of_snapshot ());
       ]);
  if !failures = 0 then
    print_endline
      "     budgets only downgraded verdicts to Unknown; retries accounted; reference run conclusive"
  else begin
    Printf.printf "     %d FAILURE(S) in robustness expectations\n" !failures;
    exit 1
  end

(* {1 Bechamel micro-benchmarks: one Test.make per table} *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  (* Representative kernels, one per table/experiment, small enough to
     repeat: each runs a complete generate-FT + BMC cycle. *)
  let t_table1 =
    Test.make ~name:"table1/maple_m3_cex"
      (Staged.stage (fun () ->
           ignore
             (Autocc.Ft.check ~max_depth:8
                (maple_ft { M.fix_m2 = true; fix_m3 = false }))))
  in
  let t_table2 =
    Test.make ~name:"table2/vscale_default_cex"
      (Staged.stage (fun () ->
           let dut = V.create () in
           ignore (Autocc.Ft.check ~max_depth:6 (V.ft_for_stage V.Default dut))))
  in
  let t_exploit =
    Test.make ~name:"exploit/m3_full_recovery"
      (Staged.stage (fun () ->
           ignore
             (Soc.Exploit.run
                ~config:{ M.fix_m2 = true; fix_m3 = false }
                ~secret:0xdeadbeef ~iterations:8 ())))
  in
  let t_aes =
    Test.make ~name:"aes_proof/idle_flush_proof"
      (Staged.stage (fun () ->
           ignore
             (Autocc.Ft.check ~max_depth:12
                (Autocc.Ft.generate ~threshold:2
                   ~flush_done:(A.flush_done_idle ())
                   (A.create ())))))
  in
  let t_fixes =
    Test.make ~name:"fixes/maple_fixed_proof"
      (Staged.stage (fun () -> ignore (Autocc.Ft.check ~max_depth:8 (maple_ft M.fixed))))
  in
  let t_baseline =
    Test.make ~name:"baseline/random_500_trials"
      (Staged.stage (fun () ->
           ignore (Baseline.search ~max_trials:500 (wide_leaky 16))))
  in
  let tests =
    Test.make_grouped ~name:"autocc"
      [ t_table1; t_table2; t_exploit; t_aes; t_fixes; t_baseline ]
  in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 3.0) ~stabilize:false () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  header "Bechamel micro-benchmarks (monotonic clock per run)";
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some (t :: _) -> Printf.printf "%-40s %12.3f ms/run\n" name (t /. 1e6)
      | _ -> Printf.printf "%-40s (no estimate)\n" name)
    (List.sort compare rows)

(* {1 bench diff — perf-regression gate over two BENCH_*.json files}

   [bench diff BASELINE FRESH] re-reads two machine-readable result
   files (same subcommand, two commits/runs), matches their rows by
   "id", and gates only the metrics whose regression is meaningful:
   time-like leaves (keys ending in [_s]: wall_s, solve_s, opt_time_s —
   lower is better) and [speedup] (higher is better). Everything else
   (conflicts, vars, depths) varies freely with the search trajectory
   and is provenance, not a gate. A row is regressed when the fresh
   value is worse by more than a noise ratio (AUTOCC_DIFF_RATIO, default
   1.5x) AND by more than an absolute floor (AUTOCC_DIFF_FLOOR_S,
   default 0.02s) — the floor keeps microsecond rows from tripping the
   ratio on scheduler noise. A baseline row missing from the fresh file
   is a regression (a silently dropped benchmark is worse than a slow
   one); a fresh row missing from the baseline is informational. Exits 1
   on any regression. *)

let diff_read path =
  let ic =
    try open_in_bin path
    with Sys_error e -> failwith (Printf.sprintf "bench diff: %s" e)
  in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.parse s with
  | Ok j -> j
  | Error e -> failwith (Printf.sprintf "bench diff: %s: %s" path e)

let diff_rows j =
  match Json.member "rows" j with
  | Some (Json.List rows) ->
      List.filter_map
        (fun r ->
          match Json.member "id" r with
          | Some (Json.Str id) -> Some (id, r)
          | _ -> None)
        rows
  | _ -> []

(* The leaf flattening ("o2.stats.solve_s" -> 0.319), the
   suffix-directed gate, and the ratio+floor regression predicate are
   Obs.Numdiff — shared verbatim with [autocc diff-runs], so the two
   gates can never drift apart. *)

let diff_bench base_path fresh_path =
  header "Bench diff — perf-regression gate";
  let ratio, floor_s = Obs.Numdiff.thresholds () in
  let base = diff_read base_path and fresh = diff_read fresh_path in
  let bench_of j =
    match Json.member "bench" j with Some (Json.Str s) -> s | _ -> "?"
  in
  Printf.printf "     baseline: %s (%s)\n" base_path (bench_of base);
  Printf.printf "     fresh   : %s (%s)\n" fresh_path (bench_of fresh);
  Printf.printf "     noise thresholds: ratio %.2fx, floor %.3fs\n\n" ratio
    floor_s;
  if bench_of base <> bench_of fresh then
    Printf.printf "     WARNING: comparing different benches (%s vs %s)\n\n"
      (bench_of base) (bench_of fresh);
  let base_rows = diff_rows base and fresh_rows = diff_rows fresh in
  let regressions = ref 0 in
  Printf.printf "     %-6s %-28s %10s %10s %7s  %s\n" "ROW" "METRIC" "BASE"
    "FRESH" "RATIO" "STATUS";
  List.iter
    (fun (id, brow) ->
      match List.assoc_opt id fresh_rows with
      | None ->
          incr regressions;
          Printf.printf "     %-6s %-28s %10s %10s %7s  %s\n" id "(row)" "-"
            "missing" "-" "REGRESSED"
      | Some frow ->
          let fleaves = Obs.Numdiff.leaves frow in
          List.iter
            (fun (key, bv) ->
              match Obs.Numdiff.gate key with
              | None -> ()
              | Some direction -> (
                  match List.assoc_opt key fleaves with
                  | None ->
                      incr regressions;
                      Printf.printf "     %-6s %-28s %10.3f %10s %7s  %s\n" id
                        key bv "missing" "-" "REGRESSED"
                  | Some fv ->
                      let regressed =
                        Obs.Numdiff.regressed direction ~ratio ~floor:floor_s
                          ~base:bv ~fresh:fv
                      in
                      if regressed then incr regressions;
                      (* Keep the table to the signal: regressions and
                         the headline wall_s rows. *)
                      if regressed
                         || direction = Obs.Numdiff.Higher_better
                         || String.length key < 12
                      then
                        Printf.printf "     %-6s %-28s %10.3f %10.3f %7.2f  %s\n"
                          id key bv fv
                          (fv /. Float.max 1e-9 bv)
                          (if regressed then "REGRESSED" else "ok")))
            (Obs.Numdiff.leaves brow))
    base_rows;
  List.iter
    (fun (id, _) ->
      if not (List.mem_assoc id base_rows) then
        Printf.printf "     %-6s %-28s %10s %10s %7s  %s\n" id "(row)" "absent"
          "new" "-" "new row")
    fresh_rows;
  print_newline ();
  if base_rows = [] then
    print_endline "     WARNING: baseline has no rows; nothing gated";
  if !regressions > 0 then begin
    Printf.printf "     bench diff FAILED: %d regression(s) beyond %.2fx+%.3fs\n"
      !regressions ratio floor_s;
    exit 1
  end
  else
    Printf.printf "     bench diff OK: %d rows within %.2fx+%.3fs of baseline\n"
      (List.length base_rows) ratio floor_s

(* {1 serve: latency/throughput of the crash-isolated service}

   Real daemon, real forked workers: one row per pool size over the
   bundled DUT set, plus a crash-storm row where every attempt-0 worker
   self-SIGKILLs via the "serve.worker" fault site and the service must
   converge through redelivery. Per row: makespan, per-job submit->done
   latency (mean/max), crash count, and a verdict check against the
   in-process one-shot engine. The *_s leaves ride the same
   Obs.Numdiff lower-is-better gate as every other artifact via
   `bench diff`. *)

let serve_exe () =
  match Sys.getenv_opt "AUTOCC_SERVE_EXE" with
  | Some p when p <> "" -> p
  | _ ->
      Filename.concat
        (Filename.dirname Sys.executable_name)
        (Filename.concat ".." (Filename.concat "bin" "autocc_cli.exe"))

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path

let serve_depth = 6

let serve_duts () =
  match Sys.getenv_opt "AUTOCC_BENCH_ROWS" with
  | None | Some "" -> [ "leaky"; "divider"; "maple"; "aes" ]
  | Some s -> String.split_on_char ',' s |> List.map String.trim

let serve_reference duts =
  List.map
    (fun name ->
      let dut = Duts.Bundled.build name in
      let ft = Duts.Bundled.ft_for ~threshold:2 name dut in
      let v, d =
        match Autocc.Ft.check ~max_depth:serve_depth ft with
        | Bmc.Cex (cex, _) -> ("cex", cex.Bmc.cex_depth)
        | Bmc.Bounded_proof st -> ("proof", st.Bmc.depth_reached)
        | Bmc.Unknown (r, st) ->
            ("unknown:" ^ Bmc.unknown_reason_to_string r, st.Bmc.depth_reached)
      in
      (name, (v, d)))
    duts

(* Same runtime seed search as the @serve-smoke validator: fault
   decisions are pure in (seed, site, n), so roll the worker's dice
   here and pick a seed where attempt 0 dies early and the reseeded
   attempts 1-2 survive a full solve. *)
let serve_storm_seed ~rate =
  let fires_within seed ~offset n =
    Fault.arm ~sites:[ "serve.worker" ] ~rate ~seed ();
    if offset > 0 then Fault.reseed ~offset;
    let fired = ref false in
    for _ = 1 to n do
      if Fault.fire "serve.worker" then fired := true
    done;
    !fired
  in
  let ok s =
    fires_within s ~offset:0 2
    && (not (fires_within s ~offset:1 12))
    && not (fires_within s ~offset:2 12)
  in
  let rec search s = if s > 100_000 then None else if ok s then Some s else search (s + 1) in
  let r = search 1 in
  Fault.disarm ();
  r

let serve_row ~name ~workers ~env ~cache duts reference =
  let dir = "bench_serve_" ^ name in
  rm_rf dir;
  let exe = serve_exe () in
  let args =
    [ exe; "serve"; "--dir"; dir; "--workers"; string_of_int workers; "--quiet" ]
    @ (match cache with Some c -> [ "--cache-dir"; c ] | None -> [ "--no-cache" ])
  in
  let full_env = Array.append (Unix.environment ()) (Array.of_list env) in
  let null_r = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let null_w = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process_env exe (Array.of_list args) full_env null_r null_w null_w
  in
  Unix.close null_r;
  Unix.close null_w;
  let deadline = Unix.gettimeofday () +. 10. in
  while
    (not (Serve.Client.ping ~dir)) && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.02
  done;
  let submit_t = Hashtbl.create 8 in
  List.iter
    (fun d ->
      let spec =
        { Serve.Machine.sp_dut = d; sp_engine = "check"; sp_depth = serve_depth;
          sp_threshold = 2 }
      in
      match Serve.Client.submit ~dir spec with
      | Ok id -> Hashtbl.replace submit_t id (d, Unix.gettimeofday ())
      | Error e -> failwith (Printf.sprintf "bench serve: submit %s: %s" d e))
    duts;
  let t0 = Unix.gettimeofday () in
  let done_t : (string, float * string * int * int) Hashtbl.t = Hashtbl.create 8 in
  let poll_deadline = t0 +. 300. in
  let rec poll () =
    if Hashtbl.length done_t >= List.length duts then ()
    else if Unix.gettimeofday () > poll_deadline then
      failwith "bench serve: jobs did not finish within 300s"
    else begin
      (match Serve.Client.status ~dir with
      | Error e -> failwith ("bench serve: status: " ^ e)
      | Ok resp -> (
          match Json.member "jobs" resp with
          | Some (Json.List rows) ->
              let now = Unix.gettimeofday () in
              List.iter
                (fun row ->
                  let str n =
                    match Json.member n row with Some (Json.Str s) -> s | _ -> ""
                  in
                  let int n =
                    match Json.member n row with Some (Json.Int i) -> i | _ -> 0
                  in
                  let id = str "id" in
                  match str "state" with
                  | ("done" | "quarantined") when not (Hashtbl.mem done_t id) ->
                      Hashtbl.replace done_t id
                        (now, str "verdict", int "depth", int "crashes")
                  | _ -> ())
                rows
          | _ -> ()));
      Unix.sleepf 0.02;
      poll ()
    end
  in
  poll ();
  let makespan = Unix.gettimeofday () -. t0 in
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> failwith "bench serve: daemon did not drain cleanly");
  let latencies, crashes, mismatches =
    Hashtbl.fold
      (fun id (t_done, verdict, depth, crashes) (ls, cs, ms) ->
        let dut, t_sub =
          match Hashtbl.find_opt submit_t id with
          | Some x -> x
          | None -> ("?", t_done)
        in
        let ms =
          match List.assoc_opt dut reference with
          | Some (rv, rd) when rv = verdict && rd = depth -> ms
          | Some _ | None -> ms + 1
        in
        ((t_done -. t_sub) :: ls, cs + crashes, ms))
      done_t ([], 0, 0)
  in
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (max 1 (List.length l)) in
  let lmax = List.fold_left max 0. latencies in
  Printf.printf
    "%-12s workers=%d  makespan %6.2fs  latency mean %5.2fs max %5.2fs  crashes %d%s\n%!"
    name workers makespan (mean latencies) lmax crashes
    (if mismatches > 0 then Printf.sprintf "  %d VERDICT MISMATCH(ES)" mismatches
     else "");
  ( mismatches,
    Json.Obj
      [
        ("id", Json.Str name);
        ("workers", Json.Int workers);
        ("jobs", Json.Int (List.length duts));
        ("makespan_s", Json.Float makespan);
        ("latency_mean_s", Json.Float (mean latencies));
        ("latency_max_s", Json.Float lmax);
        ("crashes", Json.Int crashes);
        ("mismatches", Json.Int mismatches);
      ] )

let serve_bench () =
  header
    "Service — submit->verdict latency and makespan per pool size, plus a crash storm";
  let duts = serve_duts () in
  let reference = serve_reference duts in
  let pool_sizes =
    match Sys.getenv_opt "AUTOCC_BENCH_WORKERS" with
    | None | Some "" -> [ 1; 2; 4 ]
    | Some s ->
        String.split_on_char ',' s |> List.map String.trim
        |> List.map int_of_string
  in
  let rows =
    List.map
      (fun w ->
        serve_row ~name:(Printf.sprintf "w%d" w) ~workers:w ~env:[] ~cache:None
          duts reference)
      pool_sizes
  in
  let storm =
    let rate = 0.05 in
    match serve_storm_seed ~rate with
    | None -> failwith "bench serve: no storm seed found"
    | Some seed ->
        serve_row ~name:"crash_storm" ~workers:2
          ~env:
            [ Printf.sprintf
                "AUTOCC_FAULT=seed=%d,rate=%g,sites=serve.worker;serve.lease"
                seed rate ]
          ~cache:None duts reference
  in
  let rows = rows @ [ storm ] in
  let mismatches = List.fold_left (fun n (m, _) -> n + m) 0 rows in
  let storm_crashes =
    match storm with
    | _, Json.Obj fields -> (
        match List.assoc_opt "crashes" fields with
        | Some (Json.Int c) -> c
        | _ -> 0)
    | _ -> 0
  in
  let failures =
    mismatches
    + (if storm_crashes = 0 then (
         print_endline "     FAILED: the crash storm injected no crashes";
         1)
       else 0)
  in
  let out =
    Option.value (Sys.getenv_opt "AUTOCC_BENCH_OUT") ~default:"BENCH_serve.json"
  in
  Json.write ~path:out
    (Json.Obj
       [
         ("bench", Json.Str "serve");
         ("max_depth", Json.Int serve_depth);
         ("duts", Json.List (List.map (fun d -> Json.Str d) duts));
         ("rows", Json.List (List.map snd rows));
         ("failures", Json.Int failures);
       ]);
  if failures = 0 then
    print_endline
      "     all service verdicts match the one-shot engine; the crash storm converged through redelivery"
  else begin
    Printf.printf "     %d FAILURE(S) in service expectations\n" failures;
    exit 1
  end

let all () =
  table2 ();
  table1 ();
  exploit ();
  aes_proof ();
  fixes ();
  baseline ();
  latency ();
  divider ();
  scaling ();
  flush_tdd ()

(* One run-ledger row per bench invocation (tool "bench", subject = the
   subcommand) when a ledger directory is resolvable from the
   environment — a single line-flushed append after the work, so the
   smoke overhead gates never see it.  Best-effort like the CLI's. *)
let ledger_record sub ~t0 ~cpu0 =
  match Obs.Ledger.resolve_dir () with
  | None -> ()
  | Some dir -> (
      try
        Obs.Ledger.append ~dir
          {
            Obs.Ledger.r_id = Obs.Ledger.run_id ();
            r_tool = "bench";
            r_subject = sub;
            r_config = "";
            r_dut_hash = "";
            r_ts = Unix.gettimeofday ();
            r_wall_s = Unix.gettimeofday () -. t0;
            r_cpu_s = Sys.time () -. cpu0;
            r_cache_hits = 0;
            r_cache_misses = 0;
            r_cache_stores = 0;
            r_asserts = [];
            r_artifacts = [];
          }
      with Sys_error _ -> ())

let () =
  let sub = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let t0 = Unix.gettimeofday () in
  let cpu0 = Sys.time () in
  (match sub with
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "exploit" -> exploit ()
  | "aes_proof" -> aes_proof ()
  | "fixes" -> fixes ()
  | "baseline" -> baseline ()
  | "latency" -> latency ()
  | "divider" -> divider ()
  | "scaling" -> scaling ()
  | "flush_tdd" -> flush_tdd ()
  | "parallel" -> parallel_bench ()
  | "opt" -> opt_bench ()
  | "incremental" -> incremental_bench ()
  | "cache" -> cache_bench ()
  | "symmetric" -> symmetric_bench ()
  | "campaign" -> campaign_bench ()
  | "robustness" -> robustness_bench ()
  | "serve" -> serve_bench ()
  | "smoke" -> smoke ()
  | "diff" ->
      if Array.length Sys.argv < 4 then begin
        Printf.eprintf "usage: bench diff BASELINE.json FRESH.json\n";
        exit 1
      end;
      diff_bench Sys.argv.(2) Sys.argv.(3)
  | "bechamel" -> bechamel ()
  | "all" -> all ()
  | other ->
      Printf.eprintf
        "unknown experiment %s (try table1|table2|exploit|aes_proof|fixes|baseline|latency|flush_tdd|parallel|opt|incremental|cache|symmetric|campaign|robustness|serve|smoke|diff|bechamel|all)\n"
        other;
      exit 1);
  ledger_record sub ~t0 ~cpu0

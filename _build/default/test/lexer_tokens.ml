(* Small helper for the lexer tests: render a token stream as strings. *)

exception Error = Frontend.Lexer.Lex_error

let of_string src =
  List.map (fun (t, _) -> Frontend.Lexer.pp_token t) (Frontend.Lexer.tokenize src)

(* Unit and property tests for the Bitvec module. Properties compare the
   limb-based implementation against plain OCaml int arithmetic at widths
   <= 30, where int arithmetic is exact. *)

let bv = Alcotest.testable Bitvec.pp Bitvec.equal

let test_construct () =
  Alcotest.(check int) "width zero" 8 (Bitvec.width (Bitvec.zero 8));
  Alcotest.(check int) "of_int value" 0xAB (Bitvec.to_int (Bitvec.of_int ~width:8 0xAB));
  Alcotest.(check int) "of_int truncates" 0x34 (Bitvec.to_int (Bitvec.of_int ~width:8 0x1234));
  Alcotest.(check int) "negative of_int" 0xFF (Bitvec.to_int (Bitvec.of_int ~width:8 (-1)));
  Alcotest.check bv "ones = of_int -1" (Bitvec.ones 13) (Bitvec.of_int ~width:13 (-1));
  Alcotest.(check bool) "raise on width 0"
    true
    (try ignore (Bitvec.zero 0); false with Invalid_argument _ -> true)

let test_wide () =
  (* Widths that span several limbs. *)
  let v = Bitvec.ones 100 in
  Alcotest.(check int) "width 100" 100 (Bitvec.width v);
  Alcotest.(check bool) "is_ones" true (Bitvec.is_ones v);
  Alcotest.(check bool) "reduce_and" true (Bitvec.reduce_and v);
  let v' = Bitvec.logxor v v in
  Alcotest.(check bool) "xor self is zero" true (Bitvec.is_zero v');
  let x = Bitvec.shift_left (Bitvec.one 100) 99 in
  Alcotest.(check bool) "msb set" true (Bitvec.bit x 99);
  Alcotest.(check bool) "to_int overflow raises" true
    (try ignore (Bitvec.to_int x); false with Invalid_argument _ -> true);
  Alcotest.check bv "add wraps" (Bitvec.zero 100) (Bitvec.add (Bitvec.ones 100) (Bitvec.one 100))

let test_strings () =
  Alcotest.(check int) "binary parse" 0b1010 (Bitvec.to_int (Bitvec.of_binary_string "1010"));
  Alcotest.(check string) "binary print" "1010" (Bitvec.to_binary_string (Bitvec.of_int ~width:4 10));
  Alcotest.(check int) "hex parse" 0xdeadbeef
    (Bitvec.to_int (Bitvec.of_hex_string ~width:32 "dead_beef"));
  Alcotest.(check string) "hex print" "deadbeef"
    (Bitvec.to_hex_string (Bitvec.of_int ~width:32 0xdeadbeef));
  Alcotest.(check string) "hex print pads" "0f" (Bitvec.to_hex_string (Bitvec.of_int ~width:8 15))

let test_extract_concat () =
  let v = Bitvec.of_int ~width:16 0xABCD in
  Alcotest.(check int) "low byte" 0xCD (Bitvec.to_int (Bitvec.extract ~hi:7 ~lo:0 v));
  Alcotest.(check int) "high nibble" 0xA (Bitvec.to_int (Bitvec.extract ~hi:15 ~lo:12 v));
  let hi = Bitvec.of_int ~width:8 0xAB and lo = Bitvec.of_int ~width:8 0xCD in
  Alcotest.check bv "concat" v (Bitvec.concat hi lo);
  Alcotest.check bv "concat_list" v (Bitvec.concat_list [ hi; lo ]);
  Alcotest.(check int) "repeat" 0b101010
    (Bitvec.to_int (Bitvec.repeat (Bitvec.of_binary_string "10") 3))

let test_signed () =
  Alcotest.(check int) "to_signed -1" (-1) (Bitvec.to_signed_int (Bitvec.ones 8));
  Alcotest.(check int) "to_signed min" (-128) (Bitvec.to_signed_int (Bitvec.of_int ~width:8 0x80));
  Alcotest.(check bool) "slt neg < pos" true
    (Bitvec.slt (Bitvec.of_int ~width:8 (-3)) (Bitvec.of_int ~width:8 5));
  Alcotest.(check bool) "ult as unsigned" false
    (Bitvec.ult (Bitvec.of_int ~width:8 (-3)) (Bitvec.of_int ~width:8 5));
  Alcotest.check bv "sign_extend" (Bitvec.of_int ~width:16 (-3))
    (Bitvec.sign_extend (Bitvec.of_int ~width:8 (-3)) 16);
  Alcotest.check bv "zero_extend" (Bitvec.of_int ~width:16 0xFD)
    (Bitvec.zero_extend (Bitvec.of_int ~width:8 (-3)) 16)

let test_width_mismatch () =
  let a = Bitvec.zero 8 and b = Bitvec.zero 9 in
  List.iter
    (fun (name, f) ->
      Alcotest.(check bool) name true
        (try ignore (f a b); false with Invalid_argument _ -> true))
    [ ("add", Bitvec.add); ("logand", Bitvec.logand); ("mul", Bitvec.mul) ]

(* Property tests against exact int arithmetic at small widths. *)

let arb_pair =
  QCheck.make
    ~print:(fun (w, a, b) -> Printf.sprintf "w=%d a=%d b=%d" w a b)
    QCheck.Gen.(
      int_range 1 30 >>= fun w ->
      let m = (1 lsl w) - 1 in
      pair (int_bound m) (int_bound m) >>= fun (a, b) -> return (w, a, b))

let mask w n = n land ((1 lsl w) - 1)

let prop name f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:500 ~name arb_pair f)

let props =
  [
    prop "add matches int" (fun (w, a, b) ->
        Bitvec.to_int (Bitvec.add (Bitvec.of_int ~width:w a) (Bitvec.of_int ~width:w b))
        = mask w (a + b));
    prop "sub matches int" (fun (w, a, b) ->
        Bitvec.to_int (Bitvec.sub (Bitvec.of_int ~width:w a) (Bitvec.of_int ~width:w b))
        = mask w (a - b));
    prop "mul matches int" (fun (w, a, b) ->
        Bitvec.to_int (Bitvec.mul (Bitvec.of_int ~width:w a) (Bitvec.of_int ~width:w b))
        = mask w (a * b));
    prop "logic matches int" (fun (w, a, b) ->
        let va = Bitvec.of_int ~width:w a and vb = Bitvec.of_int ~width:w b in
        Bitvec.to_int (Bitvec.logand va vb) = a land b
        && Bitvec.to_int (Bitvec.logor va vb) = a lor b
        && Bitvec.to_int (Bitvec.logxor va vb) = a lxor b
        && Bitvec.to_int (Bitvec.lognot va) = mask w (lnot a));
    prop "compare matches int" (fun (w, a, b) ->
        let va = Bitvec.of_int ~width:w a and vb = Bitvec.of_int ~width:w b in
        Bitvec.ult va vb = (a < b) && Bitvec.equal va vb = (a = b));
    prop "string roundtrip" (fun (w, a, _) ->
        let v = Bitvec.of_int ~width:w a in
        Bitvec.equal v (Bitvec.of_binary_string (Bitvec.to_binary_string v))
        && Bitvec.equal v (Bitvec.of_hex_string ~width:w (Bitvec.to_hex_string v)));
    prop "bits roundtrip" (fun (w, a, _) ->
        let v = Bitvec.of_int ~width:w a in
        Bitvec.equal v (Bitvec.of_bits (Bitvec.to_bits v)));
    prop "shifts match int" (fun (w, a, b) ->
        let k = b mod (w + 2) in
        let v = Bitvec.of_int ~width:w a in
        Bitvec.to_int (Bitvec.shift_left v k) = mask w (if k > 62 then 0 else a lsl k)
        && Bitvec.to_int (Bitvec.shift_right_logical v k) = (a lsr min k 62));
    prop "neg is two's complement" (fun (w, a, _) ->
        Bitvec.to_int (Bitvec.neg (Bitvec.of_int ~width:w a)) = mask w (-a));
    prop "reduce ops" (fun (w, a, _) ->
        let v = Bitvec.of_int ~width:w a in
        Bitvec.reduce_or v = (a <> 0)
        && Bitvec.reduce_and v = (a = mask w (-1))
        && Bitvec.reduce_xor v
           = (let rec pop n = if n = 0 then 0 else (n land 1) + pop (n lsr 1) in
              pop a mod 2 = 1));
  ]

let () =
  Alcotest.run "bitvec"
    [
      ( "unit",
        [
          Alcotest.test_case "construct" `Quick test_construct;
          Alcotest.test_case "wide" `Quick test_wide;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "extract/concat" `Quick test_extract_concat;
          Alcotest.test_case "signed" `Quick test_signed;
          Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
        ] );
      ("properties", props);
    ]
